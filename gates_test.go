package gates_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	gates "github.com/gates-middleware/gates"
)

// apiSource emits 0..n-1 through the public API.
type apiSource struct{ n int }

func (s *apiSource) Run(_ *gates.Context, out *gates.Emitter) error {
	for i := 0; i < s.n; i++ {
		if err := out.EmitValue(i, 8); err != nil {
			return err
		}
	}
	return nil
}

// apiSink counts and sums received ints.
type apiSink struct {
	mu       sync.Mutex
	n, total int
	param    *gates.Param
}

func (s *apiSink) Init(ctx *gates.Context) error {
	p, err := ctx.SpecifyParam(gates.ParamSpec{
		Name: "rate", Initial: 0.5, Min: 0.1, Max: 1, Step: 0.01,
		Direction: gates.IncreaseSlowsProcessing,
	})
	if err != nil {
		return err
	}
	s.param = p
	return nil
}

func (s *apiSink) Process(_ *gates.Context, pkt *gates.Packet, _ *gates.Emitter) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	s.total += pkt.Value.(int)
	return nil
}

func (s *apiSink) Finish(*gates.Context, *gates.Emitter) error { return nil }

func (s *apiSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

const apiXML = `
<application name="api-test">
  <stage id="feed" code="t/feed" source="true" instances="2">
    <nearSource>feed-1</nearSource><nearSource>feed-2</nearSource>
  </stage>
  <stage id="sink" code="t/sink"><requirement minCPU="2"/></stage>
  <connection from="feed" to="sink"/>
</application>`

func testGrid(t *testing.T) (*gates.Grid, *apiSink) {
	t.Helper()
	g, err := gates.NewGrid(gates.GridOptions{TimeScale: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := g.AddNode(gates.Node{
			Name: fmt.Sprintf("edge-%d", i), CPUPower: 1, MemoryMB: 256,
			Sources: []string{fmt.Sprintf("feed-%d", i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddNode(gates.Node{Name: "hub", CPUPower: 4, MemoryMB: 2048, Slots: 2}); err != nil {
		t.Fatal(err)
	}
	g.SetDefaultLink(gates.LinkConfig{Bandwidth: 100 * gates.KBps})
	sink := &apiSink{}
	if err := g.RegisterSource("t/feed", func(int) gates.Source { return &apiSource{n: 50} }); err != nil {
		t.Fatal(err)
	}
	if err := g.RegisterProcessor("t/sink", func(int) gates.Processor { return sink }); err != nil {
		t.Fatal(err)
	}
	return g, sink
}

func TestNewGridValidation(t *testing.T) {
	if _, err := gates.NewGrid(gates.GridOptions{TimeScale: -1}); err == nil {
		t.Fatal("negative TimeScale accepted")
	}
	g, err := gates.NewGrid(gates.GridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Clock() == nil {
		t.Fatal("real-time grid has no clock")
	}
}

func TestGridLaunchEndToEnd(t *testing.T) {
	g, sink := testGrid(t)
	app, err := g.Launch(context.Background(), apiXML, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Wait(); err != nil {
		t.Fatal(err)
	}
	if sink.count() != 100 {
		t.Fatalf("sink saw %d packets, want 100", sink.count())
	}
	// Placement: feeds near their sources, sink on the hub.
	if node, _ := app.NodeFor("feed", 0); node != "edge-1" {
		t.Fatalf("feed/0 placed on %q", node)
	}
	if node, _ := app.NodeFor("sink", 0); node != "hub" {
		t.Fatalf("sink placed on %q", node)
	}
	// The parameter registered through the public API is visible.
	st, ok := app.Stage("sink", 0)
	if !ok {
		t.Fatal("sink stage missing")
	}
	if _, ok := st.Controller().Param("rate"); !ok {
		t.Fatal("public-API parameter not registered")
	}
	if g.NetworkBytes() == 0 {
		t.Fatal("no traffic crossed the emulated network")
	}
}

func TestGridLaunchConfig(t *testing.T) {
	g, sink := testGrid(t)
	cfg, err := gates.ParseConfig(apiXML)
	if err != nil {
		t.Fatal(err)
	}
	tuned := 0
	app, err := g.LaunchConfig(context.Background(), cfg, func(string, int) gates.StageConfig {
		tuned++
		return gates.StageConfig{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Wait(); err != nil {
		t.Fatal(err)
	}
	if tuned != 3 {
		t.Fatalf("tuning consulted %d times, want 3", tuned)
	}
	if sink.count() != 100 {
		t.Fatalf("sink saw %d packets", sink.count())
	}
}

func TestGridLaunchNoMatch(t *testing.T) {
	g, _ := testGrid(t)
	bad := strings.Replace(apiXML, `minCPU="2"`, `minCPU="64"`, 1)
	if _, err := g.Launch(context.Background(), bad, nil); !errors.Is(err, gates.ErrNoMatch) {
		t.Fatalf("impossible requirement = %v, want ErrNoMatch", err)
	}
}

func TestGridNodes(t *testing.T) {
	g, _ := testGrid(t)
	if got := len(g.Nodes()); got != 3 {
		t.Fatalf("Nodes = %d, want 3", got)
	}
	if err := g.AddNode(gates.Node{Name: "edge-1", CPUPower: 1}); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

func TestGridConnectNodes(t *testing.T) {
	g, _ := testGrid(t)
	l := g.ConnectNodes("edge-1", "hub", gates.LinkConfig{Bandwidth: gates.MBps})
	if l == nil || l.Config().Bandwidth != gates.MBps {
		t.Fatal("explicit link not installed")
	}
}

func TestGridNewEngineDirect(t *testing.T) {
	g, err := gates.NewGrid(gates.GridOptions{TimeScale: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	eng := g.NewEngine()
	sink := &apiSink{}
	src, _ := eng.AddSourceStage("feed", 0, &apiSource{n: 10}, gates.StageConfig{})
	snk, _ := eng.AddProcessorStage("sink", 0, sink, gates.StageConfig{})
	if err := eng.Connect(src, snk, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sink.count() != 10 {
		t.Fatalf("direct engine delivered %d packets, want 10", sink.count())
	}
}

func TestApplicationStopViaPublicAPI(t *testing.T) {
	g, _ := testGrid(t)
	slow := func(int) gates.Source { return &slowAPISource{} }
	if err := g.RegisterSource("t/slow", slow); err != nil {
		t.Fatal(err)
	}
	xml := strings.Replace(apiXML, "t/feed", "t/slow", 1)
	app, err := g.Launch(context.Background(), xml, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- app.Stop() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop hung")
	}
}

type slowAPISource struct{}

func (s *slowAPISource) Run(ctx *gates.Context, out *gates.Emitter) error {
	for i := 0; ; i++ {
		select {
		case <-ctx.Done():
			return nil
		default:
		}
		ctx.ChargeCompute(50 * time.Millisecond)
		if err := out.EmitValue(i, 8); err != nil {
			return err
		}
	}
}

func TestGridMonitor(t *testing.T) {
	g, sink := testGrid(t)
	mon := g.NewMonitor(100 * time.Millisecond)
	app, err := g.Launch(context.Background(), apiXML, nil)
	if err != nil {
		t.Fatal(err)
	}
	mon.WatchStages(app.Stages)
	stop := make(chan struct{})
	go mon.Start(stop)
	if err := app.Wait(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	mon.Sample()
	if sink.count() != 100 {
		t.Fatalf("sink saw %d", sink.count())
	}
	snap := mon.Latest()
	if len(snap.Stages) != 3 {
		t.Fatalf("monitor watched %d stage instances, want 3", len(snap.Stages))
	}
	var sinkSample bool
	for _, s := range snap.Stages {
		if s.Stage == "sink" && s.ItemsIn == 100 {
			sinkSample = true
		}
	}
	if !sinkSample {
		t.Fatal("final sample missing the sink's item count")
	}
}

// TestGridPolicyEngine drives the declarative control plane through the
// public API: a policy document with a named placement rule governs a
// launch, and the decision log records each placement citing the rule and
// the document version.
func TestGridPolicyEngine(t *testing.T) {
	g, sink := testGrid(t)
	ob := g.NewObservability(gates.ObsConfig{})
	eng := g.NewPolicyEngine()
	if g.PolicyEngine() != eng {
		t.Fatal("PolicyEngine accessor disagrees")
	}
	doc, err := gates.ParsePolicy([]byte(`{
		"version": "facade-1",
		"placement": {"rules": [{"name": "pin-sink", "stage": "sink", "min_cpu": 2}]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(doc, "test"); err != nil {
		t.Fatal(err)
	}

	app, err := g.Launch(context.Background(), apiXML, nil)
	if err != nil {
		t.Fatal(err)
	}
	reb := gates.NewPolicyRebalancer(app.Deployment, eng)
	if err := app.Wait(); err != nil {
		t.Fatal(err)
	}
	if sink.count() != 100 {
		t.Fatalf("sink saw %d packets, want 100", sink.count())
	}
	if reb.Migrations() != 0 {
		t.Fatalf("idle rebalancer migrated %d instances", reb.Migrations())
	}

	var sinkDecision *gates.DecisionEvent
	placements := 0
	for _, ev := range ob.DecisionLog().Events() {
		if ev.Kind != "placement" {
			continue
		}
		placements++
		if ev.Stage == "sink" {
			sinkDecision = &ev
		}
	}
	if placements != 3 {
		t.Fatalf("%d placement decisions logged, want 3 (2 feeds + 1 sink)", placements)
	}
	if sinkDecision == nil {
		t.Fatal("no placement decision for the sink")
	}
	if sinkDecision.Rule != "pin-sink" || sinkDecision.PolicyVersion != "facade-1" {
		t.Fatalf("sink decision cites %s/%s, want facade-1/pin-sink",
			sinkDecision.PolicyVersion, sinkDecision.Rule)
	}
	if sinkDecision.Node != "hub" || sinkDecision.Outcome != "placed" {
		t.Fatalf("sink decision %+v", sinkDecision)
	}

	// DefaultPolicy is the documented baseline.
	if def := gates.DefaultPolicy(); def.Version != "default" || def.Rebalance.Threshold != 2 {
		t.Fatalf("DefaultPolicy = %+v", def)
	}
}

func TestQueuingFacade(t *testing.T) {
	n := gates.NewQueuingNetwork()
	if err := n.AddStation(gates.QueuingStation{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddStation(gates.QueuingStation{Name: "b", ServiceRate: 10}); err != nil {
		t.Fatal(err)
	}
	n.SetArrival("a", 40)
	n.Route("a", "b", 1)
	r, err := n.SustainableFraction("a")
	if err != nil {
		t.Fatal(err)
	}
	if r != 0.25 {
		t.Fatalf("sustainable = %v, want 0.25", r)
	}
}
