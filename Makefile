# Tier-1 verification plus the race lane and benchmark artifacts.

GO ?= go

.PHONY: all vet build test race ci bench bench-json experiments clean

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full CI lane: vet + staticcheck (if installed) + build + test + race
# + coverage.out + short benches + the observability-overhead guard.
ci:
	sh scripts/ci.sh

# Interactive benchmark run of the hot paths.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkPipelineThroughput|BenchmarkBatchSizeSweep|BenchmarkQueue' -benchmem .

# Regenerates the committed BENCH_pipeline.json artifact.
bench-json:
	sh scripts/bench.sh

# Regenerates every paper figure (quick mode).
experiments:
	$(GO) run ./cmd/gates-experiments -exp all -quick

clean:
	$(GO) clean ./...
