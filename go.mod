module github.com/gates-middleware/gates

go 1.22
