package gates_test

import (
	"context"
	"fmt"
	"log"

	gates "github.com/gates-middleware/gates"
)

// feedSource emits a fixed number of readings.
type feedSource struct{ n int }

func (s feedSource) Run(_ *gates.Context, out *gates.Emitter) error {
	for i := 0; i < s.n; i++ {
		if err := out.EmitValue(i, 8); err != nil {
			return err
		}
	}
	return nil
}

// countSink tallies what it receives.
type countSink struct{ n int }

func (c *countSink) Init(*gates.Context) error { return nil }
func (c *countSink) Process(_ *gates.Context, _ *gates.Packet, _ *gates.Emitter) error {
	c.n++
	return nil
}
func (c *countSink) Finish(*gates.Context, *gates.Emitter) error { return nil }

// Example deploys a two-stage application from an XML descriptor onto a
// two-node grid and waits for it to drain — the end-to-end shape of every
// GATES program.
func Example() {
	g, err := gates.NewGrid(gates.GridOptions{TimeScale: 10_000})
	if err != nil {
		log.Fatal(err)
	}
	g.AddNode(gates.Node{Name: "edge", CPUPower: 1, MemoryMB: 512, Sources: []string{"feed"}})
	g.AddNode(gates.Node{Name: "hub", CPUPower: 4, MemoryMB: 4096})
	g.SetDefaultLink(gates.LinkConfig{Bandwidth: 100 * gates.KBps})

	sink := &countSink{}
	g.RegisterSource("example/feed", func(int) gates.Source { return feedSource{n: 20} })
	g.RegisterProcessor("example/sink", func(int) gates.Processor { return sink })

	app, err := g.Launch(context.Background(), `
<application name="example">
  <stage id="feed" code="example/feed" source="true"><nearSource>feed</nearSource></stage>
  <stage id="sink" code="example/sink"/>
  <connection from="feed" to="sink"/>
</application>`, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := app.Wait(); err != nil {
		log.Fatal(err)
	}
	node, _ := app.NodeFor("sink", 0)
	fmt.Printf("sink on %s received %d readings\n", node, sink.n)
	// Output: sink on hub received 20 readings
}

// ExampleNewQueuingNetwork sizes a pipeline analytically before running it:
// the model answers what sampling fraction the middleware will converge to.
func ExampleNewQueuingNetwork() {
	n := gates.NewQueuingNetwork()
	n.AddStation(gates.QueuingStation{Name: "sampler"})
	n.AddStation(gates.QueuingStation{Name: "analysis", ServiceRate: 50}) // B/s it sustains
	n.SetArrival("sampler", 160)                                          // B/s generated
	n.Route("sampler", "analysis", 1)
	r, err := n.SustainableFraction("sampler")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sustainable sampling factor: %.3f\n", r)
	// Output: sustainable sampling factor: 0.312
}
