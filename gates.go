// Package gates is a Go implementation of GATES (Grid-based Adaptive
// Execution on Streams), the middleware for processing distributed data
// streams described in Chen, Reddy & Agrawal, "GATES: A Grid-Based
// Middleware for Processing Distributed Data Streams" (HPDC 2004).
//
// A GATES application is a pipeline of stages deployed across grid nodes:
// stages near each stream's source reduce data volume early, and downstream
// stages compute global results. Each stage may expose one or more
// adjustment parameters — a sampling rate, a summary size — whose values the
// middleware tunes at runtime so that the analysis is as accurate as
// possible while still keeping up with the arrival rate (the paper's
// self-adaptation algorithm, Section 4).
//
// # Quick start
//
//	g, _ := gates.NewGrid(gates.GridOptions{TimeScale: 1000})
//	g.AddNode(gates.Node{Name: "edge", CPUPower: 1, MemoryMB: 512, Sources: []string{"feed"}})
//	g.AddNode(gates.Node{Name: "hub", CPUPower: 4, MemoryMB: 4096})
//	g.SetDefaultLink(gates.LinkConfig{Bandwidth: 100 * gates.KBps})
//	g.RegisterSource("my/source", func(i int) gates.Source { return mySource(i) })
//	g.RegisterProcessor("my/analyze", func(i int) gates.Processor { return newAnalyzer() })
//	app, _ := g.Launch(ctx, configXML, nil)
//	err := app.Wait()
//
// The package is a facade over the implementation packages: the stage engine
// (internal/pipeline), the Section 4 algorithm (internal/adapt), the
// simulated grid fabric (internal/grid), the link emulator
// (internal/netsim), and the Launcher/Deployer machinery (internal/service).
// Everything a downstream user needs is re-exported here.
package gates

import (
	"context"
	"fmt"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/grid"
	"github.com/gates-middleware/gates/internal/monitor"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/policy"
	"github.com/gates-middleware/gates/internal/queuing"
	"github.com/gates-middleware/gates/internal/service"
)

// Core processing API (the paper's StreamProcessor model).
type (
	// Processor is the packet-driven stage interface: Init, Process,
	// Finish. Register adjustment parameters from Init via
	// Context.SpecifyParam.
	Processor = pipeline.Processor
	// Source is the generating-stage interface for stages with no
	// inputs.
	Source = pipeline.Source
	// Context is the middleware surface handed to user code.
	Context = pipeline.Context
	// Emitter sends packets downstream.
	Emitter = pipeline.Emitter
	// Packet is the unit of data between stages.
	Packet = pipeline.Packet
	// Stage is a deployed stage instance.
	Stage = pipeline.Stage
	// StageConfig tunes one stage instance (queue capacity, adaptation
	// interval, hooks).
	StageConfig = pipeline.StageConfig
	// Engine is the in-process execution fabric, available directly for
	// programs that wire stages without the XML/deployment layer.
	Engine = pipeline.Engine
	// QueueKind selects a stage's input-buffer implementation (see
	// StageConfig.Queue); the default QueueAuto picks a lock-free ring
	// sized to the edge cardinality.
	QueueKind = pipeline.QueueKind
)

// Queue implementations for StageConfig.Queue.
const (
	QueueAuto  = pipeline.QueueAuto
	QueueSPSC  = pipeline.QueueSPSC
	QueueMPSC  = pipeline.QueueMPSC
	QueueMutex = pipeline.QueueMutex
)

// GetPacket returns an empty packet from the global packet pool with one
// reference owned by the caller; fill it and Emit (ownership transfers to
// the engine) or Release it if never emitted. Sources on the hot path use
// it to keep the per-packet allocation count at zero; &Packet{...} remains
// fully supported and simply bypasses the pool.
func GetPacket() *Packet { return pipeline.GetPacket() }

// NewPacket returns a pooled packet carrying v with the given logical item
// count and wire size.
func NewPacket(v any, items, wireSize int) *Packet {
	return pipeline.NewPacket(v, items, wireSize)
}

// Self-adaptation API (the paper's specifyPara/getSuggestedValue).
type (
	// ParamSpec declares an adjustment parameter.
	ParamSpec = adapt.ParamSpec
	// Param is a live adjustment parameter; Value is the middleware's
	// current suggestion.
	Param = adapt.Param
	// AdaptOptions carries the Section 4 algorithm constants.
	AdaptOptions = adapt.Options
	// Adjustment records one parameter update.
	Adjustment = adapt.Adjustment
	// Observation is one queue-load sample.
	Observation = adapt.Observation
)

// Parameter directions.
const (
	// IncreaseSpeedsProcessing marks a parameter whose increase makes the
	// stage faster and less accurate.
	IncreaseSpeedsProcessing = adapt.IncreaseSpeedsProcessing
	// IncreaseSlowsProcessing marks a parameter whose increase makes the
	// stage slower and more accurate (sampling rates, summary sizes).
	IncreaseSlowsProcessing = adapt.IncreaseSlowsProcessing
)

// Fabric types.
type (
	// Node is a grid compute resource.
	Node = grid.Node
	// Requirement constrains stage placement.
	Requirement = grid.Requirement
	// LinkConfig describes an emulated network link.
	LinkConfig = netsim.LinkConfig
	// Link is an emulated network link.
	Link = netsim.Link
	// AppConfig is a parsed XML application descriptor.
	AppConfig = service.AppConfig
	// StageTuning customizes deployed instances per (stage, instance).
	StageTuning = service.StageTuning
	// App is a launched application.
	App = service.Application
)

// Bandwidth constants (bytes per virtual second), matching the paper's four
// network configurations.
const (
	KBps = netsim.KBps
	MBps = netsim.MBps
)

// Plan/apply deployment and live re-deployment API.
type (
	// Deployment is a wired application: stages placed on nodes, links
	// installed. App embeds it; Migrate and NodeFor live here.
	Deployment = service.Deployment
	// Plan is the serializable output of the planning half of
	// deployment: stage-instance→node assignments plus link wiring.
	// Deploy = Plan + Apply; plans are diffable and re-computable.
	Plan = service.Plan
	// Move is one difference between two plans (an instance changing
	// node).
	Move = service.Move
	// Planner decides placements and reserves slots without
	// instantiating anything.
	Planner = service.Planner
	// Rebalancer watches a deployment's placement cost against the
	// current network and migrates stages when a better node would cut
	// the cost past a threshold.
	Rebalancer = service.Rebalancer
	// RebalancerConfig tunes the rebalancer's interval, threshold,
	// cooldown, and stage filter.
	RebalancerConfig = service.RebalancerConfig
	// Snapshotter is implemented by stage user code whose state must
	// survive migration (Snapshot/Restore).
	Snapshotter = pipeline.Snapshotter
	// StageState is a stage's lifecycle state.
	StageState = pipeline.StageState
	// MigrationEvent is one recorded stage migration (see /migrations).
	MigrationEvent = obs.MigrationEvent
	// LifecycleEvent is one recorded stage state transition.
	LifecycleEvent = obs.LifecycleEvent
)

// Stage lifecycle states (Init → Running → Draining → Paused → Stopped).
const (
	StateInit     = pipeline.StateInit
	StateRunning  = pipeline.StateRunning
	StateDraining = pipeline.StateDraining
	StatePaused   = pipeline.StatePaused
	StateStopped  = pipeline.StateStopped
)

// NewRebalancer returns a rebalancer for dep; run it with Run(ctx) in a
// goroutine.
func NewRebalancer(dep *Deployment, cfg RebalancerConfig) *Rebalancer {
	return service.NewRebalancer(dep, cfg)
}

// Declarative control plane: one versioned policy document behind every
// Planner placement, Rebalancer verdict, and SLO evaluation, with an
// OPA-style decision log recording each verdict and the version that
// produced it.
type (
	// PolicyDocument is one complete declarative policy (placement rules,
	// rebalance thresholds, SLO objectives). The zero value normalizes to
	// the middleware's historical defaults.
	PolicyDocument = policy.Document
	// PolicyEngine evaluates the active document and logs every decision;
	// it supports validated hot reloads (Load, LoadFile, Watch, or POST
	// /policy on the observability endpoint).
	PolicyEngine = policy.Engine
	// PlacementRule constrains or biases where one stage's instances run.
	PlacementRule = policy.PlacementRule
	// DecisionEvent is one decision-log entry (see /decisions).
	DecisionEvent = obs.DecisionEvent
)

// ParsePolicy decodes a JSON or XML policy document and normalizes it.
func ParsePolicy(b []byte) (PolicyDocument, error) { return policy.Parse(b) }

// DefaultPolicy returns the built-in document — the constants the
// middleware ran on before the policy layer existed.
func DefaultPolicy() PolicyDocument { return policy.DefaultDocument() }

// NewPolicyRebalancer returns a rebalancer over dep that reads every
// control constant from eng at each sweep, so a hot reload changes the
// very next decision.
func NewPolicyRebalancer(dep *Deployment, eng *PolicyEngine) *Rebalancer {
	return service.NewPolicyRebalancer(dep, eng)
}

// Clock is the virtual time base (see GridOptions.TimeScale).
type Clock = clock.Clock

// GridOptions configures a Grid environment.
type GridOptions struct {
	// TimeScale compresses time: virtual seconds per wall second. Zero
	// or 1 runs in real time. Experiments use hundreds; the paper's
	// multi-minute runs then complete in seconds with every rate ratio
	// preserved.
	TimeScale float64
	// DefaultBatchSize is the drain/coalesce batch size applied to every
	// stage that does not set its own StageConfig.BatchSize. Zero or 1
	// keeps strict per-packet semantics; larger values amortize queue,
	// link-shaper, and wakeup costs across batches without changing
	// packet order or byte accounting.
	DefaultBatchSize int
}

// Grid is the top-level environment: a simulated grid fabric (resource
// directory + emulated network), an application repository, and the
// Launcher/Deployer pair. It plays the role Globus 3.0 and the GATES
// services play in the paper's deployment.
type Grid struct {
	clk      clock.Clock
	dir      *grid.Directory
	net      *netsim.Network
	repo     *service.Repository
	defBatch int
	o        *obs.Observability
	pol      *policy.Engine
}

// NewGrid returns an empty grid environment.
func NewGrid(opts GridOptions) (*Grid, error) {
	var clk clock.Clock
	switch {
	case opts.TimeScale < 0:
		return nil, fmt.Errorf("gates: negative TimeScale %v", opts.TimeScale)
	case opts.TimeScale == 0 || opts.TimeScale == 1:
		clk = clock.NewReal()
	default:
		clk = clock.NewScaled(opts.TimeScale)
	}
	if opts.DefaultBatchSize < 0 {
		return nil, fmt.Errorf("gates: negative DefaultBatchSize %d", opts.DefaultBatchSize)
	}
	return &Grid{
		clk:      clk,
		dir:      grid.NewDirectory(),
		net:      netsim.NewNetwork(clk),
		repo:     service.NewRepository(),
		defBatch: opts.DefaultBatchSize,
	}, nil
}

// Clock returns the environment's time base; stage code receives the same
// clock through its Context.
func (g *Grid) Clock() Clock { return g.clk }

// AddNode registers a compute node with the resource directory.
func (g *Grid) AddNode(n Node) error {
	if err := g.dir.Register(n); err != nil {
		return err
	}
	g.net.AddNode(n.Name)
	return nil
}

// Nodes lists the registered nodes.
func (g *Grid) Nodes() []Node { return g.dir.List() }

// SetDefaultLink sets the link used between any node pair without an
// explicit link.
func (g *Grid) SetDefaultLink(cfg LinkConfig) { g.net.SetDefaultLink(cfg) }

// ConnectNodes installs a directed link between two nodes and returns it.
func (g *Grid) ConnectNodes(from, to string, cfg LinkConfig) *Link {
	return g.net.Connect(from, to, cfg)
}

// NetworkBytes reports the total payload carried across all emulated links.
func (g *Grid) NetworkBytes() int64 { return g.net.TotalBytes() }

// RegisterProcessor publishes a processor stage code in the application
// repository under the given code name.
func (g *Grid) RegisterProcessor(code string, f func(instance int) Processor) error {
	return g.repo.RegisterProcessor(code, f)
}

// RegisterSource publishes a source stage code in the application
// repository.
func (g *Grid) RegisterSource(code string, f func(instance int) Source) error {
	return g.repo.RegisterSource(code, f)
}

// Launch fetches the application descriptor at locator (an http(s) URL, a
// file path, or a literal XML document), deploys it across the grid, and
// starts it. tuning may be nil.
func (g *Grid) Launch(ctx context.Context, locator string, tuning StageTuning) (*App, error) {
	l, err := g.launcher()
	if err != nil {
		return nil, err
	}
	return l.Launch(ctx, locator, tuning)
}

// LaunchConfig deploys and starts an already parsed descriptor.
func (g *Grid) LaunchConfig(ctx context.Context, cfg *AppConfig, tuning StageTuning) (*App, error) {
	l, err := g.launcher()
	if err != nil {
		return nil, err
	}
	return l.LaunchConfig(ctx, cfg, tuning)
}

func (g *Grid) launcher() (*service.Launcher, error) {
	d, err := service.NewDeployer(g.clk, g.dir, g.repo, g.net)
	if err != nil {
		return nil, err
	}
	if g.defBatch > 0 {
		d.SetDefaultBatchSize(g.defBatch)
	}
	if g.o != nil {
		d.SetObservability(g.o)
	}
	if g.pol != nil {
		d.SetPolicy(g.pol)
	}
	return service.NewLauncher(d)
}

// NewPolicyEngine builds a policy engine on the grid's clock (logging into
// the attached observability bundle, when any) and attaches it: every
// application launched from now on plans, rebalances, and judges SLOs
// through it. Attach observability first so decisions are logged.
func (g *Grid) NewPolicyEngine() *PolicyEngine {
	e := policy.New(g.clk, g.o)
	g.pol = e
	return e
}

// SetPolicyEngine attaches an existing engine (e.g. one shared with an HTTP
// surface). Nil detaches, reverting launches to the default policy.
func (g *Grid) SetPolicyEngine(e *PolicyEngine) { g.pol = e }

// PolicyEngine returns the attached engine, or nil when none is attached.
func (g *Grid) PolicyEngine() *PolicyEngine { return g.pol }

// NewEngine returns a bare stage engine on the grid's clock for programs
// that wire stages directly, without the XML descriptor and deployment
// machinery. The grid's DefaultBatchSize and Observability carry over.
func (g *Grid) NewEngine() *Engine {
	e := pipeline.New(g.clk)
	if g.defBatch > 0 {
		e.SetDefaultBatchSize(g.defBatch)
	}
	if g.o != nil {
		e.SetObservability(g.o)
	}
	return e
}

// Observability is the unified observation bundle: a metrics registry with
// Prometheus/JSON exposition, structured logging on the virtual clock,
// sampled hot-path trace spans, and the adaptation audit trail.
type Observability = obs.Observability

// ObsConfig tunes an Observability bundle (see obs.Config).
type ObsConfig = obs.Config

// AdaptationEvent is one recorded adaptation decision (see /adaptations).
type AdaptationEvent = obs.AdaptationEvent

// NewObservability builds an observability bundle on the grid's clock and
// attaches it: every application launched (and every engine built) from now
// on publishes metrics, spans, audit events, and logs into it. Serve its
// HTTP surface with gates.ServeObservability.
func (g *Grid) NewObservability(cfg ObsConfig) *Observability {
	o := obs.New(g.clk, cfg)
	g.o = o
	return o
}

// SetObservability attaches an existing bundle (e.g. one shared with a
// transport-hosted node). Nil detaches.
func (g *Grid) SetObservability(o *Observability) { g.o = o }

// Observability returns the attached bundle, or nil when unobserved.
func (g *Grid) Observability() *Observability { return g.o }

// ServeObservability exposes o over HTTP at addr (":0" picks a free port):
// /metrics (Prometheus text), /snapshot (JSON), /adaptations (audit trail),
// /traces (sampled spans). Close the returned server when done.
func ServeObservability(addr string, o *Observability) (*obs.Server, error) {
	return obs.Serve(addr, o)
}

// Monitor is the runtime observation service: it samples watched stages
// (queue occupancy, d̃, λ/μ rates, parameter values) and links on a fixed
// virtual interval — the paper's "the system monitors the arrival rate at
// each source, the available computing resources ... and the available
// network bandwidth".
type Monitor = monitor.Monitor

// NewMonitor returns a monitor on the grid's clock sampling every interval
// of virtual time. Watch an application with mon.WatchStages(app.Stages),
// then run mon.Start (or mon.Run for streaming dashboards) in a goroutine.
// When the grid has an Observability attached, the monitor publishes into
// and reads from the same registry its HTTP endpoint exposes.
func (g *Grid) NewMonitor(interval time.Duration) *Monitor {
	if g.o != nil {
		return monitor.NewWithRegistry(g.clk, interval, g.o.Registry)
	}
	return monitor.New(g.clk, interval)
}

// ParseConfig parses an XML application descriptor.
func ParseConfig(xml string) (*AppConfig, error) {
	return service.ParseConfigString(xml)
}

// ErrNoMatch is returned when no grid node satisfies a stage's requirement.
var ErrNoMatch = grid.ErrNoMatch

// Analytic model of §4.1 — every stage a server, every input buffer its
// queue. Build the network your pipeline induces, solve it, and ask for the
// sustainable fraction to know where the middleware should converge before
// you run anything.
type (
	// QueuingNetwork is an open feed-forward queueing network.
	QueuingNetwork = queuing.Network
	// QueuingStation is one server in the network.
	QueuingStation = queuing.Station
	// QueuingSolution holds solved arrival rates and utilizations.
	QueuingSolution = queuing.Solution
)

// NewQueuingNetwork returns an empty analytic network.
func NewQueuingNetwork() *QueuingNetwork { return queuing.New() }
