// Quickstart: a minimal two-stage GATES application built directly on the
// public API.
//
// A feed source produces readings faster than the analyzer can process
// them; the analyzer exposes a sampling-rate adjustment parameter, and the
// middleware lowers it until the pipeline keeps up — then the program prints
// what the middleware chose.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	gates "github.com/gates-middleware/gates"
)

// feed emits one reading every 10 virtual milliseconds for five minutes.
type feed struct{}

func (feed) Run(ctx *gates.Context, out *gates.Emitter) error {
	const interval = 10 * time.Millisecond
	for i := 0; i < 30000; i++ {
		ctx.ChargeCompute(interval)
		if err := out.EmitValue(float64(i), 16); err != nil {
			return err
		}
	}
	return nil
}

// analyzer processes a tunable fraction of readings, each costing 25
// virtual milliseconds — 2.5x the arrival interval, so full-rate analysis
// cannot keep up and the middleware must settle near 0.4.
type analyzer struct {
	rate     *gates.Param
	credit   float64
	analyzed int
}

func (a *analyzer) Init(ctx *gates.Context) error {
	p, err := ctx.SpecifyParam(gates.ParamSpec{
		Name:      "sampling-rate",
		Initial:   1.0,
		Min:       0.05,
		Max:       1.0,
		Step:      0.01,
		Direction: gates.IncreaseSlowsProcessing,
	})
	if err != nil {
		return err
	}
	a.rate = p
	return nil
}

func (a *analyzer) Process(ctx *gates.Context, pkt *gates.Packet, _ *gates.Emitter) error {
	a.credit += a.rate.Value() // getSuggestedValue()
	if a.credit < 1 {
		return nil
	}
	a.credit--
	a.analyzed++
	ctx.ChargeCompute(25 * time.Millisecond)
	return nil
}

func (a *analyzer) Finish(*gates.Context, *gates.Emitter) error { return nil }

// sustainableRate asks the §4.1 queueing model what the middleware should
// converge to: readings arrive at 100/s, analysis serves at 40/s.
func sustainableRate() float64 {
	n := gates.NewQueuingNetwork()
	n.AddStation(gates.QueuingStation{Name: "analyze", ServiceRate: 40})
	n.AddStation(gates.QueuingStation{Name: "feed"})
	n.SetArrival("feed", 100)
	n.Route("feed", "analyze", 1)
	r, err := n.SustainableFraction("feed")
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	// 500 virtual seconds per wall second: the one-minute run takes
	// ~0.1s of real time.
	g, err := gates.NewGrid(gates.GridOptions{TimeScale: 500})
	if err != nil {
		log.Fatal(err)
	}

	eng := g.NewEngine()
	start := g.Clock().Now()
	an := &analyzer{}
	src, err := eng.AddSourceStage("feed", 0, feed{}, gates.StageConfig{
		DisableAdaptation: true,
		ComputeQuantum:    100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	var trace []string
	sink, err := eng.AddProcessorStage("analyze", 0, an, gates.StageConfig{
		QueueCapacity:  100,
		AdaptInterval:  500 * time.Millisecond,
		ComputeQuantum: 100 * time.Millisecond,
		OnAdjust: func(st *gates.Stage, now time.Time, adjs []gates.Adjustment) {
			for _, adj := range adjs {
				if len(trace)%40 == 0 {
					trace = append(trace, fmt.Sprintf("  t=%4.0fs rate=%.2f", now.Sub(start).Seconds(), adj.New))
				} else {
					trace = append(trace, "")
				}
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Connect(src, sink, nil); err != nil {
		log.Fatal(err)
	}

	fmt.Println("quickstart: 100 readings/s feed vs 40 readings/s analyzer")
	if err := eng.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	for _, line := range trace {
		if line != "" {
			fmt.Println(line)
		}
	}
	fmt.Printf("analyzer processed %d of 30000 readings; middleware settled on rate %.2f (model says %.2f is sustainable)\n",
		an.analyzed, an.rate.Value(), sustainableRate())
}
