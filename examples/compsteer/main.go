// Comp-steer: the paper's second application template — data-stream
// processing for computational steering (§5.1).
//
// A simulation generates intermediate mesh values; a sampler forwards a
// fraction of them to an analysis stage on another machine. The sampling
// rate is the adjustment parameter: this example runs the §5.4 processing-
// constraint scenario at three analysis costs and prints how the middleware
// drives the rate toward the highest sustainable value.
//
// Run with:
//
//	go run ./examples/compsteer
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	gates "github.com/gates-middleware/gates"
	"github.com/gates-middleware/gates/internal/apps/compsteer"
	"github.com/gates-middleware/gates/internal/metrics"
)

const appXML = `
<application name="comp-steer">
  <stage id="sim" code="app/sim" source="true"><nearSource>mesh</nearSource></stage>
  <stage id="sampler" code="app/sampler"><nearSource>mesh</nearSource></stage>
  <stage id="analysis" code="app/analyzer"/>
  <connection from="sim" to="sampler"/>
  <connection from="sampler" to="analysis"/>
</application>`

func main() {
	fmt.Println("comp-steer: sampling-rate self-adaptation under a processing constraint")
	fmt.Println("generation 160 B/s, initial rate 0.13, 300 virtual seconds")
	for _, costMs := range []int{5, 10, 20} {
		trace := run(costMs)
		sustainable := 1000.0 / float64(costMs) / 160.0
		if sustainable > 1 {
			sustainable = 1
		}
		fmt.Printf("\nanalysis cost %d ms/byte (sustainable rate %.2f):\n", costMs, sustainable)
		for _, p := range trace.Downsample(8) {
			fmt.Printf("  t=%4.0fs rate=%.2f\n", p.T.Seconds(), p.V)
		}
	}
}

func run(costMs int) *metrics.TimeSeries {
	g, err := gates.NewGrid(gates.GridOptions{TimeScale: 300})
	if err != nil {
		log.Fatal(err)
	}
	must(g.AddNode(gates.Node{Name: "sim-node", CPUPower: 2, MemoryMB: 2048, Slots: 2, Sources: []string{"mesh"}}))
	must(g.AddNode(gates.Node{Name: "analysis-node", CPUPower: 2, MemoryMB: 2048}))
	g.SetDefaultLink(gates.LinkConfig{}) // processing, not the network, is the constraint

	must(g.RegisterSource("app/sim", func(int) gates.Source {
		return &compsteer.SimulationSource{GenRate: 160, Duration: 300 * time.Second, PacketBytes: 16}
	}))
	must(g.RegisterProcessor("app/sampler", func(int) gates.Processor {
		return &compsteer.Sampler{}
	}))
	must(g.RegisterProcessor("app/analyzer", func(int) gates.Processor {
		return &compsteer.Analyzer{CostPerByte: time.Duration(costMs) * time.Millisecond}
	}))

	trace := metrics.NewTimeSeriesAt(g.Clock().Now())
	tuning := func(stage string, _ int) gates.StageConfig {
		switch stage {
		case "sim":
			return gates.StageConfig{DisableAdaptation: true, ComputeQuantum: 100 * time.Millisecond}
		case "sampler":
			return gates.StageConfig{
				QueueCapacity: 100,
				AdaptInterval: 500 * time.Millisecond,
				AdjustEvery:   2,
				OnAdjust: func(_ *gates.Stage, now time.Time, adjs []gates.Adjustment) {
					for _, a := range adjs {
						trace.Record(now, a.New)
					}
				},
			}
		default:
			return gates.StageConfig{
				QueueCapacity:  50,
				AdaptInterval:  500 * time.Millisecond,
				AdjustEvery:    2,
				ComputeQuantum: 200 * time.Millisecond,
			}
		}
	}
	app, err := g.Launch(context.Background(), appXML, tuning)
	if err != nil {
		log.Fatal(err)
	}
	if err := app.Wait(); err != nil {
		log.Fatal(err)
	}
	return trace
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
