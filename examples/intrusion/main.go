// Intrusion detection: the online network-intrusion motivating application
// of the paper's §2, built as a two-stage GATES pipeline.
//
// Connection logs at four sites are filtered near their sources (each site
// keeps a counting-samples watchlist of its top talkers) and a central
// detector correlates the watchlists: hosts with an excessive aggregate
// rate, or reported by several sites at once, are flagged. The example
// injects a flooding attacker at site 2 and a low-and-slow scanner visible
// at every site, then prints the alerts.
//
// Run with:
//
//	go run ./examples/intrusion
package main

import (
	"context"
	"fmt"
	"log"

	gates "github.com/gates-middleware/gates"
	"github.com/gates-middleware/gates/internal/apps/intrusion"
)

const appXML = `
<application name="intrusion-detect">
  <stage id="log" code="app/log" source="true" instances="4">
    <nearSource>site-1</nearSource><nearSource>site-2</nearSource>
    <nearSource>site-3</nearSource><nearSource>site-4</nearSource>
  </stage>
  <stage id="filter" code="app/filter" instances="4">
    <nearSource>site-1</nearSource><nearSource>site-2</nearSource>
    <nearSource>site-3</nearSource><nearSource>site-4</nearSource>
  </stage>
  <stage id="detector" code="app/detector"><requirement minCPU="2"/></stage>
  <connection from="log" to="filter" fanout="pairwise"/>
  <connection from="filter" to="detector"/>
</application>`

const (
	flooder = 0xBADF00D
	scanner = 0x5CA77E2
)

func main() {
	g, err := gates.NewGrid(gates.GridOptions{TimeScale: 5000})
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		must(g.AddNode(gates.Node{
			Name: fmt.Sprintf("site-%d", i), CPUPower: 1, MemoryMB: 1024, Slots: 2,
			Sources: []string{fmt.Sprintf("site-%d", i)},
		}))
	}
	must(g.AddNode(gates.Node{Name: "soc", CPUPower: 4, MemoryMB: 4096}))
	g.SetDefaultLink(gates.LinkConfig{Bandwidth: 100 * gates.KBps})

	det := intrusion.NewDetector(intrusion.DetectorConfig{RateThreshold: 900, SpreadThreshold: 3})
	must(g.RegisterSource("app/log", func(site int) gates.Source {
		src := &intrusion.LogSource{
			Site: site, Background: 8000, Hosts: 3000, Seed: int64(site + 1),
			AttackerSrc: scanner, AttackRecords: 250, // the distributed scan trickles everywhere
		}
		if site == 1 {
			src.AttackerSrc = flooder // site 2 also hosts the flood
			src.AttackRecords = 1200
		}
		return src
	}))
	must(g.RegisterProcessor("app/filter", func(site int) gates.Processor {
		return intrusion.NewSiteFilter(intrusion.SiteFilterConfig{Seed: int64(site + 40)})
	}))
	must(g.RegisterProcessor("app/detector", func(int) gates.Processor { return det }))

	app, err := g.Launch(context.Background(), appXML, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := app.Wait(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("analyzed logs from %d sites; alerts:\n", det.Sites())
	for _, a := range det.Alerts() {
		fmt.Printf("  host %08x  rule=%-6s  sites=%d  est. records=%.0f", a.Host, a.Reason, a.Sites, a.Estimated)
		switch a.Host {
		case flooder:
			fmt.Print("   <- injected flood at site 2")
		case scanner:
			fmt.Print("   <- injected distributed scan")
		}
		fmt.Println()
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
