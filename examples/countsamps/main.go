// Count-samps: the paper's first application template — a distributed
// version of the Gibbons–Matias counting samples problem (§5.1).
//
// Four sub-streams of integers arrive at four grid nodes; the query is "the
// top 10 most frequently occurring values and their frequencies, at any
// time". The example deploys both versions of §5.2 from XML descriptors —
// centralized (ship everything to the central machine) and distributed
// (summarize near each source) — and compares execution time and accuracy,
// reproducing the Figure 5 trade-off.
//
// Run with:
//
//	go run ./examples/countsamps
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	gates "github.com/gates-middleware/gates"
	"github.com/gates-middleware/gates/internal/apps/countsamps"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/metrics"
	"github.com/gates-middleware/gates/internal/workload"
)

const centralizedXML = `
<application name="count-samps-centralized">
  <stage id="stream" code="app/stream" source="true" instances="4">
    <nearSource>stream-1</nearSource><nearSource>stream-2</nearSource>
    <nearSource>stream-3</nearSource><nearSource>stream-4</nearSource>
  </stage>
  <stage id="central" code="app/raw"><requirement minCPU="2"/></stage>
  <connection from="stream" to="central"/>
</application>`

const distributedXML = `
<application name="count-samps-distributed">
  <stage id="stream" code="app/stream" source="true" instances="4">
    <nearSource>stream-1</nearSource><nearSource>stream-2</nearSource>
    <nearSource>stream-3</nearSource><nearSource>stream-4</nearSource>
  </stage>
  <stage id="summarize" code="app/summarize" instances="4">
    <nearSource>stream-1</nearSource><nearSource>stream-2</nearSource>
    <nearSource>stream-3</nearSource><nearSource>stream-4</nearSource>
  </stage>
  <stage id="central" code="app/merge"><requirement minCPU="2"/></stage>
  <connection from="stream" to="summarize" fanout="pairwise"/>
  <connection from="summarize" to="central"/>
</application>`

func main() {
	// Workload: four 25,000-integer Zipf sub-streams and their merged
	// ground truth.
	streams := make([][]int, 4)
	parts := make([]map[int]int, 4)
	for i := range streams {
		streams[i] = workload.Take(workload.NewZipf(int64(i)*31+5, 1.5, 50_000), 25_000)
		parts[i] = workload.Counts(streams[i])
	}
	truth := workload.MergeCounts(parts...)

	cost := countsamps.DefaultCostModel()
	fmt.Println("count-samps: top-10 frequent values from 4 distributed sub-streams (100 KB/s links)")
	fmt.Printf("%-12s %14s %10s\n", "version", "exec time (s)", "accuracy")
	for _, version := range []struct {
		name string
		xml  string
	}{
		{"centralized", centralizedXML},
		{"distributed", distributedXML},
	} {
		secs, acc := run(version.xml, streams, truth, cost)
		fmt.Printf("%-12s %14.1f %10.1f\n", version.name, secs, acc.Score())
	}
}

func run(xml string, streams [][]int, truth map[int]int, cost countsamps.CostModel) (float64, metrics.Accuracy) {
	g, err := gates.NewGrid(gates.GridOptions{TimeScale: 2000})
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		must(g.AddNode(gates.Node{
			Name: fmt.Sprintf("src-%d", i), CPUPower: 1, MemoryMB: 512, Slots: 2,
			Sources: []string{fmt.Sprintf("stream-%d", i)},
		}))
	}
	must(g.AddNode(gates.Node{Name: "central", CPUPower: 4, MemoryMB: 4096, Slots: 4}))
	g.SetDefaultLink(gates.LinkConfig{Bandwidth: 100 * gates.KBps, Quantum: time.Second})

	raw := &countsamps.RawCounter{Cost: cost, Seed: 11}
	merge := &countsamps.SummaryMerger{Cost: cost}
	must(g.RegisterSource("app/stream", func(i int) gates.Source {
		return &countsamps.StreamSource{Values: streams[i], Batch: 25, ItemWireSize: cost.ItemWireSize}
	}))
	must(g.RegisterProcessor("app/summarize", func(i int) gates.Processor {
		return countsamps.NewSummarizer(countsamps.SummarizerConfig{Cost: cost, SummarySize: 100, Seed: int64(i) + 1000})
	}))
	must(g.RegisterProcessor("app/raw", func(int) gates.Processor { return raw }))
	must(g.RegisterProcessor("app/merge", func(int) gates.Processor { return merge }))

	tuning := func(stage string, _ int) gates.StageConfig {
		return gates.StageConfig{ComputeQuantum: time.Second, DisableAdaptation: stage == "stream"}
	}
	sw := clock.NewStopwatch(g.Clock())
	app, err := g.Launch(context.Background(), xml, tuning)
	if err != nil {
		log.Fatal(err)
	}
	if err := app.Wait(); err != nil {
		log.Fatal(err)
	}
	var reported []workload.ValueCount
	if _, centralized := app.Stages["summarize"]; !centralized {
		reported = raw.TopK(10)
	} else {
		reported = merge.TopK(10)
	}
	return sw.Elapsed().Seconds(), metrics.TopKAccuracy(truth, reported, 10)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
