// LHC-style tiered filtering: the paper's first motivating application
// (§2) — "the data is continuous or streaming in nature ... the storage
// capacities will require that the data is filtered by a factor of 10^6 to
// 10^7".
//
// Four detector sources emit collision events with rare high-energy signal.
// Tier-1 filters near each detector cut on energy; an adaptive tier-2
// filter cuts on a reconstructed quality feature; a collector pays a heavy
// reconstruction cost per surviving event. The tier-2 threshold is an
// adjustment parameter with the +speed direction — raising it sheds load —
// and the middleware holds it at the lowest value the collector can
// sustain, maximizing signal recall under the real-time constraint.
//
// Run with:
//
//	go run ./examples/lhcfilter
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	gates "github.com/gates-middleware/gates"
	"github.com/gates-middleware/gates/internal/apps/tieredfilter"
)

const appXML = `
<application name="lhc-filter">
  <stage id="detector" code="app/detector" source="true" instances="4">
    <nearSource>det-1</nearSource><nearSource>det-2</nearSource>
    <nearSource>det-3</nearSource><nearSource>det-4</nearSource>
  </stage>
  <stage id="tier1" code="app/tier1" instances="4">
    <nearSource>det-1</nearSource><nearSource>det-2</nearSource>
    <nearSource>det-3</nearSource><nearSource>det-4</nearSource>
  </stage>
  <stage id="tier2" code="app/tier2"/>
  <stage id="collector" code="app/collector"><requirement minCPU="2"/></stage>
  <connection from="detector" to="tier1" fanout="pairwise"/>
  <connection from="tier1" to="tier2"/>
  <connection from="tier2" to="collector"/>
</application>`

func main() {
	g, err := gates.NewGrid(gates.GridOptions{TimeScale: 300})
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		must(g.AddNode(gates.Node{
			Name: fmt.Sprintf("tier0-%d", i), CPUPower: 1, MemoryMB: 1024, Slots: 2,
			Sources: []string{fmt.Sprintf("det-%d", i)},
		}))
	}
	must(g.AddNode(gates.Node{Name: "tier1-center", CPUPower: 2, MemoryMB: 4096, Slots: 2}))
	must(g.AddNode(gates.Node{Name: "tier2-center", CPUPower: 4, MemoryMB: 8192, Slots: 2}))
	g.SetDefaultLink(gates.LinkConfig{Bandwidth: gates.MBps})

	const eventsPerDetector = 60_000
	sources := make([]*tieredfilter.DetectorSource, 4)
	tier2 := tieredfilter.NewFilter(tieredfilter.FilterConfig{
		Feature: tieredfilter.ByQuality, Adaptive: true,
		Min: 0.5, Max: 6, Initial: 0.5,
	})
	collector := &tieredfilter.Collector{PerEventCost: 25 * time.Millisecond}

	must(g.RegisterSource("app/detector", func(i int) gates.Source {
		sources[i] = &tieredfilter.DetectorSource{
			Detector: i, Events: eventsPerDetector, Seed: int64(i + 1),
			PerEventCost: time.Millisecond, // ~1000 events/s per detector
		}
		return sources[i]
	}))
	must(g.RegisterProcessor("app/tier1", func(int) gates.Processor {
		return tieredfilter.NewFilter(tieredfilter.FilterConfig{
			Feature: tieredfilter.ByEnergy, FixedThreshold: 2,
		})
	}))
	must(g.RegisterProcessor("app/tier2", func(int) gates.Processor { return tier2 }))
	must(g.RegisterProcessor("app/collector", func(int) gates.Processor { return collector }))

	tuning := func(stage string, _ int) gates.StageConfig {
		switch stage {
		case "detector":
			return gates.StageConfig{DisableAdaptation: true, ComputeQuantum: 100 * time.Millisecond}
		case "tier2", "collector":
			return gates.StageConfig{
				QueueCapacity:  60,
				AdaptInterval:  500 * time.Millisecond,
				AdjustEvery:    2,
				ComputeQuantum: 200 * time.Millisecond,
			}
		default:
			return gates.StageConfig{}
		}
	}
	app, err := g.Launch(context.Background(), appXML, tuning)
	if err != nil {
		log.Fatal(err)
	}
	if err := app.Wait(); err != nil {
		log.Fatal(err)
	}

	var totalSignal uint64
	for _, s := range sources {
		totalSignal += s.Signals()
	}
	total := uint64(4 * eventsPerDetector)
	fmt.Println("lhc-filter: 4 detectors x 1000 events/s, collector reconstructs at 25 ms/event")
	fmt.Printf("  events generated: %d (signal: %d)\n", total, totalSignal)
	fmt.Printf("  adaptive tier-2 threshold settled at %.2f (started 0.50)\n", tier2.Threshold())
	fmt.Printf("  kept %d events -> reduction factor %.0fx\n", collector.Kept(), collector.Reduction(total))
	fmt.Printf("  signal recall: %.1f%%\n", 100*collector.Recall(totalSignal))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
