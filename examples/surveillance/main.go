// Surveillance: the multi-camera computer-vision motivating application of
// the paper's §2 ("real-time analysis of the capture of more than three
// digital cameras is not possible on current desktops").
//
// Four cameras capture a shared scene; a feature extractor near each camera
// pays a heavy per-frame cost and exposes its frame-sampling rate as the
// adjustment parameter; central fusion correlates detections into tracks.
// Extraction cannot keep up at full frame rate, so the middleware sheds
// frames per camera until the pipelines are sustainable — while fusion still
// confirms every scene object from multiple views.
//
// Run with:
//
//	go run ./examples/surveillance
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	gates "github.com/gates-middleware/gates"
	"github.com/gates-middleware/gates/internal/apps/surveillance"
)

const appXML = `
<application name="surveillance">
  <stage id="camera" code="app/camera" source="true" instances="4">
    <nearSource>camera-1</nearSource><nearSource>camera-2</nearSource>
    <nearSource>camera-3</nearSource><nearSource>camera-4</nearSource>
  </stage>
  <stage id="extract" code="app/extract" instances="4">
    <nearSource>camera-1</nearSource><nearSource>camera-2</nearSource>
    <nearSource>camera-3</nearSource><nearSource>camera-4</nearSource>
  </stage>
  <stage id="fusion" code="app/fusion"><requirement minCPU="2"/></stage>
  <connection from="camera" to="extract" fanout="pairwise"/>
  <connection from="extract" to="fusion"/>
</application>`

func main() {
	g, err := gates.NewGrid(gates.GridOptions{TimeScale: 300})
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		must(g.AddNode(gates.Node{
			Name: fmt.Sprintf("cam-host-%d", i), CPUPower: 1, MemoryMB: 1024, Slots: 2,
			Sources: []string{fmt.Sprintf("camera-%d", i)},
		}))
	}
	must(g.AddNode(gates.Node{Name: "fusion-center", CPUPower: 4, MemoryMB: 4096}))
	g.SetDefaultLink(gates.LinkConfig{Bandwidth: gates.MBps})

	fusion := surveillance.NewFusion()
	extractors := make([]*surveillance.Extractor, 4)
	must(g.RegisterSource("app/camera", func(i int) gates.Source {
		return &surveillance.Camera{
			ID: i, FPS: 10, Duration: 180 * time.Second,
			SceneObjects: 10, Coverage: 0.5, Seed: int64(i + 1),
		}
	}))
	must(g.RegisterProcessor("app/extract", func(i int) gates.Processor {
		// 300 ms per analyzed frame vs 100 ms between frames: each
		// extractor sustains about a third of its camera's rate.
		extractors[i] = surveillance.NewExtractor(surveillance.ExtractorConfig{
			Adaptive: true, CostPerFrame: 300 * time.Millisecond,
		})
		return extractors[i]
	}))
	must(g.RegisterProcessor("app/fusion", func(int) gates.Processor { return fusion }))

	tuning := func(stage string, _ int) gates.StageConfig {
		switch stage {
		case "camera":
			return gates.StageConfig{DisableAdaptation: true, ComputeQuantum: 100 * time.Millisecond}
		case "extract":
			return gates.StageConfig{
				QueueCapacity:  60,
				AdaptInterval:  500 * time.Millisecond,
				AdjustEvery:    2,
				ComputeQuantum: 300 * time.Millisecond,
			}
		default:
			return gates.StageConfig{}
		}
	}
	app, err := g.Launch(context.Background(), appXML, tuning)
	if err != nil {
		log.Fatal(err)
	}
	if err := app.Wait(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("surveillance: 4 cameras x 10 fps, extraction costs 300 ms/frame (sustainable rate ~0.33)")
	for i, x := range extractors {
		recv, analyzed := x.Frames()
		fmt.Printf("  camera %d: analyzed %4d of %4d frames (%.0f%%)\n",
			i+1, analyzed, recv, 100*float64(analyzed)/float64(recv))
	}
	tracks := fusion.Tracks()
	fmt.Printf("fusion built %d tracks; %d objects confirmed by >= 3 cameras:\n",
		len(tracks), fusion.MultiViewTracks(3))
	for _, tr := range tracks {
		fmt.Printf("  object %d: %d sightings from %d cameras\n", tr.Object, tr.Sightings, tr.Cameras)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
