#!/bin/sh
# Runs the pipeline hot-path benchmarks and emits BENCH_pipeline.json:
# one record per benchmark with name, ns/op, B/op, and allocs/op.
#
# Usage: scripts/bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_pipeline.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
  -bench 'BenchmarkPipelineThroughput|BenchmarkBatchSizeSweep|BenchmarkQueuePushPop|BenchmarkQueueBatchPushPop|BenchmarkLinkTransfer' \
  -benchmem -benchtime 1s . | tee "$raw"

awk '
BEGIN { print "[" ; first = 1 }
/^Benchmark/ {
    name = $1
    nsop = ""; bop = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     nsop = $(i - 1)
        if ($i == "B/op")      bop = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (nsop == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, nsop, (bop == "" ? "null" : bop), (allocs == "" ? "null" : allocs)
}
END { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"
