#!/bin/sh
# Runs the pipeline hot-path benchmarks and emits BENCH_pipeline.json:
# one record per benchmark with name, ns/op, B/op, and allocs/op. Also
# regenerates BENCH_latency.json via `gates-experiments -exp latency`.
#
# When an output file already exists, each record also carries the
# previous run's numbers (prev_ns_per_op / prev_allocs_per_op in
# BENCH_pipeline.json, prevNsPerItem / prevP99S in BENCH_latency.json), so
# the committed artifacts show the before/after trajectory of the last
# regeneration instead of silently overwriting it.
#
# Usage: scripts/bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_pipeline.json}"
raw="$(mktemp)"
prev="$(mktemp)"
trap 'rm -f "$raw" "$prev"' EXIT

# Harvest the previous numbers (name, ns/op, allocs/op) from an existing
# artifact. The record format is one object per line; the quoted field
# names cannot collide with their prev_ variants.
if [ -f "$out" ]; then
	sed -n 's/.*"name": "\([^"]*\)".*"ns_per_op": \([0-9.]*\).*"allocs_per_op": \([0-9]*\).*/\1 \2 \3/p' \
		"$out" > "$prev"
fi

go test -run '^$' \
  -bench 'BenchmarkPipelineThroughput|BenchmarkBatchSizeSweep|BenchmarkQueuePushPop|BenchmarkQueueBatchPushPop|BenchmarkLinkTransfer' \
  -benchmem -benchtime 1s . | tee "$raw"

awk -v prevfile="$prev" '
BEGIN {
    while ((getline line < prevfile) > 0) {
        split(line, f, " ")
        prevns[f[1]] = f[2]
        prevallocs[f[1]] = f[3]
    }
    close(prevfile)
    print "["
    first = 1
}
/^Benchmark/ {
    name = $1
    nsop = ""; bop = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     nsop = $(i - 1)
        if ($i == "B/op")      bop = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (nsop == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
        name, nsop, (bop == "" ? "null" : bop), (allocs == "" ? "null" : allocs)
    if (name in prevns)
        printf ", \"prev_ns_per_op\": %s, \"prev_allocs_per_op\": %s", prevns[name], prevallocs[name]
    printf "}"
}
END { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"

# Regenerate BENCH_latency.json; the experiment merges the existing
# artifact's numbers into prevNsPerItem/prevP99S before overwriting.
go run ./cmd/gates-experiments -exp latency
