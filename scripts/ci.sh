#!/bin/sh
# The full CI lane: vet, build, plain tests, the race-detector lane, and a
# short benchmark smoke. Run from anywhere; it cds to the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "== short benchmarks =="
go test -run '^$' -bench 'BenchmarkPipelineThroughput|BenchmarkBatchSizeSweep|BenchmarkQueue' \
  -benchtime 100ms .

echo "CI lane green"
