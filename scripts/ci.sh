#!/bin/sh
# The full CI lane: vet, static analysis (when staticcheck is installed),
# build, plain tests, the race-detector lane, a coverage run emitting
# coverage.out, a short benchmark smoke, and the observability-overhead
# guard. Run from anywhere; it cds to the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== staticcheck =="
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"
fi

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "== migration smoke =="
# Live re-deployment lane: the deterministic manual-clock zero-loss
# migration tests under the race detector, then the bandwidth-collapse
# experiment end to end in quick mode.
go test -race -run 'Migration|Migrate|PlanApply|PauseResume|Relink' \
  ./internal/service ./internal/pipeline
go run ./cmd/gates-experiments -exp migration -quick -scale 4000

echo "== coverage =="
go test -coverprofile=coverage.out -covermode=atomic ./...
go tool cover -func=coverage.out | tail -1

echo "== short benchmarks =="
go test -run '^$' -bench 'BenchmarkPipelineThroughput$|BenchmarkBatchSizeSweep|BenchmarkQueue' \
  -benchtime 100ms .

echo "== observability overhead guard =="
# The traced-but-unsampled hot path must stay within noise of the untraced
# one: BenchmarkPipelineThroughputObserved runs the identical batch=16
# pipeline with the full observability bundle attached (metrics callbacks
# registered, tracer at its default 1-in-64 sampling). The acceptance target
# is ~5% (see BENCH_pipeline.json); the guard threshold is 30% so scheduler
# noise on loaded CI boxes does not flake the lane — a regression that
# breaks this guard is a real one.
guard_raw="$(go test -run '^$' \
  -bench 'BenchmarkBatchSizeSweep/batch=16$|BenchmarkPipelineThroughputObserved' \
  -benchtime 500ms -count 3 .)"
echo "$guard_raw"
echo "$guard_raw" | awk '
/^BenchmarkBatchSizeSweep/             { base += $3; nbase++ }
/^BenchmarkPipelineThroughputObserved/ { obs += $3; nobs++ }
END {
    if (nbase == 0 || nobs == 0) { print "guard: benchmarks missing"; exit 1 }
    base /= nbase; obs /= nobs
    ratio = obs / base
    printf "guard: untraced %.1f ns/op, observed %.1f ns/op, ratio %.3f\n", base, obs, ratio
    if (ratio > 1.30) { print "guard: observability overhead above 30% bound"; exit 1 }
}'

echo "CI lane green"
