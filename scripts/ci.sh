#!/bin/sh
# The full CI lane: vet, static analysis (when staticcheck is installed),
# build, plain tests, the race-detector lane, a coverage run emitting
# coverage.out, a short benchmark smoke, and the observability-overhead
# guard. Run from anywhere; it cds to the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== staticcheck =="
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"
fi

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "== migration smoke =="
# Live re-deployment lane: the deterministic manual-clock zero-loss
# migration tests under the race detector, then the bandwidth-collapse
# experiment end to end in quick mode.
go test -race -run 'Migration|Migrate|PlanApply|PauseResume|Relink' \
  ./internal/service ./internal/pipeline
go run ./cmd/gates-experiments -exp migration -quick -scale 4000

echo "== endpoint smoke =="
# Observability-plane lane: a real gates-node must answer its probe and
# metrics endpoints, and a real gates-launcher must serve the merged
# /cluster view, over actual HTTP. Fixed high ports keep the lane
# shell-only; the Go tests cover the same surface on ephemeral ports.
if command -v curl >/dev/null 2>&1; then
	smoke_tmp="$(mktemp -d)"
	trap 'rm -rf "$smoke_tmp"' EXIT
	go build -o "$smoke_tmp/gates-node" ./cmd/gates-node
	go build -o "$smoke_tmp/gates-launcher" ./cmd/gates-launcher
	node_obs=127.0.0.1:19771
	launch_obs=127.0.0.1:19772

	"$smoke_tmp/gates-node" -listen 127.0.0.1:19770 -stage compsteer/analyzer \
	  -obs-listen "$node_obs" &
	node_pid=$!
	curl -sf --retry 20 --retry-connrefused --retry-delay 1 \
	  "http://$node_obs/healthz" >/dev/null
	curl -sf --retry 5 --retry-delay 1 "http://$node_obs/readyz" >/dev/null
	curl -sf "http://$node_obs/metrics" | grep -q '^gates_'
	curl -sf "http://$node_obs/flightrecorder" | grep -q '"events"'
	curl -sf "http://$node_obs/bottlenecks" | grep -q '"summary"'
	kill "$node_pid" 2>/dev/null || true
	wait "$node_pid" 2>/dev/null || true
	echo "gates-node endpoints ok"

	smoke_xml='<application name="smoke">
	  <stage id="sim" code="compsteer/sim" source="true"/>
	  <stage id="sampler" code="compsteer/sampler"/>
	  <stage id="analysis" code="compsteer/analyzer"/>
	  <connection from="sim" to="sampler"/>
	  <connection from="sampler" to="analysis"/>
	</application>'
	# ~350 virtual seconds at 100x gives a few wall seconds to poll /cluster
	# while the run is live.
	"$smoke_tmp/gates-launcher" -config "$smoke_xml" -scale 100 \
	  -obs-listen "$launch_obs" -slo-p99 1h >/dev/null &
	launch_pid=$!
	curl -sf --retry 20 --retry-connrefused --retry-delay 1 \
	  "http://$launch_obs/healthz" >/dev/null
	curl -sf "http://$launch_obs/cluster" | grep -q '"slo"'
	curl -sf "http://$launch_obs/flightrecorder" | grep -q '"events"'
	curl -sf "http://$launch_obs/bottlenecks" | grep -q '"summary"'
	wait "$launch_pid"
	echo "gates-launcher /cluster ok"
else
	echo "curl not installed; skipping endpoint smoke"
fi

echo "== policy lane =="
# Policy control-plane lane. Over real HTTP: GET the active document,
# hot-reload a tightened one via POST, reject an invalid one (400, active
# version rolls back to the survivor), and read the decision log; then a
# launcher run driven by a policy file must log placement and SLO decisions
# citing it. Finally the hot-reload experiment proves a mid-run reload
# visibly changes placement, with the decision log naming the version that
# fired.
if command -v curl >/dev/null 2>&1; then
	pol_obs=127.0.0.1:19773
	"$smoke_tmp/gates-node" -listen 127.0.0.1:19774 -stage compsteer/analyzer \
	  -obs-listen "$pol_obs" &
	pol_pid=$!
	curl -sf --retry 20 --retry-connrefused --retry-delay 1 \
	  "http://$pol_obs/healthz" >/dev/null
	curl -sf "http://$pol_obs/policy" | grep -q '"version": "default"'
	curl -sf -X POST -d '{"version":"ci-v2","rebalance":{"threshold":3}}' \
	  "http://$pol_obs/policy" | grep -q '"version": "ci-v2"'
	bad_code="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
	  -d '{"rebalance":{"threshold":-1}}' "http://$pol_obs/policy")"
	[ "$bad_code" = "400" ] || { echo "policy guard: invalid reload got HTTP $bad_code, want 400"; exit 1; }
	curl -sf "http://$pol_obs/policy" | grep -q '"version": "ci-v2"'
	curl -sf "http://$pol_obs/decisions" | grep -q '"kind": "policy"'
	kill "$pol_pid" 2>/dev/null || true
	wait "$pol_pid" 2>/dev/null || true
	echo "gates-node /policy hot-reload + rollback + /decisions ok"

	cat > "$smoke_tmp/policy.json" <<-'EOF'
	{"version": "ci-file", "placement": {"topology_aware": true}, "slo": {"target_p99": "1h"}}
	EOF
	"$smoke_tmp/gates-launcher" -config "$smoke_xml" -scale 100 \
	  -obs-listen "$pol_obs" -policy "$smoke_tmp/policy.json" >/dev/null &
	pol_launch_pid=$!
	curl -sf --retry 20 --retry-connrefused --retry-delay 1 \
	  "http://$pol_obs/healthz" >/dev/null
	curl -sf "http://$pol_obs/policy" | grep -q '"version": "ci-file"'
	# The endpoint binds before Launch plans, so give placement decisions a
	# moment to land.
	for _i in 1 2 3 4 5 6 7 8 9 10; do
		curl -sf "http://$pol_obs/decisions" | grep -q '"kind": "placement"' && break
		sleep 0.2
	done
	curl -sf "http://$pol_obs/decisions" | grep -q '"kind": "placement"'
	curl -sf "http://$pol_obs/cluster" >/dev/null  # a collect evaluates the SLO under ci-file
	curl -sf "http://$pol_obs/decisions" | grep -q '"kind": "slo"'
	curl -sf "http://$pol_obs/decisions" | grep -q '"policy_version": "ci-file"'
	wait "$pol_launch_pid"
	echo "gates-launcher policy-driven decisions ok"
else
	echo "curl not installed; skipping policy endpoint smoke"
fi
go run ./cmd/gates-experiments -exp policy -quick -scale 4000 | tee /dev/stderr \
  | grep -q 'policy-hotreload: placement changed src-1 -> helper under v2'

echo "== timeseries lane =="
# The autoscaler's eyes over real HTTP: a live launcher must serve a
# windowed /timeseries document with at least two sampling epochs, fold
# real CPU profile rounds into non-zero per-stage attribution, carry pprof
# "stage" labels on its goroutines, and merge stage trends into /cluster.
if command -v curl >/dev/null 2>&1; then
	ts_obs=127.0.0.1:19775
	"$smoke_tmp/gates-launcher" -config "$smoke_xml" -scale 50 \
	  -obs-listen "$ts_obs" -profile-every 200ms -slo-p99 1h >/dev/null &
	ts_pid=$!
	curl -sf --retry 20 --retry-connrefused --retry-delay 1 \
	  "http://$ts_obs/healthz" >/dev/null
	# Sampling epochs are 500ms of virtual time (wall milliseconds at 50x),
	# but CPU attribution needs a completed wall-clock profile round — poll.
	ts_doc=""
	for _i in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15; do
		ts_doc="$(curl -sf "http://$ts_obs/timeseries")" || ts_doc=""
		echo "$ts_doc" | grep -Eq '"epochs": ([2-9]|[0-9]{2,})' \
		  && echo "$ts_doc" | grep -Eq '"cpu_seconds": (0\.0*[1-9]|[1-9])' \
		  && break
		sleep 0.3
	done
	echo "$ts_doc" | grep -Eq '"epochs": ([2-9]|[0-9]{2,})' \
	  || { echo "timeseries lane: fewer than 2 sampling epochs"; exit 1; }
	echo "$ts_doc" | grep -q '"trends"' \
	  || { echo "timeseries lane: /timeseries missing trends"; exit 1; }
	echo "$ts_doc" | grep -Eq '"cpu_seconds": (0\.0*[1-9]|[1-9])' \
	  || { echo "timeseries lane: no non-zero per-stage CPU attribution"; exit 1; }
	# The window filter parses and still serves the document shape.
	curl -sf "http://$ts_obs/timeseries?window=2s" | grep -q '"epoch_seconds"'
	# Every stage and control loop runs under a pprof stage label.
	curl -sf "http://$ts_obs/debug/pprof/goroutine?debug=1" | grep -q '"stage":' \
	  || { echo "timeseries lane: no pprof stage labels on goroutines"; exit 1; }
	# The merged cluster view carries node-stamped trends.
	curl -sf "http://$ts_obs/cluster" | grep -q '"trends"' \
	  || { echo "timeseries lane: /cluster missing merged trends"; exit 1; }
	wait "$ts_pid"
	echo "gates-launcher /timeseries + CPU attribution + pprof labels ok"
else
	echo "curl not installed; skipping timeseries lane"
fi

echo "== bottleneck attribution smoke =="
# A pipeline with one deliberately slow stage; the backpressure attribution
# engine must name it.
go run ./cmd/gates-experiments -exp constriction -quick | tee /dev/stderr \
  | grep -q 'bottleneck: constrict'

echo "== chaos lane =="
# Fault-tolerance lane: the deterministic manual-clock kill/recover tests
# and the concurrent fault-injection hammer under the race detector, then
# the kill-at-t experiment end to end — the node hosting a summarizer dies
# mid-stream and the recovery controller must detect, re-place, restore the
# checkpointed sketch, and replay the black-holed interval. The verdict
# line asserts exactly one recovery, a state restore, no ring-retention
# gap, full sink sequence coverage, and accuracy within 0.1 of the
# fault-free run.
go test -race \
  -run 'TestChaos|TestHealthMonitor|TestFault|TestReplay|TestDropDup|TestEmitLoss|TestEmitReorder|TestNetworkKill|TestNetworkPartition' \
  ./internal/service ./internal/pipeline ./internal/netsim
chaos_out="$(go run ./cmd/gates-experiments -exp chaos -quick | tee /dev/stderr)"
echo "$chaos_out" | grep -q 'chaos-verdict: recoveries=1 restored=true gap=false coverage=1.000'
echo "$chaos_out" | grep -q 'accuracy_ok=true'

echo "== coverage =="
go test -coverprofile=coverage.out -covermode=atomic ./...
go tool cover -func=coverage.out | tail -1

echo "== short benchmarks =="
go test -run '^$' -bench 'BenchmarkPipelineThroughput$|BenchmarkBatchSizeSweep|BenchmarkQueue' \
  -benchtime 100ms .

echo "== zero-alloc guard =="
# The pooled hot path must stay allocation-free: the steady state of
# BenchmarkPipelineThroughput and every BenchmarkBatchSizeSweep size runs
# entirely on recycled packets and ring slots, so any allocs/op above zero
# means a pooling regression (a new per-packet allocation or a packet
# escaping its recycle point). Benchtime is long enough that per-run setup
# (engine construction inside the timed region) amortizes to zero.
alloc_raw="$(go test -run '^$' -bench 'BenchmarkPipelineThroughput$|BenchmarkBatchSizeSweep' \
  -benchmem -benchtime 500ms .)"
echo "$alloc_raw"
echo "$alloc_raw" | awk '
/^Benchmark/ {
    for (i = 2; i <= NF; i++) if ($i == "allocs/op") {
        n++
        if ($(i - 1) + 0 > 0) { printf "guard: %s reports %s allocs/op\n", $1, $(i - 1); bad = 1 }
    }
}
END {
    if (n == 0) { print "guard: no allocs/op columns found"; exit 1 }
    if (bad) { print "guard: hot path must be allocation-free"; exit 1 }
    printf "guard: %d hot-path benchmarks at 0 allocs/op\n", n
}'

echo "== observability overhead guard =="
# The observed hot path must stay close to the untraced one:
# BenchmarkPipelineThroughputObserved runs the identical batch=16 pipeline
# with the full observability bundle attached (metrics callbacks
# registered, tracer at its default 1-in-64 sampling, per-packet e2e/hop
# latency histograms recording through the batch-flushed scratches).
# Observability's absolute cost was ~16 ns/packet — almost all of it the
# per-packet latency bucketing, see DESIGN.md §9; the sub-octave bucketing
# LUT (8 cells per binary octave, so the trailing scan is at most one
# step on the latency layout) cut it to ~12 ns, which is why the bound
# below is 1.35 rather than the 1.50 it started at. Any real stage work
# dilutes the relative cost further; a regression that breaks the bound is
# a real one (a leaked always-on span, bucketing gone per-item instead of
# batch-flushed). The estimate pairs the i-th run of each series and takes
# the minimum *paired* ratio: box load drifts on a seconds scale, so
# independent minima can pick a quiet-window base against a loaded-window
# observed run and inflate the ratio; a paired quiet window cancels out.
guard_raw="$(go test -run '^$' \
  -bench 'BenchmarkBatchSizeSweep/batch=16$|BenchmarkPipelineThroughputObserved' \
  -benchtime 500ms -count 5 .)"
echo "$guard_raw"
echo "$guard_raw" | awk '
/^BenchmarkBatchSizeSweep/             { base[nbase++] = $3 }
/^BenchmarkPipelineThroughputObserved/ { obs[nobs++] = $3 }
END {
    if (nbase == 0 || nobs == 0) { print "guard: benchmarks missing"; exit 1 }
    for (i = 0; i < nbase && i < nobs; i++) {
        r = obs[i] / base[i]
        if (!n || r < ratio) { ratio = r; base_at = base[i]; obs_at = obs[i] }
        n++
    }
    printf "guard: untraced %.1f ns/op, observed %.1f ns/op, ratio %.3f (best of %d paired runs)\n", base_at, obs_at, ratio, n
    if (ratio > 1.35) { print "guard: observability overhead above 35% bound"; exit 1 }
}'

echo "CI lane green"
