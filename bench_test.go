// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 5), the ablation studies from DESIGN.md, and microbenchmarks of
// the hot paths. The figure benchmarks run the experiments in Quick mode so
// `go test -bench=.` completes in well under a minute; run
// cmd/gates-experiments for the full-size artifacts recorded in
// EXPERIMENTS.md. Custom metrics attach each benchmark's scientific outcome
// (virtual seconds, accuracy, converged sampling factors) to its output.
package gates_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/apps/countsamps"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/experiments"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/queue"
	"github.com/gates-middleware/gates/internal/workload"
)

func quickCfg() experiments.Config { return experiments.Config{Quick: true} }

// BenchmarkFigure5 regenerates the §5.2 table: centralized vs distributed
// count-samps execution time and accuracy.
func BenchmarkFigure5(b *testing.B) {
	var cenS, disS, cenA, disA float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		cen, dis := res.Centralized(), res.Distributed()
		cenS, disS, cenA, disA = cen.Seconds, dis.Seconds, cen.Accuracy, dis.Accuracy
	}
	b.ReportMetric(cenS, "centralized-vs")
	b.ReportMetric(disS, "distributed-vs")
	b.ReportMetric(cenA, "centralized-acc")
	b.ReportMetric(disA, "distributed-acc")
}

// BenchmarkFigure6 regenerates the §5.3 execution-time sweep (five versions
// across four bandwidths). The reported metrics summarize the corners.
func BenchmarkFigure6(b *testing.B) {
	var res *experiments.Fig67Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure67(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	lo, _ := res.Cell("40", 1_000)
	hi, _ := res.Cell("160", 1_000)
	ad, _ := res.Cell("adaptive", 1_000)
	b.ReportMetric(lo.Seconds, "s40@1KB-vs")
	b.ReportMetric(hi.Seconds, "s160@1KB-vs")
	b.ReportMetric(ad.Seconds, "adaptive@1KB-vs")
}

// BenchmarkFigure7 regenerates the §5.3 accuracy sweep.
func BenchmarkFigure7(b *testing.B) {
	var res *experiments.Fig67Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure67(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	lo, _ := res.Cell("40", 1_000_000)
	hi, _ := res.Cell("160", 1_000_000)
	ad, _ := res.Cell("adaptive", 1_000_000)
	b.ReportMetric(lo.Accuracy, "s40-acc")
	b.ReportMetric(hi.Accuracy, "s160-acc")
	b.ReportMetric(ad.Accuracy, "adaptive-acc")
}

// BenchmarkFigure8 regenerates the §5.4 processing-constraint convergence
// plot; the metrics are the converged sampling factors (paper: 1, 1, .65,
// .55, .31).
func BenchmarkFigure8(b *testing.B) {
	var res *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure8(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range res.Series {
		b.ReportMetric(s.Converged, "r@"+sanitize(s.Label))
	}
}

// BenchmarkFigure9 regenerates the §5.5 network-constraint convergence plot
// (paper: ~1, 1, .5, .25, .125).
func BenchmarkFigure9(b *testing.B) {
	var res *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure9(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range res.Series {
		b.ReportMetric(s.Converged, "r@"+sanitize(s.Label))
	}
}

func sanitize(label string) string {
	out := make([]rune, 0, len(label))
	for _, r := range label {
		if r == ' ' {
			continue
		}
		if r == '/' {
			r = 'p'
		}
		out = append(out, r)
	}
	return string(out)
}

// benchmarkAblation runs one ablation study and reports each variant's
// converged value.
func benchmarkAblation(b *testing.B, study func(experiments.Config) (*experiments.AblationResult, error)) {
	var res *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = study(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, row := range res.Rows {
		b.ReportMetric(row.Converged, fmt.Sprintf("r-variant%d", i))
	}
}

// BenchmarkAblationDownstreamSign compares the Equation 4 sign conventions
// (DESIGN.md substitution: the literal sign fails to track the sustainable
// rate).
func BenchmarkAblationDownstreamSign(b *testing.B) {
	benchmarkAblation(b, experiments.AblationDownstreamSign)
}

// BenchmarkAblationPhi2 compares the exponential and linear φ2 variants.
func BenchmarkAblationPhi2(b *testing.B) {
	benchmarkAblation(b, experiments.AblationPhi2)
}

// BenchmarkAblationWeights sweeps the (P1,P2,P3) load-factor weights.
func BenchmarkAblationWeights(b *testing.B) {
	benchmarkAblation(b, experiments.AblationWeights)
}

// BenchmarkAblationWindow sweeps the observation window W.
func BenchmarkAblationWindow(b *testing.B) {
	benchmarkAblation(b, experiments.AblationWindow)
}

// BenchmarkAblationCongestionPriority compares the congestion-priority
// gating against the ungated ΔP law.
func BenchmarkAblationCongestionPriority(b *testing.B) {
	benchmarkAblation(b, experiments.AblationCongestionPriority)
}

// --- Microbenchmarks: the middleware's hot paths in real time. ---

// BenchmarkSketchObserve measures the counting-samples ingest path.
func BenchmarkSketchObserve(b *testing.B) {
	vals := workload.Take(workload.NewZipf(1, 1.5, 50_000), 1<<16)
	s := countsamps.NewSketch(100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(vals[i&(1<<16-1)])
	}
}

// BenchmarkSketchTopK measures the query path.
func BenchmarkSketchTopK(b *testing.B) {
	s := countsamps.NewSketch(240, 1)
	for _, v := range workload.Take(workload.NewZipf(1, 1.5, 50_000), 100_000) {
		s.Observe(v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TopK(10)
	}
}

// BenchmarkQueuePushPop measures the server-queue data path.
func BenchmarkQueuePushPop(b *testing.B) {
	q := queue.New[int](1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}

// BenchmarkControllerObserve measures one adaptation-loop tick.
func BenchmarkControllerObserve(b *testing.B) {
	c := adapt.NewController(adapt.Defaults(200))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(i % 200)
	}
}

// BenchmarkControllerAdjust measures one ΔP application.
func BenchmarkControllerAdjust(b *testing.B) {
	c := adapt.NewController(adapt.Defaults(200))
	c.Register(adapt.ParamSpec{
		Name: "r", Initial: 0.5, Min: 0, Max: 1, Step: 0.01,
		Direction: adapt.IncreaseSlowsProcessing,
	})
	c.Observe(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Adjust()
	}
}

// BenchmarkLinkTransfer measures the shaper bookkeeping on an unlimited
// link (no sleeping).
func BenchmarkLinkTransfer(b *testing.B) {
	l := netsim.NewLink(clock.NewManual(), netsim.LinkConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Transfer(1000)
	}
}

// BenchmarkPipelineThroughput measures end-to-end packets per second
// through a two-stage pipeline with no emulated costs.
func BenchmarkPipelineThroughput(b *testing.B) {
	e := pipeline.New(clock.NewManual())
	src, _ := e.AddSourceStage("src", 0, &benchSource{n: b.N}, pipeline.StageConfig{DisableAdaptation: true})
	sink, _ := e.AddProcessorStage("sink", 0, &benchSink{}, pipeline.StageConfig{
		DisableAdaptation: true, QueueCapacity: 1024,
	})
	if err := e.Connect(src, sink, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := e.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBatchSizeSweep runs the same two-stage pipeline at increasing
// stage batch sizes. batch=1 is the strict per-packet baseline (identical
// semantics to BenchmarkPipelineThroughput); larger batches amortize the
// queue lock, condvar wakeups, and emit coalescing across the batch.
func BenchmarkBatchSizeSweep(b *testing.B) {
	for _, batch := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			e := pipeline.New(clock.NewManual())
			e.SetDefaultBatchSize(batch)
			src, _ := e.AddSourceStage("src", 0, &benchSource{n: b.N}, pipeline.StageConfig{DisableAdaptation: true})
			sink, _ := e.AddProcessorStage("sink", 0, &benchSink{}, pipeline.StageConfig{
				DisableAdaptation: true, QueueCapacity: 1024,
			})
			if err := e.Connect(src, sink, nil); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if err := e.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkPipelineThroughputObserved is the observability tax check: the
// same two-stage batch=16 pipeline as BenchmarkBatchSizeSweep/batch=16, but
// with a full observability bundle attached — scrape-time metric callbacks
// registered and the tracer sampling at its default 1-in-64 cadence. The
// unsampled fast path costs one atomic increment and a branch per batch, so
// this must land within noise of the untraced number (scripts/ci.sh guards
// the ratio).
func BenchmarkPipelineThroughputObserved(b *testing.B) {
	clk := clock.NewManual()
	e := pipeline.New(clk)
	e.SetDefaultBatchSize(16)
	e.SetObservability(obs.New(clk, obs.Config{}))
	src, _ := e.AddSourceStage("src", 0, &benchSource{n: b.N}, pipeline.StageConfig{DisableAdaptation: true})
	sink, _ := e.AddProcessorStage("sink", 0, &benchSink{}, pipeline.StageConfig{
		DisableAdaptation: true, QueueCapacity: 1024,
	})
	if err := e.Connect(src, sink, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := e.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueueBatchPushPop measures the server queue moving 16 items per
// lock acquisition (contrast with BenchmarkQueuePushPop).
func BenchmarkQueueBatchPushPop(b *testing.B) {
	q := queue.New[int](1024)
	in := make([]int, 16)
	out := make([]int, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i += 16 {
		q.PushBatch(in)
		q.PopBatch(out, 16)
	}
}

type benchSource struct{ n int }

func (s *benchSource) Run(_ *pipeline.Context, out *pipeline.Emitter) error {
	for i := 0; i < s.n; i++ {
		pkt := out.GetPacket()
		pkt.WireSize = 64
		if err := out.Emit(pkt); err != nil {
			return err
		}
	}
	return nil
}

type benchSink struct{ n int }

func (s *benchSink) Init(*pipeline.Context) error { return nil }
func (s *benchSink) Process(*pipeline.Context, *pipeline.Packet, *pipeline.Emitter) error {
	s.n++
	return nil
}
func (s *benchSink) Finish(*pipeline.Context, *pipeline.Emitter) error { return nil }

// BenchmarkExtScalingSources measures the distributed speedup growing with
// the source count (the paper's §5.2 prediction).
func BenchmarkExtScalingSources(b *testing.B) {
	var res *experiments.ScalingResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.ExtScalingSources(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.Speedup, fmt.Sprintf("speedup@%dsrc", row.Sources))
	}
}

// BenchmarkExtHierarchy measures the three-stage regional aggregation
// against the flat topology on a shared 2 KB/s WAN uplink.
func BenchmarkExtHierarchy(b *testing.B) {
	var res *experiments.HierarchyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.ExtHierarchy(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rows[0].Seconds, "flat-vs")
	b.ReportMetric(res.Rows[1].Seconds, "hier-vs")
	b.ReportMetric(float64(res.Rows[0].WANBytes), "flat-wanB")
	b.ReportMetric(float64(res.Rows[1].WANBytes), "hier-wanB")
}

// BenchmarkAblationInterval sweeps the controller's observation interval.
func BenchmarkAblationInterval(b *testing.B) {
	benchmarkAblation(b, experiments.AblationInterval)
}
