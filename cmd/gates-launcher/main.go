// Command gates-launcher is the paper's application-user entry point: it
// takes the URL (or path, or literal XML) of an application descriptor,
// deploys the application across the demo grid fabric, runs it, and reports
// per-stage statistics.
//
// Usage:
//
//	gates-launcher -config app.xml [-scale 500] [-bandwidth 100000]
//
// Stage codes named in the descriptor resolve against the built-in
// application repository (see internal/builtin); examples/ contains ready
// descriptors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"github.com/gates-middleware/gates/internal/builtin"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/monitor"
	"github.com/gates-middleware/gates/internal/service"
)

func main() {
	var (
		config    = flag.String("config", "", "application descriptor: http(s) URL, file path, or literal XML (required)")
		scale     = flag.Float64("scale", 500, "virtual seconds per wall second")
		bandwidth = flag.Int64("bandwidth", 100_000, "cross-node link bandwidth, bytes per virtual second")
		monitorIv = flag.Duration("monitor", 0, "sample the running stages every this much virtual time and print a dashboard at the end (0 = off)")
	)
	flag.Parse()
	if *config == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*config, *scale, *bandwidth, *monitorIv); err != nil {
		fmt.Fprintln(os.Stderr, "gates-launcher:", err)
		os.Exit(1)
	}
}

func run(config string, scale float64, bandwidth int64, monitorIv time.Duration) error {
	clk := clock.NewScaled(scale)
	dir, net, err := builtin.Fabric(clk, bandwidth)
	if err != nil {
		return err
	}
	repo := service.NewRepository()
	if err := builtin.Register(repo); err != nil {
		return err
	}
	deployer, err := service.NewDeployer(clk, dir, repo, net)
	if err != nil {
		return err
	}
	launcher, err := service.NewLauncher(deployer)
	if err != nil {
		return err
	}

	sw := clock.NewStopwatch(clk)
	app, err := launcher.Launch(context.Background(), config, nil)
	if err != nil {
		return err
	}
	fmt.Printf("launched %q on %d nodes; placements:\n", app.Config.Name, len(dir.List()))
	for _, p := range app.Placements {
		fmt.Printf("  %s/%d -> %s\n", p.StageID, p.Instance, p.Node)
	}
	var mon *monitor.Monitor
	stopMon := make(chan struct{})
	if monitorIv > 0 {
		mon = monitor.New(clk, monitorIv)
		mon.WatchStages(app.Stages)
		go mon.Start(stopMon)
	}
	if err := app.Wait(); err != nil {
		return err
	}
	close(stopMon)
	if mon != nil {
		mon.Sample()
		mon.Render(os.Stdout)
	}
	fmt.Printf("finished in %.1f virtual seconds; %d bytes crossed the network\n",
		sw.Elapsed().Seconds(), net.TotalBytes())

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\tin pkts\tin items\tout pkts\tout bytes\tcompute")
	ids := make([]string, 0, len(app.Stages))
	for id := range app.Stages {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, st := range app.Stages[id] {
			s := st.Stats()
			fmt.Fprintf(tw, "%s/%d@%s\t%d\t%d\t%d\t%d\t%s\n",
				st.ID(), st.Instance(), st.Node(),
				s.PacketsIn, s.ItemsIn, s.PacketsOut, s.BytesOut, s.ComputeCharged)
		}
	}
	return tw.Flush()
}
