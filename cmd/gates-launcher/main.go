// Command gates-launcher is the paper's application-user entry point: it
// takes the URL (or path, or literal XML) of an application descriptor,
// deploys the application across the demo grid fabric, runs it, and reports
// per-stage statistics.
//
// Usage:
//
//	gates-launcher -config app.xml [-scale 500] [-bandwidth 100000]
//
// Stage codes named in the descriptor resolve against the built-in
// application repository (see internal/builtin); examples/ contains ready
// descriptors. With -monitor, a live dashboard streams to stderr while the
// application runs (the final dashboard still goes to stdout); with
// -obs-listen, the whole deployment's metrics, adaptation audit trail, and
// sampled traces are served over HTTP for the run's duration:
//
//	gates-launcher -config examples/compsteer.xml -obs-listen :9090 &
//	curl -s localhost:9090/metrics | grep gates_stage_items
//
// The launcher is also the cluster-wide observability plane: /cluster on the
// same endpoint returns the merged view of its own registry plus every
// remote gates-node named with -scrape (their /snapshot endpoints), with
// end-to-end latency quantiles and SLO status; -top streams the gates-top
// style cluster dashboard to stderr on a virtual-time interval. Probes
// (/healthz, /readyz) and /debug/pprof are mounted on the same mux, and
// -trace-sample / GATES_TRACE_SAMPLE tune hot-path trace sampling (0
// disables it).
//
// The run is policy-driven: -policy loads a declarative control-plane
// document (placement rules, rebalance thresholds, SLO objectives),
// -policy-watch and POST /policy hot-reload it mid-run with
// validation-and-rollback, and /decisions serves the decision log — every
// placement, rebalance verdict, and SLO evaluation with the policy version
// that produced it. -slo-p99 overrides the document's latency target.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"github.com/gates-middleware/gates/internal/builtin"
	"github.com/gates-middleware/gates/internal/cliconf"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/monitor"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/policy"
	"github.com/gates-middleware/gates/internal/service"
)

func main() {
	var (
		config    = flag.String("config", "", "application descriptor: http(s) URL, file path, or literal XML (required)")
		scale     = flag.Float64("scale", 500, "virtual seconds per wall second")
		bandwidth = flag.Int64("bandwidth", 100_000, "cross-node link bandwidth, bytes per virtual second")
		monitorIv = flag.Duration("monitor", 0, "sample the running stages every this much virtual time, streaming dashboards to stderr while running and printing a final one to stdout (0 = off)")
		scrape    = flag.String("scrape", "", "comma-separated observability addresses of remote gates-node processes whose /snapshot feeds the /cluster view")
		sloP99    = flag.Duration("slo-p99", 0, "end-to-end latency SLO: flag a violation when the merged sink-side p99 exceeds this much virtual time (0 = no latency target; queue-growth detection stays on; overrides the policy document's slo.target_p99)")
		topIv     = flag.Duration("top", 0, "render the cluster-wide dashboard to stderr every this much virtual time, plus a final one to stdout (0 = off)")
	)
	shared := cliconf.Register(flag.CommandLine)
	flag.Parse()
	if *config == "" {
		flag.Usage()
		os.Exit(2)
	}
	opts := launcherOptions{
		scale:     *scale,
		bandwidth: *bandwidth,
		monitorIv: *monitorIv,
		scrape:    splitScrape(*scrape),
		sloP99:    *sloP99,
		topIv:     *topIv,
		conf:      *shared,
	}
	if err := run(*config, opts); err != nil {
		fmt.Fprintln(os.Stderr, "gates-launcher:", err)
		os.Exit(1)
	}
}

// splitScrape parses the -scrape flag: comma-separated addresses, blanks
// dropped.
func splitScrape(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// launcherOptions carries one run's configuration; flags populate it in main
// and tests construct it directly. The zero value is a plain headless run.
type launcherOptions struct {
	scale     float64           // virtual seconds per wall second (<=0 = 1)
	bandwidth int64             // cross-node bandwidth, bytes per virtual second
	monitorIv time.Duration     // per-stage monitor interval (0 = off)
	scrape    []string          // remote node obs addresses feeding /cluster
	sloP99    time.Duration     // end-to-end p99 target (0 = policy document's)
	topIv     time.Duration     // cluster dashboard interval (0 = off)
	conf      cliconf.Flags     // shared observability + policy flags
	onObs     func(addr string) // test hook: bound observability address
}

func run(config string, o launcherOptions) error {
	if o.scale <= 0 {
		o.scale = 1
	}
	clk := clock.NewScaled(o.scale)
	dir, net, err := builtin.Fabric(clk, o.bandwidth)
	if err != nil {
		return err
	}
	repo := service.NewRepository()
	if err := builtin.Register(repo); err != nil {
		return err
	}
	deployer, err := service.NewDeployer(clk, dir, repo, net)
	if err != nil {
		return err
	}

	// One observability bundle backs everything downstream of here: the
	// deployed stages publish into its registry, adaptation epochs land in
	// its audit trail, and the monitor derives its rates from the same
	// registry instead of keeping private counters. SIGQUIT snapshots the
	// flight recorder to disk when -flight-dump is set.
	ob := o.conf.NewObservability(clk)
	deployer.SetObservability(ob)
	defer cliconf.NotifyFlightDump(ob, "gates-launcher")()
	defer ob.StartTimeseries()()

	// The policy engine is the declarative control plane behind every
	// placement, rebalance, and SLO verdict of this run: -policy loads a
	// document, -policy-watch and POST /policy hot-reload it, and each
	// decision lands in /decisions citing the version that produced it.
	// -slo-p99 survives as a flag override compiled into the document.
	pol, stopWatch, err := o.conf.StartPolicy(clk, ob)
	if err != nil {
		return err
	}
	defer stopWatch()
	if o.sloP99 > 0 {
		doc := pol.Active().Doc
		doc.SLO.TargetP99 = policy.Duration(o.sloP99)
		doc.Version = ""
		if err := pol.Load(doc, "flag:slo-p99"); err != nil {
			return err
		}
	}
	deployer.SetPolicy(pol)

	// Fault plane: the policy document's faults section (or the explicit
	// -checkpoint-interval / -replay-buffer flags) turns on per-edge
	// replay rings — which must be sized before the engine is built —
	// plus periodic checkpointing and the failure detector after launch.
	ftDoc := pol.Active().Doc
	ckIv, replayN, ftOn := o.conf.FaultTolerance(ftDoc)
	if ftOn {
		if replayN <= 0 {
			replayN = policy.DefaultReplayBuffer
		}
		if ckIv <= 0 {
			ckIv = policy.DefaultCheckpointInterval
		}
		deployer.SetReplayBuffer(replayN)
	}

	// The cluster aggregator merges this process's snapshot (the launcher
	// runs every in-process stage) with any scraped remote nodes, and its
	// SLO monitor re-evaluates on every collection against the objectives
	// the policy engine currently holds. The violation flag is itself a
	// metric, so a scrape of /metrics sees the detector's state.
	agg := obs.NewAggregator(clk, obs.SLOConfig{})
	agg.SetSLOSource(pol.SLOSource())
	ob.Sampler.SetSLOSource(pol.SLOSource())
	agg.SetDecisionLog(ob.DecisionLog())
	agg.SetFlightRecorder(ob.Flight)
	agg.AddSource("launcher", obs.LocalSource(ob))
	for _, addr := range o.scrape {
		agg.AddSource(addr, obs.HTTPSource(nil, addr))
	}
	ob.Registry.GaugeFunc("gates_slo_violation",
		"1 while the cluster SLO detector flags a violation, else 0.", nil,
		func() float64 {
			if agg.Violated() {
				return 1
			}
			return 0
		})

	// The endpoint binds before Launch so probes work for the whole run;
	// readiness is wired in once the application exists.
	var readyFn atomic.Value // of func() bool
	if o.conf.ObsListen != "" {
		osrv, err := obs.ServeWith(o.conf.ObsListen, ob, obs.HandlerOptions{
			Ready: func() bool {
				f, _ := readyFn.Load().(func() bool)
				return f != nil && f()
			},
			Aggregator: agg,
			Policy:     pol.Handler(),
		})
		if err != nil {
			return err
		}
		defer osrv.Close()
		fmt.Println("observability on http://" + osrv.Addr())
		if o.onObs != nil {
			o.onObs(osrv.Addr())
		}
	}

	launcher, err := service.NewLauncher(deployer)
	if err != nil {
		return err
	}

	sw := clock.NewStopwatch(clk)
	app, err := launcher.Launch(context.Background(), config, nil)
	if err != nil {
		return err
	}
	readyFn.Store(app.Ready)
	if ftOn {
		store := service.NewCheckpointStore()
		ck, err := service.NewCheckpointer(app.Deployment, store, ckIv)
		if err != nil {
			return err
		}
		ck.Start(context.Background())
		defer ck.Stop()
		he := ftDoc.Faults.HealthEvery.Std()
		if he <= 0 {
			he = policy.DefaultHealthEvery
		}
		da := ftDoc.Faults.DeadAfter
		if da <= 0 {
			da = policy.DefaultDeadAfter
		}
		rec, err := service.NewRecovery(app.Deployment, store, he, da)
		if err != nil {
			return err
		}
		rec.Start(context.Background())
		defer rec.Stop()
		fmt.Printf("fault tolerance on: checkpoints every %s, replay buffer %d, health epoch %s ×%d\n",
			ckIv, replayN, he, da)
	}
	if len(ftDoc.Faults.Injections) > 0 {
		fsch, err := service.NewFaultScheduler(clk, net, ftDoc.Faults.Injections, ob)
		if err != nil {
			return err
		}
		fsch.Start(context.Background())
		defer fsch.Stop()
		fmt.Printf("fault schedule armed: %d scripted injections\n", len(ftDoc.Faults.Injections))
	}
	fmt.Printf("launched %q on %d nodes; placements:\n", app.Config.Name, len(dir.List()))
	for _, p := range app.Placements {
		fmt.Printf("  %s/%d -> %s\n", p.StageID, p.Instance, p.Node)
	}
	var mon *monitor.Monitor
	stopMon := make(chan struct{})
	if o.monitorIv > 0 {
		mon = monitor.NewWithRegistry(clk, o.monitorIv, ob.Registry)
		mon.WatchStages(app.Stages)
		mon.SetTrendSource(ob.Sampler)
		// Stream dashboards to stderr while the run progresses; stdout
		// stays clean for the final report.
		go mon.Run(stopMon, os.Stderr)
	}
	if o.topIv > 0 {
		go func() {
			for {
				select {
				case <-stopMon:
					return
				case <-clk.After(o.topIv):
					agg.Collect().Render(os.Stderr)
				}
			}
		}()
	}
	if err := app.Wait(); err != nil {
		return err
	}
	close(stopMon)
	if mon != nil {
		mon.Sample()
		mon.Render(os.Stdout)
	}
	if o.topIv > 0 || len(o.scrape) > 0 {
		agg.Collect().Render(os.Stdout)
	}
	fmt.Printf("finished in %.1f virtual seconds; %d bytes crossed the network\n",
		sw.Elapsed().Seconds(), net.TotalBytes())

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\tin pkts\tin items\tout pkts\tout bytes\tcompute")
	ids := make([]string, 0, len(app.Stages))
	for id := range app.Stages {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, st := range app.Stages[id] {
			s := st.Stats()
			fmt.Fprintf(tw, "%s/%d@%s\t%d\t%d\t%d\t%d\t%s\n",
				st.ID(), st.Instance(), st.Node(),
				s.PacketsIn, s.ItemsIn, s.PacketsOut, s.BytesOut, s.ComputeCharged)
		}
	}
	if n := ob.Audit.Total(); n > 0 {
		fmt.Fprintf(tw, "adaptation epochs recorded: %d\n", n)
	}
	return tw.Flush()
}
