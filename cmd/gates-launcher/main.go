// Command gates-launcher is the paper's application-user entry point: it
// takes the URL (or path, or literal XML) of an application descriptor,
// deploys the application across the demo grid fabric, runs it, and reports
// per-stage statistics.
//
// Usage:
//
//	gates-launcher -config app.xml [-scale 500] [-bandwidth 100000]
//
// Stage codes named in the descriptor resolve against the built-in
// application repository (see internal/builtin); examples/ contains ready
// descriptors. With -monitor, a live dashboard streams to stderr while the
// application runs (the final dashboard still goes to stdout); with
// -obs-listen, the whole deployment's metrics, adaptation audit trail, and
// sampled traces are served over HTTP for the run's duration:
//
//	gates-launcher -config examples/compsteer.xml -obs-listen :9090 &
//	curl -s localhost:9090/metrics | grep gates_stage_items
//
// The launcher is also the cluster-wide observability plane: /cluster on the
// same endpoint returns the merged view of its own registry plus every
// remote gates-node named with -scrape (their /snapshot endpoints), with
// end-to-end latency quantiles and SLO status; -top streams the gates-top
// style cluster dashboard to stderr on a virtual-time interval. Probes
// (/healthz, /readyz) and /debug/pprof are mounted on the same mux, and
// -trace-sample / GATES_TRACE_SAMPLE tune hot-path trace sampling (0
// disables it).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"text/tabwriter"
	"time"

	"github.com/gates-middleware/gates/internal/builtin"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/monitor"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/service"
)

func main() {
	var (
		config     = flag.String("config", "", "application descriptor: http(s) URL, file path, or literal XML (required)")
		scale      = flag.Float64("scale", 500, "virtual seconds per wall second")
		bandwidth  = flag.Int64("bandwidth", 100_000, "cross-node link bandwidth, bytes per virtual second")
		monitorIv  = flag.Duration("monitor", 0, "sample the running stages every this much virtual time, streaming dashboards to stderr while running and printing a final one to stdout (0 = off)")
		obsListen  = flag.String("obs-listen", "", "HTTP address serving /metrics, /snapshot, /cluster, /adaptations, /traces, /healthz, /readyz, /debug/pprof for the run (\":0\" picks a port; omit to disable)")
		scrape     = flag.String("scrape", "", "comma-separated observability addresses of remote gates-node processes whose /snapshot feeds the /cluster view")
		sloP99     = flag.Duration("slo-p99", 0, "end-to-end latency SLO: flag a violation when the merged sink-side p99 exceeds this much virtual time (0 = no latency target; queue-growth detection stays on)")
		topIv      = flag.Duration("top", 0, "render the cluster-wide dashboard to stderr every this much virtual time, plus a final one to stdout (0 = off)")
		trace      = flag.Int("trace-sample", obs.DefaultTraceSample(), "record one trace span in every N hot-path operations; 0 disables tracing entirely (default from GATES_TRACE_SAMPLE)")
		flightSize = flag.Int("flight-recorder-size", obs.DefaultFlightCapacity, "events retained by the in-memory flight recorder")
		flightDump = flag.String("flight-dump", "", "file path the flight recorder snapshots to on SLO violation or SIGQUIT (omit to disable disk dumps)")
		verbose    = flag.Bool("v", false, "log structured middleware events to stderr")
	)
	flag.Parse()
	if *config == "" {
		flag.Usage()
		os.Exit(2)
	}
	opts := launcherOptions{
		scale:       *scale,
		bandwidth:   *bandwidth,
		monitorIv:   *monitorIv,
		obsListen:   *obsListen,
		scrape:      splitScrape(*scrape),
		sloP99:      *sloP99,
		topIv:       *topIv,
		traceSample: obs.SampleEveryFor(*trace),
		flightSize:  *flightSize,
		flightDump:  *flightDump,
	}
	if *verbose {
		opts.logTo = os.Stderr
	}
	if err := run(*config, opts); err != nil {
		fmt.Fprintln(os.Stderr, "gates-launcher:", err)
		os.Exit(1)
	}
}

// splitScrape parses the -scrape flag: comma-separated addresses, blanks
// dropped.
func splitScrape(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// launcherOptions carries one run's configuration; flags populate it in main
// and tests construct it directly. The zero value is a plain headless run.
type launcherOptions struct {
	scale       float64           // virtual seconds per wall second (<=0 = 1)
	bandwidth   int64             // cross-node bandwidth, bytes per virtual second
	monitorIv   time.Duration     // per-stage monitor interval (0 = off)
	obsListen   string            // HTTP observability address ("" = disabled)
	scrape      []string          // remote node obs addresses feeding /cluster
	sloP99      time.Duration     // end-to-end p99 target (0 = none)
	topIv       time.Duration     // cluster dashboard interval (0 = off)
	traceSample int               // obs.Config.SampleEvery semantics (0 = default, <0 = off)
	flightSize  int               // flight-recorder ring capacity (0 = default)
	flightDump  string            // flight-recorder dump path ("" = no disk dumps)
	logTo       *os.File          // structured log destination (nil = discard)
	onObs       func(addr string) // test hook: bound observability address
}

func run(config string, o launcherOptions) error {
	if o.scale <= 0 {
		o.scale = 1
	}
	clk := clock.NewScaled(o.scale)
	dir, net, err := builtin.Fabric(clk, o.bandwidth)
	if err != nil {
		return err
	}
	repo := service.NewRepository()
	if err := builtin.Register(repo); err != nil {
		return err
	}
	deployer, err := service.NewDeployer(clk, dir, repo, net)
	if err != nil {
		return err
	}

	// One observability bundle backs everything downstream of here: the
	// deployed stages publish into its registry, adaptation epochs land in
	// its audit trail, and the monitor derives its rates from the same
	// registry instead of keeping private counters.
	obsCfg := obs.Config{SampleEvery: o.traceSample, FlightCapacity: o.flightSize}
	if o.logTo != nil {
		obsCfg.LogWriter = o.logTo
	}
	ob := obs.New(clk, obsCfg)
	deployer.SetObservability(ob)
	if o.flightDump != "" {
		ob.Flight.SetDumpPath(o.flightDump)
	}
	// SIGQUIT snapshots the flight recorder to disk (when -flight-dump is
	// set) without ending the run.
	sigq := make(chan os.Signal, 1)
	signal.Notify(sigq, syscall.SIGQUIT)
	defer signal.Stop(sigq)
	go func() {
		for range sigq {
			if path, err := ob.Flight.DumpToDisk("sigquit"); err != nil {
				fmt.Fprintln(os.Stderr, "gates-launcher: flight dump:", err)
			} else if path != "" {
				fmt.Fprintln(os.Stderr, "gates-launcher: flight recorder dumped to", path)
			}
		}
	}()

	// The cluster aggregator merges this process's snapshot (the launcher
	// runs every in-process stage) with any scraped remote nodes, and its
	// SLO monitor re-evaluates on every collection. The violation flag is
	// itself a metric, so a scrape of /metrics sees the detector's state.
	agg := obs.NewAggregator(clk, obs.SLOConfig{TargetP99: o.sloP99.Seconds()})
	agg.SetFlightRecorder(ob.Flight)
	agg.AddSource("launcher", obs.LocalSource(ob))
	for _, addr := range o.scrape {
		agg.AddSource(addr, obs.HTTPSource(nil, addr))
	}
	ob.Registry.GaugeFunc("gates_slo_violation",
		"1 while the cluster SLO detector flags a violation, else 0.", nil,
		func() float64 {
			if agg.Violated() {
				return 1
			}
			return 0
		})

	// The endpoint binds before Launch so probes work for the whole run;
	// readiness is wired in once the application exists.
	var readyFn atomic.Value // of func() bool
	if o.obsListen != "" {
		osrv, err := obs.ServeWith(o.obsListen, ob, obs.HandlerOptions{
			Ready: func() bool {
				f, _ := readyFn.Load().(func() bool)
				return f != nil && f()
			},
			Aggregator: agg,
		})
		if err != nil {
			return err
		}
		defer osrv.Close()
		fmt.Println("observability on http://" + osrv.Addr())
		if o.onObs != nil {
			o.onObs(osrv.Addr())
		}
	}

	launcher, err := service.NewLauncher(deployer)
	if err != nil {
		return err
	}

	sw := clock.NewStopwatch(clk)
	app, err := launcher.Launch(context.Background(), config, nil)
	if err != nil {
		return err
	}
	readyFn.Store(app.Ready)
	fmt.Printf("launched %q on %d nodes; placements:\n", app.Config.Name, len(dir.List()))
	for _, p := range app.Placements {
		fmt.Printf("  %s/%d -> %s\n", p.StageID, p.Instance, p.Node)
	}
	var mon *monitor.Monitor
	stopMon := make(chan struct{})
	if o.monitorIv > 0 {
		mon = monitor.NewWithRegistry(clk, o.monitorIv, ob.Registry)
		mon.WatchStages(app.Stages)
		// Stream dashboards to stderr while the run progresses; stdout
		// stays clean for the final report.
		go mon.Run(stopMon, os.Stderr)
	}
	if o.topIv > 0 {
		go func() {
			for {
				select {
				case <-stopMon:
					return
				case <-clk.After(o.topIv):
					agg.Collect().Render(os.Stderr)
				}
			}
		}()
	}
	if err := app.Wait(); err != nil {
		return err
	}
	close(stopMon)
	if mon != nil {
		mon.Sample()
		mon.Render(os.Stdout)
	}
	if o.topIv > 0 || len(o.scrape) > 0 {
		agg.Collect().Render(os.Stdout)
	}
	fmt.Printf("finished in %.1f virtual seconds; %d bytes crossed the network\n",
		sw.Elapsed().Seconds(), net.TotalBytes())

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\tin pkts\tin items\tout pkts\tout bytes\tcompute")
	ids := make([]string, 0, len(app.Stages))
	for id := range app.Stages {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, st := range app.Stages[id] {
			s := st.Stats()
			fmt.Fprintf(tw, "%s/%d@%s\t%d\t%d\t%d\t%d\t%s\n",
				st.ID(), st.Instance(), st.Node(),
				s.PacketsIn, s.ItemsIn, s.PacketsOut, s.BytesOut, s.ComputeCharged)
		}
	}
	if n := ob.Audit.Total(); n > 0 {
		fmt.Fprintf(tw, "adaptation epochs recorded: %d\n", n)
	}
	return tw.Flush()
}
