// Command gates-launcher is the paper's application-user entry point: it
// takes the URL (or path, or literal XML) of an application descriptor,
// deploys the application across the demo grid fabric, runs it, and reports
// per-stage statistics.
//
// Usage:
//
//	gates-launcher -config app.xml [-scale 500] [-bandwidth 100000]
//
// Stage codes named in the descriptor resolve against the built-in
// application repository (see internal/builtin); examples/ contains ready
// descriptors. With -monitor, a live dashboard streams to stderr while the
// application runs (the final dashboard still goes to stdout); with
// -obs-listen, the whole deployment's metrics, adaptation audit trail, and
// sampled traces are served over HTTP for the run's duration:
//
//	gates-launcher -config examples/compsteer.xml -obs-listen :9090 &
//	curl -s localhost:9090/metrics | grep gates_stage_items
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"github.com/gates-middleware/gates/internal/builtin"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/monitor"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/service"
)

func main() {
	var (
		config    = flag.String("config", "", "application descriptor: http(s) URL, file path, or literal XML (required)")
		scale     = flag.Float64("scale", 500, "virtual seconds per wall second")
		bandwidth = flag.Int64("bandwidth", 100_000, "cross-node link bandwidth, bytes per virtual second")
		monitorIv = flag.Duration("monitor", 0, "sample the running stages every this much virtual time, streaming dashboards to stderr while running and printing a final one to stdout (0 = off)")
		obsListen = flag.String("obs-listen", "", "HTTP address serving /metrics, /snapshot, /adaptations, /traces for the run (\":0\" picks a port; omit to disable)")
		verbose   = flag.Bool("v", false, "log structured middleware events to stderr")
	)
	flag.Parse()
	if *config == "" {
		flag.Usage()
		os.Exit(2)
	}
	var logTo *os.File
	if *verbose {
		logTo = os.Stderr
	}
	if err := run(*config, *scale, *bandwidth, *monitorIv, *obsListen, logTo); err != nil {
		fmt.Fprintln(os.Stderr, "gates-launcher:", err)
		os.Exit(1)
	}
}

func run(config string, scale float64, bandwidth int64, monitorIv time.Duration, obsListen string, logTo *os.File) error {
	clk := clock.NewScaled(scale)
	dir, net, err := builtin.Fabric(clk, bandwidth)
	if err != nil {
		return err
	}
	repo := service.NewRepository()
	if err := builtin.Register(repo); err != nil {
		return err
	}
	deployer, err := service.NewDeployer(clk, dir, repo, net)
	if err != nil {
		return err
	}

	// One observability bundle backs everything downstream of here: the
	// deployed stages publish into its registry, adaptation epochs land in
	// its audit trail, and the monitor derives its rates from the same
	// registry instead of keeping private counters.
	obsCfg := obs.Config{}
	if logTo != nil {
		obsCfg.LogWriter = logTo
	}
	ob := obs.New(clk, obsCfg)
	deployer.SetObservability(ob)
	if obsListen != "" {
		osrv, err := obs.Serve(obsListen, ob)
		if err != nil {
			return err
		}
		defer osrv.Close()
		fmt.Println("observability on http://" + osrv.Addr())
	}

	launcher, err := service.NewLauncher(deployer)
	if err != nil {
		return err
	}

	sw := clock.NewStopwatch(clk)
	app, err := launcher.Launch(context.Background(), config, nil)
	if err != nil {
		return err
	}
	fmt.Printf("launched %q on %d nodes; placements:\n", app.Config.Name, len(dir.List()))
	for _, p := range app.Placements {
		fmt.Printf("  %s/%d -> %s\n", p.StageID, p.Instance, p.Node)
	}
	var mon *monitor.Monitor
	stopMon := make(chan struct{})
	if monitorIv > 0 {
		mon = monitor.NewWithRegistry(clk, monitorIv, ob.Registry)
		mon.WatchStages(app.Stages)
		// Stream dashboards to stderr while the run progresses; stdout
		// stays clean for the final report.
		go mon.Run(stopMon, os.Stderr)
	}
	if err := app.Wait(); err != nil {
		return err
	}
	close(stopMon)
	if mon != nil {
		mon.Sample()
		mon.Render(os.Stdout)
	}
	fmt.Printf("finished in %.1f virtual seconds; %d bytes crossed the network\n",
		sw.Elapsed().Seconds(), net.TotalBytes())

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\tin pkts\tin items\tout pkts\tout bytes\tcompute")
	ids := make([]string, 0, len(app.Stages))
	for id := range app.Stages {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, st := range app.Stages[id] {
			s := st.Stats()
			fmt.Fprintf(tw, "%s/%d@%s\t%d\t%d\t%d\t%d\t%s\n",
				st.ID(), st.Instance(), st.Node(),
				s.PacketsIn, s.ItemsIn, s.PacketsOut, s.BytesOut, s.ComputeCharged)
		}
	}
	if n := ob.Audit.Total(); n > 0 {
		fmt.Fprintf(tw, "adaptation epochs recorded: %d\n", n)
	}
	return tw.Flush()
}
