package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/cliconf"
	"github.com/gates-middleware/gates/internal/obs"
)

const steeringXML = `
<application name="smoke">
  <stage id="sim" code="compsteer/sim" source="true"><nearSource>mesh</nearSource></stage>
  <stage id="sampler" code="compsteer/sampler"><nearSource>mesh</nearSource></stage>
  <stage id="analysis" code="compsteer/analyzer"/>
  <connection from="sim" to="sampler"/>
  <connection from="sampler" to="analysis"/>
</application>`

func TestRunLiteralConfig(t *testing.T) {
	// 300 virtual seconds of comp-steer at 20000x: well under a second.
	opts := launcherOptions{scale: 20_000, bandwidth: 100_000, monitorIv: 2 * time.Second}
	if err := run(steeringXML, opts); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadConfig(t *testing.T) {
	if err := run(`<application name="x"/>`, launcherOptions{scale: 20_000, bandwidth: 100_000}); err == nil {
		t.Fatal("invalid descriptor launched")
	}
}

func TestRunUnknownCode(t *testing.T) {
	xml := `<application name="x"><stage id="a" code="no/such" source="true"/></application>`
	if err := run(xml, launcherOptions{scale: 20_000, bandwidth: 100_000}); err == nil {
		t.Fatal("unknown stage code launched")
	}
}

func TestRunWithObservability(t *testing.T) {
	// The endpoint itself is exercised end-to-end in cmd/gates-node; here
	// we check the launcher can bind, serve, and tear down its surface.
	opts := launcherOptions{scale: 20_000, bandwidth: 100_000, conf: cliconf.Flags{ObsListen: "127.0.0.1:0"}}
	if err := run(steeringXML, opts); err != nil {
		t.Fatal(err)
	}
}

// TestRunClusterEndpoint drives a full launcher run while polling the
// /cluster endpoint: the merged view must carry end-to-end latency
// quantiles for the pipeline's sink once the run completes.
func TestRunClusterEndpoint(t *testing.T) {
	obsCh := make(chan string, 1)
	// The comp-steer smoke run covers ~350 virtual seconds; 1000x keeps the
	// server alive for a few hundred wall milliseconds of polling.
	opts := launcherOptions{
		scale:     1000,
		bandwidth: 100_000,
		conf:      cliconf.Flags{ObsListen: "127.0.0.1:0"},
		sloP99:    time.Hour, // never violated in a smoke run
		onObs:     func(addr string) { obsCh <- addr },
	}
	done := make(chan error, 1)
	go func() { done <- run(steeringXML, opts) }()
	addr := <-obsCh

	// Poll /cluster while the run progresses; accept the last view before
	// the server closes.
	var view obs.ClusterView
	gotLatency := false
	for {
		resp, err := http.Get("http://" + addr + "/cluster")
		if err != nil {
			break // run finished, server closed
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var v obs.ClusterView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("/cluster not JSON: %v\n%s", err, body)
		}
		view = v
		if len(v.Latency) > 0 {
			gotLatency = true
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !gotLatency {
		t.Fatalf("no latency summaries ever appeared in /cluster; last view: %+v", view)
	}
	if view.SLO.Violated {
		t.Fatalf("1h SLO flagged violated: %+v", view.SLO)
	}
	var sb strings.Builder
	view.Render(&sb)
	if !strings.Contains(sb.String(), "gates cluster") {
		t.Fatalf("dashboard render missing header:\n%s", sb.String())
	}
}

func TestSplitScrape(t *testing.T) {
	got := splitScrape(" a:1, ,b:2,")
	want := fmt.Sprintf("%v", []string{"a:1", "b:2"})
	if fmt.Sprintf("%v", got) != want {
		t.Fatalf("splitScrape = %v, want %s", got, want)
	}
	if splitScrape("") != nil {
		t.Fatalf("splitScrape(\"\") = %v, want nil", splitScrape(""))
	}
}
