package main

import (
	"testing"
	"time"
)

const steeringXML = `
<application name="smoke">
  <stage id="sim" code="compsteer/sim" source="true"><nearSource>mesh</nearSource></stage>
  <stage id="sampler" code="compsteer/sampler"><nearSource>mesh</nearSource></stage>
  <stage id="analysis" code="compsteer/analyzer"/>
  <connection from="sim" to="sampler"/>
  <connection from="sampler" to="analysis"/>
</application>`

func TestRunLiteralConfig(t *testing.T) {
	// 300 virtual seconds of comp-steer at 20000x: well under a second.
	if err := run(steeringXML, 20_000, 100_000, 2*time.Second, "", nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadConfig(t *testing.T) {
	if err := run(`<application name="x"/>`, 20_000, 100_000, 0, "", nil); err == nil {
		t.Fatal("invalid descriptor launched")
	}
}

func TestRunUnknownCode(t *testing.T) {
	xml := `<application name="x"><stage id="a" code="no/such" source="true"/></application>`
	if err := run(xml, 20_000, 100_000, 0, "", nil); err == nil {
		t.Fatal("unknown stage code launched")
	}
}

func TestRunWithObservability(t *testing.T) {
	// The endpoint itself is exercised end-to-end in cmd/gates-node; here
	// we check the launcher can bind, serve, and tear down its surface.
	if err := run(steeringXML, 20_000, 100_000, 0, "127.0.0.1:0", nil); err != nil {
		t.Fatal(err)
	}
}
