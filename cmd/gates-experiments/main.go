// Command gates-experiments regenerates the tables and figures of the GATES
// paper's evaluation (Section 5) and the ablation studies DESIGN.md defines.
//
// Usage:
//
//	gates-experiments [-exp all|fig5|fig6|fig7|fig8|fig9|ablations|ext|migration|latency|constriction|policy|chaos] [-quick] [-scale N] [-seed N] [-parallel N]
//
// -exp latency sweeps the trace sampling rate, measuring the hot-path
// observability tax and the end-to-end latency quantiles, and writes the
// BENCH_latency.json artifact alongside the rendered table. -exp
// constriction runs a pipeline with one deliberately slow stage and checks
// that the backpressure attribution engine names it. -exp policy runs the
// bandwidth-collapse scenario under a lax policy v1, hot-reloads a
// tightened v2 mid-run, and shows the decision log proving which policy
// version moved the placement. -exp chaos kills the node hosting a
// summarizer mid-stream under an armed checkpoint/recovery plane and
// compares coverage and accuracy against a fault-free run.
//
// Absolute times are virtual seconds on the emulated grid; the shapes (who
// wins, by what factor, where adaptation converges) are the reproduction
// target. See EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/gates-middleware/gates/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "which artifact to regenerate: all, fig5, fig6, fig7, fig8, fig9, ablations, ext, migration, latency, constriction, policy, chaos")
		quick   = flag.Bool("quick", false, "shrink workloads ~4x (shapes survive, absolute numbers shift)")
		scale   = flag.Float64("scale", 0, "virtual seconds per wall second (0 = per-experiment default)")
		seed    = flag.Int64("seed", 0, "workload seed (0 = default)")
		par     = flag.Int("parallel", 0, "worker pool for independent trials/cells (0 = GOMAXPROCS, 1 = sequential)")
		jsonOut = flag.String("json", "", "also write a machine-readable report (implies -exp all) to this file")
	)
	flag.Parse()

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Quick: *quick, Parallelism: *par}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "gates-experiments:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "gates-experiments:", err)
		os.Exit(1)
	}
}

func writeJSON(path string, cfg experiments.Config) error {
	rep, err := experiments.RunAll(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

func run(exp string, cfg experiments.Config) error {
	out := os.Stdout
	wantAll := exp == "all"

	if wantAll || exp == "fig5" {
		res, err := experiments.Figure5(cfg)
		if err != nil {
			return err
		}
		res.Render(out)
		fmt.Fprintln(out)
	}
	if wantAll || exp == "fig6" || exp == "fig7" {
		res, err := experiments.Figure67(cfg)
		if err != nil {
			return err
		}
		if wantAll || exp == "fig6" {
			res.RenderTime(out)
			fmt.Fprintln(out)
		}
		if wantAll || exp == "fig7" {
			res.RenderAccuracy(out)
			fmt.Fprintln(out)
		}
	}
	if wantAll || exp == "fig8" {
		res, err := experiments.Figure8(cfg)
		if err != nil {
			return err
		}
		res.Render(out)
		fmt.Fprintln(out)
	}
	if wantAll || exp == "fig9" {
		res, err := experiments.Figure9(cfg)
		if err != nil {
			return err
		}
		res.Render(out)
		fmt.Fprintln(out)
	}
	if wantAll || exp == "ablations" {
		studies := []func(experiments.Config) (*experiments.AblationResult, error){
			experiments.AblationDownstreamSign,
			experiments.AblationPhi2,
			experiments.AblationWeights,
			experiments.AblationWindow,
			experiments.AblationInterval,
			experiments.AblationCongestionPriority,
		}
		for _, study := range studies {
			res, err := study(cfg)
			if err != nil {
				return err
			}
			res.Render(out)
			fmt.Fprintln(out)
		}
	}
	if wantAll || exp == "ext" {
		scaling, err := experiments.ExtScalingSources(cfg)
		if err != nil {
			return err
		}
		scaling.Render(out)
		fmt.Fprintln(out)
		hier, err := experiments.ExtHierarchy(cfg)
		if err != nil {
			return err
		}
		hier.Render(out)
		fmt.Fprintln(out)
	}
	if wantAll || exp == "migration" {
		res, err := experiments.ExpMigration(cfg)
		if err != nil {
			return err
		}
		res.Render(out)
		fmt.Fprintln(out)
	}
	if exp == "latency" {
		res, err := experiments.ExpLatency(cfg)
		if err != nil {
			return err
		}
		res.Render(out)
		// Carry the existing artifact's numbers as prev* fields, the same
		// before/after record scripts/bench.sh keeps for BENCH_pipeline.json.
		res.MergePrev(experiments.LoadLatencyResult("BENCH_latency.json"))
		f, err := os.Create("BENCH_latency.json")
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintln(out, "wrote BENCH_latency.json")
	}
	if exp == "constriction" {
		res, err := experiments.ExpConstriction(cfg)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if exp == "policy" {
		res, err := experiments.ExpPolicy(cfg)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if exp == "chaos" {
		res, err := experiments.ExpChaos(cfg)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	switch exp {
	case "all", "fig5", "fig6", "fig7", "fig8", "fig9", "ablations", "ext", "migration", "latency", "constriction", "policy", "chaos":
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
