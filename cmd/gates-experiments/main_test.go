package main

import (
	"testing"

	"github.com/gates-middleware/gates/internal/experiments"
)

func TestRunSingleFigure(t *testing.T) {
	if err := run("fig5", experiments.Config{Quick: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", experiments.Config{Quick: true}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
