package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/cliconf"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/transport"
)

// freePort reserves a TCP port for the downstream node.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestTwoNodePipeline(t *testing.T) {
	addr := freePort(t)
	downstream := make(chan error, 1)
	go func() {
		// Analysis host: receives sampled mesh data over TCP. Scale 500
		// keeps adaptation epochs above timer granularity so the
		// cross-machine control plane has time to act.
		downstream <- run(nodeOptions{listen: addr, stage: "compsteer/analyzer", expect: 1, scale: 500})
	}()
	// Give the listener a moment to bind.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			c.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("downstream node never listened")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Sampler host: co-located simulation source, forwards over TCP.
	if err := run(nodeOptions{stage: "compsteer/sampler", source: "compsteer/sim", forward: addr, expect: 1, scale: 500}); err != nil {
		t.Fatal(err)
	}
	// The bound only detects genuine hangs. The run takes well under a
	// second unloaded, but the 500x-compressed virtual clocks multiply
	// timer churn, so CPU contention from concurrently running test
	// packages can stretch it enormously on a small machine — keep the
	// bound far above any loaded-but-progressing run.
	select {
	case err := <-downstream:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("downstream node never finished")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(nodeOptions{stage: "no/such", expect: 1, scale: 1}); err == nil || !strings.Contains(err.Error(), "not in repository") {
		t.Fatalf("unknown stage = %v", err)
	}
	if err := run(nodeOptions{stage: "compsteer/analyzer", expect: 1, scale: 1}); err == nil {
		t.Fatal("node with no input accepted")
	}
	if err := run(nodeOptions{stage: "compsteer/sampler", source: "no/such-src", expect: 1, scale: 1}); err == nil {
		t.Fatal("unknown source accepted")
	}
}

// TestNodeObservabilityEndpoints drives a live gates-node's HTTP surface end
// to end: the test plays the upstream node over real TCP, then scrapes
// /metrics until the stage counters reflect the traffic and /adaptations
// until the audit trail has recorded self-adaptation epochs, and finally
// ends the stream and checks the node shuts down cleanly.
func TestNodeObservabilityEndpoints(t *testing.T) {
	addrs := make(chan [2]string, 1)
	nodeDone := make(chan error, 1)
	go func() {
		nodeDone <- run(nodeOptions{
			listen: "127.0.0.1:0", stage: "compsteer/analyzer", expect: 1, scale: 500,
			conf:  cliconf.Flags{ObsListen: "127.0.0.1:0"},
			onObs: func(data, obs string) { addrs <- [2]string{data, obs} },
		})
	}()
	var dataAddr, obsAddr string
	select {
	case a := <-addrs:
		dataAddr, obsAddr = a[0], a[1]
	case err := <-nodeDone:
		t.Fatalf("node exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("node never reported its addresses")
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + obsAddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body)
	}

	// Play the upstream node: send data packets the analyzer will consume.
	// The node broadcasts §4 load exceptions back on this connection; drain
	// them so no unread reverse frames accumulate (see Client.CloseWrite on
	// why that matters at shutdown).
	cli, err := transport.Dial(dataAddr)
	if err != nil {
		t.Fatal(err)
	}
	go cli.ReadLoop(func(transport.Message) {})
	const packets, itemsEach = 20, 5
	for i := 0; i < packets; i++ {
		pkt := &pipeline.Packet{Seq: uint64(i), Value: float64(i), Items: itemsEach}
		if err := cli.Send(transport.PacketMessage(pkt)); err != nil {
			t.Fatal(err)
		}
	}

	// /metrics must converge on the traffic we injected: host stage item
	// counters, queue instruments, and transport frame counters all live
	// in one registry.
	wantItems := fmt.Sprintf(`gates_stage_items_in_total{instance="0",node="",stage="host"} %d`, packets*itemsEach)
	waitFor(t, "metrics to reflect injected items", func() (bool, string) {
		body := get("/metrics")
		return strings.Contains(body, wantItems), body
	})
	body := get("/metrics")
	for _, want := range []string{
		`gates_stage_items_out_total{instance="0",node="",stage="host"}`,
		`gates_queue_depth{instance="0",node="",stage="host"}`,
		`gates_transport_frames_in_total`,
		`gates_adaptations_total{instance="0",node="",stage="host"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// /adaptations must fill in as the host's adjust epochs fire (200ms
	// virtual at 500x is sub-millisecond real time).
	var audit struct {
		Total  int `json:"total"`
		Events []struct {
			Stage  string  `json:"stage"`
			Lambda float64 `json:"lambda"`
		} `json:"events"`
	}
	// Both the host and the ingress stage adapt, so events from either can
	// lead the ring; wait until the host itself has recorded one.
	waitFor(t, "adaptation audit trail to record host epochs", func() (bool, string) {
		raw := get("/adaptations")
		if err := json.Unmarshal([]byte(raw), &audit); err != nil {
			t.Fatalf("/adaptations: %v in %s", err, raw)
		}
		if audit.Total < 1 {
			return false, raw
		}
		for _, ev := range audit.Events {
			if ev.Stage == "host" {
				return true, raw
			}
		}
		return false, raw
	})

	// /snapshot serves the same registry as JSON.
	if snap := get("/snapshot"); !strings.Contains(snap, "gates_stage_items_in_total") {
		t.Errorf("/snapshot missing stage counters: %s", snap)
	}

	// End the stream; the node must drain and exit cleanly. Half-close
	// rather than Close: a full close with reverse exception frames still
	// queued unread resets the connection, and the reset can destroy the
	// final marker before the node reads it.
	if err := cli.Send(transport.PacketMessage(&pipeline.Packet{Final: true})); err != nil {
		t.Fatal(err)
	}
	if err := cli.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	select {
	case err := <-nodeDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("node never finished after final marker")
	}
}

// waitFor polls cond until it reports success or a generous deadline expires,
// failing with the last observed state.
func waitFor(t *testing.T, what string, cond func() (bool, string)) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		ok, state := cond()
		if ok {
			return
		}
		last = state
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; last state:\n%s", what, last)
}
