package main

import (
	"net"
	"strings"
	"testing"
	"time"
)

// freePort reserves a TCP port for the downstream node.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestTwoNodePipeline(t *testing.T) {
	addr := freePort(t)
	downstream := make(chan error, 1)
	go func() {
		// Analysis host: receives sampled mesh data over TCP. Scale 500
		// keeps adaptation epochs above timer granularity so the
		// cross-machine control plane has time to act.
		downstream <- run(addr, "compsteer/analyzer", "", "", 1, 500)
	}()
	// Give the listener a moment to bind.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			c.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("downstream node never listened")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Sampler host: co-located simulation source, forwards over TCP.
	if err := run("", "compsteer/sampler", "compsteer/sim", addr, 1, 500); err != nil {
		t.Fatal(err)
	}
	// The bound only detects genuine hangs. The run takes well under a
	// second unloaded, but the 500x-compressed virtual clocks multiply
	// timer churn, so CPU contention from concurrently running test
	// packages can stretch it enormously on a small machine — keep the
	// bound far above any loaded-but-progressing run.
	select {
	case err := <-downstream:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("downstream node never finished")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "no/such", "", "", 1, 1); err == nil || !strings.Contains(err.Error(), "not in repository") {
		t.Fatalf("unknown stage = %v", err)
	}
	if err := run("", "compsteer/analyzer", "", "", 1, 1); err == nil {
		t.Fatal("node with no input accepted")
	}
	if err := run("", "compsteer/sampler", "no/such-src", "", 1, 1); err == nil {
		t.Fatal("unknown source accepted")
	}
}
