// Command gates-node hosts one pipeline stage behind a real TCP endpoint —
// the genuinely distributed deployment mode. A node listens for packets from
// upstream nodes, runs its stage code on them, and either forwards results
// to the next node or terminates the pipeline.
//
// A two-machine comp-steer deployment looks like:
//
//	# analysis machine
//	gates-node -listen :7002 -stage compsteer/analyzer -obs-listen :9090
//
//	# sampler machine (also generates the simulated stream)
//	gates-node -listen :7001 -stage compsteer/sampler -forward host2:7002 -source compsteer/sim
//
// Load exceptions travel back over the same connections, so the sampler
// adapts exactly as it does in the emulated experiments. With -obs-listen,
// the node additionally serves its observability surface over HTTP:
// /metrics (Prometheus text), /snapshot (JSON, scraped by a launcher's
// cluster aggregator), /adaptations (the self-adaptation audit trail),
// /traces (sampled hot-path spans), /healthz and /readyz (probes), and
// /debug/pprof. Trace sampling is tuned with -trace-sample (or the
// GATES_TRACE_SAMPLE environment variable): tracing one in every N
// operations keeps hot-path overhead to an occasional ring write, while
// -trace-sample 0 removes even that.
//
// The node is also policy-driven: -policy loads a declarative control-plane
// document (and -policy-watch hot-reloads it on change), GET/POST /policy
// inspects and hot-reloads it over HTTP, and /decisions serves the decision
// log — every control-plane verdict with the policy version that produced
// it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/builtin"
	"github.com/gates-middleware/gates/internal/cliconf"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/policy"
	"github.com/gates-middleware/gates/internal/service"
	"github.com/gates-middleware/gates/internal/transport"
)

func main() {
	var opts nodeOptions
	flag.StringVar(&opts.listen, "listen", "", "TCP address to accept upstream packets on (omit for a source-only node)")
	flag.StringVar(&opts.stage, "stage", "", "repository code of the stage to host (required)")
	flag.StringVar(&opts.source, "source", "", "repository code of a co-located source feeding the stage")
	flag.StringVar(&opts.forward, "forward", "", "downstream node address to forward output to")
	flag.IntVar(&opts.expect, "expect", 1, "number of upstream end-of-stream markers to wait for")
	flag.Float64Var(&opts.scale, "scale", 1, "virtual seconds per wall second")
	shared := cliconf.Register(flag.CommandLine)
	flag.Parse()
	opts.conf = *shared
	if opts.stage == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "gates-node:", err)
		os.Exit(1)
	}
}

// nodeOptions carries one node's configuration; flags populate it in main
// and tests construct it directly.
type nodeOptions struct {
	listen  string // upstream TCP endpoint ("" = source-only node)
	stage   string // repository code of the hosted stage (required)
	source  string // co-located source code ("" = fed over TCP)
	forward string // downstream node address ("" = terminal node)
	expect  int    // upstream end-of-stream markers to wait for
	scale   float64

	conf  cliconf.Flags          // shared observability + policy flags
	onObs func(addr, obs string) // test hook: bound data + obs addresses
}

func run(o nodeOptions) error {
	var clk clock.Clock = clock.NewReal()
	if o.scale > 1 {
		clk = clock.NewScaled(o.scale)
	}
	repo := service.NewRepository()
	if err := builtin.Register(repo); err != nil {
		return err
	}
	procFactory, ok := repo.Processor(o.stage)
	if !ok {
		return fmt.Errorf("stage code %q not in repository (codes: %v)", o.stage, repo.Codes())
	}

	// The observability bundle is always built (a nil bundle would also
	// work, but one bundle keeps the audit trail available for the final
	// report); the HTTP endpoint is opt-in. SIGQUIT snapshots the flight
	// recorder to disk when -flight-dump is set.
	ob := o.conf.NewObservability(clk)
	defer cliconf.NotifyFlightDump(ob, "gates-node")()
	defer ob.StartTimeseries()()

	// The policy engine backs /policy and the decision log even on a plain
	// node: its stage hosts no planner, but operators can inspect and
	// hot-reload the document that a co-resident launcher or a future
	// control plane would consult, and policy loads land in /decisions.
	pol, stopWatch, err := o.conf.StartPolicy(clk, ob)
	if err != nil {
		return err
	}
	defer stopWatch()

	eng := pipeline.New(clk)
	eng.SetObservability(ob)

	// Fault tolerance: arm the per-edge replay rings and consumer-side
	// watermarks when the flags or the policy document ask for them. The
	// checkpoint and recovery controllers live with a launcher-owned
	// deployment; a standalone node contributes the replayable edges and
	// dedupe that recovery elsewhere depends on.
	if _, replayN, ftOn := o.conf.FaultTolerance(pol.Active().Doc); ftOn {
		if replayN <= 0 {
			replayN = policy.DefaultReplayBuffer
		}
		eng.SetDefaultReplayBuffer(replayN)
	}

	// Local stage hosting the user code. When upstream nodes feed this
	// host over TCP, its load exceptions are broadcast back to them on
	// the same connections (the §4 control plane across machines); srv
	// is bound below once listening starts.
	var srv *transport.Server
	hostCfg := pipeline.StageConfig{
		OnObserve: func(_ *pipeline.Stage, _ time.Time, obsn adapt.Observation) {
			if srv != nil && obsn.Exception != adapt.ExceptionNone {
				srv.Broadcast(transport.ExceptionMessage(obsn.Exception))
			}
		},
	}
	host, err := eng.AddProcessorStage("host", 0, procFactory(0), hostCfg)
	if err != nil {
		return err
	}

	// Upstream: either a network ingress or a co-located source.
	var dataAddr string
	switch {
	case o.source != "":
		srcFactory, ok := repo.Source(o.source)
		if !ok {
			return fmt.Errorf("source code %q not in repository", o.source)
		}
		src, err := eng.AddSourceStage("source", 0, srcFactory(0), pipeline.StageConfig{})
		if err != nil {
			return err
		}
		if err := eng.Connect(src, host, nil); err != nil {
			return err
		}
	case o.listen != "":
		ingress := transport.NewIngress(o.expect, 256)
		ingress.OnException = func(e adapt.Exception) {
			host.Controller().OnDownstreamException(e)
		}
		ingress.Tracer = ob.Tracer
		srv, err = transport.Listen(o.listen, ingress.Deliver)
		if err != nil {
			return err
		}
		defer srv.Close()
		srv.Instrument(ob.Registry, o.listen)
		dataAddr = srv.Addr()
		fmt.Println("listening on", dataAddr)
		in, err := eng.AddSourceStage("ingress", 0, ingress, pipeline.StageConfig{})
		if err != nil {
			return err
		}
		if err := eng.Connect(in, host, nil); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -listen or -source to feed the stage")
	}

	// Observability endpoint: bound before the engine runs, so scrapes work
	// for the node's whole life.
	var obsAddr string
	if o.conf.ObsListen != "" {
		osrv, err := obs.ServeWith(o.conf.ObsListen, ob, obs.HandlerOptions{
			Ready:  eng.Ready,
			Policy: pol.Handler(),
		})
		if err != nil {
			return err
		}
		defer osrv.Close()
		obsAddr = osrv.Addr()
		fmt.Println("observability on http://" + obsAddr)
	}
	if o.onObs != nil {
		o.onObs(dataAddr, obsAddr)
	}

	// Downstream: a network egress, when configured.
	if o.forward != "" {
		cli, err := transport.Dial(o.forward)
		if err != nil {
			return err
		}
		cli.Instrument(ob.Registry, o.forward)
		// Exceptions the downstream host broadcasts back drive this
		// node's adaptation, exactly as an in-process neighbor would.
		readDone := make(chan struct{})
		go func() {
			defer close(readDone)
			cli.ReadLoop(func(m transport.Message) {
				if m.Kind == transport.KindException {
					host.Controller().OnDownstreamException(m.Exception)
				}
			})
		}()
		defer func() {
			// Shut down in half-close order: signal end-of-stream,
			// then keep draining exception traffic until the peer
			// hangs up. Closing outright while an exception frame
			// sits unread here would reset the connection and could
			// destroy the still-in-flight Final marker on the peer.
			cli.CloseWrite()
			select {
			case <-readDone:
			case <-time.After(30 * time.Second):
			}
			cli.Close()
		}()
		egress := transport.NewEgress(cli)
		egress.Tracer = ob.Tracer
		eg, err := eng.AddProcessorStage("egress", 0, egress, pipeline.StageConfig{DisableAdaptation: true})
		if err != nil {
			return err
		}
		if err := eng.Connect(host, eg, nil); err != nil {
			return err
		}
	}

	if err := eng.Run(context.Background()); err != nil {
		return err
	}
	for _, st := range eng.Stages() {
		s := st.Stats()
		fmt.Printf("%s/%d: in=%d items out=%d pkts %d bytes\n",
			st.ID(), st.Instance(), s.ItemsIn, s.PacketsOut, s.BytesOut)
	}
	if n := ob.Audit.Total(); n > 0 {
		fmt.Printf("adaptation epochs: %d\n", n)
	}
	return nil
}
