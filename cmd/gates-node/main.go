// Command gates-node hosts one pipeline stage behind a real TCP endpoint —
// the genuinely distributed deployment mode. A node listens for packets from
// upstream nodes, runs its stage code on them, and either forwards results
// to the next node or terminates the pipeline.
//
// A two-machine comp-steer deployment looks like:
//
//	# analysis machine
//	gates-node -listen :7002 -stage compsteer/analyzer
//
//	# sampler machine (also generates the simulated stream)
//	gates-node -listen :7001 -stage compsteer/sampler -forward host2:7002 -source compsteer/sim
//
// Load exceptions travel back over the same connections, so the sampler
// adapts exactly as it does in the emulated experiments.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/builtin"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/service"
	"github.com/gates-middleware/gates/internal/transport"
)

func main() {
	var (
		listen  = flag.String("listen", "", "TCP address to accept upstream packets on (omit for a source-only node)")
		stage   = flag.String("stage", "", "repository code of the stage to host (required)")
		source  = flag.String("source", "", "repository code of a co-located source feeding the stage")
		forward = flag.String("forward", "", "downstream node address to forward output to")
		expect  = flag.Int("expect", 1, "number of upstream end-of-stream markers to wait for")
		scale   = flag.Float64("scale", 1, "virtual seconds per wall second")
	)
	flag.Parse()
	if *stage == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*listen, *stage, *source, *forward, *expect, *scale); err != nil {
		fmt.Fprintln(os.Stderr, "gates-node:", err)
		os.Exit(1)
	}
}

func run(listen, stageCode, sourceCode, forward string, expect int, scale float64) error {
	var clk clock.Clock = clock.NewReal()
	if scale > 1 {
		clk = clock.NewScaled(scale)
	}
	repo := service.NewRepository()
	if err := builtin.Register(repo); err != nil {
		return err
	}
	procFactory, ok := repo.Processor(stageCode)
	if !ok {
		return fmt.Errorf("stage code %q not in repository (codes: %v)", stageCode, repo.Codes())
	}

	eng := pipeline.New(clk)

	// Local stage hosting the user code. When upstream nodes feed this
	// host over TCP, its load exceptions are broadcast back to them on
	// the same connections (the §4 control plane across machines); srv
	// is bound below once listening starts.
	var srv *transport.Server
	hostCfg := pipeline.StageConfig{
		OnObserve: func(_ *pipeline.Stage, _ time.Time, obs adapt.Observation) {
			if srv != nil && obs.Exception != adapt.ExceptionNone {
				srv.Broadcast(transport.ExceptionMessage(obs.Exception))
			}
		},
	}
	host, err := eng.AddProcessorStage("host", 0, procFactory(0), hostCfg)
	if err != nil {
		return err
	}

	// Upstream: either a network ingress or a co-located source.
	switch {
	case sourceCode != "":
		srcFactory, ok := repo.Source(sourceCode)
		if !ok {
			return fmt.Errorf("source code %q not in repository", sourceCode)
		}
		src, err := eng.AddSourceStage("source", 0, srcFactory(0), pipeline.StageConfig{})
		if err != nil {
			return err
		}
		if err := eng.Connect(src, host, nil); err != nil {
			return err
		}
	case listen != "":
		ingress := transport.NewIngress(expect, 256)
		ingress.OnException = func(e adapt.Exception) {
			host.Controller().OnDownstreamException(e)
		}
		srv, err = transport.Listen(listen, ingress.Deliver)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Println("listening on", srv.Addr())
		in, err := eng.AddSourceStage("ingress", 0, ingress, pipeline.StageConfig{})
		if err != nil {
			return err
		}
		if err := eng.Connect(in, host, nil); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -listen or -source to feed the stage")
	}

	// Downstream: a network egress, when configured.
	if forward != "" {
		cli, err := transport.Dial(forward)
		if err != nil {
			return err
		}
		// Exceptions the downstream host broadcasts back drive this
		// node's adaptation, exactly as an in-process neighbor would.
		readDone := make(chan struct{})
		go func() {
			defer close(readDone)
			cli.ReadLoop(func(m transport.Message) {
				if m.Kind == transport.KindException {
					host.Controller().OnDownstreamException(m.Exception)
				}
			})
		}()
		defer func() {
			// Shut down in half-close order: signal end-of-stream,
			// then keep draining exception traffic until the peer
			// hangs up. Closing outright while an exception frame
			// sits unread here would reset the connection and could
			// destroy the still-in-flight Final marker on the peer.
			cli.CloseWrite()
			select {
			case <-readDone:
			case <-time.After(30 * time.Second):
			}
			cli.Close()
		}()
		eg, err := eng.AddProcessorStage("egress", 0, transport.NewEgress(cli), pipeline.StageConfig{DisableAdaptation: true})
		if err != nil {
			return err
		}
		if err := eng.Connect(host, eg, nil); err != nil {
			return err
		}
	}

	if err := eng.Run(context.Background()); err != nil {
		return err
	}
	for _, st := range eng.Stages() {
		s := st.Stats()
		fmt.Printf("%s/%d: in=%d items out=%d pkts %d bytes\n",
			st.ID(), st.Instance(), s.ItemsIn, s.PacketsOut, s.BytesOut)
	}
	return nil
}
