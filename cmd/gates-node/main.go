// Command gates-node hosts one pipeline stage behind a real TCP endpoint —
// the genuinely distributed deployment mode. A node listens for packets from
// upstream nodes, runs its stage code on them, and either forwards results
// to the next node or terminates the pipeline.
//
// A two-machine comp-steer deployment looks like:
//
//	# analysis machine
//	gates-node -listen :7002 -stage compsteer/analyzer -obs-listen :9090
//
//	# sampler machine (also generates the simulated stream)
//	gates-node -listen :7001 -stage compsteer/sampler -forward host2:7002 -source compsteer/sim
//
// Load exceptions travel back over the same connections, so the sampler
// adapts exactly as it does in the emulated experiments. With -obs-listen,
// the node additionally serves its observability surface over HTTP:
// /metrics (Prometheus text), /snapshot (JSON, scraped by a launcher's
// cluster aggregator), /adaptations (the self-adaptation audit trail),
// /traces (sampled hot-path spans), /healthz and /readyz (probes), and
// /debug/pprof. Trace sampling is tuned with -trace-sample (or the
// GATES_TRACE_SAMPLE environment variable): tracing one in every N
// operations keeps hot-path overhead to an occasional ring write, while
// -trace-sample 0 removes even that.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/builtin"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/service"
	"github.com/gates-middleware/gates/internal/transport"
)

func main() {
	var opts nodeOptions
	flag.StringVar(&opts.listen, "listen", "", "TCP address to accept upstream packets on (omit for a source-only node)")
	flag.StringVar(&opts.stage, "stage", "", "repository code of the stage to host (required)")
	flag.StringVar(&opts.source, "source", "", "repository code of a co-located source feeding the stage")
	flag.StringVar(&opts.forward, "forward", "", "downstream node address to forward output to")
	flag.IntVar(&opts.expect, "expect", 1, "number of upstream end-of-stream markers to wait for")
	flag.Float64Var(&opts.scale, "scale", 1, "virtual seconds per wall second")
	flag.StringVar(&opts.obsListen, "obs-listen", "", "HTTP address serving /metrics, /snapshot, /adaptations, /traces, /healthz, /readyz, /debug/pprof (\":0\" picks a port; omit to disable)")
	traceSample := flag.Int("trace-sample", obs.DefaultTraceSample(), "record one trace span in every N hot-path operations; 0 disables tracing entirely (default from GATES_TRACE_SAMPLE)")
	flag.IntVar(&opts.flightSize, "flight-recorder-size", obs.DefaultFlightCapacity, "events retained by the in-memory flight recorder")
	flag.StringVar(&opts.flightDump, "flight-dump", "", "file path the flight recorder snapshots to on SLO violation or SIGQUIT (omit to disable disk dumps)")
	verbose := flag.Bool("v", false, "log structured middleware events to stderr")
	flag.Parse()
	opts.traceSample = obs.SampleEveryFor(*traceSample)
	if opts.stage == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *verbose {
		opts.logTo = os.Stderr
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "gates-node:", err)
		os.Exit(1)
	}
}

// nodeOptions carries one node's configuration; flags populate it in main
// and tests construct it directly.
type nodeOptions struct {
	listen  string // upstream TCP endpoint ("" = source-only node)
	stage   string // repository code of the hosted stage (required)
	source  string // co-located source code ("" = fed over TCP)
	forward string // downstream node address ("" = terminal node)
	expect  int    // upstream end-of-stream markers to wait for
	scale   float64

	obsListen   string                 // HTTP observability address ("" = disabled)
	traceSample int                    // obs.Config.SampleEvery semantics (0 = default, <0 = off)
	flightSize  int                    // flight-recorder ring capacity (0 = default)
	flightDump  string                 // flight-recorder dump path ("" = no disk dumps)
	logTo       *os.File               // structured log destination (nil = discard)
	onObs       func(addr, obs string) // test hook: bound data + obs addresses
}

func run(o nodeOptions) error {
	var clk clock.Clock = clock.NewReal()
	if o.scale > 1 {
		clk = clock.NewScaled(o.scale)
	}
	repo := service.NewRepository()
	if err := builtin.Register(repo); err != nil {
		return err
	}
	procFactory, ok := repo.Processor(o.stage)
	if !ok {
		return fmt.Errorf("stage code %q not in repository (codes: %v)", o.stage, repo.Codes())
	}

	// The observability bundle is always built (a nil bundle would also
	// work, but one bundle keeps the audit trail available for the final
	// report); the HTTP endpoint is opt-in.
	obsCfg := obs.Config{SampleEvery: o.traceSample, FlightCapacity: o.flightSize}
	if o.logTo != nil {
		obsCfg.LogWriter = o.logTo
	}
	ob := obs.New(clk, obsCfg)
	if o.flightDump != "" {
		ob.Flight.SetDumpPath(o.flightDump)
	}
	// SIGQUIT snapshots the flight recorder to disk (when -flight-dump is
	// set) without killing the process — the classic "what just happened"
	// escape hatch on a live node.
	sigq := make(chan os.Signal, 1)
	signal.Notify(sigq, syscall.SIGQUIT)
	defer signal.Stop(sigq)
	go func() {
		for range sigq {
			if path, err := ob.Flight.DumpToDisk("sigquit"); err != nil {
				fmt.Fprintln(os.Stderr, "gates-node: flight dump:", err)
			} else if path != "" {
				fmt.Fprintln(os.Stderr, "gates-node: flight recorder dumped to", path)
			}
		}
	}()

	eng := pipeline.New(clk)
	eng.SetObservability(ob)

	// Local stage hosting the user code. When upstream nodes feed this
	// host over TCP, its load exceptions are broadcast back to them on
	// the same connections (the §4 control plane across machines); srv
	// is bound below once listening starts.
	var srv *transport.Server
	hostCfg := pipeline.StageConfig{
		OnObserve: func(_ *pipeline.Stage, _ time.Time, obsn adapt.Observation) {
			if srv != nil && obsn.Exception != adapt.ExceptionNone {
				srv.Broadcast(transport.ExceptionMessage(obsn.Exception))
			}
		},
	}
	host, err := eng.AddProcessorStage("host", 0, procFactory(0), hostCfg)
	if err != nil {
		return err
	}

	// Upstream: either a network ingress or a co-located source.
	var dataAddr string
	switch {
	case o.source != "":
		srcFactory, ok := repo.Source(o.source)
		if !ok {
			return fmt.Errorf("source code %q not in repository", o.source)
		}
		src, err := eng.AddSourceStage("source", 0, srcFactory(0), pipeline.StageConfig{})
		if err != nil {
			return err
		}
		if err := eng.Connect(src, host, nil); err != nil {
			return err
		}
	case o.listen != "":
		ingress := transport.NewIngress(o.expect, 256)
		ingress.OnException = func(e adapt.Exception) {
			host.Controller().OnDownstreamException(e)
		}
		ingress.Tracer = ob.Tracer
		srv, err = transport.Listen(o.listen, ingress.Deliver)
		if err != nil {
			return err
		}
		defer srv.Close()
		srv.Instrument(ob.Registry, o.listen)
		dataAddr = srv.Addr()
		fmt.Println("listening on", dataAddr)
		in, err := eng.AddSourceStage("ingress", 0, ingress, pipeline.StageConfig{})
		if err != nil {
			return err
		}
		if err := eng.Connect(in, host, nil); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -listen or -source to feed the stage")
	}

	// Observability endpoint: bound before the engine runs, so scrapes work
	// for the node's whole life.
	var obsAddr string
	if o.obsListen != "" {
		osrv, err := obs.ServeWith(o.obsListen, ob, obs.HandlerOptions{Ready: eng.Ready})
		if err != nil {
			return err
		}
		defer osrv.Close()
		obsAddr = osrv.Addr()
		fmt.Println("observability on http://" + obsAddr)
	}
	if o.onObs != nil {
		o.onObs(dataAddr, obsAddr)
	}

	// Downstream: a network egress, when configured.
	if o.forward != "" {
		cli, err := transport.Dial(o.forward)
		if err != nil {
			return err
		}
		cli.Instrument(ob.Registry, o.forward)
		// Exceptions the downstream host broadcasts back drive this
		// node's adaptation, exactly as an in-process neighbor would.
		readDone := make(chan struct{})
		go func() {
			defer close(readDone)
			cli.ReadLoop(func(m transport.Message) {
				if m.Kind == transport.KindException {
					host.Controller().OnDownstreamException(m.Exception)
				}
			})
		}()
		defer func() {
			// Shut down in half-close order: signal end-of-stream,
			// then keep draining exception traffic until the peer
			// hangs up. Closing outright while an exception frame
			// sits unread here would reset the connection and could
			// destroy the still-in-flight Final marker on the peer.
			cli.CloseWrite()
			select {
			case <-readDone:
			case <-time.After(30 * time.Second):
			}
			cli.Close()
		}()
		egress := transport.NewEgress(cli)
		egress.Tracer = ob.Tracer
		eg, err := eng.AddProcessorStage("egress", 0, egress, pipeline.StageConfig{DisableAdaptation: true})
		if err != nil {
			return err
		}
		if err := eng.Connect(host, eg, nil); err != nil {
			return err
		}
	}

	if err := eng.Run(context.Background()); err != nil {
		return err
	}
	for _, st := range eng.Stages() {
		s := st.Stats()
		fmt.Printf("%s/%d: in=%d items out=%d pkts %d bytes\n",
			st.ID(), st.Instance(), s.ItemsIn, s.PacketsOut, s.BytesOut)
	}
	if n := ob.Audit.Total(); n > 0 {
		fmt.Printf("adaptation epochs: %d\n", n)
	}
	return nil
}
