// Deterministic end-to-end check of the cluster observability plane: two
// engines ("nodes") on one manual clock, each pushing packets through a
// paced link into an instrumented sink, then a cluster aggregator merging
// both nodes' snapshots behind a live /cluster endpoint. The merged
// sink-side p99 must agree (±20%) with the exact per-packet virtual-clock
// latencies the sinks recorded themselves — the acceptance bar for the
// histogram pipeline (observe → bucket → snapshot → merge → interpolate).
package gates_test

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// latSource emits n packets of wire bytes each.
type latSource struct {
	n    int
	wire int
}

func (s *latSource) Run(_ *pipeline.Context, out *pipeline.Emitter) error {
	for i := 0; i < s.n; i++ {
		if err := out.Emit(&pipeline.Packet{WireSize: s.wire}); err != nil {
			return err
		}
	}
	return nil
}

// latSink records every consumed packet's source-to-sink virtual latency.
type latSink struct {
	clk *clock.Manual
	mu  sync.Mutex
	lat []float64
}

func (s *latSink) Init(*pipeline.Context) error { return nil }
func (s *latSink) Process(_ *pipeline.Context, pkt *pipeline.Packet, _ *pipeline.Emitter) error {
	if !pkt.Birth.IsZero() {
		s.mu.Lock()
		s.lat = append(s.lat, s.clk.Now().Sub(pkt.Birth).Seconds())
		s.mu.Unlock()
	}
	return nil
}
func (s *latSink) Finish(*pipeline.Context, *pipeline.Emitter) error { return nil }

// runLatencyNode drives one source→link→sink engine to completion on the
// shared manual clock, advancing it deadline-by-deadline so every virtual
// timestamp is deterministic, and returns the node's obs bundle plus the
// sink's exact latency samples.
func runLatencyNode(t *testing.T, clk *clock.Manual, packets int, bandwidth int64) (*obs.Observability, []float64) {
	t.Helper()
	ob := obs.New(clk, obs.Config{})
	eng := pipeline.New(clk)
	eng.SetObservability(ob)
	src, err := eng.AddSourceStage("src", 0, &latSource{n: packets, wire: 100}, pipeline.StageConfig{DisableAdaptation: true})
	if err != nil {
		t.Fatal(err)
	}
	sink := &latSink{clk: clk}
	sinkSt, err := eng.AddProcessorStage("sink", 0, sink, pipeline.StageConfig{
		DisableAdaptation: true, QueueCapacity: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	link := netsim.NewLink(clk, netsim.LinkConfig{Bandwidth: bandwidth, Quantum: 50 * time.Millisecond})
	if err := eng.Connect(src, sinkSt, link); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- eng.Run(context.Background()) }()
	deadline := time.Now().Add(30 * time.Second)
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			return ob, sink.lat
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("engine never finished")
		}
		if dl, ok := clk.NextDeadline(); ok {
			clk.AdvanceTo(dl)
		} else {
			// No sleeper registered yet: let the engine goroutines run.
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// exactQuantile mirrors the histogram's rank convention (rank = q*n, at
// least 1) on raw samples.
func exactQuantile(samples []float64, q float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := int(math.Ceil(q * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

func TestClusterMergedLatencyMatchesVirtualClock(t *testing.T) {
	const packets = 200
	clk := clock.NewManual()
	// Two nodes with different link speeds, so their latency distributions
	// differ and the merge is doing real work.
	obA, latA := runLatencyNode(t, clk, packets, 1000)
	obB, latB := runLatencyNode(t, clk, packets, 2000)
	if len(latA) != packets || len(latB) != packets {
		t.Fatalf("sinks recorded %d + %d samples, want %d each", len(latA), len(latB), packets)
	}

	agg := obs.NewAggregator(clk, obs.SLOConfig{TargetP99: 1e6})
	agg.AddSource("node-a", obs.LocalSource(obA))
	agg.AddSource("node-b", obs.LocalSource(obB))
	srv, err := obs.ServeWith("127.0.0.1:0", obA, obs.HandlerOptions{Aggregator: agg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/cluster returned %s", resp.Status)
	}
	var view obs.ClusterView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}

	for _, n := range view.Nodes {
		if !n.OK {
			t.Fatalf("node %s down: %s", n.Name, n.Err)
		}
	}
	var sinkLat *obs.LatencySummary
	for i := range view.Latency {
		if view.Latency[i].Stage == "sink" {
			sinkLat = &view.Latency[i]
		}
	}
	if sinkLat == nil {
		t.Fatalf("merged view has no sink latency summary: %+v", view.Latency)
	}
	if !sinkLat.Sink {
		t.Fatal("sink stage not marked as a sink in the merged view")
	}
	if sinkLat.Count != 2*packets {
		t.Fatalf("merged sink count = %d, want %d", sinkLat.Count, 2*packets)
	}

	// The acceptance bar: the merged histogram p99 served at /cluster is
	// within ±20% of the exact per-packet virtual-clock p99.
	all := append(append([]float64(nil), latA...), latB...)
	for _, tc := range []struct {
		name   string
		q      float64
		merged float64
	}{
		{"p50", 0.50, float64(sinkLat.P50)},
		{"p95", 0.95, float64(sinkLat.P95)},
		{"p99", 0.99, float64(sinkLat.P99)},
	} {
		exact := exactQuantile(all, tc.q)
		if exact <= 0 {
			t.Fatalf("%s: exact quantile is zero — no pacing happened", tc.name)
		}
		if rel := math.Abs(tc.merged-exact) / exact; rel > 0.20 {
			t.Errorf("%s: merged %.4gs vs exact %.4gs (%.1f%% off, budget 20%%)",
				tc.name, tc.merged, exact, rel*100)
		}
	}

	// With a sky-high target and finished pipelines, the SLO must be clean.
	if !view.SLO.Evaluated || view.SLO.Violated {
		t.Fatalf("SLO = %+v, want evaluated and healthy", view.SLO)
	}

	var buf strings.Builder
	view.Render(&buf)
	if !strings.Contains(buf.String(), "sink (sink)") {
		t.Fatalf("dashboard missing sink latency row:\n%s", buf.String())
	}
}

// pacedSource emits n packets, charging pace of virtual compute per packet —
// a fixed arrival rate.
type pacedSource struct {
	n    int
	pace time.Duration
}

func (s *pacedSource) Run(ctx *pipeline.Context, out *pipeline.Emitter) error {
	for i := 0; i < s.n; i++ {
		if err := out.EmitValue(i, 8); err != nil {
			return err
		}
		ctx.ChargeCompute(s.pace)
	}
	return nil
}

// thinningSampler forwards packets with probability rate — the Figure 8
// adaptive stage, whose rate parameter the §4 law turns down under
// overload.
type thinningSampler struct {
	rate *adapt.Param
}

func (s *thinningSampler) Init(ctx *pipeline.Context) error {
	var err error
	s.rate, err = ctx.SpecifyParam(adapt.ParamSpec{
		Name: "rate", Initial: 0.8, Min: 0.01, Max: 1, Step: 0.01,
		Direction: adapt.IncreaseSlowsProcessing,
	})
	return err
}
func (s *thinningSampler) Process(_ *pipeline.Context, pkt *pipeline.Packet, out *pipeline.Emitter) error {
	if pkt.Seq%100 < uint64(s.rate.Value()*100) {
		return out.EmitValue(pkt.Value, 8)
	}
	return nil
}
func (s *thinningSampler) Finish(*pipeline.Context, *pipeline.Emitter) error { return nil }

// slowAnalysis charges cost per packet — a processing rate below the
// unthinned arrival rate.
type slowAnalysis struct{ cost time.Duration }

func (a *slowAnalysis) Init(*pipeline.Context) error { return nil }
func (a *slowAnalysis) Process(ctx *pipeline.Context, _ *pipeline.Packet, _ *pipeline.Emitter) error {
	ctx.ChargeCompute(a.cost)
	return nil
}
func (a *slowAnalysis) Finish(*pipeline.Context, *pipeline.Emitter) error { return nil }

// TestSLOFlagTripsUnderOverloadAndClears is the acceptance scenario for the
// violation detector against a live pipeline: arrival (one packet per 5
// virtual ms) outruns processing (12 virtual ms per packet), the analysis
// queue grows, and the cluster SLO flag must trip on sustained positive
// d-tilde. Once the §4 controller has throttled the sampler and the stream
// drains, the queue-growth signal goes non-positive and the flag must
// clear.
func TestSLOFlagTripsUnderOverloadAndClears(t *testing.T) {
	// Scale 20 keeps every paced sleep (compute quanta of 50-60 virtual ms)
	// at 2.5-3 wall ms — far above OS timer granularity, so the
	// arrival/processing ratio survives race-detector slowdowns.
	clk := clock.NewScaled(20)
	ob := obs.New(clk, obs.Config{})
	eng := pipeline.New(clk)
	eng.SetObservability(ob)

	src, _ := eng.AddSourceStage("sim", 0, &pacedSource{n: 6000, pace: 5 * time.Millisecond}, pipeline.StageConfig{
		DisableAdaptation: true,
		ComputeQuantum:    50 * time.Millisecond,
	})
	smp, _ := eng.AddProcessorStage("sampler", 0, &thinningSampler{}, pipeline.StageConfig{
		QueueCapacity: 100,
		AdaptInterval: 100 * time.Millisecond,
	})
	ana, _ := eng.AddProcessorStage("analysis", 0, &slowAnalysis{cost: 12 * time.Millisecond}, pipeline.StageConfig{
		QueueCapacity:  100,
		AdaptInterval:  100 * time.Millisecond,
		ComputeQuantum: 60 * time.Millisecond,
	})
	eng.Connect(src, smp, nil)
	eng.Connect(smp, ana, nil)

	// No latency target: the growth detector alone judges this run.
	agg := obs.NewAggregator(clk, obs.SLOConfig{})
	agg.AddSource("local", obs.LocalSource(ob))

	done := make(chan error, 1)
	go func() { done <- eng.Run(context.Background()) }()
	// The run has two long phases: ~4 virtual seconds of raw overload while
	// the controller walks the rate down (d-tilde > 0 every epoch), then
	// ~26 virtual seconds at the converged rate, where the queue stops
	// growing and epochs read d-tilde <= 0. Collections sampled throughout
	// must see the flag trip in the first phase and clear in the second.
	// (After Run returns the gauge freezes at its last mid-drain value, so
	// the recovery must be observed live, not post-mortem.)
	tripped, cleared := false, false
	for running := true; running; {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			running = false
		default:
			if agg.Collect().SLO.Violated {
				tripped = true
			} else if tripped {
				cleared = true
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if !tripped {
		t.Fatal("SLO flag never tripped while arrival outran processing")
	}
	if !cleared {
		t.Fatal("SLO flag never cleared after the adaptation controller converged")
	}

	// The trail recorded the story: some violation transition followed by a
	// recovery.
	evs := agg.View().SLOEvents
	sawTrip := false
	sawRecovery := false
	for _, ev := range evs {
		if ev.Violated {
			sawTrip = true
		} else if sawTrip {
			sawRecovery = true
		}
	}
	if !sawTrip || !sawRecovery {
		t.Fatalf("SLO trail %+v missing trip-then-recovery", evs)
	}
}
