// Package metrics implements the evaluation's measurement machinery:
// the count-samps accuracy score (top-k membership plus frequency fidelity,
// the paper's "how often the top 10 most frequently occurring elements were
// correctly reported, and how correctly their frequency of occurrence was
// reported") and thread-safe time series for the Figure 8/9 parameter
// convergence traces.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/gates-middleware/gates/internal/workload"
)

// Accuracy is the two-part count-samps score, each component in [0, 1].
type Accuracy struct {
	// Membership is the fraction of the true top-k present in the
	// reported top-k.
	Membership float64
	// Frequency is the mean frequency fidelity over the true top-k:
	// 1 − |est−true|/true per value, 0 for missing values, floored at 0.
	Frequency float64
}

// Score is the combined percentage the paper's Figure 5/7 style tables
// report: the mean of membership and frequency fidelity, scaled to 0–100.
func (a Accuracy) Score() float64 {
	return 100 * (a.Membership + a.Frequency) / 2
}

// String formats the accuracy like the paper's tables.
func (a Accuracy) String() string {
	return fmt.Sprintf("%.1f (membership %.2f, frequency %.2f)", a.Score(), a.Membership, a.Frequency)
}

// TopKAccuracy compares a reported top-k against ground-truth counts.
func TopKAccuracy(trueCounts map[int]int, reported []workload.ValueCount, k int) Accuracy {
	trueTop := workload.TopK(trueCounts, k)
	if len(trueTop) == 0 {
		return Accuracy{Membership: 1, Frequency: 1}
	}
	rep := make(map[int]float64, len(reported))
	n := k
	if n > len(reported) {
		n = len(reported)
	}
	for _, vc := range reported[:n] {
		rep[vc.Value] = vc.Count
	}
	var hits int
	var freq float64
	for _, tv := range trueTop {
		est, ok := rep[tv.Value]
		if !ok {
			continue
		}
		hits++
		diff := est - tv.Count
		if diff < 0 {
			diff = -diff
		}
		f := 1 - diff/tv.Count
		if f < 0 {
			f = 0
		}
		freq += f
	}
	return Accuracy{
		Membership: float64(hits) / float64(len(trueTop)),
		Frequency:  freq / float64(len(trueTop)),
	}
}

// Point is one sample of a time series, with T relative to the series
// epoch.
type Point struct {
	T time.Duration
	V float64
}

// TimeSeries records (virtual time, value) samples. It is safe for
// concurrent appends, which the per-stage adaptation hooks perform.
type TimeSeries struct {
	mu     sync.Mutex
	epoch  time.Time
	hasE   bool
	points []Point
}

// NewTimeSeries returns a series whose first Record sets the epoch.
func NewTimeSeries() *TimeSeries { return &TimeSeries{} }

// NewTimeSeriesAt returns a series with an explicit epoch.
func NewTimeSeriesAt(epoch time.Time) *TimeSeries {
	return &TimeSeries{epoch: epoch, hasE: true}
}

// Record appends a sample taken at the given absolute (virtual) time.
func (s *TimeSeries) Record(at time.Time, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasE {
		s.epoch = at
		s.hasE = true
	}
	s.points = append(s.points, Point{T: at.Sub(s.epoch), V: v})
}

// Len returns the number of recorded samples.
func (s *TimeSeries) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}

// Points returns a copy of the recorded samples in record order.
func (s *TimeSeries) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Last returns the most recent sample and true, or a zero Point and false
// when empty.
func (s *TimeSeries) Last() (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.points) == 0 {
		return Point{}, false
	}
	return s.points[len(s.points)-1], true
}

// TailMean averages the last fraction (0,1] of samples — the "value the
// parameter converged to" statistic used when checking Figures 8 and 9.
func (s *TimeSeries) TailMean(fraction float64) float64 {
	if fraction <= 0 || fraction > 1 {
		panic("metrics: TailMean fraction must be in (0,1]")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.points) == 0 {
		return 0
	}
	start := int(float64(len(s.points)) * (1 - fraction))
	if start >= len(s.points) {
		start = len(s.points) - 1
	}
	var sum float64
	for _, p := range s.points[start:] {
		sum += p.V
	}
	return sum / float64(len(s.points)-start)
}

// WindowMean averages the samples with T in [from, to]. It returns 0 when
// the window holds no samples. Convergence experiments use it to read the
// settled parameter value over a mid-run window, excluding the end-of-stream
// drain during which a finite stream legitimately relaxes the parameter.
func (s *TimeSeries) WindowMean(from, to time.Duration) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum float64
	n := 0
	for _, p := range s.points {
		if p.T >= from && p.T <= to {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Downsample returns at most n points evenly spaced across the series — for
// rendering a convergence plot as a compact table.
func (s *TimeSeries) Downsample(n int) []Point {
	if n < 1 {
		panic("metrics: Downsample needs n >= 1")
	}
	pts := s.Points()
	if len(pts) <= n {
		return pts
	}
	out := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(pts) - 1) / (n - 1)
		out = append(out, pts[idx])
	}
	return out
}

// At returns the value in effect at elapsed time t (the latest sample at or
// before t), and false when t precedes the first sample.
func (s *TimeSeries) At(t time.Duration) (float64, bool) {
	pts := s.Points()
	i := sort.Search(len(pts), func(i int) bool { return pts[i].T > t })
	if i == 0 {
		return 0, false
	}
	return pts[i-1].V, true
}
