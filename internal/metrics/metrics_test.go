package metrics

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/gates-middleware/gates/internal/workload"
)

func truth() map[int]int {
	return map[int]int{1: 100, 2: 90, 3: 80, 4: 70, 5: 60, 6: 10, 7: 5}
}

func TestTopKAccuracyPerfect(t *testing.T) {
	reported := []workload.ValueCount{
		{Value: 1, Count: 100}, {Value: 2, Count: 90}, {Value: 3, Count: 80},
		{Value: 4, Count: 70}, {Value: 5, Count: 60},
	}
	a := TopKAccuracy(truth(), reported, 5)
	if a.Membership != 1 || a.Frequency != 1 || a.Score() != 100 {
		t.Fatalf("perfect report scored %+v", a)
	}
}

func TestTopKAccuracyMissingValues(t *testing.T) {
	reported := []workload.ValueCount{
		{Value: 1, Count: 100}, {Value: 2, Count: 90},
	}
	a := TopKAccuracy(truth(), reported, 5)
	if a.Membership != 0.4 {
		t.Fatalf("membership = %v, want 0.4", a.Membership)
	}
	if a.Frequency != 0.4 { // two perfect frequencies out of five
		t.Fatalf("frequency = %v, want 0.4", a.Frequency)
	}
}

func TestTopKAccuracyFrequencyError(t *testing.T) {
	reported := []workload.ValueCount{
		{Value: 1, Count: 50}, // 50% off
	}
	a := TopKAccuracy(map[int]int{1: 100}, reported, 1)
	if a.Membership != 1 || a.Frequency != 0.5 {
		t.Fatalf("accuracy = %+v, want membership 1, frequency 0.5", a)
	}
	// Wildly over-reported frequency floors at 0.
	a = TopKAccuracy(map[int]int{1: 100}, []workload.ValueCount{{Value: 1, Count: 500}}, 1)
	if a.Frequency != 0 {
		t.Fatalf("over-report frequency = %v, want 0", a.Frequency)
	}
}

func TestTopKAccuracyOnlyTopKReportedCounts(t *testing.T) {
	// Values past position k in the report must be ignored.
	reported := []workload.ValueCount{
		{Value: 99, Count: 1000}, // wrong value in top spot
		{Value: 1, Count: 100},   // correct, but beyond k=1
	}
	a := TopKAccuracy(map[int]int{1: 100}, reported, 1)
	if a.Membership != 0 {
		t.Fatalf("membership = %v, want 0", a.Membership)
	}
}

func TestTopKAccuracyEmptyTruth(t *testing.T) {
	a := TopKAccuracy(map[int]int{}, nil, 10)
	if a.Membership != 1 || a.Frequency != 1 {
		t.Fatalf("empty truth scored %+v, want perfect", a)
	}
}

func TestAccuracyString(t *testing.T) {
	a := Accuracy{Membership: 1, Frequency: 0.9}
	if got := a.String(); got == "" {
		t.Fatal("empty String")
	}
	if a.Score() != 95 {
		t.Fatalf("Score = %v, want 95", a.Score())
	}
}

// Property: accuracy components always lie in [0,1].
func TestAccuracyRangeProperty(t *testing.T) {
	f := func(truthRaw, repRaw []uint8) bool {
		truth := map[int]int{}
		for i, v := range truthRaw {
			truth[i%16] += int(v)%50 + 1
		}
		var rep []workload.ValueCount
		for i, v := range repRaw {
			rep = append(rep, workload.ValueCount{Value: i % 16, Count: float64(v)})
		}
		a := TopKAccuracy(truth, rep, 10)
		return a.Membership >= 0 && a.Membership <= 1 && a.Frequency >= 0 && a.Frequency <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSeriesRecordAndPoints(t *testing.T) {
	s := NewTimeSeries()
	epoch := time.Date(2004, 6, 7, 0, 0, 0, 0, time.UTC)
	s.Record(epoch, 0.1)
	s.Record(epoch.Add(time.Second), 0.2)
	s.Record(epoch.Add(2*time.Second), 0.3)
	pts := s.Points()
	if len(pts) != 3 || s.Len() != 3 {
		t.Fatalf("Points = %v", pts)
	}
	if pts[0].T != 0 || pts[1].T != time.Second || pts[2].T != 2*time.Second {
		t.Fatalf("relative times wrong: %v", pts)
	}
	last, ok := s.Last()
	if !ok || last.V != 0.3 {
		t.Fatalf("Last = %v,%v", last, ok)
	}
}

func TestTimeSeriesExplicitEpoch(t *testing.T) {
	epoch := time.Date(2004, 6, 7, 0, 0, 0, 0, time.UTC)
	s := NewTimeSeriesAt(epoch)
	s.Record(epoch.Add(5*time.Second), 1)
	if pts := s.Points(); pts[0].T != 5*time.Second {
		t.Fatalf("explicit epoch not honored: %v", pts)
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	s := NewTimeSeries()
	if _, ok := s.Last(); ok {
		t.Fatal("Last on empty series reported a point")
	}
	if got := s.TailMean(0.5); got != 0 {
		t.Fatalf("TailMean on empty = %v", got)
	}
	if _, ok := s.At(time.Second); ok {
		t.Fatal("At on empty series reported a value")
	}
}

func TestTailMean(t *testing.T) {
	s := NewTimeSeries()
	epoch := time.Now()
	for i, v := range []float64{0, 0, 0, 0, 1, 1, 1, 1} {
		s.Record(epoch.Add(time.Duration(i)*time.Second), v)
	}
	if got := s.TailMean(0.5); got != 1 {
		t.Fatalf("TailMean(0.5) = %v, want 1", got)
	}
	if got := s.TailMean(1); got != 0.5 {
		t.Fatalf("TailMean(1) = %v, want 0.5", got)
	}
}

func TestTailMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TailMean(0) did not panic")
		}
	}()
	NewTimeSeries().TailMean(0)
}

func TestDownsample(t *testing.T) {
	s := NewTimeSeries()
	epoch := time.Now()
	for i := 0; i < 100; i++ {
		s.Record(epoch.Add(time.Duration(i)*time.Second), float64(i))
	}
	down := s.Downsample(10)
	if len(down) != 10 {
		t.Fatalf("Downsample returned %d points", len(down))
	}
	if down[0].V != 0 || down[9].V != 99 {
		t.Fatalf("Downsample endpoints %v..%v, want 0..99", down[0].V, down[9].V)
	}
	short := NewTimeSeries()
	short.Record(epoch, 1)
	if got := short.Downsample(10); len(got) != 1 {
		t.Fatalf("short Downsample = %v", got)
	}
}

func TestAt(t *testing.T) {
	s := NewTimeSeries()
	epoch := time.Now()
	s.Record(epoch, 1)
	s.Record(epoch.Add(10*time.Second), 2)
	if v, ok := s.At(5 * time.Second); !ok || v != 1 {
		t.Fatalf("At(5s) = %v,%v", v, ok)
	}
	if v, ok := s.At(10 * time.Second); !ok || v != 2 {
		t.Fatalf("At(10s) = %v,%v", v, ok)
	}
	if _, ok := s.At(-time.Second); ok {
		t.Fatal("At before epoch reported a value")
	}
}
