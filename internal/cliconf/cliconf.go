// Package cliconf holds the command-line surface every GATES binary
// shares: the observability flags (obs endpoint, trace sampling, flight
// recorder), the policy flags (document path, hot-reload watch), and the
// plumbing that turns them into a wired observability bundle and policy
// engine. gates-node and gates-launcher previously each carried a copy of
// this block; one definition here keeps the flags, their help text, and
// their defaults from drifting apart.
package cliconf

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/policy"
)

// Flags is the parsed shared flag block. Register populates it from a
// FlagSet; tests may construct it directly.
type Flags struct {
	// ObsListen is the HTTP observability address ("" = disabled).
	ObsListen string
	// TraceSample is the raw -trace-sample value; SampleEvery resolves it
	// into obs.Config semantics.
	TraceSample int
	// FlightSize is the flight-recorder ring capacity.
	FlightSize int
	// FlightDump is the flight-recorder disk-snapshot path ("" = off).
	FlightDump string
	// Verbose enables structured middleware logging to stderr.
	Verbose bool
	// PolicyPath is a policy document (JSON or XML) loaded at startup
	// ("" = built-in defaults).
	PolicyPath string
	// PolicyWatch is the wall-clock interval for re-checking PolicyPath
	// for hot reloads (0 = no watching).
	PolicyWatch time.Duration
	// CheckpointInterval is the virtual time between checkpoint rounds
	// (0 = policy default when faults are enabled, else off).
	CheckpointInterval time.Duration
	// ReplayBuffer is the per-edge replay-ring depth (0 = policy default
	// when faults are enabled, else off).
	ReplayBuffer int
	// TimeseriesWindow is the virtual history window the /timeseries plane
	// retains per series.
	TimeseriesWindow time.Duration
	// ProfileEvery is the wall-clock period between per-stage CPU
	// attribution rounds (0 = disabled).
	ProfileEvery time.Duration
}

// Register defines the shared flag block on fs and returns the struct the
// parsed values land in.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.ObsListen, "obs-listen", "", "HTTP address serving the observability surface — /metrics, /snapshot, /adaptations, /migrations, /traces, /flightrecorder, /bottlenecks, /decisions, /policy, /healthz, /readyz, /debug/pprof (\":0\" picks a port; omit to disable)")
	fs.IntVar(&f.TraceSample, "trace-sample", obs.DefaultTraceSample(), "record one trace span in every N hot-path operations; 0 disables tracing entirely (default from GATES_TRACE_SAMPLE)")
	fs.IntVar(&f.FlightSize, "flight-recorder-size", obs.DefaultFlightCapacity, "events retained by the in-memory flight recorder")
	fs.StringVar(&f.FlightDump, "flight-dump", "", "file path the flight recorder snapshots to on SLO violation or SIGQUIT (omit to disable disk dumps)")
	fs.BoolVar(&f.Verbose, "v", false, "log structured middleware events to stderr")
	fs.StringVar(&f.PolicyPath, "policy", "", "policy document (JSON or XML) declaring placement rules, rebalance thresholds, and SLO targets (omit for built-in defaults)")
	fs.DurationVar(&f.PolicyWatch, "policy-watch", 0, "re-check the -policy file this often (wall clock) and hot-reload it on change (0 = no watching; POST /policy always works)")
	fs.DurationVar(&f.CheckpointInterval, "checkpoint-interval", 0, "virtual time between asynchronous stage checkpoints (0 = the policy document's faults.checkpoint_interval when faults are enabled, else no checkpointing)")
	fs.IntVar(&f.ReplayBuffer, "replay-buffer", 0, "per-edge replay-ring depth for crash recovery (0 = the policy document's faults.replay_buffer when faults are enabled, else fault tolerance off)")
	fs.DurationVar(&f.TimeseriesWindow, "timeseries-window", obs.DefaultTimeseriesWindow, "virtual history window the /timeseries plane retains per series")
	fs.DurationVar(&f.ProfileEvery, "profile-every", obs.DefaultProfileEvery, "wall-clock period between per-stage CPU attribution rounds (0 disables CPU profiling)")
	return f
}

// FaultTolerance resolves the fault-tolerance knobs against the active
// policy document: explicit flags win, the document's faults section fills
// the gaps, and all-zero means the fault plane stays off.
func (f *Flags) FaultTolerance(doc policy.Document) (checkpoint time.Duration, replay int, enabled bool) {
	checkpoint, replay = f.CheckpointInterval, f.ReplayBuffer
	if doc.Faults.Enabled {
		if checkpoint == 0 {
			checkpoint = doc.Faults.CheckpointInterval.Std()
		}
		if replay == 0 {
			replay = doc.Faults.ReplayBuffer
		}
	}
	return checkpoint, replay, checkpoint > 0 || replay > 0
}

// SampleEvery resolves the raw -trace-sample value into the
// obs.Config.SampleEvery convention (0 = default, <0 = disabled).
func (f *Flags) SampleEvery() int { return obs.SampleEveryFor(f.TraceSample) }

// NewObservability builds the bundle the flags describe: trace sampling,
// flight-recorder capacity and dump path, and logging to stderr when -v.
func (f *Flags) NewObservability(clk clock.Clock) *obs.Observability {
	cfg := obs.Config{
		SampleEvery:      f.SampleEvery(),
		FlightCapacity:   f.FlightSize,
		TimeseriesWindow: f.TimeseriesWindow,
		ProfileEvery:     f.ProfileEvery,
	}
	if f.ProfileEvery == 0 {
		cfg.ProfileEvery = -1 // flag 0 = off; Config zero would mean default
	}
	if f.Verbose {
		cfg.LogWriter = os.Stderr
	}
	ob := obs.New(clk, cfg)
	if f.FlightDump != "" {
		ob.Flight.SetDumpPath(f.FlightDump)
	}
	return ob
}

// StartPolicy builds the policy engine the flags describe: defaults first,
// then the -policy file when given, then a hot-reload watcher when
// -policy-watch is set. A startup document that fails to load is an error
// (an operator typo should stop the launch, not silently run defaults);
// later watched reloads only log. The returned stop function ends the
// watcher.
func (f *Flags) StartPolicy(clk clock.Clock, ob *obs.Observability) (*policy.Engine, func(), error) {
	eng := policy.New(clk, ob)
	if f.PolicyPath != "" {
		if err := eng.LoadFile(f.PolicyPath); err != nil {
			return nil, nil, err
		}
	}
	stop := func() {}
	if f.PolicyPath != "" && f.PolicyWatch > 0 {
		stop = eng.Watch(f.PolicyPath, f.PolicyWatch)
	}
	return eng, stop, nil
}

// NotifyFlightDump installs the SIGQUIT handler that snapshots the flight
// recorder to disk (when a dump path is configured) without ending the
// process — the classic "what just happened" escape hatch on a live node.
// binary names the process in the stderr report. The returned stop
// function uninstalls the handler.
func NotifyFlightDump(ob *obs.Observability, binary string) (stop func()) {
	sigq := make(chan os.Signal, 1)
	signal.Notify(sigq, syscall.SIGQUIT)
	go func() {
		for range sigq {
			if path, err := ob.Flight.DumpToDisk("sigquit"); err != nil {
				fmt.Fprintf(os.Stderr, "%s: flight dump: %v\n", binary, err)
			} else if path != "" {
				fmt.Fprintf(os.Stderr, "%s: flight recorder dumped to %s\n", binary, path)
			}
		}
	}()
	return func() { signal.Stop(sigq) }
}
