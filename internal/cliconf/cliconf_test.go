package cliconf

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/obs"
)

// TestRegisterParse: the shared block parses into the struct, and the
// defaults match the obs package's.
func TestRegisterParse(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	err := fs.Parse([]string{
		"-obs-listen", "127.0.0.1:0",
		"-trace-sample", "32",
		"-flight-recorder-size", "99",
		"-flight-dump", "/tmp/f.json",
		"-v",
		"-policy", "p.json",
		"-policy-watch", "2s",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Flags{
		ObsListen:        "127.0.0.1:0",
		TraceSample:      32,
		FlightSize:       99,
		FlightDump:       "/tmp/f.json",
		Verbose:          true,
		PolicyPath:       "p.json",
		PolicyWatch:      2 * time.Second,
		TimeseriesWindow: obs.DefaultTimeseriesWindow,
		ProfileEvery:     obs.DefaultProfileEvery,
	}
	if *f != want {
		t.Errorf("parsed %+v, want %+v", *f, want)
	}

	fs = flag.NewFlagSet("defaults", flag.ContinueOnError)
	f = Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.TraceSample != obs.DefaultTraceSample() || f.FlightSize != obs.DefaultFlightCapacity {
		t.Errorf("defaults %+v", *f)
	}
	if f.ObsListen != "" || f.PolicyPath != "" || f.PolicyWatch != 0 {
		t.Errorf("zero-value flags not zero: %+v", *f)
	}
}

// TestSampleEvery: the raw flag resolves through the obs convention.
func TestSampleEvery(t *testing.T) {
	if got := (&Flags{TraceSample: 16}).SampleEvery(); got != 16 {
		t.Errorf("SampleEvery(16) = %d", got)
	}
	// 0 disables tracing, which obs.Config spells as a negative.
	if got := (&Flags{TraceSample: 0}).SampleEvery(); got >= 0 {
		t.Errorf("SampleEvery(0) = %d, want negative (disabled)", got)
	}
}

// TestNewObservability: the bundle honors the flight-recorder flags.
func TestNewObservability(t *testing.T) {
	clk := clock.NewManual()
	dump := filepath.Join(t.TempDir(), "flight.json")
	f := &Flags{FlightSize: 4, FlightDump: dump}
	ob := f.NewObservability(clk)
	for i := 0; i < 10; i++ {
		ob.Flight.Record(obs.FlightEvent{Kind: obs.FlightPolicy, Detail: "x"})
	}
	if got := len(ob.Flight.Events()); got != 4 {
		t.Errorf("flight recorder retained %d events, want the configured 4", got)
	}
	path, err := ob.Flight.DumpToDisk("test")
	if err != nil || path == "" {
		t.Fatalf("DumpToDisk = %q, %v", path, err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("dump file missing: %v", err)
	}
	// -profile-every 0 disables CPU attribution; a period enables it.
	if ob.Profiler != nil {
		t.Error("zero ProfileEvery built a profiler, want disabled")
	}
	withProf := (&Flags{ProfileEvery: time.Second}).NewObservability(clk)
	if withProf.Profiler == nil {
		t.Error("ProfileEvery=1s did not build a profiler")
	}
	if withProf.Timeseries == nil || withProf.Sampler == nil {
		t.Error("bundle missing the time-series plane")
	}
}

// TestStartPolicy: no path serves defaults; a path loads the file; a bad
// path fails the launch.
func TestStartPolicy(t *testing.T) {
	clk := clock.NewManual()
	eng, stop, err := (&Flags{}).StartPolicy(clk, nil)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if v := eng.Active().Version; v != "default" {
		t.Errorf("no-path engine serves %q", v)
	}

	path := filepath.Join(t.TempDir(), "policy.json")
	if err := os.WriteFile(path, []byte(`{"version": "from-file"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	eng, stop, err = (&Flags{PolicyPath: path, PolicyWatch: time.Minute}).StartPolicy(clk, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if v := eng.Active().Version; v != "from-file" {
		t.Errorf("file engine serves %q", v)
	}

	if _, _, err := (&Flags{PolicyPath: filepath.Join(t.TempDir(), "nope.json")}).StartPolicy(clk, nil); err == nil {
		t.Error("missing policy file did not fail the launch")
	}
}
