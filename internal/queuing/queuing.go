// Package queuing implements the analytic model of Section 4.1: "by
// modeling every stage as a server and viewing the input buffer of a stage
// as a queue of the server, we can get a queuing network model of the
// system".
//
// The model is an open, feed-forward network: work enters at source
// stations at rate λ, flows along routed fractions (a sampler forwarding a
// fraction r of its input is a route with fraction r), and each station
// serves at rate μ. Solving the traffic equations gives per-station arrival
// rates, utilizations ρ = λ/μ, M/M/1 queue statistics, and — the quantity
// the experiments check the middleware against — the largest input scaling
// under which every station remains stable, which is exactly the
// "sustainable sampling factor" of Figures 8 and 9.
package queuing

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Station is one server in the network.
type Station struct {
	// Name identifies the station.
	Name string
	// ServiceRate is μ: work units per second the station can process.
	// Zero or +Inf means the station is never a bottleneck.
	ServiceRate float64
}

// Network is an open feed-forward queueing network. The zero value is not
// usable; construct with New.
type Network struct {
	stations map[string]Station
	order    []string
	arrivals map[string]float64            // external λ per station
	routes   map[string]map[string]float64 // from -> to -> fraction
}

// New returns an empty network.
func New() *Network {
	return &Network{
		stations: make(map[string]Station),
		arrivals: make(map[string]float64),
		routes:   make(map[string]map[string]float64),
	}
}

// AddStation registers a station. Names must be unique and non-empty;
// service rates must be non-negative.
func (n *Network) AddStation(s Station) error {
	if s.Name == "" {
		return errors.New("queuing: station needs a name")
	}
	if s.ServiceRate < 0 || math.IsNaN(s.ServiceRate) {
		return fmt.Errorf("queuing: station %q: invalid service rate %v", s.Name, s.ServiceRate)
	}
	if _, dup := n.stations[s.Name]; dup {
		return fmt.Errorf("queuing: station %q already added", s.Name)
	}
	n.stations[s.Name] = s
	n.order = append(n.order, s.Name)
	return nil
}

// SetArrival sets the external arrival rate (work units per second) into a
// station.
func (n *Network) SetArrival(station string, lambda float64) error {
	if _, ok := n.stations[station]; !ok {
		return fmt.Errorf("queuing: unknown station %q", station)
	}
	if lambda < 0 || math.IsNaN(lambda) {
		return fmt.Errorf("queuing: invalid arrival rate %v", lambda)
	}
	n.arrivals[station] = lambda
	return nil
}

// Route declares that a fraction of the work leaving from flows into to.
// Fractions out of one station may sum to at most 1 (the remainder leaves
// the network — filtered, sampled away, or consumed).
func (n *Network) Route(from, to string, fraction float64) error {
	if _, ok := n.stations[from]; !ok {
		return fmt.Errorf("queuing: unknown station %q", from)
	}
	if _, ok := n.stations[to]; !ok {
		return fmt.Errorf("queuing: unknown station %q", to)
	}
	if from == to {
		return fmt.Errorf("queuing: self-route on %q", from)
	}
	if fraction < 0 || fraction > 1 || math.IsNaN(fraction) {
		return fmt.Errorf("queuing: invalid route fraction %v", fraction)
	}
	m := n.routes[from]
	if m == nil {
		m = make(map[string]float64)
		n.routes[from] = m
	}
	m[to] = fraction
	var sum float64
	for _, f := range m {
		sum += f
	}
	if sum > 1+1e-9 {
		delete(m, to)
		return fmt.Errorf("queuing: routes out of %q sum to %v > 1", from, sum)
	}
	return nil
}

// topoOrder returns the stations in topological order, or an error if the
// routing graph has a cycle (the §4.1 pipelines are feed-forward).
func (n *Network) topoOrder() ([]string, error) {
	indeg := make(map[string]int, len(n.stations))
	for _, name := range n.order {
		indeg[name] = 0
	}
	for _, tos := range n.routes {
		for to := range tos {
			indeg[to]++
		}
	}
	// Deterministic order: seed the frontier in insertion order.
	var frontier []string
	for _, name := range n.order {
		if indeg[name] == 0 {
			frontier = append(frontier, name)
		}
	}
	var out []string
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		out = append(out, cur)
		tos := make([]string, 0, len(n.routes[cur]))
		for to := range n.routes[cur] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			indeg[to]--
			if indeg[to] == 0 {
				frontier = append(frontier, to)
			}
		}
	}
	if len(out) != len(n.stations) {
		return nil, errors.New("queuing: routing graph has a cycle; the model requires a feed-forward pipeline")
	}
	return out, nil
}

// Solution holds the solved per-station quantities.
type Solution struct {
	// Lambda is each station's total arrival rate.
	Lambda map[string]float64
	// Rho is each station's utilization λ/μ (0 for unconstrained
	// stations).
	Rho map[string]float64
}

// Solve propagates the traffic equations λ_i = a_i + Σ_j λ_j·p_ji through
// the feed-forward network.
func (n *Network) Solve() (*Solution, error) {
	order, err := n.topoOrder()
	if err != nil {
		return nil, err
	}
	lambda := make(map[string]float64, len(order))
	for name, a := range n.arrivals {
		lambda[name] += a
	}
	for _, from := range order {
		for to, f := range n.routes[from] {
			lambda[to] += lambda[from] * f
		}
	}
	rho := make(map[string]float64, len(order))
	for _, name := range order {
		mu := n.stations[name].ServiceRate
		if mu > 0 && !math.IsInf(mu, 1) {
			rho[name] = lambda[name] / mu
		}
	}
	return &Solution{Lambda: lambda, Rho: rho}, nil
}

// Stable reports whether every station's utilization is below 1.
func (s *Solution) Stable() bool {
	for _, r := range s.Rho {
		if r >= 1 {
			return false
		}
	}
	return true
}

// Bottleneck returns the station with the highest utilization and that
// utilization. Ties break by name.
func (s *Solution) Bottleneck() (string, float64) {
	best, bestRho := "", -1.0
	names := make([]string, 0, len(s.Rho))
	for name := range s.Rho {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if s.Rho[name] > bestRho {
			best, bestRho = name, s.Rho[name]
		}
	}
	if bestRho < 0 {
		return "", 0
	}
	return best, bestRho
}

// MeanQueueLength returns the steady-state M/M/1 mean number of work units
// waiting at a station, ρ²/(1−ρ). It is +Inf for saturated stations and 0
// for unconstrained ones.
func (s *Solution) MeanQueueLength(station string) float64 {
	rho, ok := s.Rho[station]
	if !ok || rho == 0 {
		return 0
	}
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho * rho / (1 - rho)
}

// MeanResidence returns the M/M/1 mean time a work unit spends at the
// station (queueing + service), 1/(μ−λ). It is +Inf when saturated and 0
// when unconstrained.
func (s *Solution) MeanResidence(network *Network, station string) float64 {
	mu := network.stations[station].ServiceRate
	if mu == 0 || math.IsInf(mu, 1) {
		return 0
	}
	lam := s.Lambda[station]
	if lam >= mu {
		return math.Inf(1)
	}
	return 1 / (mu - lam)
}

// SustainableFraction computes the §5.4/§5.5 quantity: the largest factor
// r ∈ (0, 1] by which the route leaving `knob` may be scaled while every
// station stays stable. It models the adjustment parameter (sampling rate,
// summary size) as the scaled route and answers "what value should the
// middleware converge to". It returns 1 when even full forwarding is
// sustainable.
func (n *Network) SustainableFraction(knob string) (float64, error) {
	routes, ok := n.routes[knob]
	if !ok || len(routes) == 0 {
		return 0, fmt.Errorf("queuing: station %q has no outgoing route to scale", knob)
	}
	// Utilizations downstream of the knob scale linearly in r, so the
	// critical r is where the bottleneck (computed at r=1) reaches 1.
	sol, err := n.Solve()
	if err != nil {
		return 0, err
	}
	// Stations upstream of (or independent from) the knob must already
	// be stable; otherwise no r helps.
	reach := n.reachableFrom(knob)
	for name, rho := range sol.Rho {
		if !reach[name] && rho >= 1 {
			return 0, fmt.Errorf("queuing: station %q saturated (ρ=%.3f) independent of %q", name, rho, knob)
		}
	}
	worst := 0.0
	for name := range reach {
		if rho := sol.Rho[name]; rho > worst {
			worst = rho
		}
	}
	if worst <= 1 {
		return 1, nil
	}
	return 1 / worst, nil
}

// reachableFrom returns the stations strictly downstream of from.
func (n *Network) reachableFrom(from string) map[string]bool {
	out := make(map[string]bool)
	var walk func(string)
	walk = func(cur string) {
		for to := range n.routes[cur] {
			if !out[to] {
				out[to] = true
				walk(to)
			}
		}
	}
	walk(from)
	return out
}
