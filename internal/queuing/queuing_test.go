package queuing

import (
	"math"
	"testing"
	"testing/quick"
)

// steering builds the Figure 8 network: generator -> sampler -> analysis,
// with the sampler forwarding fraction r and the analysis serving at
// 1000/cost bytes per second.
func steering(t *testing.T, genRate float64, r float64, costMsPerByte float64) *Network {
	t.Helper()
	n := New()
	for _, s := range []Station{
		{Name: "sim"},     // unconstrained
		{Name: "sampler"}, // thinning is free
		{Name: "analysis", ServiceRate: 1000 / costMsPerByte}, // bytes/s
	} {
		if err := n.AddStation(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.SetArrival("sampler", genRate); err != nil {
		t.Fatal(err)
	}
	if err := n.Route("sampler", "analysis", r); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestAddStationValidation(t *testing.T) {
	n := New()
	if err := n.AddStation(Station{Name: ""}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := n.AddStation(Station{Name: "a", ServiceRate: -1}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := n.AddStation(Station{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddStation(Station{Name: "a"}); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestRouteValidation(t *testing.T) {
	n := New()
	n.AddStation(Station{Name: "a"})
	n.AddStation(Station{Name: "b"})
	if err := n.Route("ghost", "b", 0.5); err == nil {
		t.Fatal("unknown from accepted")
	}
	if err := n.Route("a", "ghost", 0.5); err == nil {
		t.Fatal("unknown to accepted")
	}
	if err := n.Route("a", "a", 0.5); err == nil {
		t.Fatal("self-route accepted")
	}
	if err := n.Route("a", "b", 1.5); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	if err := n.Route("a", "b", 0.7); err != nil {
		t.Fatal(err)
	}
	// Adding another route that pushes the out-sum past 1 must fail and
	// leave the previous routing intact.
	n.AddStation(Station{Name: "c"})
	if err := n.Route("a", "c", 0.5); err == nil {
		t.Fatal("out-fraction sum > 1 accepted")
	}
	if err := n.Route("a", "c", 0.3); err != nil {
		t.Fatal(err)
	}
}

func TestSetArrivalValidation(t *testing.T) {
	n := New()
	n.AddStation(Station{Name: "a"})
	if err := n.SetArrival("ghost", 1); err == nil {
		t.Fatal("unknown station accepted")
	}
	if err := n.SetArrival("a", -1); err == nil {
		t.Fatal("negative arrival accepted")
	}
}

func TestCycleRejected(t *testing.T) {
	n := New()
	n.AddStation(Station{Name: "a"})
	n.AddStation(Station{Name: "b"})
	n.Route("a", "b", 0.5)
	n.Route("b", "a", 0.5)
	if _, err := n.Solve(); err == nil {
		t.Fatal("cyclic network solved")
	}
}

func TestTrafficEquations(t *testing.T) {
	// 4 sources at 10/s each feed a merger that forwards 30% to a sink.
	n := New()
	n.AddStation(Station{Name: "merge", ServiceRate: 100})
	n.AddStation(Station{Name: "sink", ServiceRate: 20})
	for _, src := range []string{"s1", "s2", "s3", "s4"} {
		n.AddStation(Station{Name: src})
		n.SetArrival(src, 10)
		n.Route(src, "merge", 1)
	}
	n.Route("merge", "sink", 0.3)
	sol, err := n.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Lambda["merge"]; math.Abs(got-40) > 1e-9 {
		t.Fatalf("λ(merge) = %v, want 40", got)
	}
	if got := sol.Lambda["sink"]; math.Abs(got-12) > 1e-9 {
		t.Fatalf("λ(sink) = %v, want 12", got)
	}
	if got := sol.Rho["merge"]; math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("ρ(merge) = %v, want 0.4", got)
	}
	if got := sol.Rho["sink"]; math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("ρ(sink) = %v, want 0.6", got)
	}
	if !sol.Stable() {
		t.Fatal("stable network reported unstable")
	}
	if name, rho := sol.Bottleneck(); name != "sink" || math.Abs(rho-0.6) > 1e-9 {
		t.Fatalf("bottleneck = %s/%v, want sink/0.6", name, rho)
	}
}

func TestMM1Statistics(t *testing.T) {
	n := New()
	n.AddStation(Station{Name: "q", ServiceRate: 10})
	n.SetArrival("q", 5) // ρ = 0.5
	sol, _ := n.Solve()
	if got := sol.MeanQueueLength("q"); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Lq = %v, want 0.5 (ρ²/(1-ρ) at ρ=0.5)", got)
	}
	if got := sol.MeanResidence(n, "q"); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("W = %v, want 0.2 (1/(μ-λ))", got)
	}
	// Saturated: infinite queue.
	n2 := New()
	n2.AddStation(Station{Name: "q", ServiceRate: 10})
	n2.SetArrival("q", 12)
	sol2, _ := n2.Solve()
	if !math.IsInf(sol2.MeanQueueLength("q"), 1) || !math.IsInf(sol2.MeanResidence(n2, "q"), 1) {
		t.Fatal("saturated station has finite statistics")
	}
	if sol2.Stable() {
		t.Fatal("saturated network reported stable")
	}
}

func TestSustainableFractionMatchesFigure8(t *testing.T) {
	// At full forwarding (r=1), what fraction does the model say the
	// middleware should converge to? Exactly the paper's ladder.
	cases := []struct {
		costMs float64
		want   float64
	}{
		{1, 1}, {5, 1}, {8, 0.78125}, {10, 0.625}, {20, 0.3125},
	}
	for _, tc := range cases {
		n := steering(t, 160, 1, tc.costMs)
		r, err := n.SustainableFraction("sampler")
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r-tc.want) > 1e-9 {
			t.Fatalf("cost %v ms/byte: sustainable = %v, want %v", tc.costMs, r, tc.want)
		}
	}
}

func TestSustainableFractionNetworkConstraint(t *testing.T) {
	// Figure 9: the 10 KB/s link modeled as a station serving 10,000 B/s.
	for _, tc := range []struct {
		genKB float64
		want  float64
	}{
		{5, 1}, {10, 1}, {20, 0.5}, {40, 0.25}, {80, 0.125},
	} {
		n := New()
		n.AddStation(Station{Name: "sampler"})
		n.AddStation(Station{Name: "link", ServiceRate: 10_000})
		n.AddStation(Station{Name: "analysis", ServiceRate: math.Inf(1)})
		n.SetArrival("sampler", tc.genKB*1000)
		n.Route("sampler", "link", 1)
		n.Route("link", "analysis", 1)
		r, err := n.SustainableFraction("sampler")
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r-tc.want) > 1e-9 {
			t.Fatalf("gen %v KB/s: sustainable = %v, want %v", tc.genKB, r, tc.want)
		}
	}
}

func TestSustainableFractionErrors(t *testing.T) {
	n := New()
	n.AddStation(Station{Name: "lonely"})
	if _, err := n.SustainableFraction("lonely"); err == nil {
		t.Fatal("knob without routes accepted")
	}
	// A saturated station upstream of the knob cannot be fixed by it.
	n2 := New()
	n2.AddStation(Station{Name: "pre", ServiceRate: 1})
	n2.AddStation(Station{Name: "knob"})
	n2.AddStation(Station{Name: "post", ServiceRate: 1000})
	n2.SetArrival("pre", 5)
	n2.SetArrival("knob", 1)
	n2.Route("knob", "post", 1)
	if _, err := n2.SustainableFraction("knob"); err == nil {
		t.Fatal("independently saturated network accepted")
	}
}

// Property: scaling every external arrival by k scales every station's λ by
// k (the traffic equations are linear).
func TestLinearityProperty(t *testing.T) {
	f := func(rates []uint8, kRaw uint8) bool {
		if len(rates) == 0 {
			return true
		}
		k := float64(kRaw%9) + 1
		build := func(scale float64) *Solution {
			n := New()
			n.AddStation(Station{Name: "hub", ServiceRate: 1e6})
			for i := range rates {
				name := string(rune('a' + i%26))
				if _, dup := n.stations[name]; dup {
					continue
				}
				n.AddStation(Station{Name: name})
				n.SetArrival(name, float64(rates[i])*scale)
				n.Route(name, "hub", 1)
			}
			sol, err := n.Solve()
			if err != nil {
				return nil
			}
			return sol
		}
		one, scaled := build(1), build(k)
		if one == nil || scaled == nil {
			return false
		}
		return math.Abs(scaled.Lambda["hub"]-k*one.Lambda["hub"]) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: utilizations are non-negative and Solve never returns NaN.
func TestNoNaNProperty(t *testing.T) {
	f := func(arr, mu uint16, frac uint8) bool {
		n := New()
		n.AddStation(Station{Name: "a"})
		n.AddStation(Station{Name: "b", ServiceRate: float64(mu%1000) + 1})
		n.SetArrival("a", float64(arr))
		n.Route("a", "b", float64(frac%101)/100)
		sol, err := n.Solve()
		if err != nil {
			return false
		}
		for _, l := range sol.Lambda {
			if math.IsNaN(l) || l < 0 {
				return false
			}
		}
		for _, r := range sol.Rho {
			if math.IsNaN(r) || r < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
