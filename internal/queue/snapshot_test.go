package queue

import (
	"reflect"
	"testing"
)

// TestSnapshotReflectsContents checks Snapshot returns the queued items in
// FIFO order without consuming them, including after head wrap-around.
func TestSnapshotReflectsContents(t *testing.T) {
	q := New[int](4)
	if got := q.Snapshot(); len(got) != 0 {
		t.Fatalf("empty queue snapshot %v", got)
	}
	for i := 1; i <= 3; i++ {
		if err := q.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.Snapshot(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("snapshot %v, want [1 2 3]", got)
	}
	// Wrap the ring: consume two, add two more.
	q.Pop()
	q.Pop()
	q.Push(4)
	q.Push(5)
	if got := q.Snapshot(); !reflect.DeepEqual(got, []int{3, 4, 5}) {
		t.Fatalf("post-wrap snapshot %v, want [3 4 5]", got)
	}
	// The snapshot did not consume anything.
	if v, _ := q.Pop(); v != 3 {
		t.Fatalf("pop after snapshot = %d, want 3", v)
	}
	if q.Len() != 2 {
		t.Fatalf("len after snapshot+pop = %d, want 2", q.Len())
	}
}
