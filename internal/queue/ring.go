package queue

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Buffer is the contract a stage input buffer satisfies: the bounded,
// observable FIFO of the §4.1 server model with batched variants,
// cancellation, and the Snapshot hook live migration uses. Two
// implementations exist: the mutex+condvar Queue (any number of producers
// and consumers) and the lock-free Ring (SPSC or MPSC, single consumer).
type Buffer[T any] interface {
	Cap() int
	Len() int
	Closed() bool
	Stats() Stats
	Snapshot() []T
	Close()

	Push(v T) error
	PushCtx(ctx context.Context, v T) error
	TryPush(v T) error
	PushBatch(items []T) error
	PushBatchCtx(ctx context.Context, items []T) error
	PushBatchN(ctx context.Context, items []T) (int, error)

	Pop() (T, error)
	PopCtx(ctx context.Context) (T, error)
	TryPop() (T, error)
	PopBatch(dst []T, max int) (int, error)
	PopBatchCtx(ctx context.Context, dst []T, max int) (int, error)
}

var (
	_ Buffer[int] = (*Queue[int])(nil)
	_ Buffer[int] = (*Ring[int])(nil)
)

// ringSlot couples a value with its publication sequence. seq is used only
// in MPSC mode: a producer that has claimed position p stores p+1 into the
// slot's seq after writing the value, and the consumer treats a slot as
// published only when seq matches. In SPSC mode the single producer's tail
// store is the publication, so seq stays untouched.
type ringSlot[T any] struct {
	seq atomic.Uint64
	val T
}

// Ring is a bounded lock-free FIFO for the pipeline hot path: one consumer
// (the owning stage's drain loop) and either exactly one producer (SPSC —
// chosen when a single upstream stage feeds the edge) or any number (MPSC).
// The fast path is purely atomic: a Vyukov-style slot-sequence ring with the
// producer's capacity check gated on the consumer cursor, so claimed slots
// are always already released. Producers and the consumer park on a
// mutex+condvar only when the ring is full/empty, with atomic waiter counts
// so the non-blocked side pays one atomic load to know nobody needs waking.
//
// Semantics match Queue: Push* fails with ErrClosed after Close, Pop* drains
// then fails with ErrClosed, ctx variants return ctx.Err() on cancellation
// without consuming anything, and Stats/Len are safe to sample from any
// goroutine at any time.
//
// Snapshot is the one operation with a narrower contract than Queue's: it
// reads the occupied slots without synchronizing against the consumer, so it
// is race-free only while the consumer is quiescent (e.g. the owning stage
// is Paused) — exactly how live migration uses it. Concurrent producers are
// fine: Snapshot only examines slots published before it started.
type Ring[T any] struct {
	logical uint64 // capacity C exposed to callers
	mask    uint64 // physical size (power of two >= logical) minus one
	spsc    bool
	buf     []ringSlot[T]

	// head and tail live on their own cache lines: the consumer owns
	// head, producers own tail, and cross-line false sharing would put
	// both cursors in every core's miss path.
	_    [64]byte
	head atomic.Uint64 // next position to pop
	_    [56]byte
	tail atomic.Uint64 // next position to claim
	_    [56]byte

	closed        atomic.Bool
	highWater     atomic.Int64
	blockedPushes atomic.Uint64
	blockedPops   atomic.Uint64
	dropped       atomic.Uint64
	// pushStallNS/popStallNS accumulate wall nanoseconds spent parked in
	// waitNotFull/waitNotEmpty — the backpressure signal the attribution
	// engine reads. Only the parked slow path touches the wall clock.
	pushStallNS atomic.Uint64
	popStallNS  atomic.Uint64

	// Parking slow path. pushWaiters/popWaiters are incremented under mu
	// before re-checking the predicate (the condvar wait holds mu until
	// the goroutine is suspended), and the fast path's publish/release
	// stores precede its waiter-count load, so the Dekker pair guarantees
	// either the waiter sees the new cursor or the mover sees the waiter.
	mu          sync.Mutex
	notFull     *sync.Cond
	notEmpty    *sync.Cond
	pushWaiters atomic.Int32
	popWaiters  atomic.Int32
	// watched caches one cancellation-watcher goroutine per live context,
	// so parking with the same pop/run context never allocates after the
	// first wait (the per-call watcher of Queue.watchCancel would cost a
	// goroutine+channel per blocked operation).
	watched []context.Context
}

// NewSPSC returns a ring for exactly one producer goroutine and one
// consumer goroutine. A second concurrent producer corrupts the ring; use
// NewMPSC when the producer count is not statically one.
func NewSPSC[T any](capacity int) *Ring[T] { return newRing[T](capacity, true) }

// NewMPSC returns a ring for any number of producers and one consumer.
func NewMPSC[T any](capacity int) *Ring[T] { return newRing[T](capacity, false) }

func newRing[T any](capacity int, spsc bool) *Ring[T] {
	if capacity < 1 {
		panic("queue: capacity must be >= 1")
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	r := &Ring[T]{
		logical: uint64(capacity),
		mask:    uint64(size - 1),
		spsc:    spsc,
		buf:     make([]ringSlot[T], size),
	}
	r.notFull = sync.NewCond(&r.mu)
	r.notEmpty = sync.NewCond(&r.mu)
	return r
}

// Cap returns the logical capacity C (the backpressure bound, not the
// power-of-two physical size).
func (r *Ring[T]) Cap() int { return int(r.logical) }

// Len returns the approximate occupancy: exact when sampled while the ring
// is quiescent, within one concurrent batch otherwise. It is the d the
// adaptation controller samples; two atomic loads, no locking.
func (r *Ring[T]) Len() int {
	h := r.head.Load()
	t := r.tail.Load()
	n := int64(t - h)
	if n < 0 {
		n = 0
	}
	if n > int64(r.logical) {
		n = int64(r.logical)
	}
	return int(n)
}

// Closed reports whether Close has been called.
func (r *Ring[T]) Closed() bool { return r.closed.Load() }

// Stats returns a snapshot of the ring's counters. Pushed counts claimed
// positions (a producer mid-publish is included), Popped counts consumed
// ones.
func (r *Ring[T]) Stats() Stats {
	return Stats{
		Pushed:        r.tail.Load(),
		Popped:        r.head.Load(),
		BlockedPushes: r.blockedPushes.Load(),
		BlockedPops:   r.blockedPops.Load(),
		HighWater:     int(r.highWater.Load()),
		Dropped:       r.dropped.Load(),
		PushStallNS:   r.pushStallNS.Load(),
		PopStallNS:    r.popStallNS.Load(),
	}
}

// Snapshot returns the published items oldest-first without removing them.
// See the type comment: the consumer must be quiescent (stage paused);
// concurrent producers are safe.
func (r *Ring[T]) Snapshot() []T {
	h := r.head.Load()
	if r.spsc {
		t := r.tail.Load()
		out := make([]T, 0, t-h)
		for p := h; p != t; p++ {
			out = append(out, r.buf[p&r.mask].val)
		}
		return out
	}
	var out []T
	for p := h; p-h < r.logical; p++ {
		s := &r.buf[p&r.mask]
		if s.seq.Load() != p+1 {
			break
		}
		out = append(out, s.val)
	}
	return out
}

// Close marks the ring closed and wakes every parked producer and consumer.
// Idempotent.
func (r *Ring[T]) Close() {
	r.mu.Lock()
	if !r.closed.Swap(true) {
		r.notFull.Broadcast()
		r.notEmpty.Broadcast()
	}
	r.mu.Unlock()
}

// --- lock-free core ---

// push1 claims one slot, writes v, and publishes it. It returns false when
// the ring is logically full. Allocation-free.
func (r *Ring[T]) push1(v T) bool {
	if r.spsc {
		t := r.tail.Load() // own cursor
		h := r.head.Load()
		if t-h >= r.logical {
			return false
		}
		// The claimed slot was consumed and zeroed before head passed
		// t-size, and t-h < logical <= size, so no seq check is needed
		// before writing.
		r.buf[t&r.mask].val = v
		r.tail.Store(t + 1) // publish
		r.afterPush()
		return true
	}
	for {
		t := r.tail.Load()
		h := r.head.Load()
		if t-h >= r.logical {
			return false
		}
		if r.tail.CompareAndSwap(t, t+1) {
			s := &r.buf[t&r.mask]
			s.val = v
			s.seq.Store(t + 1) // publish
			r.afterPush()
			return true
		}
	}
}

// pushN claims, writes, and publishes up to len(items) items, returning how
// many were accepted (0 when full). Items are published in claim order.
func (r *Ring[T]) pushN(items []T) int {
	n := len(items)
	if n == 0 {
		return 0
	}
	if r.spsc {
		t := r.tail.Load()
		h := r.head.Load()
		free := int(r.logical - (t - h))
		if free <= 0 {
			return 0
		}
		if n > free {
			n = free
		}
		for i := 0; i < n; i++ {
			r.buf[(t+uint64(i))&r.mask].val = items[i]
		}
		r.tail.Store(t + uint64(n))
		r.afterPush()
		return n
	}
	for {
		t := r.tail.Load()
		h := r.head.Load()
		free := int(r.logical - (t - h))
		if free <= 0 {
			return 0
		}
		k := n
		if k > free {
			k = free
		}
		if !r.tail.CompareAndSwap(t, t+uint64(k)) {
			continue
		}
		for i := 0; i < k; i++ {
			s := &r.buf[(t+uint64(i))&r.mask]
			s.val = items[i]
			s.seq.Store(t + uint64(i) + 1)
		}
		r.afterPush()
		return k
	}
}

// afterPush maintains the high-water mark and wakes a parked consumer. The
// publication store above is sequenced before the popWaiters load, pairing
// with waitNotEmpty's increment-then-recheck.
func (r *Ring[T]) afterPush() {
	occ := int64(r.tail.Load() - r.head.Load())
	if occ > int64(r.logical) {
		occ = int64(r.logical)
	}
	for {
		cur := r.highWater.Load()
		if occ <= cur || r.highWater.CompareAndSwap(cur, occ) {
			break
		}
	}
	if r.popWaiters.Load() > 0 {
		r.mu.Lock()
		r.notEmpty.Broadcast()
		r.mu.Unlock()
	}
}

// pop1 removes the oldest published item. It returns false when nothing is
// published. Allocation-free; single consumer only.
func (r *Ring[T]) pop1() (T, bool) {
	var zero T
	h := r.head.Load() // own cursor
	s := &r.buf[h&r.mask]
	if r.spsc {
		if r.tail.Load() == h {
			return zero, false
		}
	} else if s.seq.Load() != h+1 {
		return zero, false
	}
	v := s.val
	s.val = zero // release the reference before the slot is reusable
	r.head.Store(h + 1)
	r.afterPop()
	return v, true
}

// popN moves up to max published items into dst, returning how many (0 when
// nothing is published).
func (r *Ring[T]) popN(dst []T, max int) int {
	var zero T
	h := r.head.Load()
	n := 0
	if r.spsc {
		avail := int(r.tail.Load() - h)
		if avail <= 0 {
			return 0
		}
		if max > avail {
			max = avail
		}
		for ; n < max; n++ {
			s := &r.buf[(h+uint64(n))&r.mask]
			dst[n] = s.val
			s.val = zero
		}
	} else {
		for n < max {
			s := &r.buf[(h+uint64(n))&r.mask]
			if s.seq.Load() != h+uint64(n)+1 {
				break
			}
			dst[n] = s.val
			s.val = zero
			n++
		}
		if n == 0 {
			return 0
		}
	}
	r.head.Store(h + uint64(n))
	r.afterPop()
	return n
}

// afterPop wakes parked producers; the head store above is sequenced before
// the pushWaiters load (Dekker pairing with waitNotFull).
func (r *Ring[T]) afterPop() {
	if r.pushWaiters.Load() > 0 {
		r.mu.Lock()
		r.notFull.Broadcast()
		r.mu.Unlock()
	}
}

// drained reports closed-and-empty, counting claimed-but-unpublished slots
// as occupied so a consumer racing a final publish waits for it instead of
// declaring a premature end of stream.
func (r *Ring[T]) drained() bool {
	return r.closed.Load() && r.tail.Load() == r.head.Load()
}

// emptyPublished reports whether the consumer has nothing consumable.
func (r *Ring[T]) emptyPublished() bool {
	h := r.head.Load()
	if r.spsc {
		return r.tail.Load() == h
	}
	return r.buf[h&r.mask].seq.Load() != h+1
}

func (r *Ring[T]) full() bool {
	return r.tail.Load()-r.head.Load() >= r.logical
}

// --- parking slow path ---

func ctxLive(ctx context.Context) bool {
	return ctx == nil || ctx.Err() == nil
}

// watch ensures a watcher goroutine broadcasts both condvars when ctx is
// canceled. One watcher per live context, cached for the context's
// lifetime, so steady-state parking never allocates. Caller holds r.mu.
func (r *Ring[T]) watch(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		return
	}
	for _, w := range r.watched {
		if w == ctx {
			return
		}
	}
	r.watched = append(r.watched, ctx)
	go func() {
		<-ctx.Done()
		r.mu.Lock()
		for i, w := range r.watched {
			if w == ctx {
				last := len(r.watched) - 1
				r.watched[i] = r.watched[last]
				r.watched[last] = nil
				r.watched = r.watched[:last]
				break
			}
		}
		// The broadcast synchronizes on r.mu: a waiter that re-checked
		// its predicate but has not yet suspended still holds the lock,
		// so this wakeup cannot be missed.
		r.notFull.Broadcast()
		r.notEmpty.Broadcast()
		r.mu.Unlock()
	}()
}

// waitNotFull parks until space frees, the ring closes, or ctx cancels.
func (r *Ring[T]) waitNotFull(ctx context.Context) error {
	r.mu.Lock()
	r.watch(ctx)
	r.pushWaiters.Add(1)
	waited := false
	var stall time.Time
	for r.full() && !r.closed.Load() && ctxLive(ctx) {
		if !waited {
			waited = true
			r.blockedPushes.Add(1)
			stall = time.Now()
		}
		r.notFull.Wait()
	}
	if waited {
		r.pushStallNS.Add(uint64(time.Since(stall)))
	}
	r.pushWaiters.Add(-1)
	r.mu.Unlock()
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if r.closed.Load() {
		return ErrClosed
	}
	return nil
}

// waitNotEmpty parks until an item is published, the ring is closed and
// drained, or ctx cancels. A closed ring with a claim still in flight keeps
// waiting: the publishing producer's afterPush delivers the wakeup.
func (r *Ring[T]) waitNotEmpty(ctx context.Context) error {
	r.mu.Lock()
	r.watch(ctx)
	r.popWaiters.Add(1)
	waited := false
	var stall time.Time
	for r.emptyPublished() && !r.drained() && ctxLive(ctx) {
		if !waited {
			waited = true
			r.blockedPops.Add(1)
			stall = time.Now()
		}
		r.notEmpty.Wait()
	}
	if waited {
		r.popStallNS.Add(uint64(time.Since(stall)))
	}
	r.popWaiters.Add(-1)
	r.mu.Unlock()
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

// --- Queue-compatible API ---

// Push appends v, blocking while the ring is full; ErrClosed after Close.
func (r *Ring[T]) Push(v T) error { return r.pushCtx(nil, v) }

// PushCtx is Push with cancellation.
func (r *Ring[T]) PushCtx(ctx context.Context, v T) error { return r.pushCtx(ctx, v) }

func (r *Ring[T]) pushCtx(ctx context.Context, v T) error {
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if r.closed.Load() {
			return ErrClosed
		}
		if r.push1(v) {
			return nil
		}
		if err := r.waitNotFull(ctx); err != nil {
			return err
		}
	}
}

// TryPush appends v without blocking: ErrFull (counted as dropped) when at
// capacity, ErrClosed after Close.
func (r *Ring[T]) TryPush(v T) error {
	if r.closed.Load() {
		return ErrClosed
	}
	if r.push1(v) {
		return nil
	}
	r.dropped.Add(1)
	return ErrFull
}

// PushBatch appends every item in order, blocking while full. On ErrClosed
// a prefix may already have been accepted, as with Queue.
func (r *Ring[T]) PushBatch(items []T) error { return r.pushBatchCtx(nil, items) }

// PushBatchCtx is PushBatch with cancellation.
func (r *Ring[T]) PushBatchCtx(ctx context.Context, items []T) error {
	return r.pushBatchCtx(ctx, items)
}

// PushBatchN is PushBatchCtx reporting how many leading items were
// accepted, so on cancellation or close the caller can retry exactly the
// suffix that never entered the ring (the resumable pause boundary of the
// batched emit path).
func (r *Ring[T]) PushBatchN(ctx context.Context, items []T) (int, error) {
	return r.pushBatchN(ctx, items)
}

func (r *Ring[T]) pushBatchCtx(ctx context.Context, items []T) error {
	_, err := r.pushBatchN(ctx, items)
	return err
}

func (r *Ring[T]) pushBatchN(ctx context.Context, items []T) (int, error) {
	pushed := 0
	for len(items) > 0 {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return pushed, err
			}
		}
		if r.closed.Load() {
			return pushed, ErrClosed
		}
		if n := r.pushN(items); n > 0 {
			items = items[n:]
			pushed += n
			continue
		}
		if err := r.waitNotFull(ctx); err != nil {
			return pushed, err
		}
	}
	return pushed, nil
}

// Pop removes the oldest item, blocking while empty; ErrClosed once closed
// and drained.
func (r *Ring[T]) Pop() (T, error) { return r.popCtx(nil) }

// PopCtx is Pop with cancellation: ctx.Err() without consuming anything.
func (r *Ring[T]) PopCtx(ctx context.Context) (T, error) { return r.popCtx(ctx) }

func (r *Ring[T]) popCtx(ctx context.Context) (T, error) {
	var zero T
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return zero, err
			}
		}
		if v, ok := r.pop1(); ok {
			return v, nil
		}
		if r.drained() {
			return zero, ErrClosed
		}
		if err := r.waitNotEmpty(ctx); err != nil {
			return zero, err
		}
	}
}

// TryPop removes the oldest item without blocking: ErrEmpty when nothing is
// published, ErrClosed once closed and drained.
func (r *Ring[T]) TryPop() (T, error) {
	if v, ok := r.pop1(); ok {
		return v, nil
	}
	var zero T
	if r.drained() {
		return zero, ErrClosed
	}
	return zero, ErrEmpty
}

// PopBatch moves up to max items (bounded by len(dst)) into dst, blocking
// while empty; it never waits for the ring to fill. max <= 0 means len(dst).
func (r *Ring[T]) PopBatch(dst []T, max int) (int, error) {
	return r.popBatchCtx(nil, dst, max)
}

// PopBatchCtx is PopBatch with cancellation.
func (r *Ring[T]) PopBatchCtx(ctx context.Context, dst []T, max int) (int, error) {
	return r.popBatchCtx(ctx, dst, max)
}

func (r *Ring[T]) popBatchCtx(ctx context.Context, dst []T, max int) (int, error) {
	if max <= 0 || max > len(dst) {
		max = len(dst)
	}
	if max == 0 {
		return 0, nil
	}
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		if n := r.popN(dst, max); n > 0 {
			return n, nil
		}
		if r.drained() {
			return 0, ErrClosed
		}
		if err := r.waitNotEmpty(ctx); err != nil {
			return 0, err
		}
	}
}
