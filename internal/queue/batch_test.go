package queue

import (
	"context"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPushBatchPopBatchFIFO(t *testing.T) {
	q := New[int](4) // smaller than the batch: forces chunked pushes
	const total = 32
	batch := make([]int, total)
	for i := range batch {
		batch[i] = i
	}
	done := make(chan error, 1)
	go func() { done <- q.PushBatch(batch) }()

	got := make([]int, 0, total)
	dst := make([]int, 3)
	for len(got) < total {
		n, err := q.PopBatch(dst, len(dst))
		if err != nil {
			t.Errorf("PopBatch: %v", err)
			break
		}
		got = append(got, dst[:n]...)
	}
	if err := <-done; err != nil {
		t.Fatalf("PushBatch: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("item %d = %d, want %d (FIFO violated)", i, v, i)
		}
	}
	st := q.Stats()
	if st.Pushed != total || st.Popped != total {
		t.Fatalf("stats pushed=%d popped=%d, want both %d", st.Pushed, st.Popped, total)
	}
}

func TestPushBatchEmptyAndPopBatchZero(t *testing.T) {
	q := New[int](2)
	if err := q.PushBatch(nil); err != nil {
		t.Fatalf("PushBatch(nil) = %v", err)
	}
	if n, err := q.PopBatch(nil, 0); n != 0 || err != nil {
		t.Fatalf("PopBatch(nil) = (%d, %v), want (0, nil)", n, err)
	}
}

func TestPopBatchTakesOnlyAvailable(t *testing.T) {
	q := New[int](8)
	q.PushBatch([]int{1, 2, 3})
	dst := make([]int, 8)
	n, err := q.PopBatch(dst, 8)
	if err != nil || n != 3 {
		t.Fatalf("PopBatch = (%d, %v), want (3, nil)", n, err)
	}
	if dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
		t.Fatalf("PopBatch contents = %v", dst[:n])
	}
}

func TestPopBatchRespectsMax(t *testing.T) {
	q := New[int](8)
	q.PushBatch([]int{1, 2, 3, 4})
	dst := make([]int, 8)
	if n, _ := q.PopBatch(dst, 2); n != 2 {
		t.Fatalf("PopBatch(max=2) took %d items", n)
	}
	if v, _ := q.Pop(); v != 3 {
		t.Fatalf("next Pop = %d, want 3", v)
	}
}

func TestPushBatchClosedReturnsErrClosed(t *testing.T) {
	q := New[int](1)
	q.Close()
	if err := q.PushBatch([]int{1, 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("PushBatch on closed = %v, want ErrClosed", err)
	}
}

func TestPushBatchCloseMidway(t *testing.T) {
	q := New[int](2)
	done := make(chan error, 1)
	go func() { done <- q.PushBatch([]int{1, 2, 3, 4}) }()
	waitFor(t, func() bool { return q.Stats().BlockedPushes == 1 })
	q.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("PushBatch on closing queue = %v, want ErrClosed", err)
	}
	// The accepted prefix stayed and is drainable.
	dst := make([]int, 4)
	if n, err := q.PopBatch(dst, 4); err != nil || n != 2 || dst[0] != 1 || dst[1] != 2 {
		t.Fatalf("drain after mid-batch close = (%v, %v)", dst[:n], err)
	}
}

func TestPopBatchClosedDrained(t *testing.T) {
	q := New[int](2)
	q.Push(1)
	q.Close()
	dst := make([]int, 2)
	if n, err := q.PopBatch(dst, 2); err != nil || n != 1 {
		t.Fatalf("PopBatch draining closed queue = (%d, %v)", n, err)
	}
	if n, err := q.PopBatch(dst, 2); !errors.Is(err, ErrClosed) || n != 0 {
		t.Fatalf("PopBatch on drained closed queue = (%d, %v), want (0, ErrClosed)", n, err)
	}
}

func TestPushBatchCtxCancel(t *testing.T) {
	q := New[int](1)
	q.Push(0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- q.PushBatchCtx(ctx, []int{1, 2}) }()
	waitFor(t, func() bool { return q.Stats().BlockedPushes == 1 })
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("PushBatchCtx = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("PushBatchCtx never unblocked on cancel")
	}
}

func TestPopBatchCtxCancel(t *testing.T) {
	q := New[int](1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		dst := make([]int, 4)
		_, err := q.PopBatchCtx(ctx, dst, 4)
		done <- err
	}()
	waitFor(t, func() bool { return q.Stats().BlockedPops == 1 })
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("PopBatchCtx = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("PopBatchCtx never unblocked on cancel")
	}
}

// TestBatchWakesAllBlockedProducers is the no-lost-wakeup regression for the
// Signal-based wakeup discipline: a batch pop frees many slots at once and
// must release every producer that can now proceed, not just one.
func TestBatchWakesAllBlockedProducers(t *testing.T) {
	const producers = 8
	q := New[int](1)
	q.Push(-1)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if err := q.Push(p); err != nil {
				t.Errorf("Push(%d): %v", p, err)
			}
		}(p)
	}
	waitFor(t, func() bool { return q.Stats().BlockedPushes == producers })

	// One batch pop frees one slot; producers refill it one at a time, so
	// the queue drains only if every producer eventually wakes.
	dst := make([]int, producers+1)
	popped := 0
	for popped < producers+1 {
		n, err := q.PopBatch(dst, len(dst))
		if err != nil {
			t.Fatalf("PopBatch: %v", err)
		}
		popped += n
	}
	waitDone(t, &wg, "all producers finished")
}

// TestBatchWakesAllBlockedConsumers is the mirrored regression: one batch
// push supplies many items at once and must release every blocked consumer.
func TestBatchWakesAllBlockedConsumers(t *testing.T) {
	const consumers = 8
	q := New[int](consumers)
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := q.Pop(); err != nil {
				t.Errorf("Pop: %v", err)
			}
		}()
	}
	waitFor(t, func() bool { return q.Stats().BlockedPops == consumers })

	batch := make([]int, consumers)
	for i := range batch {
		batch[i] = i
	}
	if err := q.PushBatch(batch); err != nil {
		t.Fatal(err)
	}
	waitDone(t, &wg, "all consumers received an item")
}

// TestCancelHandsOffWakeup: a canceled waiter that absorbed a condvar signal
// must pass it on to a surviving waiter instead of swallowing it.
func TestCancelHandsOffWakeup(t *testing.T) {
	q := New[int](1)
	ctx, cancel := context.WithCancel(context.Background())

	canceled := make(chan error, 1)
	go func() {
		_, err := q.PopCtx(ctx)
		canceled <- err
	}()
	waitFor(t, func() bool { return q.Stats().BlockedPops == 1 })

	survivor := make(chan int, 1)
	go func() {
		v, err := q.Pop()
		if err != nil {
			t.Errorf("surviving Pop: %v", err)
		}
		survivor <- v
	}()
	waitFor(t, func() bool { return q.Stats().BlockedPops == 2 })

	// Cancel the first waiter and immediately push: whichever waiter the
	// Signal reaches, the item must end up at the survivor.
	cancel()
	if err := q.Push(42); err != nil {
		t.Fatal(err)
	}
	if err := <-canceled; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled PopCtx = %v", err)
	}
	select {
	case v := <-survivor:
		if v != 42 {
			t.Fatalf("survivor got %d, want 42", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("wakeup lost: surviving Pop never received the item")
	}
}

// Property: any single-goroutine interleaving of per-item and batch ops
// preserves FIFO order, never exceeds capacity, and keeps Stats.Pushed and
// Stats.Popped equal to the item counts moved.
func TestBatchFIFOInterleavingProperty(t *testing.T) {
	f := func(script []uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		q := New[int](capacity)
		next, expect := 0, 0
		pushed, popped := 0, 0
		dst := make([]int, capacity+4)
		for _, op := range script {
			switch op % 4 {
			case 0: // per-item push
				if err := q.TryPush(next); err == nil {
					next++
					pushed++
				}
			case 1: // per-item pop
				if v, err := q.TryPop(); err == nil {
					if v != expect {
						return false
					}
					expect++
					popped++
				}
			case 2: // batch push, sized to free space so it cannot block
				k := q.Cap() - q.Len()
				if want := int(op/4)%4 + 1; k > want {
					k = want
				}
				if k == 0 {
					continue
				}
				batch := make([]int, k)
				for i := range batch {
					batch[i] = next + i
				}
				if err := q.PushBatch(batch); err != nil {
					return false
				}
				next += k
				pushed += k
			case 3: // batch pop, only when nonempty so it cannot block
				if q.Len() == 0 {
					continue
				}
				max := int(op/4)%len(dst) + 1
				n, err := q.PopBatch(dst, max)
				if err != nil {
					return false
				}
				for i := 0; i < n; i++ {
					if dst[i] != expect {
						return false
					}
					expect++
				}
				popped += n
			}
			if q.Len() > q.Cap() || q.Len() < 0 {
				return false
			}
		}
		st := q.Stats()
		return st.Pushed == uint64(pushed) && st.Popped == uint64(popped) &&
			int(st.Pushed-st.Popped) == q.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: concurrent batch producers and consumers lose nothing,
// duplicate nothing, and never exceed capacity.
func TestBatchConcurrentProperty(t *testing.T) {
	const (
		producers = 4
		perProd   = 300
		batchSize = 7
	)
	q := New[int](16)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i += batchSize {
				end := i + batchSize
				if end > perProd {
					end = perProd
				}
				batch := make([]int, 0, batchSize)
				for j := i; j < end; j++ {
					batch = append(batch, p*perProd+j)
				}
				if err := q.PushBatch(batch); err != nil {
					t.Errorf("PushBatch: %v", err)
					return
				}
			}
		}(p)
	}
	seen := make(map[int]bool, producers*perProd)
	consumed := make(chan struct{})
	go func() {
		defer close(consumed)
		dst := make([]int, 8)
		for {
			n, err := q.PopBatch(dst, len(dst))
			if errors.Is(err, ErrClosed) {
				return
			}
			if err != nil {
				t.Errorf("PopBatch: %v", err)
				return
			}
			if q.Len() > q.Cap() {
				t.Errorf("Len %d exceeds Cap %d", q.Len(), q.Cap())
			}
			for _, v := range dst[:n] {
				if seen[v] {
					t.Errorf("value %d consumed twice", v)
				}
				seen[v] = true
			}
		}
	}()
	wg.Wait()
	q.Close()
	<-consumed
	if len(seen) != producers*perProd {
		t.Fatalf("consumed %d distinct values, want %d", len(seen), producers*perProd)
	}
	st := q.Stats()
	if st.Pushed != uint64(producers*perProd) || st.Popped != st.Pushed {
		t.Fatalf("stats pushed=%d popped=%d, want both %d", st.Pushed, st.Popped, producers*perProd)
	}
}

// waitFor polls cond until it holds, failing the test after a generous
// deadline. It replaces fixed wall-clock sleeps so slow machines cannot
// flake the test and fast ones do not wait.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// waitDone waits for wg with a deadline.
func waitDone(t *testing.T, wg *sync.WaitGroup, what string) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting: %s", what)
	}
}
