// Package queue implements the bounded, instrumented FIFO that backs every
// stage's input buffer.
//
// Section 4.1 of the GATES paper models each pipeline stage as a server in a
// queuing network whose input buffer is the server's queue; the
// self-adaptation algorithm observes the queue's current length d, its
// recent average, and its capacity C. This package provides exactly that
// observable queue: a blocking bounded FIFO whose occupancy statistics are
// cheap to sample from a concurrent controller.
//
// The queue offers two granularities. Per-item Push/Pop pay one mutex
// round-trip and one condvar wakeup per item. PushBatch/PopBatch move many
// items under a single lock acquisition — the §4.1 model's per-batch
// amortizable service cost — and Len reads an atomic occupancy mirror, so
// the adaptation controller's periodic sampling never contends with the
// data path.
package queue

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by Push operations on a closed queue and by Pop
// operations once a closed queue has been fully drained.
var ErrClosed = errors.New("queue: closed")

// ErrFull is returned by TryPush when the queue is at capacity.
var ErrFull = errors.New("queue: full")

// ErrEmpty is returned by TryPop when the queue holds no items.
var ErrEmpty = errors.New("queue: empty")

// Stats is a snapshot of a queue's lifetime counters. All counts are
// monotonically non-decreasing for the life of the queue.
type Stats struct {
	// Pushed is the number of items accepted.
	Pushed uint64
	// Popped is the number of items removed.
	Popped uint64
	// BlockedPushes counts push waits — each is one backpressure event
	// propagated to the producer. A batch push that waits for space more
	// than once counts one event per wait episode.
	BlockedPushes uint64
	// BlockedPops counts pop waits for an item.
	BlockedPops uint64
	// HighWater is the maximum occupancy ever observed.
	HighWater int
	// Dropped counts items rejected by TryPush on a full queue.
	Dropped uint64
	// PushStallNS and PopStallNS are the cumulative wall-clock
	// nanoseconds producers spent parked on a full buffer and the
	// consumer spent parked on an empty one. Wall time, not virtual: a
	// parked goroutine does not advance any virtual schedule, and the
	// bottleneck-attribution engine compares these against a wall-clock
	// epoch. Only the parked slow path pays the clock reads.
	PushStallNS uint64
	PopStallNS  uint64
}

// Queue is a bounded FIFO safe for any number of concurrent producers and
// consumers. The zero value is not usable; construct with New.
type Queue[T any] struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond

	buf    []T // ring buffer
	head   int // index of the oldest element
	n      int // number of elements
	closed bool

	// length mirrors n so Len can be sampled without taking mu.
	length atomic.Int64

	stats Stats
}

// New returns a queue with the given capacity. Capacity must be at least 1;
// New panics otherwise, since a zero-capacity server queue is meaningless in
// the paper's model.
func New[T any](capacity int) *Queue[T] {
	if capacity < 1 {
		panic("queue: capacity must be >= 1")
	}
	q := &Queue[T]{buf: make([]T, capacity)}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// Cap returns the fixed capacity C of the queue.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Len returns the current occupancy d of the queue. It is the quantity the
// self-adaptation controller samples; the read is a single atomic load, so
// a controller polling at any rate never blocks the data path.
func (q *Queue[T]) Len() int { return int(q.length.Load()) }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Stats returns a snapshot of the queue's counters.
func (q *Queue[T]) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Snapshot returns the queued items oldest-first without removing them —
// the state-capture hook live migration uses to account for the in-flight
// buffer of a paused stage.
func (q *Queue[T]) Snapshot() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]T, q.n)
	for i := 0; i < q.n; i++ {
		out[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	return out
}

// Push appends v, blocking while the queue is full. It returns ErrClosed if
// the queue is (or becomes) closed while waiting.
func (q *Queue[T]) Push(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	blocked := false
	var stall time.Time
	for q.n == len(q.buf) && !q.closed {
		if !blocked {
			blocked = true
			q.stats.BlockedPushes++
			stall = time.Now()
		}
		q.notFull.Wait()
	}
	if blocked {
		q.stats.PushStallNS += uint64(time.Since(stall))
	}
	if q.closed {
		return ErrClosed
	}
	q.pushLocked(v)
	return nil
}

// PushCtx is Push with cancellation. If ctx is done before space is
// available it returns ctx.Err().
func (q *Queue[T]) PushCtx(ctx context.Context, v T) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	q.mu.Lock()
	// Fast path: space available, no watcher goroutine needed.
	if q.closed {
		q.mu.Unlock()
		return ErrClosed
	}
	if q.n < len(q.buf) {
		q.pushLocked(v)
		q.mu.Unlock()
		return nil
	}
	q.mu.Unlock()
	return q.pushCtxSlow(ctx, v)
}

func (q *Queue[T]) pushCtxSlow(ctx context.Context, v T) error {
	stop := q.watchCancel(ctx)
	defer stop()

	q.mu.Lock()
	defer q.mu.Unlock()
	blocked := false
	var stall time.Time
	for q.n == len(q.buf) && !q.closed && ctx.Err() == nil {
		if !blocked {
			blocked = true
			q.stats.BlockedPushes++
			stall = time.Now()
		}
		q.notFull.Wait()
	}
	if blocked {
		q.stats.PushStallNS += uint64(time.Since(stall))
	}
	if err := ctx.Err(); err != nil {
		// This waiter may have absorbed a Signal meant for another
		// blocked producer; pass it on so the wakeup is not lost.
		if q.n < len(q.buf) {
			q.notFull.Signal()
		}
		return err
	}
	if q.closed {
		return ErrClosed
	}
	q.pushLocked(v)
	return nil
}

// watchCancel arranges for both condvars to be woken when ctx is canceled,
// so a blocked waiter can observe the cancellation. The broadcast
// synchronizes on q.mu: a waiter that has checked its predicate but not yet
// suspended in Wait still holds the lock, so the wakeup cannot slip into
// that window and be missed. The returned stop function releases the
// watcher.
func (q *Queue[T]) watchCancel(ctx context.Context) (stop func()) {
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			q.mu.Lock()
			q.notFull.Broadcast()
			q.notEmpty.Broadcast()
			q.mu.Unlock()
		case <-done:
		}
	}()
	return func() { close(done) }
}

// TryPush appends v without blocking. It returns ErrFull when at capacity
// (counting the item as dropped) or ErrClosed after Close.
func (q *Queue[T]) TryPush(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.n == len(q.buf) {
		q.stats.Dropped++
		return ErrFull
	}
	q.pushLocked(v)
	return nil
}

// PushBatch appends every item in order, blocking while the queue is full.
// Items are moved in chunks of whatever capacity is free, each chunk under
// one lock acquisition and one consumer wakeup, so the per-item condvar
// round-trip of Push is amortized across the batch. FIFO order within the
// batch and relative to concurrent per-item pushes is preserved (the whole
// chunk is enqueued contiguously).
//
// If the queue is closed mid-batch, PushBatch returns ErrClosed; a prefix
// of the batch may already have been accepted (and is counted in
// Stats.Pushed).
func (q *Queue[T]) PushBatch(items []T) error {
	for len(items) > 0 {
		q.mu.Lock()
		blocked := false
		var stall time.Time
		for q.n == len(q.buf) && !q.closed {
			if !blocked {
				blocked = true
				q.stats.BlockedPushes++
				stall = time.Now()
			}
			q.notFull.Wait()
		}
		if blocked {
			q.stats.PushStallNS += uint64(time.Since(stall))
		}
		if q.closed {
			q.mu.Unlock()
			return ErrClosed
		}
		k := len(q.buf) - q.n
		if k > len(items) {
			k = len(items)
		}
		q.enqueueLocked(items[:k])
		q.mu.Unlock()
		items = items[k:]
	}
	return nil
}

// PushBatchCtx is PushBatch with cancellation. On ctx cancellation a prefix
// of the batch may already have been accepted.
func (q *Queue[T]) PushBatchCtx(ctx context.Context, items []T) error {
	_, err := q.PushBatchN(ctx, items)
	return err
}

// PushBatchN is PushBatchCtx reporting how many leading items were
// accepted. On cancellation or close the caller knows exactly which suffix
// never entered the queue and can retry it — what makes a blocked batched
// emit a resumable pause boundary rather than an all-or-nothing loss.
func (q *Queue[T]) PushBatchN(ctx context.Context, items []T) (int, error) {
	pushed := 0
	for len(items) > 0 {
		if err := ctx.Err(); err != nil {
			return pushed, err
		}
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return pushed, ErrClosed
		}
		if q.n == len(q.buf) {
			q.mu.Unlock()
			if err := q.waitNotFull(ctx); err != nil {
				return pushed, err
			}
			continue // re-check under a fresh lock
		}
		k := len(q.buf) - q.n
		if k > len(items) {
			k = len(items)
		}
		q.enqueueLocked(items[:k])
		q.mu.Unlock()
		items = items[k:]
		pushed += k
	}
	return pushed, nil
}

// waitNotFull blocks until the queue has space, is closed, or ctx is done.
// It returns nil when waiting ended for a (possibly stale) reason the
// caller should re-examine under its own lock, or ctx.Err() on
// cancellation.
func (q *Queue[T]) waitNotFull(ctx context.Context) error {
	stop := q.watchCancel(ctx)
	defer stop()

	q.mu.Lock()
	defer q.mu.Unlock()
	blocked := false
	var stall time.Time
	for q.n == len(q.buf) && !q.closed && ctx.Err() == nil {
		if !blocked {
			blocked = true
			q.stats.BlockedPushes++
			stall = time.Now()
		}
		q.notFull.Wait()
	}
	if blocked {
		q.stats.PushStallNS += uint64(time.Since(stall))
	}
	if err := ctx.Err(); err != nil {
		if q.n < len(q.buf) {
			q.notFull.Signal() // hand off an absorbed wakeup
		}
		return err
	}
	return nil
}

// pushLocked appends one item; the caller holds mu.
func (q *Queue[T]) pushLocked(v T) {
	tail := (q.head + q.n) % len(q.buf)
	q.buf[tail] = v
	q.n++
	q.length.Store(int64(q.n))
	q.stats.Pushed++
	if q.n > q.stats.HighWater {
		q.stats.HighWater = q.n
	}
	// Exactly one item became available: exactly one consumer can
	// proceed, so Signal, not Broadcast — waking every blocked consumer
	// per item is a thundering herd that burns the data path's cycles.
	q.notEmpty.Signal()
}

// enqueueLocked appends items contiguously (at most two ring segments); the
// caller holds mu and guarantees capacity.
func (q *Queue[T]) enqueueLocked(items []T) {
	tail := (q.head + q.n) % len(q.buf)
	copied := copy(q.buf[tail:], items)
	if copied < len(items) {
		copy(q.buf, items[copied:])
	}
	q.n += len(items)
	q.length.Store(int64(q.n))
	q.stats.Pushed += uint64(len(items))
	if q.n > q.stats.HighWater {
		q.stats.HighWater = q.n
	}
	if len(items) == 1 {
		q.notEmpty.Signal()
	} else {
		// Several consumers can now proceed; wake them all once per
		// batch rather than once per item.
		q.notEmpty.Broadcast()
	}
}

// Pop removes and returns the oldest item, blocking while the queue is
// empty. Once the queue is closed and drained it returns ErrClosed.
func (q *Queue[T]) Pop() (T, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	blocked := false
	var stall time.Time
	for q.n == 0 && !q.closed {
		if !blocked {
			blocked = true
			q.stats.BlockedPops++
			stall = time.Now()
		}
		q.notEmpty.Wait()
	}
	if blocked {
		q.stats.PopStallNS += uint64(time.Since(stall))
	}
	var zero T
	if q.n == 0 { // closed and drained
		return zero, ErrClosed
	}
	return q.popLocked(), nil
}

// PopCtx is Pop with cancellation.
func (q *Queue[T]) PopCtx(ctx context.Context) (T, error) {
	var zero T
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	q.mu.Lock()
	// Fast path: an item is ready, no watcher goroutine needed.
	if q.n > 0 {
		v := q.popLocked()
		q.mu.Unlock()
		return v, nil
	}
	if q.closed {
		q.mu.Unlock()
		return zero, ErrClosed
	}
	q.mu.Unlock()
	return q.popCtxSlow(ctx)
}

func (q *Queue[T]) popCtxSlow(ctx context.Context) (T, error) {
	stop := q.watchCancel(ctx)
	defer stop()

	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	blocked := false
	var stall time.Time
	for q.n == 0 && !q.closed && ctx.Err() == nil {
		if !blocked {
			blocked = true
			q.stats.BlockedPops++
			stall = time.Now()
		}
		q.notEmpty.Wait()
	}
	if blocked {
		q.stats.PopStallNS += uint64(time.Since(stall))
	}
	if err := ctx.Err(); err != nil {
		if q.n > 0 {
			q.notEmpty.Signal() // hand off an absorbed wakeup
		}
		return zero, err
	}
	if q.n == 0 {
		return zero, ErrClosed
	}
	return q.popLocked(), nil
}

// TryPop removes and returns the oldest item without blocking. It returns
// ErrEmpty when nothing is queued, or ErrClosed once closed and drained.
func (q *Queue[T]) TryPop() (T, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	if q.n == 0 {
		if q.closed {
			return zero, ErrClosed
		}
		return zero, ErrEmpty
	}
	return q.popLocked(), nil
}

// PopBatch removes up to max items (bounded by len(dst)) into dst, blocking
// while the queue is empty. It returns the number of items moved — at least
// one — or 0 and ErrClosed once the queue is closed and drained. All
// immediately available items up to the bound are taken under one lock
// acquisition; PopBatch never waits for the queue to fill, so batching adds
// no latency. max <= 0 means len(dst).
func (q *Queue[T]) PopBatch(dst []T, max int) (int, error) {
	if max <= 0 || max > len(dst) {
		max = len(dst)
	}
	if max == 0 {
		return 0, nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	blocked := false
	var stall time.Time
	for q.n == 0 && !q.closed {
		if !blocked {
			blocked = true
			q.stats.BlockedPops++
			stall = time.Now()
		}
		q.notEmpty.Wait()
	}
	if blocked {
		q.stats.PopStallNS += uint64(time.Since(stall))
	}
	if q.n == 0 {
		return 0, ErrClosed
	}
	k := q.n
	if k > max {
		k = max
	}
	q.dequeueLocked(dst[:k])
	return k, nil
}

// PopBatchCtx is PopBatch with cancellation.
func (q *Queue[T]) PopBatchCtx(ctx context.Context, dst []T, max int) (int, error) {
	if max <= 0 || max > len(dst) {
		max = len(dst)
	}
	if max == 0 {
		return 0, nil
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	q.mu.Lock()
	// Fast path mirroring PopCtx.
	if q.n > 0 {
		k := q.n
		if k > max {
			k = max
		}
		q.dequeueLocked(dst[:k])
		q.mu.Unlock()
		return k, nil
	}
	if q.closed {
		q.mu.Unlock()
		return 0, ErrClosed
	}
	q.mu.Unlock()
	return q.popBatchCtxSlow(ctx, dst, max)
}

func (q *Queue[T]) popBatchCtxSlow(ctx context.Context, dst []T, max int) (int, error) {
	stop := q.watchCancel(ctx)
	defer stop()

	q.mu.Lock()
	defer q.mu.Unlock()
	blocked := false
	var stall time.Time
	for q.n == 0 && !q.closed && ctx.Err() == nil {
		if !blocked {
			blocked = true
			q.stats.BlockedPops++
			stall = time.Now()
		}
		q.notEmpty.Wait()
	}
	if blocked {
		q.stats.PopStallNS += uint64(time.Since(stall))
	}
	if err := ctx.Err(); err != nil {
		if q.n > 0 {
			q.notEmpty.Signal()
		}
		return 0, err
	}
	if q.n == 0 {
		return 0, ErrClosed
	}
	k := q.n
	if k > max {
		k = max
	}
	q.dequeueLocked(dst[:k])
	return k, nil
}

// popLocked removes one item; the caller holds mu.
func (q *Queue[T]) popLocked() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // release reference
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.length.Store(int64(q.n))
	q.stats.Popped++
	// Exactly one slot freed: exactly one producer can proceed.
	q.notFull.Signal()
	return v
}

// dequeueLocked moves the oldest len(dst) items into dst (at most two ring
// segments); the caller holds mu and guarantees availability.
func (q *Queue[T]) dequeueLocked(dst []T) {
	k := len(dst)
	first := len(q.buf) - q.head
	if first > k {
		first = k
	}
	copy(dst, q.buf[q.head:q.head+first])
	copy(dst[first:], q.buf[:k-first])
	var zero T
	for i := q.head; i < q.head+first; i++ {
		q.buf[i] = zero // release references
	}
	for i := 0; i < k-first; i++ {
		q.buf[i] = zero
	}
	q.head = (q.head + k) % len(q.buf)
	q.n -= k
	q.length.Store(int64(q.n))
	q.stats.Popped += uint64(k)
	if k == 1 {
		q.notFull.Signal()
	} else {
		// Several producers can now proceed; one wakeup for the batch.
		q.notFull.Broadcast()
	}
}

// Close marks the queue closed. Pending and future Push calls fail with
// ErrClosed; Pop continues to drain remaining items and then fails with
// ErrClosed. Close is idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
}
