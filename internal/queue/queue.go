// Package queue implements the bounded, instrumented FIFO that backs every
// stage's input buffer.
//
// Section 4.1 of the GATES paper models each pipeline stage as a server in a
// queuing network whose input buffer is the server's queue; the
// self-adaptation algorithm observes the queue's current length d, its
// recent average, and its capacity C. This package provides exactly that
// observable queue: a blocking bounded FIFO whose occupancy statistics are
// cheap to sample from a concurrent controller.
package queue

import (
	"context"
	"errors"
	"sync"
)

// ErrClosed is returned by Push operations on a closed queue and by Pop
// operations once a closed queue has been fully drained.
var ErrClosed = errors.New("queue: closed")

// ErrFull is returned by TryPush when the queue is at capacity.
var ErrFull = errors.New("queue: full")

// ErrEmpty is returned by TryPop when the queue holds no items.
var ErrEmpty = errors.New("queue: empty")

// Stats is a snapshot of a queue's lifetime counters. All counts are
// monotonically non-decreasing for the life of the queue.
type Stats struct {
	// Pushed is the number of items accepted.
	Pushed uint64
	// Popped is the number of items removed.
	Popped uint64
	// BlockedPushes counts Push calls that had to wait for space — each is
	// one backpressure event propagated to the producer.
	BlockedPushes uint64
	// BlockedPops counts Pop calls that had to wait for an item.
	BlockedPops uint64
	// HighWater is the maximum occupancy ever observed.
	HighWater int
	// Dropped counts items rejected by TryPush on a full queue.
	Dropped uint64
}

// Queue is a bounded FIFO safe for any number of concurrent producers and
// consumers. The zero value is not usable; construct with New.
type Queue[T any] struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond

	buf    []T // ring buffer
	head   int // index of the oldest element
	n      int // number of elements
	closed bool

	stats Stats
}

// New returns a queue with the given capacity. Capacity must be at least 1;
// New panics otherwise, since a zero-capacity server queue is meaningless in
// the paper's model.
func New[T any](capacity int) *Queue[T] {
	if capacity < 1 {
		panic("queue: capacity must be >= 1")
	}
	q := &Queue[T]{buf: make([]T, capacity)}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// Cap returns the fixed capacity C of the queue.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Len returns the current occupancy d of the queue. It is the quantity the
// self-adaptation controller samples.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Stats returns a snapshot of the queue's counters.
func (q *Queue[T]) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Push appends v, blocking while the queue is full. It returns ErrClosed if
// the queue is (or becomes) closed while waiting.
func (q *Queue[T]) Push(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	blocked := false
	for q.n == len(q.buf) && !q.closed {
		if !blocked {
			blocked = true
			q.stats.BlockedPushes++
		}
		q.notFull.Wait()
	}
	if q.closed {
		return ErrClosed
	}
	q.pushLocked(v)
	return nil
}

// PushCtx is Push with cancellation. If ctx is done before space is
// available it returns ctx.Err().
func (q *Queue[T]) PushCtx(ctx context.Context, v T) error {
	// Fast path without spawning a watcher.
	if err := ctx.Err(); err != nil {
		return err
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			// Wake all waiters so the blocked Push can observe ctx.
			q.notFull.Broadcast()
			q.notEmpty.Broadcast()
		case <-done:
		}
	}()

	q.mu.Lock()
	defer q.mu.Unlock()
	blocked := false
	for q.n == len(q.buf) && !q.closed && ctx.Err() == nil {
		if !blocked {
			blocked = true
			q.stats.BlockedPushes++
		}
		q.notFull.Wait()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if q.closed {
		return ErrClosed
	}
	q.pushLocked(v)
	return nil
}

// TryPush appends v without blocking. It returns ErrFull when at capacity
// (counting the item as dropped) or ErrClosed after Close.
func (q *Queue[T]) TryPush(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.n == len(q.buf) {
		q.stats.Dropped++
		return ErrFull
	}
	q.pushLocked(v)
	return nil
}

func (q *Queue[T]) pushLocked(v T) {
	tail := (q.head + q.n) % len(q.buf)
	q.buf[tail] = v
	q.n++
	q.stats.Pushed++
	if q.n > q.stats.HighWater {
		q.stats.HighWater = q.n
	}
	q.notEmpty.Signal()
}

// Pop removes and returns the oldest item, blocking while the queue is
// empty. Once the queue is closed and drained it returns ErrClosed.
func (q *Queue[T]) Pop() (T, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	blocked := false
	for q.n == 0 && !q.closed {
		if !blocked {
			blocked = true
			q.stats.BlockedPops++
		}
		q.notEmpty.Wait()
	}
	var zero T
	if q.n == 0 { // closed and drained
		return zero, ErrClosed
	}
	return q.popLocked(), nil
}

// PopCtx is Pop with cancellation.
func (q *Queue[T]) PopCtx(ctx context.Context) (T, error) {
	var zero T
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			q.notFull.Broadcast()
			q.notEmpty.Broadcast()
		case <-done:
		}
	}()

	q.mu.Lock()
	defer q.mu.Unlock()
	blocked := false
	for q.n == 0 && !q.closed && ctx.Err() == nil {
		if !blocked {
			blocked = true
			q.stats.BlockedPops++
		}
		q.notEmpty.Wait()
	}
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	if q.n == 0 {
		return zero, ErrClosed
	}
	return q.popLocked(), nil
}

// TryPop removes and returns the oldest item without blocking. It returns
// ErrEmpty when nothing is queued, or ErrClosed once closed and drained.
func (q *Queue[T]) TryPop() (T, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	if q.n == 0 {
		if q.closed {
			return zero, ErrClosed
		}
		return zero, ErrEmpty
	}
	return q.popLocked(), nil
}

func (q *Queue[T]) popLocked() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // release reference
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.stats.Popped++
	q.notFull.Signal()
	return v
}

// Close marks the queue closed. Pending and future Push calls fail with
// ErrClosed; Pop continues to drain remaining items and then fails with
// ErrClosed. Close is idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
}
