package queue

import (
	"testing"
	"time"
)

// stallDelay is how long the blocked side is held parked before relief; the
// accounting only needs to register *some* wall time, so the assertion is a
// loose lower bound well under the delay.
const stallDelay = 20 * time.Millisecond

func TestQueuePushStallAccounting(t *testing.T) {
	q := New[int](1)
	if err := q.Push(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- q.Push(2) }() // parks: queue full
	time.Sleep(stallDelay)
	if _, err := q.Pop(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := q.Stats()
	if st.BlockedPushes == 0 {
		t.Fatal("blocked push not counted")
	}
	if st.PushStallNS < uint64(stallDelay/2) {
		t.Fatalf("PushStallNS = %d, want at least ~%d", st.PushStallNS, stallDelay/2)
	}
}

func TestQueuePopStallAccounting(t *testing.T) {
	q := New[int](4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := q.Pop(); err != nil { // parks: queue empty
			t.Error(err)
		}
	}()
	time.Sleep(stallDelay)
	if err := q.Push(1); err != nil {
		t.Fatal(err)
	}
	<-done
	st := q.Stats()
	if st.BlockedPops == 0 {
		t.Fatal("blocked pop not counted")
	}
	if st.PopStallNS < uint64(stallDelay/2) {
		t.Fatalf("PopStallNS = %d, want at least ~%d", st.PopStallNS, stallDelay/2)
	}
}

func TestQueueUncontendedNoStall(t *testing.T) {
	q := New[int](8)
	for i := 0; i < 8; i++ {
		if err := q.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := q.Pop(); err != nil {
			t.Fatal(err)
		}
	}
	st := q.Stats()
	if st.PushStallNS != 0 || st.PopStallNS != 0 {
		t.Fatalf("uncontended traffic accrued stall: push=%d pop=%d", st.PushStallNS, st.PopStallNS)
	}
}

func TestRingStallAccounting(t *testing.T) {
	for name, mk := range map[string]func(int) *Ring[int]{
		"spsc": NewSPSC[int], "mpsc": NewMPSC[int],
	} {
		t.Run(name, func(t *testing.T) {
			r := mk(2)
			for r.Len() < r.Cap() {
				if err := r.Push(1); err != nil {
					t.Fatal(err)
				}
			}
			done := make(chan error, 1)
			go func() { done <- r.Push(2) }() // parks: ring full
			time.Sleep(stallDelay)
			if _, err := r.Pop(); err != nil {
				t.Fatal(err)
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			if st := r.Stats(); st.PushStallNS < uint64(stallDelay/2) {
				t.Fatalf("PushStallNS = %d, want at least ~%d", st.PushStallNS, stallDelay/2)
			}

			// Drain everything, then park the consumer on empty.
			for r.Len() > 0 {
				if _, err := r.Pop(); err != nil {
					t.Fatal(err)
				}
			}
			popped := make(chan error, 1)
			go func() { _, err := r.Pop(); popped <- err }()
			time.Sleep(stallDelay)
			if err := r.Push(3); err != nil {
				t.Fatal(err)
			}
			if err := <-popped; err != nil {
				t.Fatal(err)
			}
			if st := r.Stats(); st.PopStallNS < uint64(stallDelay/2) {
				t.Fatalf("PopStallNS = %d, want at least ~%d", st.PopStallNS, stallDelay/2)
			}
		})
	}
}
