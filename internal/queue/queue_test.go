package queue

import (
	"context"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestNewPanicsOnBadCapacity(t *testing.T) {
	for _, c := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", c)
				}
			}()
			New[int](c)
		}()
	}
}

func TestPushPopFIFO(t *testing.T) {
	q := New[int](4)
	for i := 0; i < 4; i++ {
		if err := q.Push(i); err != nil {
			t.Fatalf("Push(%d): %v", i, err)
		}
	}
	for i := 0; i < 4; i++ {
		v, err := q.Pop()
		if err != nil {
			t.Fatalf("Pop: %v", err)
		}
		if v != i {
			t.Fatalf("Pop = %d, want %d", v, i)
		}
	}
}

func TestLenCap(t *testing.T) {
	q := New[string](3)
	if q.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", q.Cap())
	}
	q.Push("a")
	q.Push("b")
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	q.Pop()
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

func TestTryPushFull(t *testing.T) {
	q := New[int](1)
	if err := q.TryPush(1); err != nil {
		t.Fatal(err)
	}
	if err := q.TryPush(2); !errors.Is(err, ErrFull) {
		t.Fatalf("TryPush on full = %v, want ErrFull", err)
	}
	if q.Stats().Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", q.Stats().Dropped)
	}
}

func TestTryPopEmpty(t *testing.T) {
	q := New[int](1)
	if _, err := q.TryPop(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("TryPop on empty = %v, want ErrEmpty", err)
	}
}

func TestPushBlocksUntilPop(t *testing.T) {
	q := New[int](1)
	q.Push(1)
	done := make(chan error, 1)
	go func() { done <- q.Push(2) }()
	select {
	case <-done:
		t.Fatal("Push on full queue returned without a Pop")
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := q.Pop(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked Push: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Push never unblocked")
	}
	if q.Stats().BlockedPushes != 1 {
		t.Fatalf("BlockedPushes = %d, want 1", q.Stats().BlockedPushes)
	}
}

func TestPopBlocksUntilPush(t *testing.T) {
	q := New[int](1)
	got := make(chan int, 1)
	go func() {
		v, err := q.Pop()
		if err != nil {
			t.Error(err)
		}
		got <- v
	}()
	waitFor(t, func() bool { return q.Stats().BlockedPops == 1 })
	q.Push(99)
	select {
	case v := <-got:
		if v != 99 {
			t.Fatalf("Pop = %d, want 99", v)
		}
	case <-time.After(time.Second):
		t.Fatal("Pop never unblocked")
	}
	if q.Stats().BlockedPops != 1 {
		t.Fatalf("BlockedPops = %d, want 1", q.Stats().BlockedPops)
	}
}

func TestCloseUnblocksPush(t *testing.T) {
	q := New[int](1)
	q.Push(1)
	done := make(chan error, 1)
	go func() { done <- q.Push(2) }()
	waitFor(t, func() bool { return q.Stats().BlockedPushes == 1 })
	q.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Push after Close = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Push never unblocked after Close")
	}
}

func TestCloseDrainsThenErrClosed(t *testing.T) {
	q := New[int](4)
	q.Push(1)
	q.Push(2)
	q.Close()
	if !q.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if v, err := q.Pop(); err != nil || v != 1 {
		t.Fatalf("Pop = (%d,%v), want (1,nil)", v, err)
	}
	if v, err := q.Pop(); err != nil || v != 2 {
		t.Fatalf("Pop = (%d,%v), want (2,nil)", v, err)
	}
	if _, err := q.Pop(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Pop after drain = %v, want ErrClosed", err)
	}
	if _, err := q.TryPop(); !errors.Is(err, ErrClosed) {
		t.Fatalf("TryPop after drain = %v, want ErrClosed", err)
	}
	if err := q.TryPush(3); !errors.Is(err, ErrClosed) {
		t.Fatalf("TryPush after Close = %v, want ErrClosed", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	q := New[int](1)
	q.Close()
	q.Close() // must not panic
}

func TestPushCtxCancel(t *testing.T) {
	q := New[int](1)
	q.Push(1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- q.PushCtx(ctx, 2) }()
	waitFor(t, func() bool { return q.Stats().BlockedPushes == 1 })
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("PushCtx = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("PushCtx never unblocked on cancel")
	}
}

func TestPopCtxCancel(t *testing.T) {
	q := New[int](1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := q.PopCtx(ctx)
		done <- err
	}()
	waitFor(t, func() bool { return q.Stats().BlockedPops == 1 })
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("PopCtx = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("PopCtx never unblocked on cancel")
	}
}

func TestPushCtxAlreadyCanceled(t *testing.T) {
	q := New[int](1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := q.PushCtx(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("PushCtx on canceled ctx = %v", err)
	}
	if _, err := q.PopCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("PopCtx on canceled ctx = %v", err)
	}
}

func TestPopCtxDeliversWhenReady(t *testing.T) {
	q := New[int](2)
	q.Push(7)
	v, err := q.PopCtx(context.Background())
	if err != nil || v != 7 {
		t.Fatalf("PopCtx = (%d,%v), want (7,nil)", v, err)
	}
}

func TestHighWaterMark(t *testing.T) {
	q := New[int](8)
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	q.Pop()
	q.Pop()
	if hw := q.Stats().HighWater; hw != 5 {
		t.Fatalf("HighWater = %d, want 5", hw)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	const (
		producers = 8
		consumers = 8
		perProd   = 500
	)
	q := New[int](16)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				if err := q.Push(p*perProd + i); err != nil {
					t.Errorf("Push: %v", err)
					return
				}
			}
		}(p)
	}
	var consumed sync.Map
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, err := q.Pop()
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil {
					t.Errorf("Pop: %v", err)
					return
				}
				if _, dup := consumed.LoadOrStore(v, true); dup {
					t.Errorf("value %d consumed twice", v)
				}
			}
		}()
	}
	wg.Wait()
	q.Close()
	cwg.Wait()
	n := 0
	consumed.Range(func(_, _ any) bool { n++; return true })
	if n != producers*perProd {
		t.Fatalf("consumed %d distinct values, want %d", n, producers*perProd)
	}
	st := q.Stats()
	if st.Pushed != uint64(producers*perProd) || st.Popped != st.Pushed {
		t.Fatalf("stats pushed=%d popped=%d, want both %d", st.Pushed, st.Popped, producers*perProd)
	}
}

// Property: for any interleaving of pushes and pops driven by a script,
// pops come out in push order and occupancy never exceeds capacity.
func TestFIFOOrderProperty(t *testing.T) {
	f := func(script []bool, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		q := New[int](capacity)
		next := 0
		expect := 0
		for _, push := range script {
			if push {
				if err := q.TryPush(next); err == nil {
					next++
				}
			} else {
				if v, err := q.TryPop(); err == nil {
					if v != expect {
						return false
					}
					expect++
				}
			}
			if q.Len() > q.Cap() || q.Len() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Stats counters are consistent — Pushed - Popped == Len.
func TestStatsConsistencyProperty(t *testing.T) {
	f := func(script []bool) bool {
		q := New[int](8)
		for _, push := range script {
			if push {
				q.TryPush(1)
			} else {
				q.TryPop()
			}
		}
		st := q.Stats()
		return int(st.Pushed-st.Popped) == q.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
