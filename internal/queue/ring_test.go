package queue

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func ringVariants(t *testing.T, cap int) map[string]*Ring[int] {
	t.Helper()
	return map[string]*Ring[int]{
		"spsc": NewSPSC[int](cap),
		"mpsc": NewMPSC[int](cap),
	}
}

func TestRingFIFO(t *testing.T) {
	for name, r := range ringVariants(t, 7) { // non-power-of-two capacity
		t.Run(name, func(t *testing.T) {
			if r.Cap() != 7 {
				t.Fatalf("Cap = %d, want 7", r.Cap())
			}
			// Several laps around the physical ring to exercise wraparound.
			next := 0
			for lap := 0; lap < 5; lap++ {
				for i := 0; i < 7; i++ {
					if err := r.Push(lap*7 + i); err != nil {
						t.Fatal(err)
					}
				}
				if r.Len() != 7 {
					t.Fatalf("Len = %d, want 7", r.Len())
				}
				if err := r.TryPush(99); !errors.Is(err, ErrFull) {
					t.Fatalf("TryPush on full ring: %v, want ErrFull", err)
				}
				for i := 0; i < 7; i++ {
					v, err := r.Pop()
					if err != nil {
						t.Fatal(err)
					}
					if v != next {
						t.Fatalf("popped %d, want %d", v, next)
					}
					next++
				}
			}
			if _, err := r.TryPop(); !errors.Is(err, ErrEmpty) {
				t.Fatalf("TryPop on empty ring: %v, want ErrEmpty", err)
			}
			st := r.Stats()
			if st.Pushed != 35 || st.Popped != 35 || st.Dropped != 5 || st.HighWater != 7 {
				t.Fatalf("stats = %+v", st)
			}
		})
	}
}

func TestRingBatchOps(t *testing.T) {
	for name, r := range ringVariants(t, 8) {
		t.Run(name, func(t *testing.T) {
			in := []int{1, 2, 3, 4, 5}
			if err := r.PushBatch(in); err != nil {
				t.Fatal(err)
			}
			got := r.Snapshot()
			if len(got) != 5 {
				t.Fatalf("snapshot %v", got)
			}
			for i, v := range got {
				if v != i+1 {
					t.Fatalf("snapshot[%d] = %d", i, v)
				}
			}
			dst := make([]int, 8)
			n, err := r.PopBatch(dst, 3)
			if err != nil || n != 3 {
				t.Fatalf("PopBatch = %d, %v", n, err)
			}
			if dst[0] != 1 || dst[2] != 3 {
				t.Fatalf("PopBatch contents %v", dst[:n])
			}
			n, err = r.PopBatch(dst, 0) // 0 means len(dst)
			if err != nil || n != 2 {
				t.Fatalf("PopBatch rest = %d, %v", n, err)
			}
		})
	}
}

func TestRingClose(t *testing.T) {
	for name, r := range ringVariants(t, 4) {
		t.Run(name, func(t *testing.T) {
			if err := r.Push(1); err != nil {
				t.Fatal(err)
			}
			r.Close()
			r.Close() // idempotent
			if !r.Closed() {
				t.Fatal("Closed = false after Close")
			}
			if err := r.Push(2); !errors.Is(err, ErrClosed) {
				t.Fatalf("Push after close: %v", err)
			}
			if err := r.PushBatch([]int{2}); !errors.Is(err, ErrClosed) {
				t.Fatalf("PushBatch after close: %v", err)
			}
			// Close drains: queued item still pops, then ErrClosed.
			if v, err := r.Pop(); err != nil || v != 1 {
				t.Fatalf("Pop after close = %d, %v", v, err)
			}
			if _, err := r.Pop(); !errors.Is(err, ErrClosed) {
				t.Fatalf("Pop on drained closed ring: %v", err)
			}
			if _, err := r.TryPop(); !errors.Is(err, ErrClosed) {
				t.Fatalf("TryPop on drained closed ring: %v", err)
			}
		})
	}
}

func TestRingCloseWakesBlocked(t *testing.T) {
	for name, r := range ringVariants(t, 1) {
		t.Run(name, func(t *testing.T) {
			if err := r.Push(1); err != nil {
				t.Fatal(err)
			}
			errs := make(chan error, 2)
			go func() { errs <- r.Push(2) }() // blocks: full
			empty := NewMPSC[int](1)
			go func() {
				_, err := empty.Pop() // blocks: empty
				errs <- err
			}()
			time.Sleep(20 * time.Millisecond)
			r.Close()
			empty.Close()
			if err := <-errs; !errors.Is(err, ErrClosed) {
				t.Fatalf("blocked op after Close: %v", err)
			}
			if err := <-errs; !errors.Is(err, ErrClosed) {
				t.Fatalf("blocked op after Close: %v", err)
			}
		})
	}
}

func TestRingCtxCancel(t *testing.T) {
	for name, r := range ringVariants(t, 1) {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())

			// Blocked pop: cancellation returns ctx.Err without consuming.
			popErr := make(chan error, 1)
			go func() {
				_, err := r.PopCtx(ctx)
				popErr <- err
			}()
			time.Sleep(20 * time.Millisecond)
			cancel()
			if err := <-popErr; !errors.Is(err, context.Canceled) {
				t.Fatalf("PopCtx after cancel: %v", err)
			}

			// Blocked push: ring full, cancellation unblocks.
			if err := r.Push(1); err != nil {
				t.Fatal(err)
			}
			ctx2, cancel2 := context.WithCancel(context.Background())
			pushErr := make(chan error, 1)
			go func() { pushErr <- r.PushCtx(ctx2, 2) }()
			time.Sleep(20 * time.Millisecond)
			cancel2()
			if err := <-pushErr; !errors.Is(err, context.Canceled) {
				t.Fatalf("PushCtx after cancel: %v", err)
			}
			// The queued item survived both cancellations.
			if v, err := r.TryPop(); err != nil || v != 1 {
				t.Fatalf("TryPop = %d, %v", v, err)
			}
		})
	}
}

// TestRingReplaceablePopCtx models the stage Pause/Resume pattern: a pop
// blocked on an empty ring is woken by canceling its pop context, consumes
// nothing, and a later pop with a fresh context picks up exactly where the
// stream left off.
func TestRingReplaceablePopCtx(t *testing.T) {
	for name, r := range ringVariants(t, 8) {
		t.Run(name, func(t *testing.T) {
			for epoch := 0; epoch < 3; epoch++ {
				ctx, cancel := context.WithCancel(context.Background())
				woke := make(chan error, 1)
				go func() {
					_, err := r.PopCtx(ctx)
					woke <- err
				}()
				time.Sleep(10 * time.Millisecond)
				cancel() // pause: wake the pop without consuming
				if err := <-woke; !errors.Is(err, context.Canceled) {
					t.Fatalf("epoch %d: %v", epoch, err)
				}
				if err := r.Push(epoch); err != nil {
					t.Fatal(err)
				}
				// resume: fresh context sees the pushed item.
				v, err := r.PopCtx(context.Background())
				if err != nil || v != epoch {
					t.Fatalf("epoch %d: resumed pop = %d, %v", epoch, v, err)
				}
			}
		})
	}
}

// TestRingSPSCConcurrent pushes a long strictly ordered stream through a
// small SPSC ring under the race detector and asserts perfect order.
func TestRingSPSCConcurrent(t *testing.T) {
	const total = 100_000
	r := NewSPSC[int](64)
	go func() {
		buf := make([]int, 17)
		i := 0
		for i < total {
			k := len(buf)
			if total-i < k {
				k = total - i
			}
			for j := 0; j < k; j++ {
				buf[j] = i + j
			}
			if err := r.PushBatch(buf[:k]); err != nil {
				panic(err)
			}
			i += k
		}
		r.Close()
	}()
	dst := make([]int, 23)
	next := 0
	for {
		n, err := r.PopBatch(dst, len(dst))
		if errors.Is(err, ErrClosed) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range dst[:n] {
			if v != next {
				t.Fatalf("got %d, want %d", v, next)
			}
			next++
		}
	}
	if next != total {
		t.Fatalf("consumed %d, want %d", next, total)
	}
}

// TestRingMPSCConcurrent hammers an MPSC ring with several producers mixing
// single and batch pushes, asserting every item arrives exactly once and
// per-producer order is preserved.
func TestRingMPSCConcurrent(t *testing.T) {
	const (
		producers = 4
		perProd   = 25_000
	)
	r := NewMPSC[[2]int](32)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			buf := make([][2]int, 5)
			i := 0
			for i < perProd {
				if i%2 == 0 {
					if err := r.Push([2]int{p, i}); err != nil {
						panic(err)
					}
					i++
					continue
				}
				k := len(buf)
				if perProd-i < k {
					k = perProd - i
				}
				for j := 0; j < k; j++ {
					buf[j] = [2]int{p, i + j}
				}
				if err := r.PushBatch(buf[:k]); err != nil {
					panic(err)
				}
				i += k
			}
		}(p)
	}
	go func() {
		wg.Wait()
		r.Close()
	}()
	nextPer := make([]int, producers)
	seen := 0
	dst := make([][2]int, 11)
	for {
		n, err := r.PopBatch(dst, len(dst))
		if errors.Is(err, ErrClosed) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range dst[:n] {
			p, i := v[0], v[1]
			if i != nextPer[p] {
				t.Fatalf("producer %d: got %d, want %d", p, i, nextPer[p])
			}
			nextPer[p]++
			seen++
		}
	}
	if seen != producers*perProd {
		t.Fatalf("consumed %d, want %d", seen, producers*perProd)
	}
}

// TestRingSnapshotWithLiveProducers exercises the migration pattern under
// the race detector: the consumer is quiescent (paused), producers keep
// pushing until backpressure parks them, and Snapshot/Len/Stats are sampled
// concurrently.
func TestRingSnapshotWithLiveProducers(t *testing.T) {
	for _, mode := range []string{"spsc", "mpsc"} {
		t.Run(mode, func(t *testing.T) {
			var r *Ring[int]
			producers := 1
			if mode == "mpsc" {
				r = NewMPSC[int](16)
				producers = 3
			} else {
				r = NewSPSC[int](16)
			}
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; ; i++ {
						if err := r.Push(p*1_000_000 + i); err != nil {
							return // ErrClosed ends the producer
						}
					}
				}(p)
			}
			// Consumer paused: only observe.
			deadline := time.Now().Add(50 * time.Millisecond)
			for time.Now().Before(deadline) {
				snap := r.Snapshot()
				if len(snap) > r.Cap() {
					t.Fatalf("snapshot longer than capacity: %d", len(snap))
				}
				_ = r.Len()
				_ = r.Stats()
			}
			// Snapshot agrees with what a resumed consumer pops.
			snap := r.Snapshot()
			for i, want := range snap {
				v, err := r.Pop()
				if err != nil {
					t.Fatal(err)
				}
				if v != want {
					t.Fatalf("pop %d = %d, want snapshot value %d", i, v, want)
				}
			}
			r.Close()
			wg.Wait()
			if st := r.Stats(); st.BlockedPushes == 0 {
				t.Fatalf("expected backpressure on paused consumer, stats %+v", st)
			}
		})
	}
}

// TestRingBlockedCounters checks the wait-episode accounting matches the
// Queue semantics: one event per wait episode.
func TestRingBlockedCounters(t *testing.T) {
	r := NewMPSC[int](1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := r.Pop() // blocks: empty
		if err != nil || v != 7 {
			panic("bad pop")
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if err := r.Push(7); err != nil {
		t.Fatal(err)
	}
	<-done
	st := r.Stats()
	if st.BlockedPops != 1 {
		t.Fatalf("BlockedPops = %d, want 1", st.BlockedPops)
	}
}
