// Package tieredfilter implements the paper's first motivating application
// (§2): real-time filtering of instrument data in tiers, modeled on the
// CERN large hadron collider pipeline — "the data is continuous or
// streaming in nature ... the storage capacities will require that the data
// is filtered by a factor of 10^6 to 10^7. Thus, it is important that the
// crucial information is extracted by real-time analysis".
//
// Detector sources emit collision events, rare "signal" events hidden in an
// exponential background. Tier-1 filters near each detector cut on the
// event energy; a tier-2 filter cuts on a second reconstructed feature;
// a collector pays a heavy per-event reconstruction cost for whatever
// survives. Each filter's selection threshold is an adjustment parameter
// with the +speed direction: raising it discards more data, relieving
// everything downstream at the price of signal recall. The middleware
// drives the thresholds to the lowest sustainable values.
package tieredfilter

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// Event is one collision event.
type Event struct {
	// ID is unique per source.
	ID uint64
	// Energy is the tier-1 discriminating feature: background energies
	// are Exp(1)-distributed, signal energies are 4+Exp(1).
	Energy float64
	// Quality is the tier-2 feature: background Exp(1), signal 3+Exp(1).
	Quality float64
	// Signal is the ground truth (carried for evaluation only; a real
	// detector would not know).
	Signal bool
}

// EventBatch is the unit shipped between stages.
type EventBatch struct {
	Detector int
	Events   []Event
}

// DetectorSource generates one detector's event stream.
type DetectorSource struct {
	// Detector is this source's ordinal.
	Detector int
	// Events is how many events to emit.
	Events int
	// SignalFraction is the rate of injected signal events
	// (default 0.002).
	SignalFraction float64
	// BatchSize is events per packet (default 100).
	BatchSize int
	// EventWireSize is bytes per event on the wire (default 64 — raw
	// detector hits are bulky).
	EventWireSize int
	// PerEventCost paces generation.
	PerEventCost time.Duration
	// Seed makes the stream reproducible.
	Seed int64

	mu      sync.Mutex
	signals uint64
}

// Signals reports how many signal events this source injected. Read after
// the run.
func (s *DetectorSource) Signals() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.signals
}

// Run implements pipeline.Source.
func (s *DetectorSource) Run(ctx *pipeline.Context, out *pipeline.Emitter) error {
	if s.Events <= 0 {
		return fmt.Errorf("tieredfilter: detector %d has no events to emit", s.Detector)
	}
	frac := s.SignalFraction
	if frac == 0 {
		frac = 0.002
	}
	batch := s.BatchSize
	if batch <= 0 {
		batch = 100
	}
	wire := s.EventWireSize
	if wire <= 0 {
		wire = 64
	}
	rng := rand.New(rand.NewSource(s.Seed))
	events := make([]Event, 0, batch)
	flush := func() error {
		if len(events) == 0 {
			return nil
		}
		cp := make([]Event, len(events))
		copy(cp, events)
		events = events[:0]
		return out.Emit(pipeline.NewPacket(&EventBatch{Detector: s.Detector, Events: cp}, len(cp), len(cp)*wire))
	}
	for i := 0; i < s.Events; i++ {
		ev := Event{
			ID:      uint64(s.Detector)<<40 | uint64(i),
			Energy:  rng.ExpFloat64(),
			Quality: rng.ExpFloat64(),
		}
		if rng.Float64() < frac {
			ev.Signal = true
			ev.Energy = 4 + rng.ExpFloat64()
			ev.Quality = 3 + rng.ExpFloat64()
		}
		s.mu.Lock()
		if ev.Signal {
			s.signals++
		}
		s.mu.Unlock()
		if s.PerEventCost > 0 {
			ctx.ChargeCompute(s.PerEventCost)
		}
		events = append(events, ev)
		if len(events) >= batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// Feature selects which event feature a filter tier cuts on.
type Feature int

const (
	// ByEnergy is the tier-1 cut.
	ByEnergy Feature = iota
	// ByQuality is the tier-2 cut.
	ByQuality
)

// FilterConfig configures one filter tier.
type FilterConfig struct {
	// Feature is the cut variable.
	Feature Feature
	// FixedThreshold is the cut when not adaptive.
	FixedThreshold float64
	// Adaptive exposes the threshold as an adjustment parameter: name
	// "threshold", range [Min,Max], +speed direction (raising it
	// discards more and speeds the pipeline up).
	Adaptive bool
	// Min, Max bound the adaptive threshold (defaults 0.5 and 8).
	Min, Max float64
	// Initial seeds the adaptive threshold (default Min).
	Initial float64
	// PerEventCost is the inspection cost per incoming event.
	PerEventCost time.Duration
	// OutWireSize is bytes per surviving event (default 64).
	OutWireSize int
}

func (c *FilterConfig) fill() {
	if c.Max == 0 {
		c.Max = 8
	}
	if c.Min == 0 {
		c.Min = 0.5
	}
	if c.Initial == 0 {
		c.Initial = c.Min
	}
	if c.OutWireSize == 0 {
		c.OutWireSize = 64
	}
}

// Filter is one filtering tier.
type Filter struct {
	cfg   FilterConfig
	param *adapt.Param

	in, out uint64
}

// NewFilter returns a filter processor.
func NewFilter(cfg FilterConfig) *Filter {
	cfg.fill()
	return &Filter{cfg: cfg}
}

// Init implements pipeline.Processor.
func (f *Filter) Init(ctx *pipeline.Context) error {
	if !f.cfg.Adaptive {
		return nil
	}
	p, err := ctx.SpecifyParam(adapt.ParamSpec{
		Name:      "threshold",
		Initial:   f.cfg.Initial,
		Min:       f.cfg.Min,
		Max:       f.cfg.Max,
		Step:      0.05,
		Direction: adapt.IncreaseSpeedsProcessing,
	})
	if err != nil {
		return err
	}
	f.param = p
	return nil
}

// Threshold returns the current cut value.
func (f *Filter) Threshold() float64 {
	if f.param != nil {
		return f.param.Value()
	}
	return f.cfg.FixedThreshold
}

// Counts reports (inspected, passed) event counts. Read after the run.
func (f *Filter) Counts() (in, out uint64) { return f.in, f.out }

// Process implements pipeline.Processor.
func (f *Filter) Process(ctx *pipeline.Context, pkt *pipeline.Packet, out *pipeline.Emitter) error {
	batch, ok := pkt.Value.(*EventBatch)
	if !ok {
		return fmt.Errorf("tieredfilter: filter got %T, want *EventBatch", pkt.Value)
	}
	cut := f.Threshold()
	kept := make([]Event, 0, len(batch.Events)/4+1)
	for _, ev := range batch.Events {
		v := ev.Energy
		if f.cfg.Feature == ByQuality {
			v = ev.Quality
		}
		if v >= cut {
			kept = append(kept, ev)
		}
	}
	f.in += uint64(len(batch.Events))
	f.out += uint64(len(kept))
	if f.cfg.PerEventCost > 0 {
		ctx.ChargeCompute(time.Duration(len(batch.Events)) * f.cfg.PerEventCost)
	}
	if len(kept) == 0 {
		return nil
	}
	return out.Emit(pipeline.NewPacket(&EventBatch{Detector: batch.Detector, Events: kept}, len(kept), len(kept)*f.cfg.OutWireSize))
}

// Finish implements pipeline.Processor.
func (f *Filter) Finish(*pipeline.Context, *pipeline.Emitter) error { return nil }

// Collector is the terminal stage: it "reconstructs" every surviving event
// at a heavy per-event cost and tallies recall.
type Collector struct {
	// PerEventCost is the reconstruction cost per kept event.
	PerEventCost time.Duration

	mu     sync.Mutex
	kept   uint64
	signal uint64
}

// Init implements pipeline.Processor.
func (c *Collector) Init(*pipeline.Context) error { return nil }

// Process implements pipeline.Processor.
func (c *Collector) Process(ctx *pipeline.Context, pkt *pipeline.Packet, _ *pipeline.Emitter) error {
	batch, ok := pkt.Value.(*EventBatch)
	if !ok {
		return fmt.Errorf("tieredfilter: collector got %T, want *EventBatch", pkt.Value)
	}
	c.mu.Lock()
	for _, ev := range batch.Events {
		c.kept++
		if ev.Signal {
			c.signal++
		}
	}
	c.mu.Unlock()
	if c.PerEventCost > 0 {
		ctx.ChargeCompute(time.Duration(len(batch.Events)) * c.PerEventCost)
	}
	return nil
}

// Finish implements pipeline.Processor.
func (c *Collector) Finish(*pipeline.Context, *pipeline.Emitter) error { return nil }

// Kept reports how many events survived to the collector.
func (c *Collector) Kept() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.kept
}

// Recall returns the fraction of injected signal events that survived.
func (c *Collector) Recall(totalSignal uint64) float64 {
	if totalSignal == 0 {
		return 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return float64(c.signal) / float64(totalSignal)
}

// Reduction returns the end-to-end data reduction factor
// (generated / kept); +Inf when nothing survived.
func (c *Collector) Reduction(totalEvents uint64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.kept == 0 {
		return float64(totalEvents) // effectively infinite; avoid Inf in tables
	}
	return float64(totalEvents) / float64(c.kept)
}
