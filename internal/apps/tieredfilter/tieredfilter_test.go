package tieredfilter

import (
	"context"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// buildPipeline wires detectors -> tier1 (per detector) -> tier2 -> collector.
func buildPipeline(t *testing.T, detectors int, events int,
	t1, t2 FilterConfig, collectorCost time.Duration, scale float64,
	tune func(stage string) pipeline.StageConfig) (*pipeline.Engine, []*DetectorSource, []*Filter, *Filter, *Collector) {
	t.Helper()
	e := pipeline.New(clock.NewScaled(scale))
	cfg := func(stage string) pipeline.StageConfig {
		if tune != nil {
			return tune(stage)
		}
		return pipeline.StageConfig{DisableAdaptation: true}
	}
	col := &Collector{PerEventCost: collectorCost}
	colSt, err := e.AddProcessorStage("collector", 0, col, cfg("collector"))
	if err != nil {
		t.Fatal(err)
	}
	tier2 := NewFilter(t2)
	t2St, err := e.AddProcessorStage("tier2", 0, tier2, cfg("tier2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Connect(t2St, colSt, nil); err != nil {
		t.Fatal(err)
	}
	var sources []*DetectorSource
	var tier1s []*Filter
	for d := 0; d < detectors; d++ {
		src := &DetectorSource{Detector: d, Events: events, Seed: int64(d + 1)}
		srcSt, err := e.AddSourceStage("detector", d, src, cfg("detector"))
		if err != nil {
			t.Fatal(err)
		}
		f := NewFilter(t1)
		fSt, err := e.AddProcessorStage("tier1", d, f, cfg("tier1"))
		if err != nil {
			t.Fatal(err)
		}
		e.Connect(srcSt, fSt, nil)
		e.Connect(fSt, t2St, nil)
		sources = append(sources, src)
		tier1s = append(tier1s, f)
	}
	return e, sources, tier1s, tier2, col
}

func totals(sources []*DetectorSource, events int) (totalEvents, totalSignal uint64) {
	for _, s := range sources {
		totalSignal += s.Signals()
	}
	return uint64(len(sources) * events), totalSignal
}

func TestFixedThresholdsReduceAndRecall(t *testing.T) {
	const events = 50_000
	e, sources, tier1s, tier2, col := buildPipeline(t, 4, events,
		FilterConfig{Feature: ByEnergy, FixedThreshold: 3},
		FilterConfig{Feature: ByQuality, FixedThreshold: 2.5},
		0, 100_000, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	totalEvents, totalSignal := totals(sources, events)
	if totalSignal == 0 {
		t.Fatal("no signal injected")
	}
	// Energy >= 3 keeps e^-3 ≈ 5% of background and all signal
	// (signal energy = 4+Exp > 4 > 3).
	in1, out1 := tier1s[0].Counts()
	if in1 != events {
		t.Fatalf("tier1 inspected %d, want %d", in1, events)
	}
	frac := float64(out1) / float64(in1)
	if frac < 0.03 || frac > 0.09 {
		t.Fatalf("tier1 pass fraction %.3f, want ~e^-3", frac)
	}
	// Quality >= 2.5 keeps e^-2.5 ≈ 8% of remaining background, signal
	// quality = 3+Exp > 3 passes entirely.
	if rec := col.Recall(totalSignal); rec != 1.0 {
		t.Fatalf("recall %.3f, want 1.0 (cuts are below the signal floor)", rec)
	}
	red := col.Reduction(totalEvents)
	// Background reduction ≈ e^3 × e^2.5 ≈ 245, diluted by kept signal.
	if red < 50 || red > 500 {
		t.Fatalf("reduction factor %.0f outside the expected band", red)
	}
	_, out2 := tier2.Counts()
	if out2 != col.Kept() {
		t.Fatalf("tier2 passed %d but collector kept %d", out2, col.Kept())
	}
}

func TestAggressiveThresholdLosesSignal(t *testing.T) {
	const events = 50_000
	e, sources, _, _, col := buildPipeline(t, 2, events,
		FilterConfig{Feature: ByEnergy, FixedThreshold: 6}, // above much of the signal
		FilterConfig{Feature: ByQuality, FixedThreshold: 0.5},
		0, 100_000, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, totalSignal := totals(sources, events)
	rec := col.Recall(totalSignal)
	// Signal energy 4+Exp ≥ 6 with probability e^-2 ≈ 0.135.
	if rec > 0.3 {
		t.Fatalf("recall %.3f with a cut at 6, want heavy signal loss", rec)
	}
}

func TestWrongTypeRejected(t *testing.T) {
	e := pipeline.New(clock.NewScaled(10000))
	bad, _ := e.AddSourceStage("bad", 0, badSource{}, pipeline.StageConfig{})
	f, _ := e.AddProcessorStage("tier1", 0, NewFilter(FilterConfig{}), pipeline.StageConfig{})
	col, _ := e.AddProcessorStage("collector", 0, &Collector{}, pipeline.StageConfig{})
	e.Connect(bad, f, nil)
	e.Connect(f, col, nil)
	if err := e.Run(context.Background()); err == nil {
		t.Fatal("filter accepted a non-EventBatch packet")
	}

	e2 := pipeline.New(clock.NewScaled(10000))
	bad2, _ := e2.AddSourceStage("bad", 0, badSource{}, pipeline.StageConfig{})
	col2, _ := e2.AddProcessorStage("collector", 0, &Collector{}, pipeline.StageConfig{})
	e2.Connect(bad2, col2, nil)
	if err := e2.Run(context.Background()); err == nil {
		t.Fatal("collector accepted a non-EventBatch packet")
	}
}

func TestSourceValidation(t *testing.T) {
	e := pipeline.New(clock.NewScaled(10000))
	src, _ := e.AddSourceStage("d", 0, &DetectorSource{Events: 0}, pipeline.StageConfig{})
	col, _ := e.AddProcessorStage("collector", 0, &Collector{}, pipeline.StageConfig{})
	e.Connect(src, col, nil)
	if err := e.Run(context.Background()); err == nil {
		t.Fatal("empty detector accepted")
	}
}

func TestCollectorEdgeCases(t *testing.T) {
	c := &Collector{}
	if c.Recall(0) != 1 {
		t.Fatal("recall with no signal should be 1")
	}
	if got := c.Reduction(1000); got != 1000 {
		t.Fatalf("reduction with nothing kept = %v, want totalEvents", got)
	}
}

// TestAdaptiveThresholdRisesUnderLoad is the tiered-filter version of the
// paper's processing-constraint experiment, exercising the
// IncreaseSpeedsProcessing direction: a heavy collector cannot reconstruct
// everything tier-2 passes at the low initial threshold, so the middleware
// must raise the threshold until the pipeline keeps up.
func TestAdaptiveThresholdRisesUnderLoad(t *testing.T) {
	const events = 30_000
	t2cfg := FilterConfig{
		Feature: ByQuality, Adaptive: true,
		Min: 0.5, Max: 6, Initial: 0.5,
	}
	tune := func(stage string) pipeline.StageConfig {
		switch stage {
		case "detector":
			// ~1000 events per virtual second per detector.
			return pipeline.StageConfig{DisableAdaptation: true, ComputeQuantum: 100 * time.Millisecond}
		case "tier2":
			return pipeline.StageConfig{
				QueueCapacity: 60,
				AdaptInterval: 500 * time.Millisecond,
				AdjustEvery:   2,
			}
		case "collector":
			return pipeline.StageConfig{
				QueueCapacity:  60,
				AdaptInterval:  500 * time.Millisecond,
				AdjustEvery:    2,
				ComputeQuantum: 200 * time.Millisecond,
			}
		default:
			return pipeline.StageConfig{DisableAdaptation: true}
		}
	}
	e, sources, _, t2f, col := buildPipeline(t, 2, events,
		FilterConfig{Feature: ByEnergy, FixedThreshold: 2}, // ~13.5% pass tier1
		t2cfg,
		// Reconstruction at 30 ms/event: sustainable collector arrival is
		// ~33 events/s, far below what threshold 0.5 would pass.
		30*time.Millisecond, 300, tune)
	// Pace the detectors so the run spans real adaptation epochs.
	for _, s := range sources {
		s.PerEventCost = time.Millisecond
	}
	_ = t2f
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	final := t2f.Threshold()
	if final <= 1.0 {
		t.Fatalf("adaptive threshold stayed at %.2f under an overloaded collector, want a rise", final)
	}
	if col.Kept() == 0 {
		t.Fatal("nothing survived at all")
	}
}

type badSource struct{}

func (badSource) Run(_ *pipeline.Context, out *pipeline.Emitter) error {
	return out.EmitValue("not events", 8)
}
