package surveillance

import (
	"context"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/metrics"
	"github.com/gates-middleware/gates/internal/pipeline"
)

func TestCameraEmitsFrames(t *testing.T) {
	e := pipeline.New(clock.NewScaled(2000))
	cam := &Camera{ID: 0, FPS: 10, Duration: 5 * time.Second, SceneObjects: 8, Coverage: 0.5, Seed: 1}
	src, _ := e.AddSourceStage("cam", 0, cam, pipeline.StageConfig{DisableAdaptation: true, ComputeQuantum: 200 * time.Millisecond})
	x := NewExtractor(ExtractorConfig{CostPerFrame: 1})
	xt, _ := e.AddProcessorStage("extract", 0, x, pipeline.StageConfig{DisableAdaptation: true})
	fu := NewFusion()
	fs, _ := e.AddProcessorStage("fuse", 0, fu, pipeline.StageConfig{DisableAdaptation: true})
	e.Connect(src, xt, nil)
	e.Connect(xt, fs, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	recv, analyzed := x.Frames()
	if recv != 50 {
		t.Fatalf("extractor received %d frames, want 50", recv)
	}
	if analyzed != recv {
		t.Fatalf("full-rate extractor analyzed %d of %d frames", analyzed, recv)
	}
	if len(fu.Tracks()) == 0 {
		t.Fatal("fusion produced no tracks")
	}
}

func TestCameraValidation(t *testing.T) {
	e := pipeline.New(clock.NewScaled(2000))
	cam := &Camera{ID: 0, Duration: time.Second, SceneObjects: 0, Coverage: 0.5}
	src, _ := e.AddSourceStage("cam", 0, cam, pipeline.StageConfig{})
	fs, _ := e.AddProcessorStage("fuse", 0, NewFusion(), pipeline.StageConfig{})
	e.Connect(src, fs, nil)
	if err := e.Run(context.Background()); err == nil {
		t.Fatal("camera with no objects accepted")
	}
}

func TestExtractorFixedRateSkipsFrames(t *testing.T) {
	e := pipeline.New(clock.NewScaled(2000))
	cam := &Camera{ID: 0, FPS: 20, Duration: 5 * time.Second, SceneObjects: 4, Coverage: 1, Seed: 2}
	src, _ := e.AddSourceStage("cam", 0, cam, pipeline.StageConfig{DisableAdaptation: true, ComputeQuantum: 200 * time.Millisecond})
	x := NewExtractor(ExtractorConfig{CostPerFrame: 1, FixedRate: 0.25})
	xt, _ := e.AddProcessorStage("extract", 0, x, pipeline.StageConfig{DisableAdaptation: true})
	fs, _ := e.AddProcessorStage("fuse", 0, NewFusion(), pipeline.StageConfig{DisableAdaptation: true})
	e.Connect(src, xt, nil)
	e.Connect(xt, fs, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	recv, analyzed := x.Frames()
	if recv != 100 || analyzed != 25 {
		t.Fatalf("rate 0.25 analyzed %d of %d frames, want 25 of 100", analyzed, recv)
	}
}

func TestFusionCorrelatesAcrossCameras(t *testing.T) {
	e := pipeline.New(clock.NewScaled(2000))
	fu := NewFusion()
	fs, _ := e.AddProcessorStage("fuse", 0, fu, pipeline.StageConfig{DisableAdaptation: true})
	for cid := 0; cid < 4; cid++ {
		cam := &Camera{ID: cid, FPS: 10, Duration: 3 * time.Second,
			SceneObjects: 6, Coverage: 0.9, Seed: int64(cid + 1)}
		src, _ := e.AddSourceStage("cam", cid, cam, pipeline.StageConfig{DisableAdaptation: true, ComputeQuantum: 200 * time.Millisecond})
		xt, _ := e.AddProcessorStage("extract", cid, NewExtractor(ExtractorConfig{CostPerFrame: 1}), pipeline.StageConfig{DisableAdaptation: true})
		e.Connect(src, xt, nil)
		e.Connect(xt, fs, nil)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// With 90% coverage over 30 frames, every object is multi-view.
	if got := fu.MultiViewTracks(4); got != 6 {
		t.Fatalf("MultiViewTracks(4) = %d, want 6", got)
	}
	tracks := fu.Tracks()
	for i := 1; i < len(tracks); i++ {
		if tracks[i].Sightings > tracks[i-1].Sightings {
			t.Fatal("tracks not sorted by sightings")
		}
	}
}

func TestWrongTypesRejected(t *testing.T) {
	e := pipeline.New(clock.NewScaled(2000))
	bad, _ := e.AddSourceStage("bad", 0, badSource{}, pipeline.StageConfig{})
	xt, _ := e.AddProcessorStage("extract", 0, NewExtractor(ExtractorConfig{}), pipeline.StageConfig{})
	fs, _ := e.AddProcessorStage("fuse", 0, NewFusion(), pipeline.StageConfig{})
	e.Connect(bad, xt, nil)
	e.Connect(xt, fs, nil)
	if err := e.Run(context.Background()); err == nil {
		t.Fatal("extractor accepted a non-Frame packet")
	}

	e2 := pipeline.New(clock.NewScaled(2000))
	bad2, _ := e2.AddSourceStage("bad", 0, badSource{}, pipeline.StageConfig{})
	fs2, _ := e2.AddProcessorStage("fuse", 0, NewFusion(), pipeline.StageConfig{})
	e2.Connect(bad2, fs2, nil)
	if err := e2.Run(context.Background()); err == nil {
		t.Fatal("fusion accepted a non-Detections packet")
	}
}

// TestAdaptiveExtractorShedsLoad is the surveillance variant of the paper's
// processing-constraint experiment: a 600 ms/frame extractor against a
// 10 fps camera can only analyze ~1/6 of the stream in real time, so the
// adaptive frame rate must fall well below 1.
func TestAdaptiveExtractorShedsLoad(t *testing.T) {
	clk := clock.NewScaled(300)
	e := pipeline.New(clk)
	cam := &Camera{ID: 0, FPS: 10, Duration: 240 * time.Second,
		SceneObjects: 8, Coverage: 0.5, Seed: 3}
	src, _ := e.AddSourceStage("cam", 0, cam, pipeline.StageConfig{DisableAdaptation: true, ComputeQuantum: 100 * time.Millisecond})
	x := NewExtractor(ExtractorConfig{Adaptive: true, CostPerFrame: 600 * time.Millisecond})
	trace := metrics.NewTimeSeries()
	xt, _ := e.AddProcessorStage("extract", 0, x, pipeline.StageConfig{
		QueueCapacity:  60,
		AdaptInterval:  500 * time.Millisecond,
		AdjustEvery:    2,
		ComputeQuantum: 120 * time.Millisecond,
		OnAdjust: func(_ *pipeline.Stage, now time.Time, adjs []adapt.Adjustment) {
			for _, a := range adjs {
				trace.Record(now, a.New)
			}
		},
	})
	fs, _ := e.AddProcessorStage("fuse", 0, NewFusion(), pipeline.StageConfig{
		AdaptInterval: 500 * time.Millisecond, AdjustEvery: 2,
	})
	e.Connect(src, xt, nil)
	e.Connect(xt, fs, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := trace.WindowMean(150*time.Second, 240*time.Second)
	if got > 0.5 {
		t.Fatalf("adaptive frame rate settled at %.2f, want well below 1 (capacity is ~0.17)", got)
	}
	if got < 0.05 {
		t.Fatalf("adaptive frame rate collapsed to %.2f", got)
	}
}

func TestDetectionsWireSize(t *testing.T) {
	d := &Detections{Objects: []int{1, 2, 3}}
	if got := d.WireSize(); got != 40 {
		t.Fatalf("WireSize = %d, want 40", got)
	}
}

type badSource struct{}

func (badSource) Run(_ *pipeline.Context, out *pipeline.Emitter) error {
	return out.EmitValue("frame?", 8)
}
