// Package surveillance implements the paper's computer-vision motivating
// application (§2): multiple cameras shooting a set of scenes from different
// perspectives, with per-camera feature extraction too expensive for a
// single desktop ("real-time analysis of the capture of more than three
// digital cameras is not possible on current desktops").
//
// A Camera source emits frames containing the pixel positions of the
// objects it can see. A per-camera Extractor stage pays a per-frame compute
// cost to turn frames into compact detections, dropping frames under an
// adjustable frame-sampling rate — the stage's adjustment parameter. A
// central Fusion stage correlates detections: objects reported by multiple
// cameras within a time window are merged into tracks.
package surveillance

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// Frame is one camera capture: the scene objects visible to the camera.
type Frame struct {
	Camera int
	Seq    int
	// Objects holds the true object ids visible in this frame (the
	// simulated scene's ground truth, which extraction recovers).
	Objects []int
	// Bytes is the frame's wire size (raw frames are heavy).
	Bytes int
}

// Camera generates frames at a fixed rate for a fixed virtual duration.
// Each frame sees a subset of the scene's objects, chosen by coverage.
type Camera struct {
	// ID is the camera ordinal.
	ID int
	// FPS is frames per virtual second (default 10).
	FPS int
	// Duration is the capture length.
	Duration time.Duration
	// SceneObjects is the number of distinct objects in the scene.
	SceneObjects int
	// Coverage is the probability a given object is visible in a frame.
	Coverage float64
	// FrameBytes is the wire size per frame (default 4096).
	FrameBytes int
	// Seed makes the capture reproducible.
	Seed int64
}

// Run implements pipeline.Source.
func (c *Camera) Run(ctx *pipeline.Context, out *pipeline.Emitter) error {
	if c.SceneObjects < 1 || c.Coverage <= 0 || c.Coverage > 1 {
		return fmt.Errorf("surveillance: camera %d needs objects and coverage in (0,1]", c.ID)
	}
	fps := c.FPS
	if fps <= 0 {
		fps = 10
	}
	fb := c.FrameBytes
	if fb <= 0 {
		fb = 4096
	}
	interval := time.Second / time.Duration(fps)
	frames := int(c.Duration / interval)
	rng := rand.New(rand.NewSource(c.Seed))
	for i := 0; i < frames; i++ {
		select {
		case <-ctx.Done():
			return nil
		default:
		}
		ctx.ChargeCompute(interval)
		var objs []int
		for o := 0; o < c.SceneObjects; o++ {
			if rng.Float64() < c.Coverage {
				objs = append(objs, o)
			}
		}
		pkt := pipeline.NewPacket(&Frame{Camera: c.ID, Seq: i, Objects: objs, Bytes: fb}, 1, fb)
		if err := out.Emit(pkt); err != nil {
			return err
		}
	}
	return nil
}

// Detections is an extractor's per-frame output: which objects one camera
// saw, in a compact representation.
type Detections struct {
	Camera  int
	Seq     int
	Objects []int
}

// WireSize models the compact detection record on the network.
func (d *Detections) WireSize() int { return len(d.Objects)*8 + 16 }

// ExtractorConfig tunes a per-camera feature-extraction stage.
type ExtractorConfig struct {
	// CostPerFrame is the extraction compute cost (default 60 ms — the
	// "can't do more than three cameras on one desktop" regime at
	// 10 fps per camera; 4 cameras × 10 fps × 60 ms = 2.4 s of work per
	// second).
	CostPerFrame time.Duration
	// Adaptive exposes the frame-sampling rate as an adjustment
	// parameter (initial 1.0, range [0.05, 1], step 0.01).
	Adaptive bool
	// FixedRate is the frame-sampling rate when not adaptive
	// (default 1.0).
	FixedRate float64
}

func (c *ExtractorConfig) fill() {
	if c.CostPerFrame == 0 {
		c.CostPerFrame = 60 * time.Millisecond
	}
	if c.FixedRate == 0 {
		c.FixedRate = 1
	}
}

// Extractor converts frames to detections, skipping frames per the sampling
// rate before paying the extraction cost.
type Extractor struct {
	cfg    ExtractorConfig
	param  *adapt.Param
	credit float64

	frames, analyzed uint64
}

// NewExtractor returns an extractor processor.
func NewExtractor(cfg ExtractorConfig) *Extractor {
	cfg.fill()
	return &Extractor{cfg: cfg}
}

// Init implements pipeline.Processor.
func (x *Extractor) Init(ctx *pipeline.Context) error {
	if !x.cfg.Adaptive {
		return nil
	}
	p, err := ctx.SpecifyParam(adapt.ParamSpec{
		Name:      "frame-rate",
		Initial:   1.0,
		Min:       0.05,
		Max:       1.0,
		Step:      0.01,
		Direction: adapt.IncreaseSlowsProcessing,
	})
	if err != nil {
		return err
	}
	x.param = p
	return nil
}

func (x *Extractor) rate() float64 {
	if x.param != nil {
		return x.param.Value()
	}
	return x.cfg.FixedRate
}

// Process implements pipeline.Processor.
func (x *Extractor) Process(ctx *pipeline.Context, pkt *pipeline.Packet, out *pipeline.Emitter) error {
	frame, ok := pkt.Value.(*Frame)
	if !ok {
		return fmt.Errorf("surveillance: extractor got %T, want *Frame", pkt.Value)
	}
	x.frames++
	x.credit += x.rate()
	if x.credit < 1 {
		return nil // frame skipped under the sampling rate
	}
	x.credit--
	x.analyzed++
	ctx.ChargeCompute(x.cfg.CostPerFrame)
	det := &Detections{Camera: frame.Camera, Seq: frame.Seq, Objects: frame.Objects}
	return out.Emit(pipeline.NewPacket(det, 1, det.WireSize()))
}

// Finish implements pipeline.Processor.
func (x *Extractor) Finish(*pipeline.Context, *pipeline.Emitter) error { return nil }

// Frames returns (received, analyzed) frame counts. Read after the run.
func (x *Extractor) Frames() (received, analyzed uint64) { return x.frames, x.analyzed }

// Track is a fused object track.
type Track struct {
	// Object is the tracked object id.
	Object int
	// Cameras is how many distinct cameras detected the object.
	Cameras int
	// Sightings is the total detection count.
	Sightings int
}

// Fusion is the central stage: it merges detections from all cameras into
// per-object tracks. It is safe to query concurrently.
type Fusion struct {
	mu      sync.Mutex
	cams    map[int]map[int]bool // object -> camera set
	counts  map[int]int          // object -> sightings
	packets uint64
}

// NewFusion returns a fusion processor.
func NewFusion() *Fusion {
	return &Fusion{cams: make(map[int]map[int]bool), counts: make(map[int]int)}
}

// Init implements pipeline.Processor.
func (f *Fusion) Init(*pipeline.Context) error { return nil }

// Process implements pipeline.Processor.
func (f *Fusion) Process(_ *pipeline.Context, pkt *pipeline.Packet, _ *pipeline.Emitter) error {
	det, ok := pkt.Value.(*Detections)
	if !ok {
		return fmt.Errorf("surveillance: fusion got %T, want *Detections", pkt.Value)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.packets++
	for _, o := range det.Objects {
		set := f.cams[o]
		if set == nil {
			set = make(map[int]bool)
			f.cams[o] = set
		}
		set[det.Camera] = true
		f.counts[o]++
	}
	return nil
}

// Finish implements pipeline.Processor.
func (f *Fusion) Finish(*pipeline.Context, *pipeline.Emitter) error { return nil }

// Tracks returns the fused tracks, most-sighted first.
func (f *Fusion) Tracks() []Track {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Track, 0, len(f.counts))
	for o, n := range f.counts {
		out = append(out, Track{Object: o, Cameras: len(f.cams[o]), Sightings: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sightings != out[j].Sightings {
			return out[i].Sightings > out[j].Sightings
		}
		return out[i].Object < out[j].Object
	})
	return out
}

// MultiViewTracks counts objects confirmed by at least minCameras cameras.
func (f *Fusion) MultiViewTracks(minCameras int) int {
	n := 0
	for _, tr := range f.Tracks() {
		if tr.Cameras >= minCameras {
			n++
		}
	}
	return n
}
