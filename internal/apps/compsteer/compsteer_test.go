package compsteer

import (
	"context"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/metrics"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/pipeline"
)

func TestSimulationSourceVolume(t *testing.T) {
	clk := clock.NewScaled(2000)
	e := pipeline.New(clk)
	src, _ := e.AddSourceStage("sim", 0, &SimulationSource{
		GenRate: 160, Duration: 10 * time.Second, PacketBytes: 16,
	}, pipeline.StageConfig{DisableAdaptation: true, ComputeQuantum: 500 * time.Millisecond})
	ana := &Analyzer{}
	sink, _ := e.AddProcessorStage("analysis", 0, ana, pipeline.StageConfig{DisableAdaptation: true})
	e.Connect(src, sink, nil)
	sw := clock.NewStopwatch(clk)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// 160 B/s for 10 s = 1600 B in 16-byte packets = 100 packets.
	if got := ana.BytesAnalyzed(); got != 1600 {
		t.Fatalf("analyzer saw %d bytes, want 1600", got)
	}
	if elapsed := sw.Elapsed(); elapsed < 9*time.Second {
		t.Fatalf("generation finished in %v virtual, want ~10s of pacing", elapsed)
	}
}

func TestSimulationSourceRejectsBadRate(t *testing.T) {
	e := pipeline.New(clock.NewScaled(2000))
	src, _ := e.AddSourceStage("sim", 0, &SimulationSource{GenRate: 0, Duration: time.Second}, pipeline.StageConfig{})
	sink, _ := e.AddProcessorStage("analysis", 0, &Analyzer{}, pipeline.StageConfig{})
	e.Connect(src, sink, nil)
	if err := e.Run(context.Background()); err == nil {
		t.Fatal("zero GenRate accepted")
	}
}

func TestSamplerThinsAtFixedRate(t *testing.T) {
	clk := clock.NewScaled(5000)
	e := pipeline.New(clk)
	src, _ := e.AddSourceStage("sim", 0, &SimulationSource{
		GenRate: 1600, Duration: 10 * time.Second, PacketBytes: 16,
	}, pipeline.StageConfig{DisableAdaptation: true, ComputeQuantum: 500 * time.Millisecond})
	sampler := &Sampler{Spec: adapt.ParamSpec{
		Name: ParamName, Initial: 0.25, Min: 0.25, Max: 0.2500001, Step: 0.01,
		Direction: adapt.IncreaseSlowsProcessing,
	}}
	smp, _ := e.AddProcessorStage("sampler", 0, sampler, pipeline.StageConfig{DisableAdaptation: true})
	ana := &Analyzer{}
	sink, _ := e.AddProcessorStage("analysis", 0, ana, pipeline.StageConfig{DisableAdaptation: true})
	e.Connect(src, smp, nil)
	e.Connect(smp, sink, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// 1000 packets in, pinned rate 0.25 -> 250 forwarded.
	if got := ana.BytesAnalyzed(); got != 250*16 {
		t.Fatalf("analyzer saw %d bytes, want %d", got, 250*16)
	}
	if r := sampler.Rate(); r < 0.2 || r > 0.3 {
		t.Fatalf("pinned rate drifted to %v", r)
	}
}

func TestSamplerRateBeforeInit(t *testing.T) {
	if (&Sampler{}).Rate() != 0 {
		t.Fatal("uninitialized sampler has a rate")
	}
}

// runSteering executes one comp-steer configuration and returns the
// sampling-rate trace — the harness behind the Figure 8/9 checks.
func runSteering(t *testing.T, genRate int, packetBytes int, costPerByte time.Duration,
	linkBW int64, initial float64, duration time.Duration, scale float64) *metrics.TimeSeries {
	t.Helper()
	clk := clock.NewScaled(scale)
	e := pipeline.New(clk)

	// The source's compute quantum stays well under the adaptation
	// interval: coarser batching would inject artificial packet bursts
	// whose queue spikes alias with the load classifier.
	src, _ := e.AddSourceStage("sim", 0, &SimulationSource{
		GenRate: genRate, Duration: duration, PacketBytes: packetBytes,
	}, pipeline.StageConfig{DisableAdaptation: true, ComputeQuantum: 100 * time.Millisecond})

	spec := DefaultSamplerSpec()
	spec.Initial = initial
	sampler := &Sampler{Spec: spec}
	trace := metrics.NewTimeSeries()
	smp, _ := e.AddProcessorStage("sampler", 0, sampler, pipeline.StageConfig{
		QueueCapacity: 100,
		AdaptInterval: 500 * time.Millisecond,
		AdjustEvery:   2,
		OnAdjust: func(_ *pipeline.Stage, now time.Time, adjs []adapt.Adjustment) {
			for _, a := range adjs {
				trace.Record(now, a.New)
			}
		},
	})

	ana, _ := e.AddProcessorStage("analysis", 0, &Analyzer{CostPerByte: costPerByte}, pipeline.StageConfig{
		QueueCapacity:  50,
		AdaptInterval:  500 * time.Millisecond,
		AdjustEvery:    2,
		ComputeQuantum: 200 * time.Millisecond,
	})

	e.Connect(src, smp, nil)
	var link *netsim.Link
	if linkBW > 0 {
		link = netsim.NewLink(clk, netsim.LinkConfig{Bandwidth: linkBW, Quantum: 100 * time.Millisecond})
	}
	e.Connect(smp, ana, link)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return trace
}

// TestProcessingConstraintConvergence is the in-package miniature of
// Figure 8: with analysis costing 20 ms/byte against 160 B/s generation the
// rate must settle near 1000/(20·160) ≈ 0.31; with 1 ms/byte processing is
// no constraint and the rate must climb to ≈ 1.
func TestProcessingConstraintConvergence(t *testing.T) {
	heavy := runSteering(t, 160, 16, 20*time.Millisecond, 0, 0.13, 240*time.Second, 300)
	if got := heavy.WindowMean(150*time.Second, 240*time.Second); got < 0.15 || got > 0.5 {
		t.Fatalf("20 ms/byte converged to %.3f, want ≈ 0.31", got)
	}
	light := runSteering(t, 160, 16, 1*time.Millisecond, 0, 0.13, 240*time.Second, 300)
	if got := light.WindowMean(150*time.Second, 240*time.Second); got < 0.85 {
		t.Fatalf("1 ms/byte converged to %.3f, want ≈ 1", got)
	}
}

// TestNetworkConstraintConvergence is the in-package miniature of Figure 9:
// generation at 40 KB/s over a 10 KB/s link must settle near 0.25, starting
// from 0.01.
func TestNetworkConstraintConvergence(t *testing.T) {
	trace := runSteering(t, 40_000, 500, 0, 10*netsim.KBps, 0.01, 240*time.Second, 300)
	if got := trace.WindowMean(150*time.Second, 240*time.Second); got < 0.15 || got > 0.4 {
		t.Fatalf("40 KB/s over 10 KB/s converged to %.3f, want ≈ 0.25", got)
	}
}

// TestSteeringLoopDetectsHotRegion runs the full steering loop: the
// simulation develops a feature in one grid region, the analyzer detects it
// through the sampled stream, and the steering sink accumulates refinement
// commands for the right region.
func TestSteeringLoopDetectsHotRegion(t *testing.T) {
	clk := clock.NewScaled(5000)
	e := pipeline.New(clk)
	src, _ := e.AddSourceStage("sim", 0, &SimulationSource{
		GenRate: 1600, Duration: 60 * time.Second, PacketBytes: 16,
		Regions: 8, HotRegion: 5, Seed: 9,
	}, pipeline.StageConfig{DisableAdaptation: true, ComputeQuantum: 200 * time.Millisecond})
	sampler := &Sampler{Spec: adapt.ParamSpec{
		Name: ParamName, Initial: 0.5, Min: 0.5, Max: 0.5000001, Step: 0.01,
		Direction: adapt.IncreaseSlowsProcessing,
	}}
	smp, _ := e.AddProcessorStage("sampler", 0, sampler, pipeline.StageConfig{DisableAdaptation: true})
	ana := &Analyzer{FeatureThreshold: 4.5} // background ~N(0,1); feature adds +3 to every value
	anaSt, _ := e.AddProcessorStage("analysis", 0, ana, pipeline.StageConfig{DisableAdaptation: true})
	steer := NewSteering()
	steerSt, _ := e.AddProcessorStage("steering", 0, steer, pipeline.StageConfig{DisableAdaptation: true})
	e.Connect(src, smp, nil)
	e.Connect(smp, anaSt, nil)
	e.Connect(anaSt, steerSt, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ana.FeaturesDetected() == 0 || steer.Commands() == 0 {
		t.Fatal("no features detected despite the injected hot region")
	}
	if got := steer.MostRefined(); got != 5 {
		t.Fatalf("most refined region = %d, want the hot region 5", got)
	}
	// The hot region must dominate: random N(0,1) excursions past 4.5
	// are vanishingly rare, so stray commands stay far below.
	hot := steer.Refinements(5)
	for r := 0; r < 8; r++ {
		if r != 5 && steer.Refinements(r) > hot/4 {
			t.Fatalf("region %d collected %d commands vs hot region's %d", r, steer.Refinements(r), hot)
		}
	}
}

func TestSteeringRejectsWrongType(t *testing.T) {
	e := pipeline.New(clock.NewScaled(5000))
	bad, _ := e.AddSourceStage("bad", 0, badValueSource{}, pipeline.StageConfig{})
	st, _ := e.AddProcessorStage("steering", 0, NewSteering(), pipeline.StageConfig{})
	e.Connect(bad, st, nil)
	if err := e.Run(context.Background()); err == nil {
		t.Fatal("steering accepted a non-command packet")
	}
}

func TestSteeringEmpty(t *testing.T) {
	s := NewSteering()
	if s.MostRefined() != -1 {
		t.Fatal("empty steering has a most-refined region")
	}
	if s.Commands() != 0 || s.Refinements(3) != 0 {
		t.Fatal("empty steering has counts")
	}
}

type badValueSource struct{}

func (badValueSource) Run(_ *pipeline.Context, out *pipeline.Emitter) error {
	return out.EmitValue(3.14, 8)
}
