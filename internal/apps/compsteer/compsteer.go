// Package compsteer implements the paper's second application template:
// data-stream processing for computational steering.
//
// A simulation running on one machine generates a stream of intermediate
// mesh values; the values are sampled, communicated to another machine, and
// analyzed there, with analysis time linear in the data volume. The sampling
// rate — the fraction of generated values forwarded to the analysis — is the
// application's adjustment parameter: the middleware raises it while the
// analysis keeps up and lowers it when processing (Figure 8) or the network
// (Figure 9) becomes the constraint.
package compsteer

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// ParamName is the sampler's adjustment-parameter name.
const ParamName = "sampling-rate"

// DefaultSamplerSpec returns the paper's Figure 8 parameter specification:
// initial sampling factor 0.13 over [0.01, 1] in steps of 0.01; increasing
// the rate slows processing and raises accuracy.
func DefaultSamplerSpec() adapt.ParamSpec {
	return adapt.ParamSpec{
		Name:      ParamName,
		Initial:   0.13,
		Min:       0.01,
		Max:       1.0,
		Step:      0.01,
		Direction: adapt.IncreaseSlowsProcessing,
	}
}

// SimulationSource models the running simulation: it produces mesh data at
// a fixed rate for a fixed virtual duration. With Regions > 0 each packet
// carries a MeshChunk of real values; one region develops a feature
// (elevated values) that the analysis stage can detect and steer on.
type SimulationSource struct {
	// GenRate is the data generation rate in bytes per virtual second.
	GenRate int
	// Duration is how long the simulation runs (virtual time).
	Duration time.Duration
	// PacketBytes is the mesh-update granularity (default 16 bytes).
	PacketBytes int
	// Regions, when positive, attaches MeshChunk payloads cycling
	// through this many grid regions.
	Regions int
	// HotRegion is the region that develops a feature during the middle
	// half of the run (values elevated by 3).
	HotRegion int
	// Seed makes the mesh values reproducible.
	Seed int64
}

// Run implements pipeline.Source.
func (s *SimulationSource) Run(ctx *pipeline.Context, out *pipeline.Emitter) error {
	if s.GenRate <= 0 {
		return fmt.Errorf("compsteer: GenRate %d must be positive", s.GenRate)
	}
	pb := s.PacketBytes
	if pb <= 0 {
		pb = 16
	}
	interval := time.Duration(float64(pb) / float64(s.GenRate) * float64(time.Second))
	n := int(s.Duration / interval)
	var rng *rand.Rand
	if s.Regions > 0 {
		rng = rand.New(rand.NewSource(s.Seed))
	}
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			return nil
		default:
		}
		ctx.ChargeCompute(interval) // generation pacing
		pkt := pipeline.NewPacket(nil, 1, pb)
		if s.Regions > 0 {
			region := i % s.Regions
			vals := make([]float64, pb/8+1)
			for j := range vals {
				vals[j] = rng.NormFloat64()
			}
			if region == s.HotRegion && i >= n/4 && i < 3*n/4 {
				for j := range vals {
					vals[j] += 3 // the feature the analysis should catch
				}
			}
			pkt.Value = &MeshChunk{Region: region, Values: vals}
		}
		if err := out.Emit(pkt); err != nil {
			return err
		}
	}
	return nil
}

// Sampler forwards a tunable fraction of the simulation's output. It uses
// deterministic credit-based thinning so the forwarded volume tracks the
// suggested rate exactly.
type Sampler struct {
	// Spec bounds the sampling-rate parameter; the zero value selects
	// DefaultSamplerSpec.
	Spec adapt.ParamSpec

	param  *adapt.Param
	credit float64
}

// Init implements pipeline.Processor: it exposes the sampling rate to the
// middleware.
func (s *Sampler) Init(ctx *pipeline.Context) error {
	spec := s.Spec
	if spec.Name == "" {
		spec = DefaultSamplerSpec()
	}
	p, err := ctx.SpecifyParam(spec)
	if err != nil {
		return err
	}
	s.param = p
	return nil
}

// Rate returns the middleware's current suggested sampling rate.
func (s *Sampler) Rate() float64 {
	if s.param == nil {
		return 0
	}
	return s.param.Value()
}

// Process implements pipeline.Processor.
func (s *Sampler) Process(_ *pipeline.Context, pkt *pipeline.Packet, out *pipeline.Emitter) error {
	s.credit += s.param.Value()
	if s.credit < 1 {
		return nil
	}
	s.credit--
	return out.Emit(pipeline.NewPacket(pkt.Value, pkt.ItemCount(), pkt.WireSize))
}

// Finish implements pipeline.Processor.
func (s *Sampler) Finish(*pipeline.Context, *pipeline.Emitter) error { return nil }

// Snapshot implements pipeline.Snapshotter: the sampler's only migratable
// state is its thinning credit (the rate parameter lives with the stage's
// adaptation controller, which survives migration in place).
func (s *Sampler) Snapshot() ([]byte, error) {
	return json.Marshal(struct {
		Credit float64 `json:"credit"`
	}{Credit: s.credit})
}

// Restore implements pipeline.Snapshotter.
func (s *Sampler) Restore(data []byte) error {
	var w struct {
		Credit float64 `json:"credit"`
	}
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("compsteer: restore sampler: %w", err)
	}
	s.credit = w.Credit
	return nil
}

// Analyzer is the post-processing stage; its time is linear in the volume
// of data that survives sampling, at CostPerByte. With a FeatureThreshold
// set and a downstream stage connected, it emits a SteeringCommand whenever
// a MeshChunk's values exceed the threshold — the detection half of the
// steering loop.
type Analyzer struct {
	// CostPerByte is the analysis cost per received byte.
	CostPerByte time.Duration
	// FeatureThreshold, when non-zero, turns on feature detection over
	// MeshChunk payloads.
	FeatureThreshold float64

	bytes    uint64
	detected uint64
}

// Init implements pipeline.Processor.
func (a *Analyzer) Init(*pipeline.Context) error { return nil }

// Process implements pipeline.Processor.
func (a *Analyzer) Process(ctx *pipeline.Context, pkt *pipeline.Packet, out *pipeline.Emitter) error {
	a.bytes += uint64(pkt.WireSize)
	ctx.ChargeCompute(time.Duration(pkt.WireSize) * a.CostPerByte)
	if a.FeatureThreshold > 0 {
		if chunk, ok := pkt.Value.(*MeshChunk); ok {
			peak := 0.0
			for _, v := range chunk.Values {
				if v > peak {
					peak = v
				}
			}
			if peak >= a.FeatureThreshold && out.Fanout() > 0 {
				a.detected++
				cmd := &SteeringCommand{Region: chunk.Region, Severity: peak - a.FeatureThreshold}
				if err := out.Emit(pipeline.NewPacket(cmd, 1, 16)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// FeaturesDetected reports how many steering commands the analyzer issued.
// Read after the run.
func (a *Analyzer) FeaturesDetected() uint64 { return a.detected }

// Finish implements pipeline.Processor.
func (a *Analyzer) Finish(*pipeline.Context, *pipeline.Emitter) error { return nil }

// BytesAnalyzed reports the volume the analyzer consumed. Read it only
// after the run completes.
func (a *Analyzer) BytesAnalyzed() uint64 { return a.bytes }

// MeshChunk is the payload of a simulation packet when the source is
// configured with regions: intermediate values at the mesh points of one
// region of the simulation grid.
type MeshChunk struct {
	// Region is the grid region the values belong to.
	Region int
	// Values are the intermediate simulation values.
	Values []float64
}

// SteeringCommand is the analysis stage's feedback to the simulation — the
// §2 steering loop: "if we detect certain features at a part of a grid, we
// may want to increase the resolution for that part of the grid".
type SteeringCommand struct {
	// Region is the grid region to refine.
	Region int
	// Severity is the detected feature's magnitude above the threshold.
	Severity float64
}

// Steering is the terminal stage of a steering pipeline: it accumulates
// refinement commands per region, standing in for the simulation's control
// interface. It is safe to query concurrently.
type Steering struct {
	mu          sync.Mutex
	refinements map[int]int
	commands    uint64
}

// NewSteering returns an empty steering sink.
func NewSteering() *Steering {
	return &Steering{refinements: make(map[int]int)}
}

// Init implements pipeline.Processor.
func (s *Steering) Init(*pipeline.Context) error { return nil }

// Process implements pipeline.Processor.
func (s *Steering) Process(_ *pipeline.Context, pkt *pipeline.Packet, _ *pipeline.Emitter) error {
	cmd, ok := pkt.Value.(*SteeringCommand)
	if !ok {
		return fmt.Errorf("compsteer: steering got %T, want *SteeringCommand", pkt.Value)
	}
	s.mu.Lock()
	s.refinements[cmd.Region]++
	s.commands++
	s.mu.Unlock()
	return nil
}

// Finish implements pipeline.Processor.
func (s *Steering) Finish(*pipeline.Context, *pipeline.Emitter) error { return nil }

// Commands returns the total number of refinement commands received.
func (s *Steering) Commands() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commands
}

// Refinements returns how many commands targeted the given region.
func (s *Steering) Refinements(region int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refinements[region]
}

// MostRefined returns the region with the most refinement commands
// (-1 when none arrived).
func (s *Steering) MostRefined() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	best, bestN := -1, 0
	for r, n := range s.refinements {
		if n > bestN || (n == bestN && best != -1 && r < best) {
			best, bestN = r, n
		}
	}
	return best
}
