package intrusion

import (
	"context"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/workload"
)

// buildApp wires sites log sources through site filters into one detector.
func buildApp(t *testing.T, sites int, attacker uint32, attackSites []int) (*pipeline.Engine, *Detector) {
	t.Helper()
	e := pipeline.New(clock.NewScaled(20000))
	det := NewDetector(DetectorConfig{RateThreshold: 400, SpreadThreshold: 3})
	dst, err := e.AddProcessorStage("detector", 0, det, pipeline.StageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	attacks := map[int]bool{}
	for _, s := range attackSites {
		attacks[s] = true
	}
	for i := 0; i < sites; i++ {
		src := &LogSource{
			Site: i, Background: 5000, Hosts: 2000, Seed: int64(i + 1),
		}
		if attacks[i] {
			src.AttackerSrc = attacker
			src.AttackRecords = 800
		}
		ss, err := e.AddSourceStage("log", i, src, pipeline.StageConfig{})
		if err != nil {
			t.Fatal(err)
		}
		sf, err := e.AddProcessorStage("filter", i, NewSiteFilter(SiteFilterConfig{
			Seed: int64(i + 100),
		}), pipeline.StageConfig{})
		if err != nil {
			t.Fatal(err)
		}
		e.Connect(ss, sf, nil)
		e.Connect(sf, dst, nil)
	}
	return e, det
}

func TestAttackRaisesRateAlert(t *testing.T) {
	e, det := buildApp(t, 4, 0xBADF00D, []int{1})
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if det.Sites() != 4 {
		t.Fatalf("detector heard from %d sites, want 4", det.Sites())
	}
	alerts := det.Alerts()
	if len(alerts) == 0 {
		t.Fatal("no alert for an 800-record flood")
	}
	if alerts[0].Host != 0xBADF00D {
		t.Fatalf("top alert is host %x, want the attacker", alerts[0].Host)
	}
	if alerts[0].Reason != "rate" {
		t.Fatalf("alert reason %q, want rate", alerts[0].Reason)
	}
}

func TestDistributedScanRaisesSpreadAlert(t *testing.T) {
	// The same host sends a sub-rate-threshold trickle at every site: the
	// spread rule must catch it.
	e := pipeline.New(clock.NewScaled(20000))
	det := NewDetector(DetectorConfig{RateThreshold: 1e9, SpreadThreshold: 3})
	dst, _ := e.AddProcessorStage("detector", 0, det, pipeline.StageConfig{})
	for i := 0; i < 4; i++ {
		src := &LogSource{
			Site: i, Background: 3000, Hosts: 2000,
			AttackerSrc: 0xC0FFEE, AttackRecords: 300, Seed: int64(i + 1),
		}
		ss, _ := e.AddSourceStage("log", i, src, pipeline.StageConfig{})
		sf, _ := e.AddProcessorStage("filter", i, NewSiteFilter(SiteFilterConfig{Seed: int64(i)}), pipeline.StageConfig{})
		e.Connect(ss, sf, nil)
		e.Connect(sf, dst, nil)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	alerts := det.Alerts()
	found := false
	for _, a := range alerts {
		if a.Host == 0xC0FFEE {
			found = true
			if a.Reason != "spread" {
				t.Fatalf("attacker flagged by %q, want spread", a.Reason)
			}
			if a.Sites < 3 {
				t.Fatalf("attacker seen at %d sites, want >= 3", a.Sites)
			}
		}
	}
	if !found {
		t.Fatalf("distributed scanner not flagged; alerts: %v", alerts)
	}
}

func TestQuietLogsRaiseNoAlerts(t *testing.T) {
	e, det := buildApp(t, 4, 0, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Background hosts send ~2.5 records each across 2000 hosts: far from
	// both thresholds.
	if alerts := det.Alerts(); len(alerts) != 0 {
		t.Fatalf("background-only run produced alerts: %v", alerts)
	}
}

func TestLogSourceValidation(t *testing.T) {
	e := pipeline.New(clock.NewScaled(20000))
	ss, _ := e.AddSourceStage("log", 0, &LogSource{Hosts: 0, Background: 10}, pipeline.StageConfig{})
	sf, _ := e.AddProcessorStage("filter", 0, NewSiteFilter(SiteFilterConfig{}), pipeline.StageConfig{})
	det, _ := e.AddProcessorStage("detector", 0, NewDetector(DetectorConfig{}), pipeline.StageConfig{})
	e.Connect(ss, sf, nil)
	e.Connect(sf, det, nil)
	if err := e.Run(context.Background()); err == nil {
		t.Fatal("zero host population accepted")
	}
}

func TestWrongTypesRejected(t *testing.T) {
	e := pipeline.New(clock.NewScaled(20000))
	bad, _ := e.AddSourceStage("bad", 0, badSource{}, pipeline.StageConfig{})
	sf, _ := e.AddProcessorStage("filter", 0, NewSiteFilter(SiteFilterConfig{}), pipeline.StageConfig{})
	det, _ := e.AddProcessorStage("detector", 0, NewDetector(DetectorConfig{}), pipeline.StageConfig{})
	e.Connect(bad, sf, nil)
	e.Connect(sf, det, nil)
	if err := e.Run(context.Background()); err == nil {
		t.Fatal("site filter accepted a non-ConnBatch packet")
	}

	e2 := pipeline.New(clock.NewScaled(20000))
	bad2, _ := e2.AddSourceStage("bad", 0, badSource{}, pipeline.StageConfig{})
	det2, _ := e2.AddProcessorStage("detector", 0, NewDetector(DetectorConfig{}), pipeline.StageConfig{})
	e2.Connect(bad2, det2, nil)
	if err := e2.Run(context.Background()); err == nil {
		t.Fatal("detector accepted a non-SiteReport packet")
	}
}

func TestAdaptiveWatchlistRegistered(t *testing.T) {
	e := pipeline.New(clock.NewScaled(20000))
	src := &LogSource{Site: 0, Background: 2000, Hosts: 500, Seed: 3}
	ss, _ := e.AddSourceStage("log", 0, src, pipeline.StageConfig{})
	sf, _ := e.AddProcessorStage("filter", 0, NewSiteFilter(SiteFilterConfig{Adaptive: true, Seed: 4}), pipeline.StageConfig{})
	det, _ := e.AddProcessorStage("detector", 0, NewDetector(DetectorConfig{}), pipeline.StageConfig{})
	e.Connect(ss, sf, nil)
	e.Connect(sf, det, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	p, ok := sf.Controller().Param("watchlist-size")
	if !ok {
		t.Fatal("watchlist-size parameter not registered")
	}
	if v := p.Value(); v < 5 || v > 100 {
		t.Fatalf("watchlist size %v escaped its bounds", v)
	}
}

func TestSiteReportWireSize(t *testing.T) {
	if got := (&SiteReport{}).WireSize(); got != 24 {
		t.Fatalf("empty report WireSize = %d, want 24", got)
	}
	rep := &SiteReport{Talkers: make([]workload.ValueCount, 10)}
	if got := rep.WireSize(); got != 144 {
		t.Fatalf("10-talker report WireSize = %d, want 144", got)
	}
}

func TestLogSourcePacing(t *testing.T) {
	clk := clock.NewScaled(5000)
	e := pipeline.New(clk)
	src := &LogSource{Site: 0, Background: 1000, Hosts: 100, Seed: 1, PerRecordCost: 10 * time.Millisecond}
	ss, _ := e.AddSourceStage("log", 0, src, pipeline.StageConfig{ComputeQuantum: 200 * time.Millisecond})
	sf, _ := e.AddProcessorStage("filter", 0, NewSiteFilter(SiteFilterConfig{Seed: 2}), pipeline.StageConfig{})
	det, _ := e.AddProcessorStage("detector", 0, NewDetector(DetectorConfig{}), pipeline.StageConfig{})
	e.Connect(ss, sf, nil)
	e.Connect(sf, det, nil)
	sw := clock.NewStopwatch(clk)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sw.Elapsed() < 9*time.Second {
		t.Fatalf("1000 records at 10ms each finished in %v, want ~10s", sw.Elapsed())
	}
}

type badSource struct{}

func (badSource) Run(_ *pipeline.Context, out *pipeline.Emitter) error {
	return out.EmitValue(42, 8)
}
