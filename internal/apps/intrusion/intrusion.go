// Package intrusion implements the paper's online network-intrusion
// detection motivating application (§2): connection-request logs are
// analyzed in a distributed fashion — one filtering stage near each site's
// log source, and a global detector that correlates the per-site reports to
// flag scanning hosts.
//
// The per-site stage keeps a counting-samples sketch of connection counts
// per source host and periodically forwards its top talkers; the size of
// that watchlist is the stage's adjustment parameter (a bigger watchlist is
// more accurate and more expensive to ship). The global detector raises an
// alert for any host whose aggregate connection rate crosses a threshold or
// that appears in the watchlists of several sites at once — the signature of
// a distributed scan.
package intrusion

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/apps/countsamps"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/workload"
)

// Conn is one connection-request log record.
type Conn struct {
	// Src identifies the connecting host.
	Src uint32
	// Port is the destination port.
	Port uint16
}

// ConnBatch is the unit shipped between stages: a chunk of log records from
// one site.
type ConnBatch struct {
	Site    int
	Records []Conn
}

// LogSource generates a site's connection log: background traffic from many
// hosts, plus an optional attacker that floods connections during a window
// of the stream.
type LogSource struct {
	// Site is this source's site ordinal.
	Site int
	// Background is how many background records to generate.
	Background int
	// Hosts is the background host population size.
	Hosts int
	// AttackerSrc, when non-zero, injects AttackRecords records from this
	// host interleaved through the middle third of the stream.
	AttackerSrc   uint32
	AttackRecords int
	// BatchSize is records per packet (default 50).
	BatchSize int
	// Seed makes the log reproducible.
	Seed int64
	// PerRecordCost paces generation (virtual time per record).
	PerRecordCost time.Duration
}

// Run implements pipeline.Source.
func (s *LogSource) Run(ctx *pipeline.Context, out *pipeline.Emitter) error {
	if s.Hosts < 1 {
		return fmt.Errorf("intrusion: LogSource needs a host population")
	}
	batch := s.BatchSize
	if batch < 1 {
		batch = 50
	}
	rng := rand.New(rand.NewSource(s.Seed))
	total := s.Background + s.AttackRecords
	attackStart, attackEnd := total/3, 2*total/3
	attackLeft := s.AttackRecords

	records := make([]Conn, 0, batch)
	flush := func() error {
		if len(records) == 0 {
			return nil
		}
		cp := make([]Conn, len(records))
		copy(cp, records)
		records = records[:0]
		return out.Emit(pipeline.NewPacket(&ConnBatch{Site: s.Site, Records: cp}, len(cp), len(cp)*16))
	}
	for i := 0; i < total; i++ {
		var c Conn
		inWindow := i >= attackStart && i < attackEnd
		if s.AttackerSrc != 0 && inWindow && attackLeft > 0 && rng.Float64() < 0.5 {
			attackLeft--
			c = Conn{Src: s.AttackerSrc, Port: uint16(rng.Intn(1024))}
		} else {
			c = Conn{Src: uint32(rng.Intn(s.Hosts) + 1), Port: uint16(rng.Intn(65535))}
		}
		if s.PerRecordCost > 0 {
			ctx.ChargeCompute(s.PerRecordCost)
		}
		records = append(records, c)
		if len(records) >= batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// SiteReport is a site filter's periodic output: the site's current top
// talkers.
type SiteReport struct {
	Site    int
	Span    uint64
	Talkers []workload.ValueCount // Value = host, Count = estimated records
}

// WireSize models the report's size on the network.
func (r *SiteReport) WireSize() int { return len(r.Talkers)*12 + 24 }

// SiteFilterConfig configures a per-site filtering stage.
type SiteFilterConfig struct {
	// FlushEvery forwards a report after this many records (default 500).
	FlushEvery int
	// Watchlist is the fixed top-k size forwarded. Ignored when Adaptive.
	Watchlist int
	// Adaptive exposes the watchlist size as an adjustment parameter
	// (initial 20, range [5, 100], step 1).
	Adaptive bool
	// SketchFootprint bounds the per-site sketch (default 256).
	SketchFootprint int
	// PerRecordCost is the filtering cost per record.
	PerRecordCost time.Duration
	// Seed makes the sketch reproducible.
	Seed int64
}

func (c *SiteFilterConfig) fill() {
	if c.FlushEvery == 0 {
		c.FlushEvery = 500
	}
	if c.Watchlist == 0 {
		c.Watchlist = 20
	}
	if c.SketchFootprint == 0 {
		c.SketchFootprint = 256
	}
}

// SiteFilter is the near-source stage: it sketches per-host connection
// counts and periodically reports the site's top talkers.
type SiteFilter struct {
	cfg    SiteFilterConfig
	sketch *countsamps.Sketch
	param  *adapt.Param
	site   int
	since  int
}

// NewSiteFilter returns a site filter processor.
func NewSiteFilter(cfg SiteFilterConfig) *SiteFilter {
	cfg.fill()
	return &SiteFilter{cfg: cfg}
}

// Init implements pipeline.Processor.
func (f *SiteFilter) Init(ctx *pipeline.Context) error {
	f.sketch = countsamps.NewSketch(f.cfg.SketchFootprint, f.cfg.Seed+int64(ctx.Instance()))
	if f.cfg.Adaptive {
		p, err := ctx.SpecifyParam(adapt.ParamSpec{
			Name:      "watchlist-size",
			Initial:   20,
			Min:       5,
			Max:       100,
			Step:      1,
			Direction: adapt.IncreaseSlowsProcessing,
		})
		if err != nil {
			return err
		}
		f.param = p
	}
	return nil
}

func (f *SiteFilter) watchlist() int {
	if f.param != nil {
		return int(f.param.Value())
	}
	return f.cfg.Watchlist
}

// Process implements pipeline.Processor.
func (f *SiteFilter) Process(ctx *pipeline.Context, pkt *pipeline.Packet, out *pipeline.Emitter) error {
	batch, ok := pkt.Value.(*ConnBatch)
	if !ok {
		return fmt.Errorf("intrusion: site filter got %T, want *ConnBatch", pkt.Value)
	}
	f.site = batch.Site
	for _, c := range batch.Records {
		f.sketch.Observe(int(c.Src))
		f.since++
		if f.since >= f.cfg.FlushEvery {
			if err := f.flush(out); err != nil {
				return err
			}
		}
	}
	if f.cfg.PerRecordCost > 0 {
		ctx.ChargeCompute(time.Duration(len(batch.Records)) * f.cfg.PerRecordCost)
	}
	return nil
}

// Finish implements pipeline.Processor.
func (f *SiteFilter) Finish(_ *pipeline.Context, out *pipeline.Emitter) error {
	return f.flush(out)
}

func (f *SiteFilter) flush(out *pipeline.Emitter) error {
	f.since = 0
	rep := &SiteReport{
		Site:    f.site,
		Span:    f.sketch.Observed(),
		Talkers: f.sketch.TopK(f.watchlist()),
	}
	return out.Emit(pipeline.NewPacket(rep, len(rep.Talkers), rep.WireSize()))
}

// Alert flags a suspicious host.
type Alert struct {
	// Host is the flagged source address.
	Host uint32
	// Sites is how many sites reported the host among their top talkers.
	Sites int
	// Estimated is the aggregate estimated record count.
	Estimated float64
	// Reason describes which rule fired.
	Reason string
}

// DetectorConfig tunes the global detector.
type DetectorConfig struct {
	// RateThreshold flags any host whose aggregate estimated count
	// exceeds this many records (default 400).
	RateThreshold float64
	// SpreadThreshold flags any host reported by at least this many
	// sites (default 3).
	SpreadThreshold int
}

func (c *DetectorConfig) fill() {
	if c.RateThreshold == 0 {
		c.RateThreshold = 400
	}
	if c.SpreadThreshold == 0 {
		c.SpreadThreshold = 3
	}
}

// Detector is the central stage: it correlates site reports and raises
// alerts. It is safe to query concurrently.
type Detector struct {
	cfg DetectorConfig

	mu      sync.Mutex
	reports map[int]*SiteReport // latest per site
}

// NewDetector returns a detector processor.
func NewDetector(cfg DetectorConfig) *Detector {
	cfg.fill()
	return &Detector{cfg: cfg, reports: make(map[int]*SiteReport)}
}

// Init implements pipeline.Processor.
func (d *Detector) Init(*pipeline.Context) error { return nil }

// Process implements pipeline.Processor.
func (d *Detector) Process(_ *pipeline.Context, pkt *pipeline.Packet, _ *pipeline.Emitter) error {
	rep, ok := pkt.Value.(*SiteReport)
	if !ok {
		return fmt.Errorf("intrusion: detector got %T, want *SiteReport", pkt.Value)
	}
	d.mu.Lock()
	if prev, dup := d.reports[rep.Site]; !dup || prev.Span <= rep.Span {
		d.reports[rep.Site] = rep
	}
	d.mu.Unlock()
	return nil
}

// Finish implements pipeline.Processor.
func (d *Detector) Finish(*pipeline.Context, *pipeline.Emitter) error { return nil }

// Alerts evaluates the detection rules over the latest per-site reports.
func (d *Detector) Alerts() []Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	agg := make(map[uint32]*Alert)
	for _, rep := range d.reports {
		for _, t := range rep.Talkers {
			host := uint32(t.Value)
			a, ok := agg[host]
			if !ok {
				a = &Alert{Host: host}
				agg[host] = a
			}
			a.Sites++
			a.Estimated += t.Count
		}
	}
	var out []Alert
	for _, a := range agg {
		switch {
		case a.Estimated >= d.cfg.RateThreshold:
			a.Reason = "rate"
		case a.Sites >= d.cfg.SpreadThreshold:
			a.Reason = "spread"
		default:
			continue
		}
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Estimated != out[j].Estimated {
			return out[i].Estimated > out[j].Estimated
		}
		return out[i].Host < out[j].Host
	})
	return out
}

// Sites reports how many sites have delivered reports.
func (d *Detector) Sites() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.reports)
}
