// Package countsamps implements the paper's first application template:
// a distributed version of the counting samples problem.
//
// The classical problem (Gibbons & Matias, the paper's [18]): a stream of
// integers arrives; report the n most frequently occurring values and their
// frequencies at any point, using bounded memory. The counting samples
// sketch keeps a sample of values with exact counts from the moment of
// admission: a new value enters the sample with probability 1/τ, and when
// the sample outgrows its footprint the threshold τ is raised and every
// sampled value must survive a sequence of coin flips or have its count
// decremented.
//
// The distributed version (this package's stages) runs one sketch near each
// sub-stream's source and periodically forwards the top-n entries to a
// central merger; n — how many frequently occurring values each sub-stream
// maintains and communicates — is the application's adjustment parameter.
package countsamps

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"github.com/gates-middleware/gates/internal/workload"
)

// EstimateBias is the compensation added to a sampled count when estimating
// a value's true frequency: Gibbons & Matias show the expected number of
// occurrences missed before a value's admission is ≈ 0.418·τ.
const EstimateBias = 0.418

// Sketch is a counting samples summary with a bounded footprint.
// It is not safe for concurrent use; each stage instance owns one.
type Sketch struct {
	footprint int
	tau       float64
	counts    map[int]int
	rng       *rand.Rand
	seed      int64
	draws     uint64
	observed  uint64
}

// NewSketch returns a sketch tracking at most footprint values. The seed
// makes runs reproducible.
func NewSketch(footprint int, seed int64) *Sketch {
	if footprint < 1 {
		panic("countsamps: footprint must be >= 1")
	}
	return &Sketch{
		footprint: footprint,
		tau:       1,
		counts:    make(map[int]int, footprint+1),
		rng:       rand.New(rand.NewSource(seed)),
		seed:      seed,
	}
}

// flip draws the next coin from the seeded RNG, counting draws so a
// serialized sketch can replay the RNG to the same position on restore —
// the property that makes a migrated sketch bit-identical to one that
// never moved.
func (s *Sketch) flip() float64 {
	s.draws++
	return s.rng.Float64()
}

// Footprint returns the current maximum number of tracked values.
func (s *Sketch) Footprint() int { return s.footprint }

// SetFootprint changes the footprint at runtime — the hook the adjustment
// parameter drives. Shrinking evicts via threshold raising, exactly as an
// overflow would.
func (s *Sketch) SetFootprint(n int) {
	if n < 1 {
		n = 1
	}
	s.footprint = n
	for len(s.counts) > s.footprint {
		s.raiseTau()
	}
}

// Tau returns the current admission threshold τ (values enter the sample
// with probability 1/τ).
func (s *Sketch) Tau() float64 { return s.tau }

// Len returns the number of values currently tracked.
func (s *Sketch) Len() int { return len(s.counts) }

// Observed returns how many stream values the sketch has consumed.
func (s *Sketch) Observed() uint64 { return s.observed }

// Observe feeds one stream value.
func (s *Sketch) Observe(v int) {
	s.observed++
	if _, ok := s.counts[v]; ok {
		s.counts[v]++
		return
	}
	if s.flip() < 1/s.tau {
		s.counts[v] = 1
		for len(s.counts) > s.footprint {
			s.raiseTau()
		}
	}
}

// raiseTau increases τ and makes every tracked value re-earn its place:
// each flips a coin with heads probability τ/τ'; on tails its count is
// decremented and the (now unbiased) coin is flipped again, until heads or
// the count reaches zero, in which case the value is evicted. This is the
// eviction procedure of Gibbons & Matias.
//
// Entries are visited in sorted value order: Go randomizes map iteration,
// and consuming the seeded RNG in a random order would make two runs over
// the same stream diverge — reproducibility the experiments rely on.
func (s *Sketch) raiseTau() {
	oldTau := s.tau
	s.tau = oldTau * 1.25
	if s.tau < oldTau+1 {
		s.tau = oldTau + 1
	}
	keepFirst := oldTau / s.tau
	values := make([]int, 0, len(s.counts))
	for v := range s.counts {
		values = append(values, v)
	}
	sort.Ints(values)
	for _, v := range values {
		// First flip with probability τ/τ'; subsequent flips with
		// probability 1/τ' (the value must behave as if re-admitted).
		if s.flip() < keepFirst {
			continue
		}
		c := s.counts[v]
		for c > 0 {
			c--
			if s.flip() < 1/s.tau {
				break
			}
		}
		if c == 0 {
			delete(s.counts, v)
		} else {
			s.counts[v] = c
		}
	}
}

// sketchWire is the serialized form of a Sketch. Values/Counts are
// parallel slices in sorted value order so encoding is deterministic.
type sketchWire struct {
	Footprint int     `json:"footprint"`
	Tau       float64 `json:"tau"`
	Seed      int64   `json:"seed"`
	Draws     uint64  `json:"draws"`
	Observed  uint64  `json:"observed"`
	Values    []int   `json:"values"`
	Counts    []int   `json:"counts"`
}

// MarshalBinary serializes the sketch, including enough RNG provenance
// (seed plus draw count) that UnmarshalBinary reproduces the exact
// generator position: a restored sketch continues the same coin-flip
// sequence the original would have.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	w := sketchWire{
		Footprint: s.footprint,
		Tau:       s.tau,
		Seed:      s.seed,
		Draws:     s.draws,
		Observed:  s.observed,
		Values:    make([]int, 0, len(s.counts)),
		Counts:    make([]int, 0, len(s.counts)),
	}
	for v := range s.counts {
		w.Values = append(w.Values, v)
	}
	sort.Ints(w.Values)
	for _, v := range w.Values {
		w.Counts = append(w.Counts, s.counts[v])
	}
	return json.Marshal(w)
}

// UnmarshalBinary replaces the sketch's state with a serialized one,
// replaying the RNG to the recorded draw position.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	var w sketchWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("countsamps: unmarshal sketch: %w", err)
	}
	if w.Footprint < 1 || len(w.Values) != len(w.Counts) {
		return fmt.Errorf("countsamps: unmarshal sketch: malformed state")
	}
	s.footprint = w.Footprint
	s.tau = w.Tau
	s.seed = w.Seed
	s.observed = w.Observed
	s.counts = make(map[int]int, len(w.Values)+1)
	for i, v := range w.Values {
		s.counts[v] = w.Counts[i]
	}
	s.rng = rand.New(rand.NewSource(w.Seed))
	s.draws = 0
	for s.draws < w.Draws {
		s.flip()
	}
	return nil
}

// Estimate returns the frequency estimate for a tracked value: its sampled
// count plus the admission-bias compensation. The second return is false
// for untracked values.
func (s *Sketch) Estimate(v int) (float64, bool) {
	c, ok := s.counts[v]
	if !ok {
		return 0, false
	}
	return float64(c) + EstimateBias*s.tau, true
}

// TopK returns the k tracked values with the highest estimates, descending,
// ties broken by smaller value.
func (s *Sketch) TopK(k int) []workload.ValueCount {
	all := make([]workload.ValueCount, 0, len(s.counts))
	for v := range s.counts {
		est, _ := s.Estimate(v)
		all = append(all, workload.ValueCount{Value: v, Count: est})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Value < all[j].Value
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// Summary is the unit a source-side stage ships to the merger: the top-n
// estimates of one sub-stream at one flush point. Summaries are cumulative:
// each covers the sub-stream from its beginning, so a newer summary from the
// same source supersedes the older one (the merger keeps the latest).
type Summary struct {
	// SourceInstance identifies the sub-stream.
	SourceInstance int
	// Entries are the top-n (value, estimate) pairs.
	Entries []workload.ValueCount
	// Span is how many stream values the summary covers.
	Span uint64
}

// WireSize returns the bytes a summary occupies on the network, modeling
// the paper's per-entry serialization overhead.
func (sm *Summary) WireSize(bytesPerEntry int) int {
	return len(sm.Entries)*bytesPerEntry + 32
}

// String renders a short description.
func (sm *Summary) String() string {
	return fmt.Sprintf("summary{src=%d, entries=%d, span=%d}", sm.SourceInstance, len(sm.Entries), sm.Span)
}

// Merger accumulates per-source summaries (or raw values) into the global
// estimate the central stage answers queries from.
type Merger struct {
	latest map[int]*Summary // per source instance, the newest summary
	raw    map[int]float64  // totals from raw values (centralized path)
}

// NewMerger returns an empty merger.
func NewMerger() *Merger {
	return &Merger{latest: make(map[int]*Summary), raw: make(map[int]float64)}
}

// AddSummary installs one source's newest cumulative summary, superseding
// any earlier summary from the same source.
func (m *Merger) AddSummary(sm *Summary) {
	if prev, ok := m.latest[sm.SourceInstance]; ok && prev.Span > sm.Span {
		return // stale out-of-order summary
	}
	m.latest[sm.SourceInstance] = sm
}

// AddRaw folds a raw value (the centralized version's path).
func (m *Merger) AddRaw(v int) { m.raw[v]++ }

// totals sums the latest per-source summaries and the raw counts.
func (m *Merger) totals() map[int]float64 {
	out := make(map[int]float64, len(m.raw))
	for v, c := range m.raw {
		out[v] = c
	}
	for _, sm := range m.latest {
		for _, e := range sm.Entries {
			out[e.Value] += e.Count
		}
	}
	return out
}

// TopK returns the current global top-k, descending, ties broken by smaller
// value.
func (m *Merger) TopK(k int) []workload.ValueCount {
	totals := m.totals()
	all := make([]workload.ValueCount, 0, len(totals))
	for v, c := range totals {
		all = append(all, workload.ValueCount{Value: v, Count: c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Value < all[j].Value
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// Distinct returns how many values the merger currently tracks.
func (m *Merger) Distinct() int { return len(m.totals()) }

// Sources returns how many sub-streams have delivered at least one summary.
func (m *Merger) Sources() int { return len(m.latest) }

// TotalSpan returns the number of stream values covered by the latest
// summaries across all sources — the cumulative span of a merged relay.
func (m *Merger) TotalSpan() uint64 {
	var total uint64
	for _, sm := range m.latest {
		total += sm.Span
	}
	return total
}
