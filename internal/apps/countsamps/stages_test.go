package countsamps

import (
	"context"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/metrics"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/workload"
)

// fastCost is a zero-compute cost model so stage tests run instantly.
func fastCost() CostModel {
	c := DefaultCostModel()
	c.CentralPerItem = 0
	c.SummaryPerItem = 0
	c.MergePerEntry = 0
	return c
}

// fourStreams builds 4 seeded Zipf sub-streams and their merged truth.
func fourStreams(perStream int) ([][]int, map[int]int) {
	streams := make([][]int, 4)
	parts := make([]map[int]int, 4)
	for i := range streams {
		streams[i] = workload.Take(workload.NewZipf(int64(100+i), 1.3, 50_000), perStream)
		parts[i] = workload.Counts(streams[i])
	}
	return streams, workload.MergeCounts(parts...)
}

func TestStreamSourceEmitsAll(t *testing.T) {
	e := pipeline.New(clock.NewScaled(10000))
	vals := workload.Take(workload.NewUniform(1, 100), 103) // odd count exercises the tail batch
	src, _ := e.AddSourceStage("src", 0, &StreamSource{Values: vals, Batch: 25, ItemWireSize: 8}, pipeline.StageConfig{})
	rc := &RawCounter{Cost: fastCost(), Seed: 1, Footprint: 200}
	sink, _ := e.AddProcessorStage("sink", 0, rc, pipeline.StageConfig{})
	e.Connect(src, sink, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := sink.Stats().ItemsIn; got != 103 {
		t.Fatalf("sink saw %d items, want 103", got)
	}
	if got := src.Stats().BytesOut; got != 103*8 {
		t.Fatalf("source sent %d bytes, want %d", got, 103*8)
	}
}

func TestDistributedPipelineAccuracy(t *testing.T) {
	streams, truth := fourStreams(25_000)
	clk := clock.NewScaled(10000)
	e := pipeline.New(clk)
	merger := &SummaryMerger{Cost: fastCost()}
	ms, _ := e.AddProcessorStage("merge", 0, merger, pipeline.StageConfig{})
	for i, stream := range streams {
		src, err := e.AddSourceStage("src", i, &StreamSource{Values: stream, ItemWireSize: 8}, pipeline.StageConfig{})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := e.AddProcessorStage("summarize", i, NewSummarizer(SummarizerConfig{
			Cost: fastCost(), SummarySize: 100, Seed: int64(i),
		}), pipeline.StageConfig{})
		if err != nil {
			t.Fatal(err)
		}
		e.Connect(src, sum, nil)
		e.Connect(sum, ms, nil)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if merger.Sources() != 4 {
		t.Fatalf("merger saw %d sources, want 4", merger.Sources())
	}
	acc := metrics.TopKAccuracy(truth, merger.TopK(10), 10)
	if acc.Membership < 0.7 || acc.Score() < 70 {
		t.Fatalf("distributed accuracy %v too low", acc)
	}
}

func TestCentralizedPipelineAccuracy(t *testing.T) {
	streams, truth := fourStreams(25_000)
	e := pipeline.New(clock.NewScaled(10000))
	rc := &RawCounter{Cost: fastCost(), Seed: 5}
	central, _ := e.AddProcessorStage("central", 0, rc, pipeline.StageConfig{})
	for i, stream := range streams {
		src, _ := e.AddSourceStage("src", i, &StreamSource{Values: stream, ItemWireSize: 8}, pipeline.StageConfig{})
		e.Connect(src, central, nil)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	acc := metrics.TopKAccuracy(truth, rc.TopK(10), 10)
	if acc.Membership < 0.9 {
		t.Fatalf("centralized membership %v too low", acc.Membership)
	}
	// The one-pass algorithm is approximate: accuracy must not be a
	// perfect 100 (the paper makes this exact observation for Figure 5).
	if acc.Score() >= 100 {
		t.Fatalf("centralized score %v suspiciously perfect", acc.Score())
	}
}

func TestCentralizedBeatsDistributedAccuracy(t *testing.T) {
	// Same streams through both versions: centralized must be at least as
	// accurate, distributed close behind (Figure 5's 99 vs 97 pattern).
	streams, truth := fourStreams(25_000)

	runDistributed := func() metrics.Accuracy {
		e := pipeline.New(clock.NewScaled(10000))
		merger := &SummaryMerger{Cost: fastCost()}
		ms, _ := e.AddProcessorStage("merge", 0, merger, pipeline.StageConfig{})
		for i, stream := range streams {
			src, _ := e.AddSourceStage("src", i, &StreamSource{Values: stream, ItemWireSize: 8}, pipeline.StageConfig{})
			sum, _ := e.AddProcessorStage("summarize", i, NewSummarizer(SummarizerConfig{
				Cost: fastCost(), SummarySize: 100, Seed: int64(i),
			}), pipeline.StageConfig{})
			e.Connect(src, sum, nil)
			e.Connect(sum, ms, nil)
		}
		if err := e.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return metrics.TopKAccuracy(truth, merger.TopK(10), 10)
	}
	runCentralized := func() metrics.Accuracy {
		e := pipeline.New(clock.NewScaled(10000))
		rc := &RawCounter{Cost: fastCost(), Seed: 5}
		central, _ := e.AddProcessorStage("central", 0, rc, pipeline.StageConfig{})
		for i, stream := range streams {
			src, _ := e.AddSourceStage("src", i, &StreamSource{Values: stream, ItemWireSize: 8}, pipeline.StageConfig{})
			e.Connect(src, central, nil)
		}
		if err := e.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return metrics.TopKAccuracy(truth, rc.TopK(10), 10)
	}

	cen, dis := runCentralized(), runDistributed()
	if cen.Score()+5 < dis.Score() {
		t.Fatalf("distributed (%v) markedly beat centralized (%v)", dis, cen)
	}
	if dis.Score() < cen.Score()-25 {
		t.Fatalf("distributed accuracy collapsed: %v vs centralized %v", dis, cen)
	}
}

func TestSummarizerRejectsWrongType(t *testing.T) {
	e := pipeline.New(clock.NewScaled(10000))
	bad, _ := e.AddSourceStage("bad", 0, badSource{}, pipeline.StageConfig{})
	sum, _ := e.AddProcessorStage("summarize", 0, NewSummarizer(SummarizerConfig{Cost: fastCost()}), pipeline.StageConfig{})
	sink, _ := e.AddProcessorStage("merge", 0, &SummaryMerger{Cost: fastCost()}, pipeline.StageConfig{})
	e.Connect(bad, sum, nil)
	e.Connect(sum, sink, nil)
	if err := e.Run(context.Background()); err == nil {
		t.Fatal("summarizer accepted a non-[]int packet")
	}
}

func TestMergerRejectsWrongType(t *testing.T) {
	e := pipeline.New(clock.NewScaled(10000))
	bad, _ := e.AddSourceStage("bad", 0, badSource{}, pipeline.StageConfig{})
	sink, _ := e.AddProcessorStage("merge", 0, &SummaryMerger{Cost: fastCost()}, pipeline.StageConfig{})
	e.Connect(bad, sink, nil)
	if err := e.Run(context.Background()); err == nil {
		t.Fatal("merger accepted a non-Summary packet")
	}
}

func TestRawCounterRejectsWrongType(t *testing.T) {
	e := pipeline.New(clock.NewScaled(10000))
	bad, _ := e.AddSourceStage("bad", 0, badSource{}, pipeline.StageConfig{})
	sink, _ := e.AddProcessorStage("central", 0, &RawCounter{Cost: fastCost(), Seed: 1}, pipeline.StageConfig{})
	e.Connect(bad, sink, nil)
	if err := e.Run(context.Background()); err == nil {
		t.Fatal("raw counter accepted a non-[]int packet")
	}
}

func TestTopKBeforeInit(t *testing.T) {
	if got := (&RawCounter{}).TopK(5); got != nil {
		t.Fatalf("uninitialized RawCounter TopK = %v", got)
	}
	m := &SummaryMerger{}
	if got := m.TopK(5); got != nil {
		t.Fatalf("uninitialized SummaryMerger TopK = %v", got)
	}
	if m.Sources() != 0 {
		t.Fatal("uninitialized SummaryMerger has sources")
	}
}

func TestAdaptiveSummarizerShrinksUnderTightLink(t *testing.T) {
	// One Zipf source through an adaptive summarizer over a 1 KB/s link:
	// flushed summaries (initially 100 entries × 100 B) swamp the link,
	// backpressure fills the summarizer's queue, and the middleware must
	// cut the summary size well below its initial value.
	clk := clock.NewScaled(400)
	e := pipeline.New(clk)
	link := netsim.NewLink(clk, netsim.LinkConfig{Bandwidth: netsim.BW1K, Quantum: 100 * time.Millisecond})
	stream := workload.Take(workload.NewZipf(1, 1.3, 50_000), 4_000)

	src, _ := e.AddSourceStage("src", 0, &StreamSource{
		Values: stream, Batch: 5, ItemWireSize: 8, PerItemCost: 5 * time.Millisecond,
	}, pipeline.StageConfig{DisableAdaptation: true, ComputeQuantum: 100 * time.Millisecond})

	summarizer := NewSummarizer(SummarizerConfig{
		Cost: fastCost(), FlushEvery: 250, Adaptive: true, Seed: 9,
	})
	min := 1e9
	sum, _ := e.AddProcessorStage("summarize", 0, summarizer, pipeline.StageConfig{
		QueueCapacity: 50,
		OnAdjust: func(_ *pipeline.Stage, _ time.Time, adjs []adapt.Adjustment) {
			for _, a := range adjs {
				if a.New < min {
					min = a.New
				}
			}
		},
	})
	merger := &SummaryMerger{Cost: fastCost()}
	ms, _ := e.AddProcessorStage("merge", 0, merger, pipeline.StageConfig{})
	e.Connect(src, sum, nil)
	e.Connect(sum, ms, link)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := sum.Controller().Param("summary-size"); !ok {
		t.Fatal("summary-size parameter not registered")
	}
	// The stream is finite, so the middleware legitimately raises the
	// parameter again during the final drain; the congestion response is
	// the dip while the link is the bottleneck.
	if min >= 80 {
		t.Fatalf("adaptive summary size only reached %v under a saturated 1KB/s link, want well below the initial 100", min)
	}
}

// badSource emits a string packet.
type badSource struct{}

func (badSource) Run(_ *pipeline.Context, out *pipeline.Emitter) error {
	return out.EmitValue("wrong", 8)
}
