package countsamps

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/workload"
)

// CostModel carries the per-item costs and wire sizes of the count-samps
// application. The defaults are calibrated to the paper's Figure 5 (see
// DESIGN.md): its 257.5 s centralized run over 100,000 items implies
// ≈2.6 ms of JVM-era processing per raw item at the central node, and its
// 180.8 s distributed run implies ≈7.2 ms per item of summary maintenance at
// each source; the heavyweight per-item wire size models the middleware's
// per-message serialization envelope.
type CostModel struct {
	// CentralPerItem is the central node's cost to count one raw item.
	CentralPerItem time.Duration
	// SummaryPerItem is a source node's cost to feed one item through its
	// counting-samples sketch.
	SummaryPerItem time.Duration
	// MergePerEntry is the central node's cost to fold one summary entry.
	MergePerEntry time.Duration
	// ItemWireSize is the bytes one raw integer occupies on a link.
	ItemWireSize int
	// EntryWireSize is the bytes one summary entry occupies on a link.
	EntryWireSize int
}

// DefaultCostModel returns the Figure 5 calibration.
func DefaultCostModel() CostModel {
	return CostModel{
		CentralPerItem: 2570 * time.Microsecond,
		SummaryPerItem: 7200 * time.Microsecond,
		MergePerEntry:  100 * time.Microsecond,
		ItemWireSize:   256,
		EntryWireSize:  100,
	}
}

// StreamSource emits a fixed integer sub-stream in batches — one deployed
// instance per stream origin.
type StreamSource struct {
	// Values is the sub-stream.
	Values []int
	// Batch is how many items ride in one packet (default 25).
	Batch int
	// ItemWireSize sizes each item on the wire.
	ItemWireSize int
	// PerItemCost, when non-zero, charges generation cost per item.
	PerItemCost time.Duration
}

// Run implements pipeline.Source.
func (s *StreamSource) Run(ctx *pipeline.Context, out *pipeline.Emitter) error {
	batch := s.Batch
	if batch < 1 {
		batch = 25
	}
	for start := 0; start < len(s.Values); start += batch {
		end := start + batch
		if end > len(s.Values) {
			end = len(s.Values)
		}
		chunk := s.Values[start:end]
		if s.PerItemCost > 0 {
			ctx.ChargeCompute(time.Duration(len(chunk)) * s.PerItemCost)
		}
		pkt := pipeline.NewPacket(chunk, len(chunk), len(chunk)*s.ItemWireSize)
		if err := out.Emit(pkt); err != nil {
			return err
		}
	}
	return nil
}

// SummarizerConfig configures one source-side summarizing stage.
type SummarizerConfig struct {
	// Cost is the application cost model.
	Cost CostModel
	// FlushEvery emits a summary after this many items (default 1000),
	// so the central node can answer "at any given time" queries.
	FlushEvery int
	// SummarySize is the fixed n: how many frequent values to maintain
	// and forward. Ignored when Adaptive.
	SummarySize int
	// Adaptive exposes n as a middleware adjustment parameter instead.
	Adaptive bool
	// AdaptiveSpec bounds the adaptive parameter. Zero value selects the
	// paper's range: initial 100, min 10, max 240, step 2.
	AdaptiveSpec adapt.ParamSpec
	// Seed makes the sketch reproducible.
	Seed int64
}

func (c *SummarizerConfig) fill() {
	if c.FlushEvery == 0 {
		c.FlushEvery = 1000
	}
	if c.SummarySize == 0 {
		c.SummarySize = 100
	}
	if c.Adaptive && c.AdaptiveSpec.Name == "" {
		c.AdaptiveSpec = adapt.ParamSpec{
			Name:      "summary-size",
			Initial:   100,
			Min:       10,
			Max:       240,
			Step:      2,
			Direction: adapt.IncreaseSlowsProcessing,
		}
	}
}

// Summarizer is the distributed version's first stage: it maintains a
// counting-samples sketch over its sub-stream and periodically forwards the
// top-n entries. n is the adjustment parameter the middleware tunes in the
// adaptive version.
type Summarizer struct {
	cfg    SummarizerConfig
	sketch *Sketch
	param  *adapt.Param
	since  int
}

// NewSummarizer returns a summarizer stage processor.
func NewSummarizer(cfg SummarizerConfig) *Summarizer {
	cfg.fill()
	return &Summarizer{cfg: cfg}
}

// Init implements pipeline.Processor: it creates the sketch and, in
// adaptive mode, exposes the summary-size parameter.
func (s *Summarizer) Init(ctx *pipeline.Context) error {
	n := s.cfg.SummarySize
	if s.cfg.Adaptive {
		p, err := ctx.SpecifyParam(s.cfg.AdaptiveSpec)
		if err != nil {
			return err
		}
		s.param = p
		n = int(p.Value())
	}
	s.sketch = NewSketch(n, s.cfg.Seed+int64(ctx.Instance())*7919)
	return nil
}

// size returns the current summary size n (the suggested value in adaptive
// mode).
func (s *Summarizer) size() int {
	if s.param != nil {
		return int(s.param.Value())
	}
	return s.cfg.SummarySize
}

// Process implements pipeline.Processor.
func (s *Summarizer) Process(ctx *pipeline.Context, pkt *pipeline.Packet, out *pipeline.Emitter) error {
	chunk, ok := pkt.Value.([]int)
	if !ok {
		return fmt.Errorf("countsamps: summarizer got %T, want []int", pkt.Value)
	}
	if n := s.size(); n != s.sketch.Footprint() {
		s.sketch.SetFootprint(n)
	}
	for _, v := range chunk {
		s.sketch.Observe(v)
		s.since++
		if s.since >= s.cfg.FlushEvery {
			if err := s.flush(ctx, out); err != nil {
				return err
			}
		}
	}
	ctx.ChargeCompute(time.Duration(len(chunk)) * s.cfg.Cost.SummaryPerItem)
	return nil
}

// Finish flushes the final summary.
func (s *Summarizer) Finish(ctx *pipeline.Context, out *pipeline.Emitter) error {
	return s.flush(ctx, out)
}

func (s *Summarizer) flush(ctx *pipeline.Context, out *pipeline.Emitter) error {
	s.since = 0
	sm := &Summary{
		SourceInstance: ctx.Instance(),
		Entries:        s.sketch.TopK(s.size()),
		Span:           s.sketch.Observed(),
	}
	return out.Emit(pipeline.NewPacket(sm, len(sm.Entries), sm.WireSize(s.cfg.Cost.EntryWireSize)))
}

// summarizerWire is the Summarizer's serialized migration state. The
// adjustment parameter is not part of it: the parameter object lives with
// the stage's adaptation controller, which survives a migration in place.
type summarizerWire struct {
	Since  int             `json:"since"`
	Sketch json.RawMessage `json:"sketch"`
}

// Snapshot implements pipeline.Snapshotter: it captures the sketch
// (including its RNG position) and the flush countdown, so a migrated
// summarizer continues producing the exact summaries an unmoved one would.
func (s *Summarizer) Snapshot() ([]byte, error) {
	if s.sketch == nil {
		return nil, fmt.Errorf("countsamps: summarizer snapshot before Init")
	}
	sk, err := s.sketch.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return json.Marshal(summarizerWire{Since: s.since, Sketch: sk})
}

// Restore implements pipeline.Snapshotter.
func (s *Summarizer) Restore(data []byte) error {
	var w summarizerWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("countsamps: restore summarizer: %w", err)
	}
	if s.sketch == nil {
		s.sketch = NewSketch(1, 0)
	}
	if err := s.sketch.UnmarshalBinary(w.Sketch); err != nil {
		return err
	}
	s.since = w.Since
	return nil
}

// RawCounter is the centralized version's analysis stage: one
// counting-samples sketch over the union stream, fed with raw items.
type RawCounter struct {
	// Cost is the application cost model.
	Cost CostModel
	// Footprint is the central sketch's capacity (default 1000).
	Footprint int
	// Seed makes the sketch reproducible.
	Seed int64

	mu     sync.Mutex
	sketch *Sketch
}

// Init implements pipeline.Processor.
func (r *RawCounter) Init(*pipeline.Context) error {
	if r.Footprint == 0 {
		r.Footprint = 1000
	}
	r.mu.Lock()
	r.sketch = NewSketch(r.Footprint, r.Seed)
	r.mu.Unlock()
	return nil
}

// Process implements pipeline.Processor.
func (r *RawCounter) Process(ctx *pipeline.Context, pkt *pipeline.Packet, _ *pipeline.Emitter) error {
	chunk, ok := pkt.Value.([]int)
	if !ok {
		return fmt.Errorf("countsamps: raw counter got %T, want []int", pkt.Value)
	}
	r.mu.Lock()
	for _, v := range chunk {
		r.sketch.Observe(v)
	}
	r.mu.Unlock()
	ctx.ChargeCompute(time.Duration(len(chunk)) * r.Cost.CentralPerItem)
	return nil
}

// Finish implements pipeline.Processor.
func (r *RawCounter) Finish(*pipeline.Context, *pipeline.Emitter) error { return nil }

// TopK answers the continuous query from the central sketch.
func (r *RawCounter) TopK(k int) []workload.ValueCount {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sketch == nil {
		return nil
	}
	return r.sketch.TopK(k)
}

// SummaryMerger folds the newest summary from each upstream into a running
// estimate. As the final stage it answers the top-k query; configured with
// RelayTopN it also works as an intermediate (regional) stage — the paper's
// "more than two stages" case — re-emitting its merged top-N upward so that
// one aggregated stream crosses the wide-area link instead of one stream
// per source.
type SummaryMerger struct {
	// Cost is the application cost model.
	Cost CostModel
	// RelayTopN, when positive, re-emits the merged top-N as a new
	// cumulative summary (making this an intermediate stage).
	RelayTopN int
	// RelayEvery batches relays: one upward summary per this many
	// received summaries (default: every receipt).
	RelayEvery int

	mu       sync.Mutex
	merger   *Merger
	received int
}

// Init implements pipeline.Processor.
func (m *SummaryMerger) Init(*pipeline.Context) error {
	m.mu.Lock()
	m.merger = NewMerger()
	m.mu.Unlock()
	return nil
}

// Process implements pipeline.Processor.
func (m *SummaryMerger) Process(ctx *pipeline.Context, pkt *pipeline.Packet, out *pipeline.Emitter) error {
	sm, ok := pkt.Value.(*Summary)
	if !ok {
		return fmt.Errorf("countsamps: merger got %T, want *Summary", pkt.Value)
	}
	m.mu.Lock()
	m.merger.AddSummary(sm)
	m.received++
	relay := m.relayDue()
	m.mu.Unlock()
	ctx.ChargeCompute(time.Duration(len(sm.Entries)) * m.Cost.MergePerEntry)
	if relay {
		return m.relay(ctx, out)
	}
	return nil
}

// Finish implements pipeline.Processor: an intermediate merger flushes its
// final aggregate upward.
func (m *SummaryMerger) Finish(ctx *pipeline.Context, out *pipeline.Emitter) error {
	if m.RelayTopN <= 0 {
		return nil
	}
	return m.relay(ctx, out)
}

func (m *SummaryMerger) relayDue() bool {
	if m.RelayTopN <= 0 {
		return false
	}
	every := m.RelayEvery
	if every < 1 {
		every = 1
	}
	return m.received%every == 0
}

// relay re-emits the merged top-N as a cumulative summary whose span is the
// total coverage of this merger's region, so the global merger's
// latest-wins rule applies across relays.
func (m *SummaryMerger) relay(ctx *pipeline.Context, out *pipeline.Emitter) error {
	m.mu.Lock()
	sm := &Summary{
		SourceInstance: ctx.Instance(),
		Entries:        m.merger.TopK(m.RelayTopN),
		Span:           m.merger.TotalSpan(),
	}
	m.mu.Unlock()
	return out.Emit(pipeline.NewPacket(sm, len(sm.Entries), sm.WireSize(m.Cost.EntryWireSize)))
}

// TopK answers the continuous query from the merged summaries.
func (m *SummaryMerger) TopK(k int) []workload.ValueCount {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.merger == nil {
		return nil
	}
	return m.merger.TopK(k)
}

// Sources reports how many sub-streams have delivered summaries.
func (m *SummaryMerger) Sources() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.merger == nil {
		return 0
	}
	return m.merger.Sources()
}
