package countsamps

import (
	"testing"
	"testing/quick"

	"github.com/gates-middleware/gates/internal/metrics"
	"github.com/gates-middleware/gates/internal/workload"
)

func TestNewSketchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSketch(0) did not panic")
		}
	}()
	NewSketch(0, 1)
}

func TestSketchExactWhileUnderFootprint(t *testing.T) {
	s := NewSketch(100, 1)
	stream := []int{1, 1, 2, 3, 3, 3}
	for _, v := range stream {
		s.Observe(v)
	}
	// τ stays 1 (no overflow), so every value is tracked exactly.
	if s.Tau() != 1 {
		t.Fatalf("τ = %v, want 1", s.Tau())
	}
	want := map[int]float64{1: 2, 2: 1, 3: 3}
	for v, c := range want {
		est, ok := s.Estimate(v)
		if !ok {
			t.Fatalf("value %d not tracked", v)
		}
		if est != c+EstimateBias { // τ=1 bias
			t.Fatalf("Estimate(%d) = %v, want %v", v, est, c+EstimateBias)
		}
	}
	if _, ok := s.Estimate(99); ok {
		t.Fatal("untracked value has an estimate")
	}
	if s.Observed() != uint64(len(stream)) {
		t.Fatalf("Observed = %d, want %d", s.Observed(), len(stream))
	}
}

func TestSketchFootprintBound(t *testing.T) {
	s := NewSketch(10, 42)
	for _, v := range workload.Take(workload.NewUniform(1, 10_000), 20_000) {
		s.Observe(v)
		if s.Len() > 10 {
			t.Fatalf("sketch grew to %d entries with footprint 10", s.Len())
		}
	}
	if s.Tau() <= 1 {
		t.Fatal("τ never rose despite constant overflow")
	}
}

func TestSketchSetFootprintShrinks(t *testing.T) {
	s := NewSketch(100, 7)
	for _, v := range workload.Take(workload.NewUniform(2, 1000), 5_000) {
		s.Observe(v)
	}
	s.SetFootprint(5)
	if s.Len() > 5 {
		t.Fatalf("Len = %d after SetFootprint(5)", s.Len())
	}
	s.SetFootprint(0) // clamps to 1
	if s.Footprint() != 1 {
		t.Fatalf("Footprint = %d, want 1", s.Footprint())
	}
}

func TestSketchTopKOrdering(t *testing.T) {
	s := NewSketch(100, 1)
	for v, n := range map[int]int{1: 50, 2: 30, 3: 10} {
		for i := 0; i < n; i++ {
			s.Observe(v)
		}
	}
	top := s.TopK(2)
	if len(top) != 2 || top[0].Value != 1 || top[1].Value != 2 {
		t.Fatalf("TopK = %v", top)
	}
	if got := s.TopK(100); len(got) != 3 {
		t.Fatalf("TopK(100) = %v", got)
	}
}

func TestSketchAccuracyOnZipf(t *testing.T) {
	stream := workload.Take(workload.NewZipf(11, 1.3, 50_000), 25_000)
	s := NewSketch(100, 3)
	for _, v := range stream {
		s.Observe(v)
	}
	acc := metrics.TopKAccuracy(workload.Counts(stream), s.TopK(10), 10)
	if acc.Membership < 0.8 {
		t.Fatalf("membership %v too low for footprint 100 on Zipf", acc.Membership)
	}
	if acc.Frequency < 0.7 {
		t.Fatalf("frequency fidelity %v too low", acc.Frequency)
	}
}

// Property: a tracked value's raw sampled count never exceeds its true
// occurrence count (counts are exact from admission onward), and Len never
// exceeds the footprint.
func TestSketchCountUpperBoundProperty(t *testing.T) {
	f := func(raw []uint8, fpRaw uint8, seed int64) bool {
		fp := int(fpRaw%20) + 1
		s := NewSketch(fp, seed)
		truth := map[int]int{}
		for _, r := range raw {
			v := int(r % 32)
			truth[v]++
			s.Observe(v)
			if s.Len() > fp {
				return false
			}
		}
		for _, vc := range s.TopK(fp) {
			rawCount := vc.Count - EstimateBias*s.Tau()
			if rawCount > float64(truth[vc.Value])+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryWireSize(t *testing.T) {
	sm := &Summary{Entries: make([]workload.ValueCount, 5)}
	if got := sm.WireSize(100); got != 532 {
		t.Fatalf("WireSize = %d, want 532", got)
	}
	if sm.String() == "" {
		t.Fatal("empty String")
	}
}

func TestMergerSupersedesPerSource(t *testing.T) {
	m := NewMerger()
	m.AddSummary(&Summary{SourceInstance: 0, Span: 100,
		Entries: []workload.ValueCount{{Value: 1, Count: 10}}})
	m.AddSummary(&Summary{SourceInstance: 0, Span: 200,
		Entries: []workload.ValueCount{{Value: 1, Count: 25}}})
	top := m.TopK(1)
	if top[0].Count != 25 {
		t.Fatalf("newer summary did not supersede: %v", top)
	}
	// A stale (smaller-span) summary must be ignored.
	m.AddSummary(&Summary{SourceInstance: 0, Span: 150,
		Entries: []workload.ValueCount{{Value: 1, Count: 99}}})
	if m.TopK(1)[0].Count != 25 {
		t.Fatal("stale summary overwrote newer state")
	}
	if m.Sources() != 1 {
		t.Fatalf("Sources = %d, want 1", m.Sources())
	}
}

func TestMergerSumsAcrossSources(t *testing.T) {
	m := NewMerger()
	m.AddSummary(&Summary{SourceInstance: 0, Span: 10,
		Entries: []workload.ValueCount{{Value: 7, Count: 4}}})
	m.AddSummary(&Summary{SourceInstance: 1, Span: 10,
		Entries: []workload.ValueCount{{Value: 7, Count: 6}, {Value: 8, Count: 1}}})
	top := m.TopK(2)
	if top[0].Value != 7 || top[0].Count != 10 {
		t.Fatalf("cross-source sum wrong: %v", top)
	}
	if m.Distinct() != 2 {
		t.Fatalf("Distinct = %d, want 2", m.Distinct())
	}
}

func TestMergerRawPath(t *testing.T) {
	m := NewMerger()
	for i := 0; i < 5; i++ {
		m.AddRaw(3)
	}
	m.AddRaw(4)
	top := m.TopK(10)
	if top[0].Value != 3 || top[0].Count != 5 {
		t.Fatalf("raw totals wrong: %v", top)
	}
}

// Property: merging k single-source summaries yields totals equal to the
// sum of entries per value.
func TestMergerSumProperty(t *testing.T) {
	f := func(counts []uint8) bool {
		m := NewMerger()
		want := map[int]float64{}
		for i, c := range counts {
			v := i % 8
			e := []workload.ValueCount{{Value: v, Count: float64(c)}}
			m.AddSummary(&Summary{SourceInstance: i, Span: 1, Entries: e})
			want[v] += float64(c)
		}
		for _, vc := range m.TopK(100) {
			if want[vc.Value] != vc.Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
