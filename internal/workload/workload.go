// Package workload generates the synthetic input streams used by the
// evaluation.
//
// The paper's count-samps experiments use streams of integers whose
// frequency distribution makes "top 10 most frequently occurring values" a
// meaningful query; its comp-steer experiments use a byte stream produced at
// a controlled rate by a running simulation. Neither distribution is
// specified in the paper, so this package provides seeded, reproducible
// generators: Zipf (heavy-tailed, the standard choice for frequent-item
// workloads), uniform, and hotspot (a uniform background with a small hot
// set), plus helpers for ground-truth accounting.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// IntGenerator produces an integer stream.
type IntGenerator interface {
	// Next returns the next stream value.
	Next() int
}

// Zipf generates Zipf-distributed values in [0, N). Skew s > 1; larger is
// more skewed.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a seeded Zipf generator over n distinct values with
// exponent s (must be > 1).
func NewZipf(seed int64, s float64, n uint64) *Zipf {
	if s <= 1 {
		panic(fmt.Sprintf("workload: Zipf exponent %v must be > 1", s))
	}
	if n < 1 {
		panic("workload: Zipf needs at least one value")
	}
	return &Zipf{z: rand.NewZipf(rand.New(rand.NewSource(seed)), s, 1, n-1)}
}

// Next implements IntGenerator.
func (g *Zipf) Next() int { return int(g.z.Uint64()) }

// Uniform generates uniformly distributed values in [0, N).
type Uniform struct {
	rng *rand.Rand
	n   int
}

// NewUniform returns a seeded uniform generator over n distinct values.
func NewUniform(seed int64, n int) *Uniform {
	if n < 1 {
		panic("workload: Uniform needs at least one value")
	}
	return &Uniform{rng: rand.New(rand.NewSource(seed)), n: n}
}

// Next implements IntGenerator.
func (g *Uniform) Next() int { return g.rng.Intn(g.n) }

// Hotspot draws from a small hot set with probability p and uniformly from
// [hot, n) otherwise.
type Hotspot struct {
	rng *rand.Rand
	hot int
	n   int
	p   float64
}

// NewHotspot returns a seeded hotspot generator: hot values 0..hot-1 receive
// fraction p of the stream.
func NewHotspot(seed int64, hot, n int, p float64) *Hotspot {
	if hot < 1 || n <= hot {
		panic("workload: Hotspot needs 1 <= hot < n")
	}
	if p <= 0 || p >= 1 {
		panic("workload: Hotspot probability must be in (0,1)")
	}
	return &Hotspot{rng: rand.New(rand.NewSource(seed)), hot: hot, n: n, p: p}
}

// Next implements IntGenerator.
func (g *Hotspot) Next() int {
	if g.rng.Float64() < g.p {
		return g.rng.Intn(g.hot)
	}
	return g.hot + g.rng.Intn(g.n-g.hot)
}

// Take materializes the next n values of a generator.
func Take(g IntGenerator, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Counts tallies value frequencies in a stream.
func Counts(stream []int) map[int]int {
	m := make(map[int]int)
	for _, v := range stream {
		m[v]++
	}
	return m
}

// MergeCounts sums several frequency maps — the ground truth for a
// distributed stream whose sub-streams arrive at different places.
func MergeCounts(parts ...map[int]int) map[int]int {
	out := make(map[int]int)
	for _, p := range parts {
		for v, c := range p {
			out[v] += c
		}
	}
	return out
}

// ValueCount pairs a stream value with its (true or estimated) frequency.
type ValueCount struct {
	Value int
	Count float64
}

// TopK returns the k most frequent values in a count map, ties broken by
// smaller value for determinism.
func TopK(counts map[int]int, k int) []ValueCount {
	all := make([]ValueCount, 0, len(counts))
	for v, c := range counts {
		all = append(all, ValueCount{Value: v, Count: float64(c)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Value < all[j].Value
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}
