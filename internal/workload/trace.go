package workload

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteTrace serializes an integer stream, one value per line — the
// interchange format for replaying captured streams (connection logs,
// instrument readings) through the synthetic-workload machinery.
func WriteTrace(w io.Writer, stream []int) error {
	bw := bufio.NewWriter(w)
	for _, v := range stream {
		if _, err := fmt.Fprintln(bw, v); err != nil {
			return fmt.Errorf("workload: write trace: %w", err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a stream written by WriteTrace. Blank lines and lines
// starting with '#' are skipped, so traces can carry comments.
func ReadTrace(r io.Reader) ([]int, error) {
	var out []int
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if len(text) == 0 || text[0] == '#' {
			continue
		}
		v, err := strconv.Atoi(text)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: read trace: %w", err)
	}
	return out, nil
}

// SaveTrace writes a stream to a file.
func SaveTrace(path string, stream []int) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("workload: save trace: %w", err)
	}
	defer f.Close()
	if err := WriteTrace(f, stream); err != nil {
		return err
	}
	return f.Close()
}

// LoadTrace reads a stream from a file.
func LoadTrace(path string) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: load trace: %w", err)
	}
	defer f.Close()
	return ReadTrace(f)
}

// Replay wraps a materialized stream as an IntGenerator, cycling when it
// reaches the end. It panics on an empty stream: replaying nothing is a
// caller bug.
type Replay struct {
	stream []int
	pos    int
}

// NewReplay returns a generator that replays stream in order, wrapping
// around at the end.
func NewReplay(stream []int) *Replay {
	if len(stream) == 0 {
		panic("workload: NewReplay with empty stream")
	}
	return &Replay{stream: stream}
}

// Next implements IntGenerator.
func (r *Replay) Next() int {
	v := r.stream[r.pos]
	r.pos++
	if r.pos == len(r.stream) {
		r.pos = 0
	}
	return v
}
