package workload

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(1, 1.0, 100) },
		func() { NewZipf(1, 1.5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad Zipf args did not panic")
				}
			}()
			f()
		}()
	}
}

func TestZipfDeterministicAndSkewed(t *testing.T) {
	a := Take(NewZipf(42, 1.3, 10_000), 5_000)
	b := Take(NewZipf(42, 1.3, 10_000), 5_000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
	counts := Counts(a)
	// Zipf: value 0 must dominate.
	top := TopK(counts, 1)
	if top[0].Value != 0 {
		t.Fatalf("most frequent Zipf value = %d, want 0", top[0].Value)
	}
	if top[0].Count < float64(len(a))/10 {
		t.Fatalf("top value has %v occurrences, not skewed", top[0].Count)
	}
}

func TestZipfRange(t *testing.T) {
	const n = 50
	for _, v := range Take(NewZipf(7, 2.0, n), 10_000) {
		if v < 0 || v >= n {
			t.Fatalf("Zipf value %d out of [0,%d)", v, n)
		}
	}
}

func TestUniformRangeAndSpread(t *testing.T) {
	const n = 10
	counts := Counts(Take(NewUniform(1, n), 10_000))
	if len(counts) != n {
		t.Fatalf("uniform over %d values produced %d distinct", n, len(counts))
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("uniform value %d occurred %d times, want ~1000", v, c)
		}
	}
}

func TestUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewUniform(_, 0) did not panic")
		}
	}()
	NewUniform(1, 0)
}

func TestHotspotConcentration(t *testing.T) {
	g := NewHotspot(5, 5, 1000, 0.8)
	stream := Take(g, 10_000)
	hot := 0
	for _, v := range stream {
		if v < 5 {
			hot++
		}
	}
	if hot < 7_500 || hot > 8_500 {
		t.Fatalf("hot fraction %d/10000, want ~8000", hot)
	}
}

func TestHotspotPanics(t *testing.T) {
	cases := []func(){
		func() { NewHotspot(1, 0, 10, 0.5) },
		func() { NewHotspot(1, 10, 10, 0.5) },
		func() { NewHotspot(1, 1, 10, 0) },
		func() { NewHotspot(1, 1, 10, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCountsAndMerge(t *testing.T) {
	a := Counts([]int{1, 1, 2})
	b := Counts([]int{2, 3})
	m := MergeCounts(a, b)
	if m[1] != 2 || m[2] != 2 || m[3] != 1 {
		t.Fatalf("merged = %v", m)
	}
}

func TestTopKOrderingAndTies(t *testing.T) {
	counts := map[int]int{5: 10, 3: 10, 9: 20, 1: 5}
	top := TopK(counts, 3)
	if top[0].Value != 9 || top[1].Value != 3 || top[2].Value != 5 {
		t.Fatalf("TopK = %v (ties must break by smaller value)", top)
	}
	if got := TopK(counts, 100); len(got) != 4 {
		t.Fatalf("TopK beyond size returned %d", len(got))
	}
}

// Property: MergeCounts of a split stream equals Counts of the whole stream.
func TestMergeEqualsWholeProperty(t *testing.T) {
	f := func(stream []uint8, cut uint8) bool {
		vals := make([]int, len(stream))
		for i, v := range stream {
			vals[i] = int(v % 16)
		}
		c := int(cut) % (len(vals) + 1)
		merged := MergeCounts(Counts(vals[:c]), Counts(vals[c:]))
		whole := Counts(vals)
		if len(merged) != len(whole) {
			return false
		}
		for v, n := range whole {
			if merged[v] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: TopK counts are non-increasing.
func TestTopKMonotoneProperty(t *testing.T) {
	f := func(stream []uint8) bool {
		vals := make([]int, len(stream))
		for i, v := range stream {
			vals[i] = int(v % 32)
		}
		top := TopK(Counts(vals), 10)
		for i := 1; i < len(top); i++ {
			if top[i].Count > top[i-1].Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	stream := Take(NewZipf(3, 1.5, 1000), 500)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, stream); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(stream) {
		t.Fatalf("round trip length %d, want %d", len(back), len(stream))
	}
	for i := range stream {
		if back[i] != stream[i] {
			t.Fatalf("value %d: %d != %d", i, back[i], stream[i])
		}
	}
}

func TestTraceCommentsAndBlanks(t *testing.T) {
	in := "# captured 2004-06-07\n1\n\n2\n# gap\n3\n"
	got, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("parsed %v", got)
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("1\nnope\n")); err == nil {
		t.Fatal("garbage line parsed")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.trace")
	stream := []int{5, 4, 3, 2, 1}
	if err := SaveTrace(path, stream); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 5 || back[0] != 5 || back[4] != 1 {
		t.Fatalf("loaded %v", back)
	}
	if _, err := LoadTrace(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestReplayCycles(t *testing.T) {
	r := NewReplay([]int{7, 8})
	got := Take(r, 5)
	want := []int{7, 8, 7, 8, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay = %v, want %v", got, want)
		}
	}
}

func TestReplayEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewReplay(nil) did not panic")
		}
	}()
	NewReplay(nil)
}
