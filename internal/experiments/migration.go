package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"github.com/gates-middleware/gates/internal/apps/countsamps"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/grid"
	"github.com/gates-middleware/gates/internal/metrics"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/service"
)

// Migration experiment: live re-deployment under a mid-run network
// degradation.
//
// The distributed count-samps application runs with one summarizer near
// each source. Partway through, the link from the first source node to the
// central node collapses to a tenth of its bandwidth — the kind of grid
// condition change §1 says the middleware must adapt to. A static
// deployment can only push its summaries through the collapsed link; a
// deployment watched by a Rebalancer migrates the affected summarizer to a
// well-connected helper node mid-stream (state, queue and wiring move with
// it) and its throughput recovers. Accuracy must not suffer: the migrated
// sketch serializes its RNG position, so it produces the same summaries it
// would have produced in place.

// MigrationRow is one deployment mode's measurements.
type MigrationRow struct {
	// Mode is "static" or "migrating".
	Mode string
	// Seconds is the virtual completion time of the whole application.
	Seconds float64
	// Accuracy is the final top-10 membership accuracy at the merger.
	Accuracy float64
	// Migrations is how many instances moved (0 for static).
	Migrations int
	// PostCollapseRate is the affected summarizer's consumption rate
	// (items/s) from the bandwidth collapse until it finished its stream.
	PostCollapseRate float64
	// Trace is the affected summarizer's cumulative consumed items.
	Trace *metrics.TimeSeries
}

// MigrationResult compares the static and migrating deployments.
type MigrationResult struct {
	// CollapseS is when (virtual seconds) the bandwidth collapsed.
	CollapseS float64
	Rows      []MigrationRow
}

// ExpMigration runs the distributed count-samps application through a
// 10x bandwidth collapse on the first source's uplink, with and without a
// Rebalancer allowed to re-deploy summarizers.
func ExpMigration(cfg Config) (*MigrationResult, error) {
	collapseAt := 60 * time.Second
	if cfg.Quick {
		collapseAt = 15 * time.Second
	}
	res := &MigrationResult{CollapseS: collapseAt.Seconds()}
	rows := make([]MigrationRow, 2)
	err := forEach(cfg.parallelism(), 2, func(i int) error {
		row, err := runMigration(cfg, collapseAt, i == 1)
		if err != nil {
			return err
		}
		rows[i] = *row
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// runMigration executes one deployment mode.
func runMigration(cfg Config, collapseAt time.Duration, migrating bool) (*MigrationRow, error) {
	const (
		baseBW      = 10 * 1024   // healthy inter-node bandwidth
		fastBW      = 1 << 20     // source <-> helper LAN
		collapsedBW = baseBW / 10 // the degraded uplink
		sources     = 4
	)
	clk := clock.NewScaled(cfg.scale(2000))
	cost := countsamps.DefaultCostModel()
	items := 25_000
	if cfg.Quick {
		items = 6_000
	}
	streams, truth := zipfStreams(cfg.seed(), sources, items)

	// Fabric: one node per sub-stream, a well-connected helper with no
	// special role, and the central node. Everything talks at baseBW
	// except the source-to-helper LAN.
	dir := grid.NewDirectory()
	for i := 0; i < sources; i++ {
		if err := dir.Register(grid.Node{
			Name: fmt.Sprintf("src-%d", i+1), CPUPower: 1, MemoryMB: 512, Slots: 2,
			Sources: []string{fmt.Sprintf("stream-%d", i+1)},
		}); err != nil {
			return nil, err
		}
	}
	if err := dir.Register(grid.Node{Name: "helper", CPUPower: 1, MemoryMB: 512, Slots: 4}); err != nil {
		return nil, err
	}
	if err := dir.Register(grid.Node{Name: "central", CPUPower: 4, MemoryMB: 4096, Slots: 4}); err != nil {
		return nil, err
	}
	net := netsim.NewNetwork(clk)
	net.SetDefaultLink(netsim.LinkConfig{Bandwidth: baseBW, Quantum: time.Second})
	for i := 0; i < sources; i++ {
		src := fmt.Sprintf("src-%d", i+1)
		net.InstallLink(src, "helper", netsim.NewLink(clk, netsim.LinkConfig{Bandwidth: fastBW, Quantum: time.Second}))
		net.InstallLink("helper", src, netsim.NewLink(clk, netsim.LinkConfig{Bandwidth: fastBW, Quantum: time.Second}))
	}
	uplink := net.Link("src-1", "central")

	repo := service.NewRepository()
	merger := &countsamps.SummaryMerger{Cost: cost}
	if err := repo.RegisterSource("countsamps/stream", func(inst int) pipeline.Source {
		return &countsamps.StreamSource{Values: streams[inst], Batch: 25, ItemWireSize: cost.ItemWireSize}
	}); err != nil {
		return nil, err
	}
	if err := repo.RegisterProcessor("countsamps/summarize", func(inst int) pipeline.Processor {
		return countsamps.NewSummarizer(countsamps.SummarizerConfig{
			Cost:        cost,
			FlushEvery:  1000,
			SummarySize: 100,
			Seed:        cfg.seed() + int64(inst),
		})
	}); err != nil {
		return nil, err
	}
	if err := repo.RegisterProcessor("countsamps/merge", func(int) pipeline.Processor {
		return merger
	}); err != nil {
		return nil, err
	}

	dep, err := service.NewDeployer(clk, dir, repo, net)
	if err != nil {
		return nil, err
	}
	launcher, err := service.NewLauncher(dep)
	if err != nil {
		return nil, err
	}
	tuning := func(stageID string, _ int) pipeline.StageConfig {
		switch stageID {
		case "stream":
			return pipeline.StageConfig{DisableAdaptation: true, ComputeQuantum: time.Second}
		default:
			return pipeline.StageConfig{
				QueueCapacity: 50, DisableAdaptation: true, ComputeQuantum: time.Second,
			}
		}
	}

	sw := clock.NewStopwatch(clk)
	app, err := launcher.LaunchConfig(context.Background(), countSampsConfig(csDistributed, sources), tuning)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The mid-run event: the first source's uplink loses 10x bandwidth.
	go func() {
		select {
		case <-clk.After(collapseAt):
			uplink.SetBandwidth(collapsedBW)
		case <-ctx.Done():
		}
	}()

	var reb *service.Rebalancer
	if migrating {
		reb = service.NewRebalancer(app.Deployment, service.RebalancerConfig{
			Interval:  2 * time.Second,
			Threshold: 2,
			Stages:    []string{"summarize"},
		})
		go reb.Run(ctx)
	}

	// Sample the affected summarizer's cumulative consumption.
	trace := metrics.NewTimeSeriesAt(clk.Now())
	affected, _ := app.Stage("summarize", 0)
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-clk.After(2 * time.Second):
				trace.Record(clk.Now(), float64(affected.Stats().ItemsIn))
			}
		}
	}()

	if err := app.Wait(); err != nil {
		return nil, err
	}
	cancel()
	trace.Record(clk.Now(), float64(affected.Stats().ItemsIn))

	row := &MigrationRow{
		Mode:             "static",
		Seconds:          secondsOf(sw.Elapsed()),
		Accuracy:         metrics.TopKAccuracy(truth, merger.TopK(10), 10).Membership,
		PostCollapseRate: postCollapseRate(trace, collapseAt),
		Trace:            trace,
	}
	if migrating {
		row.Mode = "migrating"
		row.Migrations = reb.Migrations()
	}
	return row, nil
}

// postCollapseRate computes the consumption rate from the collapse until
// the summarizer finished its stream (its cumulative trace stops growing).
func postCollapseRate(ts *metrics.TimeSeries, collapseAt time.Duration) float64 {
	pts := ts.Points()
	if len(pts) < 2 {
		return 0
	}
	final := pts[len(pts)-1].V
	start, end := -1, -1
	for i, p := range pts {
		if start < 0 && p.T >= collapseAt {
			start = i
		}
		if end < 0 && p.V >= final {
			end = i
		}
	}
	if start < 0 || end <= start {
		return 0
	}
	dt := (pts[end].T - pts[start].T).Seconds()
	if dt <= 0 {
		return 0
	}
	return (pts[end].V - pts[start].V) / dt
}

// Render prints the comparison table.
func (r *MigrationResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Extension: live re-deployment under a mid-run bandwidth collapse")
	fmt.Fprintf(w, "  [src-1 -> central drops 10x at t=%.0fs; the rebalancer may move the affected summarizer]\n", r.CollapseS)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Mode\tTime (s)\tAccuracy\tMigrations\tPost-collapse rate (items/s)")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.3f\t%d\t%.1f\n",
			row.Mode, row.Seconds, row.Accuracy, row.Migrations, row.PostCollapseRate)
	}
	tw.Flush()
}
