package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/apps/compsteer"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/grid"
	"github.com/gates-middleware/gates/internal/metrics"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/service"
)

// steerParams configures one comp-steer run.
type steerParams struct {
	cfg Config
	// genRate is the simulation's data generation rate (bytes/s).
	genRate int
	// packetBytes is the mesh-update granularity.
	packetBytes int
	// costPerByte is the analysis cost.
	costPerByte time.Duration
	// linkBW constrains the sampler->analysis link (0 = unconstrained).
	linkBW int64
	// initialRate seeds the sampling factor.
	initialRate float64
	// duration is the simulation length (virtual).
	duration time.Duration
	// adaptOverride mutates the sampler's adaptation options (ablations).
	adaptOverride func(*adapt.Options)
	// adaptInterval overrides the observation interval (0 = 500ms).
	adaptInterval time.Duration
}

// steerResult is one run's outcome.
type steerResult struct {
	// Trace is the sampling factor over virtual time.
	Trace *metrics.TimeSeries
	// Converged is the settled value: the trace mean over the final
	// steady window of the generation period.
	Converged float64
}

// runCompSteer deploys one comp-steer pipeline (simulation node → analysis
// node) through the middleware stack and records the sampling factor the
// middleware chooses over time.
func runCompSteer(p steerParams) (*steerResult, error) {
	// Quick mode does not shrink these runs: convergence from the
	// paper's initial rates needs the full window, and a 300-virtual-
	// second run is only ~1 wall second at the default scale.
	scale := p.cfg.scale(300)
	if p.adaptInterval == 0 {
		p.adaptInterval = 500 * time.Millisecond
	}
	clk := clock.NewScaled(scale)

	dir := grid.NewDirectory()
	if err := dir.Register(grid.Node{
		Name: "sim-node", CPUPower: 2, MemoryMB: 2048, Slots: 2,
		Sources: []string{"mesh"},
	}); err != nil {
		return nil, err
	}
	if err := dir.Register(grid.Node{Name: "analysis-node", CPUPower: 2, MemoryMB: 2048}); err != nil {
		return nil, err
	}
	net := netsim.NewNetwork(clk)
	net.Connect("sim-node", "analysis-node", netsim.LinkConfig{
		Bandwidth: p.linkBW, Quantum: 100 * time.Millisecond,
	})

	spec := compsteer.DefaultSamplerSpec()
	spec.Initial = p.initialRate

	repo := service.NewRepository()
	if err := repo.RegisterSource("compsteer/sim", func(int) pipeline.Source {
		return &compsteer.SimulationSource{
			GenRate: p.genRate, Duration: p.duration, PacketBytes: p.packetBytes,
		}
	}); err != nil {
		return nil, err
	}
	if err := repo.RegisterProcessor("compsteer/sampler", func(int) pipeline.Processor {
		return &compsteer.Sampler{Spec: spec}
	}); err != nil {
		return nil, err
	}
	if err := repo.RegisterProcessor("compsteer/analyzer", func(int) pipeline.Processor {
		return &compsteer.Analyzer{CostPerByte: p.costPerByte}
	}); err != nil {
		return nil, err
	}

	appCfg := &service.AppConfig{
		Name: "comp-steer",
		Stages: []service.StageDef{
			{ID: "sim", Code: "compsteer/sim", Source: true, NearSources: []string{"mesh"}},
			{ID: "sampler", Code: "compsteer/sampler", NearSources: []string{"mesh"}},
			{ID: "analysis", Code: "compsteer/analyzer", Requirement: service.ReqDef{Site: ""}},
		},
		Connections: []service.ConnDef{
			{From: "sim", To: "sampler"},
			{From: "sampler", To: "analysis"},
		},
	}

	trace := metrics.NewTimeSeriesAt(clk.Now())
	adaptOpts := func(capacity int) adapt.Options {
		o := adapt.Options{Capacity: capacity}
		if p.adaptOverride != nil {
			o = adapt.Defaults(capacity)
			p.adaptOverride(&o)
		}
		return o
	}
	tuning := func(stageID string, _ int) pipeline.StageConfig {
		switch stageID {
		case "sim":
			return pipeline.StageConfig{
				DisableAdaptation: true,
				ComputeQuantum:    100 * time.Millisecond,
			}
		case "sampler":
			return pipeline.StageConfig{
				QueueCapacity: 100,
				Adapt:         adaptOpts(100),
				AdaptInterval: p.adaptInterval,
				AdjustEvery:   2,
				OnAdjust: func(_ *pipeline.Stage, now time.Time, adjs []adapt.Adjustment) {
					for _, a := range adjs {
						trace.Record(now, a.New)
					}
				},
			}
		default: // analysis
			return pipeline.StageConfig{
				QueueCapacity:  50,
				Adapt:          adaptOpts(50),
				AdaptInterval:  p.adaptInterval,
				AdjustEvery:    2,
				ComputeQuantum: 200 * time.Millisecond,
			}
		}
	}

	dep, err := service.NewDeployer(clk, dir, repo, net)
	if err != nil {
		return nil, err
	}
	launcher, err := service.NewLauncher(dep)
	if err != nil {
		return nil, err
	}
	app, err := launcher.LaunchConfig(context.Background(), appCfg, tuning)
	if err != nil {
		return nil, err
	}
	if err := app.Wait(); err != nil {
		return nil, fmt.Errorf("comp-steer run: %w", err)
	}

	// "Converged" reads the steady tail of the generation window,
	// excluding the end-of-stream drain.
	from := p.duration * 6 / 10
	return &steerResult{
		Trace:     trace,
		Converged: trace.WindowMean(from, p.duration),
	}, nil
}
