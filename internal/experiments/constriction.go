package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// ConstrictionResult is the attribution-engine validation experiment: a
// pipeline with one deliberately slow stage, run to completion, then handed
// to obs.Attribution — which must name the injected bottleneck.
type ConstrictionResult struct {
	// Items is how many packets the source pushed through the constriction.
	Items int `json:"items"`
	// SleepPerPacket is the wall-clock service time injected into the slow
	// stage.
	SleepPerPacket time.Duration `json:"sleepPerPacket"`
	// Expected and Named are the injected and attributed bottleneck stage
	// ids; the experiment passes when they match.
	Expected string `json:"expected"`
	Named    string `json:"named"`
	// Report is the full ranked verdict the engine produced.
	Report *obs.AttributionReport `json:"report"`
}

// constrictProc burns real wall time per packet — the deterministic slow
// stage. Wall, not virtual: the attribution engine's stall counters are
// wall-clock, so the injected service time must be too.
type constrictProc struct{ sleep time.Duration }

func (constrictProc) Init(*pipeline.Context) error { return nil }
func (p constrictProc) Process(_ *pipeline.Context, pkt *pipeline.Packet, out *pipeline.Emitter) error {
	time.Sleep(p.sleep)
	return out.Emit(pkt)
}
func (constrictProc) Finish(*pipeline.Context, *pipeline.Emitter) error { return nil }

// ExpConstriction runs src → relay → constrict → sink with small input
// buffers and a slow constrict stage, then asks the attribution engine who
// the bottleneck is. The expected signature: producers park on constrict's
// full input ring (high inbound stall), constrict itself never blocks
// emitting (the sink is fast, so low outbound stall), and relay merely
// relays pressure (high inbound AND high outbound stall) — so constrict
// must win the inbound-minus-outbound ranking.
func ExpConstriction(cfg Config) (*ConstrictionResult, error) {
	items := 4000
	if cfg.Quick {
		items = 1500
	}
	const sleep = 100 * time.Microsecond

	clk := clock.NewManual()
	ob := obs.New(clk, obs.Config{SampleEvery: -1})
	e := pipeline.New(clk)
	e.SetObservability(ob)
	e.SetDefaultBatchSize(16)

	stageCfg := func(capacity int) pipeline.StageConfig {
		return pipeline.StageConfig{DisableAdaptation: true, QueueCapacity: capacity}
	}
	src, err := e.AddSourceStage("src", 0, &latencySource{n: items, wire: 64}, pipeline.StageConfig{DisableAdaptation: true})
	if err != nil {
		return nil, err
	}
	relay, err := e.AddProcessorStage("relay", 0, latencyRelay{}, stageCfg(64))
	if err != nil {
		return nil, err
	}
	constrict, err := e.AddProcessorStage("constrict", 0, constrictProc{sleep: sleep}, stageCfg(64))
	if err != nil {
		return nil, err
	}
	sink, err := e.AddProcessorStage("sink", 0, latencySink{}, stageCfg(1024))
	if err != nil {
		return nil, err
	}
	for _, hop := range [][2]*pipeline.Stage{{src, relay}, {relay, constrict}, {constrict, sink}} {
		if err := e.Connect(hop[0], hop[1], nil); err != nil {
			return nil, err
		}
	}
	if err := e.Run(context.Background()); err != nil {
		return nil, err
	}

	// One-shot epoch: the engine's remembered counters start at zero, so
	// the deltas are the whole run's totals against the wall time since
	// the bundle was built — exactly the run we just finished.
	report := ob.Attr().ObserveRegistry(ob.Registry)
	res := &ConstrictionResult{
		Items:          items,
		SleepPerPacket: sleep,
		Expected:       "constrict",
		Report:         report,
	}
	if len(report.Verdicts) > 0 && report.Verdicts[0].Bottleneck {
		res.Named = report.Verdicts[0].Stage
	}
	return res, nil
}

// Render prints the ranked verdicts and the pass/fail attribution line. The
// "bottleneck: <stage>" line is what scripts/ci.sh greps for.
func (r *ConstrictionResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Constriction: %d items through a %s/packet slow stage (expected bottleneck: %s)\n",
		r.Items, r.SleepPerPacket, r.Expected)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\tinbound\temit\tpop\tscore\tverdict")
	for _, v := range r.Report.Verdicts {
		verdict := ""
		if v.Bottleneck {
			verdict = "BOTTLENECK"
		}
		fmt.Fprintf(tw, "%s/%s\t%d%%\t%d%%\t%d%%\t%+.2f\t%s\n",
			v.Stage, v.Instance,
			int(float64(v.InboundStallFrac)*100+0.5),
			int(float64(v.EmitStallFrac)*100+0.5),
			int(float64(v.PopStallFrac)*100+0.5),
			float64(v.Score), verdict)
	}
	tw.Flush()
	fmt.Fprintf(w, "%s\n", r.Report.Summary)
	if r.Named == "" {
		fmt.Fprintln(w, "bottleneck: NONE NAMED (attribution failed)")
	} else {
		fmt.Fprintf(w, "bottleneck: %s (expected %s)\n", r.Named, r.Expected)
	}
}
