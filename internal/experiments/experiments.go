// Package experiments regenerates every table and figure in Section 5 of
// the GATES paper on top of the full middleware stack (grid directory →
// deployer → launcher → pipeline engine → self-adaptation), with the
// emulated network standing in for the authors' delay-injected cluster and
// a virtual clock compressing their multi-minute runs into seconds.
//
// Each FigureN function returns a typed result whose Render method prints
// the same rows or series the paper reports:
//
//   - Figure5: centralized vs distributed count-samps (time + accuracy).
//   - Figure6 / Figure7: execution time / accuracy of five count-samps
//     versions across four bandwidths (one shared set of runs).
//   - Figure8: comp-steer sampling-rate convergence under five processing
//     costs.
//   - Figure9: comp-steer sampling-rate convergence under five generation
//     rates through a 10 KB/s link.
//
// The Ablation functions exercise the design choices DESIGN.md calls out
// (φ2 variant, Equation 4 sign, weight vector, window size, congestion
// priority).
package experiments

import (
	"time"

	"github.com/gates-middleware/gates/internal/workload"
)

// Config controls how the experiments execute.
type Config struct {
	// Scale is the virtual-seconds-per-wall-second compression.
	// Zero selects per-experiment defaults chosen so every sleep stays
	// comfortably above timer granularity.
	Scale float64
	// Seed drives every workload generator.
	Seed int64
	// Quick shrinks workloads roughly 4× for smoke tests and CI; the
	// shapes survive, the absolute numbers shift.
	Quick bool
	// Parallelism bounds the worker pool running independent trials and
	// config-grid cells. Zero picks GOMAXPROCS (1 under the race
	// detector); 1 forces fully sequential execution. Every trial owns an
	// isolated clock, network, and engine, so seed-deterministic outputs
	// (accuracy, byte counts, converged parameters) are identical at any
	// parallelism; only wall-clock-derived timings vary, as they already
	// do between sequential runs.
	Parallelism int
}

func (c Config) scale(def float64) float64 {
	if c.Scale > 0 {
		return c.Scale
	}
	return def
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 20040607 // HPDC 2004 keynote morning
	}
	return c.Seed
}

// fourZipfStreams builds the evaluation workload: four sub-streams of
// itemsPerStream Zipf-distributed integers, plus the merged ground truth.
// The paper does not specify its distribution; the skew is calibrated so a
// 100-item summary per source reproduces Figure 5's 97-accuracy regime
// (heavier-tailed streams churn the counting-samples threshold and push
// distributed accuracy lower — Figure 7's small-summary cells show that
// effect within the calibrated workload).
func fourZipfStreams(seed int64, itemsPerStream int) ([][]int, map[int]int) {
	return zipfStreams(seed, 4, itemsPerStream)
}

// zipfStreams generalizes the workload to any sub-stream count (the paper
// observes "with larger number of data sources ... a larger difference can
// be expected"; the scaling extension measures that).
func zipfStreams(seed int64, n, itemsPerStream int) ([][]int, map[int]int) {
	streams := make([][]int, n)
	parts := make([]map[int]int, n)
	for i := range streams {
		streams[i] = workload.Take(workload.NewZipf(seed+int64(i)*101, 1.5, 50_000), itemsPerStream)
		parts[i] = workload.Counts(streams[i])
	}
	return streams, workload.MergeCounts(parts...)
}

// secondsOf renders a virtual duration as float seconds.
func secondsOf(d time.Duration) float64 { return d.Seconds() }
