package experiments

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
)

// AblationRow is one variant's outcome in an ablation study.
type AblationRow struct {
	// Variant names the setting under study.
	Variant string
	// Expected is the analytically sustainable sampling factor.
	Expected float64
	// Converged is the settled value the variant reached.
	Converged float64
	// Wobble is the standard deviation of the sampling factor over the
	// convergence window — the stability of the control loop.
	Wobble float64
}

// AblationResult is a small comparison table over algorithm variants.
type AblationResult struct {
	// Name identifies the study.
	Name string
	// Scenario describes the workload the variants ran against.
	Scenario string
	// Rows holds one row per variant.
	Rows []AblationRow
}

// Render prints the comparison.
func (r *AblationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation: %s (%s)\n", r.Name, r.Scenario)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Variant\tExpected\tConverged\tWobble")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\n", row.Variant, row.Expected, row.Converged, row.Wobble)
	}
	tw.Flush()
}

// ablationScenarioAt runs the Figure 8 processing-constraint workload with
// an explicit observation interval.
func ablationScenarioAt(cfg Config, variant string, interval time.Duration, mutate func(*adapt.Options)) (AblationRow, error) {
	run, err := runCompSteer(steerParams{
		cfg:           cfg,
		genRate:       160,
		packetBytes:   16,
		costPerByte:   20 * time.Millisecond,
		initialRate:   0.13,
		duration:      300 * time.Second,
		adaptOverride: mutate,
		adaptInterval: interval,
	})
	if err != nil {
		return AblationRow{}, fmt.Errorf("ablation %s: %w", variant, err)
	}
	from := 300 * time.Second * 6 / 10
	return AblationRow{
		Variant:   variant,
		Expected:  0.3125,
		Converged: run.Converged,
		Wobble:    windowStd(run, from, 300*time.Second),
	}, nil
}

// ablationScenario runs the Figure 8 processing-constraint workload
// (20 ms/byte against 160 B/s; sustainable factor 0.3125) under a mutated
// option set and summarizes the outcome.
func ablationScenario(cfg Config, variant string, mutate func(*adapt.Options)) (AblationRow, error) {
	return ablationScenarioAt(cfg, variant, 0, mutate)
}

func windowStd(run *steerResult, from, to time.Duration) float64 {
	var vals []float64
	for _, p := range run.Trace.Points() {
		if p.T >= from && p.T <= to {
			vals = append(vals, p.V)
		}
	}
	if len(vals) < 2 {
		return 0
	}
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(vals)))
}

// AblationDownstreamSign compares the Equation 4 sign conventions: the
// reinforcing orientation (default; reproduces Figures 8–9) against the
// literal subtraction as printed in the paper.
func AblationDownstreamSign(cfg Config) (*AblationResult, error) {
	res := &AblationResult{
		Name:     "Equation 4 downstream-term sign",
		Scenario: "Figure 8 workload, 20 ms/byte, sustainable factor 0.3125",
	}
	variants := []struct {
		name string
		sign adapt.SignConvention
	}{
		{"reinforcing (default)", adapt.SignReinforcing},
		{"literal (as printed)", adapt.SignLiteral},
	}
	for _, v := range variants {
		sign := v.sign
		row, err := ablationScenario(cfg, v.name, func(o *adapt.Options) { o.DownstreamSign = sign })
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationPhi2 compares the two φ2 implementations (the printed formula is
// ambiguous; see DESIGN.md).
func AblationPhi2(cfg Config) (*AblationResult, error) {
	res := &AblationResult{
		Name:     "phi2 variant",
		Scenario: "Figure 8 workload, 20 ms/byte, sustainable factor 0.3125",
	}
	variants := []struct {
		name string
		kind adapt.Phi2Kind
	}{
		{"exponential (default)", adapt.Phi2Exponential},
		{"linear w/W", adapt.Phi2Linear},
	}
	for _, v := range variants {
		kind := v.kind
		row, err := ablationScenario(cfg, v.name, func(o *adapt.Options) { o.Phi2 = kind })
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationWeights sweeps the (P1, P2, P3) load-factor weights, including the
// degenerate single-factor settings.
func AblationWeights(cfg Config) (*AblationResult, error) {
	res := &AblationResult{
		Name:     "load-factor weights (P1, P2, P3)",
		Scenario: "Figure 8 workload, 20 ms/byte, sustainable factor 0.3125",
	}
	variants := []struct {
		name       string
		p1, p2, p3 float64
	}{
		{"0.2/0.3/0.5 (default)", 0.2, 0.3, 0.5},
		{"phi1 only", 1, 0, 0},
		{"phi2 only", 0, 1, 0},
		{"phi3 only", 0, 0, 1},
	}
	for _, v := range variants {
		p1, p2, p3 := v.p1, v.p2, v.p3
		row, err := ablationScenario(cfg, v.name, func(o *adapt.Options) {
			o.P1, o.P2, o.P3 = p1, p2, p3
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationWindow sweeps the observation window W.
func AblationWindow(cfg Config) (*AblationResult, error) {
	res := &AblationResult{
		Name:     "window size W",
		Scenario: "Figure 8 workload, 20 ms/byte, sustainable factor 0.3125",
	}
	for _, w := range []int{4, 16, 64} {
		w := w
		name := fmt.Sprintf("W=%d", w)
		if w == 16 {
			name += " (default)"
		}
		row, err := ablationScenario(cfg, name, func(o *adapt.Options) { o.Window = w })
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationInterval sweeps the observation interval: how often the
// controller samples the queue and (every second tick) adjusts. Faster
// observation converges sooner but reacts to noise; slow observation is
// calm but sluggish.
func AblationInterval(cfg Config) (*AblationResult, error) {
	res := &AblationResult{
		Name:     "observation interval",
		Scenario: "Figure 8 workload, 20 ms/byte, sustainable factor 0.3125",
	}
	for _, iv := range []time.Duration{100 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second} {
		name := iv.String()
		if iv == 500*time.Millisecond {
			name += " (default)"
		}
		row, err := ablationScenarioAt(cfg, name, iv, nil)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationCongestionPriority compares the congestion-priority gating (the
// stabilization this implementation adds; see DESIGN.md) against the
// ungated law.
func AblationCongestionPriority(cfg Config) (*AblationResult, error) {
	res := &AblationResult{
		Name:     "congestion-priority gating",
		Scenario: "Figure 8 workload, 20 ms/byte, sustainable factor 0.3125",
	}
	variants := []struct {
		name    string
		disable bool
	}{
		{"gated (default)", false},
		{"ungated", true},
	}
	for _, v := range variants {
		disable := v.disable
		row, err := ablationScenario(cfg, v.name, func(o *adapt.Options) {
			o.DisableCongestionPriority = disable
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
