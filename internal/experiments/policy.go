package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"github.com/gates-middleware/gates/internal/apps/countsamps"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/grid"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/policy"
	"github.com/gates-middleware/gates/internal/service"
)

// Policy hot-reload experiment: the declarative control plane changing a
// live run's behavior.
//
// The distributed count-samps application runs under policy v1, whose
// rebalance threshold (20x) is deliberately too lax to react when the
// first source's uplink collapses to a tenth of its bandwidth: the cost
// ratio of staying put lands near 10x, below the bar, so the rebalancer
// logs "skip: below-threshold" decisions and the placement never changes.
// In the hot-reload mode, a new document v2 with a 2x threshold is loaded
// mid-run — the same reload an operator performs with POST /policy — and
// the very next sweep crosses the bar and migrates the affected summarizer
// to the well-connected helper node. The decision log is the proof: the
// move decision cites policy v2 and the rule that fired, while everything
// before the reload cites v1.

// PolicyRow is one mode's measurements.
type PolicyRow struct {
	// Mode is "static-v1" or "hot-reload".
	Mode string
	// Seconds is the virtual completion time of the whole application.
	Seconds float64
	// Migrations is how many instances moved.
	Migrations int
	// FinalNode is where summarize/0 (the affected instance) ended up.
	FinalNode string
	// MoveVersion is the policy version the move decision cites ("" when
	// nothing moved).
	MoveVersion string
	// MoveRule is the rule the move decision cites ("" when nothing moved).
	MoveRule string
	// Skips counts rebalance skip decisions (cooldown or below-threshold).
	Skips int
	// Decisions is the total control-plane decisions recorded.
	Decisions uint64
	// Versions lists the policy versions loaded, in order.
	Versions []string
}

// PolicyResult compares a run pinned to policy v1 with one hot-reloaded to
// v2 mid-run.
type PolicyResult struct {
	// CollapseS is when (virtual seconds) the bandwidth collapsed.
	CollapseS float64
	// ReloadS is when v2 was loaded in the hot-reload mode.
	ReloadS float64
	Rows    []PolicyRow
}

// ExpPolicy runs the distributed count-samps application through the
// bandwidth collapse twice: once staying on policy v1 (threshold 20, no
// reaction) and once hot-reloading policy v2 (threshold 2) after the
// collapse, which visibly changes placement.
func ExpPolicy(cfg Config) (*PolicyResult, error) {
	collapseAt := 60 * time.Second
	if cfg.Quick {
		collapseAt = 15 * time.Second
	}
	reloadAt := collapseAt + 4*time.Second
	res := &PolicyResult{CollapseS: collapseAt.Seconds(), ReloadS: reloadAt.Seconds()}
	rows := make([]PolicyRow, 2)
	err := forEach(cfg.parallelism(), 2, func(i int) error {
		row, err := runPolicyMode(cfg, collapseAt, reloadAt, i == 1)
		if err != nil {
			return err
		}
		rows[i] = *row
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// policyV1 is the lax starting policy: rebalancing is on but its threshold
// is far above the ~10x cost ratio the collapse produces.
func policyV1() policy.Document {
	doc := policy.Document{Version: "v1"}
	doc.Rebalance.Interval = policy.Duration(2 * time.Second)
	doc.Rebalance.Threshold = 20
	doc.Rebalance.Stages = []string{"summarize"}
	doc.Normalize()
	return doc
}

// policyV2 is the tightened document an operator would POST to /policy
// after watching the collapse: same shape, threshold 2.
func policyV2() policy.Document {
	doc := policyV1()
	doc.Version = "v2"
	doc.Rebalance.Threshold = 2
	return doc
}

// runPolicyMode executes one mode and reads its story back out of the
// decision log.
func runPolicyMode(cfg Config, collapseAt, reloadAt time.Duration, hotReload bool) (*PolicyRow, error) {
	const (
		baseBW      = 10 * 1024   // healthy inter-node bandwidth
		fastBW      = 1 << 20     // source <-> helper LAN
		collapsedBW = baseBW / 10 // the degraded uplink
		sources     = 4
	)
	clk := clock.NewScaled(cfg.scale(2000))
	cost := countsamps.DefaultCostModel()
	items := 25_000
	if cfg.Quick {
		items = 6_000
	}
	streams, _ := zipfStreams(cfg.seed(), sources, items)

	// Fabric: identical to the migration experiment — one node per
	// sub-stream, a well-connected helper, and the central node.
	dir := grid.NewDirectory()
	for i := 0; i < sources; i++ {
		if err := dir.Register(grid.Node{
			Name: fmt.Sprintf("src-%d", i+1), CPUPower: 1, MemoryMB: 512, Slots: 2,
			Sources: []string{fmt.Sprintf("stream-%d", i+1)},
		}); err != nil {
			return nil, err
		}
	}
	if err := dir.Register(grid.Node{Name: "helper", CPUPower: 1, MemoryMB: 512, Slots: 4}); err != nil {
		return nil, err
	}
	if err := dir.Register(grid.Node{Name: "central", CPUPower: 4, MemoryMB: 4096, Slots: 4}); err != nil {
		return nil, err
	}
	net := netsim.NewNetwork(clk)
	net.SetDefaultLink(netsim.LinkConfig{Bandwidth: baseBW, Quantum: time.Second})
	for i := 0; i < sources; i++ {
		src := fmt.Sprintf("src-%d", i+1)
		net.InstallLink(src, "helper", netsim.NewLink(clk, netsim.LinkConfig{Bandwidth: fastBW, Quantum: time.Second}))
		net.InstallLink("helper", src, netsim.NewLink(clk, netsim.LinkConfig{Bandwidth: fastBW, Quantum: time.Second}))
	}
	uplink := net.Link("src-1", "central")

	repo := service.NewRepository()
	merger := &countsamps.SummaryMerger{Cost: cost}
	if err := repo.RegisterSource("countsamps/stream", func(inst int) pipeline.Source {
		return &countsamps.StreamSource{Values: streams[inst], Batch: 25, ItemWireSize: cost.ItemWireSize}
	}); err != nil {
		return nil, err
	}
	if err := repo.RegisterProcessor("countsamps/summarize", func(inst int) pipeline.Processor {
		return countsamps.NewSummarizer(countsamps.SummarizerConfig{
			Cost:        cost,
			FlushEvery:  1000,
			SummarySize: 100,
			Seed:        cfg.seed() + int64(inst),
		})
	}); err != nil {
		return nil, err
	}
	if err := repo.RegisterProcessor("countsamps/merge", func(int) pipeline.Processor {
		return merger
	}); err != nil {
		return nil, err
	}

	dep, err := service.NewDeployer(clk, dir, repo, net)
	if err != nil {
		return nil, err
	}
	// The observed policy engine is the run's control plane: placements,
	// rebalance verdicts, and policy loads all land in its decision log.
	ob := obs.New(clk, obs.Config{})
	dep.SetObservability(ob)
	eng := policy.New(clk, ob)
	if err := eng.Load(policyV1(), "experiment"); err != nil {
		return nil, err
	}
	dep.SetPolicy(eng)
	launcher, err := service.NewLauncher(dep)
	if err != nil {
		return nil, err
	}
	tuning := func(stageID string, _ int) pipeline.StageConfig {
		switch stageID {
		case "stream":
			return pipeline.StageConfig{DisableAdaptation: true, ComputeQuantum: time.Second}
		default:
			return pipeline.StageConfig{
				QueueCapacity: 50, DisableAdaptation: true, ComputeQuantum: time.Second,
			}
		}
	}

	sw := clock.NewStopwatch(clk)
	app, err := launcher.LaunchConfig(context.Background(), countSampsConfig(csDistributed, sources), tuning)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The mid-run events: the uplink collapses; in the hot-reload mode the
	// operator answers with policy v2 a few virtual seconds later.
	go func() {
		select {
		case <-clk.After(collapseAt):
			uplink.SetBandwidth(collapsedBW)
		case <-ctx.Done():
			return
		}
		if !hotReload {
			return
		}
		select {
		case <-clk.After(reloadAt - collapseAt):
			_ = eng.Load(policyV2(), "experiment-reload")
		case <-ctx.Done():
		}
	}()

	reb := service.NewPolicyRebalancer(app.Deployment, eng)
	go reb.Run(ctx)

	if err := app.Wait(); err != nil {
		return nil, err
	}
	cancel()

	row := &PolicyRow{
		Mode:       "static-v1",
		Seconds:    secondsOf(sw.Elapsed()),
		Migrations: reb.Migrations(),
		Decisions:  ob.DecisionLog().Total(),
	}
	if hotReload {
		row.Mode = "hot-reload"
	}
	if node, ok := app.Deployment.NodeFor("summarize", 0); ok {
		row.FinalNode = node
	}
	for _, ev := range ob.DecisionLog().Events() {
		switch {
		case ev.Kind == obs.DecisionPolicy && ev.Outcome == "loaded":
			row.Versions = append(row.Versions, ev.PolicyVersion)
		case ev.Kind == obs.DecisionRebalance && ev.Outcome == "skip":
			row.Skips++
		case ev.Kind == obs.DecisionRebalance && ev.Outcome == "move" && row.MoveVersion == "":
			row.MoveVersion = ev.PolicyVersion
			row.MoveRule = ev.Rule
		}
	}
	return row, nil
}

// Render prints the comparison table and, when the hot reload visibly
// changed placement, the one-line verdict CI greps for.
func (r *PolicyResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Extension: policy-driven control plane under a mid-run hot reload")
	fmt.Fprintf(w, "  [src-1 -> central drops 10x at t=%.0fs; at t=%.0fs the hot-reload run tightens rebalance.threshold 20 -> 2 (policy v2)]\n",
		r.CollapseS, r.ReloadS)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Mode\tTime (s)\tMigrations\tsummarize/0\tMove cites\tSkips\tDecisions\tPolicies loaded")
	for _, row := range r.Rows {
		cites := "-"
		if row.MoveVersion != "" {
			cites = fmt.Sprintf("%s/%s", row.MoveVersion, row.MoveRule)
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%d\t%s\t%s\t%d\t%d\t%v\n",
			row.Mode, row.Seconds, row.Migrations, row.FinalNode, cites, row.Skips, row.Decisions, row.Versions)
	}
	tw.Flush()
	if len(r.Rows) == 2 {
		static, hot := r.Rows[0], r.Rows[1]
		if static.Migrations == 0 && hot.Migrations > 0 && hot.FinalNode != static.FinalNode {
			fmt.Fprintf(w, "policy-hotreload: placement changed %s -> %s under %s\n",
				static.FinalNode, hot.FinalNode, hot.MoveVersion)
		}
	}
}
