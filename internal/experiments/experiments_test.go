package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// skipUnderRace skips wall-clock-calibrated experiment tests when the race
// detector (with its ~10x CPU overhead) would distort virtual timing.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("timing-calibrated experiment; skipped under -race")
	}
}

func TestFigure5Shape(t *testing.T) {
	skipUnderRace(t)
	res, err := Figure5(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cen, dis := res.Centralized(), res.Distributed()
	t.Logf("centralized: %.1fs / %.1f; distributed: %.1fs / %.1f",
		cen.Seconds, cen.Accuracy, dis.Seconds, dis.Accuracy)

	// Shape criteria (DESIGN.md E1): distributed strictly faster;
	// accuracy loss small; neither perfect.
	if dis.Seconds >= cen.Seconds {
		t.Errorf("distributed (%.1fs) not faster than centralized (%.1fs)", dis.Seconds, cen.Seconds)
	}
	if cen.Accuracy < 90 || cen.Accuracy >= 100 {
		t.Errorf("centralized accuracy %.1f outside (90,100)", cen.Accuracy)
	}
	if dis.Accuracy < cen.Accuracy-10 {
		t.Errorf("distributed accuracy %.1f lost more than 10 points vs %.1f", dis.Accuracy, cen.Accuracy)
	}
	// Magnitudes: the cost model is calibrated to the paper's 257.5 s and
	// 180.8 s; allow wide slack for emulation overheads.
	if cen.Seconds < 200 || cen.Seconds > 340 {
		t.Errorf("centralized time %.1fs far from the calibrated 257.5s", cen.Seconds)
	}
	if dis.Seconds < 150 || dis.Seconds > 260 {
		t.Errorf("distributed time %.1fs far from the calibrated 180.8s", dis.Seconds)
	}

	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Centralized") || !strings.Contains(buf.String(), "Distributed") {
		t.Error("Render missing rows")
	}
}

func TestFigure67Shape(t *testing.T) {
	skipUnderRace(t)
	res, err := Figure67(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.RenderTime(&buf)
	res.RenderAccuracy(&buf)
	t.Logf("\n%s", buf.String())

	// E2: at the tightest bandwidth, time grows with summary size.
	t40, _ := res.Cell("40", 1_000)
	t160, _ := res.Cell("160", 1_000)
	if t160.Seconds <= t40.Seconds {
		t.Errorf("at 1KB/s, summary=160 (%.1fs) not slower than summary=40 (%.1fs)", t160.Seconds, t40.Seconds)
	}
	// Time shrinks (or stays flat) as bandwidth grows, per version.
	for _, v := range Fig67Versions {
		lo, _ := res.Cell(v, 1_000)
		hi, _ := res.Cell(v, 1_000_000)
		if hi.Seconds > lo.Seconds*1.1 {
			t.Errorf("version %s: time rose with bandwidth (%.1fs -> %.1fs)", v, lo.Seconds, hi.Seconds)
		}
	}
	// E3: accuracy grows with summary size (at an unconstrained
	// bandwidth, where all versions ship everything they maintain).
	a40, _ := res.Cell("40", 1_000_000)
	a160, _ := res.Cell("160", 1_000_000)
	if a160.Accuracy < a40.Accuracy-2 {
		t.Errorf("summary=160 accuracy %.1f below summary=40 accuracy %.1f", a160.Accuracy, a40.Accuracy)
	}
	// Adaptive is the trade-off winner (paper: "never had very low
	// accuracy, nor had very high execution times"): its accuracy never
	// sinks to the weakest fixed version's, and its time never balloons —
	// note it may run somewhat longer than summary=160 at mid bandwidths
	// because its range extends to 240 and it spends slack on accuracy.
	for _, bw := range Fig67Bandwidths {
		ad, _ := res.Cell("adaptive", bw)
		worstTime, worstAcc := 0.0, 101.0
		for _, v := range Fig67Versions[:4] {
			c, _ := res.Cell(v, bw)
			if c.Seconds > worstTime {
				worstTime = c.Seconds
			}
			if c.Accuracy < worstAcc {
				worstAcc = c.Accuracy
			}
		}
		if ad.Seconds > worstTime*1.5 {
			t.Errorf("bw=%d: adaptive (%.1fs) far beyond the slowest fixed version (%.1fs)", bw, ad.Seconds, worstTime)
		}
		if ad.Accuracy < worstAcc+2 {
			t.Errorf("bw=%d: adaptive accuracy %.1f not above the least accurate fixed version %.1f", bw, ad.Accuracy, worstAcc)
		}
	}
	// At the tightest bandwidth the adaptive version must beat the
	// slowest fixed version outright — that is the trade-off headline.
	ad1, _ := res.Cell("adaptive", 1_000)
	worst1, _ := res.Cell("160", 1_000)
	if ad1.Seconds >= worst1.Seconds {
		t.Errorf("at 1KB/s adaptive (%.1fs) not faster than summary=160 (%.1fs)", ad1.Seconds, worst1.Seconds)
	}
}

func TestFigure8Shape(t *testing.T) {
	skipUnderRace(t)
	res, err := Figure8(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	t.Logf("\n%s", buf.String())

	if len(res.Series) != len(Fig8Costs) {
		t.Fatalf("got %d series, want %d", len(res.Series), len(Fig8Costs))
	}
	// E4: ≈1 where processing is no constraint; monotonically smaller as
	// cost grows; each within a band of the sustainable rate.
	for _, s := range res.Series {
		if s.Converged < s.Expected-0.17 || s.Converged > s.Expected+0.17 {
			t.Errorf("%s: converged %.3f not within ±0.17 of expected %.3f", s.Label, s.Converged, s.Expected)
		}
	}
	for i := 1; i < len(res.Series); i++ {
		if res.Series[i].Converged > res.Series[i-1].Converged+0.08 {
			t.Errorf("ordering violated: %s (%.3f) above %s (%.3f)",
				res.Series[i].Label, res.Series[i].Converged,
				res.Series[i-1].Label, res.Series[i-1].Converged)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	skipUnderRace(t)
	res, err := Figure9(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	t.Logf("\n%s", buf.String())

	// E5: climbs from 0.01 to min(1, bandwidth/genrate).
	for _, s := range res.Series {
		tol := 0.17
		if s.Expected < 0.3 {
			tol = 0.1
		}
		if s.Converged < s.Expected-tol || s.Converged > s.Expected+tol {
			t.Errorf("%s: converged %.3f not within ±%.2f of expected %.3f", s.Label, s.Converged, tol, s.Expected)
		}
		if first, ok := s.Trace.At(0); ok && first > 0.2 {
			t.Errorf("%s: trace did not start near the initial 0.01 (first %.2f)", s.Label, first)
		}
	}
	for i := 1; i < len(res.Series); i++ {
		if res.Series[i].Converged > res.Series[i-1].Converged+0.08 {
			t.Errorf("ordering violated at %s", res.Series[i].Label)
		}
	}
}
