package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationDownstreamSign(t *testing.T) {
	skipUnderRace(t)
	res, err := AblationDownstreamSign(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	t.Logf("\n%s", buf.String())
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	def := res.Rows[0]
	if def.Converged < def.Expected-0.2 || def.Converged > def.Expected+0.2 {
		t.Errorf("default sign converged to %.3f, want near %.3f", def.Converged, def.Expected)
	}
}

func TestAblationPhi2(t *testing.T) {
	skipUnderRace(t)
	res, err := AblationPhi2(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// Both variants keep the loop stable in this scenario; the
		// study records their relative wobble.
		if row.Converged < 0.05 || row.Converged > 1 {
			t.Errorf("%s: converged %.3f out of plausible range", row.Variant, row.Converged)
		}
	}
}

func TestAblationWeightsAndWindow(t *testing.T) {
	skipUnderRace(t)
	w, err := AblationWeights(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Rows) != 4 {
		t.Fatalf("weights rows = %d", len(w.Rows))
	}
	win, err := AblationWindow(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(win.Rows) != 3 {
		t.Fatalf("window rows = %d", len(win.Rows))
	}
	var buf bytes.Buffer
	w.Render(&buf)
	win.Render(&buf)
	if !strings.Contains(buf.String(), "W=16 (default)") {
		t.Error("render missing default window row")
	}
}

func TestAblationCongestionPriority(t *testing.T) {
	skipUnderRace(t)
	res, err := AblationCongestionPriority(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	def := res.Rows[0]
	if def.Converged < def.Expected-0.2 || def.Converged > def.Expected+0.2 {
		t.Errorf("gated variant converged to %.3f, want near %.3f", def.Converged, def.Expected)
	}
}

func TestAblationInterval(t *testing.T) {
	skipUnderRace(t)
	res, err := AblationInterval(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Converged < 0.05 || row.Converged > 0.8 {
			t.Errorf("%s: converged %.3f implausible", row.Variant, row.Converged)
		}
	}
}
