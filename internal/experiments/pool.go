package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEach runs fn(0..n-1) on a pool of at most workers goroutines and
// returns the error from the lowest index that failed, or nil. Callers get
// deterministic result ordering by writing into slot i of a pre-sized
// slice — the schedule may interleave, but the results cannot.
//
// Every trial and grid cell in this package builds its own clock, network,
// and engine (see runCountSampsOnce / runCompSteer), so concurrent runs
// share no mutable state; only wall-clock-derived fields (Elapsed) are
// scheduling-sensitive, and they are exactly as noisy sequentially.
func forEach(workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		errIdx   = n
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx = i
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// parallelism resolves the worker count for independent trials: an explicit
// Config.Parallelism wins; under the race detector the default drops to 1
// (instrumentation skews the wall-clock timing the Scaled clocks calibrate
// against); otherwise GOMAXPROCS.
func (c Config) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	if raceEnabled {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}
