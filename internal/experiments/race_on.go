//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in. The
// experiment shape tests assert against the Figure 5 timing calibration,
// which assumes production-build CPU overhead; the race detector's ~10x
// instrumentation cost distorts the virtual-time ratios those assertions
// encode, so they skip themselves under -race (the algorithmic and
// concurrency coverage lives in the package unit tests, which do run under
// -race).
const raceEnabled = true
