package experiments

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"
	"time"

	"github.com/gates-middleware/gates/internal/metrics"
	"github.com/gates-middleware/gates/internal/queuing"
)

// ConvergenceSeries is one line of a Figure 8/9-style plot: how the
// middleware-chosen sampling factor evolves for one configuration.
type ConvergenceSeries struct {
	// Label names the configuration ("8 ms/byte", "40 KB/s", ...).
	Label string
	// Expected is the sustainable sampling factor predicted by the §4.1
	// queueing-network model (internal/queuing).
	Expected float64
	// Converged is the measured settled value.
	Converged float64
	// Trace is the full sampling-factor series.
	Trace *metrics.TimeSeries
}

// Fig8Costs are the five analysis costs of §5.4, in ms/byte.
var Fig8Costs = []int{1, 5, 8, 10, 20}

// Fig8Result reproduces Figure 8: sampling-factor convergence under a
// processing constraint (generation 160 B/s, initial factor 0.13).
type Fig8Result struct {
	Series []ConvergenceSeries
}

// Figure8 runs §5.4: five comp-steer versions whose post-processing costs
// 1, 5, 8, 10 and 20 ms/byte against a 160 B/s stream. The paper's factors
// converge to 1, 1, .65, .55 and .31.
func Figure8(cfg Config) (*Fig8Result, error) {
	series := make([]ConvergenceSeries, len(Fig8Costs))
	err := forEach(cfg.parallelism(), len(Fig8Costs), func(i int) error {
		costMs := Fig8Costs[i]
		run, err := runCompSteer(steerParams{
			cfg:         cfg,
			genRate:     160,
			packetBytes: 16,
			costPerByte: time.Duration(costMs) * time.Millisecond,
			initialRate: 0.13,
			duration:    300 * time.Second,
		})
		if err != nil {
			return fmt.Errorf("figure8 cost=%dms: %w", costMs, err)
		}
		expected, err := steeringModel(160, 1000/float64(costMs), 0)
		if err != nil {
			return err
		}
		series[i] = ConvergenceSeries{
			Label:     fmt.Sprintf("%d ms/byte", costMs),
			Expected:  expected,
			Converged: run.Converged,
			Trace:     run.Trace,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig8Result{Series: series}, nil
}

// Render prints the convergence table.
func (r *Fig8Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 8: Self-adaptation for a processing constraint (gen 160 B/s, initial 0.13)")
	fmt.Fprintln(w, "  [paper: converges to 1, 1, .65, .55, .31]")
	renderConvergence(w, r.Series)
}

// Fig9GenRates are the five generation rates of §5.5, in KB/s.
var Fig9GenRates = []int{5, 10, 20, 40, 80}

// Fig9Result reproduces Figure 9: sampling-factor convergence under a
// network constraint (10 KB/s link, initial factor 0.01).
type Fig9Result struct {
	Series []ConvergenceSeries
}

// Figure9 runs §5.5: data generated at 5/10/20/40/80 KB/s, sampled, and
// sent over a 10 KB/s link. The sustainable factors are 1, 1, .5, .25 and
// .125.
func Figure9(cfg Config) (*Fig9Result, error) {
	series := make([]ConvergenceSeries, len(Fig9GenRates))
	err := forEach(cfg.parallelism(), len(Fig9GenRates), func(i int) error {
		genKB := Fig9GenRates[i]
		run, err := runCompSteer(steerParams{
			cfg:         cfg,
			genRate:     genKB * 1000,
			packetBytes: 500,
			linkBW:      10_000,
			initialRate: 0.01,
			duration:    300 * time.Second,
		})
		if err != nil {
			return fmt.Errorf("figure9 gen=%dKB/s: %w", genKB, err)
		}
		expected, err := steeringModel(float64(genKB)*1000, math.Inf(1), 10_000)
		if err != nil {
			return err
		}
		series[i] = ConvergenceSeries{
			Label:     fmt.Sprintf("%d KB/s", genKB),
			Expected:  expected,
			Converged: run.Converged,
			Trace:     run.Trace,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig9Result{Series: series}, nil
}

// Render prints the convergence table.
func (r *Fig9Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 9: Self-adaptation for a network constraint (10 KB/s link, initial 0.01)")
	fmt.Fprintln(w, "  [paper: converges to ~1, 1, .5, .25, .125]")
	renderConvergence(w, r.Series)
}

// steeringModel builds the §4.1 queueing network of a comp-steer run —
// generator → sampler → (link) → analysis — and asks it for the sustainable
// sampling factor. linkBW of 0 means an unconstrained link.
func steeringModel(genRate, analysisRate float64, linkBW float64) (float64, error) {
	n := queuing.New()
	if err := n.AddStation(queuing.Station{Name: "sampler"}); err != nil {
		return 0, err
	}
	prev := "sampler"
	if linkBW > 0 {
		if err := n.AddStation(queuing.Station{Name: "link", ServiceRate: linkBW}); err != nil {
			return 0, err
		}
		if err := n.Route(prev, "link", 1); err != nil {
			return 0, err
		}
		prev = "link"
	}
	if err := n.AddStation(queuing.Station{Name: "analysis", ServiceRate: analysisRate}); err != nil {
		return 0, err
	}
	if prev != "sampler" {
		if err := n.Route(prev, "analysis", 1); err != nil {
			return 0, err
		}
	} else if err := n.Route("sampler", "analysis", 1); err != nil {
		return 0, err
	}
	if err := n.SetArrival("sampler", genRate); err != nil {
		return 0, err
	}
	return n.SustainableFraction("sampler")
}

// renderConvergence prints settled values plus a downsampled trace per
// series.
func renderConvergence(w io.Writer, series []ConvergenceSeries) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Version\tExpected\tConverged")
	for _, s := range series {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\n", s.Label, s.Expected, s.Converged)
	}
	tw.Flush()
	fmt.Fprintln(w, "Sampling factor over time:")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "t(s)")
	for _, s := range series {
		fmt.Fprintf(tw, "\t%s", s.Label)
	}
	fmt.Fprintln(tw)
	const samples = 12
	// Use the longest trace to define the time axis.
	var axis []time.Duration
	for _, s := range series {
		pts := s.Trace.Downsample(samples)
		if len(pts) > len(axis) {
			axis = axis[:0]
			for _, p := range pts {
				axis = append(axis, p.T)
			}
		}
	}
	for _, t := range axis {
		fmt.Fprintf(tw, "%.0f", t.Seconds())
		for _, s := range series {
			if v, ok := s.Trace.At(t); ok {
				fmt.Fprintf(tw, "\t%.2f", v)
			} else {
				fmt.Fprint(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
