package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunAllReportJSON(t *testing.T) {
	skipUnderRace(t)
	if testing.Short() {
		t.Skip("full report in -short mode")
	}
	rep, err := RunAll(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Figure5) != 2 || len(back.Figure6) != 5 || len(back.Figure7) != 5 {
		t.Fatalf("figure sections incomplete: %d/%d/%d", len(back.Figure5), len(back.Figure6), len(back.Figure7))
	}
	if len(back.Figure8) != 5 || len(back.Figure9) != 5 {
		t.Fatalf("convergence sections incomplete")
	}
	for _, s := range back.Figure8 {
		if len(s.Trace) == 0 {
			t.Fatalf("series %s has no trace", s.Label)
		}
	}
	if len(back.Ablations) != 6 || len(back.Scaling) != 4 || len(back.Hierarchy) != 3 {
		t.Fatalf("ablation/extension sections incomplete")
	}
	if !back.Quick || back.Seed == 0 {
		t.Fatal("report metadata missing")
	}
}
