package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/gates-middleware/gates/internal/apps/countsamps"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/grid"
	"github.com/gates-middleware/gates/internal/metrics"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/service"
)

// csMode selects the count-samps application version.
type csMode int

const (
	csCentralized csMode = iota // forward raw items, count centrally
	csDistributed               // fixed-size summaries at each source
	csAdaptive                  // middleware-tuned summary size
)

// csParams configures one count-samps run.
type csParams struct {
	cfg         Config
	mode        csMode
	summarySize int   // fixed n for csDistributed
	bandwidth   int64 // source->central link bandwidth
	trials      int   // sketch-seed trials averaged (default 1)
	sources     int   // sub-stream count (default 4, the paper's setup)
}

func (p csParams) srcCount() int {
	if p.sources < 1 {
		return 4
	}
	return p.sources
}

// csResult is one run's measurements.
type csResult struct {
	// Elapsed is the virtual execution time.
	Elapsed time.Duration
	// Acc is the top-10 accuracy against the merged ground truth.
	Acc metrics.Accuracy
	// FinalSummarySize is the adaptive parameter's last value (adaptive
	// runs only; averaged over the four sources).
	FinalSummarySize float64
	// NetworkBytes is the total volume carried source->central.
	NetworkBytes int64
}

// csItems returns items per sub-stream (the paper's 25,000).
func (p csParams) csItems() int {
	if p.cfg.Quick {
		return 6_000
	}
	return 25_000
}

// runCountSamps measures one count-samps configuration, averaging over
// sketch-seed trials: the counting-samples sketch is randomized, a borderline
// member of the true top-10 can fall either way in a single run, and the
// paper's Figure 5 reports *average* performance and accuracy. Trials are
// independent full-stack runs (each builds its own clock, fabric, and
// engine), so they execute on the Config's worker pool; results land in
// trial order and aggregate identically at any parallelism.
func runCountSamps(p csParams) (*csResult, error) {
	trials := p.trials
	if trials < 1 {
		trials = 1
	}
	results := make([]*csResult, trials)
	err := forEach(p.cfg.parallelism(), trials, func(trial int) error {
		r, err := runCountSampsOnce(p, int64(trial))
		if err != nil {
			return err
		}
		results[trial] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	var agg csResult
	for _, r := range results {
		agg.Elapsed += r.Elapsed
		agg.Acc.Membership += r.Acc.Membership
		agg.Acc.Frequency += r.Acc.Frequency
		agg.FinalSummarySize += r.FinalSummarySize
		agg.NetworkBytes += r.NetworkBytes
	}
	agg.Elapsed /= time.Duration(trials)
	agg.Acc.Membership /= float64(trials)
	agg.Acc.Frequency /= float64(trials)
	agg.FinalSummarySize /= float64(trials)
	agg.NetworkBytes /= int64(trials)
	return &agg, nil
}

// runCountSampsOnce deploys and executes one count-samps configuration
// through the full middleware stack and measures it.
func runCountSampsOnce(p csParams, trial int64) (*csResult, error) {
	scale := p.cfg.scale(2000)
	clk := clock.NewScaled(scale)
	cost := countsamps.DefaultCostModel()
	m := p.srcCount()
	streams, truth := zipfStreams(p.cfg.seed(), m, p.csItems())

	// Grid fabric: one stream-hosting node per sub-stream and a central
	// node, with the experiment's bandwidth on every cross-node link
	// (the paper's "each of these machines was connected to a central
	// machine").
	dir := grid.NewDirectory()
	for i := 0; i < m; i++ {
		if err := dir.Register(grid.Node{
			Name: fmt.Sprintf("src-%d", i+1), CPUPower: 1, MemoryMB: 512, Slots: 2,
			Sources: []string{fmt.Sprintf("stream-%d", i+1)},
		}); err != nil {
			return nil, err
		}
	}
	if err := dir.Register(grid.Node{Name: "central", CPUPower: 4, MemoryMB: 4096, Slots: 4}); err != nil {
		return nil, err
	}
	net := netsim.NewNetwork(clk)
	net.SetDefaultLink(netsim.LinkConfig{Bandwidth: p.bandwidth, Quantum: time.Second})

	// Application repository: the three stage codes.
	repo := service.NewRepository()
	rawCounter := &countsamps.RawCounter{Cost: cost, Seed: p.cfg.seed() + trial*104729}
	merger := &countsamps.SummaryMerger{Cost: cost}
	if err := repo.RegisterSource("countsamps/stream", func(inst int) pipeline.Source {
		return &countsamps.StreamSource{Values: streams[inst], Batch: 25, ItemWireSize: cost.ItemWireSize}
	}); err != nil {
		return nil, err
	}
	if err := repo.RegisterProcessor("countsamps/summarize", func(inst int) pipeline.Processor {
		return countsamps.NewSummarizer(countsamps.SummarizerConfig{
			Cost:        cost,
			FlushEvery:  1000,
			SummarySize: p.summarySize,
			Adaptive:    p.mode == csAdaptive,
			Seed:        p.cfg.seed() + trial*104729 + int64(inst),
		})
	}); err != nil {
		return nil, err
	}
	if err := repo.RegisterProcessor("countsamps/merge", func(int) pipeline.Processor {
		return merger
	}); err != nil {
		return nil, err
	}
	if err := repo.RegisterProcessor("countsamps/raw", func(int) pipeline.Processor {
		return rawCounter
	}); err != nil {
		return nil, err
	}

	cfg := countSampsConfig(p.mode, m)
	dep, err := service.NewDeployer(clk, dir, repo, net)
	if err != nil {
		return nil, err
	}
	launcher, err := service.NewLauncher(dep)
	if err != nil {
		return nil, err
	}

	tuning := func(stageID string, instance int) pipeline.StageConfig {
		switch stageID {
		case "stream":
			return pipeline.StageConfig{
				DisableAdaptation: true,
				ComputeQuantum:    time.Second,
			}
		case "summarize":
			return pipeline.StageConfig{
				QueueCapacity:  50,
				AdaptInterval:  2 * time.Second,
				AdjustEvery:    2,
				ComputeQuantum: time.Second,
			}
		default: // central stage
			return pipeline.StageConfig{
				QueueCapacity:  200,
				AdaptInterval:  2 * time.Second,
				AdjustEvery:    2,
				ComputeQuantum: time.Second,
			}
		}
	}

	sw := clock.NewStopwatch(clk)
	app, err := launcher.LaunchConfig(context.Background(), cfg, tuning)
	if err != nil {
		return nil, err
	}
	if err := app.Wait(); err != nil {
		return nil, err
	}

	res := &csResult{Elapsed: sw.Elapsed(), NetworkBytes: net.TotalBytes()}
	switch p.mode {
	case csCentralized:
		res.Acc = metrics.TopKAccuracy(truth, rawCounter.TopK(10), 10)
	default:
		res.Acc = metrics.TopKAccuracy(truth, merger.TopK(10), 10)
	}
	if p.mode == csAdaptive {
		var sum float64
		n := 0
		for _, st := range app.Stages["summarize"] {
			if param, ok := st.Controller().Param("summary-size"); ok {
				sum += param.Value()
				n++
			}
		}
		if n > 0 {
			res.FinalSummarySize = sum / float64(n)
		}
	}
	return res, nil
}

// countSampsConfig builds the application descriptor for a version — the
// XML the paper's application developer would write.
func countSampsConfig(mode csMode, sources int) *service.AppConfig {
	near := make([]string, sources)
	for i := range near {
		near[i] = fmt.Sprintf("stream-%d", i+1)
	}
	cfg := &service.AppConfig{
		Name: "count-samps",
		Stages: []service.StageDef{{
			ID: "stream", Code: "countsamps/stream", Source: true,
			Instances: sources, NearSources: near,
		}},
	}
	if mode == csCentralized {
		cfg.Stages = append(cfg.Stages, service.StageDef{
			ID: "central", Code: "countsamps/raw",
			Requirement: service.ReqDef{MinCPU: 2},
		})
		cfg.Connections = []service.ConnDef{{From: "stream", To: "central"}}
		return cfg
	}
	cfg.Stages = append(cfg.Stages,
		service.StageDef{
			ID: "summarize", Code: "countsamps/summarize",
			Instances: sources, NearSources: near,
		},
		service.StageDef{
			ID: "central", Code: "countsamps/merge",
			Requirement: service.ReqDef{MinCPU: 2},
		},
	)
	cfg.Connections = []service.ConnDef{
		{From: "stream", To: "summarize", Fanout: service.FanoutPairwise},
		{From: "summarize", To: "central"},
	}
	return cfg
}
