package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// LatencySampleRates are the trace-sampling periods the latency experiment
// sweeps: 0 disables tracing entirely (the -trace-sample 0 configuration),
// 1 records every hot-path operation, and the rest are 1-in-N cadences
// around the default of 64.
var LatencySampleRates = []int{0, 1, 16, 64, 256}

// LatencyRow is one sampling rate's measurements.
type LatencyRow struct {
	// SampleEvery is the user-facing rate (0 = tracing disabled).
	SampleEvery int `json:"sampleEvery"`
	// NsPerItem is the wall-clock cost of moving one item through the
	// uncontended two-stage hot path with this much tracing attached.
	NsPerItem float64 `json:"nsPerItem"`
	// SpansStarted and SpansSampled are the tracer counters after the hot
	// run: started grows with every operation, sampled at the 1-in-N
	// cadence.
	SpansStarted uint64 `json:"spansStarted"`
	SpansSampled uint64 `json:"spansSampled"`
	// P50/P95/P99 are the sink's source-to-sink virtual latency quantiles
	// from the paced run, in seconds. Sampling rate must not move these:
	// latency is measured by histograms on every packet, not by traces.
	P50 float64 `json:"p50S"`
	P95 float64 `json:"p95S"`
	P99 float64 `json:"p99S"`
	// PrevNsPerItem and PrevP99 carry the previous artifact's numbers when
	// BENCH_latency.json is regenerated over an existing file — the same
	// before/after trajectory BENCH_pipeline.json keeps via its prev_*
	// pairs. Nil on a first run (scripts/bench.sh drives the merge).
	PrevNsPerItem *float64 `json:"prevNsPerItem,omitempty"`
	PrevP99       *float64 `json:"prevP99S,omitempty"`
}

// LatencyResult is the latency-vs-sampling-rate study: what trace sampling
// costs on the wall clock, and what the end-to-end latency histograms report
// regardless of it.
type LatencyResult struct {
	// HotItems is the item count of each wall-clock overhead run.
	HotItems int `json:"hotItems"`
	// PacedItems is the item count of each virtual-latency run.
	PacedItems int          `json:"pacedItems"`
	Rows       []LatencyRow `json:"rows"`
}

// ExpLatency sweeps LatencySampleRates. Each rate gets two runs: a
// manual-clock hot run (no virtual pacing, so ns/item isolates the
// observability tax) and a scaled-clock paced run through a 10 KB/s link
// (so the end-to-end histograms see a real latency distribution shaped by
// transfer pacing and queueing).
func ExpLatency(cfg Config) (*LatencyResult, error) {
	hotItems, pacedItems := 200_000, 400
	if cfg.Quick {
		hotItems, pacedItems = 50_000, 200
	}
	res := &LatencyResult{HotItems: hotItems, PacedItems: pacedItems}
	for _, rate := range LatencySampleRates {
		row := LatencyRow{SampleEvery: rate}
		var err error
		if row.NsPerItem, row.SpansStarted, row.SpansSampled, err = latencyHotRun(rate, hotItems); err != nil {
			return nil, fmt.Errorf("latency: hot run sample=%d: %w", rate, err)
		}
		if row.P50, row.P95, row.P99, err = latencyPacedRun(cfg, rate, pacedItems); err != nil {
			return nil, fmt.Errorf("latency: paced run sample=%d: %w", rate, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// latencySource emits n packets of wire bytes each.
type latencySource struct {
	n    int
	wire int
}

func (s *latencySource) Run(_ *pipeline.Context, out *pipeline.Emitter) error {
	for i := 0; i < s.n; i++ {
		if err := out.Emit(pipeline.NewPacket(nil, 0, s.wire)); err != nil {
			return err
		}
	}
	return nil
}

// latencyRelay passes packets through unchanged, preserving their lineage.
type latencyRelay struct{}

func (latencyRelay) Init(*pipeline.Context) error { return nil }
func (latencyRelay) Process(_ *pipeline.Context, pkt *pipeline.Packet, out *pipeline.Emitter) error {
	return out.Emit(pkt)
}
func (latencyRelay) Finish(*pipeline.Context, *pipeline.Emitter) error { return nil }

// latencySink consumes packets.
type latencySink struct{}

func (latencySink) Init(*pipeline.Context) error                                         { return nil }
func (latencySink) Process(*pipeline.Context, *pipeline.Packet, *pipeline.Emitter) error { return nil }
func (latencySink) Finish(*pipeline.Context, *pipeline.Emitter) error                    { return nil }

// latencyHotRun pushes items through an uncontended source→sink pipeline on
// a manual clock and returns wall nanoseconds per item plus the tracer's
// span counters.
func latencyHotRun(rate, items int) (nsPerItem float64, started, sampled uint64, err error) {
	clk := clock.NewManual()
	ob := obs.New(clk, obs.Config{SampleEvery: obs.SampleEveryFor(rate)})
	e := pipeline.New(clk)
	e.SetObservability(ob)
	e.SetDefaultBatchSize(16)
	src, err := e.AddSourceStage("src", 0, &latencySource{n: items, wire: 64}, pipeline.StageConfig{DisableAdaptation: true})
	if err != nil {
		return 0, 0, 0, err
	}
	sink, err := e.AddProcessorStage("sink", 0, latencySink{}, pipeline.StageConfig{
		DisableAdaptation: true, QueueCapacity: 1024,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	if err := e.Connect(src, sink, nil); err != nil {
		return 0, 0, 0, err
	}
	startWall := time.Now()
	if err := e.Run(context.Background()); err != nil {
		return 0, 0, 0, err
	}
	elapsed := time.Since(startWall)
	started, sampled = ob.Tracer.Counts()
	return float64(elapsed.Nanoseconds()) / float64(items), started, sampled, nil
}

// latencyPacedRun drives packets through source→relay→sink with a 10 KB/s
// emulated link between relay and sink, and reads the sink's end-to-end
// virtual latency quantiles back out of the registry — the same numbers
// /metrics and /cluster expose.
func latencyPacedRun(cfg Config, rate, items int) (p50, p95, p99 float64, err error) {
	clk := clock.NewScaled(cfg.scale(2000))
	ob := obs.New(clk, obs.Config{SampleEvery: obs.SampleEveryFor(rate)})
	e := pipeline.New(clk)
	e.SetObservability(ob)
	src, err := e.AddSourceStage("src", 0, &latencySource{n: items, wire: 100}, pipeline.StageConfig{DisableAdaptation: true})
	if err != nil {
		return 0, 0, 0, err
	}
	relay, err := e.AddProcessorStage("relay", 0, latencyRelay{}, pipeline.StageConfig{
		DisableAdaptation: true, QueueCapacity: 64,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	sink, err := e.AddProcessorStage("sink", 0, latencySink{}, pipeline.StageConfig{
		DisableAdaptation: true, QueueCapacity: 64,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	if err := e.Connect(src, relay, nil); err != nil {
		return 0, 0, 0, err
	}
	link := netsim.NewLink(clk, netsim.LinkConfig{Bandwidth: 10_000, Quantum: 50 * time.Millisecond})
	if err := e.Connect(relay, sink, link); err != nil {
		return 0, 0, 0, err
	}
	if err := e.Run(context.Background()); err != nil {
		return 0, 0, 0, err
	}
	labels := sink.ObsLabels()
	q := func(qv float64) float64 {
		v, _ := ob.Registry.HistogramQuantile(obs.MetricE2ELatency, labels, qv)
		return v
	}
	return q(0.50), q(0.95), q(0.99), nil
}

// Render prints the sweep as a table.
func (r *LatencyResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Latency vs trace sampling (%d hot items, %d paced items per rate)\n", r.HotItems, r.PacedItems)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "sample\tns/item\tspans started\tspans sampled\te2e p50\te2e p95\te2e p99")
	for _, row := range r.Rows {
		rateLabel := "off"
		if row.SampleEvery > 0 {
			rateLabel = fmt.Sprintf("1/%d", row.SampleEvery)
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%d\t%d\t%.3gs\t%.3gs\t%.3gs\n",
			rateLabel, row.NsPerItem, row.SpansStarted, row.SpansSampled,
			row.P50, row.P95, row.P99)
	}
	tw.Flush()
}

// WriteJSON renders the result as indented JSON (the BENCH_latency.json
// artifact).
func (r *LatencyResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadLatencyResult reads a previously written BENCH_latency.json; a
// missing or unparsable file returns nil (first run, nothing to merge).
func LoadLatencyResult(path string) *LatencyResult {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var r LatencyResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil
	}
	return &r
}

// MergePrev copies the previous artifact's headline numbers (wall ns/item
// and e2e p99) into this result's Prev* fields, keyed by sampling rate, so
// a regenerated BENCH_latency.json shows its before/after trajectory
// instead of silently overwriting it.
func (r *LatencyResult) MergePrev(prev *LatencyResult) {
	if prev == nil {
		return
	}
	byRate := make(map[int]LatencyRow, len(prev.Rows))
	for _, row := range prev.Rows {
		byRate[row.SampleEvery] = row
	}
	for i := range r.Rows {
		old, ok := byRate[r.Rows[i].SampleEvery]
		if !ok {
			continue
		}
		ns, p99 := old.NsPerItem, old.P99
		r.Rows[i].PrevNsPerItem = &ns
		r.Rows[i].PrevP99 = &p99
	}
}
