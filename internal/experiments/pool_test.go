package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		const n = 100
		var hits [n]atomic.Int32
		if err := forEach(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	boom3 := errors.New("boom 3")
	err := forEach(4, 50, func(i int) error {
		if i == 3 {
			return boom3
		}
		if i == 40 {
			return fmt.Errorf("boom 40")
		}
		return nil
	})
	if !errors.Is(err, boom3) {
		t.Fatalf("forEach = %v, want the lowest-index error", err)
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := forEach(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestParallelismResolution(t *testing.T) {
	if got := (Config{Parallelism: 3}).parallelism(); got != 3 {
		t.Fatalf("explicit Parallelism = %d, want 3", got)
	}
	got := (Config{}).parallelism()
	if raceEnabled {
		if got != 1 {
			t.Fatalf("default parallelism under -race = %d, want 1", got)
		}
	} else if got < 1 {
		t.Fatalf("default parallelism = %d, want >= 1", got)
	}
}

// TestParallelTrialsMatchSequential is the determinism contract behind the
// parallel harness: every trial builds an isolated clock, network, and
// engine, so the seed-deterministic outputs — accuracy and bytes carried —
// must be identical whatever the worker count. (Elapsed is wall-clock
// derived and noisy even sequentially, so it is excluded.)
func TestParallelTrialsMatchSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack runs; skipped in -short")
	}
	run := func(parallelism int) *csResult {
		r, err := runCountSamps(csParams{
			cfg:         Config{Quick: true, Parallelism: parallelism, Scale: 20000},
			mode:        csDistributed,
			summarySize: 100,
			bandwidth:   1_000_000,
			trials:      4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	seq := run(1)
	par := run(4)
	if seq.Acc != par.Acc {
		t.Fatalf("accuracy differs: sequential %+v, parallel %+v", seq.Acc, par.Acc)
	}
	if seq.NetworkBytes != par.NetworkBytes {
		t.Fatalf("network bytes differ: sequential %d, parallel %d", seq.NetworkBytes, par.NetworkBytes)
	}
}
