package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// Fig5Row is one line of the Figure 5 table.
type Fig5Row struct {
	Style    string
	Seconds  float64
	Accuracy float64 // 0-100, the paper's scale
}

// Fig5Result reproduces Figure 5: "Benefits of Distributed Processing:
// 4 Sub-streams" — centralized vs distributed count-samps at 100 KB/s.
type Fig5Result struct {
	Rows []Fig5Row
}

// Figure5 runs the experiment of §5.2: four sources × 25,000 integers,
// 100 KB/s links to the central machine, top-10 frequent-items query;
// version one forwards everything, version two forwards 100-item summaries.
func Figure5(cfg Config) (*Fig5Result, error) {
	params := []struct {
		style string
		p     csParams
	}{
		{"Centralized", csParams{cfg: cfg, mode: csCentralized, bandwidth: 100_000, trials: 3}},
		{"Distributed", csParams{cfg: cfg, mode: csDistributed, summarySize: 100, bandwidth: 100_000, trials: 3}},
	}
	rows := make([]Fig5Row, len(params))
	err := forEach(cfg.parallelism(), len(params), func(i int) error {
		run, err := runCountSamps(params[i].p)
		if err != nil {
			return fmt.Errorf("figure5 %s: %w", params[i].style, err)
		}
		rows[i] = Fig5Row{Style: params[i].style, Seconds: secondsOf(run.Elapsed), Accuracy: run.Acc.Score()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Rows: rows}, nil
}

// Centralized and Distributed return the named rows.
func (r *Fig5Result) Centralized() Fig5Row { return r.row("Centralized") }

// Distributed returns the distributed row.
func (r *Fig5Result) Distributed() Fig5Row { return r.row("Distributed") }

func (r *Fig5Result) row(style string) Fig5Row {
	for _, row := range r.Rows {
		if row.Style == style {
			return row
		}
	}
	return Fig5Row{}
}

// Render prints the table in the paper's format.
func (r *Fig5Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: Benefits of Distributed Processing (4 sub-streams, 100 KB/s)")
	fmt.Fprintln(w, "  [paper: Centralized 257.5 s / 99, Distributed 180.8 s / 97]")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Processing Style\tAvg Performance (sec)\tAvg Accuracy")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\n", row.Style, row.Seconds, row.Accuracy)
	}
	tw.Flush()
}
