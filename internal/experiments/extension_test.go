package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestExtScalingSourcesShape(t *testing.T) {
	skipUnderRace(t)
	res, err := ExtScalingSources(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	t.Logf("\n%s", buf.String())
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	// The paper's prediction: the distributed advantage grows with the
	// number of sources.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Speedup <= res.Rows[i-1].Speedup {
			t.Errorf("speedup not increasing: %d sources %.2fx, %d sources %.2fx",
				res.Rows[i-1].Sources, res.Rows[i-1].Speedup,
				res.Rows[i].Sources, res.Rows[i].Speedup)
		}
	}
	// Centralized time grows roughly linearly with sources; distributed
	// stays near the per-source floor.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.CentralizedS < first.CentralizedS*4 {
		t.Errorf("centralized time grew only %.1fx over 8x sources",
			last.CentralizedS/first.CentralizedS)
	}
	if last.DistributedS > first.DistributedS*2 {
		t.Errorf("distributed time grew %.1fx over 8x sources, want ~flat",
			last.DistributedS/first.DistributedS)
	}
}

func TestExtHierarchyShape(t *testing.T) {
	skipUnderRace(t)
	res, err := ExtHierarchy(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	t.Logf("\n%s", buf.String())
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	flat, hier, auto := res.Rows[0], res.Rows[1], res.Rows[2]
	if !strings.Contains(flat.Topology, "flat") || !strings.Contains(hier.Topology, "hierarchical") {
		t.Fatalf("row order unexpected: %v", res.Rows)
	}
	// The regional stage must cut WAN volume hard and finish faster.
	if hier.WANBytes*2 >= flat.WANBytes {
		t.Errorf("hierarchical WAN bytes %d not well below flat %d", hier.WANBytes, flat.WANBytes)
	}
	if hier.Seconds >= flat.Seconds {
		t.Errorf("hierarchical (%.1fs) not faster than flat (%.1fs)", hier.Seconds, flat.Seconds)
	}
	// Aggregating regionally must not wreck the answer.
	if hier.Accuracy < flat.Accuracy-10 {
		t.Errorf("hierarchical accuracy %.1f lost too much vs flat %.1f", hier.Accuracy, flat.Accuracy)
	}
	// The topology-aware planner, given no hints, must find a placement
	// as good as the hand-hinted one (same WAN reduction, similar time).
	if auto.WANBytes > hier.WANBytes*3/2 {
		t.Errorf("auto-placed WAN bytes %d well above hinted %d", auto.WANBytes, hier.WANBytes)
	}
	if auto.Seconds > flat.Seconds {
		t.Errorf("auto-placed (%.1fs) not faster than flat (%.1fs)", auto.Seconds, flat.Seconds)
	}
}
