package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"text/tabwriter"
	"time"

	"github.com/gates-middleware/gates/internal/apps/countsamps"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/grid"
	"github.com/gates-middleware/gates/internal/metrics"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/service"
)

// Chaos experiment: a node crash under checkpointed recovery.
//
// The distributed count-samps application runs with every summarizer on its
// own edge node and one idle standby. Partway through, the node hosting the
// first summarizer is killed outright — links severed, health beacons gone.
// The recovery controller must detect the death from missed health epochs,
// re-place the summarizer on the standby, restore its latest checkpointed
// sketch, and replay the black-holed upstream interval from the source's
// ring. The verdict line compares the result against a fault-free run: the
// recovered stream must reach the merger with full sequence coverage and
// essentially undamaged accuracy (the restored sketch re-derives the same
// summaries it would have produced in place).

// ChaosRow is one run mode's measurements.
type ChaosRow struct {
	// Mode is "no-failure" or "kill-recover".
	Mode string
	// Seconds is the virtual completion time of the whole application.
	Seconds float64
	// Accuracy is the final top-10 membership accuracy at the merger.
	Accuracy float64
	// Recoveries is how many instances the controller moved (0 baseline).
	Recoveries int
	// DetectS is the virtual delay from the kill to recovery starting.
	DetectS float64
	// RecoverS is the virtual duration of the recovery itself.
	RecoverS float64
	// Replayed and Discarded are the recovery's packet accounting.
	Replayed  int
	Discarded int
	// Restored reports whether checkpointed state was rewound.
	Restored bool
	// Gap reports a replay interval that outran a ring's retention.
	Gap bool
	// Coverage is the minimum, over summarizer instances, of the merger's
	// received-sequence watermark over the instance's final emission
	// cursor — 1.0 means no summary was lost.
	Coverage float64
	// Dups is how many replay-overlap packets the merger's watermark
	// dropped (the at-least-once overlap made effectively-once).
	Dups uint64
}

// ChaosResult holds the fault-free and kill-recover runs.
type ChaosResult struct {
	// KillS is when (virtual seconds) the node was killed.
	KillS float64
	Rows  []ChaosRow
}

// ExpChaos runs the distributed count-samps application to completion twice:
// untouched, and with the first summarizer's node killed mid-stream under an
// armed checkpoint/recovery plane.
func ExpChaos(cfg Config) (*ChaosResult, error) {
	killAt := 60 * time.Second
	if cfg.Quick {
		killAt = 15 * time.Second
	}
	res := &ChaosResult{KillS: killAt.Seconds()}
	rows := make([]ChaosRow, 2)
	err := forEach(cfg.parallelism(), 2, func(i int) error {
		scale := cfg.scale(1000)
		for {
			row, err := runChaos(cfg, scale, killAt, i == 1)
			if err != nil {
				return err
			}
			rows[i] = *row
			// Virtual time is deterministic, but the failure detector and
			// the killer run on wall-clock goroutines: under a loaded box
			// a timer slip can let the stream finish before the missed
			// health epochs accumulate, and the kill then recovers
			// nothing. That violates the experiment's premise (a crash
			// mid-stream), so slow the compression — widening the wall
			// margin around every virtual deadline — and rerun.
			if i == 0 || row.Recoveries > 0 || scale <= 125 {
				return nil
			}
			scale /= 2
		}
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// runChaos executes one mode: chaos=false is the fault-free baseline.
func runChaos(cfg Config, scale float64, killAt time.Duration, chaos bool) (*ChaosRow, error) {
	const sources = 4
	clk := clock.NewScaled(scale)
	cost := countsamps.DefaultCostModel()
	items := 25_000
	if cfg.Quick {
		items = 6_000
	}
	streams, truth := zipfStreams(cfg.seed(), sources, items)

	// Fabric: one node per sub-stream, one edge node per summarizer plus
	// an idle standby (the only free edge slot, so recovery's destination
	// is forced), and the central node. Links are unlimited: the failure,
	// not bandwidth, is the experiment's variable.
	dir := grid.NewDirectory()
	for i := 0; i < sources; i++ {
		if err := dir.Register(grid.Node{
			Name: fmt.Sprintf("src-%d", i+1), CPUPower: 1, MemoryMB: 512, Slots: 1,
			Sources: []string{fmt.Sprintf("stream-%d", i+1)},
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < sources; i++ {
		if err := dir.Register(grid.Node{
			Name: fmt.Sprintf("edge-%d", i+1), CPUPower: 1, MemoryMB: 512, Slots: 1, Site: "edge",
		}); err != nil {
			return nil, err
		}
	}
	if err := dir.Register(grid.Node{
		Name: "edge-standby", CPUPower: 1, MemoryMB: 512, Slots: 1, Site: "edge",
	}); err != nil {
		return nil, err
	}
	if err := dir.Register(grid.Node{Name: "central", CPUPower: 4, MemoryMB: 4096, Slots: 4}); err != nil {
		return nil, err
	}
	net := netsim.NewNetwork(clk)

	repo := service.NewRepository()
	merger := &countsamps.SummaryMerger{Cost: cost}
	if err := repo.RegisterSource("countsamps/stream", func(inst int) pipeline.Source {
		return &countsamps.StreamSource{Values: streams[inst], Batch: 25, ItemWireSize: cost.ItemWireSize}
	}); err != nil {
		return nil, err
	}
	if err := repo.RegisterProcessor("countsamps/summarize", func(inst int) pipeline.Processor {
		return countsamps.NewSummarizer(countsamps.SummarizerConfig{
			Cost:        cost,
			FlushEvery:  1000,
			SummarySize: 100,
			Seed:        cfg.seed() + int64(inst),
		})
	}); err != nil {
		return nil, err
	}
	if err := repo.RegisterProcessor("countsamps/merge", func(int) pipeline.Processor {
		return merger
	}); err != nil {
		return nil, err
	}

	dep, err := service.NewDeployer(clk, dir, repo, net)
	if err != nil {
		return nil, err
	}
	dep.SetReplayBuffer(4096)
	launcher, err := service.NewLauncher(dep)
	if err != nil {
		return nil, err
	}
	tuning := func(stageID string, _ int) pipeline.StageConfig {
		switch stageID {
		case "stream":
			return pipeline.StageConfig{DisableAdaptation: true, ComputeQuantum: time.Second}
		default:
			return pipeline.StageConfig{
				QueueCapacity: 50, DisableAdaptation: true, ComputeQuantum: time.Second,
			}
		}
	}

	appCfg := countSampsConfig(csDistributed, sources)
	// Pin summarizers to the edge pool instead of near their sources: the
	// standby then is the one legal recovery destination.
	for i := range appCfg.Stages {
		if appCfg.Stages[i].ID == "summarize" {
			appCfg.Stages[i].NearSources = nil
			appCfg.Stages[i].Requirement.Site = "edge"
		}
	}

	sw := clock.NewStopwatch(clk)
	app, err := launcher.LaunchConfig(context.Background(), appCfg, tuning)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	store := service.NewCheckpointStore()
	ck, err := service.NewCheckpointer(app.Deployment, store, 5*time.Second)
	if err != nil {
		return nil, err
	}
	rec, err := service.NewRecovery(app.Deployment, store, 2*time.Second, 2)
	if err != nil {
		return nil, err
	}

	var killMu sync.Mutex
	var killT time.Time
	if chaos {
		ck.Start(ctx)
		defer ck.Stop()
		rec.Start(ctx)
		defer rec.Stop()
		victim, ok := app.Deployment.NodeFor("summarize", 0)
		if !ok {
			return nil, fmt.Errorf("chaos: summarize/0 not placed")
		}
		go func() {
			select {
			case <-clk.After(killAt):
				killMu.Lock()
				killT = clk.Now()
				killMu.Unlock()
				net.Kill(victim)
			case <-ctx.Done():
			}
		}()
	}

	if err := app.Wait(); err != nil {
		return nil, err
	}
	cancel()

	row := &ChaosRow{
		Mode:     "no-failure",
		Seconds:  secondsOf(sw.Elapsed()),
		Accuracy: metrics.TopKAccuracy(truth, merger.TopK(10), 10).Membership,
		Coverage: 1,
	}
	central, ok := app.Stage("central", 0)
	if !ok {
		return nil, fmt.Errorf("chaos: central/0 not deployed")
	}
	row.Dups = central.Stats().DupsDropped
	row.Coverage = sinkCoverage(app, central, sources)
	if chaos {
		row.Mode = "kill-recover"
		killMu.Lock()
		kt := killT
		killMu.Unlock()
		for _, ev := range rec.Events() {
			if ev.Err != "" {
				return nil, fmt.Errorf("chaos: recovery failed: %s", ev.Err)
			}
			row.Recoveries++
			row.Replayed += ev.Replayed
			row.Discarded += ev.Discarded
			row.Restored = row.Restored || ev.Restored
			row.Gap = row.Gap || ev.Gap
			row.DetectS = ev.At.Sub(kt).Seconds()
			row.RecoverS = ev.Duration.Seconds()
		}
	}
	return row, nil
}

// sinkCoverage reports the minimum fraction, over summarizer instances, of
// the merger's received-sequence watermark against the instance's final
// emission cursor. 1.0 means every stamped summary (or its replayed copy)
// reached the merger. Read only after the application has finished.
func sinkCoverage(app *service.Application, central *pipeline.Stage, sources int) float64 {
	marks := central.Marks()
	cov := 1.0
	for i := 0; i < sources; i++ {
		st, ok := app.Stage("summarize", i)
		if !ok {
			continue
		}
		// The last stamped emission is the end-of-stream marker, which
		// consumers count but never mark; only data emissions are owed.
		hi := st.EmitSeq()
		if hi > 0 {
			hi--
		}
		if hi == 0 {
			continue
		}
		var next uint64
		for _, m := range marks {
			if m.Stage == "summarize" && m.Instance == i {
				next = m.Next
				break
			}
		}
		if c := float64(next) / float64(hi); c < cov {
			cov = c
		}
	}
	return cov
}

// Render prints the comparison table and a greppable verdict line.
func (r *ChaosResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Chaos: node kill under checkpointed recovery")
	fmt.Fprintf(w, "  [the node hosting summarize/0 is killed at t=%.0fs; the recovery controller must detect, re-place, restore, and replay]\n", r.KillS)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Mode\tTime (s)\tAccuracy\tRecoveries\tDetect (s)\tRecover (s)\tReplayed\tRestored\tCoverage\tDups dropped")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.3f\t%d\t%.1f\t%.3f\t%d\t%v\t%.3f\t%d\n",
			row.Mode, row.Seconds, row.Accuracy, row.Recoveries,
			row.DetectS, row.RecoverS, row.Replayed, row.Restored, row.Coverage, row.Dups)
	}
	tw.Flush()
	var base, kill *ChaosRow
	for i := range r.Rows {
		switch r.Rows[i].Mode {
		case "no-failure":
			base = &r.Rows[i]
		case "kill-recover":
			kill = &r.Rows[i]
		}
	}
	if base == nil || kill == nil {
		return
	}
	drop := base.Accuracy - kill.Accuracy
	fmt.Fprintf(w, "chaos-verdict: recoveries=%d restored=%v gap=%v coverage=%.3f accuracy_drop=%.3f accuracy_ok=%v\n",
		kill.Recoveries, kill.Restored, kill.Gap, kill.Coverage, drop, drop <= 0.101)
}
