package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/gates-middleware/gates/internal/metrics"
)

// Report is the machine-readable form of a full evaluation run: every
// figure, the ablations, and the extension studies, with convergence traces
// flattened to (seconds, value) points.
type Report struct {
	// Quick records whether workloads were shrunk.
	Quick bool `json:"quick"`
	// Seed is the workload seed used.
	Seed int64 `json:"seed"`

	Figure5   []Fig5Row      `json:"figure5"`
	Figure6   []SweepRowJSON `json:"figure6"`
	Figure7   []SweepRowJSON `json:"figure7"`
	Figure8   []SeriesJSON   `json:"figure8"`
	Figure9   []SeriesJSON   `json:"figure9"`
	Ablations []AblationJSON `json:"ablations"`
	Scaling   []ScalingRow   `json:"scalingSources"`
	Hierarchy []HierarchyRow `json:"hierarchy"`
	Migration *MigrationJSON `json:"migration"`
}

// MigrationJSON is the live re-deployment study.
type MigrationJSON struct {
	CollapseS float64            `json:"collapseS"`
	Rows      []MigrationRowJSON `json:"rows"`
}

// MigrationRowJSON is one deployment mode's row with its trace.
type MigrationRowJSON struct {
	Mode             string      `json:"mode"`
	Seconds          float64     `json:"seconds"`
	Accuracy         float64     `json:"accuracy"`
	Migrations       int         `json:"migrations"`
	PostCollapseRate float64     `json:"postCollapseRate"`
	Trace            []PointJSON `json:"trace"`
}

// SweepRowJSON is one version's row of a Figure 6/7-style sweep.
type SweepRowJSON struct {
	Version    string    `json:"version"`
	Bandwidths []int64   `json:"bandwidths"`
	Values     []float64 `json:"values"`
}

// PointJSON is one trace sample.
type PointJSON struct {
	Seconds float64 `json:"t"`
	Value   float64 `json:"v"`
}

// SeriesJSON is one convergence series with its trace.
type SeriesJSON struct {
	Label     string      `json:"label"`
	Expected  float64     `json:"expected"`
	Converged float64     `json:"converged"`
	Trace     []PointJSON `json:"trace"`
}

// AblationJSON is one ablation study.
type AblationJSON struct {
	Name string        `json:"name"`
	Rows []AblationRow `json:"rows"`
}

// tracePoints flattens a time series, downsampled to a plottable size.
func tracePoints(ts *metrics.TimeSeries) []PointJSON {
	pts := ts.Downsample(60)
	out := make([]PointJSON, len(pts))
	for i, p := range pts {
		out[i] = PointJSON{Seconds: p.T.Seconds(), Value: p.V}
	}
	return out
}

func seriesJSON(in []ConvergenceSeries) []SeriesJSON {
	out := make([]SeriesJSON, len(in))
	for i, s := range in {
		out[i] = SeriesJSON{
			Label:     s.Label,
			Expected:  s.Expected,
			Converged: s.Converged,
			Trace:     tracePoints(s.Trace),
		}
	}
	return out
}

func sweepJSON(r *Fig67Result, pick func(Fig67Cell) float64) []SweepRowJSON {
	out := make([]SweepRowJSON, len(Fig67Versions))
	for v, version := range Fig67Versions {
		row := SweepRowJSON{Version: version, Bandwidths: Fig67Bandwidths}
		for b := range Fig67Bandwidths {
			row.Values = append(row.Values, pick(r.Cells[v][b]))
		}
		out[v] = row
	}
	return out
}

// RunAll executes the complete evaluation and assembles the report.
func RunAll(cfg Config) (*Report, error) {
	rep := &Report{Quick: cfg.Quick, Seed: cfg.seed()}

	f5, err := Figure5(cfg)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	rep.Figure5 = f5.Rows

	f67, err := Figure67(cfg)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	rep.Figure6 = sweepJSON(f67, func(c Fig67Cell) float64 { return c.Seconds })
	rep.Figure7 = sweepJSON(f67, func(c Fig67Cell) float64 { return c.Accuracy })

	f8, err := Figure8(cfg)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	rep.Figure8 = seriesJSON(f8.Series)

	f9, err := Figure9(cfg)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	rep.Figure9 = seriesJSON(f9.Series)

	for _, study := range []func(Config) (*AblationResult, error){
		AblationDownstreamSign, AblationPhi2, AblationWeights,
		AblationWindow, AblationInterval, AblationCongestionPriority,
	} {
		res, err := study(cfg)
		if err != nil {
			return nil, fmt.Errorf("report: %w", err)
		}
		rep.Ablations = append(rep.Ablations, AblationJSON{Name: res.Name, Rows: res.Rows})
	}

	scaling, err := ExtScalingSources(cfg)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	rep.Scaling = scaling.Rows

	hier, err := ExtHierarchy(cfg)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	rep.Hierarchy = hier.Rows

	mig, err := ExpMigration(cfg)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	rep.Migration = &MigrationJSON{CollapseS: mig.CollapseS}
	for _, row := range mig.Rows {
		rep.Migration.Rows = append(rep.Migration.Rows, MigrationRowJSON{
			Mode:             row.Mode,
			Seconds:          row.Seconds,
			Accuracy:         row.Accuracy,
			Migrations:       row.Migrations,
			PostCollapseRate: row.PostCollapseRate,
			Trace:            tracePoints(row.Trace),
		})
	}
	return rep, nil
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
