package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"github.com/gates-middleware/gates/internal/apps/countsamps"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/grid"
	"github.com/gates-middleware/gates/internal/metrics"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/service"
)

// Extension experiments: measurements the paper predicts but does not run.
//
// §5.2 closes with "with larger number of data sources and/or other
// networking configurations, a larger difference can be expected".
// ExtScalingSources quantifies the first clause (the distributed speedup as
// sources grow) and ExtHierarchy the second (a two-site WAN topology where a
// third, regional aggregation stage pays off — the "more than two stages"
// case of §3.1).

// ScalingRow is one source-count measurement.
type ScalingRow struct {
	Sources      int
	CentralizedS float64
	DistributedS float64
	// Speedup is CentralizedS / DistributedS.
	Speedup float64
}

// ScalingResult is the source-count scaling study.
type ScalingResult struct {
	Rows []ScalingRow
}

// ExtScalingSources reruns the Figure 5 comparison at 2, 4, 8 and 16
// sources (100 KB/s links). The centralized version's cost grows with the
// union stream while the distributed version parallelizes across sources,
// so the speedup must grow with the source count.
func ExtScalingSources(cfg Config) (*ScalingResult, error) {
	res := &ScalingResult{}
	for _, m := range []int{2, 4, 8, 16} {
		cen, err := runCountSamps(csParams{cfg: cfg, mode: csCentralized, bandwidth: 100_000, sources: m})
		if err != nil {
			return nil, fmt.Errorf("scaling centralized m=%d: %w", m, err)
		}
		dis, err := runCountSamps(csParams{cfg: cfg, mode: csDistributed, summarySize: 100, bandwidth: 100_000, sources: m})
		if err != nil {
			return nil, fmt.Errorf("scaling distributed m=%d: %w", m, err)
		}
		res.Rows = append(res.Rows, ScalingRow{
			Sources:      m,
			CentralizedS: secondsOf(cen.Elapsed),
			DistributedS: secondsOf(dis.Elapsed),
			Speedup:      secondsOf(cen.Elapsed) / secondsOf(dis.Elapsed),
		})
	}
	return res, nil
}

// Render prints the scaling table.
func (r *ScalingResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Extension: distributed speedup vs. source count (100 KB/s links)")
	fmt.Fprintln(w, "  [paper §5.2: \"with larger number of data sources ... a larger difference can be expected\"]")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Sources\tCentralized (s)\tDistributed (s)\tSpeedup")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.2fx\n", row.Sources, row.CentralizedS, row.DistributedS, row.Speedup)
	}
	tw.Flush()
}

// HierarchyRow is one topology's measurement.
type HierarchyRow struct {
	Topology string
	Seconds  float64
	Accuracy float64
	// WANBytes is the volume that crossed the inter-site links.
	WANBytes int64
}

// HierarchyResult compares flat and hierarchical aggregation.
type HierarchyResult struct {
	Rows []HierarchyRow
}

// ExtHierarchy runs count-samps on a two-site topology: four sources per
// site, fast intra-site links (1 MB/s), and a slow 2 KB/s wide-area link
// between the sites. The flat topology sends every remote source's
// summaries across the WAN; the hierarchical topology inserts a regional
// merger at the remote site (a third pipeline stage) so one aggregated
// stream crosses the WAN instead of four.
func ExtHierarchy(cfg Config) (*HierarchyResult, error) {
	res := &HierarchyResult{}
	for _, variant := range []struct {
		hier, auto bool
	}{
		{false, false}, // flat
		{true, false},  // hierarchical, hint-placed
		{true, true},   // hierarchical, topology-aware auto-placement
	} {
		row, err := runHierarchy(cfg, variant.hier, variant.auto)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the comparison.
func (r *HierarchyResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Extension: flat vs hierarchical aggregation (2 sites x 4 sources, 2 KB/s WAN)")
	fmt.Fprintln(w, "  [paper §3.1: \"more than two stages could also be required\"]")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Topology\tTime (s)\tAccuracy\tWAN bytes")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%d\n", row.Topology, row.Seconds, row.Accuracy, row.WANBytes)
	}
	tw.Flush()
}

// runHierarchy measures one topology. autoPlace drops the regional and
// global stages' near-source hints and lets the topology-aware planner
// derive the placement from the link bandwidths instead.
func runHierarchy(cfg Config, hierarchical, autoPlace bool) (HierarchyRow, error) {
	scale := cfg.scale(2000)
	clk := clock.NewScaled(scale)
	cost := countsamps.DefaultCostModel()
	items := 25_000
	if cfg.Quick {
		items = 6_000
	}
	streams, truth := zipfStreams(cfg.seed(), 8, items)

	// Two sites: site-a hosts the global merger; site-b's traffic must
	// cross the WAN.
	dir := grid.NewDirectory()
	net := netsim.NewNetwork(clk)
	fast := netsim.LinkConfig{Bandwidth: netsim.BW1M, Quantum: time.Second}
	slow := netsim.LinkConfig{Bandwidth: 2_000, Quantum: time.Second}
	// One shared WAN uplink per direction: all cross-site pairs compete
	// for the same 2 KB/s, as they would on a real site uplink.
	wanAB := netsim.NewLink(clk, slow)
	wanBA := netsim.NewLink(clk, slow)
	wanLinks := []*netsim.Link{wanAB, wanBA}
	names := make([]string, 0, 10)
	for site := 0; site < 2; site++ {
		siteName := []string{"a", "b"}[site]
		hub := fmt.Sprintf("hub-%s", siteName)
		if err := dir.Register(grid.Node{
			Name: hub, Site: siteName, CPUPower: 4, MemoryMB: 4096, Slots: 4,
			Sources: []string{fmt.Sprintf("region-%s", siteName)},
		}); err != nil {
			return HierarchyRow{}, err
		}
		names = append(names, hub)
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("%s-src-%d", siteName, i+1)
			if err := dir.Register(grid.Node{
				Name: name, Site: siteName, CPUPower: 1, MemoryMB: 512, Slots: 2,
				Sources: []string{fmt.Sprintf("stream-%d", site*4+i+1)},
			}); err != nil {
				return HierarchyRow{}, err
			}
			names = append(names, name)
		}
	}
	siteOf := func(name string) byte {
		if name == "hub-a" || name[0] == 'a' {
			return 'a'
		}
		return 'b'
	}
	for _, from := range names {
		for _, to := range names {
			if from == to {
				continue
			}
			if siteOf(from) == siteOf(to) {
				net.Connect(from, to, fast)
			} else if siteOf(from) == 'a' {
				net.InstallLink(from, to, wanAB)
			} else {
				net.InstallLink(from, to, wanBA)
			}
		}
	}

	repo := service.NewRepository()
	merger := &countsamps.SummaryMerger{Cost: cost}
	if err := repo.RegisterSource("h/stream", func(inst int) pipeline.Source {
		return &countsamps.StreamSource{Values: streams[inst], Batch: 25, ItemWireSize: cost.ItemWireSize}
	}); err != nil {
		return HierarchyRow{}, err
	}
	if err := repo.RegisterProcessor("h/summarize", func(inst int) pipeline.Processor {
		return countsamps.NewSummarizer(countsamps.SummarizerConfig{
			Cost: cost, SummarySize: 100, Seed: cfg.seed() + int64(inst),
		})
	}); err != nil {
		return HierarchyRow{}, err
	}
	if err := repo.RegisterProcessor("h/regional", func(int) pipeline.Processor {
		return &countsamps.SummaryMerger{Cost: cost, RelayTopN: 100, RelayEvery: 4}
	}); err != nil {
		return HierarchyRow{}, err
	}
	if err := repo.RegisterProcessor("h/global", func(int) pipeline.Processor {
		return merger
	}); err != nil {
		return HierarchyRow{}, err
	}

	near := make([]string, 8)
	for i := range near {
		near[i] = fmt.Sprintf("stream-%d", i+1)
	}
	appCfg := &service.AppConfig{
		Name: "count-samps-hierarchy",
		Stages: []service.StageDef{
			{ID: "stream", Code: "h/stream", Source: true, Instances: 8, NearSources: near},
			{ID: "summarize", Code: "h/summarize", Instances: 8, NearSources: near},
		},
	}
	if hierarchical {
		regional := service.StageDef{ID: "regional", Code: "h/regional", Instances: 2,
			NearSources: []string{"region-a", "region-b"}}
		global := service.StageDef{ID: "global", Code: "h/global",
			NearSources: []string{"region-a"}}
		if autoPlace {
			regional.NearSources = nil
			global.NearSources = nil
		}
		appCfg.Stages = append(appCfg.Stages, regional, global)
		appCfg.Connections = []service.ConnDef{
			{From: "stream", To: "summarize", Fanout: service.FanoutPairwise},
			// Grouped fanout partitions the eight summarizers over
			// the two regional mergers: 0-3 feed site a's, 4-7 feed
			// site b's.
			{From: "summarize", To: "regional", Fanout: service.FanoutGrouped},
			{From: "regional", To: "global"},
		}
	} else {
		appCfg.Stages = append(appCfg.Stages,
			service.StageDef{ID: "global", Code: "h/global", NearSources: []string{"region-a"}},
		)
		appCfg.Connections = []service.ConnDef{
			{From: "stream", To: "summarize", Fanout: service.FanoutPairwise},
			{From: "summarize", To: "global"},
		}
	}

	dep, err := service.NewDeployer(clk, dir, repo, net)
	if err != nil {
		return HierarchyRow{}, err
	}
	if autoPlace {
		dep.SetTopologyAware(true)
	}
	launcher, err := service.NewLauncher(dep)
	if err != nil {
		return HierarchyRow{}, err
	}
	tuning := func(stageID string, _ int) pipeline.StageConfig {
		if stageID == "stream" {
			return pipeline.StageConfig{DisableAdaptation: true, ComputeQuantum: time.Second}
		}
		return pipeline.StageConfig{ComputeQuantum: time.Second}
	}
	sw := clock.NewStopwatch(clk)
	app, err := launcher.LaunchConfig(context.Background(), appCfg, tuning)
	if err != nil {
		return HierarchyRow{}, err
	}
	if err := app.Wait(); err != nil {
		return HierarchyRow{}, err
	}

	var wan int64
	for _, l := range wanLinks {
		wan += l.Stats().Bytes
	}
	label := "flat (2 stages)"
	if hierarchical {
		label = "hierarchical (3 stages)"
		if autoPlace {
			label = "hierarchical (auto-placed)"
		}
	}
	return HierarchyRow{
		Topology: label,
		Seconds:  secondsOf(sw.Elapsed()),
		Accuracy: metrics.TopKAccuracy(truth, merger.TopK(10), 10).Score(),
		WANBytes: wan,
	}, nil
}
