package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// Fig67Bandwidths are the four network configurations of §5.3, in bytes per
// second.
var Fig67Bandwidths = []int64{1_000, 10_000, 100_000, 1_000_000}

// Fig67Versions labels the five application versions: four fixed summary
// sizes and the self-adapting version.
var Fig67Versions = []string{"40", "80", "120", "160", "adaptive"}

// Fig67Cell is one (version, bandwidth) measurement.
type Fig67Cell struct {
	Seconds  float64
	Accuracy float64 // 0-100
	// AdaptiveFinalN is the converged summary size (adaptive cells only).
	AdaptiveFinalN float64
}

// Fig67Result holds the shared runs behind Figure 6 (execution time) and
// Figure 7 (accuracy): Cells[v][b] pairs Fig67Versions[v] with
// Fig67Bandwidths[b].
type Fig67Result struct {
	Cells [][]Fig67Cell
}

// Figure67 runs the §5.3 sweep: five versions of count-samps (summary size
// 40/80/120/160 and adaptive 10–240) across link bandwidths of 1 KB/s,
// 10 KB/s, 100 KB/s, and 1 MB/s.
func Figure67(cfg Config) (*Fig67Result, error) {
	res := &Fig67Result{Cells: make([][]Fig67Cell, len(Fig67Versions))}
	for v := range Fig67Versions {
		res.Cells[v] = make([]Fig67Cell, len(Fig67Bandwidths))
	}
	// The 5×4 grid is embarrassingly parallel: every cell is an isolated
	// full-stack run. Flatten it onto the worker pool; each worker writes
	// its own cell, so the table layout is deterministic.
	nCells := len(Fig67Versions) * len(Fig67Bandwidths)
	seq := cfg
	seq.Parallelism = 1 // trials nest inside the cell-level pool
	err := forEach(cfg.parallelism(), nCells, func(i int) error {
		v, b := i/len(Fig67Bandwidths), i%len(Fig67Bandwidths)
		version, bw := Fig67Versions[v], Fig67Bandwidths[b]
		p := csParams{cfg: seq, bandwidth: bw, trials: 5}
		if version == "adaptive" {
			p.mode = csAdaptive
		} else {
			p.mode = csDistributed
			fmt.Sscanf(version, "%d", &p.summarySize)
		}
		run, err := runCountSamps(p)
		if err != nil {
			return fmt.Errorf("figure6/7 version=%s bw=%d: %w", version, bw, err)
		}
		res.Cells[v][b] = Fig67Cell{
			Seconds:        secondsOf(run.Elapsed),
			Accuracy:       run.Acc.Score(),
			AdaptiveFinalN: run.FinalSummarySize,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// RenderTime prints the Figure 6 table (execution time, seconds).
func (r *Fig67Result) RenderTime(w io.Writer) {
	fmt.Fprintln(w, "Figure 6: Execution time (s) of five count-samps versions across bandwidths")
	r.render(w, func(c Fig67Cell) string { return fmt.Sprintf("%.1f", c.Seconds) })
}

// RenderAccuracy prints the Figure 7 table (accuracy, 0-100).
func (r *Fig67Result) RenderAccuracy(w io.Writer) {
	fmt.Fprintln(w, "Figure 7: Accuracy of five count-samps versions across bandwidths")
	r.render(w, func(c Fig67Cell) string { return fmt.Sprintf("%.1f", c.Accuracy) })
}

func (r *Fig67Result) render(w io.Writer, cell func(Fig67Cell) string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Version\\Bandwidth")
	for _, bw := range Fig67Bandwidths {
		fmt.Fprintf(tw, "\t%s", bwLabel(bw))
	}
	fmt.Fprintln(tw)
	for v, version := range Fig67Versions {
		fmt.Fprintf(tw, "summary=%s", version)
		for b := range Fig67Bandwidths {
			fmt.Fprintf(tw, "\t%s", cell(r.Cells[v][b]))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Cell returns the measurement for a version label and bandwidth.
func (r *Fig67Result) Cell(version string, bw int64) (Fig67Cell, bool) {
	for v, name := range Fig67Versions {
		if name != version {
			continue
		}
		for b, width := range Fig67Bandwidths {
			if width == bw {
				return r.Cells[v][b], true
			}
		}
	}
	return Fig67Cell{}, false
}

func bwLabel(bw int64) string {
	if bw >= 1_000_000 {
		return fmt.Sprintf("%dMB/s", bw/1_000_000)
	}
	return fmt.Sprintf("%dKB/s", bw/1_000)
}
