// Package builtin publishes the repository codes and demo grid fabric the
// command-line tools share. It plays the role of the paper's web-hosted
// application repository: gates-launcher and gates-node resolve the stage
// codes named in XML descriptors against this registry.
package builtin

import (
	"encoding/gob"
	"fmt"
	"time"

	"github.com/gates-middleware/gates/internal/apps/compsteer"
	"github.com/gates-middleware/gates/internal/apps/countsamps"
	"github.com/gates-middleware/gates/internal/apps/intrusion"
	"github.com/gates-middleware/gates/internal/apps/surveillance"
	"github.com/gates-middleware/gates/internal/apps/tieredfilter"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/grid"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/service"
	"github.com/gates-middleware/gates/internal/workload"
)

// Register installs every built-in stage code into repo. The codes cover
// the paper's two application templates plus the two motivating-application
// demos:
//
//	workload/zipf            4×25,000-integer Zipf sub-streams (source)
//	countsamps/summarize     per-source counting-samples summaries
//	countsamps/merge         central summary merger
//	countsamps/raw           central raw-item counter (centralized version)
//	compsteer/sim            160 B/s simulation source
//	compsteer/sampler        adaptive sampler (rate 0.01–1)
//	compsteer/analyzer       8 ms/byte analysis stage
//	intrusion/log            site connection-log source (with an attacker)
//	intrusion/filter         per-site top-talker filter
//	intrusion/detector       global scan detector
//	surveillance/camera      10 fps camera source
//	surveillance/extract     adaptive feature extractor
//	surveillance/fusion      central multi-camera fusion
//	tieredfilter/detector    collision-event source (LHC motivating app)
//	tieredfilter/tier1       fixed energy cut near each detector
//	tieredfilter/tier2       adaptive quality cut
//	tieredfilter/collector   heavy per-event reconstruction
func Register(repo *service.Repository) error {
	RegisterWireTypes()
	cost := countsamps.DefaultCostModel()
	regs := []func() error{
		func() error {
			return repo.RegisterSource("workload/zipf", func(inst int) pipeline.Source {
				vals := workload.Take(workload.NewZipf(int64(inst)*101+7, 1.5, 50_000), 25_000)
				return &countsamps.StreamSource{Values: vals, Batch: 25, ItemWireSize: cost.ItemWireSize}
			})
		},
		func() error {
			return repo.RegisterProcessor("countsamps/summarize", func(inst int) pipeline.Processor {
				return countsamps.NewSummarizer(countsamps.SummarizerConfig{
					Cost: cost, Adaptive: true, Seed: int64(inst),
				})
			})
		},
		func() error {
			return repo.RegisterProcessor("countsamps/merge", func(int) pipeline.Processor {
				return &countsamps.SummaryMerger{Cost: cost}
			})
		},
		func() error {
			return repo.RegisterProcessor("countsamps/raw", func(int) pipeline.Processor {
				return &countsamps.RawCounter{Cost: cost, Seed: 1}
			})
		},
		func() error {
			return repo.RegisterSource("compsteer/sim", func(int) pipeline.Source {
				return &compsteer.SimulationSource{GenRate: 160, Duration: 300 * time.Second, PacketBytes: 16}
			})
		},
		func() error {
			return repo.RegisterProcessor("compsteer/sampler", func(int) pipeline.Processor {
				return &compsteer.Sampler{}
			})
		},
		func() error {
			return repo.RegisterProcessor("compsteer/analyzer", func(int) pipeline.Processor {
				return &compsteer.Analyzer{CostPerByte: 8 * time.Millisecond}
			})
		},
		func() error {
			return repo.RegisterSource("intrusion/log", func(inst int) pipeline.Source {
				src := &intrusion.LogSource{
					Site: inst, Background: 5000, Hosts: 2000, Seed: int64(inst + 1),
				}
				if inst == 1 {
					src.AttackerSrc = 0xBADF00D
					src.AttackRecords = 800
				}
				return src
			})
		},
		func() error {
			return repo.RegisterProcessor("intrusion/filter", func(inst int) pipeline.Processor {
				return intrusion.NewSiteFilter(intrusion.SiteFilterConfig{Adaptive: true, Seed: int64(inst)})
			})
		},
		func() error {
			return repo.RegisterProcessor("intrusion/detector", func(int) pipeline.Processor {
				return intrusion.NewDetector(intrusion.DetectorConfig{})
			})
		},
		func() error {
			return repo.RegisterSource("surveillance/camera", func(inst int) pipeline.Source {
				return &surveillance.Camera{
					ID: inst, FPS: 10, Duration: 120 * time.Second,
					SceneObjects: 8, Coverage: 0.6, Seed: int64(inst + 1),
				}
			})
		},
		func() error {
			return repo.RegisterProcessor("surveillance/extract", func(int) pipeline.Processor {
				return surveillance.NewExtractor(surveillance.ExtractorConfig{Adaptive: true})
			})
		},
		func() error {
			return repo.RegisterProcessor("surveillance/fusion", func(int) pipeline.Processor {
				return surveillance.NewFusion()
			})
		},
		func() error {
			return repo.RegisterSource("tieredfilter/detector", func(inst int) pipeline.Source {
				return &tieredfilter.DetectorSource{
					Detector: inst, Events: 60_000, Seed: int64(inst + 1),
					PerEventCost: time.Millisecond,
				}
			})
		},
		func() error {
			return repo.RegisterProcessor("tieredfilter/tier1", func(int) pipeline.Processor {
				return tieredfilter.NewFilter(tieredfilter.FilterConfig{
					Feature: tieredfilter.ByEnergy, FixedThreshold: 2,
				})
			})
		},
		func() error {
			return repo.RegisterProcessor("tieredfilter/tier2", func(int) pipeline.Processor {
				return tieredfilter.NewFilter(tieredfilter.FilterConfig{
					Feature: tieredfilter.ByQuality, Adaptive: true,
					Min: 0.5, Max: 6, Initial: 0.5,
				})
			})
		},
		func() error {
			return repo.RegisterProcessor("tieredfilter/collector", func(int) pipeline.Processor {
				return &tieredfilter.Collector{PerEventCost: 25 * time.Millisecond}
			})
		},
	}
	for _, reg := range regs {
		if err := reg(); err != nil {
			return err
		}
	}
	return nil
}

// RegisterWireTypes registers every built-in application's packet payload
// with encoding/gob, so the payloads survive a TCP hop between gates-node
// processes. Registration is idempotent per type; callers composing their
// own repositories with built-in payload types may call it directly.
func RegisterWireTypes() {
	gob.Register([]int(nil))
	gob.Register(&countsamps.Summary{})
	gob.Register(&intrusion.ConnBatch{})
	gob.Register(&intrusion.SiteReport{})
	gob.Register(&surveillance.Frame{})
	gob.Register(&surveillance.Detections{})
	gob.Register(&tieredfilter.EventBatch{})
	gob.Register(&compsteer.MeshChunk{})
	gob.Register(&compsteer.SteeringCommand{})
}

// Fabric builds the demo grid the command-line tools deploy onto: four
// stream-hosting edge nodes (src-1..src-4 hosting stream-1..stream-4, and
// doubling as mesh/camera/log sites) plus a 4-slot central node, with the
// given bandwidth on every cross-node link.
func Fabric(clk clock.Clock, bandwidth int64) (*grid.Directory, *netsim.Network, error) {
	dir := grid.NewDirectory()
	for i := 1; i <= 4; i++ {
		n := grid.Node{
			Name: fmt.Sprintf("src-%d", i), CPUPower: 1, MemoryMB: 1024, Slots: 3,
			Sources: []string{
				fmt.Sprintf("stream-%d", i),
				fmt.Sprintf("site-%d", i),
				fmt.Sprintf("camera-%d", i),
			},
		}
		if i == 1 {
			n.Sources = append(n.Sources, "mesh")
		}
		if err := dir.Register(n); err != nil {
			return nil, nil, err
		}
	}
	if err := dir.Register(grid.Node{Name: "central", CPUPower: 4, MemoryMB: 8192, Slots: 6}); err != nil {
		return nil, nil, err
	}
	net := netsim.NewNetwork(clk)
	net.SetDefaultLink(netsim.LinkConfig{Bandwidth: bandwidth, Quantum: 500 * time.Millisecond})
	for _, n := range dir.List() {
		net.AddNode(n.Name)
	}
	return dir, net, nil
}
