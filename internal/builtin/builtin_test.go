package builtin

import (
	"context"
	"testing"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/service"
)

func TestRegisterInstallsAllCodes(t *testing.T) {
	repo := service.NewRepository()
	if err := Register(repo); err != nil {
		t.Fatal(err)
	}
	wantProcessors := []string{
		"countsamps/summarize", "countsamps/merge", "countsamps/raw",
		"compsteer/sampler", "compsteer/analyzer",
		"intrusion/filter", "intrusion/detector",
		"surveillance/extract", "surveillance/fusion",
		"tieredfilter/tier1", "tieredfilter/tier2", "tieredfilter/collector",
	}
	for _, code := range wantProcessors {
		f, ok := repo.Processor(code)
		if !ok {
			t.Errorf("processor %q missing", code)
			continue
		}
		if f(0) == nil {
			t.Errorf("processor %q factory returned nil", code)
		}
	}
	wantSources := []string{
		"workload/zipf", "compsteer/sim", "intrusion/log", "surveillance/camera",
		"tieredfilter/detector",
	}
	for _, code := range wantSources {
		f, ok := repo.Source(code)
		if !ok {
			t.Errorf("source %q missing", code)
			continue
		}
		if f(0) == nil {
			t.Errorf("source %q factory returned nil", code)
		}
	}
}

func TestRegisterTwiceFails(t *testing.T) {
	repo := service.NewRepository()
	if err := Register(repo); err != nil {
		t.Fatal(err)
	}
	if err := Register(repo); err == nil {
		t.Fatal("double registration accepted")
	}
}

func TestFabricSupportsBuiltinApps(t *testing.T) {
	clk := clock.NewScaled(20_000)
	dir, net, err := Fabric(clk, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(dir.List()) != 5 {
		t.Fatalf("fabric has %d nodes, want 5", len(dir.List()))
	}
	if net.Nodes() == 0 {
		t.Fatal("network knows no nodes")
	}
	repo := service.NewRepository()
	if err := Register(repo); err != nil {
		t.Fatal(err)
	}
	dep, err := service.NewDeployer(clk, dir, repo, net)
	if err != nil {
		t.Fatal(err)
	}
	launcher, err := service.NewLauncher(dep)
	if err != nil {
		t.Fatal(err)
	}
	// The comp-steer descriptor must deploy and run on the demo fabric.
	app, err := launcher.Launch(context.Background(), `
<application name="smoke">
  <stage id="sim" code="compsteer/sim" source="true"><nearSource>mesh</nearSource></stage>
  <stage id="sampler" code="compsteer/sampler"><nearSource>mesh</nearSource></stage>
  <stage id="analysis" code="compsteer/analyzer"/>
  <connection from="sim" to="sampler"/>
  <connection from="sampler" to="analysis"/>
</application>`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Wait(); err != nil {
		t.Fatal(err)
	}
	st, ok := app.Stage("analysis", 0)
	if !ok || st.Stats().PacketsIn == 0 {
		t.Fatal("analysis stage received nothing")
	}
}

// TestEveryBuiltinAppLaunches deploys and drains one descriptor per
// built-in application on the demo fabric — the launcher soak test.
func TestEveryBuiltinAppLaunches(t *testing.T) {
	apps := map[string]string{
		"countsamps": `
<application name="countsamps">
  <stage id="stream" code="workload/zipf" source="true" instances="4">
    <nearSource>stream-1</nearSource><nearSource>stream-2</nearSource>
    <nearSource>stream-3</nearSource><nearSource>stream-4</nearSource>
  </stage>
  <stage id="summarize" code="countsamps/summarize" instances="4">
    <nearSource>stream-1</nearSource><nearSource>stream-2</nearSource>
    <nearSource>stream-3</nearSource><nearSource>stream-4</nearSource>
  </stage>
  <stage id="merge" code="countsamps/merge"><requirement minCPU="2"/></stage>
  <connection from="stream" to="summarize" fanout="pairwise"/>
  <connection from="summarize" to="merge"/>
</application>`,
		"compsteer": `
<application name="compsteer">
  <stage id="sim" code="compsteer/sim" source="true"><nearSource>mesh</nearSource></stage>
  <stage id="sampler" code="compsteer/sampler"><nearSource>mesh</nearSource></stage>
  <stage id="analysis" code="compsteer/analyzer"/>
  <connection from="sim" to="sampler"/>
  <connection from="sampler" to="analysis"/>
</application>`,
		"intrusion": `
<application name="intrusion">
  <stage id="log" code="intrusion/log" source="true" instances="4">
    <nearSource>site-1</nearSource><nearSource>site-2</nearSource>
    <nearSource>site-3</nearSource><nearSource>site-4</nearSource>
  </stage>
  <stage id="filter" code="intrusion/filter" instances="4">
    <nearSource>site-1</nearSource><nearSource>site-2</nearSource>
    <nearSource>site-3</nearSource><nearSource>site-4</nearSource>
  </stage>
  <stage id="detector" code="intrusion/detector"><requirement minCPU="2"/></stage>
  <connection from="log" to="filter" fanout="pairwise"/>
  <connection from="filter" to="detector"/>
</application>`,
		"surveillance": `
<application name="surveillance">
  <stage id="camera" code="surveillance/camera" source="true" instances="4">
    <nearSource>camera-1</nearSource><nearSource>camera-2</nearSource>
    <nearSource>camera-3</nearSource><nearSource>camera-4</nearSource>
  </stage>
  <stage id="extract" code="surveillance/extract" instances="4">
    <nearSource>camera-1</nearSource><nearSource>camera-2</nearSource>
    <nearSource>camera-3</nearSource><nearSource>camera-4</nearSource>
  </stage>
  <stage id="fusion" code="surveillance/fusion"><requirement minCPU="2"/></stage>
  <connection from="camera" to="extract" fanout="pairwise"/>
  <connection from="extract" to="fusion"/>
</application>`,
		"tieredfilter": `
<application name="tieredfilter">
  <stage id="detector" code="tieredfilter/detector" source="true" instances="4">
    <nearSource>stream-1</nearSource><nearSource>stream-2</nearSource>
    <nearSource>stream-3</nearSource><nearSource>stream-4</nearSource>
  </stage>
  <stage id="tier1" code="tieredfilter/tier1" instances="4">
    <nearSource>stream-1</nearSource><nearSource>stream-2</nearSource>
    <nearSource>stream-3</nearSource><nearSource>stream-4</nearSource>
  </stage>
  <stage id="tier2" code="tieredfilter/tier2"/>
  <stage id="collector" code="tieredfilter/collector"><requirement minCPU="2"/></stage>
  <connection from="detector" to="tier1" fanout="pairwise"/>
  <connection from="tier1" to="tier2"/>
  <connection from="tier2" to="collector"/>
</application>`,
	}
	for name, xml := range apps {
		name, xml := name, xml
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			clk := clock.NewScaled(30_000)
			dir, net, err := Fabric(clk, 1_000_000)
			if err != nil {
				t.Fatal(err)
			}
			repo := service.NewRepository()
			if err := Register(repo); err != nil {
				t.Fatal(err)
			}
			dep, err := service.NewDeployer(clk, dir, repo, net)
			if err != nil {
				t.Fatal(err)
			}
			launcher, err := service.NewLauncher(dep)
			if err != nil {
				t.Fatal(err)
			}
			app, err := launcher.Launch(context.Background(), xml, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := app.Wait(); err != nil {
				t.Fatal(err)
			}
			for id, insts := range app.Stages {
				for _, st := range insts {
					if st.Err() != nil {
						t.Errorf("stage %s/%d: %v", id, st.Instance(), st.Err())
					}
				}
			}
		})
	}
}
