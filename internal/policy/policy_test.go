package policy

import (
	"strings"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/obs"
)

// TestParseJSON covers the canonical on-disk form, including duration
// strings and nested placement rules.
func TestParseJSON(t *testing.T) {
	doc, err := Parse([]byte(`{
		"version": "ops-1",
		"placement": {
			"topology_aware": true,
			"rules": [{"name": "pin-merge", "stage": "merge", "min_cpu": 2}]
		},
		"rebalance": {"interval": "5s", "threshold": 3, "stages": ["summarize"]},
		"slo": {"target_p99": "250ms"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Version != "ops-1" || !doc.Placement.TopologyAware {
		t.Errorf("header fields lost: %+v", doc)
	}
	if doc.Rebalance.Interval.Std() != 5*time.Second || doc.Rebalance.Threshold != 3 {
		t.Errorf("rebalance fields: %+v", doc.Rebalance)
	}
	if doc.SLO.TargetP99.Std() != 250*time.Millisecond {
		t.Errorf("target_p99 = %s", doc.SLO.TargetP99.Std())
	}
	r, ok := doc.Placement.RuleFor("merge")
	if !ok || r.Name != "pin-merge" || r.MinCPU != 2 {
		t.Errorf("RuleFor(merge) = %+v, %v", r, ok)
	}
	// Parse normalizes: unset knobs hold their documented defaults.
	if doc.Rebalance.Cooldown.Std() != 5*time.Second {
		t.Errorf("cooldown should default to interval, got %s", doc.Rebalance.Cooldown.Std())
	}
	if doc.SLO.GrowthEpochs != obs.DefaultSLOGrowthEpochs {
		t.Errorf("growth epochs = %d", doc.SLO.GrowthEpochs)
	}
}

// TestParseXML covers the grid-era input form with attribute knobs.
func TestParseXML(t *testing.T) {
	doc, err := Parse([]byte(`
		<policy version="xml-1">
			<placement topologyAware="true">
				<rule name="near" stage="*" nearSource="stream-1"/>
			</placement>
			<rebalance interval="4s" threshold="2.5">
				<stage>summarize</stage>
			</rebalance>
			<slo targetP99="1s"/>
		</policy>`))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Version != "xml-1" || !doc.Placement.TopologyAware {
		t.Errorf("header fields: %+v", doc)
	}
	if doc.Rebalance.Interval.Std() != 4*time.Second || doc.Rebalance.Threshold != 2.5 {
		t.Errorf("rebalance: %+v", doc.Rebalance)
	}
	if len(doc.Rebalance.Stages) != 1 || doc.Rebalance.Stages[0] != "summarize" {
		t.Errorf("stages: %v", doc.Rebalance.Stages)
	}
	if doc.SLO.TargetP99.Std() != time.Second {
		t.Errorf("targetP99 = %s", doc.SLO.TargetP99.Std())
	}
	if r, ok := doc.Placement.RuleFor("anything"); !ok || r.NearSource != "stream-1" {
		t.Errorf("wildcard rule: %+v, %v", r, ok)
	}
}

// TestParseRejects: a typoed JSON knob must fail loudly, not silently keep
// its default; empty input is not a policy.
func TestParseRejects(t *testing.T) {
	if _, err := Parse([]byte(`{"rebalance": {"treshold": 3}}`)); err == nil {
		t.Error("typoed field parsed silently")
	}
	if _, err := Parse([]byte("   ")); err == nil {
		t.Error("empty document parsed")
	}
	if _, err := Parse([]byte(`<policy`)); err == nil {
		t.Error("malformed XML parsed")
	}
}

// TestNormalizeDefaults: the zero document is the middleware's historical
// configuration.
func TestNormalizeDefaults(t *testing.T) {
	var doc Document
	doc.Normalize()
	if doc.Rebalance.Interval.Std() != DefaultRebalanceInterval {
		t.Errorf("interval = %s", doc.Rebalance.Interval.Std())
	}
	if doc.Rebalance.Threshold != DefaultRebalanceThreshold {
		t.Errorf("threshold = %g", doc.Rebalance.Threshold)
	}
	if doc.Rebalance.Cooldown != doc.Rebalance.Interval {
		t.Errorf("cooldown = %s, interval = %s", doc.Rebalance.Cooldown.Std(), doc.Rebalance.Interval.Std())
	}
	if doc.Placement.LinkCostWeight != DefaultLinkCostWeight {
		t.Errorf("link cost weight = %g", doc.Placement.LinkCostWeight)
	}
	if doc.SLO.GrowthEpochs != obs.DefaultSLOGrowthEpochs {
		t.Errorf("growth epochs = %d", doc.SLO.GrowthEpochs)
	}
}

// TestValidate walks the rejection table: every malformed document must
// name its offense.
func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Document)
		want string
	}{
		{"negative threshold", func(d *Document) { d.Rebalance.Threshold = -1 }, "threshold"},
		{"negative budget", func(d *Document) { d.Rebalance.MigrationBudget = -1 }, "migration_budget"},
		{"negative p99", func(d *Document) { d.SLO.TargetP99 = Duration(-time.Second) }, "target_p99"},
		{"negative weight", func(d *Document) { d.Placement.LinkCostWeight = -1 }, "link_cost_weight"},
		{"unnamed rule", func(d *Document) {
			d.Placement.Rules = []PlacementRule{{Site: "x"}}
		}, "needs a name"},
		{"no-effect rule", func(d *Document) {
			d.Placement.Rules = []PlacementRule{{Name: "idle"}}
		}, "constrains nothing"},
		{"negative rule floor", func(d *Document) {
			d.Placement.Rules = []PlacementRule{{Name: "neg", MinCPU: -1}}
		}, "negative resource floor"},
	}
	for _, tc := range cases {
		doc := DefaultDocument()
		tc.mut(&doc)
		err := doc.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	good := DefaultDocument()
	if err := good.Validate(); err != nil {
		t.Errorf("default document invalid: %v", err)
	}
}

// TestMarshalRoundTrip: Marshal output re-parses to the same document.
func TestMarshalRoundTrip(t *testing.T) {
	doc := DefaultDocument()
	doc.Version = "rt"
	doc.Rebalance.Threshold = 7
	doc.Placement.Rules = []PlacementRule{{Name: "r1", Stage: "a", Site: "siteA"}}
	b, err := doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(b)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, b)
	}
	if back.Version != "rt" || back.Rebalance.Threshold != 7 {
		t.Errorf("round trip lost fields: %+v", back)
	}
	if len(back.Placement.Rules) != 1 || back.Placement.Rules[0].Site != "siteA" {
		t.Errorf("rules: %+v", back.Placement.Rules)
	}
}

// TestRuleMatching pins the stage-selector semantics.
func TestRuleMatching(t *testing.T) {
	r := PlacementRule{Name: "r", Stage: "merge", Site: "x"}
	if !r.Matches("merge") || r.Matches("other") {
		t.Error("exact stage match broken")
	}
	for _, wild := range []string{"", "*"} {
		r.Stage = wild
		if !r.Matches("anything") {
			t.Errorf("stage selector %q should match everything", wild)
		}
	}
	// First match wins.
	p := PlacementPolicy{Rules: []PlacementRule{
		{Name: "specific", Stage: "merge", Site: "a"},
		{Name: "wild", Site: "b"},
	}}
	if r, _ := p.RuleFor("merge"); r.Name != "specific" {
		t.Errorf("RuleFor(merge) = %q, want specific", r.Name)
	}
	if r, _ := p.RuleFor("other"); r.Name != "wild" {
		t.Errorf("RuleFor(other) = %q, want wild", r.Name)
	}
	if _, ok := (PlacementPolicy{}).RuleFor("x"); ok {
		t.Error("empty policy matched a rule")
	}
}

// TestSLOConfigCompile: the SLO section compiles into the obs detector's
// units (seconds).
func TestSLOConfigCompile(t *testing.T) {
	s := SLOPolicy{TargetP99: Duration(1500 * time.Millisecond), GrowthEpochs: 5}
	cfg := s.SLOConfig()
	if cfg.TargetP99 != 1.5 || cfg.GrowthEpochs != 5 {
		t.Errorf("compiled %+v", cfg)
	}
}
