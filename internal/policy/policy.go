// Package policy is the declarative control plane of the middleware: one
// versioned document that holds every knob the Planner, Rebalancer, and SLO
// detector previously hard-wired — placement constraints and affinities,
// link-cost weights, rebalance threshold/cooldown/budget, and latency
// objectives — plus the engine that evaluates it and logs every decision it
// produces.
//
// The GATES paper (hpdc 2004) bakes its self-adaptation constants into the
// middleware; this package inverts that: control numbers live in a small
// JSON or XML document that can be inspected, diffed, versioned, and
// hot-reloaded mid-run (file watch or POST /policy), and every control-plane
// verdict — a Plan placement, a Rebalancer move or skip, an SLO evaluation —
// lands in the bounded decision log (obs.DecisionTrail, served at
// /decisions) with its full input context and the policy version that
// produced it, OPA decision-log style.
//
// Evaluation is pure and cheap: consumers read an immutable snapshot via an
// atomic pointer, so the data-plane hot path is never touched — policy is
// consulted only at control-plane epochs (a Plan, a rebalance sweep, an SLO
// evaluation).
package policy

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"time"

	"github.com/gates-middleware/gates/internal/obs"
)

// Defaults: the values the middleware ran on before the policy layer
// existed, now in exactly one place.
const (
	// DefaultRebalanceInterval is the virtual time between rebalance
	// sweeps.
	DefaultRebalanceInterval = 2 * time.Second
	// DefaultRebalanceThreshold is how much worse (ratio) the current
	// placement's link cost must be than the best alternative before a
	// move is worth its disruption.
	DefaultRebalanceThreshold = 2.0
	// DefaultLinkCostWeight scales the 1/bandwidth link-cost terms.
	DefaultLinkCostWeight = 1.0
	// DefaultCheckpointInterval is the virtual time between checkpoint
	// rounds when fault tolerance is on.
	DefaultCheckpointInterval = 2 * time.Second
	// DefaultReplayBuffer is the per-edge replay-ring depth when fault
	// tolerance is on.
	DefaultReplayBuffer = 4096
	// DefaultHealthEvery is the virtual time between failure-detector
	// health epochs.
	DefaultHealthEvery = 500 * time.Millisecond
	// DefaultDeadAfter is how many consecutive missed health epochs
	// declare a node dead.
	DefaultDeadAfter = 3
)

// Duration is a time.Duration that marshals as a human-readable string
// ("2s", "1.5h") in both JSON and XML documents.
type Duration time.Duration

// MarshalText renders the duration in time.Duration notation.
func (d Duration) MarshalText() ([]byte, error) {
	return []byte(time.Duration(d).String()), nil
}

// UnmarshalText parses time.Duration notation.
func (d *Duration) UnmarshalText(b []byte) error {
	v, err := time.ParseDuration(string(b))
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// Std returns the duration as a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// PlacementRule constrains or biases where instances of a stage may run —
// the declarative form of the paper's "first stage near the sources" rule
// and of ad-hoc Requirement tweaks. Rules merge into the stage's own
// requirement at Plan time: Site/NearSource apply when the stage left them
// empty, MinCPU/MinMemoryMB raise (never lower) the stage's floor.
type PlacementRule struct {
	// Name identifies the rule in decision logs.
	Name string `xml:"name,attr" json:"name"`
	// Stage is the stage id the rule applies to; "" or "*" means every
	// stage.
	Stage string `xml:"stage,attr" json:"stage,omitempty"`
	// Site restricts candidates to one administrative domain.
	Site string `xml:"site,attr" json:"site,omitempty"`
	// MinCPU and MinMemoryMB raise the stage's resource floor.
	MinCPU      float64 `xml:"minCPU,attr" json:"min_cpu,omitempty"`
	MinMemoryMB int     `xml:"minMemoryMB,attr" json:"min_memory_mb,omitempty"`
	// NearSource prefers the node hosting the named data source.
	NearSource string `xml:"nearSource,attr" json:"near_source,omitempty"`
}

// empty reports whether the rule constrains nothing.
func (r PlacementRule) empty() bool {
	return r.Site == "" && r.MinCPU == 0 && r.MinMemoryMB == 0 && r.NearSource == ""
}

// Matches reports whether the rule applies to the named stage.
func (r PlacementRule) Matches(stage string) bool {
	return r.Stage == "" || r.Stage == "*" || r.Stage == stage
}

// PlacementPolicy governs Plan-time matching.
type PlacementPolicy struct {
	// TopologyAware makes planning consider link bandwidth between
	// communicating instances in addition to requirements.
	TopologyAware bool `xml:"topologyAware,attr" json:"topology_aware,omitempty"`
	// LinkCostWeight scales every 1/bandwidth term in placement-cost
	// evaluation; 0 selects DefaultLinkCostWeight.
	LinkCostWeight float64 `xml:"linkCostWeight,attr" json:"link_cost_weight,omitempty"`
	// Rules are the per-stage constraints and affinities.
	Rules []PlacementRule `xml:"rule" json:"rules,omitempty"`
}

// RebalancePolicy governs the standing re-placement loop.
type RebalancePolicy struct {
	// Interval is the virtual time between placement sweeps; 0 selects
	// DefaultRebalanceInterval.
	Interval Duration `xml:"interval,attr" json:"interval,omitempty"`
	// Threshold is the cost ratio past which a move is worth its
	// disruption; 0 selects DefaultRebalanceThreshold.
	Threshold float64 `xml:"threshold,attr" json:"threshold,omitempty"`
	// Cooldown is the minimum virtual time between two migrations of the
	// same instance; 0 selects Interval.
	Cooldown Duration `xml:"cooldown,attr" json:"cooldown,omitempty"`
	// MigrationBudget caps total moves; 0 means unlimited.
	MigrationBudget int `xml:"migrationBudget,attr" json:"migration_budget,omitempty"`
	// Stages restricts sweeps to the named stage ids; empty means every
	// non-source stage.
	Stages []string `xml:"stage" json:"stages,omitempty"`
}

// SLOPolicy holds the service-level objectives the detector judges.
type SLOPolicy struct {
	// TargetP99 is the sink-side end-to-end p99 latency objective in
	// virtual time; 0 disables the latency check.
	TargetP99 Duration `xml:"targetP99,attr" json:"target_p99,omitempty"`
	// GrowthEpochs is how many consecutive d-tilde > 0 evaluations
	// constitute "falling behind"; 0 selects obs.DefaultSLOGrowthEpochs.
	GrowthEpochs int `xml:"growthEpochs,attr" json:"growth_epochs,omitempty"`
}

// FaultInjection is one scripted fault for the netsim fault plane: at
// virtual time At (from scheduler start) either kill or heal a node, sever
// or heal a partition between two nodes, or install a seeded loss/reorder
// schedule on the directed link From→To. Exactly one action per injection.
type FaultInjection struct {
	// Name identifies the injection in decision logs and flight events.
	Name string `xml:"name,attr" json:"name"`
	// At is the virtual time offset the injection fires at.
	At Duration `xml:"at,attr" json:"at"`
	// Kill names a node whose links all black-hole from At on.
	Kill string `xml:"kill,attr" json:"kill,omitempty"`
	// Heal names a previously killed node to revive.
	Heal string `xml:"heal,attr" json:"heal,omitempty"`
	// From and To name the directed link (or node pair) the injection
	// targets.
	From string `xml:"from,attr" json:"from,omitempty"`
	To   string `xml:"to,attr" json:"to,omitempty"`
	// Partition severs both directions between From and To; HealPartition
	// restores them.
	Partition     bool `xml:"partition,attr" json:"partition,omitempty"`
	HealPartition bool `xml:"healPartition,attr" json:"heal_partition,omitempty"`
	// Loss and Reorder are per-packet probabilities for the From→To link;
	// Depth is how many delivery rounds a reordered packet is held (0
	// selects 1); Seed seeds the deterministic fault schedule (0 selects
	// 1). Loss+Reorder == 0 with From/To set clears the link's faults.
	Loss    float64 `xml:"loss,attr" json:"loss,omitempty"`
	Reorder float64 `xml:"reorder,attr" json:"reorder,omitempty"`
	Depth   int     `xml:"depth,attr" json:"depth,omitempty"`
	Seed    int64   `xml:"seed,attr" json:"seed,omitempty"`
}

// FaultPolicy governs the fault-tolerance plane: periodic checkpointing,
// the failure detector, the replay-ring depth, and scripted injections.
type FaultPolicy struct {
	// Enabled turns checkpointing and recovery on; the remaining knobs
	// normalize to defaults only when it is set.
	Enabled bool `xml:"enabled,attr" json:"enabled,omitempty"`
	// CheckpointInterval is the virtual time between checkpoint rounds;
	// 0 selects DefaultCheckpointInterval.
	CheckpointInterval Duration `xml:"checkpointInterval,attr" json:"checkpoint_interval,omitempty"`
	// ReplayBuffer is the per-edge replay-ring depth; 0 selects
	// DefaultReplayBuffer.
	ReplayBuffer int `xml:"replayBuffer,attr" json:"replay_buffer,omitempty"`
	// HealthEvery is the failure detector's epoch length; 0 selects
	// DefaultHealthEvery.
	HealthEvery Duration `xml:"healthEvery,attr" json:"health_every,omitempty"`
	// DeadAfter is how many consecutive missed epochs declare a node
	// dead; 0 selects DefaultDeadAfter.
	DeadAfter int `xml:"deadAfter,attr" json:"dead_after,omitempty"`
	// Injections is the scripted fault schedule.
	Injections []FaultInjection `xml:"injection" json:"injections,omitempty"`
}

// actions counts how many distinct actions the injection specifies.
func (f FaultInjection) actions() int {
	n := 0
	if f.Kill != "" {
		n++
	}
	if f.Heal != "" {
		n++
	}
	if f.Partition {
		n++
	}
	if f.HealPartition {
		n++
	}
	if f.From != "" && !f.Partition && !f.HealPartition {
		n++ // link loss/reorder injection (or a clear)
	}
	return n
}

// Document is one complete policy: everything the control plane consults.
// The zero value normalizes to the middleware's historical defaults.
type Document struct {
	XMLName xml.Name `xml:"policy" json:"-"`
	// Version labels the document; empty versions are stamped "v<seq>"
	// at load time.
	Version   string          `xml:"version,attr" json:"version,omitempty"`
	Placement PlacementPolicy `xml:"placement" json:"placement,omitempty"`
	Rebalance RebalancePolicy `xml:"rebalance" json:"rebalance,omitempty"`
	SLO       SLOPolicy       `xml:"slo" json:"slo,omitempty"`
	Faults    FaultPolicy     `xml:"faults" json:"faults,omitempty"`
}

// DefaultDocument returns the policy the middleware ships with — the exact
// constants that were previously hard-wired into RebalancerConfig,
// SLOConfig, and the Planner.
func DefaultDocument() Document {
	doc := Document{Version: "default"}
	doc.Normalize()
	return doc
}

// Normalize fills zero fields with their documented defaults, in place.
func (d *Document) Normalize() {
	if d.Placement.LinkCostWeight == 0 {
		d.Placement.LinkCostWeight = DefaultLinkCostWeight
	}
	if d.Rebalance.Interval <= 0 {
		d.Rebalance.Interval = Duration(DefaultRebalanceInterval)
	}
	if d.Rebalance.Threshold == 0 {
		d.Rebalance.Threshold = DefaultRebalanceThreshold
	}
	if d.Rebalance.Cooldown <= 0 {
		d.Rebalance.Cooldown = d.Rebalance.Interval
	}
	if d.SLO.GrowthEpochs == 0 {
		d.SLO.GrowthEpochs = obs.DefaultSLOGrowthEpochs
	}
	if d.Faults.Enabled {
		if d.Faults.CheckpointInterval <= 0 {
			d.Faults.CheckpointInterval = Duration(DefaultCheckpointInterval)
		}
		if d.Faults.ReplayBuffer == 0 {
			d.Faults.ReplayBuffer = DefaultReplayBuffer
		}
		if d.Faults.HealthEvery <= 0 {
			d.Faults.HealthEvery = Duration(DefaultHealthEvery)
		}
		if d.Faults.DeadAfter <= 0 {
			d.Faults.DeadAfter = DefaultDeadAfter
		}
	}
}

// Validate rejects documents that would wedge the control plane. It is
// called on every load; a failing document never becomes active
// (validation-with-rollback).
func (d *Document) Validate() error {
	if d.Placement.LinkCostWeight < 0 {
		return fmt.Errorf("policy: placement.link_cost_weight %g must be positive", d.Placement.LinkCostWeight)
	}
	for i, r := range d.Placement.Rules {
		if r.Name == "" {
			return fmt.Errorf("policy: placement rule %d needs a name (decision logs cite it)", i)
		}
		if r.empty() {
			return fmt.Errorf("policy: placement rule %q constrains nothing", r.Name)
		}
		if r.MinCPU < 0 || r.MinMemoryMB < 0 {
			return fmt.Errorf("policy: placement rule %q: negative resource floor", r.Name)
		}
	}
	if d.Rebalance.Interval < 0 {
		return fmt.Errorf("policy: rebalance.interval %s must be positive", d.Rebalance.Interval.Std())
	}
	if d.Rebalance.Threshold < 0 {
		return fmt.Errorf("policy: rebalance.threshold %g must be positive", d.Rebalance.Threshold)
	}
	if d.Rebalance.Cooldown < 0 {
		return fmt.Errorf("policy: rebalance.cooldown %s must be positive", d.Rebalance.Cooldown.Std())
	}
	if d.Rebalance.MigrationBudget < 0 {
		return fmt.Errorf("policy: rebalance.migration_budget %d must not be negative", d.Rebalance.MigrationBudget)
	}
	if d.SLO.TargetP99 < 0 {
		return fmt.Errorf("policy: slo.target_p99 %s must not be negative", d.SLO.TargetP99.Std())
	}
	if d.SLO.GrowthEpochs < 0 {
		return fmt.Errorf("policy: slo.growth_epochs %d must not be negative", d.SLO.GrowthEpochs)
	}
	if d.Faults.CheckpointInterval < 0 {
		return fmt.Errorf("policy: faults.checkpoint_interval %s must not be negative", d.Faults.CheckpointInterval.Std())
	}
	if d.Faults.HealthEvery < 0 {
		return fmt.Errorf("policy: faults.health_every %s must not be negative", d.Faults.HealthEvery.Std())
	}
	if d.Faults.DeadAfter < 0 {
		return fmt.Errorf("policy: faults.dead_after %d must not be negative", d.Faults.DeadAfter)
	}
	for i, inj := range d.Faults.Injections {
		if inj.Name == "" {
			return fmt.Errorf("policy: fault injection %d needs a name (decision logs cite it)", i)
		}
		if inj.At < 0 {
			return fmt.Errorf("policy: fault injection %q: at %s must not be negative", inj.Name, inj.At.Std())
		}
		if n := inj.actions(); n != 1 {
			return fmt.Errorf("policy: fault injection %q specifies %d actions, want exactly one of kill, heal, partition, heal_partition, or a from/to link schedule", inj.Name, n)
		}
		if (inj.Partition || inj.HealPartition || (inj.From != "")) && (inj.From == "" || inj.To == "") {
			return fmt.Errorf("policy: fault injection %q needs both from and to", inj.Name)
		}
		if inj.Loss < 0 || inj.Loss > 1 || inj.Reorder < 0 || inj.Reorder > 1 || inj.Loss+inj.Reorder > 1 {
			return fmt.Errorf("policy: fault injection %q: loss %g / reorder %g must be probabilities summing to at most 1", inj.Name, inj.Loss, inj.Reorder)
		}
		if (inj.Loss > 0 || inj.Reorder > 0 || inj.Depth != 0 || inj.Seed != 0) && inj.From == "" {
			return fmt.Errorf("policy: fault injection %q sets a loss schedule without a from/to link", inj.Name)
		}
	}
	return nil
}

// RuleFor returns the first placement rule matching the named stage.
func (p PlacementPolicy) RuleFor(stage string) (PlacementRule, bool) {
	for _, r := range p.Rules {
		if r.Matches(stage) {
			return r, true
		}
	}
	return PlacementRule{}, false
}

// SLOConfig compiles the objectives into the obs detector's config shim.
func (s SLOPolicy) SLOConfig() obs.SLOConfig {
	return obs.SLOConfig{
		TargetP99:    s.TargetP99.Std().Seconds(),
		GrowthEpochs: s.GrowthEpochs,
	}
}

// Parse decodes a policy document from JSON or XML (sniffed on the first
// non-space byte) and normalizes it. Unknown JSON fields are rejected, so a
// typoed knob fails loudly instead of silently keeping its default.
func Parse(b []byte) (Document, error) {
	var doc Document
	trimmed := bytes.TrimSpace(b)
	if len(trimmed) == 0 {
		return doc, fmt.Errorf("policy: empty document")
	}
	if trimmed[0] == '<' {
		if err := xml.Unmarshal(trimmed, &doc); err != nil {
			return doc, fmt.Errorf("policy: parse XML: %w", err)
		}
	} else {
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&doc); err != nil {
			return doc, fmt.Errorf("policy: parse JSON: %w", err)
		}
	}
	doc.Normalize()
	return doc, nil
}

// Marshal renders the document as indented JSON (the canonical on-disk and
// on-wire form; XML stays accepted on input for grid-era tooling).
func (d Document) Marshal() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}
