package policy

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/obs"
)

// Snapshot is one immutable active policy: the normalized document plus the
// load bookkeeping decision logs cite. Consumers hold a *Snapshot for the
// duration of one control-plane epoch (a Plan, a sweep, an evaluation) so
// every decision inside the epoch is judged by one consistent version.
type Snapshot struct {
	// Doc is the normalized, validated document.
	Doc Document `json:"policy"`
	// Version is the label decisions cite: the document's own Version, or
	// "v<seq>" when it declared none.
	Version string `json:"version"`
	// Seq counts loads since the engine started (1 = the initial policy).
	Seq uint64 `json:"seq"`
	// LoadedAt is the virtual time the snapshot became active.
	LoadedAt time.Time `json:"loaded_at"`
	// Origin says where the document came from ("default", "file:...",
	// "http", "config"), for the operator reading /policy.
	Origin string `json:"origin"`
}

// Engine owns the active policy snapshot and the decision log around it.
// Reads (Active, Rebalance, Placement, SLO) are lock-free — one atomic
// pointer load — so consulting policy at a control-plane epoch costs
// nothing measurable. Loads serialize under a mutex and follow
// validate-then-swap: a document that fails to parse or validate is
// recorded (decision log + flight recorder) and discarded, and the
// previously active snapshot keeps serving — rollback is the no-op.
//
// A nil *Engine is valid everywhere and behaves as the default policy with
// no logging, so policy-unaware call sites need no checks.
type Engine struct {
	clk clock.Clock
	o   *obs.Observability

	mu  sync.Mutex // serializes loads
	seq uint64
	cur atomic.Pointer[Snapshot]
}

// New returns an engine with the default document active, timestamping on
// clk and logging into o's decision trail and flight recorder (o may be
// nil for a silent engine).
func New(clk clock.Clock, o *obs.Observability) *Engine {
	e := &Engine{clk: clk, o: o}
	if err := e.Load(DefaultDocument(), "default"); err != nil {
		// The default document always validates; a failure here is a
		// programming error.
		panic(err)
	}
	return e
}

// Active returns the current snapshot. Never nil on an engine built with
// New; nil receivers get the default policy under version "default".
func (e *Engine) Active() *Snapshot {
	if e == nil {
		doc := DefaultDocument()
		return &Snapshot{Doc: doc, Version: doc.Version, Origin: "default"}
	}
	return e.cur.Load()
}

// Load validates doc and atomically makes it the active policy. On
// validation failure the active policy is untouched and the rejection is
// itself logged, so /decisions shows rejected reloads next to the
// decisions they failed to influence.
func (e *Engine) Load(doc Document, origin string) error {
	if e == nil {
		return fmt.Errorf("policy: load on nil engine")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	doc.Normalize()
	if err := e.validateLocked(doc, origin); err != nil {
		return err
	}
	e.seq++
	version := doc.Version
	if version == "" {
		version = fmt.Sprintf("v%d", e.seq)
		doc.Version = version
	}
	snap := &Snapshot{
		Doc:      doc,
		Version:  version,
		Seq:      e.seq,
		LoadedAt: e.now(),
		Origin:   origin,
	}
	prev := e.cur.Load()
	e.cur.Store(snap)
	detail := fmt.Sprintf("policy %s loaded (%s)", version, origin)
	input := map[string]any{
		"origin":              origin,
		"seq":                 e.seq,
		"rebalance_threshold": doc.Rebalance.Threshold,
		"rebalance_interval":  doc.Rebalance.Interval.Std().String(),
		"rebalance_cooldown":  doc.Rebalance.Cooldown.Std().String(),
		"migration_budget":    doc.Rebalance.MigrationBudget,
		"placement_rules":     len(doc.Placement.Rules),
		"target_p99":          doc.SLO.TargetP99.Std().Seconds(),
	}
	if prev != nil {
		input["replaced"] = prev.Version
		detail = fmt.Sprintf("policy %s loaded (%s), replacing %s", version, origin, prev.Version)
	}
	if e.o != nil {
		e.o.DecisionLog().Record(obs.DecisionEvent{
			Kind:          obs.DecisionPolicy,
			PolicyVersion: version,
			Rule:          "load",
			Outcome:       "loaded",
			Input:         input,
		})
		e.o.FlightRec().Record(obs.FlightEvent{
			Kind:   obs.FlightPolicy,
			Detail: detail,
		})
		e.o.Log().Info("policy loaded", "version", version, "origin", origin, "seq", e.seq)
	}
	return nil
}

// validateLocked validates doc and logs a rejection when it fails.
func (e *Engine) validateLocked(doc Document, origin string) error {
	err := doc.Validate()
	if err == nil {
		return nil
	}
	active := "none"
	if cur := e.cur.Load(); cur != nil {
		active = cur.Version
	}
	if e.o != nil {
		e.o.DecisionLog().Record(obs.DecisionEvent{
			Kind:          obs.DecisionPolicy,
			PolicyVersion: active,
			Rule:          "load",
			Outcome:       "rejected",
			Input: map[string]any{
				"origin":    origin,
				"candidate": doc.Version,
				"error":     err.Error(),
			},
		})
		e.o.FlightRec().Record(obs.FlightEvent{
			Kind:   obs.FlightPolicy,
			Detail: fmt.Sprintf("policy reload rejected (%s): %v; %s stays active", origin, err, active),
		})
		e.o.Log().Error("policy reload rejected", "origin", origin, "err", err, "active", active)
	}
	return err
}

// LoadBytes parses a JSON or XML document and loads it.
func (e *Engine) LoadBytes(b []byte, origin string) error {
	doc, err := Parse(b)
	if err != nil {
		if e != nil {
			e.mu.Lock()
			// Re-use the rejection logging path; a Document that fails
			// Parse never reaches Validate.
			e.logParseRejectLocked(err, origin)
			e.mu.Unlock()
		}
		return err
	}
	return e.Load(doc, origin)
}

func (e *Engine) logParseRejectLocked(err error, origin string) {
	if e.o == nil {
		return
	}
	active := "none"
	if cur := e.cur.Load(); cur != nil {
		active = cur.Version
	}
	e.o.DecisionLog().Record(obs.DecisionEvent{
		Kind:          obs.DecisionPolicy,
		PolicyVersion: active,
		Rule:          "load",
		Outcome:       "rejected",
		Input:         map[string]any{"origin": origin, "error": err.Error()},
	})
	e.o.FlightRec().Record(obs.FlightEvent{
		Kind:   obs.FlightPolicy,
		Detail: fmt.Sprintf("policy reload rejected (%s): %v; %s stays active", origin, err, active),
	})
	e.o.Log().Error("policy reload rejected", "origin", origin, "err", err, "active", active)
}

// LoadFile reads and loads a policy document from disk.
func (e *Engine) LoadFile(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("policy: read %s: %w", path, err)
	}
	return e.LoadBytes(b, "file:"+path)
}

// Watch polls path every interval (wall-clock — the file is external to
// the simulation) and hot-reloads it on modification-time changes. A load
// failure leaves the active policy in place and keeps watching. The
// returned stop function terminates the watch.
func (e *Engine) Watch(path string, every time.Duration) (stop func()) {
	if e == nil || path == "" {
		return func() {}
	}
	if every <= 0 {
		every = time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		var lastMod time.Time
		if fi, err := os.Stat(path); err == nil {
			lastMod = fi.ModTime()
		}
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fi, err := os.Stat(path)
				if err != nil || !fi.ModTime().After(lastMod) {
					continue
				}
				lastMod = fi.ModTime()
				_ = e.LoadFile(path) // rejection already logged; keep watching
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// now returns the virtual time, or wall time on an engine without a clock.
func (e *Engine) now() time.Time {
	if e.clk != nil {
		return e.clk.Now()
	}
	return time.Time{}
}

// Rebalance returns the active rebalance policy and its version.
func (e *Engine) Rebalance() (RebalancePolicy, string) {
	s := e.Active()
	return s.Doc.Rebalance, s.Version
}

// Placement returns the active placement policy and its version.
func (e *Engine) Placement() (PlacementPolicy, string) {
	s := e.Active()
	return s.Doc.Placement, s.Version
}

// SLO returns the active objectives compiled for the obs detector, plus
// the policy version — the exact shape obs.SLOSource wants.
func (e *Engine) SLO() (obs.SLOConfig, string) {
	s := e.Active()
	return s.Doc.SLO.SLOConfig(), s.Version
}

// SLOSource adapts the engine to the detector's objective-source hook.
// Valid on a nil engine (serves defaults).
func (e *Engine) SLOSource() obs.SLOSource {
	return func() (obs.SLOConfig, string) { return e.SLO() }
}

// RecordDecision stamps ev with the active policy version (unless the
// caller already set one) and the current virtual time, records it in the
// decision log, and mirrors state-changing outcomes (placements and
// rebalance moves — not skips or verdict-only events) into the flight
// recorder. A no-op on a nil engine or an engine without observability.
func (e *Engine) RecordDecision(ev obs.DecisionEvent) {
	if e == nil || e.o == nil {
		return
	}
	if ev.PolicyVersion == "" {
		ev.PolicyVersion = e.Active().Version
	}
	if ev.At.IsZero() {
		ev.At = e.now()
	}
	e.o.DecisionLog().Record(ev)
	stateChanging := ev.Kind == obs.DecisionPlacement ||
		(ev.Kind == obs.DecisionRebalance && ev.Outcome == "move")
	if stateChanging {
		e.o.FlightRec().Record(obs.FlightEvent{
			At:       ev.At,
			Kind:     obs.FlightDecision,
			Stage:    ev.Stage,
			Instance: ev.Instance,
			Node:     ev.Node,
			Detail:   fmt.Sprintf("%s %s (rule %s, policy %s)", ev.Kind, ev.Outcome, ev.Rule, ev.PolicyVersion),
		})
	}
}

// Handler returns the /policy HTTP surface: GET serves the active snapshot
// as JSON, POST hot-reloads the request body (JSON or XML) and answers 400
// with the still-active version on parse or validation failure.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, e.Active())
		case http.MethodPost, http.MethodPut:
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := e.LoadBytes(body, "http"); err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]any{
					"error":  err.Error(),
					"active": e.Active().Version,
				})
				return
			}
			writeJSON(w, http.StatusOK, e.Active())
		default:
			w.Header().Set("Allow", "GET, POST, PUT")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
	w.Write([]byte("\n"))
}
