package policy

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/obs"
)

func newTestEngine(t *testing.T) (*Engine, *obs.Observability) {
	t.Helper()
	clk := clock.NewManual()
	ob := obs.New(clk, obs.Config{})
	return New(clk, ob), ob
}

// TestEngineDefaultSnapshot: a fresh engine serves the default document as
// load #1.
func TestEngineDefaultSnapshot(t *testing.T) {
	eng, ob := newTestEngine(t)
	s := eng.Active()
	if s.Version != "default" || s.Seq != 1 || s.Origin != "default" {
		t.Errorf("initial snapshot %+v", s)
	}
	if s.Doc.Rebalance.Threshold != DefaultRebalanceThreshold {
		t.Errorf("default threshold %g", s.Doc.Rebalance.Threshold)
	}
	// The initial load itself is a decision.
	ev, ok := ob.DecisionLog().Last()
	if !ok || ev.Kind != obs.DecisionPolicy || ev.Outcome != "loaded" {
		t.Errorf("initial load decision %+v, %v", ev, ok)
	}
}

// TestEngineLoadAndVersionStamp: loads bump seq, empty versions are stamped
// v<seq>, and the decision log records each load with its predecessor.
func TestEngineLoadAndVersionStamp(t *testing.T) {
	eng, ob := newTestEngine(t)
	doc := Document{Version: "v-ops"}
	if err := eng.Load(doc, "test"); err != nil {
		t.Fatal(err)
	}
	if s := eng.Active(); s.Version != "v-ops" || s.Seq != 2 || s.Origin != "test" {
		t.Errorf("snapshot %+v", s)
	}
	// An unversioned document gets the sequence label.
	if err := eng.Load(Document{}, "test2"); err != nil {
		t.Fatal(err)
	}
	if s := eng.Active(); s.Version != "v3" {
		t.Errorf("stamped version %q, want v3", s.Version)
	}
	ev, _ := ob.DecisionLog().Last()
	if ev.Input["replaced"] != "v-ops" {
		t.Errorf("load decision input %+v, want replaced=v-ops", ev.Input)
	}
}

// TestEngineRollback: an invalid document never becomes active, and the
// rejection is itself a logged decision citing the surviving version.
func TestEngineRollback(t *testing.T) {
	eng, ob := newTestEngine(t)
	if err := eng.Load(Document{Version: "good"}, "test"); err != nil {
		t.Fatal(err)
	}
	bad := Document{Version: "bad"}
	bad.Rebalance.Threshold = -4
	if err := eng.Load(bad, "test"); err == nil {
		t.Fatal("invalid document loaded")
	}
	if s := eng.Active(); s.Version != "good" {
		t.Errorf("active after rejected load = %q, want good", s.Version)
	}
	ev, _ := ob.DecisionLog().Last()
	if ev.Kind != obs.DecisionPolicy || ev.Outcome != "rejected" || ev.PolicyVersion != "good" {
		t.Errorf("rejection decision %+v", ev)
	}
	if ev.Input["candidate"] != "bad" {
		t.Errorf("rejection input %+v", ev.Input)
	}
	// Unparseable bytes roll back the same way.
	if err := eng.LoadBytes([]byte(`{"nope":`), "http"); err == nil {
		t.Fatal("garbage bytes loaded")
	}
	if s := eng.Active(); s.Version != "good" {
		t.Errorf("active after parse failure = %q", s.Version)
	}
	ev, _ = ob.DecisionLog().Last()
	if ev.Outcome != "rejected" {
		t.Errorf("parse-failure decision %+v", ev)
	}
}

// TestNilEngine: every read works on a nil engine and serves defaults;
// RecordDecision is a no-op.
func TestNilEngine(t *testing.T) {
	var eng *Engine
	if s := eng.Active(); s.Version != "default" {
		t.Errorf("nil Active = %+v", s)
	}
	if pol, v := eng.Rebalance(); pol.Threshold != DefaultRebalanceThreshold || v != "default" {
		t.Errorf("nil Rebalance = %+v, %q", pol, v)
	}
	if plc, _ := eng.Placement(); plc.LinkCostWeight != DefaultLinkCostWeight {
		t.Errorf("nil Placement = %+v", plc)
	}
	cfg, v := eng.SLOSource()()
	if cfg.GrowthEpochs != obs.DefaultSLOGrowthEpochs || v != "default" {
		t.Errorf("nil SLOSource = %+v, %q", cfg, v)
	}
	eng.RecordDecision(obs.DecisionEvent{Kind: obs.DecisionPlacement}) // must not panic
	if err := eng.Load(Document{}, "x"); err == nil {
		t.Error("nil Load succeeded")
	}
}

// TestRecordDecisionStamping: the engine stamps version and virtual time,
// and mirrors state-changing decisions into the flight recorder.
func TestRecordDecisionStamping(t *testing.T) {
	clk := clock.NewManual()
	ob := obs.New(clk, obs.Config{})
	eng := New(clk, ob)
	if err := eng.Load(Document{Version: "stamp"}, "test"); err != nil {
		t.Fatal(err)
	}
	flightBefore := len(ob.Flight.Events())

	eng.RecordDecision(obs.DecisionEvent{
		Kind: obs.DecisionPlacement, Stage: "merge", Node: "central", Outcome: "placed",
	})
	ev, _ := ob.DecisionLog().Last()
	if ev.PolicyVersion != "stamp" {
		t.Errorf("placement decision version %q", ev.PolicyVersion)
	}
	if ev.At.IsZero() {
		t.Error("decision not timestamped")
	}
	if got := len(ob.Flight.Events()); got != flightBefore+1 {
		t.Errorf("placement not mirrored to flight recorder (%d -> %d events)", flightBefore, got)
	}

	// A rebalance skip is informational: logged but not mirrored.
	eng.RecordDecision(obs.DecisionEvent{
		Kind: obs.DecisionRebalance, Rule: "cooldown", Outcome: "skip",
	})
	if got := len(ob.Flight.Events()); got != flightBefore+1 {
		t.Error("skip decision leaked into the flight recorder")
	}
	// A rebalance move is state-changing: mirrored.
	eng.RecordDecision(obs.DecisionEvent{
		Kind: obs.DecisionRebalance, Rule: "cost-threshold", Outcome: "move",
	})
	if got := len(ob.Flight.Events()); got != flightBefore+2 {
		t.Error("move decision not mirrored to flight recorder")
	}
	// An explicit version is preserved.
	eng.RecordDecision(obs.DecisionEvent{
		Kind: obs.DecisionSLO, PolicyVersion: "older", Outcome: "ok",
	})
	if ev, _ := ob.DecisionLog().Last(); ev.PolicyVersion != "older" {
		t.Errorf("explicit version overwritten: %q", ev.PolicyVersion)
	}
}

// TestHandler drives the /policy HTTP surface: GET, a good reload, a
// rejected reload answering 400 with the still-active version, and the
// method guard.
func TestHandler(t *testing.T) {
	eng, _ := newTestEngine(t)
	h := eng.Handler()

	get := func() Snapshot {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/policy", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /policy = %d", rec.Code)
		}
		var s Snapshot
		if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
			t.Fatalf("GET body not JSON: %v\n%s", err, rec.Body.String())
		}
		return s
	}
	if s := get(); s.Version != "default" {
		t.Errorf("GET version %q", s.Version)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/policy",
		strings.NewReader(`{"version": "posted", "rebalance": {"threshold": 4}}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST = %d: %s", rec.Code, rec.Body.String())
	}
	if s := get(); s.Version != "posted" || s.Doc.Rebalance.Threshold != 4 {
		t.Errorf("after POST: %+v", s)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/policy",
		strings.NewReader(`{"rebalance": {"threshold": -1}}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid POST = %d, want 400", rec.Code)
	}
	var failure struct {
		Error  string `json:"error"`
		Active string `json:"active"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &failure); err != nil {
		t.Fatalf("400 body not JSON: %s", rec.Body.String())
	}
	if failure.Active != "posted" || failure.Error == "" {
		t.Errorf("400 body %+v", failure)
	}
	if s := get(); s.Version != "posted" {
		t.Errorf("rejected POST changed active policy to %q", s.Version)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/policy", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE = %d, want 405", rec.Code)
	}
}

// TestLoadFileAndWatch: a document loads from disk, and the watcher picks
// up a rewrite (and survives a broken one).
func TestLoadFileAndWatch(t *testing.T) {
	eng, _ := newTestEngine(t)
	path := filepath.Join(t.TempDir(), "policy.json")
	if err := os.WriteFile(path, []byte(`{"version": "disk-1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if s := eng.Active(); s.Version != "disk-1" || s.Origin != "file:"+path {
		t.Errorf("snapshot %+v", s)
	}
	if err := eng.LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}

	stop := eng.Watch(path, 5*time.Millisecond)
	defer stop()
	if err := os.WriteFile(path, []byte(`{"version": "disk-2"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// The watcher triggers on mtime changes, and its baseline stat races
	// with the rewrite above; keep pushing the mtime forward so some bump
	// is unambiguously newer than whatever baseline it captured.
	deadline := time.Now().Add(5 * time.Second)
	future := time.Now()
	for eng.Active().Version != "disk-2" {
		if time.Now().After(deadline) {
			t.Fatalf("watcher never loaded disk-2; active %q", eng.Active().Version)
		}
		future = future.Add(time.Hour)
		if err := os.Chtimes(path, future, future); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // idempotent

	// A nil engine or empty path yields a no-op watcher.
	var nilEng *Engine
	nilEng.Watch(path, time.Millisecond)()
	eng.Watch("", time.Millisecond)()
}

// TestAccessorVersions: the typed accessors agree with the active snapshot.
func TestAccessorVersions(t *testing.T) {
	eng, _ := newTestEngine(t)
	doc := Document{Version: "acc"}
	doc.Rebalance.Threshold = 9
	doc.Placement.TopologyAware = true
	doc.SLO.TargetP99 = Duration(2 * time.Second)
	if err := eng.Load(doc, "test"); err != nil {
		t.Fatal(err)
	}
	if pol, v := eng.Rebalance(); pol.Threshold != 9 || v != "acc" {
		t.Errorf("Rebalance = %+v, %q", pol, v)
	}
	if plc, v := eng.Placement(); !plc.TopologyAware || v != "acc" {
		t.Errorf("Placement = %+v, %q", plc, v)
	}
	if cfg, v := eng.SLO(); cfg.TargetP99 != 2 || v != "acc" {
		t.Errorf("SLO = %+v, %q", cfg, v)
	}
}
