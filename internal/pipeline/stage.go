package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/queue"
)

// Processor is the user-supplied processing code of a packet-driven stage —
// the Go analog of the paper's StreamProcessor with its work(in, out)
// method, split into lifecycle calls.
type Processor interface {
	// Init runs once before the first packet. Register adjustment
	// parameters here with ctx.SpecifyParam.
	Init(ctx *Context) error
	// Process handles one packet and may emit any number of packets.
	Process(ctx *Context, pkt *Packet, out *Emitter) error
	// Finish runs after every input stream has delivered its final
	// packet; flush remaining state here.
	Finish(ctx *Context, out *Emitter) error
}

// Source is the user-supplied generator of a stage with no input streams.
// Run should emit packets until the stream is exhausted or ctx.Done fires.
type Source interface {
	// Run generates the stage's output. Returning nil ends the stream.
	Run(ctx *Context, out *Emitter) error
}

// QueueKind selects a stage's input-buffer implementation.
type QueueKind int

const (
	// QueueAuto (the zero value) lets the engine decide at Run time:
	// a lock-free SPSC ring when exactly one upstream stage feeds the
	// instance, a lock-free MPSC ring otherwise. The service Planner
	// makes the same decision at Plan time from the wire cardinality
	// and records it in the Plan.
	QueueAuto QueueKind = iota
	// QueueSPSC is the single-producer single-consumer ring. Selecting
	// it for a stage with more than one upstream stage is unsafe; the
	// engine falls back to MPSC rather than corrupt the ring.
	QueueSPSC
	// QueueMPSC is the multi-producer single-consumer ring.
	QueueMPSC
	// QueueMutex is the original mutex+condvar queue (any producer and
	// consumer cardinality). Sources keep it as an inert placeholder;
	// it remains available as an explicit opt-out of the rings.
	QueueMutex
)

// String renders the queue kind name.
func (k QueueKind) String() string {
	switch k {
	case QueueAuto:
		return "auto"
	case QueueSPSC:
		return "spsc"
	case QueueMPSC:
		return "mpsc"
	case QueueMutex:
		return "mutex"
	default:
		return fmt.Sprintf("queuekind(%d)", int(k))
	}
}

// StageConfig tunes one stage instance.
type StageConfig struct {
	// QueueCapacity is C, the capacity of the input buffer. Default 200.
	QueueCapacity int
	// Queue selects the input-buffer implementation; see QueueKind. The
	// zero value (QueueAuto) picks per-edge-cardinality at Run time.
	Queue QueueKind
	// Adapt configures the §4 algorithm for this stage. Zero-valued
	// fields default per adapt.Defaults with the stage's queue capacity.
	Adapt adapt.Options
	// DisableAdaptation turns the adaptation loop off (used by the
	// paper's fixed-parameter baseline versions).
	DisableAdaptation bool
	// AdaptInterval is the virtual-time spacing of queue observations.
	// Default 200ms.
	AdaptInterval time.Duration
	// AdjustEvery applies the ΔP law once per this many observations.
	// Default 4.
	AdjustEvery int
	// DefaultPacketSize is the wire size charged for packets that do not
	// set one. Default 64 bytes.
	DefaultPacketSize int
	// BatchSize is the number of packets the stage drains from its input
	// queue per wakeup and coalesces per downstream flush. 1 preserves
	// strict per-packet semantics (every emission paces its link and
	// enqueues individually); larger values amortize the queue lock, link
	// shaper, and wakeup traffic across the batch without changing packet
	// order, link byte accounting, or stage totals. Zero inherits the
	// engine default (see Engine.SetDefaultBatchSize), which is 1.
	BatchSize int
	// ComputeQuantum batches ChargeCompute sleeps (see clock.Pacer):
	// the stage blocks once its accumulated virtual work reaches this
	// much. Zero sleeps on every charge.
	ComputeQuantum time.Duration
	// ReplayBuffer, when positive, turns the stage's fault-tolerance
	// surface on: every outbound edge keeps a bounded ring of the last
	// ReplayBuffer emitted data packets for sequence replay after a
	// downstream recovery, and the drain loops deduplicate received
	// packets by per-upstream sequence watermark (see ft.go). Zero
	// inherits the engine default (Engine.SetDefaultReplayBuffer);
	// negative disables explicitly.
	ReplayBuffer int
	// OnAdjust, when non-nil, observes every parameter adjustment —
	// the hook behind the Figure 8/9 convergence traces.
	OnAdjust func(st *Stage, now time.Time, adjs []adapt.Adjustment)
	// OnObserve, when non-nil, observes every queue sample.
	OnObserve func(st *Stage, now time.Time, obs adapt.Observation)
}

func (c *StageConfig) fill() {
	if c.QueueCapacity == 0 {
		c.QueueCapacity = 200
	}
	if c.Adapt.Capacity == 0 {
		c.Adapt.Capacity = c.QueueCapacity
	}
	if c.AdaptInterval == 0 {
		c.AdaptInterval = 200 * time.Millisecond
	}
	if c.AdjustEvery == 0 {
		c.AdjustEvery = 4
	}
	if c.DefaultPacketSize == 0 {
		c.DefaultPacketSize = 64
	}
}

// StageStats counts a stage's lifetime activity.
type StageStats struct {
	// PacketsIn and ItemsIn count consumed data packets and their items.
	PacketsIn, ItemsIn uint64
	// PacketsOut, ItemsOut and BytesOut count emissions.
	PacketsOut, ItemsOut, BytesOut uint64
	// ComputeCharged is the total virtual compute time charged via
	// Context.ChargeCompute.
	ComputeCharged time.Duration
	// EmitStall is the cumulative wall-clock time this stage's emit paths
	// spent pushing into a downstream buffer that was full at the moment
	// of the push — the blocked-emit side of backpressure attribution.
	// Only maintained when the stage is observed (Engine observability
	// attached); the untraced hot path never checks downstream occupancy.
	EmitStall time.Duration
	// DupsDropped counts received packets discarded by the fault-tolerance
	// watermark dedupe (replay overlap or re-delivery). Always zero when
	// fault tolerance is off for the stage.
	DupsDropped uint64
}

// Stage is one deployed stage instance: the paper's "instance of the GATES
// grid service" customized with user code.
type Stage struct {
	id       string
	instance int
	node     string

	proc Processor
	src  Source

	cfg   StageConfig
	clk   clock.Clock
	pacer *clock.Pacer
	// in is the stage's input buffer. Registered as a mutex Queue, then
	// replaced (under mu) by Engine.Run with the ring implementation the
	// resolved QueueKind selects, before any stage goroutine exists. Hot
	// loops read it directly (they start after the swap); external
	// observers go through inq().
	in   queue.Buffer[*Packet]
	ctrl *adapt.Controller

	// o, the trace ops, and the owned histograms are set before the stage
	// goroutine starts (Engine.Run) and never change while running; nil
	// means unobserved. Each stage gets its own trace ops so concurrent
	// stages sample without sharing a counter cache line.
	o        *obs.Observability
	procOp   *obs.Op
	batchOp  *obs.Op
	flushOp  *obs.Op
	batchSec *obs.Histogram
	// hopSec and e2eSec are the latency histograms: emission-upstream →
	// consumption-here, and lineage-birth → consumption-here. The drain
	// loop records through the goroutine-local scratches and flushes
	// them once per drained batch, so the per-packet path never touches
	// the shared histograms' atomics.
	hopSec *obs.Histogram
	e2eSec *obs.Histogram
	hopScr *obs.Scratch
	e2eScr *obs.Scratch
	// rootSmp mints trace ids for source emissions on the tracer's
	// cadence (nil for processor stages or unobserved engines).
	rootSmp *obs.RootSampler
	// curIn identifies the input packet currently inside Process, and
	// curForwarded records that the processor re-emitted that same
	// packet downstream (its reference then belongs to the downstream
	// queue, so the drain loop must not recycle it). The lineage of the
	// current input is copied into curBirth/curTraceID/curTraceHops at
	// consumption — value copies, not a packet reference — so emissions
	// inherit it even after the input packet has been recycled, and it
	// stays set through Finish so flushes of accumulated state inherit
	// the last consumed packet's lineage. All five are confined to the
	// stage goroutine.
	curIn        *Packet
	curForwarded bool
	curBirth     time.Time
	curTraceID   uint64
	curTraceHops uint8

	// recycle is the drain loop's local cache of fully released packets,
	// returned to the shared pool in bulk (flushRecycle) so consuming a
	// batch costs one ring CAS instead of one per packet. Confined to the
	// stage goroutine.
	recycle []*Packet

	// emitSeq numbers this stage's emissions. Only the stage goroutine's
	// emit paths touch it, so it needs no lock.
	emitSeq uint64

	// marks is the per-upstream consumed-sequence watermark table; non-nil
	// means fault tolerance is on for this stage (see ft.go). Confined to
	// the stage goroutine, except for the paused-only accessors that ride
	// the pause handshake's happens-before edge. replayOn caches "any
	// outbound edge records a replay ring" for the emit paths.
	marks    []UpstreamMark
	replayOn bool

	// emitStalled is the edge-trigger latch for stall-onset flight
	// events: set on the first emission that finds a downstream buffer
	// full, cleared by the next one that finds space. Confined to the
	// stage goroutine like the emit paths themselves.
	emitStalled bool

	outs     []*edge
	upstream []*Stage

	// Lifecycle machinery (see lifecycle.go). state is the StageState;
	// pauseReq is the hot-path flag drain loops and source emitters poll;
	// pauseMu guards the per-pause-epoch channels and the pop context.
	state     atomic.Int32
	pauseReq  atomic.Bool
	pauseMu   sync.Mutex
	pausedCh  chan struct{}
	resumeCh  chan struct{}
	pauseWake chan struct{} // closed while a pause is pending; re-armed by Resume
	// midEmit marks the goroutine parked inside emit with a stamped packet
	// still in hand — a liveness boundary, not a consistent cut. Snapshot
	// and restore controllers must treat such a pause as uncheckpointable.
	midEmit   atomic.Bool
	runCtx    context.Context
	popCtx    context.Context
	popCancel context.CancelFunc

	mu      sync.Mutex
	stats   StageStats
	finals  int // Final packets received
	inbound int // number of inbound edges
	started bool
	doneCh  chan struct{}
	adaptCh chan struct{}
	err     error
}

// edge is a directed connection to a downstream stage, optionally through an
// emulated link. The link pointer is atomic so live re-deployment can rewire
// a moved stage while upstream emitters keep flowing. replay, held, and
// scratch are the fault-tolerance surface (see ft.go): the bounded record of
// recent emissions, packets parked by reorder injection, and the flush-path
// delivery scratch — all confined to the emitting stage goroutine except
// replay, which the recovery controller reads while the emitter is paused.
type edge struct {
	link    atomic.Pointer[netsim.Link]
	to      *Stage
	replay  *replayRing
	held    []heldPacket
	scratch []*Packet
}

// ID returns the stage's identifier within the application.
func (s *Stage) ID() string { return s.id }

// Instance returns the instance ordinal within the stage.
func (s *Stage) Instance() int { return s.instance }

// Node returns the grid node name this instance was deployed on ("" when
// undeployed, e.g. in unit tests).
func (s *Stage) Node() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.node
}

// SetNode records the deployment node; the Deployer calls it at deploy time
// and migration calls it again when the instance moves.
func (s *Stage) SetNode(node string) {
	s.mu.Lock()
	s.node = node
	s.mu.Unlock()
}

// Controller returns the stage's adaptation controller.
func (s *Stage) Controller() *adapt.Controller { return s.ctrl }

// inq returns the stage's input buffer for external observers. The buffer
// reference is swapped once by Engine.Run (resolveQueue) before the stage
// goroutines start; reading it under mu keeps observers that instrument a
// stage concurrently with engine startup (monitor, migration) race-free.
func (s *Stage) inq() queue.Buffer[*Packet] {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.in
}

// QueueLen returns the current input-queue occupancy.
func (s *Stage) QueueLen() int { return s.inq().Len() }

// QueueStats returns the input queue's counters.
func (s *Stage) QueueStats() queue.Stats { return s.inq().Stats() }

// ResolvedQueue reports which input-buffer implementation the stage ended up
// with (meaningful after Engine.Run has started the stage).
func (s *Stage) ResolvedQueue() QueueKind {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.Queue
}

// Stats returns a snapshot of the stage's activity counters.
func (s *Stage) Stats() StageStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Err returns the stage's terminal error, if any, once it has stopped.
func (s *Stage) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Context is the API surface the middleware offers to user code — the Go
// analog of the paper's self-adaptation API plus stage identity and the
// virtual clock.
type Context struct {
	stage *Stage
	ctx   context.Context
}

// StageID returns the hosting stage's identifier.
func (c *Context) StageID() string { return c.stage.id }

// Instance returns the hosting instance ordinal.
func (c *Context) Instance() int { return c.stage.instance }

// Node returns the grid node the instance runs on.
func (c *Context) Node() string { return c.stage.Node() }

// Clock returns the stage's virtual clock.
func (c *Context) Clock() clock.Clock { return c.stage.clk }

// Done returns the cancellation channel of the run.
func (c *Context) Done() <-chan struct{} { return c.ctx.Done() }

// Ctx returns the run's context.
func (c *Context) Ctx() context.Context { return c.ctx }

// SpecifyParam exposes an adjustment parameter to the middleware — the
// paper's specifyPara(init, min, max, increment, direction). The returned
// Param's Value method is getSuggestedValue().
func (c *Context) SpecifyParam(spec adapt.ParamSpec) (*adapt.Param, error) {
	return c.stage.ctrl.Register(spec)
}

// Param returns a previously specified parameter by name.
func (c *Context) Param(name string) (*adapt.Param, bool) {
	return c.stage.ctrl.Param(name)
}

// BatchSize returns the stage's resolved drain/coalesce batch size (>= 1).
func (c *Context) BatchSize() int { return c.stage.cfg.BatchSize }

// PauseRequested returns a channel that is closed while a pause of this
// stage is pending — a cooperative wake-up for sources that block outside
// the emit path (a network ingress waiting for frames, a poller sleeping on
// an external feed). A woken source calls PauseBoundary to park; Resume
// re-arms the channel, so select on a fresh call each loop iteration.
func (c *Context) PauseRequested() <-chan struct{} {
	s := c.stage
	s.pauseMu.Lock()
	defer s.pauseMu.Unlock()
	return s.pauseWake
}

// PauseBoundary parks the calling source goroutine when a pause is pending
// (a no-op otherwise), returning once the stage is resumed. It returns the
// run context's error when the run is canceled while parked — the source
// should return that error from Run.
func (c *Context) PauseBoundary() error { return c.stage.parkIfRequested(c.ctx) }

// ChargeCompute charges d of virtual processing time for the current work
// item, blocking per the stage's ComputeQuantum batching. The paper's
// applications paid this cost in real JVM time; charging it against the
// virtual clock keeps every rate ratio while letting experiments run fast.
func (c *Context) ChargeCompute(d time.Duration) {
	if d <= 0 {
		return
	}
	c.stage.pacer.Charge(d)
	c.stage.mu.Lock()
	c.stage.stats.ComputeCharged += d
	c.stage.mu.Unlock()
}

// Emitter sends packets to a stage's downstream neighbors. With a stage
// BatchSize above 1 it runs buffered: emissions are stamped immediately (so
// sequence numbers and Created times match the unbatched schedule) but held
// in per-edge buffers, and a flush moves each buffer downstream with one
// link reservation and one queue operation. The Emitter is confined to the
// owning stage goroutine, so the buffers need no locking.
type Emitter struct {
	stage *Stage
	ctx   context.Context

	batch    int         // <= 1 means unbuffered
	pending  [][]*Packet // per outbound edge, only when batch > 1
	buffered int         // total pending entries across edges

	// Emission stats accumulate goroutine-locally and flush to the shared
	// StageStats under one lock acquisition per Flush instead of one per
	// packet (flushStats). emitStallNS accumulates the wall time flushes
	// spent pushing into a full downstream buffer (observed engines only).
	pktsOut, itemsOut, bytesOut uint64
	emitStallNS                 uint64

	// poolMissed is the edge-trigger latch for pool-exhaustion flight
	// events: set on the first refill that comes back empty, cleared by
	// the next one that finds pooled packets. Stage-goroutine confined.
	poolMissed bool

	// free is the emitter-local packet cache: GetPacket pops from it and
	// refills it from the shared pool in bulk (one CAS per localCacheSize
	// packets instead of one per packet). Confined to the stage goroutine
	// like the rest of the Emitter.
	free []*Packet
}

// GetPacket returns a pooled packet exactly like the package-level
// GetPacket, but draws from the emitter-local cache so a source's
// per-packet pool cost is a slice pop instead of a shared-ring CAS.
func (e *Emitter) GetPacket() *Packet {
	n := len(e.free)
	if n == 0 {
		if cap(e.free) == 0 {
			e.free = make([]*Packet, localCacheSize)
		}
		e.free = e.free[:cap(e.free)]
		n = packetPool.getN(e.free)
		e.free = e.free[:n]
	}
	var p *Packet
	if n > 0 {
		p = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		// Recycled packets arrive as the consumer left them (see
		// recycleLocal); the reset at handout is what guarantees no
		// trace/lineage state survives into the next use.
		p.reset()
		e.poolMissed = false
	} else {
		poolMisses.Add(1)
		if s := e.stage; s != nil && s.o != nil && !e.poolMissed {
			e.poolMissed = true
			s.o.FlightRec().Record(obs.FlightEvent{
				Kind: obs.FlightPoolExhausted, Stage: s.id,
				Instance: s.instance, Node: s.Node(),
				Detail: "packet pool empty: falling back to allocator",
			})
		}
		p = new(Packet)
	}
	p.pooled = true
	// The common recycle cycle leaves refs at 1 (recycleLocal's sole-owner
	// path never writes it), so publishing the fresh reference is usually
	// free; packets from Release or the allocator arrive at 0 and pay the
	// store.
	if atomic.LoadInt32(&p.refs) != 1 {
		atomic.StoreInt32(&p.refs, 1)
	}
	return p
}

// NewPacket is the emitter-local analog of the package-level NewPacket.
func (e *Emitter) NewPacket(v any, items, wireSize int) *Packet {
	p := e.GetPacket()
	p.Value = v
	p.Items = items
	p.WireSize = wireSize
	return p
}

// releaseFree returns the unused cached packets to the shared pool; the
// engine calls it when the stage goroutine exits. Pool storage tolerates
// un-reset packets — GetPacket resets at handout — so they go straight
// back.
func (e *Emitter) releaseFree() {
	if len(e.free) == 0 {
		return
	}
	packetPool.putN(e.free) // overflow drops to the GC
	e.free = nil
}

// flushStats publishes the batch-local emission counters to the stage's
// shared stats. No-op when nothing accumulated.
func (e *Emitter) flushStats() {
	if e.pktsOut == 0 && e.itemsOut == 0 && e.bytesOut == 0 && e.emitStallNS == 0 {
		return
	}
	s := e.stage
	s.mu.Lock()
	s.stats.PacketsOut += e.pktsOut
	s.stats.ItemsOut += e.itemsOut
	s.stats.BytesOut += e.bytesOut
	s.stats.EmitStall += time.Duration(e.emitStallNS)
	s.mu.Unlock()
	e.pktsOut, e.itemsOut, e.bytesOut, e.emitStallNS = 0, 0, 0, 0
}

func newEmitter(s *Stage, ctx context.Context) *Emitter {
	e := &Emitter{stage: s, ctx: ctx, batch: s.cfg.BatchSize}
	if e.batch > 1 {
		e.pending = make([][]*Packet, len(s.outs))
	}
	return e
}

// Fanout returns the number of outbound edges.
func (e *Emitter) Fanout() int { return len(e.stage.outs) }

// Emit stamps and sends pkt to every outbound edge, blocking for link pacing
// and downstream backpressure. It is the mechanism that lets congestion
// anywhere downstream slow this stage's consumption, which the adaptation
// algorithm then observes as a growing queue. In buffered mode the block
// happens at the next flush instead of per packet.
func (e *Emitter) Emit(pkt *Packet) error {
	if e.batch > 1 {
		return e.buffer(pkt, -1)
	}
	return e.stage.emit(e.ctx, pkt, -1)
}

// EmitTo sends pkt only on the i-th outbound edge.
func (e *Emitter) EmitTo(i int, pkt *Packet) error {
	if i < 0 || i >= len(e.stage.outs) {
		return fmt.Errorf("pipeline: EmitTo(%d) with %d edges", i, len(e.stage.outs))
	}
	if e.batch > 1 {
		return e.buffer(pkt, i)
	}
	return e.stage.emit(e.ctx, pkt, i)
}

// EmitValue wraps v in a pooled packet of the given wire size and emits it.
func (e *Emitter) EmitValue(v any, wireSize int) error {
	p := e.GetPacket()
	p.Value = v
	p.WireSize = wireSize
	return e.Emit(p)
}

// buffer stamps pkt and parks it on the targeted edges, flushing once the
// batch is full. Stats are charged at emission time (not flush) so a
// broadcast packet counts once however many edges carry it.
func (e *Emitter) buffer(pkt *Packet, only int) error {
	s := e.stage
	// Source stages have no drain loop, so their pause boundary is the
	// emission point (before the packet is stamped).
	if s.src != nil && s.pauseReq.Load() {
		if err := s.parkIfRequested(e.ctx); err != nil {
			return err
		}
	}
	size := pkt.size(s.cfg.DefaultPacketSize)
	pkt.SourceStage = s.id
	pkt.SourceInstance = s.instance
	pkt.Seq = s.emitSeq
	s.emitSeq++
	pkt.Created = s.clk.Now()
	s.stampLineage(pkt)
	if pkt == s.curIn {
		s.curForwarded = true
	}
	if !pkt.Final {
		e.pktsOut++
		e.itemsOut += uint64(pkt.ItemCount())
		e.bytesOut += uint64(size)
	}

	targets := 0
	for i := range s.outs {
		if only >= 0 && i != only {
			continue
		}
		if s.replayOn && !pkt.Final {
			s.outs[i].replay.record(pkt.Seq, pkt.Value, pkt.ItemCount(), size)
		}
		e.pending[i] = append(e.pending[i], pkt)
		e.buffered++
		targets++
	}
	if pkt.pooled {
		if targets == 0 {
			// No edge will carry it (a sink emitted): recycle now,
			// nothing downstream will ever release it.
			pkt.Release()
		} else if targets > 1 {
			// One reference per edge so each downstream consumer can
			// release independently (the caller's reference covers the
			// first edge).
			pkt.retain(int32(targets - 1))
		}
	}
	if e.buffered >= e.batch {
		return e.Flush()
	}
	return nil
}

// Flush drives every buffered packet downstream: per edge, one batched link
// reservation for the summed bytes (byte-exact — the shaper is linear, see
// netsim.TransferBatch) and one batched enqueue. A no-op when unbuffered or
// empty. The engine flushes after every drained input batch and at stream
// end, so user code only needs Flush for latency control inside a
// long-running Source.
func (e *Emitter) Flush() error {
	if e.batch <= 1 || e.buffered == 0 {
		return nil
	}
	s := e.stage
	sp := s.flushOp.Start()
	var sentPkts, sentBytes int
	for i, pend := range e.pending {
		if len(pend) == 0 {
			continue
		}
		out := s.outs[i]
		l := out.link.Load()
		deliver := pend
		if l != nil && l.Faulty() {
			// The link's fault schedule decides each packet's fate; what
			// survives (plus any reorder holds come due) is delivered in
			// one batch as usual. The pending buffer empties either way.
			deliver = s.flushFaulty(out, l, pend)
			e.buffered -= len(pend)
			e.pending[i] = pend[:0]
			if len(deliver) == 0 {
				continue
			}
		}
		sum := 0
		for _, p := range deliver {
			sum += p.size(s.cfg.DefaultPacketSize)
		}
		if l != nil {
			l.TransferBatch(sum, len(deliver))
		}
		// Blocked-emit accounting, observed engines only: the occupancy
		// pre-check keeps the untraced path byte-identical, and timing
		// only pushes that start against a full buffer keeps the clock
		// reads off the flowing path. A push that blocks mid-batch
		// (batch larger than the free space) is still charged exactly by
		// the downstream queue's PushStallNS; this series is the
		// upstream-side attribution of the same pressure.
		full := s.o != nil && out.to.in.Len() >= out.to.in.Cap()
		var stallStart time.Time
		if full {
			s.noteEmitStall(out.to)
			stallStart = time.Now()
		}
		err := s.pushBatchPausable(e.ctx, out.to, deliver)
		if full {
			e.emitStallNS += uint64(time.Since(stallStart))
		} else if s.o != nil {
			s.emitStalled = false
		}
		sentPkts += len(deliver)
		sentBytes += sum
		if len(e.pending[i]) != 0 { // already emptied on the faulty path
			e.buffered -= len(pend)
			e.pending[i] = pend[:0]
		}
		if err != nil && !errors.Is(err, queue.ErrClosed) {
			// ErrClosed means the downstream already finished: drop,
			// exactly as the unbatched path does. Pooled references for
			// the dropped packets are deliberately NOT released — the
			// batch push may have delivered a prefix before the close,
			// and double-releasing a delivered packet would corrupt the
			// pool; leaking the remainder to the GC is harmless.
			return fmt.Errorf("pipeline: %s/%d -> %s/%d: %w",
				s.id, s.instance, out.to.id, out.to.instance, err)
		}
	}
	e.flushStats()
	if sp.Sampled() {
		sp.Annotate("packets", float64(sentPkts))
		sp.Annotate("bytes", float64(sentBytes))
		sp.End()
	}
	return nil
}

// stampLineage gives a freshly emitted packet its end-to-end provenance.
// Packets that already carry a Birth (remote packets re-emitted by a
// transport ingress) pass through untouched — re-emission must not restart
// the latency clock or re-root the trace. Otherwise a processor stage's
// output inherits the lineage of the input packet being processed, and a
// true source stamps Birth now and mints a trace id on the tracer's
// sampling cadence. The inherited lineage comes from the curBirth value
// copies, not the input packet itself, which may already be recycled. Runs
// on the stage goroutine only (the cur* fields are confined to it).
func (s *Stage) stampLineage(pkt *Packet) {
	if pkt.Final || !pkt.Birth.IsZero() {
		return
	}
	if !s.curBirth.IsZero() {
		pkt.Birth = s.curBirth
		pkt.TraceID = s.curTraceID
		pkt.TraceHops = s.curTraceHops
		return
	}
	if s.src != nil {
		pkt.Birth = pkt.Created
		if id, ok := s.rootSmp.Sample(); ok {
			pkt.TraceID = id
		}
	}
}

// observeLatency records a consumed packet into the stage's latency
// scratches at virtual time nowNS (Unix nanoseconds): the per-hop latency
// (upstream emission → consumption here, i.e. queue wait plus link
// transfer) and the source-to-here latency since the lineage's Birth.
// flushLatency publishes the scratches; the drain loops call it once per
// batch and runInner guarantees a final flush on exit.
func (s *Stage) observeLatency(nowNS int64, pkt *Packet) {
	hopOK := s.hopScr != nil && !pkt.Created.IsZero()
	e2eOK := s.e2eScr != nil && !pkt.Birth.IsZero()
	if hopOK && e2eOK && pkt.Birth == pkt.Created {
		// First hop past the source: Birth is a field copy of Created,
		// both series receive the same duration, so bucket it once.
		// Deeper stages take the general path below.
		obs.ObserveNSBoth(s.hopScr, s.e2eScr, nowNS-pkt.Created.UnixNano())
		return
	}
	if hopOK {
		s.hopScr.ObserveNS(nowNS - pkt.Created.UnixNano())
	}
	if e2eOK {
		s.e2eScr.ObserveNS(nowNS - pkt.Birth.UnixNano())
	}
}

func (s *Stage) flushLatency() {
	if s.hopScr != nil {
		s.hopScr.Flush()
	}
	if s.e2eScr != nil {
		s.e2eScr.Flush()
	}
}

// processTraced runs Process under a forced-sampled span when pkt belongs
// to a distributed trace, so a sampled batch leaves a span at every stage
// it crosses regardless of each stage's local sampling phase.
func (s *Stage) processTraced(sctx *Context, pkt *Packet, em *Emitter) error {
	if pkt.TraceID == 0 || s.o == nil {
		return s.proc.Process(sctx, pkt, em)
	}
	sp := s.o.Tracer.StartTraced("stage.process", pkt.TraceID, pkt.TraceHops)
	sp.Annotate("items", float64(pkt.ItemCount()))
	err := s.proc.Process(sctx, pkt, em)
	sp.End()
	return err
}

func (s *Stage) emit(ctx context.Context, pkt *Packet, only int) error {
	// Source stages pause at the emission boundary (processor stages
	// pause in their drain loops, before any packet is in flight).
	if s.src != nil && s.pauseReq.Load() {
		if err := s.parkIfRequested(ctx); err != nil {
			return err
		}
	}
	pkt.SourceStage = s.id
	pkt.SourceInstance = s.instance
	pkt.Seq = s.emitSeq
	s.emitSeq++
	pkt.Created = s.clk.Now()
	s.stampLineage(pkt)
	if pkt == s.curIn {
		s.curForwarded = true
	}

	// Everything the accounting below needs is captured before the first
	// push: once the last edge holds the packet, a downstream sink may
	// consume and recycle it at any moment.
	size := pkt.size(s.cfg.DefaultPacketSize)
	final := pkt.Final
	items := uint64(pkt.ItemCount())

	targets := len(s.outs)
	if only >= 0 {
		targets = 1
	}
	if pkt.pooled {
		if targets == 0 {
			pkt.Release() // a sink emitted: no edge will ever release it
		} else if targets > 1 {
			pkt.retain(int32(targets - 1)) // one reference per edge
		}
	}
	var stallNS uint64
	for i, out := range s.outs {
		if only >= 0 && i != only {
			continue
		}
		if s.replayOn && !final {
			// Record before the push: once the packet is downstream a
			// sink may release it, and while broadcast references keep
			// the fields alive here, recording first needs no such
			// reasoning.
			out.replay.record(pkt.Seq, pkt.Value, int(items), size)
		}
		l := out.link.Load()
		if l != nil && l.Faulty() {
			// Injected faults: the link decides drop/hold/deliver and
			// the helper carries the consequences (held-packet release,
			// final-marker protection).
			if err := s.emitFaulty(ctx, out, l, pkt, size); err != nil {
				return err
			}
			continue
		}
		// Broadcast shares one packet struct: stages must not mutate
		// received packets. Link pacing first (transmission), then
		// enqueue (may block on downstream backpressure).
		if l != nil {
			l.Transfer(size)
		}
		// Blocked-emit accounting as in Emitter.Flush: observed engines
		// only, clock reads only when the buffer is already full.
		full := s.o != nil && out.to.in.Len() >= out.to.in.Cap()
		var stallStart time.Time
		if full {
			s.noteEmitStall(out.to)
			stallStart = time.Now()
		}
		err := s.pushPausable(ctx, out.to, pkt)
		if full {
			stallNS += uint64(time.Since(stallStart))
		} else if s.o != nil {
			s.emitStalled = false
		}
		if err != nil {
			if errors.Is(err, queue.ErrClosed) {
				// Downstream already finished; drop. This edge's
				// reference was never handed over, so releasing it here
				// cannot race with the delivered edges' consumers.
				pkt.Release()
				continue
			}
			return fmt.Errorf("pipeline: %s/%d -> %s/%d: %w",
				s.id, s.instance, out.to.id, out.to.instance, err)
		}
	}
	if !final || stallNS > 0 {
		s.mu.Lock()
		if !final {
			s.stats.PacketsOut++
			s.stats.ItemsOut += items
			s.stats.BytesOut += uint64(size)
		}
		s.stats.EmitStall += time.Duration(stallNS)
		s.mu.Unlock()
	}
	return nil
}

// pushPausable delivers pkt into dst's input queue, making a blocked push a
// pause boundary. The wait runs under the pause-epoch context — Pause
// cancels it — so a stage wedged against a full queue nobody is draining (a
// crashed downstream held paused by the recovery controller, say) can still
// park for the checkpointer or the recovery controller instead of
// deadlocking the pauser. After resume the push retries: pushCtx inserts
// nothing on cancellation, and the packet was stamped and ring-recorded
// before delivery, so if a recovery replayed its sequence interval while
// this stage was parked, the consumer-side watermark drops the late
// original as a duplicate. The park is flagged midEmit: state controllers
// must not snapshot or restore across it (see PausedMidEmit).
func (s *Stage) pushPausable(ctx context.Context, dst *Stage, pkt *Packet) error {
	for {
		err := dst.in.PushCtx(s.currentPopCtx(), pkt)
		if err == nil || errors.Is(err, queue.ErrClosed) || ctx.Err() != nil {
			return err
		}
		// Woken by a pause request, not run cancellation: park with the
		// packet in hand, then retry under the fresh epoch context.
		s.midEmit.Store(true)
		perr := s.parkIfRequested(ctx)
		s.midEmit.Store(false)
		if perr != nil {
			return perr
		}
	}
}

// pushBatchPausable is pushPausable for the batched flush path: the same
// pause-epoch wait and park-with-packets-in-hand retry, with PushBatchN
// reporting the accepted prefix so only the suffix that never entered the
// queue is retried after resume. Replay rings recorded every packet at
// emit time, so a recovery replaying the interval while this stage is
// parked hands the consumer-side watermark the duplicates to drop.
func (s *Stage) pushBatchPausable(ctx context.Context, dst *Stage, items []*Packet) error {
	for {
		n, err := dst.in.PushBatchN(s.currentPopCtx(), items)
		items = items[n:]
		if len(items) == 0 && err == nil {
			return nil
		}
		if errors.Is(err, queue.ErrClosed) || ctx.Err() != nil {
			return err
		}
		s.midEmit.Store(true)
		perr := s.parkIfRequested(ctx)
		s.midEmit.Store(false)
		if perr != nil {
			return perr
		}
	}
}

// PausedMidEmit reports whether the stage's goroutine is parked inside an
// emission with a stamped packet in hand. Such a pause is a liveness
// boundary only: the user code may be mid-Process, so its state is not a
// consistent cut — the checkpointer skips the round and the recovery
// controller falls back to zombie (at-least-once) recovery rather than
// restoring state under the live stack. Paused-only, like EmitSeq.
func (s *Stage) PausedMidEmit() bool { return s.midEmit.Load() }

// noteEmitStall records the stall-onset flight event: the first emission
// after a period of free flow that finds downstream buffer dst full. The
// emitStalled latch (stage-goroutine confined, like the emit paths) keeps a
// sustained stall from flooding the recorder with one event per push.
func (s *Stage) noteEmitStall(dst *Stage) {
	if s.emitStalled {
		return
	}
	s.emitStalled = true
	s.o.FlightRec().Record(obs.FlightEvent{
		Kind: obs.FlightStallOnset, Stage: s.id,
		Instance: s.instance, Node: s.Node(),
		Detail: "emit blocked: input buffer of " + dst.id + " full",
	})
}

// run executes the stage to completion: source generation or the
// pop-process loop, then Finish, then Final propagation. A panic in user
// code is contained to the stage and surfaces as its terminal error, so one
// broken processor cannot take down a container hosting other work.
func (s *Stage) run(ctx context.Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pipeline: %s/%d panicked: %v", s.id, s.instance, r)
		}
	}()
	return s.runInner(ctx)
}

func (s *Stage) runInner(ctx context.Context) error {
	s.bindRunContext(ctx)
	sctx := &Context{stage: s, ctx: ctx}
	em := newEmitter(s, ctx)
	defer s.pacer.Flush()
	// Return the goroutine-local packet caches to the shared pool.
	defer em.releaseFree()
	defer s.flushRecycle()
	// Packets parked by reorder injection must not outlive the run.
	defer s.releaseHeld()
	// Unbatched emitters charge stats inline, buffered ones accumulate
	// locally; publish whatever is still pending on the way out.
	defer em.flushStats()
	// Error paths can leave a partially drained batch's latency
	// observations in the scratches; publish them on the way out.
	defer s.flushLatency()

	if s.src != nil {
		if err := s.src.Run(sctx, em); err != nil {
			return fmt.Errorf("pipeline: source %s/%d: %w", s.id, s.instance, err)
		}
		return s.finishStream(em)
	}

	if err := s.proc.Init(sctx); err != nil {
		return fmt.Errorf("pipeline: init %s/%d: %w", s.id, s.instance, err)
	}
	if s.cfg.BatchSize > 1 {
		if err := s.drainBatched(ctx, sctx, em); err != nil {
			return err
		}
	} else if err := s.drainOneByOne(ctx, sctx, em); err != nil {
		return err
	}
	if err := s.proc.Finish(sctx, em); err != nil {
		return fmt.Errorf("pipeline: finish %s/%d: %w", s.id, s.instance, err)
	}
	return s.finishStream(em)
}

// recycleLocal drops the drain loop's reference to a consumed packet,
// parking it in the stage-local recycle cache when that was the last
// reference. The sole-owner fast path (refs == 1) is deliberately
// read-only on the packet: retains happen strictly before the first
// enqueue, so once this consumer observes refs == 1 no other goroutine
// can touch the count, and skipping both the atomic RMW and the field
// reset (deferred to the producer-side GetPacket) keeps the packet's
// cache lines in shared state instead of bouncing them to this core and
// back. The drain loop releases each reference exactly once by
// construction; the strict double-release panic lives in Release, which
// still guards the shared fan-out path.
func (s *Stage) recycleLocal(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	if atomic.LoadInt32(&p.refs) == 1 {
		s.recycle = append(s.recycle, p)
		return
	}
	p.Release()
}

// flushRecycle returns the recycle cache to the shared pool in one batched
// ring operation; whatever does not fit drops to the GC.
func (s *Stage) flushRecycle() {
	if len(s.recycle) == 0 {
		return
	}
	packetPool.putN(s.recycle)
	for i := range s.recycle {
		s.recycle[i] = nil
	}
	s.recycle = s.recycle[:0]
}

// finishStream emits the end-of-stream marker, flushing any buffered
// packets ahead of it so the marker stays the last thing downstream sees.
// The marker is pooled like any data packet; Release's reset guard clears
// Final before reuse, so a recycled marker cannot end a later stream.
func (s *Stage) finishStream(em *Emitter) error {
	fin := GetPacket()
	fin.Final = true
	if em.batch > 1 {
		if err := em.buffer(fin, -1); err != nil {
			return err
		}
		return em.Flush()
	}
	return s.emit(em.ctx, fin, -1)
}

// drainOneByOne is the strict per-packet pop-process loop (BatchSize 1).
// Each iteration is a pause boundary: a pending pause parks the goroutine
// before the next pop, and a pop woken by a pause-canceled pop context
// consumed nothing, so pausing never drops a packet.
func (s *Stage) drainOneByOne(ctx context.Context, sctx *Context, em *Emitter) error {
	for {
		if err := s.parkIfRequested(ctx); err != nil {
			return fmt.Errorf("pipeline: %s/%d: %w", s.id, s.instance, err)
		}
		pkt, err := s.in.PopCtx(s.currentPopCtx())
		if errors.Is(err, queue.ErrClosed) {
			return nil
		}
		if err != nil {
			if ctx.Err() == nil {
				// The pause request canceled the pop context; the
				// queue removed nothing. Park and retry.
				continue
			}
			return fmt.Errorf("pipeline: %s/%d: %w", s.id, s.instance, err)
		}
		if pkt.Final {
			s.mu.Lock()
			s.finals++
			done := s.finals >= s.inbound
			s.mu.Unlock()
			s.recycleLocal(pkt)
			if done {
				return nil
			}
			continue
		}
		if s.marks != nil && s.dropDup(pkt) {
			// Replay overlap or re-delivery: already consumed per the
			// upstream watermark. Dropping here, before the stats and
			// Process, is what makes redelivered intervals effectively-once.
			s.mu.Lock()
			s.stats.DupsDropped++
			s.mu.Unlock()
			s.recycleLocal(pkt)
			continue
		}
		items := uint64(pkt.ItemCount())
		s.mu.Lock()
		s.stats.PacketsIn++
		s.stats.ItemsIn += items
		s.mu.Unlock()
		if s.hopScr != nil || s.e2eScr != nil {
			s.observeLatency(s.clk.Now().UnixNano(), pkt)
			s.flushLatency()
		}
		// The cur* value copies survive the packet's recycling; they stay
		// set through Finish so flushed state inherits the last consumed
		// packet's lineage.
		s.curIn = pkt
		s.curBirth, s.curTraceID, s.curTraceHops = pkt.Birth, pkt.TraceID, pkt.TraceHops
		s.curForwarded = false
		sp := s.procOp.Start()
		perr := s.processTraced(sctx, pkt, em)
		if s.curForwarded {
			// The processor re-emitted its input; the reference now
			// belongs to the downstream queue (or was already released
			// on a zero-target emit).
			s.curForwarded = false
		} else {
			s.recycleLocal(pkt)
		}
		s.curIn = nil
		if len(s.recycle) >= localCacheSize {
			s.flushRecycle()
		}
		if perr != nil {
			return fmt.Errorf("pipeline: process %s/%d: %w", s.id, s.instance, perr)
		}
		if sp.Sampled() {
			sp.Annotate("items", float64(items))
			if d := sp.End(); s.batchSec != nil {
				s.batchSec.Observe(d.Seconds())
			}
		}
	}
}

// drainBatched pops up to BatchSize packets per queue round-trip, processes
// them in order, and flushes coalesced emissions once per drained batch.
// PopBatch takes only what is immediately available, so batching never
// waits for the queue to fill and an interactive trickle still flows one
// packet at a time.
func (s *Stage) drainBatched(ctx context.Context, sctx *Context, em *Emitter) error {
	batch := make([]*Packet, s.cfg.BatchSize)
	for {
		if err := s.parkIfRequested(ctx); err != nil {
			return fmt.Errorf("pipeline: %s/%d: %w", s.id, s.instance, err)
		}
		n, err := s.in.PopBatchCtx(s.currentPopCtx(), batch, len(batch))
		if n == 0 {
			if errors.Is(err, queue.ErrClosed) {
				return nil
			}
			if err != nil {
				if ctx.Err() == nil {
					// Pause canceled the pop context; nothing was
					// consumed. Park and retry.
					continue
				}
				return fmt.Errorf("pipeline: %s/%d: %w", s.id, s.instance, err)
			}
		}
		sp := s.batchOp.Start()
		var pktsIn, itemsIn uint64
		// One clock read covers the whole drained batch; the spread
		// inside a batch is below the latency bucket resolution.
		var arrivedNS int64
		latOn := false
		if (s.hopScr != nil || s.e2eScr != nil) && n > 0 {
			arrivedNS = s.clk.Now().UnixNano()
			latOn = true
		}
		done := false
		for _, pkt := range batch[:n] {
			if pkt.Final {
				s.mu.Lock()
				s.finals++
				done = s.finals >= s.inbound
				s.mu.Unlock()
				s.recycleLocal(pkt)
				if done {
					// The final marker is each upstream's last emission,
					// so nothing relevant can follow the last one.
					break
				}
				continue
			}
			if s.marks != nil && s.dropDup(pkt) {
				s.mu.Lock()
				s.stats.DupsDropped++
				s.mu.Unlock()
				s.recycleLocal(pkt)
				continue
			}
			pktsIn++
			itemsIn += uint64(pkt.ItemCount())
			if latOn {
				s.observeLatency(arrivedNS, pkt)
			}
			s.curIn = pkt
			s.curBirth, s.curTraceID, s.curTraceHops = pkt.Birth, pkt.TraceID, pkt.TraceHops
			s.curForwarded = false
			perr := s.processTraced(sctx, pkt, em)
			if s.curForwarded {
				// Re-emitted input: its reference moved to the emit
				// buffers (released or handed downstream at flush).
				s.curForwarded = false
			} else {
				s.recycleLocal(pkt)
			}
			s.curIn = nil
			if perr != nil {
				return fmt.Errorf("pipeline: process %s/%d: %w", s.id, s.instance, perr)
			}
		}
		// One batched ring operation returns the whole drained batch's
		// packets to the pool.
		s.flushRecycle()
		if pktsIn > 0 {
			s.mu.Lock()
			s.stats.PacketsIn += pktsIn
			s.stats.ItemsIn += itemsIn
			s.mu.Unlock()
		}
		if latOn {
			s.flushLatency()
		}
		if err := em.Flush(); err != nil {
			return err
		}
		if sp.Sampled() {
			sp.Annotate("packets", float64(pktsIn))
			sp.Annotate("items", float64(itemsIn))
			if d := sp.End(); s.batchSec != nil {
				s.batchSec.Observe(d.Seconds())
			}
		}
		if done {
			return nil
		}
	}
}

// adaptLoop samples the input queue on the configured interval, reports
// exceptions to every upstream neighbor, and periodically adjusts
// parameters. It stops when the stage finishes or the run is canceled.
func (s *Stage) adaptLoop(ctx context.Context) {
	ticks := 0
	var rates epochRates
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.doneCh:
			return
		case <-s.clk.After(s.cfg.AdaptInterval):
		}
		ob := s.ctrl.Observe(s.QueueLen())
		if s.cfg.OnObserve != nil {
			s.cfg.OnObserve(s, s.clk.Now(), ob)
		}
		if ob.Exception != adapt.ExceptionNone {
			for _, up := range s.upstream {
				up.ctrl.OnDownstreamException(ob.Exception)
			}
		}
		ticks++
		if ticks%s.cfg.AdjustEvery == 0 {
			now := s.clk.Now()
			res := s.ctrl.AdjustDetailed()
			lambda, mu := rates.advance(now, s.Stats())
			s.recordAdjustment(now, res, lambda, mu)
			if s.cfg.OnAdjust != nil && len(res.Adjustments) > 0 {
				s.cfg.OnAdjust(s, now, res.Adjustments)
			}
		}
	}
}
