package pipeline

import (
	"fmt"
	"strconv"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/obs"
)

// SetObservability attaches an observability bundle to the engine. At Run
// every stage is instrumented into the bundle's registry, hot-path spans go
// to its tracer, adaptation epochs land in its audit trail, and lifecycle
// events in its log. Nil (the default) means unobserved: the only residual
// cost on the data path is a pair of nil checks. Calling it after Run has
// started has no effect.
func (e *Engine) SetObservability(o *obs.Observability) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return
	}
	e.o = o
}

// ObsLabels is the identity label set every metric of this stage carries in
// a registry; consumers (internal/monitor) use it to look the series up.
func (s *Stage) ObsLabels() map[string]string {
	return map[string]string{
		"stage":    s.id,
		"instance": strconv.Itoa(s.instance),
		"node":     s.Node(),
	}
}

// Instrument publishes the stage's counters into reg as scrape-time callback
// series, so the hot path keeps updating only its existing atomic stats.
// Registration is idempotent and replaces callbacks, which is exactly what a
// restarted stage instance needs: the series names stay stable while the
// callbacks follow the live (reset) counters. A nil registry is a no-op.
func (s *Stage) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	lb := s.ObsLabels()

	reg.CounterFunc("gates_stage_packets_in_total",
		"Data packets consumed by the stage.", lb,
		func() float64 { return float64(s.Stats().PacketsIn) })
	reg.CounterFunc("gates_stage_items_in_total",
		"Data items consumed by the stage.", lb,
		func() float64 { return float64(s.Stats().ItemsIn) })
	reg.CounterFunc("gates_stage_packets_out_total",
		"Data packets emitted by the stage.", lb,
		func() float64 { return float64(s.Stats().PacketsOut) })
	reg.CounterFunc("gates_stage_items_out_total",
		"Data items emitted by the stage.", lb,
		func() float64 { return float64(s.Stats().ItemsOut) })
	reg.CounterFunc("gates_stage_bytes_out_total",
		"Payload bytes emitted by the stage.", lb,
		func() float64 { return float64(s.Stats().BytesOut) })
	reg.CounterFunc("gates_stage_compute_seconds_total",
		"Virtual compute time charged by the stage's processing code.", lb,
		func() float64 { return s.Stats().ComputeCharged.Seconds() })

	// Queue series read through inq(): Engine.Run may still be swapping in
	// the resolved ring when an external monitor instruments a stage, and
	// scrapes must follow the live buffer either way.
	reg.GaugeFunc("gates_queue_depth",
		"Current input-queue occupancy d.", lb,
		func() float64 { return float64(s.QueueLen()) })
	reg.CounterFunc("gates_queue_pushed_total",
		"Packets accepted into the input queue.", lb,
		func() float64 { return float64(s.QueueStats().Pushed) })
	reg.CounterFunc("gates_queue_popped_total",
		"Packets drained from the input queue.", lb,
		func() float64 { return float64(s.QueueStats().Popped) })
	reg.CounterFunc("gates_queue_blocked_pushes_total",
		"Pushes that blocked on a full queue (backpressure events).", lb,
		func() float64 { return float64(s.QueueStats().BlockedPushes) })
	reg.CounterFunc("gates_queue_blocked_pops_total",
		"Pops that blocked on an empty queue.", lb,
		func() float64 { return float64(s.QueueStats().BlockedPops) })
	reg.GaugeFunc("gates_queue_high_water",
		"Highest input-queue occupancy observed.", lb,
		func() float64 { return float64(s.QueueStats().HighWater) })
	reg.CounterFunc(obs.MetricQueueDropped,
		"Items rejected by TryPush on a full input queue.", lb,
		func() float64 { return float64(s.QueueStats().Dropped) })
	reg.GaugeFunc(obs.MetricQueueCapacity,
		"Input buffer capacity C.", lb,
		func() float64 { return float64(s.inq().Cap()) })

	// Backpressure stall series for the attribution engine. These are
	// wall-clock seconds (see queue.Stats): a parked goroutine advances no
	// virtual schedule, so /bottlenecks compares them to a wall epoch.
	reg.CounterFunc(obs.MetricQueuePushStall,
		"Wall-clock seconds producers spent parked on this stage's full input buffer.", lb,
		func() float64 { return float64(s.QueueStats().PushStallNS) / 1e9 })
	reg.CounterFunc(obs.MetricQueuePopStall,
		"Wall-clock seconds the drain loop spent parked on an empty input buffer.", lb,
		func() float64 { return float64(s.QueueStats().PopStallNS) / 1e9 })
	reg.CounterFunc(obs.MetricEmitStall,
		"Wall-clock seconds the stage's emit paths spent blocked on full downstream buffers.", lb,
		func() float64 { return s.Stats().EmitStall.Seconds() })

	// Topology gauges: one constant series per outbound edge so the
	// attribution engine (and any scraper) can walk the deployed graph.
	// outs is fixed by the builder before Run, so reading it here is as
	// safe as the fanout callback below.
	for _, out := range s.outs {
		reg.GaugeFunc(obs.MetricEdge,
			"Deployed topology edge (constant 1).",
			map[string]string{"from": s.id, "to": out.to.id},
			func() float64 { return 1 })
	}

	reg.GaugeFunc(obs.MetricFanout,
		"Number of downstream edges; 0 marks a pipeline sink.", lb,
		func() float64 { return float64(len(s.outs)) })

	reg.CounterFunc("gates_adaptations_total",
		"Completed adjustment epochs (ΔP law applications).", lb,
		func() float64 { return float64(s.ctrl.Adjustments()) })
	reg.GaugeFunc("gates_d_tilde",
		"Long-term average queue size factor d̃.", lb,
		func() float64 { return s.ctrl.DTilde() })

	// Instrument can be called both by Engine.Run (before the stage
	// goroutines exist) and by a monitor watching an already-running
	// engine; serialize the owned-histogram hookup and keep the first
	// assignment so the concurrent-run case never writes a field the
	// drain loop is reading. (The drain loop only reads batchSec when the
	// engine was observed at Run time, in which case it was already set
	// under this lock before the goroutines started.)
	h := reg.Histogram("gates_stage_batch_seconds",
		"Virtual time to process and flush one drained input batch (sampled).",
		nil, lb)
	hop := reg.Histogram(obs.MetricHopLatency,
		"Virtual time from a packet's emission upstream to its consumption here (queue wait + link transfer).",
		obs.LatencyBuckets, lb)
	e2e := reg.Histogram(obs.MetricE2ELatency,
		"Virtual time from a packet lineage's birth at a source to its consumption here (source-to-here latency).",
		obs.LatencyBuckets, lb)
	s.mu.Lock()
	if s.batchSec == nil {
		s.batchSec = h
	}
	if s.hopSec == nil {
		s.hopSec = hop
		s.hopScr = hop.Scratch()
	}
	if s.e2eSec == nil {
		s.e2eSec = e2e
		s.e2eScr = e2e.Scratch()
	}
	s.mu.Unlock()
}

// recordAdjustment turns one AdjustDetailed epoch into an audit event and a
// debug log line. λ and μ are items per virtual second measured since the
// previous adjustment epoch (zero on the first).
func (s *Stage) recordAdjustment(now time.Time, res adapt.AdjustResult, lambda, mu float64) {
	if s.o == nil {
		return
	}
	ev := obs.AdaptationEvent{
		At:       now,
		Stage:    s.id,
		Instance: s.instance,
		Node:     s.Node(),
		QueueLen: s.QueueLen(),
		DTilde:   res.DTilde,
		Lambda:   lambda,
		Mu:       mu,
		T1:       res.T1,
		T2:       res.T2,
		DeltaP:   res.DeltaP,
	}
	for _, adj := range res.Adjustments {
		ev.Params = append(ev.Params, obs.ParamDelta{Param: adj.Param, Old: adj.Old, New: adj.New})
	}
	s.o.Trail().Record(ev)
	if len(res.Adjustments) > 0 {
		s.o.FlightRec().Record(obs.FlightEvent{
			Kind:     obs.FlightAdaptation,
			Stage:    s.id,
			Instance: s.instance,
			Node:     s.Node(),
			Detail:   fmt.Sprintf("ΔP=%.3g adjusted %d param(s)", res.DeltaP, len(res.Adjustments)),
			Value:    res.DeltaP,
		})
	}
	s.o.Log().Debug("adaptation adjusted",
		"stage", s.id, "instance", s.instance, "node", s.Node(),
		"d_tilde", res.DTilde, "t1", res.T1, "t2", res.T2,
		"delta_p", res.DeltaP, "lambda", lambda, "mu", mu)
}

// epochRates derives λ/μ (items per virtual second) from the stage counters
// accumulated since the previous adjustment epoch, mirroring how
// internal/monitor derives rates between samples.
type epochRates struct {
	at       time.Time
	itemsIn  uint64
	itemsOut uint64
	primed   bool
}

func (r *epochRates) advance(now time.Time, stats StageStats) (lambda, mu float64) {
	if r.primed {
		if dt := now.Sub(r.at).Seconds(); dt > 0 {
			lambda = float64(stats.ItemsIn-r.itemsIn) / dt
			mu = float64(stats.ItemsOut-r.itemsOut) / dt
		}
	}
	r.at, r.itemsIn, r.itemsOut, r.primed = now, stats.ItemsIn, stats.ItemsOut, true
	return lambda, mu
}
