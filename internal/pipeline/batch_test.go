package pipeline

import (
	"context"
	"testing"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/netsim"
)

// runChain executes src -> double -> sink over two emulated links with the
// given per-stage batch size and returns the sink's values plus the link
// stats, so batched and unbatched runs can be compared field by field.
func runChain(t *testing.T, batch int) ([]int, netsim.LinkStats, netsim.LinkStats, StageStats) {
	t.Helper()
	clk := clock.NewScaled(100000)
	e := New(clk)
	e.SetDefaultBatchSize(batch)

	vals := make([]int, 500)
	for i := range vals {
		vals[i] = i
	}
	src, err := e.AddSourceStage("src", 0, &testSource{values: vals}, StageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	double := &testProc{process: func(_ *Context, pkt *Packet, out *Emitter) error {
		return out.EmitValue(pkt.Value.(int)*2, 16)
	}}
	mid, err := e.AddProcessorStage("double", 0, double, StageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sink := &collector{}
	snk, err := e.AddProcessorStage("sink", 0, sink, StageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	l1 := netsim.NewLink(clk, netsim.LinkConfig{Bandwidth: netsim.BW1M, Quantum: 50 * 1e6})
	l2 := netsim.NewLink(clk, netsim.LinkConfig{Bandwidth: netsim.BW1M, Quantum: 50 * 1e6})
	e.Connect(src, mid, l1)
	e.Connect(mid, snk, l2)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return sink.values(), l1.Stats(), l2.Stats(), mid.Stats()
}

// TestBatchedRunMatchesUnbatched is the core equivalence check: batching
// must change neither packet order nor any byte- or message-level account.
func TestBatchedRunMatchesUnbatched(t *testing.T) {
	seqVals, seqL1, seqL2, seqMid := runChain(t, 1)
	for _, batch := range []int{4, 16, 64} {
		gotVals, gotL1, gotL2, gotMid := runChain(t, batch)
		if len(gotVals) != len(seqVals) {
			t.Fatalf("batch %d: %d values, want %d", batch, len(gotVals), len(seqVals))
		}
		for i := range gotVals {
			if gotVals[i] != seqVals[i] {
				t.Fatalf("batch %d: value[%d] = %d, want %d", batch, i, gotVals[i], seqVals[i])
			}
		}
		if gotL1.Bytes != seqL1.Bytes || gotL1.Messages != seqL1.Messages {
			t.Fatalf("batch %d: link1 stats %+v, want bytes/messages of %+v", batch, gotL1, seqL1)
		}
		if gotL2.Bytes != seqL2.Bytes || gotL2.Messages != seqL2.Messages {
			t.Fatalf("batch %d: link2 stats %+v, want bytes/messages of %+v", batch, gotL2, seqL2)
		}
		if gotMid.PacketsIn != seqMid.PacketsIn || gotMid.PacketsOut != seqMid.PacketsOut ||
			gotMid.ItemsIn != seqMid.ItemsIn || gotMid.BytesOut != seqMid.BytesOut {
			t.Fatalf("batch %d: stage stats %+v, want %+v", batch, gotMid, seqMid)
		}
	}
}

func TestBatchSizeResolution(t *testing.T) {
	e := New(clock.NewScaled(100000))
	e.SetDefaultBatchSize(8)
	var inherited, forced int
	src, _ := e.AddSourceStage("src", 0, &testSource{values: []int{1}}, StageConfig{})
	inh := &testProc{init: func(ctx *Context) error {
		inherited = ctx.BatchSize()
		return nil
	}}
	one := &testProc{init: func(ctx *Context) error {
		forced = ctx.BatchSize()
		return nil
	}}
	a, _ := e.AddProcessorStage("inherits", 0, inh, StageConfig{})
	b, _ := e.AddProcessorStage("forced", 0, one, StageConfig{BatchSize: 1})
	e.Connect(src, a, nil)
	e.Connect(a, b, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if inherited != 8 {
		t.Fatalf("unset BatchSize resolved to %d, want engine default 8", inherited)
	}
	if forced != 1 {
		t.Fatalf("explicit BatchSize 1 resolved to %d", forced)
	}
}

func TestBatchedEmitToRoutesSelectively(t *testing.T) {
	e := New(clock.NewScaled(100000))
	e.SetDefaultBatchSize(8)
	router := &testProc{process: func(_ *Context, pkt *Packet, out *Emitter) error {
		v := pkt.Value.(int)
		return out.EmitTo(v%2, &Packet{Value: v, WireSize: 8})
	}}
	src, _ := e.AddSourceStage("src", 0, &testSource{values: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}, StageConfig{})
	rt, _ := e.AddProcessorStage("router", 0, router, StageConfig{})
	even := &collector{}
	odd := &collector{}
	evenSt, _ := e.AddProcessorStage("even", 0, even, StageConfig{})
	oddSt, _ := e.AddProcessorStage("odd", 0, odd, StageConfig{})
	e.Connect(src, rt, nil)
	e.Connect(rt, evenSt, nil)
	e.Connect(rt, oddSt, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	wantEven := []int{0, 2, 4, 6, 8}
	wantOdd := []int{1, 3, 5, 7, 9}
	gotEven, gotOdd := even.values(), odd.values()
	if len(gotEven) != len(wantEven) || len(gotOdd) != len(wantOdd) {
		t.Fatalf("even=%v odd=%v", gotEven, gotOdd)
	}
	for i := range wantEven {
		if gotEven[i] != wantEven[i] {
			t.Fatalf("even = %v, want %v", gotEven, wantEven)
		}
	}
	for i := range wantOdd {
		if gotOdd[i] != wantOdd[i] {
			t.Fatalf("odd = %v, want %v", gotOdd, wantOdd)
		}
	}
}

// TestBatchedBroadcastCountsOnce: a packet fanned out to two edges must be
// counted once in the emitting stage's stats, and its final marker must end
// both downstream streams.
func TestBatchedBroadcastCountsOnce(t *testing.T) {
	e := New(clock.NewScaled(100000))
	e.SetDefaultBatchSize(16)
	vals := []int{10, 20, 30, 40, 50}
	src, _ := e.AddSourceStage("src", 0, &testSource{values: vals}, StageConfig{})
	a := &collector{}
	b := &collector{}
	aSt, _ := e.AddProcessorStage("a", 0, a, StageConfig{})
	bSt, _ := e.AddProcessorStage("b", 0, b, StageConfig{})
	e.Connect(src, aSt, nil)
	e.Connect(src, bSt, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := src.Stats().PacketsOut; got != uint64(len(vals)) {
		t.Fatalf("broadcast PacketsOut = %d, want %d (once per packet, not per edge)", got, len(vals))
	}
	for name, c := range map[string]*collector{"a": a, "b": b} {
		got := c.values()
		if len(got) != len(vals) {
			t.Fatalf("sink %s got %v, want %v", name, got, vals)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("sink %s got %v, want %v", name, got, vals)
			}
		}
	}
}
