package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/queue"
)

// Engine owns a set of wired stage instances and runs them to completion.
// It is the in-process execution fabric underneath the service layer's
// containers: the Deployer decides *where* instances go; the Engine makes
// them flow.
type Engine struct {
	clk clock.Clock

	mu        sync.Mutex
	stages    []*Stage
	started   bool
	defBatch  int
	defReplay int
	o         *obs.Observability
}

// New returns an empty engine on the given clock.
func New(clk clock.Clock) *Engine {
	if clk == nil {
		panic("pipeline: New requires a clock")
	}
	return &Engine{clk: clk}
}

// Clock returns the engine's clock.
func (e *Engine) Clock() clock.Clock { return e.clk }

// SetDefaultBatchSize sets the drain/coalesce batch size applied at Run to
// every stage whose StageConfig leaves BatchSize zero. Values below 1 (and
// the initial state) mean 1: strict per-packet semantics. Calling it after
// Run has started has no effect.
func (e *Engine) SetDefaultBatchSize(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return
	}
	e.defBatch = n
}

// SetDefaultReplayBuffer sets the fault-tolerance replay-buffer depth
// applied at Run to every stage whose StageConfig leaves ReplayBuffer zero
// (see StageConfig.ReplayBuffer). Values of zero or below (and the initial
// state) leave fault tolerance off. Calling it after Run has started has no
// effect.
func (e *Engine) SetDefaultReplayBuffer(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return
	}
	e.defReplay = n
}

// AddProcessorStage registers a packet-driven stage instance.
func (e *Engine) AddProcessorStage(id string, instance int, p Processor, cfg StageConfig) (*Stage, error) {
	if p == nil {
		return nil, fmt.Errorf("pipeline: stage %s/%d: nil Processor", id, instance)
	}
	return e.addStage(id, instance, p, nil, cfg)
}

// AddSourceStage registers a generating stage instance with no inputs.
func (e *Engine) AddSourceStage(id string, instance int, s Source, cfg StageConfig) (*Stage, error) {
	if s == nil {
		return nil, fmt.Errorf("pipeline: stage %s/%d: nil Source", id, instance)
	}
	return e.addStage(id, instance, nil, s, cfg)
}

func (e *Engine) addStage(id string, instance int, p Processor, src Source, cfg StageConfig) (*Stage, error) {
	if id == "" {
		return nil, errors.New("pipeline: stage id must be non-empty")
	}
	cfg.fill()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return nil, errors.New("pipeline: engine already running")
	}
	for _, st := range e.stages {
		if st.id == id && st.instance == instance {
			return nil, fmt.Errorf("pipeline: stage %s/%d already registered", id, instance)
		}
	}
	st := &Stage{
		id:        id,
		instance:  instance,
		proc:      p,
		src:       src,
		cfg:       cfg,
		clk:       e.clk,
		pacer:     clock.NewPacer(e.clk, cfg.ComputeQuantum),
		in:        queue.New[*Packet](cfg.QueueCapacity),
		ctrl:      adapt.NewController(cfg.Adapt),
		doneCh:    make(chan struct{}),
		pauseWake: make(chan struct{}),
	}
	e.stages = append(e.stages, st)
	return st, nil
}

// Connect wires from's output to to's input, optionally through an emulated
// link (nil means a free local hand-off). Connecting into a source stage or
// out of a registered-elsewhere stage is an error.
func (e *Engine) Connect(from, to *Stage, link *netsim.Link) error {
	if from == nil || to == nil {
		return errors.New("pipeline: Connect with nil stage")
	}
	if to.src != nil {
		return fmt.Errorf("pipeline: cannot connect into source stage %s/%d", to.id, to.instance)
	}
	if from == to {
		return fmt.Errorf("pipeline: self-loop on %s/%d", from.id, from.instance)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return errors.New("pipeline: engine already running")
	}
	ed := &edge{to: to}
	ed.link.Store(link)
	from.outs = append(from.outs, ed)
	to.upstream = append(to.upstream, from)
	to.inbound++
	return nil
}

// Relink recomputes the links carried by every edge touching target — its
// outbound edges and its upstreams' edges into it — after the stage has
// moved to a different node. resolve maps a (from, to) stage pair to the
// link that should now carry their traffic (nil for a free local
// hand-off). Safe while the engine runs: emitters read edge links
// atomically, and a transfer already in flight on the old link completes
// there.
func (e *Engine) Relink(target *Stage, resolve func(from, to *Stage) *netsim.Link) {
	if target == nil || resolve == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, out := range target.outs {
		out.link.Store(resolve(target, out.to))
	}
	for _, up := range target.upstream {
		for _, out := range up.outs {
			if out.to == target {
				out.link.Store(resolve(up, target))
			}
		}
	}
}

// Stages returns the registered stage instances in registration order.
func (e *Engine) Stages() []*Stage {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Stage, len(e.stages))
	copy(out, e.stages)
	return out
}

// Stage returns the registered instance with the given id and ordinal.
func (e *Engine) Stage(id string, instance int) (*Stage, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.stages {
		if st.id == id && st.instance == instance {
			return st, true
		}
	}
	return nil, false
}

// Ready reports whether the engine has started and every registered stage
// instance is in the Running state — the /readyz condition of a node: a
// stage still initializing, paused for migration, or already stopped makes
// the node not ready.
func (e *Engine) Ready() bool {
	e.mu.Lock()
	started := e.started
	stages := make([]*Stage, len(e.stages))
	copy(stages, e.stages)
	e.mu.Unlock()
	if !started || len(stages) == 0 {
		return false
	}
	for _, st := range stages {
		if st.State() != StateRunning {
			return false
		}
	}
	return true
}

// validate checks the topology is runnable.
func (e *Engine) validate() error {
	if len(e.stages) == 0 {
		return errors.New("pipeline: no stages registered")
	}
	hasSource := false
	for _, st := range e.stages {
		if st.src != nil {
			hasSource = true
			continue
		}
		if st.inbound == 0 {
			return fmt.Errorf("pipeline: processor stage %s/%d has no input", st.id, st.instance)
		}
	}
	if !hasSource {
		return errors.New("pipeline: no source stage")
	}
	return nil
}

// Run executes every stage to completion and returns the first stage error,
// or ctx's error if the run was canceled. Run may be called once.
func (e *Engine) Run(ctx context.Context) error {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return errors.New("pipeline: engine already ran")
	}
	if err := e.validate(); err != nil {
		e.mu.Unlock()
		return err
	}
	e.started = true
	stages := make([]*Stage, len(e.stages))
	copy(stages, e.stages)
	// Resolve batch sizes and attach observability before any stage
	// goroutine starts: zero batch inherits the engine default, and
	// everything clamps to at least 1.
	for _, st := range stages {
		if st.cfg.BatchSize == 0 {
			st.cfg.BatchSize = e.defBatch
		}
		if st.cfg.BatchSize < 1 {
			st.cfg.BatchSize = 1
		}
		if st.cfg.ReplayBuffer == 0 {
			st.cfg.ReplayBuffer = e.defReplay
		}
		if st.cfg.ReplayBuffer > 0 {
			st.enableFT(st.cfg.ReplayBuffer)
		}
		st.resolveQueue()
		if e.o != nil {
			st.o = e.o
			st.procOp = e.o.Tracer.Op("stage.process")
			st.batchOp = e.o.Tracer.Op("stage.batch")
			st.flushOp = e.o.Tracer.Op("emitter.flush")
			if st.src != nil {
				st.rootSmp = e.o.Tracer.RootSampler()
			}
			st.Instrument(e.o.Registry)
		}
	}
	o := e.o
	e.mu.Unlock()

	if o != nil {
		instrumentPool(o.Registry)
	}
	o.Log().Info("pipeline run starting", "stages", len(stages))

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		adaptWg  sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for _, st := range stages {
		// The adaptation loop runs for processor stages (which own an
		// observable server queue). Source stages have no queue; their
		// parameters, if any, react only to downstream exceptions, so
		// they get an adjust-only loop when adaptation is enabled.
		if !st.cfg.DisableAdaptation {
			adaptWg.Add(1)
			go func(st *Stage) {
				defer adaptWg.Done()
				// Adaptation shares the stage's CPU-attribution bucket: its
				// epochs are work done on that stage's behalf.
				pprof.Do(ctx, pprof.Labels("stage", st.id), func(ctx context.Context) {
					st.adaptLoopFor(ctx)
				})
			}(st)
		}
		wg.Add(1)
		go func(st *Stage) {
			defer wg.Done()
			st.o.Log().Debug("stage started",
				"stage", st.id, "instance", st.instance, "node", st.Node(),
				"batch", st.cfg.BatchSize)
			st.markStarted()
			// The pprof label is what folds CPU profile samples back onto
			// this stage in the obs.Profiler attribution (DESIGN.md §14).
			var err error
			pprof.Do(ctx, pprof.Labels("stage", st.id), func(ctx context.Context) {
				err = st.run(ctx)
			})
			st.mu.Lock()
			st.err = err
			st.mu.Unlock()
			st.toState(StateStopped)
			close(st.doneCh)
			if err != nil {
				st.o.Log().Warn("stage failed",
					"stage", st.id, "instance", st.instance, "err", err)
				errOnce.Do(func() { firstErr = err })
				cancel()
			} else {
				st.o.Log().Debug("stage finished",
					"stage", st.id, "instance", st.instance)
			}
		}(st)
	}
	wg.Wait()
	cancel()
	adaptWg.Wait()
	for _, st := range stages {
		st.in.Close()
	}
	if firstErr != nil {
		o.Log().Error("pipeline run failed", "err", firstErr)
		return firstErr
	}
	o.Log().Info("pipeline run finished", "stages", len(stages))
	if err := ctx.Err(); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	return nil
}

// resolveQueue swaps the stage's registration-time mutex queue for the ring
// implementation its resolved QueueKind selects. It runs inside Engine.Run
// before any stage goroutine exists, so the hot loops only ever see the
// final buffer; concurrent external observers (monitor, migration) read the
// reference through inq() under the stage mutex.
//
// The engine resolves QueueAuto exactly as the service Planner does at Plan
// time: one distinct upstream stage means one producer goroutine, so the
// edge takes the SPSC ring; more take MPSC. An explicit SPSC request with
// several producers would corrupt the ring, so it degrades to MPSC instead
// of trusting the override. Sources and input-less stages keep the inert
// mutex queue — nothing ever flows through it.
func (s *Stage) resolveQueue() {
	if s.src != nil || s.inbound == 0 {
		s.mu.Lock()
		s.cfg.Queue = QueueMutex
		s.mu.Unlock()
		return
	}
	producers := 0
	seen := make(map[*Stage]struct{}, len(s.upstream))
	for _, up := range s.upstream {
		if _, ok := seen[up]; !ok {
			seen[up] = struct{}{}
			producers++
		}
	}
	kind := s.cfg.Queue
	switch kind {
	case QueueAuto:
		if producers == 1 {
			kind = QueueSPSC
		} else {
			kind = QueueMPSC
		}
	case QueueSPSC:
		if producers > 1 {
			kind = QueueMPSC
		}
	}
	var in queue.Buffer[*Packet]
	switch kind {
	case QueueSPSC:
		in = queue.NewSPSC[*Packet](s.cfg.QueueCapacity)
	case QueueMPSC:
		in = queue.NewMPSC[*Packet](s.cfg.QueueCapacity)
	default:
		// QueueMutex: the registration-time queue already is one.
		s.mu.Lock()
		s.cfg.Queue = kind
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	s.cfg.Queue = kind
	s.in = in
	s.mu.Unlock()
}

// adaptLoopFor dispatches to the queue-observing loop for processor stages
// and the adjust-only loop for sources.
func (s *Stage) adaptLoopFor(ctx context.Context) {
	if s.src == nil {
		s.adaptLoop(ctx)
		return
	}
	ticks := 0
	var rates epochRates
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.doneCh:
			return
		case <-s.clk.After(s.cfg.AdaptInterval):
		}
		ticks++
		if ticks%s.cfg.AdjustEvery == 0 {
			now := s.clk.Now()
			res := s.ctrl.AdjustDetailed()
			lambda, mu := rates.advance(now, s.Stats())
			s.recordAdjustment(now, res, lambda, mu)
			if s.cfg.OnAdjust != nil && len(res.Adjustments) > 0 {
				s.cfg.OnAdjust(s, now, res.Adjustments)
			}
		}
	}
}
