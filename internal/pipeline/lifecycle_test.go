package pipeline

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/netsim"
)

// gatedTestSource emits values but parks after half of them until released.
type gatedTestSource struct {
	values  []int
	reached chan struct{}
	release chan struct{}
}

func (s *gatedTestSource) Run(_ *Context, out *Emitter) error {
	for i, v := range s.values {
		if i == len(s.values)/2 {
			close(s.reached)
			<-s.release
		}
		if err := out.EmitValue(v, 8); err != nil {
			return err
		}
	}
	return nil
}

// TestPauseResumeDeliversEverything pauses a processor mid-stream (while
// its upstream keeps producing into the queue), resumes it, and checks
// every value arrives exactly once in order.
func TestPauseResumeDeliversEverything(t *testing.T) {
	clk := clock.NewManual()
	eng := New(clk)
	values := make([]int, 200)
	for i := range values {
		values[i] = i
	}
	src := &gatedTestSource{values: values, reached: make(chan struct{}), release: make(chan struct{})}
	sink := &collector{}
	s1, _ := eng.AddSourceStage("src", 0, src, StageConfig{DisableAdaptation: true})
	s2, _ := eng.AddProcessorStage("sink", 0, sink, StageConfig{DisableAdaptation: true, QueueCapacity: 500})
	if err := eng.Connect(s1, s2, nil); err != nil {
		t.Fatal(err)
	}

	if got := s2.State(); got != StateInit {
		t.Fatalf("pre-run state %v, want init", got)
	}
	done := make(chan error, 1)
	go func() { done <- eng.Run(context.Background()) }()

	<-src.reached
	if err := s2.Pause(context.Background()); err != nil {
		t.Fatalf("pause: %v", err)
	}
	if got := s2.State(); got != StatePaused {
		t.Fatalf("state after Pause %v, want paused", got)
	}
	midCount := len(sink.values())

	// A second pause of a paused stage must refuse.
	if err := s2.Pause(context.Background()); err == nil || !strings.Contains(err.Error(), "pending") {
		t.Fatalf("double pause = %v", err)
	}
	// Nothing flows while paused, even as the source keeps pushing.
	close(src.release)
	time.Sleep(10 * time.Millisecond)
	if got := len(sink.values()); got != midCount {
		t.Fatalf("paused sink consumed %d -> %d values", midCount, got)
	}

	if err := s2.Resume(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if err := s2.Resume(); err == nil {
		t.Fatal("resuming a running stage succeeded")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	got := sink.values()
	if len(got) != len(values) {
		t.Fatalf("delivered %d values, want %d", len(got), len(values))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("value %d = %d, out of order", i, v)
		}
	}
	if got := s2.State(); got != StateStopped {
		t.Fatalf("terminal state %v, want stopped", got)
	}
	if err := s2.Pause(context.Background()); err == nil {
		t.Fatal("pausing a stopped stage succeeded")
	}
}

// TestPauseWakesBlockedPop pauses a processor that is blocked on an empty
// queue: the pause must not wait for a packet that will never come.
func TestPauseWakesBlockedPop(t *testing.T) {
	clk := clock.NewManual()
	eng := New(clk)
	src := &gatedTestSource{values: []int{1, 2}, reached: make(chan struct{}), release: make(chan struct{})}
	sink := &collector{}
	s1, _ := eng.AddSourceStage("src", 0, src, StageConfig{DisableAdaptation: true})
	s2, _ := eng.AddProcessorStage("sink", 0, sink, StageConfig{DisableAdaptation: true})
	if err := eng.Connect(s1, s2, nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- eng.Run(context.Background()) }()

	<-src.reached // sink has drained the first value and is blocked popping
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s2.Pause(ctx); err != nil {
		t.Fatalf("pause of a pop-blocked stage: %v", err)
	}
	if err := s2.Resume(); err != nil {
		t.Fatal(err)
	}
	close(src.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := sink.values(); len(got) != 2 {
		t.Fatalf("delivered %v, want both values", got)
	}
}

// snapSource is a source with snapshotable state.
type snapSource struct{ n int }

func (s *snapSource) Run(*Context, *Emitter) error { return nil }
func (s *snapSource) Snapshot() ([]byte, error)    { return []byte{byte(s.n)}, nil }
func (s *snapSource) Restore(b []byte) error       { s.n = int(b[0]); return nil }

// TestSnapshotterDetection checks Snapshotter() finds user code that
// implements the interface and rejects code that does not.
func TestSnapshotterDetection(t *testing.T) {
	clk := clock.NewManual()
	eng := New(clk)
	plain, _ := eng.AddProcessorStage("plain", 0, &collector{}, StageConfig{})
	if _, ok := plain.Snapshotter(); ok {
		t.Error("plain processor reported a snapshotter")
	}
	src, _ := eng.AddSourceStage("snap", 0, &snapSource{n: 7}, StageConfig{})
	sn, ok := src.Snapshotter()
	if !ok {
		t.Fatal("snapshotable source not detected")
	}
	b, err := sn.Snapshot()
	if err != nil || len(b) != 1 || b[0] != 7 {
		t.Fatalf("snapshot = %v, %v", b, err)
	}
	if !src.IsSource() || plain.IsSource() {
		t.Error("IsSource misreports")
	}
}

// TestRelinkSwapsLiveEdges rewires a running stage's edges through Relink
// and checks subsequent traffic uses the new link.
func TestRelinkSwapsLiveEdges(t *testing.T) {
	clk := clock.NewManual()
	eng := New(clk)
	src := &gatedTestSource{values: []int{1, 2, 3, 4}, reached: make(chan struct{}), release: make(chan struct{})}
	sink := &collector{}
	s1, _ := eng.AddSourceStage("src", 0, src, StageConfig{DisableAdaptation: true})
	s2, _ := eng.AddProcessorStage("sink", 0, sink, StageConfig{DisableAdaptation: true})
	if err := eng.Connect(s1, s2, nil); err != nil { // starts local: no link
		t.Fatal(err)
	}
	link := netsim.NewLink(clk, netsim.LinkConfig{}) // unlimited, but counting
	done := make(chan error, 1)
	go func() { done <- eng.Run(context.Background()) }()
	<-src.reached
	eng.Relink(s2, func(_, _ *Stage) *netsim.Link { return link })
	close(src.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if link.Stats().Bytes == 0 {
		t.Error("relinked edge carried no bytes")
	}
	if got := sink.values(); len(got) != 4 {
		t.Fatalf("delivered %v", got)
	}
}

// TestPauseWakesBlockedBatchedPush pins the batched twin of the
// pushPausable guarantee: a source wedged mid-Flush against the full queue
// of a paused downstream must still be pausable (the blocked batch push is
// a pause boundary), and after both stages resume the retried suffix
// delivers every value exactly once, in order.
func TestPauseWakesBlockedBatchedPush(t *testing.T) {
	clk := clock.NewManual()
	eng := New(clk)
	values := make([]int, 64)
	for i := range values {
		values[i] = i
	}
	src := &testSource{values: values}
	sink := &collector{}
	s1, _ := eng.AddSourceStage("src", 0, src, StageConfig{DisableAdaptation: true, BatchSize: 8})
	s2, _ := eng.AddProcessorStage("sink", 0, sink, StageConfig{DisableAdaptation: true, QueueCapacity: 4})
	if err := eng.Connect(s1, s2, nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- eng.Run(context.Background()) }()

	// Hold the sink paused: its 4-slot queue fills and the source's
	// 8-packet flush necessarily blocks mid-batch with packets in hand.
	if err := s2.Pause(context.Background()); err != nil {
		t.Fatalf("pause sink: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s2.inq().Len() < s2.inq().Cap() {
		if time.Now().After(deadline) {
			t.Fatal("sink queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// The regression: before pushBatchPausable this Pause hung forever —
	// the source could not reach a pause boundary while blocked inside
	// PushBatchCtx, and nobody was draining the paused sink.
	pctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Pause(pctx); err != nil {
		t.Fatalf("pause of a source blocked in a batched flush: %v", err)
	}
	if !s1.PausedMidEmit() {
		t.Error("source parked mid-flush not flagged PausedMidEmit")
	}

	if err := s1.Resume(); err != nil {
		t.Fatalf("resume source: %v", err)
	}
	if err := s2.Resume(); err != nil {
		t.Fatalf("resume sink: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	got := sink.values()
	if len(got) != len(values) {
		t.Fatalf("delivered %d values, want %d (retried suffix lost or duplicated)", len(got), len(values))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("value %d = %d, out of order after mid-batch park", i, v)
		}
	}
}
