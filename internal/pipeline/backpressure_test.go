package pipeline

import (
	"context"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/obs"
)

// slowProc burns real wall time per packet so upstream emits park on this
// stage's bounded input buffer — the constriction the backpressure
// telemetry must attribute.
type slowProc struct{ sleep time.Duration }

func (slowProc) Init(*Context) error { return nil }
func (p slowProc) Process(_ *Context, pkt *Packet, out *Emitter) error {
	time.Sleep(p.sleep)
	return out.Emit(pkt)
}
func (slowProc) Finish(*Context, *Emitter) error { return nil }

// runConstricted drives src → slow → sink with a tiny buffer in front of
// the slow stage and returns the bundle plus the stages.
func runConstricted(t *testing.T) (*obs.Observability, *Stage, *Stage) {
	t.Helper()
	clk := clock.NewManual()
	ob := obs.New(clk, obs.Config{SampleEvery: -1})
	e := New(clk)
	e.SetObservability(ob)
	e.SetDefaultBatchSize(8)

	vals := make([]int, 600)
	src, err := e.AddSourceStage("src", 0, &testSource{values: vals}, StageConfig{DisableAdaptation: true})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := e.AddProcessorStage("slow", 0, slowProc{sleep: 100 * time.Microsecond}, StageConfig{
		DisableAdaptation: true, QueueCapacity: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	sink, err := e.AddProcessorStage("sink", 0, &collector{}, StageConfig{
		DisableAdaptation: true, QueueCapacity: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Connect(src, slow, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Connect(slow, sink, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return ob, src, slow
}

func TestEmitStallTelemetry(t *testing.T) {
	ob, src, slow := runConstricted(t)

	// The slow stage's input queue charged the parked producer...
	qs := slow.QueueStats()
	if qs.BlockedPushes == 0 || qs.PushStallNS == 0 {
		t.Fatalf("no inbound stall on the slow stage: %+v", qs)
	}
	// ...and the producer charged the same pressure to its emit side.
	if src.Stats().EmitStall == 0 {
		t.Fatal("source recorded no emit stall")
	}

	// The registry exposes both series plus the topology edges.
	snap := ob.Registry.Snapshot()
	series := make(map[string]bool)
	edges := make(map[string]bool)
	for _, p := range snap {
		series[p.Name] = true
		if p.Name == obs.MetricEdge {
			edges[p.Labels["from"]+">"+p.Labels["to"]] = true
		}
	}
	for _, name := range []string{
		obs.MetricQueuePushStall, obs.MetricQueuePopStall, obs.MetricEmitStall,
		obs.MetricQueueCapacity, obs.MetricQueueDropped,
		"gates_pool_gets_total", "gates_pool_misses_total", "gates_pool_free",
	} {
		if !series[name] {
			t.Fatalf("series %s missing from snapshot", name)
		}
	}
	if !edges["src>slow"] || !edges["slow>sink"] {
		t.Fatalf("topology edges missing: %v", edges)
	}

	// The attribution engine, fed that snapshot, names the slow stage.
	rep := ob.Attr().ObserveRegistry(ob.Registry)
	if rep.Bottleneck != "slow/0" {
		t.Fatalf("bottleneck = %q, want slow/0 (verdicts %+v)", rep.Bottleneck, rep.Verdicts)
	}

	// The flight recorder saw the stall onset and the lifecycle edges.
	kinds := make(map[obs.FlightKind]int)
	for _, ev := range ob.Flight.Events() {
		kinds[ev.Kind]++
	}
	if kinds[obs.FlightStallOnset] == 0 {
		t.Fatalf("no stall-onset flight event; kinds: %v", kinds)
	}
	if kinds[obs.FlightLifecycle] == 0 {
		t.Fatalf("no lifecycle flight events; kinds: %v", kinds)
	}
	// Edge-triggered: onsets, not one event per blocked flush. 600 packets
	// through an 8-deep buffer block hundreds of times; onset events must
	// stay well below that.
	if kinds[obs.FlightStallOnset] > 100 {
		t.Fatalf("%d stall-onset events — latch not suppressing repeats", kinds[obs.FlightStallOnset])
	}
}

func TestPoolStatsSnapshot(t *testing.T) {
	before := ReadPoolStats()
	runConstricted(t)
	after := ReadPoolStats()
	if after.Gets <= before.Gets {
		t.Fatalf("pool gets did not advance: %d -> %d", before.Gets, after.Gets)
	}
	if after.Recycled <= before.Recycled {
		t.Fatalf("pool recycles did not advance: %d -> %d", before.Recycled, after.Recycled)
	}
	if after.Capacity == 0 || after.Free > after.Capacity {
		t.Fatalf("inconsistent freelist: %+v", after)
	}
}
