// Fault-tolerance surface of the stage engine: per-edge replay rings,
// per-upstream sequence-watermark deduplication, the paused-only accessors
// the recovery controller drives, and the emit-side fault-verdict handling
// that models lossy or black-holed links.
//
// The design leans on two existing invariants. First, every emission is
// already stamped with a dense per-emitter sequence number (Stage.emitSeq),
// so "what did the crash lose" reduces to a sequence interval. Second,
// Pause's close(pausedCh) handshake gives an external goroutine a
// happens-before edge on everything the stage goroutine wrote, so the
// paused-only accessors below need no locking of their own.
//
// Enablement is per stage via StageConfig.ReplayBuffer (or the engine-wide
// default): a stage with fault tolerance on keeps a bounded ring of its last
// N emitted data packets per outbound edge, and its drain loops drop any
// received packet at or below the per-upstream watermark. Replay after a
// recovery re-injects the interval the crash swallowed; re-delivery of
// anything older is absorbed by the watermark, which is what turns
// at-least-once into effectively-once for deterministic emitters. The
// watermark advances monotonically, so this dedupe is incompatible with
// reorder injection on the same edge — a deliberately late packet looks
// like a duplicate (see DESIGN.md §13).
package pipeline

import (
	"context"
	"errors"
	"fmt"

	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/queue"
)

// UpstreamMark is a consumer-side replay watermark: every packet from the
// named emitter with Seq below Next has been consumed (or deliberately
// skipped). Gap-tolerant by construction — consuming Seq k advances Next to
// k+1 regardless of holes, so link loss cannot wedge the mark.
type UpstreamMark struct {
	Stage    string `json:"stage"`
	Instance int    `json:"instance"`
	Next     uint64 `json:"next"`
}

// replayEntry is one recorded emission. Plain value copies of the packet's
// identity-free payload fields: pooled packets must not be referenced after
// their downstream consumer releases them, but the Value interface and the
// counts are safe to retain (payload objects are heap-allocated and never
// recycled).
type replayEntry struct {
	seq   uint64
	value any
	items int
	wire  int
}

// replayRing is a bounded record of the last cap(entries) data emissions on
// one edge, in emission order. Confined to the emitting stage goroutine for
// writes; read by the recovery controller only while the emitter is paused.
type replayRing struct {
	entries []replayEntry
	next    int    // slot the next record lands in
	total   uint64 // lifetime records (≥ len tells wrap/eviction)
}

func newReplayRing(n int) *replayRing {
	return &replayRing{entries: make([]replayEntry, 0, n)}
}

func (r *replayRing) record(seq uint64, value any, items, wire int) {
	e := replayEntry{seq: seq, value: value, items: items, wire: wire}
	if len(r.entries) < cap(r.entries) {
		r.entries = append(r.entries, e)
	} else {
		r.entries[r.next] = e
	}
	r.next++
	if r.next == cap(r.entries) {
		r.next = 0
	}
	r.total++
}

// scan visits the retained entries in emission order.
func (r *replayRing) scan(fn func(replayEntry)) {
	if len(r.entries) < cap(r.entries) || r.total == uint64(len(r.entries)) {
		for _, e := range r.entries {
			fn(e)
		}
		return
	}
	for i := r.next; i < len(r.entries); i++ {
		fn(r.entries[i])
	}
	for i := 0; i < r.next; i++ {
		fn(r.entries[i])
	}
}

// oldest returns the seq of the oldest retained entry (ok=false when empty).
func (r *replayRing) oldest() (uint64, bool) {
	if len(r.entries) == 0 {
		return 0, false
	}
	if len(r.entries) < cap(r.entries) {
		return r.entries[0].seq, true
	}
	return r.entries[r.next].seq, true
}

// evicted reports whether the ring has overwritten records.
func (r *replayRing) evicted() bool { return r.total > uint64(len(r.entries)) }

// heldPacket is a delivery parked by a reorder verdict; due counts the
// delivery rounds remaining before release.
type heldPacket struct {
	pkt *Packet
	due int
}

// enableFT turns the stage's fault-tolerance surface on before its
// goroutine starts: one replay ring per outbound edge and the consumer-side
// watermark table, pre-seeded with the wired upstream emitters. Packets
// from emitters not known here (remote identities re-emitted by a transport
// ingress) get marks added on first sight by dropDup.
func (s *Stage) enableFT(n int) {
	for _, out := range s.outs {
		out.replay = newReplayRing(n)
	}
	s.replayOn = len(s.outs) > 0
	s.marks = s.marks[:0]
	for _, up := range s.upstream {
		if s.markFor(up.id, up.instance) == nil {
			s.marks = append(s.marks, UpstreamMark{Stage: up.id, Instance: up.instance})
		}
	}
	if s.marks == nil {
		// A source with fault tolerance on still needs a non-nil table so
		// dropDup stays armed for any future inputs (and Marks() reports
		// enablement).
		s.marks = []UpstreamMark{}
	}
}

func (s *Stage) markFor(stage string, instance int) *UpstreamMark {
	for i := range s.marks {
		if s.marks[i].Stage == stage && s.marks[i].Instance == instance {
			return &s.marks[i]
		}
	}
	return nil
}

// dropDup is the consumer-side dedupe check, called by the drain loops on
// the stage goroutine for every data packet when fault tolerance is on.
// It reports true when the packet's sequence is below its emitter's
// watermark (a replay overlap or a re-delivery) and advances the watermark
// otherwise.
func (s *Stage) dropDup(pkt *Packet) bool {
	m := s.markFor(pkt.SourceStage, pkt.SourceInstance)
	if m == nil {
		s.marks = append(s.marks, UpstreamMark{Stage: pkt.SourceStage, Instance: pkt.SourceInstance, Next: pkt.Seq + 1})
		return false
	}
	if pkt.Seq < m.Next {
		return true
	}
	m.Next = pkt.Seq + 1
	return false
}

// --- paused-only accessors (recovery controller surface) -------------------
//
// Every accessor below reads or writes state owned by the stage goroutine.
// They are safe only between a successful Pause (the close(pausedCh)
// handshake publishes the goroutine's writes) and the matching Resume. The
// recovery controller and the checkpointer are the only intended callers.

// EmitSeq returns the next sequence number this stage will stamp.
// Paused-only.
func (s *Stage) EmitSeq() uint64 { return s.emitSeq }

// SetEmitSeq rewinds (or advances) the next sequence number, restoring a
// checkpoint's emission position so deterministic re-emission after a state
// restore reproduces the original numbering. Paused-only.
func (s *Stage) SetEmitSeq(v uint64) { s.emitSeq = v }

// Marks returns a copy of the consumer-side watermark table (nil when fault
// tolerance is off for this stage). Paused-only.
func (s *Stage) Marks() []UpstreamMark {
	if s.marks == nil {
		return nil
	}
	out := make([]UpstreamMark, len(s.marks))
	copy(out, s.marks)
	return out
}

// SetMarks replaces the watermark table with a checkpointed copy.
// Paused-only.
func (s *Stage) SetMarks(marks []UpstreamMark) {
	s.marks = append(s.marks[:0], marks...)
}

// Upstreams returns the stages wired into this one. The wiring is immutable
// once the engine runs, so the copy is safe to take at any time.
func (s *Stage) Upstreams() []*Stage {
	out := make([]*Stage, len(s.upstream))
	copy(out, s.upstream)
	return out
}

// DiscardQueued empties the stage's input queue, releasing queued data
// packets back to the pool. It returns how many were discarded plus any
// final markers found — they are stream-termination control, not data, and
// the caller re-queues them with Requeue once replay has refilled the data
// they must trail. Recovery calls this on a crashed stage before restoring
// its checkpoint: whatever sat in the dead node's queue is re-covered by
// replay, and processing it twice would double-count. Paused-only, with
// every producer also paused.
func (s *Stage) DiscardQueued() (int, []*Packet) {
	q := s.inq()
	n := 0
	var finals []*Packet
	for {
		p, err := q.TryPop()
		if err != nil {
			break
		}
		if p.Final {
			finals = append(finals, p)
			continue
		}
		n++
		p.Release()
	}
	return n, finals
}

// Requeue pushes packets (typically finals held out by DiscardQueued) back
// into the stage's input queue. A full queue is waited out, not treated as
// loss: by requeue time the stage is resumed and draining (or another
// pauser holds it briefly), and a silently dropped final marker would wedge
// every downstream stage forever. Only a closed queue releases the packets
// — the run is already over and nobody is owed termination.
func (s *Stage) Requeue(pkts []*Packet) {
	q := s.inq()
	for _, p := range pkts {
		if err := q.Push(p); err != nil {
			p.Release()
		}
	}
}

// Downstreams returns the stages this one emits to. Like Upstreams, the
// wiring is immutable once the engine runs.
func (s *Stage) Downstreams() []*Stage {
	out := make([]*Stage, len(s.outs))
	for i, e := range s.outs {
		out[i] = e.to
	}
	return out
}

// ReplayInto re-injects this stage's recorded emissions toward dst for
// every sequence in [from, to), pushing fresh pooled packets directly into
// dst's input queue — bypassing the emit path, so the replayed packets keep
// their original sequence numbers and the emitter's emitSeq is untouched.
// It returns the number of packets replayed and whether the interval
// reached past the ring's retention (gap=true means data in [from, to) was
// evicted and is unrecoverable — an at-least-once guarantee violation worth
// alarming on).
//
// Call only while this stage (the emitter) is paused — making the recovery
// goroutine the edge's sole producer, which keeps even an SPSC destination
// ring safe — and with dst either paused or running behind a queue; dst
// consuming concurrently is fine.
func (s *Stage) ReplayInto(ctx context.Context, dst *Stage, from, to uint64) (replayed int, gap bool, err error) {
	var ring *replayRing
	for _, out := range s.outs {
		if out.to == dst {
			ring = out.replay
			break
		}
	}
	if ring == nil {
		return 0, false, fmt.Errorf("pipeline: replay %s/%d -> %s/%d: no replay ring on that edge",
			s.id, s.instance, dst.id, dst.instance)
	}
	if oldest, ok := ring.oldest(); ring.evicted() && (!ok || from < oldest) {
		gap = true
	}
	q := dst.inq()
	now := s.clk.Now()
	var pushErr error
	ring.scan(func(e replayEntry) {
		if pushErr != nil || e.seq < from || e.seq >= to {
			return
		}
		p := GetPacket()
		p.SourceStage = s.id
		p.SourceInstance = s.instance
		p.Seq = e.seq
		p.Value = e.value
		p.Items = e.items
		p.WireSize = e.wire
		p.Created = now
		if err := q.PushCtx(ctx, p); err != nil {
			p.Release()
			pushErr = err
			return
		}
		replayed++
	})
	if pushErr != nil && !errors.Is(pushErr, queue.ErrClosed) {
		return replayed, gap, fmt.Errorf("pipeline: replay %s/%d -> %s/%d: %w",
			s.id, s.instance, dst.id, dst.instance, pushErr)
	}
	return replayed, gap, nil
}

// --- emit-side fault handling ----------------------------------------------

// emitFaulty carries one packet over a link with fault state installed:
// drop, hold (reorder), or deliver plus the release of held packets that
// have served their rounds. Final markers are never dropped or held — they
// terminate streams, and losing one would wedge every downstream stage —
// and any held packets flush ahead of them so the marker stays last. Runs
// on the stage goroutine (the emit path).
func (s *Stage) emitFaulty(ctx context.Context, out *edge, l *netsim.Link, pkt *Packet, size int) error {
	if pkt.Final {
		for _, h := range out.held {
			l.Transfer(h.pkt.size(s.cfg.DefaultPacketSize))
			if err := s.pushFaulty(ctx, out, h.pkt); err != nil {
				return err
			}
		}
		out.held = out.held[:0]
		l.Transfer(size)
		return s.pushFaulty(ctx, out, pkt)
	}
	act, depth := l.FaultVerdict()
	switch act {
	case netsim.FaultDrop:
		pkt.Release() // this edge's reference; other edges are unaffected
		return nil
	case netsim.FaultHold:
		out.held = append(out.held, heldPacket{pkt: pkt, due: depth})
		return nil
	}
	l.Transfer(size)
	if err := s.pushFaulty(ctx, out, pkt); err != nil {
		return err
	}
	return s.releaseDueHeld(ctx, out, l, 1)
}

// releaseDueHeld ages every held packet on the edge by rounds delivery
// rounds and delivers the ones that have come due — after the current
// round's packets, which is what makes the hold a real reordering.
func (s *Stage) releaseDueHeld(ctx context.Context, out *edge, l *netsim.Link, rounds int) error {
	if len(out.held) == 0 {
		return nil
	}
	keep := out.held[:0]
	for i := range out.held {
		h := out.held[i]
		h.due -= rounds
		if h.due > 0 {
			keep = append(keep, h)
			continue
		}
		l.Transfer(h.pkt.size(s.cfg.DefaultPacketSize))
		if err := s.pushFaulty(ctx, out, h.pkt); err != nil {
			// Drop the rest of the held buffer's entries from tracking;
			// a closed downstream released nothing further anyway.
			out.held = out.held[:0]
			return err
		}
	}
	out.held = keep
	return nil
}

// pushFaulty enqueues one packet downstream on the faulty path, mirroring
// the closed-queue semantics of the regular emit path (drop and continue).
// Stall attribution is deliberately skipped here: a faulty link is an
// injected failure, not backpressure.
func (s *Stage) pushFaulty(ctx context.Context, out *edge, pkt *Packet) error {
	err := s.pushPausable(ctx, out.to, pkt)
	if err == nil {
		return nil
	}
	if errors.Is(err, queue.ErrClosed) {
		pkt.Release()
		return nil
	}
	return fmt.Errorf("pipeline: %s/%d -> %s/%d: %w",
		s.id, s.instance, out.to.id, out.to.instance, err)
}

// flushFaulty is the batched-emit counterpart: it applies the link's
// verdict to every pending packet on the edge and returns the list to
// actually deliver this flush — surviving packets in order, then any held
// packets that came due (their position behind newer traffic is the
// reordering). The returned slice is the edge-local scratch; valid until
// the next call.
func (s *Stage) flushFaulty(out *edge, l *netsim.Link, pend []*Packet) []*Packet {
	deliver := out.scratch[:0]
	for _, p := range pend {
		if p.Final {
			// Held traffic flushes ahead of the end-of-stream marker.
			for _, h := range out.held {
				deliver = append(deliver, h.pkt)
			}
			out.held = out.held[:0]
			deliver = append(deliver, p)
			continue
		}
		act, depth := l.FaultVerdict()
		switch act {
		case netsim.FaultDrop:
			p.Release()
		case netsim.FaultHold:
			out.held = append(out.held, heldPacket{pkt: p, due: depth})
		default:
			deliver = append(deliver, p)
		}
	}
	keep := out.held[:0]
	for i := range out.held {
		h := out.held[i]
		h.due--
		if h.due <= 0 {
			deliver = append(deliver, h.pkt)
			continue
		}
		keep = append(keep, h)
	}
	out.held = keep
	out.scratch = deliver
	return deliver
}

// releaseHeld returns every parked reorder packet to the pool; the engine
// calls it when the stage goroutine exits so injected holds cannot leak
// pool capacity past the run.
func (s *Stage) releaseHeld() {
	for _, out := range s.outs {
		for _, h := range out.held {
			h.pkt.Release()
		}
		out.held = nil
	}
}
