package pipeline

import (
	"context"
	"sync"
	"testing"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/netsim"
)

func TestReplayRingRecordScanEvict(t *testing.T) {
	r := newReplayRing(4)
	if _, ok := r.oldest(); ok {
		t.Fatal("empty ring should have no oldest")
	}
	for seq := uint64(0); seq < 3; seq++ {
		r.record(seq, int(seq), 1, 8)
	}
	if r.evicted() {
		t.Fatal("ring below capacity should not report evictions")
	}
	var got []uint64
	r.scan(func(e replayEntry) { got = append(got, e.seq) })
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("scan = %v, want [0 1 2]", got)
	}
	for seq := uint64(3); seq < 10; seq++ {
		r.record(seq, int(seq), 1, 8)
	}
	if !r.evicted() {
		t.Fatal("overwritten ring should report evictions")
	}
	if o, ok := r.oldest(); !ok || o != 6 {
		t.Fatalf("oldest = %d (%v), want 6", o, ok)
	}
	got = got[:0]
	r.scan(func(e replayEntry) { got = append(got, e.seq) })
	want := []uint64{6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("scan after wrap = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan after wrap = %v, want %v", got, want)
		}
	}
}

func TestDropDupWatermark(t *testing.T) {
	s := &Stage{id: "sink"}
	s.marks = []UpstreamMark{{Stage: "up", Instance: 0}}
	pkt := func(stage string, inst int, seq uint64) *Packet {
		return &Packet{SourceStage: stage, SourceInstance: inst, Seq: seq}
	}
	if s.dropDup(pkt("up", 0, 0)) {
		t.Fatal("first packet must not be a dup")
	}
	if !s.dropDup(pkt("up", 0, 0)) {
		t.Fatal("re-delivered seq 0 must be dropped")
	}
	// Gap tolerance: jumping to 5 advances the mark past the hole.
	if s.dropDup(pkt("up", 0, 5)) {
		t.Fatal("seq 5 after a gap must pass")
	}
	if !s.dropDup(pkt("up", 0, 3)) {
		t.Fatal("late seq 3 below the watermark must be dropped")
	}
	// A second instance of the same stage has its own watermark.
	if s.dropDup(pkt("up", 1, 0)) {
		t.Fatal("unknown emitter's first packet must pass")
	}
	if m := s.markFor("up", 1); m == nil || m.Next != 1 {
		t.Fatalf("mark for up/1 = %+v, want Next 1", m)
	}
}

// rangeSource emits ints [0, n) and then returns.
type rangeSource struct{ n int }

func (r *rangeSource) Run(ctx *Context, out *Emitter) error {
	for i := 0; i < r.n; i++ {
		if err := out.EmitValue(i, 8); err != nil {
			return err
		}
	}
	return nil
}

// collectSink records every received value (and its sequence) in order.
type collectSink struct {
	mu   sync.Mutex
	vals []int
	seqs []uint64
}

func (c *collectSink) Init(*Context) error { return nil }
func (c *collectSink) Process(_ *Context, pkt *Packet, _ *Emitter) error {
	c.mu.Lock()
	c.vals = append(c.vals, pkt.Value.(int))
	c.seqs = append(c.seqs, pkt.Seq)
	c.mu.Unlock()
	return nil
}
func (c *collectSink) Finish(*Context, *Emitter) error { return nil }

func runLinked(t *testing.T, n, batch int, fault netsim.FaultConfig) *collectSink {
	t.Helper()
	clk := clock.NewManual()
	eng := New(clk)
	link := netsim.NewLink(clk, netsim.LinkConfig{})
	if fault != (netsim.FaultConfig{}) {
		link.InjectFaults(fault)
	}
	sink := &collectSink{}
	src, err := eng.AddSourceStage("src", 0, &rangeSource{n: n}, StageConfig{BatchSize: batch, DisableAdaptation: true})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := eng.AddProcessorStage("sink", 0, sink, StageConfig{BatchSize: batch, DisableAdaptation: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Connect(src, dst, link); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return sink
}

// Injected loss must thin the stream without ever dropping the final
// marker: the run terminates cleanly and the survivors arrive in order.
func TestEmitLossThinsStreamButTerminates(t *testing.T) {
	for _, batch := range []int{1, 8} {
		sink := runLinked(t, 200, batch, netsim.FaultConfig{Seed: 42, Loss: 0.3})
		if len(sink.vals) >= 200 || len(sink.vals) == 0 {
			t.Fatalf("batch=%d: received %d of 200 under 30%% loss, want 0 < n < 200", batch, len(sink.vals))
		}
		for i := 1; i < len(sink.vals); i++ {
			if sink.vals[i] <= sink.vals[i-1] {
				t.Fatalf("batch=%d: survivors out of order at %d: %v", batch, i, sink.vals[i-3:i+1])
			}
		}
	}
}

// Reorder injection must deliver every packet — holds delay, never drop —
// and produce at least one true inversion in the arrival order.
func TestEmitReorderDeliversAllOutOfOrder(t *testing.T) {
	for _, batch := range []int{1, 8} {
		sink := runLinked(t, 200, batch, netsim.FaultConfig{Seed: 7, Reorder: 0.2, Depth: 2})
		if len(sink.vals) != 200 {
			t.Fatalf("batch=%d: received %d of 200 under reorder-only faults", batch, len(sink.vals))
		}
		seen := make(map[int]bool, len(sink.vals))
		inverted := false
		for i, v := range sink.vals {
			if seen[v] {
				t.Fatalf("batch=%d: duplicate value %d", batch, v)
			}
			seen[v] = true
			if i > 0 && v < sink.vals[i-1] {
				inverted = true
			}
		}
		if !inverted {
			t.Fatalf("batch=%d: reorder injection produced no inversion", batch)
		}
	}
}

// gatedSource emits ints [0, n) and then holds the stream open until the
// gate closes, so a test can pause downstream stages mid-stream.
type gatedSource struct {
	n    int
	gate chan struct{}
}

func (g *gatedSource) Run(_ *Context, out *Emitter) error {
	for i := 0; i < g.n; i++ {
		if err := out.EmitValue(i, 8); err != nil {
			return err
		}
	}
	<-g.gate
	return nil
}

// With fault tolerance on, a replayed interval that overlaps already
// consumed sequences is absorbed by the watermark: ReplayInto re-injects,
// the sink drops the overlap, and DupsDropped accounts for it.
func TestReplayIntoDedupe(t *testing.T) {
	clk := clock.NewManual()
	eng := New(clk)
	eng.SetDefaultReplayBuffer(64)
	gate := make(chan struct{})
	sink := &collectSink{}
	src, err := eng.AddSourceStage("src", 0, &gatedSource{n: 50, gate: gate}, StageConfig{DisableAdaptation: true})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := eng.AddProcessorStage("sink", 0, sink, StageConfig{DisableAdaptation: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Connect(src, dst, nil); err != nil {
		t.Fatal(err)
	}

	// Let the sink consume the whole prefix (the gate keeps the stream
	// open), pause it, replay the full recorded interval into it, and let
	// it finish: every replayed packet sits below the watermark and must
	// be dropped as a duplicate.
	done := make(chan error, 1)
	go func() { done <- eng.Run(context.Background()) }()
	for sink.len() < 50 {
	}
	if err := dst.Pause(context.Background()); err != nil {
		t.Fatal(err)
	}
	replayed, gap, err := src.ReplayInto(context.Background(), dst, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if gap {
		t.Fatal("64-deep ring over 50 emissions cannot have a gap")
	}
	if replayed != 50 {
		t.Fatalf("replayed = %d, want 50", replayed)
	}
	if err := dst.Resume(); err != nil {
		t.Fatal(err)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := sink.len(); got != 50 {
		t.Fatalf("sink consumed %d distinct packets, want 50", got)
	}
	seen := make(map[int]bool)
	sink.mu.Lock()
	for _, v := range sink.vals {
		if seen[v] {
			t.Fatalf("duplicate value %d reached Process", v)
		}
		seen[v] = true
	}
	sink.mu.Unlock()
	if st := dst.Stats(); st.DupsDropped == 0 {
		t.Fatal("expected watermark dedupe to drop replayed duplicates")
	}
}

func (c *collectSink) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.vals)
}

// Replay is only safe (and only meaningful) against the recorded window;
// asking for sequences the ring has evicted must flag the gap.
func TestReplayIntoReportsGap(t *testing.T) {
	clk := clock.NewManual()
	eng := New(clk)
	sink := &collectSink{}
	src, _ := eng.AddSourceStage("src", 0, &rangeSource{n: 100}, StageConfig{ReplayBuffer: 8, DisableAdaptation: true})
	dst, _ := eng.AddProcessorStage("sink", 0, sink, StageConfig{ReplayBuffer: 8, DisableAdaptation: true})
	if err := eng.Connect(src, dst, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := dst.Pause(context.Background()); err == nil {
		t.Fatal("pausing a stopped stage should fail")
	}
	// Both stages stopped: the ring state is stable and readable.
	if _, gap, err := src.ReplayInto(context.Background(), dst, 0, 100); err != nil {
		t.Fatal(err)
	} else if !gap {
		t.Fatal("replaying past an 8-deep ring's retention must report a gap")
	}
	if _, gap, err := src.ReplayInto(context.Background(), dst, 95, 100); err != nil {
		t.Fatal(err)
	} else if gap {
		t.Fatal("replaying inside the retained window must not report a gap")
	}
}
