package pipeline

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

// dirty fills every user-visible packet field with sentinel values.
func dirty(p *Packet) {
	p.SourceStage = "ghost"
	p.SourceInstance = 9
	p.Seq = 99
	p.Final = true
	p.Value = "stale"
	p.Items = 17
	p.WireSize = 512
	p.Created = time.Unix(1, 0)
	p.Birth = time.Unix(2, 0)
	p.TraceID = 0xdead
	p.TraceHops = 3
}

// assertClean fails if any user-visible field survived recycling.
func assertClean(t *testing.T, p *Packet) {
	t.Helper()
	if p.SourceStage != "" || p.SourceInstance != 0 || p.Seq != 0 || p.Final ||
		p.Value != nil || p.Items != 0 || p.WireSize != 0 ||
		!p.Created.IsZero() || !p.Birth.IsZero() || p.TraceID != 0 || p.TraceHops != 0 {
		t.Fatalf("recycled packet leaked state: %+v", *p)
	}
}

// TestPoolReuseNeverLeaks cycles packets through the package-level
// get/release path: whatever trace, lineage, or control state the previous
// user left behind, the next GetPacket must hand out a zeroed packet. The
// LIFO pool makes each released packet the next one handed out, so every
// iteration really exercises reuse.
func TestPoolReuseNeverLeaks(t *testing.T) {
	for i := 0; i < 100; i++ {
		p := GetPacket()
		assertClean(t, p)
		if !p.pooled || atomic.LoadInt32(&p.refs) != 1 {
			t.Fatalf("GetPacket pooled=%v refs=%d", p.pooled, atomic.LoadInt32(&p.refs))
		}
		dirty(p)
		p.Release()
	}
}

// TestEmitterCacheResetsRecycled drives the goroutine-local fast path the
// engine itself uses: recycleLocal parks the packet without resetting it
// (deliberately — the consumer core stays read-only), so the reset at
// Emitter.GetPacket handout is the only thing standing between a recycled
// packet and a lineage leak. A Final marker is the nastiest case: a leaked
// Final would terminate the next stream.
func TestEmitterCacheResetsRecycled(t *testing.T) {
	s := &Stage{}
	em := &Emitter{stage: s}
	seen := make(map[*Packet]bool)
	for i := 0; i < 3*localCacheSize; i++ {
		p := em.GetPacket()
		assertClean(t, p)
		seen[p] = true
		dirty(p)
		s.recycleLocal(p)
		if len(s.recycle) >= localCacheSize {
			s.flushRecycle()
		}
	}
	s.flushRecycle()
	em.releaseFree()
	if len(seen) > 2*localCacheSize {
		t.Fatalf("no reuse happened across %d cycles (%d distinct packets)", 3*localCacheSize, len(seen))
	}
}

// TestReleaseGuardsDoubleRelease: releasing more references than held must
// panic — silently recycling a double-released packet would hand the same
// packet to two owners.
func TestReleaseGuardsDoubleRelease(t *testing.T) {
	p := GetPacket()
	p.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	p.Release()
}

// TestRetainFanout checks the broadcast accounting: retain(n) adds one
// reference per extra edge and the packet survives until the last release.
func TestRetainFanout(t *testing.T) {
	p := GetPacket()
	p.retain(2) // 3 references total, as for a 3-edge broadcast
	p.Release()
	p.Release()
	if got := atomic.LoadInt32(&p.refs); got != 1 {
		t.Fatalf("refs after 2 of 3 releases = %d", got)
	}
	p.Release() // last owner: recycles
}

// TestNonPooledPacketsOptOut: packets built directly with &Packet{} skip
// the pool lifecycle entirely, so existing tests and user code that
// construct packets by hand keep working.
func TestNonPooledPacketsOptOut(t *testing.T) {
	p := &Packet{Final: true, TraceID: 7}
	p.retain(5)
	p.Release()
	p.Release() // would panic if the pool lifecycle applied
	if !p.Final || p.TraceID != 7 {
		t.Fatal("Release touched a non-pooled packet")
	}
}

// TestPacketStackBulkBounds exercises the shared freelist's bulk
// operations at their capacity edges: putN stores only what fits, getN
// pops LIFO, and both sides tolerate empty/full extremes.
func TestPacketStackBulkBounds(t *testing.T) {
	st := newPacketStack(8)
	ps := make([]*Packet, 12)
	for i := range ps {
		ps[i] = new(Packet)
	}
	if n := st.putN(ps[:5]); n != 5 {
		t.Fatalf("putN(5) into empty cap-8 stack = %d", n)
	}
	if n := st.putN(ps[5:]); n != 3 {
		t.Fatalf("putN(7) into 5/8 stack = %d, want 3", n)
	}
	if st.put(ps[9]) {
		t.Fatal("put into a full stack succeeded")
	}
	dst := make([]*Packet, 16)
	if n := st.getN(dst); n != 8 {
		t.Fatalf("getN from full stack = %d, want 8", n)
	}
	if dst[7] != ps[7] { // last in, first out
		t.Fatal("getN did not pop LIFO order")
	}
	if n := st.getN(dst); n != 0 {
		t.Fatalf("getN from empty stack = %d", n)
	}
	if st.get() != nil {
		t.Fatal("get from empty stack returned a packet")
	}
	if n := st.putN(nil); n != 0 {
		t.Fatalf("putN(nil) = %d", n)
	}
}

// hammerSource emits count values with per-packet lineage-bearing wire
// sizes, yielding to the scheduler now and then so pauses land mid-stream.
type hammerSource struct {
	instance int
	count    int
}

func (s *hammerSource) Run(_ *Context, out *Emitter) error {
	for i := 0; i < s.count; i++ {
		p := out.GetPacket()
		p.Value = s.instance*1_000_000 + i
		p.WireSize = 16
		if err := out.Emit(p); err != nil {
			return err
		}
	}
	return nil
}

// forwardProc re-emits its input packet downstream — the ownership
// handoff case the drain loop must detect (curForwarded).
type forwardProc struct{}

func (forwardProc) Init(*Context) error { return nil }
func (forwardProc) Process(_ *Context, pkt *Packet, out *Emitter) error {
	return out.Emit(pkt)
}
func (forwardProc) Finish(*Context, *Emitter) error { return nil }

// countSink counts packets and validates payloads are ints (a recycled
// packet delivered twice or reset mid-flight would surface here).
type countSink struct {
	n   atomic.Int64
	bad atomic.Int64
}

func (c *countSink) Init(*Context) error { return nil }
func (c *countSink) Process(_ *Context, pkt *Packet, _ *Emitter) error {
	if _, ok := pkt.Value.(int); !ok {
		c.bad.Add(1)
	}
	c.n.Add(1)
	return nil
}
func (c *countSink) Finish(*Context, *Emitter) error { return nil }

// TestRingStagesPauseResumeSnapshotRace is the race-detector hammer for
// the ring-backed stage graph: two sources fan into a forwarding stage
// (MPSC ring) which feeds a sink (SPSC ring), while outside goroutines
// hammer Pause/Resume and the Snapshot-based observers (QueuedState,
// QueueStats, QueueLen, ResolvedQueue) on both ring stages. Every emitted
// packet must still arrive exactly once with its payload intact. Run it
// under -race: the interesting failures are ordering violations, not
// counts.
func TestRingStagesPauseResumeSnapshotRace(t *testing.T) {
	const perSource = 3000
	clk := clock.NewManual()
	eng := New(clk)
	src0 := &hammerSource{instance: 0, count: perSource}
	src1 := &hammerSource{instance: 1, count: perSource}
	sink := &countSink{}
	s0, _ := eng.AddSourceStage("src", 0, src0, StageConfig{DisableAdaptation: true})
	s1, _ := eng.AddSourceStage("src", 1, src1, StageConfig{DisableAdaptation: true})
	mid, _ := eng.AddProcessorStage("mid", 0, forwardProc{}, StageConfig{DisableAdaptation: true, BatchSize: 8, QueueCapacity: 64})
	end, _ := eng.AddProcessorStage("end", 0, sink, StageConfig{DisableAdaptation: true, QueueCapacity: 64})
	for _, s := range []*Stage{s0, s1} {
		if err := eng.Connect(s, mid, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Connect(mid, end, nil); err != nil {
		t.Fatal(err)
	}

	runDone := make(chan error, 1)
	go func() { runDone <- eng.Run(context.Background()) }()

	stop := make(chan struct{})
	obsDone := make(chan struct{})
	go func() { // observer hammer: live stats reads are always legal
		defer close(obsDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range []*Stage{mid, end} {
				s.QueueStats()
				s.QueueLen()
				s.ResolvedQueue()
			}
			runtime.Gosched()
		}
	}()
	pauseDone := make(chan struct{})
	go func() { // lifecycle hammer: pause, snapshot the paused ring, resume.
		// Snapshot (via QueuedState) requires a quiescent consumer — that
		// is its contract and migration's usage — but the upstream
		// producers keep pushing into the paused stage the whole time.
		defer close(pauseDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s := mid
			if i%2 == 1 {
				s = end
			}
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			err := s.Pause(ctx)
			cancel()
			if err == nil {
				s.QueuedState()
				s.Resume()
				// Let the drained stage make real progress between pauses.
				time.Sleep(200 * time.Microsecond)
				continue
			}
			// A timed-out pause still parks the stage at its next drain
			// boundary (documented Pause behavior); recover it so the
			// pipeline can finish.
			for {
				if st := s.State(); st != StateDraining && st != StatePaused {
					break
				}
				if s.Resume() == nil {
					break
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	err := <-runDone
	close(stop)
	<-obsDone
	<-pauseDone
	if err != nil {
		t.Fatal(err)
	}
	if got := sink.n.Load(); got != 2*perSource {
		t.Fatalf("sink received %d packets, want %d", got, 2*perSource)
	}
	if bad := sink.bad.Load(); bad != 0 {
		t.Fatalf("%d packets arrived with corrupted payloads", bad)
	}
	// The engine resolved the planned ring kinds: fan-in is MPSC, the
	// linear edge SPSC.
	if got := mid.ResolvedQueue(); got != QueueMPSC {
		t.Fatalf("mid resolved %v, want mpsc", got)
	}
	if got := end.ResolvedQueue(); got != QueueSPSC {
		t.Fatalf("end resolved %v, want spsc", got)
	}
	if got := s0.ResolvedQueue(); got != QueueMutex {
		t.Fatalf("source resolved %v, want the inert mutex placeholder", got)
	}
}
