package pipeline

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/gates-middleware/gates/internal/obs"
)

// The packet pool removes the last per-item allocation from the hot path:
// sources draw packets from it, ownership transfers downstream at Emit, and
// the engine recycles each packet at its terminal consumption point (sink
// drain loop, dropped edge, or transport serialization). Packets built
// directly with &Packet{...} bypass the pool entirely — every lifecycle
// operation is a no-op on them — so user code and tests that construct
// packets by hand keep working unchanged.
//
// Ownership rules (see DESIGN.md §10):
//
//   - GetPacket returns a packet owned by the caller.
//   - Emit/EmitTo/EmitValue transfer ownership to the engine. The caller
//     must not touch the packet afterwards — not even to read a field —
//     because a downstream sink may consume and recycle it concurrently.
//   - A Processor borrows its input packet only for the duration of
//     Process; retaining it (or its pointer) afterwards is a bug.
//     Re-emitting the input packet downstream is allowed and detected.
//   - Broadcast fanout is reference-counted: the engine retains one
//     reference per edge before the first enqueue, and each terminal
//     consumer releases its own.
var packetPool = newPacketStack(4096)

// packetStack is the pool's shared storage: a bounded LIFO freelist under
// a plain mutex. The recycle traffic is inherently cross-goroutine —
// sources get packets, sinks on other cores release them — which is
// exactly the pattern that forces sync.Pool onto its shared-chain slow
// path, and a per-slot lock-free MPMC ring pays a sequenced atomic store
// per packet per side. Because the hot paths move packets exclusively in
// localCacheSize batches (Emitter.GetPacket refills, Stage.flushRecycle
// drains), one short critical section per batch beats both: the mutex
// cost amortizes to a fraction of a nanosecond per packet. LIFO order
// hands the most recently recycled — cache-warmest — packets out first.
// An empty pool falls back to the allocator and a full one drops to the
// GC, so it can never deadlock or grow without bound.
type packetStack struct {
	mu   sync.Mutex
	free []*Packet
	// Lifetime counters, maintained inside the critical sections the
	// bulk operations already hold, so instrumentation adds no extra
	// synchronization to the hot path. misses lives outside the stack
	// (see poolMisses): the allocator fallback happens after the stack
	// reported empty, at the caller.
	gets     uint64 // packets handed out of the pool
	recycled uint64 // packets stored back
	overflow uint64 // packets that arrived with the pool full (dropped to GC)
}

// poolMisses counts allocator fallbacks: a caller wanted a pooled packet,
// the pool was empty, and new(Packet) ran instead. A steadily growing miss
// count means the working set exceeds the pool bound — the pool-exhaustion
// signal the flight recorder and attribution engine surface.
var poolMisses atomic.Uint64

// PoolStats is a snapshot of the shared packet pool's lifetime counters.
type PoolStats struct {
	// Gets counts packets handed out of the pool (allocator fallbacks not
	// included); Misses counts those fallbacks.
	Gets   uint64
	Misses uint64
	// Recycled counts packets returned to the pool; Overflow counts
	// returns that found the pool full and dropped the packet to the GC.
	Recycled uint64
	Overflow uint64
	// Free and Capacity describe the freelist right now.
	Free     int
	Capacity int
}

// ReadPoolStats snapshots the shared packet pool's counters. Safe from any
// goroutine; one mutex acquisition.
func ReadPoolStats() PoolStats {
	r := packetPool
	r.mu.Lock()
	s := PoolStats{
		Gets:     r.gets,
		Recycled: r.recycled,
		Overflow: r.overflow,
		Free:     len(r.free),
		Capacity: cap(r.free),
	}
	r.mu.Unlock()
	s.Misses = poolMisses.Load()
	return s
}

// instrumentPool publishes the process-wide packet-pool counters into reg as
// scrape-time callbacks; registration is idempotent, so every observed
// Engine.Run may call it. The gates_pool_ name prefix is load-bearing:
// obs.MergeMetrics preserves (or injects) the node label for exactly that
// prefix, so per-node pool health survives the cluster-wide merge.
func instrumentPool(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("gates_pool_gets_total",
		"Packets handed out of the shared packet pool.", nil,
		func() float64 { return float64(ReadPoolStats().Gets) })
	reg.CounterFunc("gates_pool_misses_total",
		"Allocator fallbacks: pool empty when a packet was wanted.", nil,
		func() float64 { return float64(ReadPoolStats().Misses) })
	reg.CounterFunc("gates_pool_recycled_total",
		"Packets returned to the pool's freelist.", nil,
		func() float64 { return float64(ReadPoolStats().Recycled) })
	reg.CounterFunc("gates_pool_overflow_total",
		"Packet returns that found the pool full (dropped to GC).", nil,
		func() float64 { return float64(ReadPoolStats().Overflow) })
	reg.GaugeFunc("gates_pool_free",
		"Packets currently on the pool's freelist.", nil,
		func() float64 { return float64(ReadPoolStats().Free) })
	reg.GaugeFunc("gates_pool_capacity",
		"Bound of the pool's freelist.", nil,
		func() float64 { return float64(ReadPoolStats().Capacity) })
}

func newPacketStack(capacity int) *packetStack {
	return &packetStack{free: make([]*Packet, 0, capacity)}
}

func (r *packetStack) get() *Packet {
	r.mu.Lock()
	n := len(r.free)
	if n == 0 {
		r.mu.Unlock()
		return nil
	}
	p := r.free[n-1]
	r.free[n-1] = nil
	r.free = r.free[:n-1]
	r.gets++
	r.mu.Unlock()
	return p
}

func (r *packetStack) put(p *Packet) bool {
	r.mu.Lock()
	if len(r.free) == cap(r.free) {
		r.overflow++
		r.mu.Unlock()
		return false // full: caller drops the packet to the GC
	}
	r.free = append(r.free, p)
	r.recycled++
	r.mu.Unlock()
	return true
}

// getN pops up to len(dst) packets off the top of the stack in one
// critical section — the bulk refill behind the goroutine-local caches.
// Returns the number written to the front of dst.
func (r *packetStack) getN(dst []*Packet) int {
	r.mu.Lock()
	n := len(r.free)
	if n > len(dst) {
		n = len(dst)
	}
	if n > 0 {
		base := len(r.free) - n
		copy(dst, r.free[base:])
		tail := r.free[base:]
		for i := range tail {
			tail[i] = nil
		}
		r.free = r.free[:base]
		r.gets += uint64(n)
	}
	r.mu.Unlock()
	return n
}

// putN pushes as many of ps as fit in one critical section — the bulk
// drain behind the goroutine-local caches. Returns how many were stored;
// the caller drops the remainder to the GC.
func (r *packetStack) putN(ps []*Packet) int {
	r.mu.Lock()
	n := cap(r.free) - len(r.free)
	if n > len(ps) {
		n = len(ps)
	}
	r.free = append(r.free, ps[:n]...)
	r.recycled += uint64(n)
	r.overflow += uint64(len(ps) - n)
	r.mu.Unlock()
	return n
}

// localCacheSize bounds the goroutine-local packet caches (emitter get
// cache, stage recycle cache): big enough to amortize the shared ring's
// atomics across a full drain batch, small enough that idle stages pin
// only a few KB of packets.
const localCacheSize = 64

// GetPacket returns an empty packet from the packet pool with a single
// reference owned by the caller. Fill its fields and Emit it (ownership
// transfers to the engine) or Release it if never emitted.
//
// The field reset happens here, on the producer side, not at release: the
// drain loops return packets to the pool as-is so the consuming core never
// dirties the packet's cache lines (see Stage.recycleLocal). The packet a
// caller receives is always fully zeroed — trace and lineage state cannot
// leak between reuses — but packets *inside* the pool may still carry
// their previous contents.
func GetPacket() *Packet {
	p := packetPool.get()
	if p == nil {
		poolMisses.Add(1)
		p = new(Packet)
	} else {
		p.reset()
	}
	p.pooled = true
	if atomic.LoadInt32(&p.refs) != 1 {
		atomic.StoreInt32(&p.refs, 1)
	}
	return p
}

// NewPacket returns a pooled packet carrying v with the given logical item
// count and wire size — the common shape of application emissions. The
// caller owns the packet until it is emitted.
func NewPacket(v any, items, wireSize int) *Packet {
	p := GetPacket()
	p.Value = v
	p.Items = items
	p.WireSize = wireSize
	return p
}

// Release drops one reference to a pooled packet, recycling it once the
// last owner lets go. All fields — trace and lineage context included —
// are cleared before the packet is handed out again (here and in
// GetPacket, belt and braces), so a recycled packet can never leak
// another stream's identity. Release on a non-pooled packet (or nil) is a
// no-op. Releasing more references than were held panics: a double
// release means two owners both believed the packet was theirs, and
// silently recycling it would corrupt whichever stream reuses it first.
func (p *Packet) Release() {
	if p == nil || !p.pooled {
		return
	}
	n := atomic.AddInt32(&p.refs, -1)
	switch {
	case n == 0:
		p.reset()
		packetPool.put(p) // a full ring drops the packet to the GC
	case n < 0:
		panic("pipeline: packet released more times than retained")
	}
}

// retain adds n references to a pooled packet (no-op otherwise). The engine
// calls it before fanning a packet out to multiple edges so each terminal
// consumer can Release independently.
func (p *Packet) retain(n int32) {
	if n > 0 && p.pooled {
		atomic.AddInt32(&p.refs, n)
	}
}

// reset clears every user-visible field so a recycled packet starts from
// the zero state. The reset guard for control packets lives here too:
// Final is cleared like everything else, so a pooled end-of-stream marker
// cannot terminate a later stream by accident. The pool-internal pooled
// and refs fields are left alone — callers on the get side publish the
// fresh reference count themselves, and skipping the write lets the
// common recycle cycle (release leaves refs at 1, GetPacket wants refs
// at 1) avoid a sequenced atomic store per packet.
func (p *Packet) reset() {
	p.SourceStage = ""
	p.SourceInstance = 0
	p.Seq = 0
	p.Final = false
	p.Value = nil
	p.Items = 0
	p.WireSize = 0
	p.Created = time.Time{}
	p.Birth = time.Time{}
	p.TraceID = 0
	p.TraceHops = 0
}
