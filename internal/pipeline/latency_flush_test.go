package pipeline

import (
	"context"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/obs"
)

// TestShortRunReportsEveryE2EObservation is the scratch-flush regression
// guard: a 10-packet run must surface exactly 10 e2e latency observations
// in the registry once Run returns — no tail of a goroutine-local batch
// may be lost at stop.
func TestShortRunReportsEveryE2EObservation(t *testing.T) {
	clk := clock.NewManual()
	ob := obs.New(clk, obs.Config{SampleEvery: -1})
	e := New(clk)
	e.SetObservability(ob)

	vals := make([]int, 10)
	src, err := e.AddSourceStage("src", 0, &testSource{values: vals}, StageConfig{DisableAdaptation: true})
	if err != nil {
		t.Fatal(err)
	}
	sink, err := e.AddProcessorStage("sink", 0, &collector{}, StageConfig{
		DisableAdaptation: true, QueueCapacity: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Connect(src, sink, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	count, ok := ob.Registry.Value(obs.MetricE2ELatency, sink.ObsLabels())
	if !ok {
		t.Fatal("sink has no e2e latency series")
	}
	if count != 10 {
		t.Fatalf("e2e observation count = %g, want exactly 10", count)
	}
}

// TestPausedStageLatencyScratchFlushed parks a stage mid-stream and
// asserts the registry already carries one e2e observation per consumed
// packet — the park path must flush the goroutine-local scratch before
// close(paused), or a checkpoint/migration reads an under-reported
// histogram.
func TestPausedStageLatencyScratchFlushed(t *testing.T) {
	clk := clock.NewManual()
	ob := obs.New(clk, obs.Config{SampleEvery: -1})
	e := New(clk)
	e.SetObservability(ob)

	values := make([]int, 100)
	src := &gatedTestSource{values: values, reached: make(chan struct{}), release: make(chan struct{})}
	sink, errs := func() (*Stage, error) {
		return e.AddProcessorStage("sink", 0, &collector{}, StageConfig{
			DisableAdaptation: true, QueueCapacity: 500,
		})
	}()
	if errs != nil {
		t.Fatal(errs)
	}
	s1, err := e.AddSourceStage("src", 0, src, StageConfig{DisableAdaptation: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Connect(s1, sink, nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- e.Run(context.Background()) }()

	<-src.reached
	if err := sink.Pause(context.Background()); err != nil {
		t.Fatalf("pause: %v", err)
	}
	consumed := sink.Stats().PacketsIn
	count, ok := ob.Registry.Value(obs.MetricE2ELatency, sink.ObsLabels())
	if !ok && consumed > 0 {
		t.Fatalf("sink consumed %d packets but has no e2e latency series", consumed)
	}
	if uint64(count) != consumed {
		t.Fatalf("paused sink: registry shows %g e2e observations, stage consumed %d", count, consumed)
	}

	if err := sink.Resume(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	close(src.release)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pipeline did not finish")
	}
	count, _ = ob.Registry.Value(obs.MetricE2ELatency, sink.ObsLabels())
	if count != 100 {
		t.Fatalf("final e2e observation count = %g, want exactly 100", count)
	}
}
