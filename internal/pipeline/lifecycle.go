package pipeline

import (
	"context"
	"errors"
	"fmt"

	"github.com/gates-middleware/gates/internal/obs"
)

// ErrPausePending is wrapped by Pause when a pause is already in flight
// (the stage is Draining or Paused). Callers that race other pausers — the
// checkpointer against the recovery controller, say — match it with
// errors.Is and retry instead of failing.
var ErrPausePending = errors.New("pause already pending")

// StageState is one phase of a stage instance's lifecycle. A stage is born
// Init, becomes Running when the engine starts it, and ends Stopped. A
// pause request moves it Running → Draining (the stage finishes its current
// work item) → Paused (the goroutine is parked at a drain boundary); Resume
// returns it to Running. The Draining/Paused leg is what live migration
// stands on: a Paused stage holds no in-flight packet, so its processor
// state and queued input can be captured and moved consistently.
type StageState int32

const (
	// StateInit is the pre-run state: registered, not yet started.
	StateInit StageState = iota
	// StateRunning is the normal pop-process-emit (or generate) loop.
	StateRunning
	// StateDraining means a pause was requested and the stage is
	// finishing its current work item before parking.
	StateDraining
	// StatePaused means the stage goroutine is parked at a drain
	// boundary with no packet in flight; its input queue keeps accepting
	// pushes (backpressure applies once full), so pausing loses nothing.
	StatePaused
	// StateStopped is terminal: the stage ran to completion or failed.
	StateStopped
)

// String renders the state name.
func (s StageState) String() string {
	switch s {
	case StateInit:
		return "init"
	case StateRunning:
		return "running"
	case StateDraining:
		return "draining"
	case StatePaused:
		return "paused"
	case StateStopped:
		return "stopped"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Snapshotter is implemented by Processors and Sources whose state must
// survive a move between nodes. Snapshot serializes the live state;
// Restore replaces the current state with a previously captured one. Both
// are called only while the owning stage is Paused, so implementations
// need no locking against Process/Run.
type Snapshotter interface {
	Snapshot() ([]byte, error)
	Restore([]byte) error
}

// Snapshotter returns the stage's user code as a Snapshotter when it
// implements the interface.
func (s *Stage) Snapshotter() (Snapshotter, bool) {
	if sn, ok := s.proc.(Snapshotter); ok {
		return sn, true
	}
	if sn, ok := s.src.(Snapshotter); ok {
		return sn, true
	}
	return nil, false
}

// IsSource reports whether the stage generates its own stream (no inputs).
func (s *Stage) IsSource() bool { return s.src != nil }

// State returns the stage's current lifecycle state.
func (s *Stage) State() StageState { return StageState(s.state.Load()) }

// toState transitions the lifecycle state and records the edge in the obs
// lifecycle trail (when the stage is observed).
func (s *Stage) toState(to StageState) {
	from := StageState(s.state.Swap(int32(to)))
	if from == to || s.o == nil {
		return
	}
	s.o.LifecycleTrail().Record(obs.LifecycleEvent{
		At:       s.clk.Now(),
		Stage:    s.id,
		Instance: s.instance,
		Node:     s.Node(),
		From:     from.String(),
		To:       to.String(),
	})
	s.o.FlightRec().Record(obs.FlightEvent{
		Kind:     obs.FlightLifecycle,
		Stage:    s.id,
		Instance: s.instance,
		Node:     s.Node(),
		Detail:   from.String() + " → " + to.String(),
	})
	s.o.Log().Debug("stage lifecycle",
		"stage", s.id, "instance", s.instance, "node", s.Node(),
		"from", from.String(), "to", to.String())
}

// markStarted moves Init → Running when the engine launches the stage
// goroutine. A pause requested before the run began (state already
// Draining) is left in place; the stage parks at its first drain boundary.
func (s *Stage) markStarted() {
	if s.state.CompareAndSwap(int32(StateInit), int32(StateRunning)) && s.o != nil {
		s.o.LifecycleTrail().Record(obs.LifecycleEvent{
			At:       s.clk.Now(),
			Stage:    s.id,
			Instance: s.instance,
			Node:     s.Node(),
			From:     StateInit.String(),
			To:       StateRunning.String(),
		})
		s.o.FlightRec().Record(obs.FlightEvent{
			Kind:     obs.FlightLifecycle,
			Stage:    s.id,
			Instance: s.instance,
			Node:     s.Node(),
			Detail:   StateInit.String() + " → " + StateRunning.String(),
		})
	}
}

// Pause asks the stage to drain its current work item and park, and blocks
// until it is Paused. The input queue stays open: producers keep pushing
// until it fills, then block — nothing is dropped. Pause fails if the
// stage has already stopped, if a pause is already pending, or when ctx
// expires first (the stage then still parks at its next drain boundary;
// Resume recovers it).
func (s *Stage) Pause(ctx context.Context) error {
	s.pauseMu.Lock()
	switch StageState(s.state.Load()) {
	case StateStopped:
		s.pauseMu.Unlock()
		return fmt.Errorf("pipeline: pause %s/%d: stage already stopped", s.id, s.instance)
	case StateDraining, StatePaused:
		s.pauseMu.Unlock()
		return fmt.Errorf("pipeline: pause %s/%d: %w", s.id, s.instance, ErrPausePending)
	}
	s.pausedCh = make(chan struct{})
	s.resumeCh = make(chan struct{})
	s.pauseReq.Store(true)
	if s.pauseWake != nil {
		// Wake sources blocked outside the emit path; the channel stays
		// closed — observably "pause pending" — until Resume re-arms it.
		close(s.pauseWake)
	}
	if s.popCancel != nil {
		// Wake a pop blocked on an empty queue; the queue removes
		// nothing on cancellation, so no packet is lost.
		s.popCancel()
	}
	s.toState(StateDraining)
	paused := s.pausedCh
	s.pauseMu.Unlock()

	select {
	case <-paused:
		return nil
	case <-s.doneCh:
		return fmt.Errorf("pipeline: pause %s/%d: stage stopped while draining", s.id, s.instance)
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Resume releases a Paused stage back to Running with a fresh pop context.
func (s *Stage) Resume() error {
	s.pauseMu.Lock()
	defer s.pauseMu.Unlock()
	if StageState(s.state.Load()) != StatePaused {
		return fmt.Errorf("pipeline: resume %s/%d: stage is not paused", s.id, s.instance)
	}
	s.pauseReq.Store(false)
	s.pauseWake = make(chan struct{}) // re-arm the cooperative wake-up
	if s.runCtx != nil {
		s.popCtx, s.popCancel = context.WithCancel(s.runCtx)
	}
	s.toState(StateRunning)
	close(s.resumeCh)
	return nil
}

// parkIfRequested parks the stage goroutine at a drain boundary when a
// pause is pending, until Resume or run cancellation. It returns ctx's
// error when the run was canceled while parked, nil otherwise. Only the
// stage goroutine calls it.
func (s *Stage) parkIfRequested(ctx context.Context) error {
	if !s.pauseReq.Load() {
		return nil
	}
	s.pauseMu.Lock()
	if !s.pauseReq.Load() { // resumed between the check and the lock
		s.pauseMu.Unlock()
		return nil
	}
	paused, resume := s.pausedCh, s.resumeCh
	s.toState(StatePaused)
	s.pauseMu.Unlock()
	// Push the goroutine-local latency batch out before anyone reading the
	// paused channel inspects the registry: a checkpoint or migration must
	// see every observation the stage made, not lose the tail of a batch.
	// Safe here — still on the stage goroutine, before close(paused).
	s.flushLatency()
	close(paused)
	select {
	case <-resume:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// bindRunContext installs the run context and derives the first pop
// context; the stage goroutine calls it once on entry.
func (s *Stage) bindRunContext(ctx context.Context) {
	s.pauseMu.Lock()
	s.runCtx = ctx
	s.popCtx, s.popCancel = context.WithCancel(ctx)
	s.pauseMu.Unlock()
}

// currentPopCtx returns the pop context of the current pause epoch. A
// pause request cancels it (waking a blocked pop without consuming an
// item); Resume replaces it.
func (s *Stage) currentPopCtx() context.Context {
	s.pauseMu.Lock()
	defer s.pauseMu.Unlock()
	return s.popCtx
}

// QueuedState reports the packets currently parked in the input queue and
// the wire bytes they occupy — the in-flight buffer a migration must move
// with the stage.
func (s *Stage) QueuedState() (packets int, bytes int) {
	for _, p := range s.inq().Snapshot() {
		packets++
		bytes += p.size(s.cfg.DefaultPacketSize)
	}
	return packets, bytes
}
