package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/netsim"
)

// testProc adapts closures to the Processor interface.
type testProc struct {
	init    func(*Context) error
	process func(*Context, *Packet, *Emitter) error
	finish  func(*Context, *Emitter) error
}

func (p *testProc) Init(ctx *Context) error {
	if p.init != nil {
		return p.init(ctx)
	}
	return nil
}

func (p *testProc) Process(ctx *Context, pkt *Packet, out *Emitter) error {
	if p.process != nil {
		return p.process(ctx, pkt, out)
	}
	return nil
}

func (p *testProc) Finish(ctx *Context, out *Emitter) error {
	if p.finish != nil {
		return p.finish(ctx, out)
	}
	return nil
}

// testSource emits the given ints.
type testSource struct {
	values []int
	pace   time.Duration
}

func (s *testSource) Run(ctx *Context, out *Emitter) error {
	for _, v := range s.values {
		if s.pace > 0 {
			ctx.ChargeCompute(s.pace)
		}
		if err := out.EmitValue(v, 8); err != nil {
			return err
		}
	}
	return nil
}

// collector gathers every received value.
type collector struct {
	mu   sync.Mutex
	got  []int
	done bool
}

func (c *collector) Init(*Context) error { return nil }

func (c *collector) Process(_ *Context, pkt *Packet, _ *Emitter) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got = append(c.got, pkt.Value.(int))
	return nil
}

func (c *collector) Finish(*Context, *Emitter) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done = true
	return nil
}

func (c *collector) values() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, len(c.got))
	copy(out, c.got)
	return out
}

func TestAddStageValidation(t *testing.T) {
	e := New(clock.NewManual())
	if _, err := e.AddProcessorStage("", 0, &testProc{}, StageConfig{}); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := e.AddProcessorStage("x", 0, nil, StageConfig{}); err == nil {
		t.Fatal("nil processor accepted")
	}
	if _, err := e.AddSourceStage("x", 0, nil, StageConfig{}); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := e.AddProcessorStage("x", 0, &testProc{}, StageConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddProcessorStage("x", 0, &testProc{}, StageConfig{}); err == nil {
		t.Fatal("duplicate stage accepted")
	}
}

func TestConnectValidation(t *testing.T) {
	e := New(clock.NewManual())
	src, _ := e.AddSourceStage("src", 0, &testSource{}, StageConfig{})
	sink, _ := e.AddProcessorStage("sink", 0, &collector{}, StageConfig{})
	if err := e.Connect(nil, sink, nil); err == nil {
		t.Fatal("nil from accepted")
	}
	if err := e.Connect(sink, src, nil); err == nil {
		t.Fatal("connect into source accepted")
	}
	if err := e.Connect(sink, sink, nil); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := e.Connect(src, sink, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateTopology(t *testing.T) {
	e := New(clock.NewManual())
	if err := e.Run(context.Background()); err == nil {
		t.Fatal("empty engine ran")
	}

	e = New(clock.NewManual())
	e.AddProcessorStage("p", 0, &collector{}, StageConfig{})
	if err := e.Run(context.Background()); err == nil {
		t.Fatal("engine with only a processor ran")
	}

	e = New(clock.NewManual())
	e.AddSourceStage("s", 0, &testSource{}, StageConfig{})
	e.AddProcessorStage("p", 0, &collector{}, StageConfig{})
	if err := e.Run(context.Background()); err == nil {
		t.Fatal("disconnected processor stage accepted")
	}
}

func TestSourceToSinkDeliversInOrder(t *testing.T) {
	e := New(clock.NewScaled(100000))
	vals := []int{1, 2, 3, 4, 5, 6, 7}
	src, _ := e.AddSourceStage("src", 0, &testSource{values: vals}, StageConfig{})
	sink := &collector{}
	snk, _ := e.AddProcessorStage("sink", 0, sink, StageConfig{})
	if err := e.Connect(src, snk, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := sink.values()
	if len(got) != len(vals) {
		t.Fatalf("received %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], vals[i])
		}
	}
	if !sink.done {
		t.Fatal("Finish never ran")
	}
}

func TestRunTwiceFails(t *testing.T) {
	e := New(clock.NewScaled(100000))
	src, _ := e.AddSourceStage("src", 0, &testSource{values: []int{1}}, StageConfig{})
	snk, _ := e.AddProcessorStage("sink", 0, &collector{}, StageConfig{})
	e.Connect(src, snk, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background()); err == nil {
		t.Fatal("second Run accepted")
	}
	if _, err := e.AddSourceStage("late", 0, &testSource{}, StageConfig{}); err == nil {
		t.Fatal("AddStage after Run accepted")
	}
}

func TestFanInFourSources(t *testing.T) {
	e := New(clock.NewScaled(100000))
	sink := &collector{}
	snk, _ := e.AddProcessorStage("sink", 0, sink, StageConfig{})
	perSource := 50
	for i := 0; i < 4; i++ {
		vals := make([]int, perSource)
		for j := range vals {
			vals[j] = i*perSource + j
		}
		src, err := e.AddSourceStage("src", i, &testSource{values: vals}, StageConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Connect(src, snk, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := sink.values()
	if len(got) != 4*perSource {
		t.Fatalf("received %d values, want %d", len(got), 4*perSource)
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestThreeStageChainTransforms(t *testing.T) {
	e := New(clock.NewScaled(100000))
	src, _ := e.AddSourceStage("src", 0, &testSource{values: []int{1, 2, 3}}, StageConfig{})
	double := &testProc{process: func(_ *Context, pkt *Packet, out *Emitter) error {
		return out.EmitValue(pkt.Value.(int)*2, 8)
	}}
	mid, _ := e.AddProcessorStage("double", 0, double, StageConfig{})
	sink := &collector{}
	snk, _ := e.AddProcessorStage("sink", 0, sink, StageConfig{})
	e.Connect(src, mid, nil)
	e.Connect(mid, snk, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 4, 6}
	got := sink.values()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestStatsCounting(t *testing.T) {
	e := New(clock.NewScaled(100000))
	src, _ := e.AddSourceStage("src", 0, &testSource{values: []int{1, 2, 3}}, StageConfig{})
	sink := &collector{}
	snk, _ := e.AddProcessorStage("sink", 0, sink, StageConfig{})
	e.Connect(src, snk, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := src.Stats(); st.PacketsOut != 3 || st.BytesOut != 24 {
		t.Fatalf("source stats %+v, want 3 packets / 24 bytes out", st)
	}
	if st := snk.Stats(); st.PacketsIn != 3 || st.ItemsIn != 3 {
		t.Fatalf("sink stats %+v, want 3 packets in", st)
	}
}

func TestProcessorErrorStopsRun(t *testing.T) {
	e := New(clock.NewScaled(100000))
	vals := make([]int, 1000)
	src, _ := e.AddSourceStage("src", 0, &testSource{values: vals}, StageConfig{})
	boom := errors.New("boom")
	bad := &testProc{process: func(_ *Context, pkt *Packet, _ *Emitter) error {
		return boom
	}}
	snk, _ := e.AddProcessorStage("sink", 0, bad, StageConfig{})
	e.Connect(src, snk, nil)
	err := e.Run(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want boom", err)
	}
	if !errors.Is(snk.Err(), boom) {
		t.Fatalf("stage Err = %v, want boom", snk.Err())
	}
}

func TestInitErrorStopsRun(t *testing.T) {
	e := New(clock.NewScaled(100000))
	src, _ := e.AddSourceStage("src", 0, &testSource{values: []int{1}}, StageConfig{})
	boom := errors.New("init failed")
	bad := &testProc{init: func(*Context) error { return boom }}
	snk, _ := e.AddProcessorStage("sink", 0, bad, StageConfig{})
	e.Connect(src, snk, nil)
	if err := e.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want init error", err)
	}
}

func TestContextCancelStopsRun(t *testing.T) {
	e := New(clock.NewScaled(1000))
	// Endless source: paced so it cannot finish before cancel.
	vals := make([]int, 1<<20)
	src, _ := e.AddSourceStage("src", 0, &testSource{values: vals, pace: time.Second}, StageConfig{})
	first := make(chan struct{})
	var once sync.Once
	snk, _ := e.AddProcessorStage("sink", 0, &testProc{
		process: func(*Context, *Packet, *Emitter) error {
			once.Do(func() { close(first) })
			return nil
		},
	}, StageConfig{})
	e.Connect(src, snk, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- e.Run(ctx) }()
	// Cancel only once the pipeline is demonstrably mid-flight — the first
	// packet has reached the sink — instead of sleeping an arbitrary
	// wall-clock interval.
	select {
	case <-first:
	case <-time.After(5 * time.Second):
		t.Fatal("first packet never reached the sink")
	}
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled Run returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

func TestEmitToRoutesSelectively(t *testing.T) {
	e := New(clock.NewScaled(100000))
	router := &testProc{process: func(_ *Context, pkt *Packet, out *Emitter) error {
		v := pkt.Value.(int)
		return out.EmitTo(v%2, &Packet{Value: v, WireSize: 8})
	}}
	src, _ := e.AddSourceStage("src", 0, &testSource{values: []int{0, 1, 2, 3, 4, 5}}, StageConfig{})
	rt, _ := e.AddProcessorStage("router", 0, router, StageConfig{})
	even := &collector{}
	odd := &collector{}
	evenSt, _ := e.AddProcessorStage("even", 0, even, StageConfig{})
	oddSt, _ := e.AddProcessorStage("odd", 0, odd, StageConfig{})
	e.Connect(src, rt, nil)
	e.Connect(rt, evenSt, nil)
	e.Connect(rt, oddSt, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := even.values(); len(got) != 3 || got[0]%2 != 0 {
		t.Fatalf("even collector got %v", got)
	}
	if got := odd.values(); len(got) != 3 || got[0]%2 != 1 {
		t.Fatalf("odd collector got %v", got)
	}
}

func TestEmitToOutOfRange(t *testing.T) {
	e := New(clock.NewScaled(100000))
	bad := &testProc{process: func(_ *Context, pkt *Packet, out *Emitter) error {
		return out.EmitTo(5, pkt)
	}}
	src, _ := e.AddSourceStage("src", 0, &testSource{values: []int{1}}, StageConfig{})
	snk, _ := e.AddProcessorStage("sink", 0, bad, StageConfig{})
	e.Connect(src, snk, nil)
	if err := e.Run(context.Background()); err == nil {
		t.Fatal("EmitTo out of range did not error")
	}
}

func TestBroadcastFanOut(t *testing.T) {
	e := New(clock.NewScaled(100000))
	src, _ := e.AddSourceStage("src", 0, &testSource{values: []int{1, 2}}, StageConfig{})
	a := &collector{}
	b := &collector{}
	sa, _ := e.AddProcessorStage("a", 0, a, StageConfig{})
	sb, _ := e.AddProcessorStage("b", 0, b, StageConfig{})
	e.Connect(src, sa, nil)
	e.Connect(src, sb, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(a.values()) != 2 || len(b.values()) != 2 {
		t.Fatalf("broadcast delivered %d/%d, want 2/2", len(a.values()), len(b.values()))
	}
}

func TestChargeComputeAccounted(t *testing.T) {
	e := New(clock.NewScaled(100000))
	src, _ := e.AddSourceStage("src", 0, &testSource{values: []int{1, 2, 3}}, StageConfig{})
	burner := &testProc{process: func(ctx *Context, _ *Packet, _ *Emitter) error {
		ctx.ChargeCompute(time.Second)
		return nil
	}}
	snk, _ := e.AddProcessorStage("sink", 0, burner, StageConfig{})
	e.Connect(src, snk, nil)
	sw := clock.NewStopwatch(e.Clock())
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := snk.Stats().ComputeCharged; got != 3*time.Second {
		t.Fatalf("ComputeCharged = %v, want 3s", got)
	}
	if sw.Elapsed() < 3*time.Second {
		t.Fatalf("virtual run time %v < charged compute", sw.Elapsed())
	}
}

func TestLinkBytesCharged(t *testing.T) {
	clk := clock.NewScaled(100000)
	e := New(clk)
	link := netsim.NewLink(clk, netsim.LinkConfig{Bandwidth: netsim.BW100K})
	src, _ := e.AddSourceStage("src", 0, &testSource{values: []int{1, 2, 3}}, StageConfig{})
	snk, _ := e.AddProcessorStage("sink", 0, &collector{}, StageConfig{})
	e.Connect(src, snk, link)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// 3 data packets (8B each) + 1 final (default 64B).
	if got := link.Stats().Bytes; got != 3*8+64 {
		t.Fatalf("link carried %d bytes, want %d", got, 3*8+64)
	}
}

func TestStageLookup(t *testing.T) {
	e := New(clock.NewManual())
	src, _ := e.AddSourceStage("src", 2, &testSource{}, StageConfig{})
	if got, ok := e.Stage("src", 2); !ok || got != src {
		t.Fatal("Stage lookup failed")
	}
	if _, ok := e.Stage("src", 3); ok {
		t.Fatal("Stage lookup found a ghost")
	}
	if len(e.Stages()) != 1 {
		t.Fatal("Stages() length mismatch")
	}
	src.SetNode("n1")
	if src.Node() != "n1" {
		t.Fatal("SetNode/Node mismatch")
	}
}

// TestAdaptationSlowsOverloadedSampler is the in-engine miniature of
// Figure 8: a fast source, a sampler stage with a sampling-rate parameter,
// and a slow analysis stage. The sampler's rate must fall from its initial
// value once the analysis queue backs up.
func TestAdaptationSlowsOverloadedSampler(t *testing.T) {
	clk := clock.NewScaled(100)
	e := New(clk)

	n := 3000
	vals := make([]int, n)
	src, _ := e.AddSourceStage("sim", 0, &testSource{values: vals, pace: 5 * time.Millisecond}, StageConfig{
		DisableAdaptation: true,
		ComputeQuantum:    50 * time.Millisecond,
	})

	var rate *adapt.Param
	sampler := &testProc{
		init: func(ctx *Context) error {
			var err error
			rate, err = ctx.SpecifyParam(adapt.ParamSpec{
				Name: "rate", Initial: 0.8, Min: 0.01, Max: 1, Step: 0.01,
				Direction: adapt.IncreaseSlowsProcessing,
			})
			return err
		},
		process: func(ctx *Context, pkt *Packet, out *Emitter) error {
			// Forward a pkt with probability rate (deterministic
			// thinning keeps the test stable).
			r := rate.Value()
			if pkt.Seq%100 < uint64(r*100) {
				return out.EmitValue(pkt.Value, 8)
			}
			return nil
		},
	}
	minRate := 1.0
	smp, _ := e.AddProcessorStage("sampler", 0, sampler, StageConfig{
		QueueCapacity: 100,
		AdaptInterval: 100 * time.Millisecond,
		OnAdjust: func(_ *Stage, _ time.Time, adjs []adapt.Adjustment) {
			for _, a := range adjs {
				if a.New < minRate {
					minRate = a.New
				}
			}
		},
	})

	analysis := &testProc{process: func(ctx *Context, _ *Packet, _ *Emitter) error {
		ctx.ChargeCompute(12 * time.Millisecond) // can keep up with ~42% of the 5ms stream
		return nil
	}}
	ana, _ := e.AddProcessorStage("analysis", 0, analysis, StageConfig{
		QueueCapacity:  100,
		AdaptInterval:  100 * time.Millisecond,
		ComputeQuantum: 60 * time.Millisecond,
	})

	e.Connect(src, smp, nil)
	e.Connect(smp, ana, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The finite stream drains at the end (the rate legitimately climbs
	// back); the congestion response is the dip while analysis lags.
	if minRate >= 0.8 {
		t.Fatalf("sampling rate never fell below its initial 0.8 (min %v) under overload", minRate)
	}
	if rate.Value() < 0.01 || rate.Value() > 1 {
		t.Fatalf("rate %v escaped its bounds", rate.Value())
	}
}

func TestPacketHelpers(t *testing.T) {
	p := &Packet{}
	if p.ItemCount() != 1 {
		t.Fatalf("zero Items counted as %d, want 1", p.ItemCount())
	}
	p.Items = 5
	if p.ItemCount() != 5 {
		t.Fatal("Items not honored")
	}
	if p.size(64) != 64 {
		t.Fatal("default size not applied")
	}
	p.WireSize = 10
	if p.size(64) != 10 {
		t.Fatal("explicit WireSize not applied")
	}
}

func TestProcessorPanicContained(t *testing.T) {
	e := New(clock.NewScaled(100000))
	src, _ := e.AddSourceStage("src", 0, &testSource{values: []int{1, 2, 3}}, StageConfig{})
	bomb := &testProc{process: func(*Context, *Packet, *Emitter) error {
		panic("stage bug")
	}}
	snk, _ := e.AddProcessorStage("sink", 0, bomb, StageConfig{})
	e.Connect(src, snk, nil)
	err := e.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("Run = %v, want contained panic error", err)
	}
	if snk.Err() == nil {
		t.Fatal("panicking stage has no terminal error")
	}
}

func TestSourcePanicContained(t *testing.T) {
	e := New(clock.NewScaled(100000))
	boom := &panicSource{}
	src, _ := e.AddSourceStage("src", 0, boom, StageConfig{})
	snk, _ := e.AddProcessorStage("sink", 0, &collector{}, StageConfig{})
	e.Connect(src, snk, nil)
	if err := e.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("Run = %v, want contained panic error", err)
	}
}

type panicSource struct{}

func (panicSource) Run(*Context, *Emitter) error { panic("source bug") }

// TestRandomDAGConservation builds random feed-forward topologies of
// broadcasting pass-through stages and checks flow conservation: with every
// stage forwarding each input to all of its outputs, the items seen at each
// stage must equal the path-counted expectation.
func TestRandomDAGConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		e := New(clock.NewScaled(100000))
		const layers = 4
		perLayer := rng.Intn(3) + 1
		const sourceItems = 40

		type nodeInfo struct {
			st       *Stage
			expected int
		}
		var layerNodes [layers][]nodeInfo

		// Layer 0: sources.
		nSources := rng.Intn(3) + 1
		for i := 0; i < nSources; i++ {
			vals := make([]int, sourceItems)
			st, err := e.AddSourceStage("src", i, &testSource{values: vals}, StageConfig{DisableAdaptation: true})
			if err != nil {
				t.Fatal(err)
			}
			layerNodes[0] = append(layerNodes[0], nodeInfo{st: st, expected: sourceItems})
		}
		// Layers 1..3: pass-through broadcasters.
		passThrough := func() Processor {
			return &testProc{process: func(_ *Context, pkt *Packet, out *Emitter) error {
				if out.Fanout() == 0 {
					return nil
				}
				return out.Emit(&Packet{Value: pkt.Value, WireSize: 8})
			}}
		}
		for l := 1; l < layers; l++ {
			for i := 0; i < perLayer; i++ {
				st, err := e.AddProcessorStage(fmt.Sprintf("l%d", l), i, passThrough(), StageConfig{
					DisableAdaptation: true, QueueCapacity: 4096,
				})
				if err != nil {
					t.Fatal(err)
				}
				layerNodes[l] = append(layerNodes[l], nodeInfo{st: st})
			}
		}
		// Random edges layer by layer: every node connects to >= 1 node
		// of the next layer, and every next-layer node gets >= 1 inbound
		// edge before its own expectation propagates further — each
		// layer's expected counts are final before they flow downstream.
		for l := 0; l < layers-1; l++ {
			for i := range layerNodes[l] {
				tos := rng.Perm(len(layerNodes[l+1]))
				n := rng.Intn(len(tos)) + 1
				for _, j := range tos[:n] {
					if err := e.Connect(layerNodes[l][i].st, layerNodes[l+1][j].st, nil); err != nil {
						t.Fatal(err)
					}
					layerNodes[l+1][j].expected += layerNodes[l][i].expected
				}
			}
			for j := range layerNodes[l+1] {
				if layerNodes[l+1][j].expected == 0 {
					if err := e.Connect(layerNodes[l][0].st, layerNodes[l+1][j].st, nil); err != nil {
						t.Fatal(err)
					}
					layerNodes[l+1][j].expected += layerNodes[l][0].expected
				}
			}
		}
		if err := e.Run(context.Background()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for l := 1; l < layers; l++ {
			for j, info := range layerNodes[l] {
				got := int(info.st.Stats().ItemsIn)
				if got != info.expected {
					t.Fatalf("trial %d: stage l%d/%d saw %d items, want %d",
						trial, l, j, got, info.expected)
				}
			}
		}
	}
}

// TestMultipleParamsAdjustTogether registers two parameters with opposite
// directions on one stage; under sustained overload the slows-processing one
// must fall while the speeds-processing one rises.
func TestMultipleParamsAdjustTogether(t *testing.T) {
	clk := clock.NewScaled(100)
	e := New(clk)
	vals := make([]int, 2000)
	src, _ := e.AddSourceStage("src", 0, &testSource{values: vals, pace: 5 * time.Millisecond}, StageConfig{
		DisableAdaptation: true, ComputeQuantum: 50 * time.Millisecond,
	})
	var rate, skip *adapt.Param
	proc := &testProc{
		init: func(ctx *Context) error {
			var err error
			rate, err = ctx.SpecifyParam(adapt.ParamSpec{
				Name: "rate", Initial: 0.8, Min: 0.1, Max: 1, Step: 0.01,
				Direction: adapt.IncreaseSlowsProcessing,
			})
			if err != nil {
				return err
			}
			skip, err = ctx.SpecifyParam(adapt.ParamSpec{
				Name: "skip", Initial: 2, Min: 0, Max: 10, Step: 0.1,
				Direction: adapt.IncreaseSpeedsProcessing,
			})
			return err
		},
		process: func(ctx *Context, _ *Packet, _ *Emitter) error {
			ctx.ChargeCompute(15 * time.Millisecond) // 3x the arrival interval
			return nil
		},
	}
	snk, _ := e.AddProcessorStage("sink", 0, proc, StageConfig{
		QueueCapacity:  60,
		AdaptInterval:  100 * time.Millisecond,
		ComputeQuantum: 60 * time.Millisecond,
	})
	e.Connect(src, snk, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rate.Value() >= 0.8 {
		t.Fatalf("slows-processing param stayed at %v under overload", rate.Value())
	}
	if skip.Value() <= 2 {
		t.Fatalf("speeds-processing param stayed at %v under overload", skip.Value())
	}
}

// TestSourceParamAdjustsViaDownstreamExceptions covers the adjust-only
// adaptation loop of source stages: a source's parameter has no queue of its
// own and must move on downstream exceptions alone.
func TestSourceParamAdjustsViaDownstreamExceptions(t *testing.T) {
	clk := clock.NewScaled(100)
	e := New(clk)
	var rate *adapt.Param
	src, _ := e.AddSourceStage("src", 0, &paramSource{n: 1500, pace: 5 * time.Millisecond, rate: &rate}, StageConfig{
		AdaptInterval: 100 * time.Millisecond,
		AdjustEvery:   2,
	})
	slow := &testProc{process: func(ctx *Context, _ *Packet, _ *Emitter) error {
		ctx.ChargeCompute(15 * time.Millisecond)
		return nil
	}}
	snk, _ := e.AddProcessorStage("sink", 0, slow, StageConfig{
		QueueCapacity:  40,
		AdaptInterval:  100 * time.Millisecond,
		AdjustEvery:    2,
		ComputeQuantum: 60 * time.Millisecond,
	})
	e.Connect(src, snk, nil)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rate == nil {
		t.Fatal("source never registered its parameter")
	}
	if rate.Value() >= 0.9 {
		t.Fatalf("source parameter stayed at %v despite downstream overload exceptions", rate.Value())
	}
}

// paramSource registers a generation-rate parameter from a source stage.
type paramSource struct {
	n    int
	pace time.Duration
	rate **adapt.Param
}

func (s *paramSource) Run(ctx *Context, out *Emitter) error {
	p, err := ctx.SpecifyParam(adapt.ParamSpec{
		Name: "gen-rate", Initial: 0.9, Min: 0.1, Max: 1, Step: 0.01,
		Direction: adapt.IncreaseSlowsProcessing,
	})
	if err != nil {
		return err
	}
	*s.rate = p
	for i := 0; i < s.n; i++ {
		ctx.ChargeCompute(s.pace)
		if err := out.EmitValue(i, 8); err != nil {
			return err
		}
	}
	return nil
}
