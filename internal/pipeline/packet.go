// Package pipeline implements the GATES stage-execution engine.
//
// An application built on GATES "comprises a set of pipelined stages"; each
// stage "accepts data from one or more input streams and outputs zero or
// more streams" (paper §3.1, goal 2). This package provides the stage
// container: a bounded input queue (the server queue of the §4 model), a
// user-supplied Processor or Source, emitters that carry packets across
// emulated or real links, and the per-stage adaptation loop that samples the
// queue, exchanges load exceptions with neighboring stages, and adjusts the
// stage's registered parameters.
package pipeline

import "time"

// Packet is the unit of data flowing between stages. The paper assumes
// "data arrives at a server in fixed-size packets"; applications are free to
// vary sizes, and links charge WireSize bytes per packet.
type Packet struct {
	// SourceStage and SourceInstance identify the emitting stage.
	SourceStage    string
	SourceInstance int
	// Seq is the per-emitter sequence number.
	Seq uint64
	// Value is the in-process payload. Applications crossing a TCP edge
	// must use gob-encodable values.
	Value any
	// Items is the logical item count the packet carries (for accounting
	// and adaptation diagnostics). Zero is treated as one.
	Items int
	// WireSize is the number of bytes this packet occupies on a link.
	// The paper's JVM-era transport wrapped every message in a heavy
	// envelope; experiments model that with explicit wire sizes.
	WireSize int
	// Created is the virtual time the packet was emitted.
	Created time.Time
	// Birth is the virtual time the packet's lineage entered the
	// pipeline at a source stage. Unlike Created it is preserved across
	// re-emission: processors' outputs inherit the Birth of the input
	// packet being processed, so sink-side Now()-Birth is the
	// end-to-end latency of the paper's real-time constraint. Zero
	// means "no lineage" (e.g. packets emitted outside any input, by an
	// unobserved engine, or by tests that build packets directly).
	Birth time.Time
	// TraceID is the distributed trace this packet belongs to; 0 means
	// unsampled. Source stages assign ids on the tracer's 1-in-N
	// cadence, downstream emissions inherit them, and the transport
	// carries them across nodes, so one sampled batch produces a span
	// at every stage it crosses.
	TraceID uint64
	// Final marks an end-of-stream control packet; it carries no value.
	// (Declared here with the other sub-word fields so the whole struct
	// packs into two cache lines — recycled packets migrate between the
	// producing and consuming cores on every reuse cycle, and the transfer
	// cost is per line.)
	Final bool
	// TraceHops counts node crossings since the trace root; the remote
	// ingress increments it.
	TraceHops uint8

	// pooled marks a packet owned by the packet pool (see GetPacket);
	// refs counts its outstanding owners. refs is a plain int32 operated
	// on with sync/atomic so Packet values stay copyable (an embedded
	// atomic type would trip go vet's copylocks on existing by-value
	// uses); packets built with &Packet{...} leave both zero and skip
	// the pool lifecycle entirely. Pooled packets must not be copied by
	// value: the copy would inherit the reference count.
	pooled bool
	refs   int32
}

// ItemCount returns Items, treating zero as one.
func (p *Packet) ItemCount() int {
	if p.Items <= 0 {
		return 1
	}
	return p.Items
}

// Size returns the bytes charged on links: WireSize if set, otherwise the
// engine's configured default packet size.
func (p *Packet) size(defaultSize int) int {
	if p.WireSize > 0 {
		return p.WireSize
	}
	return defaultSize
}
