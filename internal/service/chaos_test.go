package service

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/apps/countsamps"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/grid"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/workload"
)

// chaosSource emits a fixed stream with two control points: it parks at the
// halfway mark (mid/goOn) like gatedSource, and again after the last item but
// before returning (tail/finish) — so a test controls exactly when the final
// marker enters the pipeline. That second gate is what makes node-kill
// choreography deterministic: the stream's end-of-run races nothing.
type chaosSource struct {
	values []int
	mid    chan struct{} // closed after half the items are emitted
	goOn   chan struct{} // releases the mid gate
	tail   chan struct{} // closed once every item is emitted
	finish chan struct{} // releases the end gate; Run then returns (final marker)
}

func (c *chaosSource) Run(_ *pipeline.Context, out *pipeline.Emitter) error {
	half := len(c.values) / 2
	for i, v := range c.values {
		if i == half {
			close(c.mid)
			<-c.goOn
		}
		if err := out.Emit(&pipeline.Packet{Value: []int{v}, Items: 1, WireSize: 8}); err != nil {
			return err
		}
	}
	close(c.tail)
	<-c.finish
	return nil
}

// chaosFixture is a deployed count-samps pipeline with the fault plane armed:
// replay rings on every edge, a checkpoint store, and a recovery controller.
// Sites pin each stage to a two-node pool (edge for summarize, core for
// central), so killing a stage's node always leaves exactly one live
// destination for recovery to choose.
type chaosFixture struct {
	app    *Application
	o      *obs.Observability
	clk    *clock.Manual
	net    *netsim.Network
	src    *chaosSource
	merger *countsamps.SummaryMerger
	store  *CheckpointStore
	ck     *Checkpointer
	rec    *Recovery
	items  int
}

func newChaosFixture(t *testing.T, items int, source pipeline.Source) *chaosFixture {
	t.Helper()
	clk := clock.NewManual()
	dir := grid.NewDirectory()
	for _, n := range []grid.Node{
		{Name: "src-1", CPUPower: 1, MemoryMB: 512, Slots: 2, Sources: []string{"stream-1"}},
		{Name: "edge-1", CPUPower: 1, MemoryMB: 512, Slots: 2, Site: "edge"},
		{Name: "edge-2", CPUPower: 1, MemoryMB: 512, Slots: 2, Site: "edge"},
		{Name: "core-1", CPUPower: 4, MemoryMB: 4096, Slots: 2, Site: "core"},
		{Name: "core-2", CPUPower: 4, MemoryMB: 4096, Slots: 2, Site: "core"},
	} {
		if err := dir.Register(n); err != nil {
			t.Fatal(err)
		}
	}
	net := netsim.NewNetwork(clk) // unlimited links: transfers never sleep

	merger := &countsamps.SummaryMerger{}
	repo := NewRepository()
	if err := repo.RegisterSource("test/chaos", func(int) pipeline.Source { return source }); err != nil {
		t.Fatal(err)
	}
	if err := repo.RegisterProcessor("test/summarize", func(int) pipeline.Processor {
		return countsamps.NewSummarizer(countsamps.SummarizerConfig{
			FlushEvery: 250,
			Adaptive:   true,
			Seed:       42,
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := repo.RegisterProcessor("test/merge", func(int) pipeline.Processor { return merger }); err != nil {
		t.Fatal(err)
	}

	dep, err := NewDeployer(clk, dir, repo, net)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New(clk, obs.Config{})
	dep.SetObservability(o)
	dep.SetReplayBuffer(4096)
	launcher, err := NewLauncher(dep)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &AppConfig{
		Name: "chaos-test",
		Stages: []StageDef{
			{ID: "stream", Code: "test/chaos", Source: true, NearSources: []string{"stream-1"}},
			{ID: "summarize", Code: "test/summarize", Requirement: ReqDef{Site: "edge"}},
			{ID: "central", Code: "test/merge", Requirement: ReqDef{MinCPU: 2, Site: "core"}},
		},
		Connections: []ConnDef{
			{From: "stream", To: "summarize"},
			{From: "summarize", To: "central"},
		},
	}
	tuning := func(string, int) pipeline.StageConfig {
		return pipeline.StageConfig{DisableAdaptation: true}
	}
	app, err := launcher.LaunchConfig(context.Background(), cfg, tuning)
	if err != nil {
		t.Fatal(err)
	}
	store := NewCheckpointStore()
	ck, err := NewCheckpointer(app.Deployment, store, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecovery(app.Deployment, store, 500*time.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := &chaosFixture{
		app: app, o: o, clk: clk, net: net, merger: merger,
		store: store, ck: ck, rec: rec, items: items,
	}
	if cs, ok := source.(*chaosSource); ok {
		f.src = cs
	}
	return f
}

func newGatedChaosFixture(t *testing.T, items int) *chaosFixture {
	t.Helper()
	values := make([]int, items)
	for i := range values {
		values[i] = (i * 7) % 100
	}
	return newChaosFixture(t, items, &chaosSource{
		values: values,
		mid:    make(chan struct{}),
		goOn:   make(chan struct{}),
		tail:   make(chan struct{}),
		finish: make(chan struct{}),
	})
}

func (f *chaosFixture) stage(t *testing.T, id string) *pipeline.Stage {
	t.Helper()
	st, ok := f.app.Deployment.Stage(id, 0)
	if !ok {
		t.Fatalf("stage %s/0 not deployed", id)
	}
	return st
}

// waitUntil polls a monotone condition with a wall-clock deadline; the
// condition only ever flips false→true, so polling cannot miss it.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		runtime.Gosched()
		time.Sleep(100 * time.Microsecond)
	}
}

// chaosBaseline runs the gated fixture fault-free and returns the merger's
// final top-10 — the answer every kill/recover variant must reproduce.
func chaosBaseline(t *testing.T, items int) []workload.ValueCount {
	t.Helper()
	f := newGatedChaosFixture(t, items)
	<-f.src.mid
	close(f.src.goOn)
	<-f.src.tail
	close(f.src.finish)
	if err := f.app.Wait(); err != nil {
		t.Fatal(err)
	}
	return f.merger.TopK(10)
}

// TestChaosKillRecoverZeroLoss is the deterministic kill matrix: each case
// kills the node under one stage mid-stream, recovers it, and requires the
// sink's answer to be bit-identical to the fault-free baseline — the
// replayed sequence interval exactly covers what the black-holed links
// swallowed, and watermark dedupe absorbs the overlap.
//
// The choreography is identical for every case. At the halfway gate the
// pipeline quiesces (summarize has consumed 1000 items and emitted summaries
// 0-3; central has consumed them), both stateful stages checkpoint, and the
// victim's node dies. Releasing the mid gate then drives the second half of
// the stream into the fault: emissions toward the dead node are recorded in
// the per-edge replay rings and dropped at the severed links. Once the
// source parks at the tail gate the damage is complete and fully
// deterministic, so recovery's replay/heal counts can be asserted exactly.
func TestChaosKillRecoverZeroLoss(t *testing.T) {
	const items = 2000
	baseline := chaosBaseline(t, items)

	cases := []struct {
		name  string
		stage string // the stage whose node is killed
		// quiesce runs after the source parks at the tail gate, before
		// recovery starts — it waits out any traffic that still flows on
		// live links so the swallowed interval is exact.
		quiesce func(t *testing.T, f *chaosFixture)
		// wantReplayed is the exact packet count recovery re-injects:
		// input replay for a crashed consumer, output heal for a crashed
		// emitter.
		wantReplayed int
		wantRestored bool // checkpoint state restored (Snapshotter only)
	}{
		{
			// The summarizer is a Snapshotter: recovery rewinds its sketch,
			// cursor, and watermarks to the item-1000 checkpoint, then
			// replays items [1000,2000) from the source's ring. Re-emitted
			// summaries 4-7 carry the same sequence numbers the originals
			// would have — effectively-once end to end.
			name:         "summarize-snapshotter-restore",
			stage:        "summarize",
			wantReplayed: 1000,
			wantRestored: true,
		},
		{
			// The merger has no Snapshotter: its zombie state (summaries
			// 0-3 already merged, watermark at 4) survives in place, so
			// recovery replays only the black-holed summaries [4,8) —
			// at-least-once, deduped to exactly-once by the watermark.
			name:  "central-zombie-at-least-once",
			stage: "central",
			quiesce: func(t *testing.T, f *chaosFixture) {
				sum := f.stage(t, "summarize")
				waitUntil(t, "summarize to flush the second half", func() bool {
					return sum.Stats().PacketsOut >= 8
				})
			},
			wantReplayed: 4,
			wantRestored: false,
		},
		{
			// The source has no upstreams at all: recovery is pure output
			// heal — its own ring replays the 1000 emissions the severed
			// link swallowed, anchored at the summarizer's watermark.
			name:         "stream-source-output-heal",
			stage:        "stream",
			wantReplayed: 1000,
			wantRestored: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newGatedChaosFixture(t, items)
			dep := f.app.Deployment
			stream := f.stage(t, "stream")
			summarize := f.stage(t, "summarize")
			central := f.stage(t, "central")

			<-f.src.mid
			waitUntil(t, "first half to quiesce", func() bool {
				return summarize.Stats().ItemsIn == uint64(items/2) &&
					central.Stats().PacketsIn == 4
			})
			ctx := context.Background()
			if err := f.ck.CheckpointInstance(ctx, summarize); err != nil {
				t.Fatal(err)
			}
			if err := f.ck.CheckpointInstance(ctx, central); err != nil {
				t.Fatal(err)
			}

			victim, ok := dep.NodeFor(tc.stage, 0)
			if !ok {
				t.Fatalf("no placement for %s/0", tc.stage)
			}
			f.net.Kill(victim)
			close(f.src.goOn)
			<-f.src.tail
			if tc.quiesce != nil {
				tc.quiesce(t, f)
			}

			recDone := make(chan error, 1)
			go func() { recDone <- f.rec.RecoverNode(ctx, victim) }()
			// Recovery may need to pause the parked source (its own node
			// died, or it is the crashed stage's upstream); the pause
			// request is visible as the draining state, and the source
			// acknowledges it inside its final-marker emission. When the
			// source is not involved, recovery completes on its own.
			waitUntil(t, "recovery to engage", func() bool {
				if stream.State() == pipeline.StateDraining {
					return true
				}
				select {
				case err := <-recDone:
					recDone <- err
					return true
				default:
					return false
				}
			})
			close(f.src.finish)
			if err := <-recDone; err != nil {
				t.Fatalf("recover %s: %v", victim, err)
			}
			if err := f.app.Wait(); err != nil {
				t.Fatal(err)
			}

			// Zero loss after replay: the answer is bit-identical to the
			// fault-free run, every item reached the summarizer exactly
			// once, and nothing was deduped away at the sink.
			if topk := f.merger.TopK(10); !reflect.DeepEqual(topk, baseline) {
				t.Errorf("top-10 after recovery %v differs from baseline %v", topk, baseline)
			}
			if got := summarize.Stats().ItemsIn; got != uint64(items) {
				t.Errorf("summarize consumed %d items, want %d", got, items)
			}
			// 8 cadence flushes plus the summarizer's Finish flush.
			if got := central.Stats().PacketsIn; got != 9 {
				t.Errorf("central consumed %d summaries, want 9", got)
			}
			if got := central.Stats().DupsDropped; got != 0 {
				t.Errorf("central dropped %d dups, want 0", got)
			}
			if got := f.merger.Sources(); got != 1 {
				t.Errorf("merger saw %d sources, want 1", got)
			}

			// The recovery event records the exact repair.
			evs := f.rec.Events()
			if len(evs) != 1 {
				t.Fatalf("recovery events %+v, want exactly 1", evs)
			}
			ev := evs[0]
			if ev.Stage != tc.stage || ev.Node != victim || ev.Err != "" {
				t.Errorf("recovery event %+v", ev)
			}
			if ev.To == victim || ev.To == "" {
				t.Errorf("recovered onto %q, want a different live node", ev.To)
			}
			if ev.Replayed != tc.wantReplayed {
				t.Errorf("replayed %d packets, want %d", ev.Replayed, tc.wantReplayed)
			}
			if ev.Restored != tc.wantRestored {
				t.Errorf("restored=%t, want %t", ev.Restored, tc.wantRestored)
			}
			if ev.Gap {
				t.Error("recovery reported a replay gap; rings should cover the interval")
			}
			if node, _ := dep.NodeFor(tc.stage, 0); node != ev.To {
				t.Errorf("placement index %s, want %s", node, ev.To)
			}

			// The decision log, migration trail, and flight recorder all
			// carry the recovery verdict.
			dec, ok := f.o.DecisionLog().Last()
			if !ok || dec.Kind != obs.DecisionRecovery || dec.Stage != tc.stage {
				t.Errorf("decision log last = %+v, ok=%t", dec, ok)
			}
			mig, ok := f.o.Migrations.Last()
			if !ok || mig.Reason != "recovery" || mig.From != victim || mig.To != ev.To {
				t.Errorf("migration trail last = %+v, ok=%t", mig, ok)
			}
			var flight bool
			for _, fe := range f.o.FlightRec().Events() {
				if fe.Kind == obs.FlightRecovery && fe.Stage == tc.stage {
					flight = true
				}
			}
			if !flight {
				t.Error("no recovery event in the flight recorder")
			}
		})
	}
}

// TestChaosSnapshotterRestoreBitIdentical pins the checkpoint round trip
// itself: the summarizer's restored sketch must serialize back to exactly
// the bytes that were captured — restore is bit-identical, not merely
// equivalent.
func TestChaosSnapshotterRestoreBitIdentical(t *testing.T) {
	f := newGatedChaosFixture(t, 2000)
	summarize := f.stage(t, "summarize")
	<-f.src.mid
	waitUntil(t, "summarize to drain the first half", func() bool {
		return summarize.Stats().ItemsIn == 1000
	})
	ctx := context.Background()
	if err := f.ck.CheckpointInstance(ctx, summarize); err != nil {
		t.Fatal(err)
	}
	cp, ok := f.store.Latest("summarize", 0)
	if !ok || !cp.HasState {
		t.Fatalf("no stateful checkpoint captured (ok=%t)", ok)
	}
	if cp.EmitSeq != 4 {
		t.Errorf("checkpoint cursor %d, want 4 summaries", cp.EmitSeq)
	}

	snap, has := summarize.Snapshotter()
	if !has {
		t.Fatal("summarizer is not a Snapshotter")
	}
	if err := summarize.Pause(ctx); err != nil {
		t.Fatal(err)
	}
	if err := snap.Restore(cp.State); err != nil {
		t.Fatal(err)
	}
	again, err := snap.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := summarize.Resume(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, cp.State) {
		t.Errorf("snapshot after restore differs: %d bytes vs %d captured", len(again), len(cp.State))
	}

	close(f.src.goOn)
	<-f.src.tail
	close(f.src.finish)
	if err := f.app.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestHealthMonitorTicks drives the failure detector's epoch logic directly:
// a node must miss deadAfter consecutive epochs to be declared dead, the
// declaration fires exactly once, and healing rearms it.
func TestHealthMonitorTicks(t *testing.T) {
	f := newGatedChaosFixture(t, 2000)
	node, ok := f.app.Deployment.NodeFor("summarize", 0)
	if !ok {
		t.Fatal("no placement for summarize/0")
	}

	if dead := f.rec.tick(); len(dead) != 0 {
		t.Errorf("healthy cluster declared dead: %v", dead)
	}
	f.net.Kill(node)
	for epoch := 1; epoch < 3; epoch++ {
		if dead := f.rec.tick(); len(dead) != 0 {
			t.Errorf("epoch %d: declared dead %v before deadAfter", epoch, dead)
		}
	}
	if dead := f.rec.tick(); len(dead) != 1 || dead[0] != node {
		t.Errorf("epoch 3: declared dead %v, want [%s]", dead, node)
	}
	if dead := f.rec.tick(); len(dead) != 0 {
		t.Errorf("re-declared an already-recovered node: %v", dead)
	}
	f.net.Heal(node)
	if dead := f.rec.tick(); len(dead) != 0 {
		t.Errorf("healed node declared dead: %v", dead)
	}
	f.net.Kill(node)
	for epoch := 1; epoch < 3; epoch++ {
		f.rec.tick()
	}
	if dead := f.rec.tick(); len(dead) != 1 || dead[0] != node {
		t.Errorf("second failure not re-declared: %v", dead)
	}
	f.net.Heal(node)

	<-f.src.mid
	close(f.src.goOn)
	<-f.src.tail
	close(f.src.finish)
	if err := f.app.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestHealthMonitorDrivesRecovery runs the full detection loop on the manual
// clock: kill the summarizer's node, advance virtual time through the health
// epochs, and let the monitor — not the test — trigger the recovery.
func TestHealthMonitorDrivesRecovery(t *testing.T) {
	const items = 2000
	baseline := chaosBaseline(t, items)
	f := newGatedChaosFixture(t, items)
	stream := f.stage(t, "stream")
	summarize := f.stage(t, "summarize")

	<-f.src.mid
	waitUntil(t, "first half to quiesce", func() bool {
		return summarize.Stats().ItemsIn == uint64(items/2)
	})
	ctx := context.Background()
	if err := f.ck.CheckpointInstance(ctx, summarize); err != nil {
		t.Fatal(err)
	}
	victim, _ := f.app.Deployment.NodeFor("summarize", 0)
	f.net.Kill(victim)
	close(f.src.goOn)
	<-f.src.tail

	f.rec.Start(ctx)
	defer f.rec.Stop()
	// Each advance fires at most one health epoch; after deadAfter epochs
	// the monitor declares the node dead and its recovery pauses the parked
	// source (visible as draining). Extra advances are harmless no-ops.
	waitUntil(t, "monitor to declare the node dead", func() bool {
		f.clk.Advance(500 * time.Millisecond)
		return stream.State() == pipeline.StateDraining
	})
	close(f.src.finish)
	waitUntil(t, "monitor-driven recovery to complete", func() bool {
		return len(f.rec.Events()) == 1
	})
	if err := f.app.Wait(); err != nil {
		t.Fatal(err)
	}
	ev := f.rec.Events()[0]
	if ev.Err != "" || ev.Stage != "summarize" || !ev.Restored || ev.Gap {
		t.Errorf("recovery event %+v", ev)
	}
	if topk := f.merger.TopK(10); !reflect.DeepEqual(topk, baseline) {
		t.Errorf("top-10 after monitor recovery %v differs from baseline %v", topk, baseline)
	}
}

// plainSource emits its values without gates — fuel for the hammer test.
type plainSource struct{ values []int }

func (p *plainSource) Run(_ *pipeline.Context, out *pipeline.Emitter) error {
	for _, v := range p.values {
		if err := out.Emit(&pipeline.Packet{Value: []int{v}, Items: 1, WireSize: 8}); err != nil {
			return err
		}
	}
	return nil
}

// TestChaosHammerRace runs fault injection, kill/recover cycles, checkpoint
// rounds, and migrations concurrently against a live pipeline under the race
// detector. It asserts liveness and termination, not results: kills without
// a surviving replay window may legitimately lose data, but nothing may
// deadlock, race, or wedge the final markers.
func TestChaosHammerRace(t *testing.T) {
	const items = 8000
	values := make([]int, items)
	for i := range values {
		values[i] = (i * 13) % 100
	}
	f := newChaosFixture(t, items, &plainSource{values: values})
	dep := f.app.Deployment
	central := f.stage(t, "central")
	ctx := context.Background()

	// Let the pipeline establish itself before the first kill, so the
	// sink provably consumed real traffic even if a late kill window
	// swallows the tail of the stream.
	waitUntil(t, "first summary at the sink", func() bool {
		return central.Stats().PacketsIn > 0
	})

	done := make(chan struct{})
	var wg sync.WaitGroup
	hammer := func(iters int, body func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				select {
				case <-done:
					return
				default:
					body(i)
				}
			}
		}()
	}
	// Checkpoint rounds: constant pause/capture/resume pressure.
	hammer(60, func(int) { f.ck.CheckpointAll(ctx) })
	// Migrations: bounce the summarizer between its two edge nodes;
	// contention with a concurrent pause or a full node is expected.
	targets := []string{"edge-1", "edge-2"}
	hammer(60, func(i int) { _ = dep.Migrate(ctx, "summarize", 0, targets[i%2]) })
	// Kill/recover cycles against whichever node hosts the summarizer.
	hammer(40, func(int) {
		node, ok := dep.NodeFor("summarize", 0)
		if !ok {
			return
		}
		f.net.Kill(node)
		_ = f.rec.RecoverNode(ctx, node)
		f.net.Heal(node)
	})
	// Link-level chaos on the source's uplink: loss and reorder flap on
	// and off with fresh deterministic seeds.
	hammer(60, func(i int) {
		seed := int64(2*i + 1)
		f.net.InjectFaults("src-1", "edge-1", netsim.FaultConfig{Seed: seed, Loss: 0.2, Reorder: 0.2, Depth: 2})
		f.net.InjectFaults("src-1", "edge-2", netsim.FaultConfig{Seed: seed + 1, Loss: 0.2, Reorder: 0.2, Depth: 2})
		f.net.InjectFaults("src-1", "edge-1", netsim.FaultConfig{})
		f.net.InjectFaults("src-1", "edge-2", netsim.FaultConfig{})
	})

	err := f.app.Wait()
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatalf("pipeline did not terminate cleanly under chaos: %v", err)
	}
	if got := central.Stats().PacketsIn; got == 0 {
		t.Error("sink consumed nothing under chaos")
	}
}
