package service

import (
	"errors"
	"fmt"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/grid"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// Deployment is a fully wired, ready-to-run application: the paper's set of
// customized GATES grid-service instances plus their network connections.
type Deployment struct {
	// Config is the descriptor the deployment was built from.
	Config *AppConfig
	// Engine executes the stage instances.
	Engine *pipeline.Engine
	// Placements records which node hosts each instance.
	Placements []grid.Placement
	// Stages maps stage id to its deployed instances in ordinal order.
	Stages map[string][]*pipeline.Stage
}

// Stage returns instance ordinal i of the named stage.
func (d *Deployment) Stage(id string, i int) (*pipeline.Stage, bool) {
	insts, ok := d.Stages[id]
	if !ok || i < 0 || i >= len(insts) {
		return nil, false
	}
	return insts[i], true
}

// NodeFor returns the node hosting instance i of the named stage.
func (d *Deployment) NodeFor(id string, i int) (string, bool) {
	for _, p := range d.Placements {
		if p.StageID == id && p.Instance == i {
			return p.Node, true
		}
	}
	return "", false
}

// StageTuning customizes the runtime configuration of deployed instances;
// the Deployer consults it for every (stage id, instance) pair. Returning
// the zero StageConfig accepts all defaults.
type StageTuning func(stageID string, instance int) pipeline.StageConfig

// Deployer turns an application descriptor into a Deployment. It performs
// the five duties §3.2 lists: receive the configuration, consult the grid
// resource manager, initiate service instances at the chosen nodes, retrieve
// the stage codes from the repository, and customize every instance.
type Deployer struct {
	clk  clock.Clock
	dir  *grid.Directory
	repo *Repository
	net  *netsim.Network

	topologyAware bool
	defBatch      int
	o             *obs.Observability
}

// SetObservability attaches an observability bundle installed on every
// engine the deployer builds: deployments log placements, stages publish
// metrics, and adaptation decisions land in the audit trail. Nil (the
// default) means unobserved.
func (d *Deployer) SetObservability(o *obs.Observability) { d.o = o }

// SetDefaultBatchSize sets the drain/coalesce batch size the deployer
// installs on every engine it builds (see pipeline.Engine.SetDefaultBatchSize).
// Per-stage StageConfig.BatchSize from tuning still wins.
func (d *Deployer) SetDefaultBatchSize(n int) { d.defBatch = n }

// SetTopologyAware makes placement consider link bandwidth between
// communicating instances (grid.PlanTopology) in addition to requirements
// and near-source hints: stages that exchange data gravitate to the same
// site when the wide-area links are slow.
func (d *Deployer) SetTopologyAware(on bool) { d.topologyAware = on }

// NewDeployer returns a deployer over the given fabric. All dependencies
// are required.
func NewDeployer(clk clock.Clock, dir *grid.Directory, repo *Repository, net *netsim.Network) (*Deployer, error) {
	if clk == nil || dir == nil || repo == nil || net == nil {
		return nil, errors.New("service: NewDeployer requires clock, directory, repository, and network")
	}
	return &Deployer{clk: clk, dir: dir, repo: repo, net: net}, nil
}

// Deploy plans placements, instantiates every stage instance, and wires the
// declared connections through the network's links. tuning may be nil.
func (d *Deployer) Deploy(cfg *AppConfig, tuning StageTuning) (*Deployment, error) {
	if cfg == nil {
		return nil, errors.New("service: Deploy requires a config")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	// 1. Resource matching: one planner request per instance, in
	// descriptor order so source-side stages claim near-source nodes
	// first.
	var err error
	var reqs []grid.InstanceRequest
	for i := range cfg.Stages {
		s := &cfg.Stages[i]
		for inst := 0; inst < s.EffectiveInstances(); inst++ {
			req := grid.Requirement{
				MinCPUPower: s.Requirement.MinCPU,
				MinMemoryMB: s.Requirement.MinMemoryMB,
				Site:        s.Requirement.Site,
			}
			if inst < len(s.NearSources) {
				req.NearSource = s.NearSources[inst]
			}
			reqs = append(reqs, grid.InstanceRequest{StageID: s.ID, Instance: inst, Req: req})
		}
	}
	var placements []grid.Placement
	if d.topologyAware {
		placements, err = d.dir.PlanTopology(reqs, instanceEdges(cfg), func(a, b string) int64 {
			return d.net.Link(a, b).Config().Bandwidth
		})
	} else {
		placements, err = d.dir.Plan(reqs)
	}
	if err != nil {
		return nil, fmt.Errorf("service: placement failed: %w", err)
	}

	nodeOf := make(map[string]string, len(placements))
	for _, p := range placements {
		nodeOf[instKey(p.StageID, p.Instance)] = p.Node
	}

	// 2. Instantiation: pull stage codes from the repository and
	// customize one engine stage per instance.
	eng := pipeline.New(d.clk)
	if d.defBatch > 0 {
		eng.SetDefaultBatchSize(d.defBatch)
	}
	if d.o != nil {
		eng.SetObservability(d.o)
	}
	stages := make(map[string][]*pipeline.Stage, len(cfg.Stages))
	for i := range cfg.Stages {
		s := &cfg.Stages[i]
		for inst := 0; inst < s.EffectiveInstances(); inst++ {
			var scfg pipeline.StageConfig
			if tuning != nil {
				scfg = tuning(s.ID, inst)
			}
			if s.QueueCapacity > 0 && scfg.QueueCapacity == 0 {
				scfg.QueueCapacity = s.QueueCapacity
			}
			var st *pipeline.Stage
			if s.Source {
				f, ok := d.repo.Source(s.Code)
				if !ok {
					return nil, fmt.Errorf("service: source code %q not in repository", s.Code)
				}
				st, err = eng.AddSourceStage(s.ID, inst, f(inst), scfg)
			} else {
				f, ok := d.repo.Processor(s.Code)
				if !ok {
					return nil, fmt.Errorf("service: processor code %q not in repository", s.Code)
				}
				st, err = eng.AddProcessorStage(s.ID, inst, f(inst), scfg)
			}
			if err != nil {
				return nil, err
			}
			st.SetNode(nodeOf[instKey(s.ID, inst)])
			stages[s.ID] = append(stages[s.ID], st)
		}
	}

	// 3. Wiring: connect instances through the links their placements
	// imply.
	for _, conn := range cfg.Connections {
		froms := stages[conn.From]
		tos := stages[conn.To]
		mode := conn.Fanout
		if mode == FanoutAuto {
			if len(froms) == len(tos) {
				mode = FanoutPairwise
			} else {
				mode = FanoutAll
			}
		}
		switch mode {
		case FanoutPairwise:
			for i := range froms {
				if err := d.connect(eng, froms[i], tos[i]); err != nil {
					return nil, err
				}
			}
		case FanoutGrouped:
			group := len(froms) / len(tos)
			for i := range froms {
				if err := d.connect(eng, froms[i], tos[i/group]); err != nil {
					return nil, err
				}
			}
		case FanoutAll:
			for _, f := range froms {
				for _, t := range tos {
					if err := d.connect(eng, f, t); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// 4. Observation: once wiring has materialized the links, publish them
	// and log where everything landed.
	if d.o != nil {
		d.net.Instrument(d.o.Registry)
		for _, p := range placements {
			d.o.Log().Info("instance placed",
				"app", cfg.Name, "stage", p.StageID, "instance", p.Instance, "node", p.Node)
		}
	}

	return &Deployment{Config: cfg, Engine: eng, Placements: placements, Stages: stages}, nil
}

func (d *Deployer) connect(eng *pipeline.Engine, from, to *pipeline.Stage) error {
	var link *netsim.Link
	if from.Node() != to.Node() {
		link = d.net.Link(from.Node(), to.Node())
	}
	return eng.Connect(from, to, link)
}

func instKey(id string, inst int) string { return fmt.Sprintf("%s#%d", id, inst) }

// instanceEdges expands the descriptor's connections into instance-level
// communication edges, indexed against the request order Deploy builds
// (stages in declaration order, instances in ordinal order).
func instanceEdges(cfg *AppConfig) []grid.InstanceEdge {
	offset := make(map[string]int, len(cfg.Stages))
	count := make(map[string]int, len(cfg.Stages))
	next := 0
	for i := range cfg.Stages {
		s := &cfg.Stages[i]
		offset[s.ID] = next
		count[s.ID] = s.EffectiveInstances()
		next += s.EffectiveInstances()
	}
	var edges []grid.InstanceEdge
	for _, conn := range cfg.Connections {
		fromN, toN := count[conn.From], count[conn.To]
		mode := conn.Fanout
		if mode == FanoutAuto {
			if fromN == toN {
				mode = FanoutPairwise
			} else {
				mode = FanoutAll
			}
		}
		switch mode {
		case FanoutPairwise:
			for i := 0; i < fromN; i++ {
				edges = append(edges, grid.InstanceEdge{From: offset[conn.From] + i, To: offset[conn.To] + i})
			}
		case FanoutGrouped:
			group := fromN / toN
			for i := 0; i < fromN; i++ {
				edges = append(edges, grid.InstanceEdge{From: offset[conn.From] + i, To: offset[conn.To] + i/group})
			}
		case FanoutAll:
			for i := 0; i < fromN; i++ {
				for j := 0; j < toN; j++ {
					edges = append(edges, grid.InstanceEdge{From: offset[conn.From] + i, To: offset[conn.To] + j})
				}
			}
		}
	}
	return edges
}
