package service

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/grid"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/policy"
)

// labelControlPlane tags the calling goroutine with stage=control-plane so
// the obs.Profiler attributes checkpoint/recovery/rebalance/fault-schedule
// CPU to the control plane rather than leaving it unlabeled.
func labelControlPlane() {
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("stage", "control-plane")))
}

// Deployment is a fully wired, ready-to-run application: the paper's set of
// customized GATES grid-service instances plus their network connections.
type Deployment struct {
	// Config is the descriptor the deployment was built from.
	Config *AppConfig
	// Engine executes the stage instances.
	Engine *pipeline.Engine
	// Placements records which node hosts each instance. Migrations keep
	// it current; read it through NodeFor or under no concurrent moves.
	Placements []grid.Placement
	// Stages maps stage id to its deployed instances in ordinal order.
	Stages map[string][]*pipeline.Stage
	// Plan is the placement decision this deployment materialized.
	Plan *Plan

	deployer *Deployer
	mu       sync.RWMutex
	nodeOf   map[instRef]string
}

// instRef identifies one stage instance in the placement index.
type instRef struct {
	stage    string
	instance int
}

// Stage returns instance ordinal i of the named stage.
func (d *Deployment) Stage(id string, i int) (*pipeline.Stage, bool) {
	insts, ok := d.Stages[id]
	if !ok || i < 0 || i >= len(insts) {
		return nil, false
	}
	return insts[i], true
}

// Ready reports whether every deployed stage instance is running — the
// deployment-level /readyz condition a host binary exposes.
func (d *Deployment) Ready() bool {
	return d.Engine.Ready()
}

// NodeFor returns the node hosting instance i of the named stage. The
// lookup is an indexed O(1) read (it is called per-packet by
// topology-aware paths) and tracks migrations.
func (d *Deployment) NodeFor(id string, i int) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	node, ok := d.nodeOf[instRef{stage: id, instance: i}]
	return node, ok
}

// setPlacement updates the placement records after a migration.
func (d *Deployment) setPlacement(id string, i int, node string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nodeOf[instRef{stage: id, instance: i}] = node
	for k := range d.Placements {
		if d.Placements[k].StageID == id && d.Placements[k].Instance == i {
			d.Placements[k].Node = node
		}
	}
	if d.Plan != nil {
		for k := range d.Plan.Assignments {
			if d.Plan.Assignments[k].StageID == id && d.Plan.Assignments[k].Instance == i {
				d.Plan.Assignments[k].Node = node
			}
		}
	}
}

// StageTuning customizes the runtime configuration of deployed instances;
// the Deployer consults it for every (stage id, instance) pair. Returning
// the zero StageConfig accepts all defaults.
type StageTuning func(stageID string, instance int) pipeline.StageConfig

// Deployer turns an application descriptor into a Deployment. It performs
// the five duties §3.2 lists — receive the configuration, consult the grid
// resource manager, initiate service instances at the chosen nodes, retrieve
// the stage codes from the repository, and customize every instance — split
// into an explicit Plan (decide) and Apply (execute) pair; Deploy composes
// the two.
type Deployer struct {
	clk  clock.Clock
	dir  *grid.Directory
	repo *Repository
	net  *netsim.Network

	topologyAware bool
	defBatch      int
	defReplay     int
	o             *obs.Observability
	pol           *policy.Engine
}

// SetReplayBuffer sets the per-edge replay-ring depth the deployer installs
// on every engine it builds (see pipeline.Engine.SetDefaultReplayBuffer).
// Zero (the default) disables fault tolerance; per-stage
// StageConfig.ReplayBuffer from tuning still wins.
func (d *Deployer) SetReplayBuffer(n int) { d.defReplay = n }

// SetObservability attaches an observability bundle installed on every
// engine the deployer builds: deployments log placements, stages publish
// metrics, and adaptation decisions land in the audit trail. Nil (the
// default) means unobserved.
func (d *Deployer) SetObservability(o *obs.Observability) { d.o = o }

// SetDefaultBatchSize sets the drain/coalesce batch size the deployer
// installs on every engine it builds (see pipeline.Engine.SetDefaultBatchSize).
// Per-stage StageConfig.BatchSize from tuning still wins.
func (d *Deployer) SetDefaultBatchSize(n int) { d.defBatch = n }

// SetTopologyAware makes placement consider link bandwidth between
// communicating instances (grid.PlanTopology) in addition to requirements
// and near-source hints: stages that exchange data gravitate to the same
// site when the wide-area links are slow.
//
// Deprecated shim: prefer declaring placement.topology_aware in the policy
// document handed to SetPolicy; either source enables it.
func (d *Deployer) SetTopologyAware(on bool) { d.topologyAware = on }

// SetPolicy installs the policy engine that drives every placement this
// deployer plans (see Planner.SetPolicy) and that policy-driven
// rebalancers share. Nil (the default) means default-policy behavior with
// no decision logging.
func (d *Deployer) SetPolicy(eng *policy.Engine) { d.pol = eng }

// Policy returns the installed policy engine (nil when none).
func (d *Deployer) Policy() *policy.Engine { return d.pol }

// NewDeployer returns a deployer over the given fabric. All dependencies
// are required.
func NewDeployer(clk clock.Clock, dir *grid.Directory, repo *Repository, net *netsim.Network) (*Deployer, error) {
	if clk == nil || dir == nil || repo == nil || net == nil {
		return nil, errors.New("service: NewDeployer requires clock, directory, repository, and network")
	}
	return &Deployer{clk: clk, dir: dir, repo: repo, net: net}, nil
}

// Planner returns a planner over the deployer's fabric, inheriting its
// topology-awareness and policy engine.
func (d *Deployer) Planner() *Planner {
	p, _ := NewPlanner(d.dir, d.net) // deps were validated at NewDeployer
	p.SetTopologyAware(d.topologyAware)
	p.SetPolicy(d.pol)
	return p
}

// Plan performs resource matching only: it validates cfg, consults the
// directory, reserves capacity, and returns the serializable placement
// decision. Use Apply to execute it, or Planner().Release to discard it.
func (d *Deployer) Plan(cfg *AppConfig) (*Plan, error) {
	return d.Planner().Plan(cfg)
}

// Deploy plans placements, instantiates every stage instance, and wires the
// declared connections through the network's links. tuning may be nil.
func (d *Deployer) Deploy(cfg *AppConfig, tuning StageTuning) (*Deployment, error) {
	plan, err := d.Plan(cfg)
	if err != nil {
		return nil, err
	}
	dep, err := d.Apply(cfg, plan, tuning)
	if err != nil {
		d.Planner().Release(plan)
		return nil, err
	}
	return dep, nil
}

// Apply executes a plan: it pulls stage codes from the repository,
// customizes one engine stage per instance on the planned node, and wires
// the planned instance-level connections through the links the placement
// implies. The plan's directory reservations transfer to the returned
// Deployment; on error the caller still owns them.
func (d *Deployer) Apply(cfg *AppConfig, plan *Plan, tuning StageTuning) (*Deployment, error) {
	if cfg == nil || plan == nil {
		return nil, errors.New("service: Apply requires a config and a plan")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	nodeOf := make(map[instRef]string, len(plan.Assignments))
	for _, a := range plan.Assignments {
		nodeOf[instRef{stage: a.StageID, instance: a.Instance}] = a.Node
	}

	// Instantiation: pull stage codes from the repository and customize
	// one engine stage per instance.
	eng := pipeline.New(d.clk)
	if d.defBatch > 0 {
		eng.SetDefaultBatchSize(d.defBatch)
	}
	if d.defReplay > 0 {
		eng.SetDefaultReplayBuffer(d.defReplay)
	}
	if d.o != nil {
		eng.SetObservability(d.o)
	}
	stages := make(map[string][]*pipeline.Stage, len(cfg.Stages))
	for i := range cfg.Stages {
		s := &cfg.Stages[i]
		for inst := 0; inst < s.EffectiveInstances(); inst++ {
			node, ok := nodeOf[instRef{stage: s.ID, instance: inst}]
			if !ok {
				return nil, fmt.Errorf("service: plan assigns no node to %s/%d", s.ID, inst)
			}
			var scfg pipeline.StageConfig
			if tuning != nil {
				scfg = tuning(s.ID, inst)
			}
			if s.QueueCapacity > 0 && scfg.QueueCapacity == 0 {
				scfg.QueueCapacity = s.QueueCapacity
			}
			// Carry the Plan-time queue decision into the engine unless
			// the tuning already pinned an implementation explicitly.
			if !s.Source && scfg.Queue == pipeline.QueueAuto {
				if k, ok := plan.QueueKindFor(s.ID, inst); ok {
					scfg.Queue = k
				}
			}
			var st *pipeline.Stage
			var err error
			if s.Source {
				f, ok := d.repo.Source(s.Code)
				if !ok {
					return nil, fmt.Errorf("service: source code %q not in repository", s.Code)
				}
				st, err = eng.AddSourceStage(s.ID, inst, f(inst), scfg)
			} else {
				f, ok := d.repo.Processor(s.Code)
				if !ok {
					return nil, fmt.Errorf("service: processor code %q not in repository", s.Code)
				}
				st, err = eng.AddProcessorStage(s.ID, inst, f(inst), scfg)
			}
			if err != nil {
				return nil, err
			}
			st.SetNode(node)
			stages[s.ID] = append(stages[s.ID], st)
		}
	}

	// Wiring: connect instances through the links their placements imply.
	for _, w := range plan.Wires {
		froms, tos := stages[w.FromStage], stages[w.ToStage]
		if w.FromInstance >= len(froms) || w.ToInstance >= len(tos) {
			return nil, fmt.Errorf("service: plan wires unknown instance %s/%d -> %s/%d",
				w.FromStage, w.FromInstance, w.ToStage, w.ToInstance)
		}
		if err := d.connect(eng, froms[w.FromInstance], tos[w.ToInstance]); err != nil {
			return nil, err
		}
	}

	// Observation: once wiring has materialized the links, publish them
	// and log where everything landed.
	if d.o != nil {
		d.net.Instrument(d.o.Registry)
		for _, a := range plan.Assignments {
			d.o.Log().Info("instance placed",
				"app", cfg.Name, "stage", a.StageID, "instance", a.Instance, "node", a.Node)
		}
	}

	return &Deployment{
		Config:     cfg,
		Engine:     eng,
		Placements: plan.Placements(),
		Stages:     stages,
		Plan:       plan,
		deployer:   d,
		nodeOf:     nodeOf,
	}, nil
}

func (d *Deployer) connect(eng *pipeline.Engine, from, to *pipeline.Stage) error {
	var link *netsim.Link
	if from.Node() != to.Node() {
		link = d.net.Link(from.Node(), to.Node())
	}
	return eng.Connect(from, to, link)
}

// instanceEdges expands the descriptor's connections into instance-level
// communication edges, indexed against the request order instanceRequests
// builds (stages in declaration order, instances in ordinal order).
func instanceEdges(cfg *AppConfig) []grid.InstanceEdge {
	offset := make(map[string]int, len(cfg.Stages))
	next := 0
	for i := range cfg.Stages {
		offset[cfg.Stages[i].ID] = next
		next += cfg.Stages[i].EffectiveInstances()
	}
	wires := resolveWires(cfg)
	edges := make([]grid.InstanceEdge, len(wires))
	for i, w := range wires {
		edges[i] = grid.InstanceEdge{From: offset[w.FromStage] + w.FromInstance, To: offset[w.ToStage] + w.ToInstance}
	}
	return edges
}
