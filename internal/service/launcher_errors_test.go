package service

import (
	"context"
	"strings"
	"testing"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// badParamProc registers an adjustment parameter whose initial value lies
// outside its own [Min, Max] bounds.
type badParamProc struct{}

func (badParamProc) Init(ctx *pipeline.Context) error {
	_, err := ctx.SpecifyParam(adapt.ParamSpec{
		Name: "broken", Initial: 500, Min: 10, Max: 240, Step: 2,
	})
	return err
}
func (badParamProc) Process(*pipeline.Context, *pipeline.Packet, *pipeline.Emitter) error {
	return nil
}
func (badParamProc) Finish(*pipeline.Context, *pipeline.Emitter) error { return nil }

// TestLaunchMalformedConnections drives descriptor-level connection errors
// through the Launcher entry point (literal-XML locator form).
func TestLaunchMalformedConnections(t *testing.T) {
	clk, dir, repo, net, _ := testFabric(t)
	dep, _ := NewDeployer(clk, dir, repo, net)
	l, _ := NewLauncher(dep)
	cases := []struct {
		name string
		xml  string
	}{
		{"unknown endpoint", `<application name="x">
			<stage id="producer" code="test/ints" source="true"/>
			<connection from="producer" to="nowhere"/>
		</application>`},
		{"into a source", `<application name="x">
			<stage id="a" code="test/ints" source="true"/>
			<stage id="b" code="test/ints" source="true"/>
			<connection from="a" to="b"/>
		</application>`},
		{"pairwise count mismatch", `<application name="x">
			<stage id="producer" code="test/ints" source="true" instances="3"/>
			<stage id="merge" code="test/count"/>
			<connection from="producer" to="merge" fanout="pairwise"/>
		</application>`},
		{"unknown fanout", `<application name="x">
			<stage id="producer" code="test/ints" source="true"/>
			<stage id="merge" code="test/count"/>
			<connection from="producer" to="merge" fanout="ring"/>
		</application>`},
	}
	for _, tc := range cases {
		if _, err := l.Launch(context.Background(), tc.xml, nil); err == nil {
			t.Errorf("%s: launched", tc.name)
		}
	}
}

// TestLaunchUnknownStageCode checks that a descriptor naming a stage code
// absent from the repository fails at launch with a pointed error.
func TestLaunchUnknownStageCode(t *testing.T) {
	clk, dir, repo, net, _ := testFabric(t)
	dep, _ := NewDeployer(clk, dir, repo, net)
	l, _ := NewLauncher(dep)
	xml := `<application name="x">
		<stage id="producer" code="test/ints" source="true"/>
		<stage id="merge" code="test/does-not-exist"/>
		<connection from="producer" to="merge"/>
	</application>`
	_, err := l.Launch(context.Background(), xml, nil)
	if err == nil || !strings.Contains(err.Error(), "not in repository") {
		t.Fatalf("launch with unknown code = %v", err)
	}
	// The failed launch must leave no reservations behind: the same
	// fabric still deploys the valid descriptor.
	if _, err := l.Launch(context.Background(), testConfigXML, nil); err != nil {
		t.Fatalf("fabric left dirty by failed launch: %v", err)
	}
}

// TestLaunchOutOfRangeParamBounds checks that a stage registering an
// adjustment parameter with out-of-range bounds surfaces the error through
// the application's terminal status.
func TestLaunchOutOfRangeParamBounds(t *testing.T) {
	clk, dir, repo, net, _ := testFabric(t)
	if err := repo.RegisterProcessor("test/bad-param", func(int) pipeline.Processor {
		return badParamProc{}
	}); err != nil {
		t.Fatal(err)
	}
	dep, _ := NewDeployer(clk, dir, repo, net)
	l, _ := NewLauncher(dep)
	xml := `<application name="x">
		<stage id="producer" code="test/ints" source="true"/>
		<stage id="merge" code="test/bad-param"/>
		<connection from="producer" to="merge"/>
	</application>`
	app, err := l.Launch(context.Background(), xml, nil)
	if err != nil {
		t.Fatalf("launch itself should succeed (the spec is checked at stage init): %v", err)
	}
	if err := app.Wait(); err == nil {
		t.Fatal("application with out-of-range parameter bounds finished cleanly")
	}
}
