package service

import (
	"context"
	"fmt"

	"github.com/gates-middleware/gates/internal/grid"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// Migrate moves a running stage instance to another grid node without
// losing a packet: the §3.2 "initiate the services at the chosen sites"
// duty, re-executed for one instance while the rest of the application
// keeps flowing. The protocol is
//
//  1. reserve capacity for the instance's requirement on the target node,
//  2. pause the stage (drain its current work item, park the goroutine),
//  3. snapshot the processor state when it implements pipeline.Snapshotter,
//  4. charge the moved bytes (state + queued input) to the inter-node link,
//  5. rewire the instance's inbound and outbound edges to the links the
//     new placement implies,
//  6. restore the state and resume the stage on its new node, and
//  7. release the old node's reservation and update the placement records.
//
// The input queue is untouched throughout — producers keep pushing into it
// (blocking only if it fills), and its backlog resumes draining on the new
// node — so migration reorders nothing and drops nothing. The stage's
// adaptation controller rides along untouched: a tuned adjustment parameter
// keeps its value across the move.
//
// Migrate blocks until the move completes and is safe to call while the
// engine runs; concurrent migrations of different instances are fine, but
// concurrent moves of the same instance fail with "pause already pending".
func (d *Deployment) Migrate(ctx context.Context, stageID string, instance int, toNode string) error {
	return d.migrate(ctx, stageID, instance, toNode, "manual")
}

func (d *Deployment) migrate(ctx context.Context, stageID string, instance int, toNode string, reason string) error {
	if d.deployer == nil {
		return fmt.Errorf("service: migrate %s/%d: deployment was not built by a Deployer", stageID, instance)
	}
	dep := d.deployer
	st, ok := d.Stage(stageID, instance)
	if !ok {
		return fmt.Errorf("service: migrate: unknown stage instance %s/%d", stageID, instance)
	}
	from := st.Node()
	if from == toNode {
		return nil
	}

	// Reserve the destination before disturbing the stage, so a full node
	// fails the move while the instance is still running. The near-source
	// hint is dropped: an explicit destination overrides placement policy.
	req, _ := d.planRequirement(stageID, instance)
	req.NearSource = ""
	if err := dep.dir.Allocate(toNode, req); err != nil {
		return fmt.Errorf("service: migrate %s/%d to %s: %w", stageID, instance, toNode, err)
	}

	drainStart := dep.clk.Now()
	if err := st.Pause(ctx); err != nil {
		dep.dir.Release(toNode, req)
		return fmt.Errorf("service: migrate %s/%d: %w", stageID, instance, err)
	}
	drain := dep.clk.Now().Sub(drainStart)

	var state []byte
	snap, hasState := st.Snapshotter()
	if hasState {
		b, err := snap.Snapshot()
		if err != nil {
			_ = st.Resume()
			dep.dir.Release(toNode, req)
			return fmt.Errorf("service: migrate %s/%d: snapshot: %w", stageID, instance, err)
		}
		state = b
	}
	qPkts, qBytes := st.QueuedState()

	// The serialized state and the queued backlog travel over the wire
	// between the two nodes; charge the transfer so migration cost is
	// visible to the network simulation.
	if moved := len(state) + qBytes; moved > 0 {
		dep.net.Link(from, toNode).Transfer(moved)
	}

	st.SetNode(toNode)
	d.Engine.Relink(st, func(a, b *pipeline.Stage) *netsim.Link {
		if a.Node() == b.Node() {
			return nil
		}
		return dep.net.Link(a.Node(), b.Node())
	})
	if hasState {
		if err := snap.Restore(state); err != nil {
			// The stage still holds its pre-snapshot state; fall back to
			// the old node rather than run inconsistently on the new one.
			st.SetNode(from)
			d.Engine.Relink(st, func(a, b *pipeline.Stage) *netsim.Link {
				if a.Node() == b.Node() {
					return nil
				}
				return dep.net.Link(a.Node(), b.Node())
			})
			_ = st.Resume()
			dep.dir.Release(toNode, req)
			return fmt.Errorf("service: migrate %s/%d: restore: %w", stageID, instance, err)
		}
	}
	if dep.o != nil {
		// Metrics series are labeled by node; publish under the new one.
		st.Instrument(dep.o.Registry)
	}
	if err := st.Resume(); err != nil {
		dep.dir.Release(toNode, req)
		return fmt.Errorf("service: migrate %s/%d: %w", stageID, instance, err)
	}
	dep.dir.Release(from, req)
	d.setPlacement(stageID, instance, toNode)

	dep.o.MigrationTrail().Record(obs.MigrationEvent{
		At:            dep.clk.Now(),
		Stage:         stageID,
		Instance:      instance,
		From:          from,
		To:            toNode,
		Drain:         drain,
		StateBytes:    len(state),
		QueuedPackets: qPkts,
		QueuedBytes:   qBytes,
		Reason:        reason,
	})
	dep.o.FlightRec().Record(obs.FlightEvent{
		Kind:     obs.FlightMigration,
		Stage:    stageID,
		Instance: instance,
		Node:     toNode,
		Detail:   from + " → " + toNode + " (" + reason + ")",
		Value:    float64(qPkts),
	})
	dep.o.Log().Info("stage migrated",
		"stage", stageID, "instance", instance, "from", from, "to", toNode,
		"drain", drain, "state_bytes", len(state),
		"queued_packets", qPkts, "queued_bytes", qBytes, "reason", reason)
	return nil
}

// planRequirement returns the requirement the instance was planned with,
// falling back to the zero requirement when the plan is absent.
func (d *Deployment) planRequirement(stageID string, instance int) (grid.Requirement, bool) {
	if d.Plan == nil {
		return grid.Requirement{}, false
	}
	return d.Plan.Requirement(stageID, instance)
}
