package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// Checkpoint is one captured recovery point for a stage instance: the
// serialized processor state (when the stage implements
// pipeline.Snapshotter), the emission cursor, and the per-upstream
// consumption watermarks. Restoring all three and replaying the sequence
// interval [Marks.Next, upstream emission cursor) reconstructs the instance
// as of the capture with at-least-once delivery — effectively-once when the
// stage state and emission cadence are deterministic functions of the
// consumed sequence numbers (see DESIGN.md §13).
type Checkpoint struct {
	Stage    string                  `json:"stage"`
	Instance int                     `json:"instance"`
	At       time.Time               `json:"at"`
	EmitSeq  uint64                  `json:"emit_seq"`
	Marks    []pipeline.UpstreamMark `json:"marks,omitempty"`
	State    []byte                  `json:"state,omitempty"`
	HasState bool                    `json:"has_state"`
}

// CheckpointStore holds the latest checkpoint per stage instance. It is an
// in-memory stand-in for the stable store a real grid deployment would use;
// the recovery protocol only ever needs the most recent capture.
type CheckpointStore struct {
	mu   sync.RWMutex
	last map[instRef]Checkpoint
}

// NewCheckpointStore returns an empty store.
func NewCheckpointStore() *CheckpointStore {
	return &CheckpointStore{last: make(map[instRef]Checkpoint)}
}

// Put records cp as the latest checkpoint for its instance.
func (s *CheckpointStore) Put(cp Checkpoint) {
	s.mu.Lock()
	s.last[instRef{stage: cp.Stage, instance: cp.Instance}] = cp
	s.mu.Unlock()
}

// Latest returns the most recent checkpoint for the instance, if any.
func (s *CheckpointStore) Latest(stage string, instance int) (Checkpoint, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cp, ok := s.last[instRef{stage: stage, instance: instance}]
	return cp, ok
}

// Len returns the number of instances with at least one checkpoint.
func (s *CheckpointStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.last)
}

// Checkpointer periodically captures every stage instance of a deployment
// into a CheckpointStore. Each capture briefly pauses one instance at a
// drain boundary (the same mechanism migration uses), so a round perturbs
// the stream but never loses or reorders packets. Captures are per-instance
// consistent, which is all the recovery protocol needs: the replay interval
// is recomputed per upstream edge at recovery time from the restored marks.
type Checkpointer struct {
	dep      *Deployment
	store    *CheckpointStore
	interval time.Duration

	mu     sync.Mutex
	cancel context.CancelFunc
	done   chan struct{}

	rounds    *obs.Counter
	captures  *obs.Counter
	failures  *obs.Counter
	stateSize *obs.Counter
}

// NewCheckpointer returns a checkpointer over the deployment writing to
// store every interval of virtual time.
func NewCheckpointer(dep *Deployment, store *CheckpointStore, interval time.Duration) (*Checkpointer, error) {
	if dep == nil || store == nil {
		return nil, errors.New("service: NewCheckpointer requires a deployment and a store")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("service: checkpoint interval must be positive, got %v", interval)
	}
	c := &Checkpointer{dep: dep, store: store, interval: interval}
	if o := dep.deployer.o; o != nil {
		c.rounds = o.Registry.Counter("gates_checkpoint_rounds_total",
			"Completed checkpoint rounds.", nil)
		c.captures = o.Registry.Counter("gates_checkpoints_total",
			"Stage-instance checkpoints captured.", nil)
		c.failures = o.Registry.Counter("gates_checkpoint_failures_total",
			"Stage-instance checkpoint attempts that failed.", nil)
		c.stateSize = o.Registry.Counter("gates_checkpoint_state_bytes_total",
			"Serialized snapshot bytes captured across all checkpoints.", nil)
	}
	return c, nil
}

// Store returns the store the checkpointer writes to.
func (c *Checkpointer) Store() *CheckpointStore { return c.store }

// Start launches the periodic capture loop. It takes an immediate epoch-0
// round before the first tick so a crash early in the run still finds a
// checkpoint to restore, then captures every interval until Stop or ctx.
func (c *Checkpointer) Start(ctx context.Context) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cancel != nil {
		return
	}
	ctx, c.cancel = context.WithCancel(ctx)
	c.done = make(chan struct{})
	clk := c.dep.deployer.clk
	go func() {
		defer close(c.done)
		labelControlPlane()
		c.CheckpointAll(ctx)
		for {
			select {
			case <-ctx.Done():
				return
			case <-clk.After(c.interval):
				c.CheckpointAll(ctx)
			}
		}
	}()
}

// Stop halts the capture loop and waits for an in-flight round to finish.
func (c *Checkpointer) Stop() {
	c.mu.Lock()
	cancel, done := c.cancel, c.done
	c.cancel, c.done = nil, nil
	c.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}

// CheckpointAll captures every instance of the deployment once, skipping
// instances that are stopped or already being paused by someone else (the
// next round, or recovery itself, will cover them). It returns the number
// of instances captured.
func (c *Checkpointer) CheckpointAll(ctx context.Context) int {
	captured := 0
	for _, sts := range c.dep.Stages {
		for _, st := range sts {
			if ctx.Err() != nil {
				return captured
			}
			if err := c.CheckpointInstance(ctx, st); err != nil {
				if c.failures != nil {
					c.failures.Inc()
				}
				continue
			}
			captured++
		}
	}
	dep := c.dep.deployer
	if c.rounds != nil {
		c.rounds.Inc()
	}
	if o := dep.o; o != nil {
		o.FlightRec().Record(obs.FlightEvent{
			Kind:   obs.FlightCheckpoint,
			Detail: "checkpoint round",
			Value:  float64(captured),
		})
	}
	return captured
}

// CheckpointInstance captures one instance: pause at a drain boundary,
// snapshot state + cursors, resume. Contention with another pauser
// (a migration, a recovery) is reported as an error, not retried — the
// instance keeps its previous checkpoint.
func (c *Checkpointer) CheckpointInstance(ctx context.Context, st *pipeline.Stage) error {
	if st.State() == pipeline.StateStopped {
		// A finished stage needs no recovery point; its final state
		// already reached downstream.
		return fmt.Errorf("service: checkpoint %s/%d: stage stopped", st.ID(), st.Instance())
	}
	if err := st.Pause(ctx); err != nil {
		return fmt.Errorf("service: checkpoint %s/%d: %w", st.ID(), st.Instance(), err)
	}
	if st.PausedMidEmit() {
		// The goroutine parked inside an emission (blocked push): the
		// user code may be mid-Process, so this pause is not a consistent
		// cut. Skip the round; the instance keeps its previous checkpoint.
		if err := st.Resume(); err != nil {
			return fmt.Errorf("service: checkpoint %s/%d: %w", st.ID(), st.Instance(), err)
		}
		return nil
	}
	cp := Checkpoint{
		Stage:    st.ID(),
		Instance: st.Instance(),
		At:       c.dep.deployer.clk.Now(),
		EmitSeq:  st.EmitSeq(),
		Marks:    st.Marks(),
	}
	var snapErr error
	if snap, ok := st.Snapshotter(); ok {
		var b []byte
		if b, snapErr = snap.Snapshot(); snapErr == nil {
			cp.State = b
			cp.HasState = true
		}
	}
	if err := st.Resume(); err != nil {
		return fmt.Errorf("service: checkpoint %s/%d: %w", st.ID(), st.Instance(), err)
	}
	if snapErr != nil {
		return fmt.Errorf("service: checkpoint %s/%d: snapshot: %w", st.ID(), st.Instance(), snapErr)
	}
	c.store.Put(cp)
	if c.captures != nil {
		c.captures.Inc()
	}
	if c.stateSize != nil {
		c.stateSize.Add(float64(len(cp.State)))
	}
	return nil
}
