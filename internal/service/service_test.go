package service

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/grid"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/pipeline"
)

const testConfigXML = `
<application name="count-test">
  <stage id="producer" code="test/ints" source="true" instances="4">
    <nearSource>stream-1</nearSource>
    <nearSource>stream-2</nearSource>
    <nearSource>stream-3</nearSource>
    <nearSource>stream-4</nearSource>
  </stage>
  <stage id="merge" code="test/count" queueCapacity="64">
    <requirement minCPU="2"/>
  </stage>
  <connection from="producer" to="merge"/>
</application>`

// intsSource emits instance*100+i for i in 0..24.
type intsSource struct{ instance int }

func (s *intsSource) Run(ctx *pipeline.Context, out *pipeline.Emitter) error {
	for i := 0; i < 25; i++ {
		if err := out.EmitValue(s.instance*100+i, 8); err != nil {
			return err
		}
	}
	return nil
}

// countProc counts received packets.
type countProc struct {
	mu sync.Mutex
	n  int
}

func (c *countProc) Init(*pipeline.Context) error { return nil }
func (c *countProc) Process(_ *pipeline.Context, _ *pipeline.Packet, _ *pipeline.Emitter) error {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return nil
}
func (c *countProc) Finish(*pipeline.Context, *pipeline.Emitter) error { return nil }

func (c *countProc) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// testFabric builds the 4-source + central grid used across tests.
func testFabric(t *testing.T) (clock.Clock, *grid.Directory, *Repository, *netsim.Network, *countProc) {
	t.Helper()
	clk := clock.NewScaled(1000)
	dir := grid.NewDirectory()
	for i := 1; i <= 4; i++ {
		if err := dir.Register(grid.Node{
			Name: fmt.Sprintf("src-%d", i), CPUPower: 1, MemoryMB: 512,
			Sources: []string{fmt.Sprintf("stream-%d", i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dir.Register(grid.Node{Name: "central", CPUPower: 4, MemoryMB: 4096, Slots: 4}); err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(clk)
	net.SetDefaultLink(netsim.LinkConfig{Bandwidth: netsim.BW100K})

	repo := NewRepository()
	counter := &countProc{}
	if err := repo.RegisterSource("test/ints", func(inst int) pipeline.Source {
		return &intsSource{instance: inst}
	}); err != nil {
		t.Fatal(err)
	}
	if err := repo.RegisterProcessor("test/count", func(int) pipeline.Processor {
		return counter
	}); err != nil {
		t.Fatal(err)
	}
	return clk, dir, repo, net, counter
}

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfigString(testConfigXML)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "count-test" || len(cfg.Stages) != 2 || len(cfg.Connections) != 1 {
		t.Fatalf("parsed %+v", cfg)
	}
	prod, ok := cfg.Stage("producer")
	if !ok || !prod.Source || prod.EffectiveInstances() != 4 || len(prod.NearSources) != 4 {
		t.Fatalf("producer stage %+v", prod)
	}
	merge, _ := cfg.Stage("merge")
	if merge.QueueCapacity != 64 || merge.Requirement.MinCPU != 2 {
		t.Fatalf("merge stage %+v", merge)
	}
	if _, ok := cfg.Stage("ghost"); ok {
		t.Fatal("ghost stage found")
	}
}

func TestConfigMarshalRoundTrip(t *testing.T) {
	cfg, err := ParseConfigString(testConfigXML)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseConfigString(string(b))
	if err != nil {
		t.Fatal(err)
	}
	if again.Name != cfg.Name || len(again.Stages) != len(cfg.Stages) {
		t.Fatal("round trip lost structure")
	}
}

func TestConfigValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		xml  string
	}{
		{"no name", `<application><stage id="a" code="c" source="true"/></application>`},
		{"no stages", `<application name="x"></application>`},
		{"stage without id", `<application name="x"><stage code="c" source="true"/></application>`},
		{"stage without code", `<application name="x"><stage id="a" source="true"/></application>`},
		{"duplicate ids", `<application name="x"><stage id="a" code="c" source="true"/><stage id="a" code="c"/></application>`},
		{"no source", `<application name="x"><stage id="a" code="c"/></application>`},
		{"unknown from", `<application name="x"><stage id="a" code="c" source="true"/><connection from="z" to="a"/></application>`},
		{"unknown to", `<application name="x"><stage id="a" code="c" source="true"/><connection from="a" to="z"/></application>`},
		{"into source", `<application name="x"><stage id="a" code="c" source="true"/><stage id="b" code="c" source="true"/><connection from="a" to="b"/></application>`},
		{"bad fanout", `<application name="x"><stage id="a" code="c" source="true"/><stage id="b" code="c"/><connection from="a" to="b" fanout="ring"/></application>`},
		{"pairwise mismatch", `<application name="x"><stage id="a" code="c" source="true" instances="3"/><stage id="b" code="c"/><connection from="a" to="b" fanout="pairwise"/></application>`},
		{"hint count mismatch", `<application name="x"><stage id="a" code="c" source="true" instances="2"><nearSource>s1</nearSource></stage></application>`},
	}
	for _, tc := range cases {
		if _, err := ParseConfigString(tc.xml); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestRepository(t *testing.T) {
	r := NewRepository()
	if err := r.RegisterProcessor("", nil); err == nil {
		t.Fatal("empty registration accepted")
	}
	if err := r.RegisterProcessor("p", func(int) pipeline.Processor { return &countProc{} }); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterSource("p", func(int) pipeline.Source { return &intsSource{} }); err == nil {
		t.Fatal("cross-kind duplicate accepted")
	}
	if err := r.RegisterSource("s", func(int) pipeline.Source { return &intsSource{} }); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Processor("p"); !ok {
		t.Fatal("processor lookup failed")
	}
	if _, ok := r.Source("s"); !ok {
		t.Fatal("source lookup failed")
	}
	if _, ok := r.Processor("s"); ok {
		t.Fatal("source visible as processor")
	}
	codes := r.Codes()
	if len(codes) != 2 || codes[0] != "p" || codes[1] != "s" {
		t.Fatalf("Codes = %v", codes)
	}
}

func TestDeployPlacesAndWires(t *testing.T) {
	clk, dir, repo, net, counter := testFabric(t)
	dep, err := NewDeployer(clk, dir, repo, net)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := ParseConfigString(testConfigXML)
	d, err := dep.Deploy(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sources land on their streams' nodes; merge lands on central.
	for i := 0; i < 4; i++ {
		node, ok := d.NodeFor("producer", i)
		if !ok || node != fmt.Sprintf("src-%d", i+1) {
			t.Fatalf("producer %d placed on %q", i, node)
		}
	}
	if node, _ := d.NodeFor("merge", 0); node != "central" {
		t.Fatalf("merge placed on %q, want central", node)
	}
	if _, ok := d.Stage("merge", 0); !ok {
		t.Fatal("merge stage instance missing")
	}
	if _, ok := d.Stage("merge", 1); ok {
		t.Fatal("phantom merge instance")
	}
	if err := d.Engine.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if counter.count() != 100 {
		t.Fatalf("merge received %d packets, want 100", counter.count())
	}
	// Cross-node traffic went over emulated links.
	if net.TotalBytes() == 0 {
		t.Fatal("no bytes on the network despite cross-node edges")
	}
}

func TestDeployUnknownCode(t *testing.T) {
	clk, dir, _, net, _ := testFabric(t)
	dep, _ := NewDeployer(clk, dir, NewRepository(), net)
	cfg, _ := ParseConfigString(testConfigXML)
	if _, err := dep.Deploy(cfg, nil); err == nil || !strings.Contains(err.Error(), "not in repository") {
		t.Fatalf("Deploy with empty repository = %v", err)
	}
}

func TestDeployUnsatisfiableRequirement(t *testing.T) {
	clk, dir, repo, net, _ := testFabric(t)
	dep, _ := NewDeployer(clk, dir, repo, net)
	cfg, _ := ParseConfigString(strings.Replace(testConfigXML, `minCPU="2"`, `minCPU="99"`, 1))
	if _, err := dep.Deploy(cfg, nil); err == nil {
		t.Fatal("impossible requirement deployed")
	}
	// Failed deployment must not leak allocations.
	for i := 1; i <= 4; i++ {
		if dir.Allocated(fmt.Sprintf("src-%d", i)) != 0 {
			t.Fatal("failed deploy leaked a source-node allocation")
		}
	}
}

func TestDeployTuningApplied(t *testing.T) {
	clk, dir, repo, net, _ := testFabric(t)
	dep, _ := NewDeployer(clk, dir, repo, net)
	cfg, _ := ParseConfigString(testConfigXML)
	tuned := 0
	d, err := dep.Deploy(cfg, func(stageID string, instance int) pipeline.StageConfig {
		tuned++
		return pipeline.StageConfig{QueueCapacity: 7}
	})
	if err != nil {
		t.Fatal(err)
	}
	if tuned != 5 {
		t.Fatalf("tuning consulted %d times, want 5", tuned)
	}
	st, _ := d.Stage("merge", 0)
	if st.QueueStats(); st == nil {
		t.Fatal("stage missing")
	}
}

func TestLauncherEndToEnd(t *testing.T) {
	clk, dir, repo, net, counter := testFabric(t)
	dep, _ := NewDeployer(clk, dir, repo, net)
	l, err := NewLauncher(dep)
	if err != nil {
		t.Fatal(err)
	}
	app, err := l.Launch(context.Background(), testConfigXML, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Wait(); err != nil {
		t.Fatal(err)
	}
	if counter.count() != 100 {
		t.Fatalf("received %d packets, want 100", counter.count())
	}
	select {
	case <-app.Done():
	default:
		t.Fatal("Done not closed after Wait")
	}
}

func TestLauncherFromFile(t *testing.T) {
	clk, dir, repo, net, _ := testFabric(t)
	dep, _ := NewDeployer(clk, dir, repo, net)
	l, _ := NewLauncher(dep)
	path := filepath.Join(t.TempDir(), "app.xml")
	if err := os.WriteFile(path, []byte(testConfigXML), 0o644); err != nil {
		t.Fatal(err)
	}
	app, err := l.Launch(context.Background(), path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestLauncherBadLocator(t *testing.T) {
	if _, err := Fetch("/does/not/exist.xml"); err == nil {
		t.Fatal("missing file fetched")
	}
	if _, err := Fetch("<application"); err == nil {
		t.Fatal("broken XML fetched")
	}
}

func TestApplicationStop(t *testing.T) {
	clk, dir, repo, net, _ := testFabric(t)
	// A slow source so the app is still running when we stop it.
	if err := repo.RegisterSource("test/slow", func(inst int) pipeline.Source {
		return &slowSource{}
	}); err != nil {
		t.Fatal(err)
	}
	dep, _ := NewDeployer(clk, dir, repo, net)
	l, _ := NewLauncher(dep)
	cfg := strings.Replace(testConfigXML, "test/ints", "test/slow", 1)
	app, err := l.Launch(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the app is demonstrably mid-flight — the merge stage has
	// consumed at least one packet — rather than sleeping an arbitrary
	// wall-clock interval.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var in uint64
		for _, st := range app.Stages["merge"] {
			in += st.Stats().PacketsIn
		}
		if in > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("app never started flowing")
		}
		time.Sleep(time.Millisecond)
	}
	stopped := make(chan error, 1)
	go func() { stopped <- app.Stop() }()
	select {
	case <-stopped:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop hung")
	}
}

// slowSource emits forever (until canceled), pacing on the virtual clock.
type slowSource struct{}

func (s *slowSource) Run(ctx *pipeline.Context, out *pipeline.Emitter) error {
	for i := 0; ; i++ {
		select {
		case <-ctx.Done():
			return nil
		default:
		}
		ctx.ChargeCompute(100 * time.Millisecond)
		if err := out.EmitValue(i, 8); err != nil {
			return err
		}
	}
}

func TestGroupedFanout(t *testing.T) {
	clk, dir, repo, net, _ := testFabric(t)
	// Two extra counters for the two regional consumers.
	counters := [2]*countProc{{}, {}}
	if err := repo.RegisterProcessor("test/regional", func(inst int) pipeline.Processor {
		return counters[inst]
	}); err != nil {
		t.Fatal(err)
	}
	dep, _ := NewDeployer(clk, dir, repo, net)
	cfg, err := ParseConfigString(`
<application name="grouped">
  <stage id="producer" code="test/ints" source="true" instances="4">
    <nearSource>stream-1</nearSource><nearSource>stream-2</nearSource>
    <nearSource>stream-3</nearSource><nearSource>stream-4</nearSource>
  </stage>
  <stage id="regional" code="test/regional" instances="2"/>
  <connection from="producer" to="regional" fanout="grouped"/>
</application>`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dep.Deploy(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Engine.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Producers 0-1 feed regional 0; producers 2-3 feed regional 1.
	if counters[0].count() != 50 || counters[1].count() != 50 {
		t.Fatalf("grouped split = %d/%d, want 50/50", counters[0].count(), counters[1].count())
	}
}

func TestGroupedFanoutValidation(t *testing.T) {
	_, err := ParseConfigString(`
<application name="bad">
  <stage id="a" code="c" source="true" instances="3"/>
  <stage id="b" code="c" instances="2"/>
  <connection from="a" to="b" fanout="grouped"/>
</application>`)
	if err == nil {
		t.Fatal("indivisible grouped fanout accepted")
	}
}

func TestTopologyAwareDeployment(t *testing.T) {
	// Two sites with a slow WAN: the unhinted aggregator stage must land
	// at the site hosting its producers rather than on the raw-score
	// winner across the WAN.
	clk := clock.NewScaled(1000)
	dir := grid.NewDirectory()
	dir.Register(grid.Node{Name: "remote-src-1", Site: "remote", CPUPower: 1, MemoryMB: 512, Sources: []string{"feed-1"}})
	dir.Register(grid.Node{Name: "remote-src-2", Site: "remote", CPUPower: 1, MemoryMB: 512, Sources: []string{"feed-2"}})
	dir.Register(grid.Node{Name: "remote-hub", Site: "remote", CPUPower: 2, MemoryMB: 2048, Slots: 2})
	// The home hub is "better" by raw score (more CPU, more slots).
	dir.Register(grid.Node{Name: "home-hub", Site: "home", CPUPower: 8, MemoryMB: 8192, Slots: 8})
	net := netsim.NewNetwork(clk)
	remotes := []string{"remote-src-1", "remote-src-2", "remote-hub"}
	for _, a := range remotes {
		for _, b := range remotes {
			if a != b {
				net.Connect(a, b, netsim.LinkConfig{Bandwidth: netsim.BW1M})
			}
		}
		net.Connect(a, "home-hub", netsim.LinkConfig{Bandwidth: netsim.BW1K})
		net.Connect("home-hub", a, netsim.LinkConfig{Bandwidth: netsim.BW1K})
	}

	repo := NewRepository()
	counter := &countProc{}
	repo.RegisterSource("t/ints", func(inst int) pipeline.Source { return &intsSource{instance: inst} })
	repo.RegisterProcessor("t/agg", func(int) pipeline.Processor { return counter })

	cfg, err := ParseConfigString(`
<application name="topo">
  <stage id="feed" code="t/ints" source="true" instances="2">
    <nearSource>feed-1</nearSource><nearSource>feed-2</nearSource>
  </stage>
  <stage id="agg" code="t/agg"/>
  <connection from="feed" to="agg"/>
</application>`)
	if err != nil {
		t.Fatal(err)
	}

	// Without topology awareness the aggregator chases the big home hub.
	dep1, _ := NewDeployer(clk, dir, repo, net)
	d1, err := dep1.Deploy(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if node, _ := d1.NodeFor("agg", 0); node != "home-hub" {
		t.Fatalf("baseline placement = %s, want home-hub (raw score winner)", node)
	}

	// With topology awareness the 1 KB/s WAN penalty pulls it to the
	// producers' site. Fresh directory state: release by re-planning on
	// a clean copy.
	dir2 := grid.NewDirectory()
	dir2.Register(grid.Node{Name: "remote-src-1", Site: "remote", CPUPower: 1, MemoryMB: 512, Sources: []string{"feed-1"}})
	dir2.Register(grid.Node{Name: "remote-src-2", Site: "remote", CPUPower: 1, MemoryMB: 512, Sources: []string{"feed-2"}})
	dir2.Register(grid.Node{Name: "remote-hub", Site: "remote", CPUPower: 2, MemoryMB: 2048, Slots: 2})
	dir2.Register(grid.Node{Name: "home-hub", Site: "home", CPUPower: 8, MemoryMB: 8192, Slots: 8})
	dep2, _ := NewDeployer(clk, dir2, repo, net)
	dep2.SetTopologyAware(true)
	d2, err := dep2.Deploy(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if node, _ := d2.NodeFor("agg", 0); node != "remote-hub" {
		t.Fatalf("topology-aware placement = %s, want remote-hub", node)
	}
	if err := d2.Engine.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if counter.count() != 50 {
		t.Fatalf("aggregator saw %d packets, want 50", counter.count())
	}
}

func TestFetchOverHTTP(t *testing.T) {
	// The paper's workflow: the developer hosts the descriptor on a web
	// server and the user hands its URL to the Launcher.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/app.xml" {
			fmt.Fprint(w, testConfigXML)
			return
		}
		http.NotFound(w, r)
	}))
	defer srv.Close()

	cfg, err := Fetch(srv.URL + "/app.xml")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "count-test" {
		t.Fatalf("fetched config %q", cfg.Name)
	}
	if _, err := Fetch(srv.URL + "/missing.xml"); err == nil {
		t.Fatal("HTTP 404 fetched successfully")
	}
}

func TestLaunchFromURL(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, testConfigXML)
	}))
	defer srv.Close()
	clk, dir, repo, net, counter := testFabric(t)
	dep, _ := NewDeployer(clk, dir, repo, net)
	l, _ := NewLauncher(dep)
	app, err := l.Launch(context.Background(), srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Wait(); err != nil {
		t.Fatal(err)
	}
	if counter.count() != 100 {
		t.Fatalf("received %d packets, want 100", counter.count())
	}
}
