package service

import (
	"fmt"
	"sort"
	"sync"

	"github.com/gates-middleware/gates/internal/pipeline"
)

// ProcessorFactory builds one processor instance for a stage ordinal. The
// Deployer calls it once per deployed instance — the analog of retrieving
// the stage's class files from the application repository and loading them
// into a grid-service instance. (Go has no dynamic code loading; the factory
// registry preserves the deployment mechanics without mobile code — see
// DESIGN.md, substitutions.)
type ProcessorFactory func(instance int) pipeline.Processor

// SourceFactory builds one source instance for a stage ordinal.
type SourceFactory func(instance int) pipeline.Source

// Repository is the application repository: the named store of stage codes
// that the Deployer pulls from. It is safe for concurrent use.
type Repository struct {
	mu    sync.RWMutex
	procs map[string]ProcessorFactory
	srcs  map[string]SourceFactory
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{
		procs: make(map[string]ProcessorFactory),
		srcs:  make(map[string]SourceFactory),
	}
}

// RegisterProcessor stores a processor factory under code. Codes are a
// single namespace across processors and sources; duplicates error.
func (r *Repository) RegisterProcessor(code string, f ProcessorFactory) error {
	if code == "" || f == nil {
		return fmt.Errorf("service: RegisterProcessor needs a code and factory")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.exists(code) {
		return fmt.Errorf("service: code %q already registered", code)
	}
	r.procs[code] = f
	return nil
}

// RegisterSource stores a source factory under code.
func (r *Repository) RegisterSource(code string, f SourceFactory) error {
	if code == "" || f == nil {
		return fmt.Errorf("service: RegisterSource needs a code and factory")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.exists(code) {
		return fmt.Errorf("service: code %q already registered", code)
	}
	r.srcs[code] = f
	return nil
}

func (r *Repository) exists(code string) bool {
	_, p := r.procs[code]
	_, s := r.srcs[code]
	return p || s
}

// Processor fetches a processor factory.
func (r *Repository) Processor(code string) (ProcessorFactory, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.procs[code]
	return f, ok
}

// Source fetches a source factory.
func (r *Repository) Source(code string) (SourceFactory, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.srcs[code]
	return f, ok
}

// Codes lists every registered code, sorted.
func (r *Repository) Codes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.procs)+len(r.srcs))
	for c := range r.procs {
		out = append(out, c)
	}
	for c := range r.srcs {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
