package service

import (
	"context"
	"sync/atomic"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/policy"
)

// RebalancerConfig tunes a Rebalancer. The zero value selects the defaults
// documented per field.
//
// Deprecated shim: the config compiles into a policy.Document (see
// PolicyDocument) loaded into a private engine, so the rebalancer itself
// holds no numeric control constants. New code hands a shared, hot-reloadable
// engine to NewPolicyRebalancer instead.
type RebalancerConfig struct {
	// Interval is the virtual time between placement sweeps. Zero selects
	// policy.DefaultRebalanceInterval.
	Interval time.Duration
	// Threshold is how much worse (as a ratio) the current placement's
	// link cost must be than the best alternative before a move is worth
	// its disruption. Zero selects policy.DefaultRebalanceThreshold;
	// values <= 1 migrate on any improvement.
	Threshold float64
	// Cooldown is the minimum virtual time between two migrations of the
	// same instance. Zero selects Interval.
	Cooldown time.Duration
	// MaxMigrations caps the total moves the rebalancer will perform.
	// Zero means unlimited.
	MaxMigrations int
	// Stages restricts the sweep to the named stage ids. Empty means
	// every non-source stage.
	Stages []string
}

// PolicyDocument compiles the config into its declarative form — the
// rebalance section of a policy document under version "config". Zero and
// out-of-range fields are left zero so Normalize fills the documented
// defaults (negative values previously meant "use the default" too).
func (c RebalancerConfig) PolicyDocument() policy.Document {
	doc := policy.Document{Version: "config"}
	if c.Interval > 0 {
		doc.Rebalance.Interval = policy.Duration(c.Interval)
	}
	if c.Threshold > 0 {
		doc.Rebalance.Threshold = c.Threshold
	}
	if c.Cooldown > 0 {
		doc.Rebalance.Cooldown = policy.Duration(c.Cooldown)
	}
	if c.MaxMigrations > 0 {
		doc.Rebalance.MigrationBudget = c.MaxMigrations
	}
	doc.Rebalance.Stages = c.Stages
	doc.Normalize()
	return doc
}

// Rebalancer watches the deployment's placement against the directory and
// network state and re-deploys stage instances whose communication cost
// has deteriorated — the dynamic half of the paper's resource-aware
// deployment: matching is not a one-shot decision but a standing
// constraint the middleware keeps enforcing as grid conditions change.
//
// Cost model: an instance's placement cost is the sum over its plan wires
// of LinkCostWeight/bandwidth for each inter-node link it uses (co-located
// wires and unlimited links cost zero). When the current node's cost
// exceeds Threshold × the best candidate node's cost, the instance
// migrates there.
//
// Every control constant — interval, threshold, cooldown, budget, stage
// scope, link-cost weight — is read from the policy engine at the start of
// each sweep, so a hot reload changes the very next decision; and every
// evaluation (move, skip, or budget halt) lands in the decision log with
// the inputs it was judged on and the policy version that judged it.
type Rebalancer struct {
	dep  *Deployment
	pol  *policy.Engine
	done chan struct{}

	migrations atomic.Int64
	haltLogged atomic.Bool
	lastMove   map[instRef]time.Time
}

// NewRebalancer returns a rebalancer over dep driven by a static config:
// the config compiles into a private policy engine so the decision path is
// identical to a policy-driven deployment, including decision logging when
// the deployment is observed. The deployment must have been built by a
// Deployer (Deploy or Apply).
//
// Deprecated shim: use NewPolicyRebalancer with a shared engine for
// hot-reloadable policies.
func NewRebalancer(dep *Deployment, cfg RebalancerConfig) *Rebalancer {
	var clk clock.Clock
	var o *obs.Observability
	if dep != nil && dep.deployer != nil {
		clk, o = dep.deployer.clk, dep.deployer.o
	}
	eng := policy.New(clk, o)
	// Compiled documents always normalize into validity; Load cannot fail.
	_ = eng.Load(cfg.PolicyDocument(), "config")
	return NewPolicyRebalancer(dep, eng)
}

// NewPolicyRebalancer returns a rebalancer over dep that reads every
// control constant from eng at each sweep. A nil engine behaves as the
// default policy.
func NewPolicyRebalancer(dep *Deployment, eng *policy.Engine) *Rebalancer {
	return &Rebalancer{
		dep:      dep,
		pol:      eng,
		done:     make(chan struct{}),
		lastMove: make(map[instRef]time.Time),
	}
}

// Policy returns the engine driving this rebalancer (the private compiled
// one for config-built rebalancers).
func (r *Rebalancer) Policy() *policy.Engine { return r.pol }

// Migrations returns how many moves the rebalancer has performed.
func (r *Rebalancer) Migrations() int { return int(r.migrations.Load()) }

// Stop ends the Run loop at its next wakeup.
func (r *Rebalancer) Stop() {
	select {
	case <-r.done:
	default:
		close(r.done)
	}
}

// Run sweeps placements every policy interval until ctx is canceled, Stop
// is called, or the migration budget is exhausted. Call it in its own
// goroutine alongside Engine.Run.
func (r *Rebalancer) Run(ctx context.Context) {
	if r.dep == nil || r.dep.deployer == nil {
		return
	}
	labelControlPlane()
	clk := r.dep.deployer.clk
	for {
		// Re-read the interval every lap so a hot reload re-paces the loop.
		pol, _ := r.pol.Rebalance()
		select {
		case <-ctx.Done():
			return
		case <-r.done:
			return
		case <-clk.After(pol.Interval.Std()):
		}
		r.sweep(ctx)
		if r.budgetExhausted() {
			return
		}
	}
}

// budgetExhausted reports whether the policy's migration budget is spent,
// logging the halt decision the first time it trips.
func (r *Rebalancer) budgetExhausted() bool {
	pol, version := r.pol.Rebalance()
	if pol.MigrationBudget <= 0 || int(r.migrations.Load()) < pol.MigrationBudget {
		return false
	}
	if r.haltLogged.CompareAndSwap(false, true) {
		r.pol.RecordDecision(obs.DecisionEvent{
			Kind:          obs.DecisionRebalance,
			PolicyVersion: version,
			Rule:          "migration-budget",
			Outcome:       "halt",
			Input: map[string]any{
				"budget":     pol.MigrationBudget,
				"migrations": r.migrations.Load(),
			},
		})
	}
	return true
}

// sweep examines every eligible instance once and migrates the worst
// offender it finds (one move per sweep keeps the cost model honest: each
// move changes the link usage the next evaluation sees). Every evaluated
// instance produces one decision-log entry: a move, or a skip naming the
// rule that suppressed it.
func (r *Rebalancer) sweep(ctx context.Context) {
	dep := r.dep
	d := dep.deployer
	pol, version := r.pol.Rebalance()
	plc, _ := r.pol.Placement()
	now := d.clk.Now()
	for _, stageID := range r.stageIDs(pol) {
		insts := dep.Stages[stageID]
		for i, st := range insts {
			if st.IsSource() || st.State() == pipeline.StateStopped {
				continue
			}
			ref := instRef{stage: stageID, instance: i}
			if last, ok := r.lastMove[ref]; ok && now.Sub(last) < pol.Cooldown.Std() {
				r.pol.RecordDecision(obs.DecisionEvent{
					At:            now,
					Kind:          obs.DecisionRebalance,
					PolicyVersion: version,
					Rule:          "cooldown",
					Stage:         stageID,
					Instance:      i,
					Node:          st.Node(),
					Outcome:       "skip",
					Input: map[string]any{
						"cooldown":        pol.Cooldown.Std().String(),
						"since_last_move": now.Sub(last).String(),
					},
				})
				continue
			}
			cur := st.Node()
			curCost := r.placementCost(stageID, i, cur, plc.LinkCostWeight)
			bestNode, bestCost := cur, curCost
			req, _ := dep.planRequirement(stageID, i)
			req.NearSource = ""
			for _, n := range d.dir.Query(req) {
				if n.Name == cur {
					continue
				}
				if c := r.placementCost(stageID, i, n.Name, plc.LinkCostWeight); c < bestCost {
					bestNode, bestCost = n.Name, c
				}
			}
			if bestNode == cur || curCost <= pol.Threshold*bestCost {
				rule := "already-optimal"
				if bestNode != cur {
					rule = "below-threshold"
				}
				r.pol.RecordDecision(obs.DecisionEvent{
					At:            now,
					Kind:          obs.DecisionRebalance,
					PolicyVersion: version,
					Rule:          rule,
					Stage:         stageID,
					Instance:      i,
					Node:          cur,
					Outcome:       "skip",
					Input: map[string]any{
						"cur_cost":  curCost,
						"best_cost": bestCost,
						"best_node": bestNode,
						"threshold": pol.Threshold,
					},
				})
				continue
			}
			if err := dep.migrate(ctx, stageID, i, bestNode, "rebalance"); err != nil {
				d.o.Log().Warn("rebalance migration failed",
					"stage", stageID, "instance", i, "to", bestNode, "err", err)
				r.pol.RecordDecision(obs.DecisionEvent{
					At:            now,
					Kind:          obs.DecisionRebalance,
					PolicyVersion: version,
					Rule:          "cost-threshold",
					Stage:         stageID,
					Instance:      i,
					Node:          cur,
					Outcome:       "move-failed",
					Input:         map[string]any{"to": bestNode, "error": err.Error()},
				})
				continue
			}
			r.lastMove[ref] = now
			r.migrations.Add(1)
			r.pol.RecordDecision(obs.DecisionEvent{
				At:            now,
				Kind:          obs.DecisionRebalance,
				PolicyVersion: version,
				Rule:          "cost-threshold",
				Stage:         stageID,
				Instance:      i,
				Node:          bestNode,
				Outcome:       "move",
				Input: map[string]any{
					"from":      cur,
					"to":        bestNode,
					"cur_cost":  curCost,
					"best_cost": bestCost,
					"threshold": pol.Threshold,
				},
			})
			if r.budgetExhausted() {
				return
			}
			return // one move per sweep
		}
	}
}

// placementCost sums weight/bandwidth over the instance's plan wires
// assuming it runs on node; peers are read from the live placement index.
// weight is the policy's link-cost weight (it scales every term uniformly,
// so the argmin is weight-independent, but logged costs and threshold
// comparisons see the operator's units).
func (r *Rebalancer) placementCost(stageID string, instance int, node string, weight float64) float64 {
	dep := r.dep
	if dep.Plan == nil {
		return 0
	}
	if weight == 0 {
		weight = policy.DefaultLinkCostWeight
	}
	var cost float64
	for _, w := range dep.Plan.Wires {
		var peerStage string
		var peerInst int
		var outbound bool
		switch {
		case w.FromStage == stageID && w.FromInstance == instance:
			peerStage, peerInst, outbound = w.ToStage, w.ToInstance, true
		case w.ToStage == stageID && w.ToInstance == instance:
			peerStage, peerInst = w.FromStage, w.FromInstance
		default:
			continue
		}
		peer, ok := dep.NodeFor(peerStage, peerInst)
		if !ok || peer == node {
			continue
		}
		// Cost the link in the direction the data actually flows: links
		// are directional, and an asymmetric slowdown (the case migration
		// exists for) must not be hidden by reading the reverse link.
		from, to := peer, node
		if outbound {
			from, to = node, peer
		}
		bw := dep.deployer.net.Link(from, to).Config().Bandwidth
		if bw > 0 {
			cost += weight / float64(bw)
		}
	}
	return cost
}

// stageIDs returns the stages the sweep covers under pol.
func (r *Rebalancer) stageIDs(pol policy.RebalancePolicy) []string {
	if len(pol.Stages) > 0 {
		return pol.Stages
	}
	ids := make([]string, 0, len(r.dep.Stages))
	for i := range r.dep.Config.Stages {
		ids = append(ids, r.dep.Config.Stages[i].ID)
	}
	return ids
}
