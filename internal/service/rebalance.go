package service

import (
	"context"
	"sync/atomic"
	"time"

	"github.com/gates-middleware/gates/internal/pipeline"
)

// RebalancerConfig tunes a Rebalancer. The zero value selects the defaults
// documented per field.
type RebalancerConfig struct {
	// Interval is the virtual time between placement sweeps. Zero selects
	// 2s.
	Interval time.Duration
	// Threshold is how much worse (as a ratio) the current placement's
	// link cost must be than the best alternative before a move is worth
	// its disruption. Zero selects 2.0; values <= 1 migrate on any
	// improvement.
	Threshold float64
	// Cooldown is the minimum virtual time between two migrations of the
	// same instance. Zero selects Interval.
	Cooldown time.Duration
	// MaxMigrations caps the total moves the rebalancer will perform.
	// Zero means unlimited.
	MaxMigrations int
	// Stages restricts the sweep to the named stage ids. Empty means
	// every non-source stage.
	Stages []string
}

// Rebalancer watches the deployment's placement against the directory and
// network state and re-deploys stage instances whose communication cost
// has deteriorated — the dynamic half of the paper's resource-aware
// deployment: matching is not a one-shot decision but a standing
// constraint the middleware keeps enforcing as grid conditions change.
//
// Cost model: an instance's placement cost is the sum over its plan wires
// of 1/bandwidth for each inter-node link it uses (co-located wires and
// unlimited links cost zero). When the current node's cost exceeds
// Threshold × the best candidate node's cost, the instance migrates there.
type Rebalancer struct {
	dep  *Deployment
	cfg  RebalancerConfig
	done chan struct{}

	migrations atomic.Int64
	lastMove   map[instRef]time.Time
}

// NewRebalancer returns a rebalancer over dep. The deployment must have
// been built by a Deployer (Deploy or Apply).
func NewRebalancer(dep *Deployment, cfg RebalancerConfig) *Rebalancer {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 2.0
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = cfg.Interval
	}
	return &Rebalancer{
		dep:      dep,
		cfg:      cfg,
		done:     make(chan struct{}),
		lastMove: make(map[instRef]time.Time),
	}
}

// Migrations returns how many moves the rebalancer has performed.
func (r *Rebalancer) Migrations() int { return int(r.migrations.Load()) }

// Stop ends the Run loop at its next wakeup.
func (r *Rebalancer) Stop() {
	select {
	case <-r.done:
	default:
		close(r.done)
	}
}

// Run sweeps placements every Interval until ctx is canceled or Stop is
// called. Call it in its own goroutine alongside Engine.Run.
func (r *Rebalancer) Run(ctx context.Context) {
	if r.dep == nil || r.dep.deployer == nil {
		return
	}
	clk := r.dep.deployer.clk
	for {
		select {
		case <-ctx.Done():
			return
		case <-r.done:
			return
		case <-clk.After(r.cfg.Interval):
		}
		r.sweep(ctx)
		if r.cfg.MaxMigrations > 0 && int(r.migrations.Load()) >= r.cfg.MaxMigrations {
			return
		}
	}
}

// sweep examines every eligible instance once and migrates the worst
// offender it finds (one move per sweep keeps the cost model honest: each
// move changes the link usage the next evaluation sees).
func (r *Rebalancer) sweep(ctx context.Context) {
	dep := r.dep
	d := dep.deployer
	now := d.clk.Now()
	for _, stageID := range r.stageIDs() {
		insts := dep.Stages[stageID]
		for i, st := range insts {
			if st.IsSource() || st.State() == pipeline.StateStopped {
				continue
			}
			ref := instRef{stage: stageID, instance: i}
			if last, ok := r.lastMove[ref]; ok && now.Sub(last) < r.cfg.Cooldown {
				continue
			}
			cur := st.Node()
			curCost := r.placementCost(stageID, i, cur)
			bestNode, bestCost := cur, curCost
			req, _ := dep.planRequirement(stageID, i)
			req.NearSource = ""
			for _, n := range d.dir.Query(req) {
				if n.Name == cur {
					continue
				}
				if c := r.placementCost(stageID, i, n.Name); c < bestCost {
					bestNode, bestCost = n.Name, c
				}
			}
			if bestNode == cur || curCost <= r.cfg.Threshold*bestCost {
				continue
			}
			if err := dep.migrate(ctx, stageID, i, bestNode, "rebalance"); err != nil {
				d.o.Log().Warn("rebalance migration failed",
					"stage", stageID, "instance", i, "to", bestNode, "err", err)
				continue
			}
			r.lastMove[ref] = now
			r.migrations.Add(1)
			if r.cfg.MaxMigrations > 0 && int(r.migrations.Load()) >= r.cfg.MaxMigrations {
				return
			}
			return // one move per sweep
		}
	}
}

// placementCost sums 1/bandwidth over the instance's plan wires assuming
// it runs on node; peers are read from the live placement index.
func (r *Rebalancer) placementCost(stageID string, instance int, node string) float64 {
	dep := r.dep
	if dep.Plan == nil {
		return 0
	}
	var cost float64
	for _, w := range dep.Plan.Wires {
		var peerStage string
		var peerInst int
		var outbound bool
		switch {
		case w.FromStage == stageID && w.FromInstance == instance:
			peerStage, peerInst, outbound = w.ToStage, w.ToInstance, true
		case w.ToStage == stageID && w.ToInstance == instance:
			peerStage, peerInst = w.FromStage, w.FromInstance
		default:
			continue
		}
		peer, ok := dep.NodeFor(peerStage, peerInst)
		if !ok || peer == node {
			continue
		}
		// Cost the link in the direction the data actually flows: links
		// are directional, and an asymmetric slowdown (the case migration
		// exists for) must not be hidden by reading the reverse link.
		from, to := peer, node
		if outbound {
			from, to = node, peer
		}
		bw := dep.deployer.net.Link(from, to).Config().Bandwidth
		if bw > 0 {
			cost += 1 / float64(bw)
		}
	}
	return cost
}

// stageIDs returns the stages the sweep covers.
func (r *Rebalancer) stageIDs() []string {
	if len(r.cfg.Stages) > 0 {
		return r.cfg.Stages
	}
	ids := make([]string, 0, len(r.dep.Stages))
	for i := range r.dep.Config.Stages {
		ids = append(ids, r.dep.Config.Stages[i].ID)
	}
	return ids
}
