package service

import (
	"encoding/json"
	"testing"

	"github.com/gates-middleware/gates/internal/pipeline"
)

const linearConfigXML = `
<application name="linear-test">
  <stage id="producer" code="test/ints" source="true">
    <nearSource>stream-1</nearSource>
  </stage>
  <stage id="filter" code="test/count"/>
  <stage id="sink" code="test/count"/>
  <connection from="producer" to="filter"/>
  <connection from="filter" to="sink"/>
</application>`

// TestPlanQueueChoices checks the Plan-time half of ring selection: a
// fan-in consumer gets MPSC, single-feeder consumers get SPSC, and source
// stages carry no choice at all.
func TestPlanQueueChoices(t *testing.T) {
	clk, dir, _, net, _ := testFabric(t)
	_ = clk

	planner, err := NewPlanner(dir, net)
	if err != nil {
		t.Fatal(err)
	}

	// 4 producer instances all feed merge/0: MPSC.
	cfg, err := ParseConfigString(testConfigXML)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := planner.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer planner.Release(plan)
	if len(plan.Queues) != 1 {
		t.Fatalf("plan.Queues = %+v, want exactly the merge consumer", plan.Queues)
	}
	if k, ok := plan.QueueKindFor("merge", 0); !ok || k != pipeline.QueueMPSC {
		t.Fatalf("merge/0 queue = %v (ok=%v), want mpsc", k, ok)
	}
	if _, ok := plan.QueueKindFor("producer", 0); ok {
		t.Fatal("source stage carries a queue choice")
	}
	if _, ok := plan.QueueKindFor("ghost", 0); ok {
		t.Fatal("unknown stage carries a queue choice")
	}

	// Linear 1:1 chain: every consumer is SPSC.
	lin, err := ParseConfigString(linearConfigXML)
	if err != nil {
		t.Fatal(err)
	}
	linPlan, err := planner.Plan(lin)
	if err != nil {
		t.Fatal(err)
	}
	defer planner.Release(linPlan)
	for _, stage := range []string{"filter", "sink"} {
		if k, ok := linPlan.QueueKindFor(stage, 0); !ok || k != pipeline.QueueSPSC {
			t.Fatalf("%s/0 queue = %v (ok=%v), want spsc", stage, k, ok)
		}
	}
}

// TestPlanQueuesJSONRoundTrip: plans are serialized for inspection and
// diffing; the queue choices must survive the trip and old plans without
// them must still load.
func TestPlanQueuesJSONRoundTrip(t *testing.T) {
	_, dir, _, net, _ := testFabric(t)
	planner, err := NewPlanner(dir, net)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseConfigString(testConfigXML)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := planner.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer planner.Release(plan)

	b, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	var back Plan
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if k, ok := back.QueueKindFor("merge", 0); !ok || k != pipeline.QueueMPSC {
		t.Fatalf("round-tripped merge/0 queue = %v (ok=%v), want mpsc", k, ok)
	}

	// A plan serialized before queue planning existed has no queues field;
	// QueueKindFor must report absence, not invent a kind.
	var legacy Plan
	if err := json.Unmarshal([]byte(`{"app":"old","assignments":[],"wires":[]}`), &legacy); err != nil {
		t.Fatal(err)
	}
	if _, ok := legacy.QueueKindFor("merge", 0); ok {
		t.Fatal("legacy plan reported a queue choice")
	}
}
