package service

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/apps/countsamps"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/grid"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/workload"
)

// gatedSource emits a fixed stream but parks halfway: it closes reached
// after emitting half the items and waits for release before continuing —
// the hook that lets a test migrate a downstream stage at a deterministic
// mid-stream point.
type gatedSource struct {
	values  []int
	reached chan struct{}
	release chan struct{}
}

func (g *gatedSource) Run(_ *pipeline.Context, out *pipeline.Emitter) error {
	half := len(g.values) / 2
	for i, v := range g.values {
		if i == half {
			close(g.reached)
			<-g.release
		}
		if err := out.Emit(&pipeline.Packet{Value: []int{v}, Items: 1, WireSize: 8}); err != nil {
			return err
		}
	}
	return nil
}

// migrationFixture is one deployed gated count-samps pipeline on a manual
// clock: stream/0 on src-1 feeds summarize/0 (src-1) feeds central.
// Nothing in it sleeps — links are unlimited, compute costs zero, the
// adaptation loops disabled — so the run is fully deterministic.
type migrationFixture struct {
	app    *Application
	o      *obs.Observability
	src    *gatedSource
	merger *countsamps.SummaryMerger
	items  int
}

func newMigrationFixture(t *testing.T) *migrationFixture {
	t.Helper()
	clk := clock.NewManual()
	dir := grid.NewDirectory()
	for _, n := range []grid.Node{
		{Name: "src-1", CPUPower: 1, MemoryMB: 512, Slots: 2, Sources: []string{"stream-1"}},
		{Name: "helper", CPUPower: 1, MemoryMB: 512, Slots: 2},
		{Name: "central", CPUPower: 4, MemoryMB: 4096, Slots: 2},
	} {
		if err := dir.Register(n); err != nil {
			t.Fatal(err)
		}
	}
	net := netsim.NewNetwork(clk) // all links unlimited: transfers never sleep

	const items = 2000
	values := make([]int, items)
	for i := range values {
		values[i] = (i * 7) % 100
	}
	src := &gatedSource{
		values:  values,
		reached: make(chan struct{}),
		release: make(chan struct{}),
	}
	merger := &countsamps.SummaryMerger{}
	repo := NewRepository()
	if err := repo.RegisterSource("test/gated", func(int) pipeline.Source { return src }); err != nil {
		t.Fatal(err)
	}
	if err := repo.RegisterProcessor("test/summarize", func(inst int) pipeline.Processor {
		return countsamps.NewSummarizer(countsamps.SummarizerConfig{
			FlushEvery: 250,
			Adaptive:   true, // the controller state that must survive a move
			Seed:       42,
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := repo.RegisterProcessor("test/merge", func(int) pipeline.Processor { return merger }); err != nil {
		t.Fatal(err)
	}

	dep, err := NewDeployer(clk, dir, repo, net)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New(clk, obs.Config{})
	dep.SetObservability(o)
	launcher, err := NewLauncher(dep)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &AppConfig{
		Name: "migrate-test",
		Stages: []StageDef{
			{ID: "stream", Code: "test/gated", Source: true, NearSources: []string{"stream-1"}},
			{ID: "summarize", Code: "test/summarize", NearSources: []string{"stream-1"}},
			{ID: "central", Code: "test/merge", Requirement: ReqDef{MinCPU: 2}},
		},
		Connections: []ConnDef{
			{From: "stream", To: "summarize"},
			{From: "summarize", To: "central"},
		},
	}
	tuning := func(string, int) pipeline.StageConfig {
		return pipeline.StageConfig{DisableAdaptation: true}
	}
	app, err := launcher.LaunchConfig(context.Background(), cfg, tuning)
	if err != nil {
		t.Fatal(err)
	}
	return &migrationFixture{app: app, o: o, src: src, merger: merger, items: items}
}

// run drives the fixture to completion, invoking mid (may be nil) at the
// gated halfway point, and returns the merger's final top-10.
func (f *migrationFixture) run(t *testing.T, mid func()) []workload.ValueCount {
	t.Helper()
	<-f.src.reached
	if mid != nil {
		mid()
	}
	close(f.src.release)
	if err := f.app.Wait(); err != nil {
		t.Fatal(err)
	}
	return f.merger.TopK(10)
}

// TestMigrationZeroLoss migrates a live count-samps summarizer mid-stream
// and checks the full acceptance surface: no packet lost, results
// bit-identical to an unmigrated baseline, the drain→pause→resume
// transitions in the lifecycle trail, the migration event recorded, the
// placement index updated, and the adaptation controller intact.
func TestMigrationZeroLoss(t *testing.T) {
	base := newMigrationFixture(t)
	baseline := base.run(t, nil)

	f := newMigrationFixture(t)
	dep := f.app.Deployment
	if node, _ := dep.NodeFor("summarize", 0); node != "src-1" {
		t.Fatalf("summarize/0 planned on %s, want src-1", node)
	}
	var paramBefore float64
	topk := f.run(t, func() {
		st, _ := dep.Stage("summarize", 0)
		p, ok := st.Controller().Param("summary-size")
		if !ok {
			t.Fatal("summary-size parameter not registered")
		}
		paramBefore = p.Value()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := dep.Migrate(ctx, "summarize", 0, "helper"); err != nil {
			t.Fatalf("migrate: %v", err)
		}
	})

	// Zero loss: every emitted packet was consumed downstream.
	stream, _ := dep.Stage("stream", 0)
	summarize, _ := dep.Stage("summarize", 0)
	central, _ := dep.Stage("central", 0)
	if got, want := summarize.Stats().PacketsIn, stream.Stats().PacketsOut; got != want {
		t.Errorf("summarize consumed %d packets, stream emitted %d", got, want)
	}
	if got, want := central.Stats().PacketsIn, summarize.Stats().PacketsOut; got != want {
		t.Errorf("central consumed %d packets, summarize emitted %d", got, want)
	}
	if got, want := summarize.Stats().ItemsIn, uint64(f.items); got != want {
		t.Errorf("summarize consumed %d items, want %d", got, want)
	}
	if got := f.merger.Sources(); got != 1 {
		t.Errorf("merger saw %d sources, want 1", got)
	}

	// The migrated run's answer is bit-identical to the unmigrated one:
	// the sketch's RNG position moved with it.
	if !reflect.DeepEqual(topk, baseline) {
		t.Errorf("migrated top-10 %v differs from baseline %v", topk, baseline)
	}

	// Placement records track the move.
	if node, _ := dep.NodeFor("summarize", 0); node != "helper" {
		t.Errorf("NodeFor after migration = %s, want helper", node)
	}
	if node, _ := dep.Plan.NodeFor("summarize", 0); node != "helper" {
		t.Errorf("plan node after migration = %s, want helper", node)
	}

	// The controller (and its tuned parameter) survived in place.
	p, ok := summarize.Controller().Param("summary-size")
	if !ok {
		t.Fatal("summary-size parameter lost in migration")
	}
	if p.Value() != paramBefore {
		t.Errorf("parameter value %v changed across migration from %v", p.Value(), paramBefore)
	}

	// The audit trails recorded the move and the drain→resume signature.
	ev, ok := f.o.Migrations.Last()
	if !ok {
		t.Fatal("no migration event recorded")
	}
	if ev.Stage != "summarize" || ev.From != "src-1" || ev.To != "helper" || ev.Reason != "manual" {
		t.Errorf("migration event %+v", ev)
	}
	if ev.StateBytes == 0 {
		t.Error("migration event records no moved state")
	}
	var transitions []string
	for _, le := range f.o.Lifecycle.ForStage("summarize", 0) {
		transitions = append(transitions, le.From+">"+le.To)
	}
	want := []string{"init>running", "running>draining", "draining>paused", "paused>running", "running>stopped"}
	if !reflect.DeepEqual(transitions, want) {
		t.Errorf("lifecycle transitions %v, want %v", transitions, want)
	}
}

// TestMigrateErrors covers the refusal paths: unknown instance, a full
// destination, and a same-node no-op.
func TestMigrateErrors(t *testing.T) {
	f := newMigrationFixture(t)
	dep := f.app.Deployment
	ctx := context.Background()
	if err := dep.Migrate(ctx, "ghost", 0, "helper"); err == nil {
		t.Error("migrating unknown stage succeeded")
	}
	if err := dep.Migrate(ctx, "summarize", 0, "src-1"); err != nil {
		t.Errorf("same-node migration should be a no-op, got %v", err)
	}
	// Exhaust the helper's two slots, then try to move there.
	if err := dep.deployer.dir.Allocate("helper", grid.Requirement{}); err != nil {
		t.Fatal(err)
	}
	if err := dep.deployer.dir.Allocate("helper", grid.Requirement{}); err != nil {
		t.Fatal(err)
	}
	if err := dep.Migrate(ctx, "summarize", 0, "helper"); err == nil {
		t.Error("migration to a full node succeeded")
	}
	f.run(t, nil)
}

// TestPlanApplySplit checks the decision/execution split: Plan is
// serializable and diffable, Apply materializes it, and an unapplied plan's
// reservations can be released.
func TestPlanApplySplit(t *testing.T) {
	clk, dir, repo, net, counter := testFabric(t)
	dep, err := NewDeployer(clk, dir, repo, net)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseConfigString(testConfigXML)
	if err != nil {
		t.Fatal(err)
	}

	plan, err := dep.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Assignments) != 5 || len(plan.Wires) != 4 {
		t.Fatalf("plan has %d assignments, %d wires", len(plan.Assignments), len(plan.Wires))
	}
	for i := 0; i < 4; i++ {
		want := "src-" + string(rune('1'+i))
		if node, _ := plan.NodeFor("producer", i); node != want {
			t.Errorf("producer/%d planned on %s, want %s", i, node, want)
		}
	}
	if node, _ := plan.NodeFor("merge", 0); node != "central" {
		t.Errorf("merge planned on %v, want central", node)
	}

	// Serializable: the plan survives a JSON round trip.
	raw, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	var restored Plan
	if err := json.Unmarshal(raw, &restored); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&restored, plan) {
		t.Errorf("plan changed across JSON round trip:\n%+v\n%+v", restored, plan)
	}

	// Diffable: against a re-homed copy, exactly the changed instance moves.
	moved := restored
	moved.Assignments = append([]Assignment(nil), plan.Assignments...)
	for i := range moved.Assignments {
		if moved.Assignments[i].StageID == "merge" {
			moved.Assignments[i].Node = "src-1"
		}
	}
	diff := plan.Diff(&moved)
	if len(diff) != 1 || diff[0].StageID != "merge" || diff[0].From != "central" || diff[0].To != "src-1" {
		t.Errorf("diff %+v", diff)
	}

	// Apply executes the reserved plan; the deployment runs end to end.
	deployment, err := dep.Apply(cfg, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := deployment.Engine.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if counter.count() != 100 {
		t.Errorf("merge received %d packets, want 100", counter.count())
	}

	// A second plan of the same app must fail while reservations are held
	// (the source nodes have a single slot each), and succeed once released.
	if _, err := dep.Plan(cfg); err == nil {
		t.Error("re-planning over held reservations succeeded")
	}
	dep.Planner().Release(plan)
	plan2, err := dep.Plan(cfg)
	if err != nil {
		t.Fatalf("re-plan after release: %v", err)
	}
	dep.Planner().Release(plan2)
}
