package service

import (
	"errors"
	"fmt"

	"github.com/gates-middleware/gates/internal/grid"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/policy"
)

// Assignment pins one stage instance to a grid node, carrying the
// requirement the node was matched against so the reservation can be
// released or re-established later.
type Assignment struct {
	StageID  string           `json:"stage"`
	Instance int              `json:"instance"`
	Node     string           `json:"node"`
	Req      grid.Requirement `json:"requirement"`
}

// Wire is one instance-level connection implied by the descriptor's
// fanout rules: instance FromInstance of FromStage feeds instance
// ToInstance of ToStage.
type Wire struct {
	FromStage    string `json:"fromStage"`
	FromInstance int    `json:"fromInstance"`
	ToStage      string `json:"toStage"`
	ToInstance   int    `json:"toInstance"`
}

// QueueChoice records the input-buffer implementation planned for one
// stage instance, derived from the wire cardinality: "spsc" when exactly
// one upstream stage feeds the instance, "mpsc" otherwise. Source stages
// (no inbound wires) carry no choice.
type QueueChoice struct {
	StageID  string `json:"stage"`
	Instance int    `json:"instance"`
	Kind     string `json:"kind"`
}

// Plan is the serializable outcome of resource matching: which node hosts
// each stage instance and which instance-level wires connect them. A Plan
// separates the §3.2 matching decision from its execution, so it can be
// inspected, diffed against a re-computed plan after grid conditions
// change, and applied by Deployer.Apply.
type Plan struct {
	// App is the application name the plan was computed for.
	App string `json:"app"`
	// TopologyAware records whether link bandwidth influenced matching.
	TopologyAware bool `json:"topologyAware"`
	// Assignments maps every instance to its node, in request order
	// (stages in declaration order, instances in ordinal order).
	Assignments []Assignment `json:"assignments"`
	// Wires are the instance-level connections to materialize.
	Wires []Wire `json:"wires"`
	// Queues records the planned input-buffer implementation per consumer
	// instance (see QueueChoice); Apply passes each choice into the
	// corresponding StageConfig so the engine builds the matching ring.
	Queues []QueueChoice `json:"queues,omitempty"`
}

// QueueKindFor returns the planned queue implementation for instance i of
// the named stage, or false when the plan recorded none (source stages, or
// plans produced before queue planning existed).
func (p *Plan) QueueKindFor(stageID string, instance int) (pipeline.QueueKind, bool) {
	for _, q := range p.Queues {
		if q.StageID == stageID && q.Instance == instance {
			switch q.Kind {
			case "spsc":
				return pipeline.QueueSPSC, true
			case "mpsc":
				return pipeline.QueueMPSC, true
			case "mutex":
				return pipeline.QueueMutex, true
			}
			return pipeline.QueueAuto, false
		}
	}
	return pipeline.QueueAuto, false
}

// NodeFor returns the node assigned to instance i of the named stage.
func (p *Plan) NodeFor(stageID string, instance int) (string, bool) {
	for _, a := range p.Assignments {
		if a.StageID == stageID && a.Instance == instance {
			return a.Node, true
		}
	}
	return "", false
}

// Requirement returns the requirement instance i of the named stage was
// matched against.
func (p *Plan) Requirement(stageID string, instance int) (grid.Requirement, bool) {
	for _, a := range p.Assignments {
		if a.StageID == stageID && a.Instance == instance {
			return a.Req, true
		}
	}
	return grid.Requirement{}, false
}

// Placements renders the assignments as grid placements.
func (p *Plan) Placements() []grid.Placement {
	out := make([]grid.Placement, len(p.Assignments))
	for i, a := range p.Assignments {
		out[i] = grid.Placement{StageID: a.StageID, Instance: a.Instance, Node: a.Node}
	}
	return out
}

// Move is one difference between two plans: the instance must relocate
// from one node to another.
type Move struct {
	StageID  string `json:"stage"`
	Instance int    `json:"instance"`
	From     string `json:"from"`
	To       string `json:"to"`
}

// Diff returns the moves that turn this plan's placements into next's,
// in next's assignment order. Instances present in only one plan are
// ignored: a diff is meaningful between plans of the same descriptor.
func (p *Plan) Diff(next *Plan) []Move {
	var moves []Move
	for _, a := range next.Assignments {
		cur, ok := p.NodeFor(a.StageID, a.Instance)
		if ok && cur != a.Node {
			moves = append(moves, Move{StageID: a.StageID, Instance: a.Instance, From: cur, To: a.Node})
		}
	}
	return moves
}

// Planner wraps grid matching into plan production: it consults the
// directory (and optionally the network topology) and reserves capacity
// for every instance of a descriptor. It is the pure decision half of the
// Deployer; Apply is the execution half.
//
// Placement behavior is policy-driven: topology awareness and per-stage
// constraint rules come from the policy engine's active document, and
// every assignment the planner makes is recorded in the decision log with
// the rule that selected it and the policy version in force. A planner
// without an engine behaves as the default policy, silently.
type Planner struct {
	dir           *grid.Directory
	net           *netsim.Network
	topologyAware bool
	pol           *policy.Engine
}

// NewPlanner returns a planner over the given directory and network.
func NewPlanner(dir *grid.Directory, net *netsim.Network) (*Planner, error) {
	if dir == nil || net == nil {
		return nil, errors.New("service: NewPlanner requires directory and network")
	}
	return &Planner{dir: dir, net: net}, nil
}

// SetTopologyAware makes planning consider link bandwidth between
// communicating instances (grid.PlanTopology) in addition to requirements
// and near-source hints.
//
// Deprecated shim: prefer declaring placement.topology_aware in the policy
// document; either source enables it.
func (p *Planner) SetTopologyAware(on bool) { p.topologyAware = on }

// SetPolicy installs the engine whose active document drives placement
// (topology awareness, constraint rules) and receives the decision log.
// Nil reverts to default-policy behavior.
func (p *Planner) SetPolicy(eng *policy.Engine) { p.pol = eng }

// Plan matches every instance of cfg against the directory, reserving
// directory capacity as it goes (release an unapplied plan with Release).
// Because it reads the directory's *current* state, calling it again
// after nodes gained load or links changed bandwidth yields an updated
// plan to Diff against the deployed one.
func (p *Planner) Plan(cfg *AppConfig) (*Plan, error) {
	if cfg == nil {
		return nil, errors.New("service: Plan requires a config")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plc, version := p.pol.Placement()
	aware := p.topologyAware || plc.TopologyAware
	reqs, ruleNames := instanceRequests(cfg, plc)
	var placements []grid.Placement
	var err error
	if aware {
		placements, err = p.dir.PlanTopology(reqs, instanceEdges(cfg), func(a, b string) int64 {
			return p.net.Link(a, b).Config().Bandwidth
		})
	} else {
		placements, err = p.dir.Plan(reqs)
	}
	if err != nil {
		return nil, fmt.Errorf("service: placement failed: %w", err)
	}
	plan := &Plan{
		App:           cfg.Name,
		TopologyAware: aware,
		Assignments:   make([]Assignment, len(placements)),
		Wires:         resolveWires(cfg),
	}
	plan.Queues = queueChoices(cfg, plan.Wires)
	for i, pl := range placements {
		plan.Assignments[i] = Assignment{
			StageID:  pl.StageID,
			Instance: pl.Instance,
			Node:     pl.Node,
			Req:      reqs[i].Req,
		}
		p.pol.RecordDecision(obs.DecisionEvent{
			Kind:          obs.DecisionPlacement,
			PolicyVersion: version,
			Rule:          placementRule(ruleNames[i], reqs[i].Req, aware),
			Stage:         pl.StageID,
			Instance:      pl.Instance,
			Node:          pl.Node,
			Outcome:       "placed",
			Input: map[string]any{
				"app":            cfg.Name,
				"site":           reqs[i].Req.Site,
				"min_cpu":        reqs[i].Req.MinCPUPower,
				"min_memory_mb":  reqs[i].Req.MinMemoryMB,
				"near_source":    reqs[i].Req.NearSource,
				"topology_aware": aware,
			},
		})
	}
	return plan, nil
}

// placementRule names the decision-log rule that selected an assignment:
// an explicit policy rule when one matched, otherwise the implicit rule
// that dominated the match.
func placementRule(policyRule string, req grid.Requirement, aware bool) string {
	switch {
	case policyRule != "":
		return policyRule
	case req.NearSource != "":
		return "near-source"
	case aware:
		return "topology-cost"
	default:
		return "requirement-match"
	}
}

// Release returns a plan's directory reservations — the undo for a plan
// that will not be applied (or a deployment being torn down).
func (p *Planner) Release(plan *Plan) {
	if plan == nil {
		return
	}
	for _, a := range plan.Assignments {
		p.dir.Release(a.Node, a.Req)
	}
}

// instanceRequests expands the descriptor into one matching request per
// instance, stages in declaration order so source-side stages claim
// near-source nodes first. Policy placement rules merge into each stage's
// own requirement — Site and NearSource apply where the stage left them
// empty, resource floors only ever rise — and the second return value
// names the rule applied per request ("" where none matched) for the
// decision log.
func instanceRequests(cfg *AppConfig, plc policy.PlacementPolicy) ([]grid.InstanceRequest, []string) {
	var reqs []grid.InstanceRequest
	var ruleNames []string
	for i := range cfg.Stages {
		s := &cfg.Stages[i]
		rule, hasRule := plc.RuleFor(s.ID)
		for inst := 0; inst < s.EffectiveInstances(); inst++ {
			req := grid.Requirement{
				MinCPUPower: s.Requirement.MinCPU,
				MinMemoryMB: s.Requirement.MinMemoryMB,
				Site:        s.Requirement.Site,
			}
			if inst < len(s.NearSources) {
				req.NearSource = s.NearSources[inst]
			}
			name := ""
			if hasRule {
				name = rule.Name
				if req.Site == "" {
					req.Site = rule.Site
				}
				if rule.MinCPU > req.MinCPUPower {
					req.MinCPUPower = rule.MinCPU
				}
				if rule.MinMemoryMB > req.MinMemoryMB {
					req.MinMemoryMB = rule.MinMemoryMB
				}
				if req.NearSource == "" {
					req.NearSource = rule.NearSource
				}
			}
			reqs = append(reqs, grid.InstanceRequest{StageID: s.ID, Instance: inst, Req: req})
			ruleNames = append(ruleNames, name)
		}
	}
	return reqs, ruleNames
}

// queueChoices derives the input-buffer implementation for every consumer
// instance from the resolved wires — the Plan-time half of the engine's
// resolveQueue decision. One producer goroutine exists per distinct
// upstream (stage, instance) pair, so exactly one such pair means the
// lock-free SPSC ring and more mean MPSC. Source stages (no inbound wires)
// are skipped.
func queueChoices(cfg *AppConfig, wires []Wire) []QueueChoice {
	type producer struct {
		stage    string
		instance int
	}
	feeders := make(map[instRef]map[producer]struct{})
	for _, w := range wires {
		to := instRef{stage: w.ToStage, instance: w.ToInstance}
		if feeders[to] == nil {
			feeders[to] = make(map[producer]struct{})
		}
		feeders[to][producer{stage: w.FromStage, instance: w.FromInstance}] = struct{}{}
	}
	var choices []QueueChoice
	for i := range cfg.Stages {
		s := &cfg.Stages[i]
		for inst := 0; inst < s.EffectiveInstances(); inst++ {
			n := len(feeders[instRef{stage: s.ID, instance: inst}])
			if n == 0 {
				continue // source or unwired: nothing flows through its queue
			}
			kind := "mpsc"
			if n == 1 {
				kind = "spsc"
			}
			choices = append(choices, QueueChoice{StageID: s.ID, Instance: inst, Kind: kind})
		}
	}
	return choices
}

// resolveWires expands the descriptor's connections into instance-level
// wires per their fanout modes. The descriptor must already be validated.
func resolveWires(cfg *AppConfig) []Wire {
	count := make(map[string]int, len(cfg.Stages))
	for i := range cfg.Stages {
		count[cfg.Stages[i].ID] = cfg.Stages[i].EffectiveInstances()
	}
	var wires []Wire
	for _, conn := range cfg.Connections {
		fromN, toN := count[conn.From], count[conn.To]
		mode := conn.Fanout
		if mode == FanoutAuto {
			if fromN == toN {
				mode = FanoutPairwise
			} else {
				mode = FanoutAll
			}
		}
		switch mode {
		case FanoutPairwise:
			for i := 0; i < fromN; i++ {
				wires = append(wires, Wire{FromStage: conn.From, FromInstance: i, ToStage: conn.To, ToInstance: i})
			}
		case FanoutGrouped:
			group := fromN / toN
			for i := 0; i < fromN; i++ {
				wires = append(wires, Wire{FromStage: conn.From, FromInstance: i, ToStage: conn.To, ToInstance: i / group})
			}
		case FanoutAll:
			for i := 0; i < fromN; i++ {
				for j := 0; j < toN; j++ {
					wires = append(wires, Wire{FromStage: conn.From, FromInstance: i, ToStage: conn.To, ToInstance: j})
				}
			}
		}
	}
	return wires
}
