// Package service implements the GATES deployment machinery: the XML
// application descriptor, the application repository, the Deployer, and the
// Launcher.
//
// The paper's workflow (§3.2): an application developer divides the
// application into stages, implements each stage, registers the stage codes
// in an application repository, and writes an XML configuration file naming
// the stages and their codes. An application user hands the configuration to
// the Launcher; the Deployer consults the grid resource manager for nodes
// matching each stage's requirements, instantiates a GATES grid-service
// instance per stage on those nodes, retrieves the stage codes from the
// repository, and customizes each instance with them. This package is that
// pipeline, with the simulated grid (internal/grid) as the resource manager
// and processor factories as the mobile "stage code".
package service

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// AppConfig is the parsed application descriptor.
type AppConfig struct {
	XMLName     xml.Name   `xml:"application"`
	Name        string     `xml:"name,attr"`
	Stages      []StageDef `xml:"stage"`
	Connections []ConnDef  `xml:"connection"`
}

// StageDef declares one pipeline stage.
type StageDef struct {
	// ID names the stage within the application.
	ID string `xml:"id,attr"`
	// Code is the repository key of the stage's implementation.
	Code string `xml:"code,attr"`
	// Instances is how many instances to deploy (default 1). Source
	// stages typically run one instance per data stream.
	Instances int `xml:"instances,attr"`
	// Source marks a generating stage with no inputs.
	Source bool `xml:"source,attr"`
	// QueueCapacity overrides the instance input-buffer capacity C.
	QueueCapacity int `xml:"queueCapacity,attr"`
	// Requirement constrains placement.
	Requirement ReqDef `xml:"requirement"`
	// NearSources lists per-instance placement hints: instance i prefers
	// the node hosting NearSources[i]. The paper's rule "the first stage
	// is applied near sources of individual streams" is expressed here.
	NearSources []string `xml:"nearSource"`
}

// ReqDef is a stage's resource requirement.
type ReqDef struct {
	MinCPU      float64 `xml:"minCPU,attr"`
	MinMemoryMB int     `xml:"minMemoryMB,attr"`
	Site        string  `xml:"site,attr"`
}

// FanoutMode selects how instances of two connected stages are wired.
type FanoutMode string

const (
	// FanoutAuto wires pairwise when instance counts match, all-to-all
	// otherwise.
	FanoutAuto FanoutMode = ""
	// FanoutPairwise wires instance i to instance i; counts must match.
	FanoutPairwise FanoutMode = "pairwise"
	// FanoutAll wires every from-instance to every to-instance.
	FanoutAll FanoutMode = "all"
	// FanoutGrouped partitions the from-instances evenly over the
	// to-instances in ordinal order: with 8 producers and 2 consumers,
	// producers 0-3 feed consumer 0 and producers 4-7 feed consumer 1.
	// The from count must be a multiple of the to count. This is how a
	// hierarchical (regional) aggregation stage is declared.
	FanoutGrouped FanoutMode = "grouped"
)

// ConnDef declares a directed connection between stages.
type ConnDef struct {
	From   string     `xml:"from,attr"`
	To     string     `xml:"to,attr"`
	Fanout FanoutMode `xml:"fanout,attr"`
}

// ParseConfig decodes an XML application descriptor and validates it.
func ParseConfig(r io.Reader) (*AppConfig, error) {
	var cfg AppConfig
	if err := xml.NewDecoder(r).Decode(&cfg); err != nil {
		return nil, fmt.Errorf("service: parse config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// ParseConfigString decodes an XML descriptor held in a string.
func ParseConfigString(s string) (*AppConfig, error) {
	return ParseConfig(strings.NewReader(s))
}

// Validate checks structural consistency: unique stage IDs, legal instance
// counts, connections referring to known stages, no connection into a
// source, and pairwise fanouts with matching counts.
func (c *AppConfig) Validate() error {
	if c.Name == "" {
		return errors.New("service: application needs a name")
	}
	if len(c.Stages) == 0 {
		return errors.New("service: application needs at least one stage")
	}
	byID := make(map[string]*StageDef, len(c.Stages))
	for i := range c.Stages {
		s := &c.Stages[i]
		if s.ID == "" {
			return errors.New("service: stage needs an id")
		}
		if s.Code == "" {
			return fmt.Errorf("service: stage %q needs a code", s.ID)
		}
		if _, dup := byID[s.ID]; dup {
			return fmt.Errorf("service: duplicate stage id %q", s.ID)
		}
		if s.Instances < 0 {
			return fmt.Errorf("service: stage %q: negative instance count", s.ID)
		}
		if len(s.NearSources) > 0 && len(s.NearSources) != s.EffectiveInstances() {
			return fmt.Errorf("service: stage %q: %d nearSource hints for %d instances",
				s.ID, len(s.NearSources), s.EffectiveInstances())
		}
		byID[s.ID] = s
	}
	hasSource := false
	for i := range c.Stages {
		if c.Stages[i].Source {
			hasSource = true
		}
	}
	if !hasSource {
		return errors.New("service: application needs at least one source stage")
	}
	for _, conn := range c.Connections {
		from, ok := byID[conn.From]
		if !ok {
			return fmt.Errorf("service: connection from unknown stage %q", conn.From)
		}
		to, ok := byID[conn.To]
		if !ok {
			return fmt.Errorf("service: connection to unknown stage %q", conn.To)
		}
		if to.Source {
			return fmt.Errorf("service: connection into source stage %q", conn.To)
		}
		switch conn.Fanout {
		case FanoutAuto, FanoutAll:
		case FanoutPairwise:
			if from.EffectiveInstances() != to.EffectiveInstances() {
				return fmt.Errorf("service: pairwise connection %s->%s with %d vs %d instances",
					conn.From, conn.To, from.EffectiveInstances(), to.EffectiveInstances())
			}
		case FanoutGrouped:
			if to.EffectiveInstances() == 0 || from.EffectiveInstances()%to.EffectiveInstances() != 0 {
				return fmt.Errorf("service: grouped connection %s->%s needs %d instances divisible by %d",
					conn.From, conn.To, from.EffectiveInstances(), to.EffectiveInstances())
			}
		default:
			return fmt.Errorf("service: connection %s->%s: unknown fanout %q", conn.From, conn.To, conn.Fanout)
		}
	}
	return nil
}

// EffectiveInstances returns the instance count, defaulting to 1.
func (s *StageDef) EffectiveInstances() int {
	if s.Instances <= 0 {
		return 1
	}
	return s.Instances
}

// Stage returns the stage definition with the given id.
func (c *AppConfig) Stage(id string) (*StageDef, bool) {
	for i := range c.Stages {
		if c.Stages[i].ID == id {
			return &c.Stages[i], true
		}
	}
	return nil, false
}

// Marshal renders the configuration back to XML (round-trip support for
// tooling and tests).
func (c *AppConfig) Marshal() ([]byte, error) {
	return xml.MarshalIndent(c, "", "  ")
}
