package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/policy"
)

// FaultScheduler replays a policy document's scripted fault schedule
// against the network: node kills and heals, partitions, and per-link
// loss/reorder injections, each at its declared virtual-time offset from
// Start. Every applied injection lands in the flight recorder, so a chaos
// run's failure script and the middleware's reaction share one timeline.
type FaultScheduler struct {
	clk clock.Clock
	net *netsim.Network
	o   *obs.Observability

	injections []policy.FaultInjection

	mu     sync.Mutex
	cancel context.CancelFunc
	done   chan struct{}
}

// NewFaultScheduler returns a scheduler that will apply the given
// injections to net. The slice is copied and sorted by offset.
func NewFaultScheduler(clk clock.Clock, net *netsim.Network, injections []policy.FaultInjection, o *obs.Observability) (*FaultScheduler, error) {
	if clk == nil || net == nil {
		return nil, errors.New("service: NewFaultScheduler requires a clock and a network")
	}
	inj := make([]policy.FaultInjection, len(injections))
	copy(inj, injections)
	sort.SliceStable(inj, func(i, j int) bool { return inj[i].At < inj[j].At })
	return &FaultScheduler{clk: clk, net: net, o: o, injections: inj}, nil
}

// Start launches the schedule from virtual-time zero (now). Stop or ctx
// halts it; already-applied injections stay applied.
func (f *FaultScheduler) Start(ctx context.Context) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cancel != nil {
		return
	}
	ctx, f.cancel = context.WithCancel(ctx)
	f.done = make(chan struct{})
	start := f.clk.Now()
	go func() {
		defer close(f.done)
		labelControlPlane()
		for _, inj := range f.injections {
			due := start.Add(inj.At.Std())
			if wait := due.Sub(f.clk.Now()); wait > 0 {
				select {
				case <-ctx.Done():
					return
				case <-f.clk.After(wait):
				}
			}
			if ctx.Err() != nil {
				return
			}
			f.Apply(inj)
		}
	}()
}

// Stop halts the schedule; it does not undo applied injections.
func (f *FaultScheduler) Stop() {
	f.mu.Lock()
	cancel, done := f.cancel, f.done
	f.cancel, f.done = nil, nil
	f.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}

// Apply executes one injection immediately.
func (f *FaultScheduler) Apply(inj policy.FaultInjection) {
	var detail string
	switch {
	case inj.Kill != "":
		f.net.Kill(inj.Kill)
		detail = "kill " + inj.Kill
	case inj.Heal != "":
		f.net.Heal(inj.Heal)
		detail = "heal " + inj.Heal
	case inj.Partition:
		f.net.Partition(inj.From, inj.To)
		detail = "partition " + inj.From + " ⇹ " + inj.To
	case inj.HealPartition:
		f.net.HealPartition(inj.From, inj.To)
		detail = "heal partition " + inj.From + " ⇹ " + inj.To
	case inj.Loss == 0 && inj.Reorder == 0:
		f.net.Link(inj.From, inj.To).ClearFaults()
		detail = "clear faults " + inj.From + " → " + inj.To
	default:
		f.net.InjectFaults(inj.From, inj.To, netsim.FaultConfig{
			Seed:    inj.Seed,
			Loss:    inj.Loss,
			Reorder: inj.Reorder,
			Depth:   inj.Depth,
		})
		detail = fmt.Sprintf("inject %s → %s (loss %g, reorder %g)", inj.From, inj.To, inj.Loss, inj.Reorder)
	}
	if f.o != nil {
		f.o.FlightRec().Record(obs.FlightEvent{
			Kind:   obs.FlightFault,
			Node:   inj.Kill + inj.Heal,
			Detail: inj.Name + ": " + detail,
		})
		f.o.Log().Info("fault injected", "name", inj.Name, "detail", detail)
	}
}
