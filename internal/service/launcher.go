package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
)

// Launcher is the user-facing entry point: "to start the application, the
// user simply passes the XML file's URL link to the Launcher" (§3.2). It
// fetches and parses the descriptor, hands it to the Deployer, and returns a
// running Application handle.
type Launcher struct {
	deployer *Deployer
}

// NewLauncher returns a launcher over the given deployer.
func NewLauncher(d *Deployer) (*Launcher, error) {
	if d == nil {
		return nil, errors.New("service: NewLauncher requires a deployer")
	}
	return &Launcher{deployer: d}, nil
}

// Fetch retrieves an application descriptor. The locator may be an
// http(s):// URL (the paper's repository-hosted configuration), a file path,
// or — as a convenience for embedding — a literal XML document (detected by
// a leading '<').
func Fetch(locator string) (*AppConfig, error) {
	switch {
	case strings.HasPrefix(strings.TrimSpace(locator), "<"):
		return ParseConfigString(locator)
	case strings.HasPrefix(locator, "http://"), strings.HasPrefix(locator, "https://"):
		resp, err := http.Get(locator)
		if err != nil {
			return nil, fmt.Errorf("service: fetch %s: %w", locator, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("service: fetch %s: HTTP %d", locator, resp.StatusCode)
		}
		return ParseConfig(resp.Body)
	default:
		f, err := os.Open(locator)
		if err != nil {
			return nil, fmt.Errorf("service: open config: %w", err)
		}
		defer f.Close()
		return ParseConfig(f)
	}
}

// Launch fetches the descriptor at locator, deploys it, and starts it.
// The returned Application is already running; use Wait to collect its
// outcome and Stop to end it early.
func (l *Launcher) Launch(ctx context.Context, locator string, tuning StageTuning) (*Application, error) {
	cfg, err := Fetch(locator)
	if err != nil {
		return nil, err
	}
	return l.LaunchConfig(ctx, cfg, tuning)
}

// LaunchConfig deploys and starts an already parsed descriptor.
func (l *Launcher) LaunchConfig(ctx context.Context, cfg *AppConfig, tuning StageTuning) (*Application, error) {
	dep, err := l.deployer.Deploy(cfg, tuning)
	if err != nil {
		l.deployer.o.Log().Warn("deployment failed", "app", cfg.Name, "err", err)
		return nil, err
	}
	l.deployer.o.Log().Info("application launched",
		"app", cfg.Name, "stages", len(cfg.Stages), "placements", len(dep.Placements))
	runCtx, cancel := context.WithCancel(ctx)
	app := &Application{
		Deployment: dep,
		cancel:     cancel,
		done:       make(chan struct{}),
	}
	go func() {
		defer close(app.done)
		err := dep.Engine.Run(runCtx)
		app.mu.Lock()
		app.err = err
		app.mu.Unlock()
	}()
	return app, nil
}

// Application is a running deployment: the paper's application-user handle,
// which only needs to start and stop the application.
type Application struct {
	// Deployment is the underlying wired application.
	*Deployment

	cancel context.CancelFunc
	done   chan struct{}
	mu     sync.Mutex
	err    error
}

// Wait blocks until the application finishes and returns its terminal error
// (nil on a clean end-of-stream completion).
func (a *Application) Wait() error {
	<-a.done
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// Done returns a channel closed when the application has finished.
func (a *Application) Done() <-chan struct{} { return a.done }

// Stop cancels the application and waits for it to wind down. Stopping an
// already finished application is a no-op returning its terminal error.
func (a *Application) Stop() error {
	a.cancel()
	return a.Wait()
}
