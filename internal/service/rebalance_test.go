package service

import (
	"context"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/policy"
)

// TestRebalancerConfigPolicyDocument pins the deprecated shim's compile
// step: the zero config selects exactly the documented defaults, positive
// fields carry over, and the legacy "non-positive means default" semantics
// survive the translation.
func TestRebalancerConfigPolicyDocument(t *testing.T) {
	doc := RebalancerConfig{}.PolicyDocument()
	if doc.Version != "config" {
		t.Errorf("version %q, want config", doc.Version)
	}
	if got := doc.Rebalance.Interval.Std(); got != policy.DefaultRebalanceInterval {
		t.Errorf("zero Interval compiled to %s, want %s", got, policy.DefaultRebalanceInterval)
	}
	if got := doc.Rebalance.Threshold; got != policy.DefaultRebalanceThreshold {
		t.Errorf("zero Threshold compiled to %g, want %g", got, policy.DefaultRebalanceThreshold)
	}
	if doc.Rebalance.Cooldown != doc.Rebalance.Interval {
		t.Errorf("zero Cooldown compiled to %s, want the interval %s",
			doc.Rebalance.Cooldown.Std(), doc.Rebalance.Interval.Std())
	}
	if doc.Rebalance.MigrationBudget != 0 {
		t.Errorf("zero MaxMigrations compiled to budget %d, want 0 (unlimited)", doc.Rebalance.MigrationBudget)
	}

	cfg := RebalancerConfig{
		Interval:      7 * time.Second,
		Threshold:     1.5,
		Cooldown:      3 * time.Second,
		MaxMigrations: 2,
		Stages:        []string{"summarize"},
	}
	doc = cfg.PolicyDocument()
	if doc.Rebalance.Interval.Std() != 7*time.Second ||
		doc.Rebalance.Threshold != 1.5 ||
		doc.Rebalance.Cooldown.Std() != 3*time.Second ||
		doc.Rebalance.MigrationBudget != 2 {
		t.Errorf("explicit config compiled to %+v", doc.Rebalance)
	}
	if len(doc.Rebalance.Stages) != 1 || doc.Rebalance.Stages[0] != "summarize" {
		t.Errorf("stages %v", doc.Rebalance.Stages)
	}
	// Zero Cooldown with an explicit Interval tracks the interval.
	doc = RebalancerConfig{Interval: 9 * time.Second}.PolicyDocument()
	if doc.Rebalance.Cooldown.Std() != 9*time.Second {
		t.Errorf("cooldown %s, want the 9s interval", doc.Rebalance.Cooldown.Std())
	}
	// Negative values have always meant "use the default" too.
	doc = RebalancerConfig{Interval: -1, Threshold: -2, Cooldown: -3}.PolicyDocument()
	if doc.Rebalance.Interval.Std() != policy.DefaultRebalanceInterval ||
		doc.Rebalance.Threshold != policy.DefaultRebalanceThreshold ||
		doc.Rebalance.Cooldown != doc.Rebalance.Interval {
		t.Errorf("negative config compiled to %+v", doc.Rebalance)
	}
	// The compiled document always validates, so NewRebalancer's Load
	// cannot fail.
	if err := doc.Validate(); err != nil {
		t.Errorf("compiled document invalid: %v", err)
	}
}

// TestNewRebalancerDefaults: a config-built rebalancer reads the defaults
// through its private engine under version "config".
func TestNewRebalancerDefaults(t *testing.T) {
	f := newMigrationFixture(t)
	reb := NewRebalancer(f.app.Deployment, RebalancerConfig{})
	pol, version := reb.Policy().Rebalance()
	if version != "config" {
		t.Errorf("policy version %q, want config", version)
	}
	if pol.Interval.Std() != policy.DefaultRebalanceInterval ||
		pol.Threshold != policy.DefaultRebalanceThreshold ||
		pol.Cooldown != pol.Interval {
		t.Errorf("active rebalance policy %+v", pol)
	}
	f.run(t, nil)
}

// TestRebalancerCooldownSkipDecision: an instance inside its cooldown
// window is not evaluated for a move, and the suppression itself is a
// logged decision naming the rule and the window.
func TestRebalancerCooldownSkipDecision(t *testing.T) {
	f := newMigrationFixture(t)
	dep := f.app.Deployment
	reb := NewRebalancer(dep, RebalancerConfig{
		Cooldown: time.Hour,
		Stages:   []string{"summarize"},
	})
	f.run(t, func() {
		// A move just happened (as far as the cooldown bookkeeping is
		// concerned); the next sweep lands inside the window.
		reb.lastMove[instRef{stage: "summarize", instance: 0}] = dep.deployer.clk.Now()
		reb.sweep(context.Background())
	})

	var skip *obs.DecisionEvent
	for _, ev := range f.o.DecisionLog().Events() {
		if ev.Kind == obs.DecisionRebalance && ev.Rule == "cooldown" {
			skip = &ev
			break
		}
	}
	if skip == nil {
		t.Fatalf("no cooldown decision recorded; log: %+v", f.o.DecisionLog().Events())
	}
	if skip.Outcome != "skip" {
		t.Errorf("cooldown outcome %q, want skip", skip.Outcome)
	}
	if skip.Stage != "summarize" || skip.Instance != 0 || skip.Node != "src-1" {
		t.Errorf("cooldown decision names %s/%d@%s", skip.Stage, skip.Instance, skip.Node)
	}
	if skip.PolicyVersion != "config" {
		t.Errorf("cooldown decision cites policy %q, want config", skip.PolicyVersion)
	}
	if skip.Input["cooldown"] != time.Hour.String() {
		t.Errorf("cooldown input %+v", skip.Input)
	}
	if _, ok := skip.Input["since_last_move"]; !ok {
		t.Errorf("cooldown input misses since_last_move: %+v", skip.Input)
	}
	if reb.Migrations() != 0 {
		t.Errorf("cooldown sweep migrated %d instances", reb.Migrations())
	}
}

// TestRebalancerAlreadyOptimalSkip: on a healthy fabric (every link
// unlimited, costs zero) a sweep leaves the placement alone and says why.
func TestRebalancerAlreadyOptimalSkip(t *testing.T) {
	f := newMigrationFixture(t)
	reb := NewRebalancer(f.app.Deployment, RebalancerConfig{Stages: []string{"summarize"}})
	f.run(t, func() {
		reb.sweep(context.Background())
	})
	ev, ok := f.o.DecisionLog().Last()
	if !ok || ev.Kind != obs.DecisionRebalance {
		t.Fatalf("last decision %+v, %v", ev, ok)
	}
	if ev.Rule != "already-optimal" || ev.Outcome != "skip" {
		t.Errorf("decision %q/%q, want already-optimal/skip", ev.Rule, ev.Outcome)
	}
	if ev.Input["threshold"] != policy.DefaultRebalanceThreshold {
		t.Errorf("decision input %+v", ev.Input)
	}
	if reb.Migrations() != 0 {
		t.Errorf("healthy sweep migrated %d instances", reb.Migrations())
	}
}

// TestRebalancerBudgetHalt: a spent migration budget stops the loop and
// logs the halt decision exactly once.
func TestRebalancerBudgetHalt(t *testing.T) {
	f := newMigrationFixture(t)
	reb := NewRebalancer(f.app.Deployment, RebalancerConfig{MaxMigrations: 1})
	if reb.budgetExhausted() {
		t.Fatal("fresh rebalancer already over budget")
	}
	reb.migrations.Add(1)
	if !reb.budgetExhausted() || !reb.budgetExhausted() {
		t.Fatal("spent budget not detected")
	}
	halts := 0
	for _, ev := range f.o.DecisionLog().Events() {
		if ev.Kind == obs.DecisionRebalance && ev.Rule == "migration-budget" {
			halts++
			if ev.Outcome != "halt" {
				t.Errorf("halt outcome %q", ev.Outcome)
			}
		}
	}
	if halts != 1 {
		t.Errorf("%d halt decisions logged, want exactly 1", halts)
	}
	f.run(t, nil)
}
