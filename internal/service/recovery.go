package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/gates-middleware/gates/internal/grid"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// RecoveryEvent is one completed (or attempted) recovery of a stage
// instance off a dead node.
type RecoveryEvent struct {
	At        time.Time     `json:"at"`
	Node      string        `json:"node"` // the dead node
	Stage     string        `json:"stage"`
	Instance  int           `json:"instance"`
	To        string        `json:"to"`        // node the instance landed on
	Restored  bool          `json:"restored"`  // checkpoint state restored
	Replayed  int           `json:"replayed"`  // packets re-injected from upstream rings
	Discarded int           `json:"discarded"` // stale queued packets dropped
	Gap       bool          `json:"gap"`       // replay interval outran a ring's retention
	Duration  time.Duration `json:"duration"`
	Err       string        `json:"err,omitempty"`
}

// Recovery is the failure detector and recovery controller: it watches the
// deployment's nodes over periodic health epochs, declares a node dead after
// DeadAfter consecutive missed epochs, and re-plans the dead node's
// instances onto live nodes — restoring each instance's latest checkpoint
// and replaying the upstream sequence interval the crash swallowed. The
// recovered stream is at-least-once; the consumer-side watermarks turn the
// replay overlap into effectively-once for deterministic emitters (see
// DESIGN.md §13).
type Recovery struct {
	dep   *Deployment
	store *CheckpointStore

	every     time.Duration // health-epoch length (virtual time)
	deadAfter int           // consecutive missed epochs before a node is dead

	mu        sync.Mutex
	cancel    context.CancelFunc
	done      chan struct{}
	missed    map[string]int
	recovered map[string]bool
	events    []RecoveryEvent

	recoveries *obs.Counter
	replayed   *obs.Counter
	discarded  *obs.Counter
	gaps       *obs.Counter
}

// NewRecovery returns a recovery controller over the deployment reading
// checkpoints from store. every is the health-epoch length; deadAfter is
// how many consecutive epochs a node must miss before recovery starts.
func NewRecovery(dep *Deployment, store *CheckpointStore, every time.Duration, deadAfter int) (*Recovery, error) {
	if dep == nil || store == nil {
		return nil, errors.New("service: NewRecovery requires a deployment and a store")
	}
	if every <= 0 {
		return nil, fmt.Errorf("service: health epoch must be positive, got %v", every)
	}
	if deadAfter < 1 {
		deadAfter = 1
	}
	r := &Recovery{
		dep:       dep,
		store:     store,
		every:     every,
		deadAfter: deadAfter,
		missed:    make(map[string]int),
		recovered: make(map[string]bool),
	}
	if o := dep.deployer.o; o != nil {
		r.recoveries = o.Registry.Counter("gates_recoveries_total",
			"Stage instances recovered off dead nodes.", nil)
		r.replayed = o.Registry.Counter("gates_replayed_packets_total",
			"Packets re-injected from upstream replay rings during recovery.", nil)
		r.discarded = o.Registry.Counter("gates_recovery_discarded_total",
			"Stale queued packets discarded from crashed instances.", nil)
		r.gaps = o.Registry.Counter("gates_replay_gaps_total",
			"Recoveries whose replay interval outran a ring's retention.", nil)
	}
	return r, nil
}

// Events returns a copy of the recovery log.
func (r *Recovery) Events() []RecoveryEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RecoveryEvent, len(r.events))
	copy(out, r.events)
	return out
}

// Start launches the health monitor: every epoch it checks each node that
// hosts an instance against the network's liveness state, and recovers a
// node after deadAfter consecutive misses. Stop (or ctx) halts it.
func (r *Recovery) Start(ctx context.Context) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cancel != nil {
		return
	}
	ctx, r.cancel = context.WithCancel(ctx)
	r.done = make(chan struct{})
	clk := r.dep.deployer.clk
	go func() {
		defer close(r.done)
		labelControlPlane()
		for {
			select {
			case <-ctx.Done():
				return
			case <-clk.After(r.every):
				for _, node := range r.tick() {
					_ = r.RecoverNode(ctx, node)
				}
			}
		}
	}()
}

// Stop halts the health monitor and waits for an in-flight recovery.
func (r *Recovery) Stop() {
	r.mu.Lock()
	cancel, done := r.cancel, r.done
	r.cancel, r.done = nil, nil
	r.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}

// tick runs one health epoch and returns the nodes newly declared dead.
func (r *Recovery) tick() []string {
	hosts := make(map[string]bool)
	r.dep.mu.RLock()
	for _, node := range r.dep.nodeOf {
		hosts[node] = true
	}
	r.dep.mu.RUnlock()

	net := r.dep.deployer.net
	r.mu.Lock()
	defer r.mu.Unlock()
	var dead []string
	for node := range hosts {
		if net.Alive(node) {
			r.missed[node] = 0
			delete(r.recovered, node)
			continue
		}
		r.missed[node]++
		if r.missed[node] >= r.deadAfter && !r.recovered[node] {
			r.recovered[node] = true
			dead = append(dead, node)
		}
	}
	sort.Strings(dead)
	return dead
}

// RecoverNode moves every instance currently placed on the named node onto
// live nodes, upstream-most first — a downstream instance recovered later
// then finds its already-recovered upstreams' post-replay emissions still
// in their rings. It aggregates per-instance errors and keeps going: a
// partially recovered node is strictly better than a dead one.
func (r *Recovery) RecoverNode(ctx context.Context, node string) error {
	insts := r.instancesOn(node)
	if len(insts) == 0 {
		return nil
	}
	var errs []error
	for _, st := range insts {
		if err := r.recoverInstance(ctx, st, node); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// instancesOn returns the stage instances placed on node, topologically
// ordered upstream-first (ties in declaration order).
func (r *Recovery) instancesOn(node string) []*pipeline.Stage {
	onNode := make(map[*pipeline.Stage]bool)
	var all []*pipeline.Stage
	for _, sts := range r.dep.Stages {
		for _, st := range sts {
			if n, ok := r.dep.NodeFor(st.ID(), st.Instance()); ok && n == node {
				onNode[st] = true
				all = append(all, st)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].ID() != all[j].ID() {
			return all[i].ID() < all[j].ID()
		}
		return all[i].Instance() < all[j].Instance()
	})
	var order []*pipeline.Stage
	visited := make(map[*pipeline.Stage]bool)
	var visit func(st *pipeline.Stage)
	visit = func(st *pipeline.Stage) {
		if visited[st] {
			return
		}
		visited[st] = true
		for _, up := range st.Upstreams() {
			if onNode[up] {
				visit(up)
			}
		}
		order = append(order, st)
	}
	for _, st := range all {
		visit(st)
	}
	return order
}

// pauseForRecovery pauses st, retrying while another pauser (a checkpointer
// round, a concurrent migration) holds the pause. A stopped stage returns
// errStopped.
var errStopped = errors.New("stage stopped")

func pauseForRecovery(ctx context.Context, st *pipeline.Stage) error {
	for {
		if st.State() == pipeline.StateStopped {
			return errStopped
		}
		err := st.Pause(ctx)
		if err == nil {
			return nil
		}
		if errors.Is(err, pipeline.ErrPausePending) {
			// The holder's pause/capture/resume runs in wall time;
			// yield and retry rather than fail the recovery.
			if ctx.Err() != nil {
				return ctx.Err()
			}
			runtime.Gosched()
			continue
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// "already stopped" / "stopped while draining" — terminal.
		return errStopped
	}
}

// recoverInstance executes the recovery protocol for one instance:
//
//  1. reserve capacity on the best live node,
//  2. pause the crashed instance (its goroutine is a healthy zombie — the
//     process shares our address space; only its links are black-holed)
//     and read its emission cursor,
//  3. discard the crashed instance's queued input (replay re-covers it),
//     holding any final markers aside — before pausing upstreams, so a
//     producer wedged mid-push into the full queue can complete and park,
//  4. pause every upstream and read each one's emission cursor,
//  5. sweep the queue again (packets an unwedged pusher landed between the
//     first discard and its pause fall inside the replay interval),
//  6. restore the latest checkpoint (state, emission cursor, watermarks),
//  7. rewire the instance to its new node,
//  8. heal the output gaps: for each downstream, replay this instance's
//     own ring over [downstream watermark, pre-restore cursor) — the
//     emissions the black-holed links swallowed — while the instance is
//     still paused (sole producer on those edges),
//  9. resume the instance,
//  10. per upstream: replay [watermark, upstream cursor) into the instance,
//     then resume that upstream — replay-before-resume keeps the replayed
//     interval ahead of new traffic in sequence order — and finally
//     re-queue the held finals so termination trails every replayed byte.
//
// Steps 8 and 10 compose: a restored (Snapshotter) instance re-consumes its
// post-checkpoint inputs and deterministically re-emits them with its
// rewound cursor, and every re-emission at or below a downstream's healed
// watermark is absorbed by dedupe; an unrestored instance keeps its live
// zombie state, so only the black-holed gaps themselves are replayed.
func (r *Recovery) recoverInstance(ctx context.Context, st *pipeline.Stage, deadNode string) (err error) {
	dep := r.dep.deployer
	stageID, instance := st.ID(), st.Instance()
	start := dep.clk.Now()
	ev := RecoveryEvent{At: start, Node: deadNode, Stage: stageID, Instance: instance}
	defer func() {
		if err != nil {
			if errors.Is(err, errStopped) {
				// Nothing to recover; not a failure.
				err = nil
				return
			}
			ev.Err = err.Error()
		}
		ev.Duration = dep.clk.Now().Sub(start)
		r.mu.Lock()
		r.events = append(r.events, ev)
		r.mu.Unlock()
	}()

	// 1. Choose and reserve the destination: the directory's best
	// candidate that is alive and not the dead node itself.
	req, _ := r.dep.planRequirement(stageID, instance)
	req.NearSource = ""
	toNode, err := r.allocateLive(req, deadNode)
	if err != nil {
		return fmt.Errorf("service: recover %s/%d: %w", stageID, instance, err)
	}
	ev.To = toNode
	released := false
	defer func() {
		if err != nil && !released {
			dep.dir.Release(toNode, req)
		}
	}()

	// Held-aside final markers from the discard sweeps below. Registered
	// before the pause defer so it runs after the stage is resumed on
	// every path: Requeue blocks on a full queue (a dropped final would
	// wedge every downstream), and only a draining stage can make room.
	var finals []*pipeline.Packet
	defer func() { st.Requeue(finals) }()

	// 2. Pause the crashed instance and capture its pre-restore emission
	// cursor — the upper bound of the output intervals to heal.
	if err = pauseForRecovery(ctx, st); err != nil {
		return err
	}
	hiSelf := st.EmitSeq()
	resumed := false
	defer func() {
		if !resumed {
			_ = st.Resume()
		}
	}()

	// 3. Clear the crashed instance's queued input BEFORE pausing the
	// upstreams. An upstream caught mid-push into this full queue when the
	// node died is parked inside emit and cannot reach a pause boundary;
	// severing the link stops new pushes but never wakes a blocked one.
	// Discarding frees the queue so any such pusher completes and parks —
	// without this, pausing upstreams deadlocks: the queue cannot drain
	// (st is paused) and the upstream cannot park (push blocked). The
	// queued data is stale anyway: replay re-covers the interval. Finals
	// are held aside and re-queued (by the deferred Requeue above) once
	// replay has refilled the data they must trail.
	ev.Discarded, finals = st.DiscardQueued()

	// 4. Pause the upstreams and capture their emission cursors. A
	// stopped upstream needs no pause — its cursor and ring are stable.
	ups := st.Upstreams()
	hi := make([]uint64, len(ups))
	pausedUp := make([]bool, len(ups))
	defer func() {
		for i, up := range ups {
			if pausedUp[i] {
				_ = up.Resume()
			}
		}
	}()
	for i, up := range ups {
		upErr := pauseForRecovery(ctx, up)
		switch {
		case upErr == nil:
			pausedUp[i] = true
		case errors.Is(upErr, errStopped):
			// fine: cursor is final
		default:
			return fmt.Errorf("service: recover %s/%d: pause upstream %s/%d: %w",
				stageID, instance, up.ID(), up.Instance(), upErr)
		}
		hi[i] = up.EmitSeq()
	}

	// 5. Sweep the queue again now that the upstreams are quiet. Between
	// the first discard and their pause, an unwedged pusher may have
	// landed a few more packets; their sequence numbers fall inside the
	// replay interval read above, and consuming them here too would
	// double-count (or, worse, advance the restored watermark past
	// replayed-but-unprocessed data). Finals join the held-aside set.
	moreDiscarded, moreFinals := st.DiscardQueued()
	ev.Discarded += moreDiscarded
	finals = append(finals, moreFinals...)
	if r.discarded != nil {
		r.discarded.Add(float64(ev.Discarded))
	}

	// 6. Restore the checkpoint. Without a Snapshotter the instance keeps
	// its live (zombie) state and watermarks — replay then covers only the
	// black-holed gap, giving at-least-once without state rewind. With
	// one, state + cursors rewind together so re-emission after restore
	// reproduces the original sequence numbering. A stage parked inside an
	// emission is mid-Process: restoring state under its live stack would
	// splice checkpointed state into a half-applied update, so it keeps
	// its zombie state instead.
	if cp, ok := r.store.Latest(stageID, instance); ok && cp.HasState && !st.PausedMidEmit() {
		if snap, has := st.Snapshotter(); has {
			if err = snap.Restore(cp.State); err != nil {
				return fmt.Errorf("service: recover %s/%d: restore: %w", stageID, instance, err)
			}
			st.SetEmitSeq(cp.EmitSeq)
			st.SetMarks(cp.Marks)
			ev.Restored = true
		}
	}

	// 7. Re-home the instance.
	st.SetNode(toNode)
	r.dep.Engine.Relink(st, func(a, b *pipeline.Stage) *netsim.Link {
		if a.Node() == b.Node() {
			return nil
		}
		return dep.net.Link(a.Node(), b.Node())
	})
	if dep.o != nil {
		st.Instrument(dep.o.Registry)
	}

	// 8. Heal the output gaps while the instance is still paused (sole
	// producer on its outbound edges): each healthy downstream's watermark
	// for this emitter tells exactly which interval its black-holed link
	// swallowed.
	for _, down := range st.Downstreams() {
		if down == st {
			continue
		}
		var from uint64
		var known bool
		dErr := pauseForRecovery(ctx, down)
		switch {
		case dErr == nil:
			if m := markOf(down.Marks(), stageID, instance); m != nil {
				from, known = m.Next, true
			}
			if rErr := down.Resume(); rErr != nil {
				return fmt.Errorf("service: recover %s/%d: resume downstream %s/%d: %w",
					stageID, instance, down.ID(), down.Instance(), rErr)
			}
		case errors.Is(dErr, errStopped):
			// The downstream already terminated; nothing to heal into.
			continue
		default:
			return fmt.Errorf("service: recover %s/%d: pause downstream %s/%d: %w",
				stageID, instance, down.ID(), down.Instance(), dErr)
		}
		if !known {
			// Fault tolerance off downstream: no watermark to anchor a
			// heal, and no dedupe to absorb one.
			ev.Gap = true
			continue
		}
		if from >= hiSelf {
			continue // this edge lost nothing
		}
		replayed, gap, repErr := st.ReplayInto(ctx, down, from, hiSelf)
		ev.Replayed += replayed
		if gap {
			ev.Gap = true
		}
		if repErr != nil {
			return fmt.Errorf("service: recover %s/%d: heal %s/%d: %w",
				stageID, instance, down.ID(), down.Instance(), repErr)
		}
	}

	// 9. Bring the instance back.
	if err = st.Resume(); err != nil {
		return fmt.Errorf("service: recover %s/%d: %w", stageID, instance, err)
	}
	resumed = true
	dep.dir.Release(deadNode, req)
	released = true
	r.dep.setPlacement(stageID, instance, toNode)

	// 10. Replay the swallowed input interval per upstream, each before its
	// upstream resumes so new emissions queue behind the replay.
	marks := st.Marks() // st runs again, but only its own goroutine mutates marks; this copy is the paused-time table
	for i, up := range ups {
		from := uint64(0)
		if m := markOf(marks, up.ID(), up.Instance()); m != nil {
			from = m.Next
		} else if marks == nil {
			// Fault tolerance off for this stage: no watermark, no
			// dedupe — replaying would blindly duplicate. Count the
			// uncovered interval as a gap instead.
			ev.Gap = true
			continue
		}
		if from >= hi[i] {
			continue // nothing swallowed on this edge
		}
		replayed, gap, repErr := up.ReplayInto(ctx, st, from, hi[i])
		ev.Replayed += replayed
		if gap {
			ev.Gap = true
		}
		if repErr != nil {
			return fmt.Errorf("service: recover %s/%d: %w", stageID, instance, repErr)
		}
		if pausedUp[i] {
			pausedUp[i] = false
			if upErr := up.Resume(); upErr != nil {
				return fmt.Errorf("service: recover %s/%d: resume upstream %s/%d: %w",
					stageID, instance, up.ID(), up.Instance(), upErr)
			}
		}
	}
	if r.recoveries != nil {
		r.recoveries.Inc()
	}
	if r.replayed != nil {
		r.replayed.Add(float64(ev.Replayed))
	}
	if ev.Gap && r.gaps != nil {
		r.gaps.Inc()
	}
	r.observe(ev, deadNode, toNode)
	return nil
}

// markOf finds the watermark for the named emitter in a copied table.
func markOf(marks []pipeline.UpstreamMark, stage string, instance int) *pipeline.UpstreamMark {
	for i := range marks {
		if marks[i].Stage == stage && marks[i].Instance == instance {
			return &marks[i]
		}
	}
	return nil
}

// allocateLive reserves capacity for req on the directory's best-scored
// live node other than deadNode.
func (r *Recovery) allocateLive(req grid.Requirement, deadNode string) (string, error) {
	dep := r.dep.deployer
	for _, n := range dep.dir.Query(req) {
		if n.Name == deadNode || !dep.net.Alive(n.Name) {
			continue
		}
		if err := dep.dir.Allocate(n.Name, req); err == nil {
			return n.Name, nil
		}
	}
	return "", fmt.Errorf("no live node satisfies the requirement (dead: %s)", deadNode)
}

// observe publishes the recovery to the decision log, the flight recorder,
// the migration trail, and the structured log.
func (r *Recovery) observe(ev RecoveryEvent, from, to string) {
	dep := r.dep.deployer
	o := dep.o
	if o == nil {
		return
	}
	d := obs.DecisionEvent{
		Kind:     obs.DecisionRecovery,
		Rule:     "node-failure",
		Stage:    ev.Stage,
		Instance: ev.Instance,
		Node:     to,
		Outcome: fmt.Sprintf("recovered: %s → %s (replayed %d, discarded %d, restored %t)",
			from, to, ev.Replayed, ev.Discarded, ev.Restored),
		Input: map[string]any{
			"dead_node": from,
			"discarded": ev.Discarded,
			"replayed":  ev.Replayed,
			"restored":  ev.Restored,
			"gap":       ev.Gap,
		},
	}
	if pol := dep.pol; pol != nil {
		pol.RecordDecision(d)
	} else {
		o.DecisionLog().Record(d)
	}
	o.MigrationTrail().Record(obs.MigrationEvent{
		At:            ev.At.Add(ev.Duration),
		Stage:         ev.Stage,
		Instance:      ev.Instance,
		From:          from,
		To:            to,
		Drain:         ev.Duration,
		QueuedPackets: ev.Discarded,
		Reason:        "recovery",
	})
	o.FlightRec().Record(obs.FlightEvent{
		Kind:     obs.FlightRecovery,
		Stage:    ev.Stage,
		Instance: ev.Instance,
		Node:     to,
		Detail:   fmt.Sprintf("%s → %s (replayed %d, discarded %d, restored %t)", from, to, ev.Replayed, ev.Discarded, ev.Restored),
		Value:    float64(ev.Replayed),
	})
	o.Log().Info("instance recovered",
		"stage", ev.Stage, "instance", ev.Instance, "from", from, "to", to,
		"replayed", ev.Replayed, "discarded", ev.Discarded,
		"restored", ev.Restored, "gap", ev.Gap, "duration", ev.Duration)
}
