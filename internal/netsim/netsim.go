// Package netsim emulates the network configurations used in the paper's
// evaluation.
//
// The authors ran all experiments inside one cluster and "introduced delay in
// the networks to create execution configurations with different bandwidths"
// (1 KB/s, 10 KB/s, 100 KB/s, 1 MB/s). This package reproduces that setup: a
// Link imposes transfer time n/bandwidth (plus propagation latency) in
// virtual time on every payload of n bytes, using a token bucket so that
// concurrent senders on one link share its capacity, exactly as competing
// streams shared their injected-delay links.
package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/obs"
)

// Common bandwidth constants, in bytes per (virtual) second, matching the
// paper's four network configurations.
const (
	KBps   int64 = 1000
	MBps   int64 = 1000 * KBps
	BW1K         = 1 * KBps   // 1 KB/s configuration
	BW10K        = 10 * KBps  // 10 KB/s configuration
	BW100K       = 100 * KBps // 100 KB/s configuration
	BW1M         = 1 * MBps   // 1 MB/s configuration
)

// LinkConfig describes one emulated link.
type LinkConfig struct {
	// Bandwidth is the link capacity in bytes per virtual second.
	// Zero means unlimited (no transmission delay).
	Bandwidth int64
	// Latency is the one-way propagation delay added to every transfer.
	Latency time.Duration
	// Burst is the token-bucket depth in bytes: how much an idle link can
	// absorb instantly. Zero selects a default of one bandwidth-second
	// (min 2 KiB), which keeps short-term pacing tight while letting a
	// handful of packets start without a stall.
	Burst int64
	// Quantum batches pacing sleeps: a sender blocks only once its owed
	// transmission time reaches Quantum (the backlog persists in the
	// shaper either way, so the average rate is exact). Batching exists
	// because real timers have ~0.1 ms granularity: with a heavily
	// compressed virtual clock, per-packet sleeps of a few virtual
	// milliseconds would map to unsleepable nanoseconds. Zero sleeps on
	// every transfer.
	Quantum time.Duration
}

func (c LinkConfig) burst() int64 {
	if c.Burst > 0 {
		return c.Burst
	}
	b := c.Bandwidth
	if b < 2<<10 {
		b = 2 << 10
	}
	return b
}

// LinkStats is a snapshot of a link's accounting.
type LinkStats struct {
	// Bytes is the total payload volume carried.
	Bytes int64
	// Messages is the number of Transfer calls completed.
	Messages int64
	// Waited is the cumulative virtual time senders spent blocked on this
	// link (transmission pacing only, excluding fixed latency).
	Waited time.Duration
	// Dropped is the number of deliveries discarded by fault injection on
	// this link (probabilistic loss or a black-hole after a node kill or
	// partition). Counted by FaultVerdict, so the figure is exact however
	// the emitting side reacts to the verdict.
	Dropped int64
}

// Link is a shared, emulated network link. Transfer blocks the caller for
// the virtual time the payload would occupy the link. A Link is safe for
// concurrent use; concurrent senders serialize through the same shaper and
// therefore share the bandwidth.
//
// The shaper uses the virtual-finish-time model: nextFree is the virtual
// instant the link finishes transmitting everything accepted so far. An
// idle link accrues at most Burst bytes of credit.
type Link struct {
	cfg LinkConfig
	clk clock.Clock

	// transferSec, when instrumented, records each batch's total
	// transfer time (pacing wait + latency) — the per-edge contribution
	// to end-to-end latency. Atomic so Instrument can attach it while
	// traffic flows.
	transferSec atomic.Pointer[obs.Histogram]

	// fault, when non-nil, is the installed fault-injection state (loss,
	// reorder, black-hole — see faults.go). Atomic so the healthy path
	// pays exactly one pointer load to learn there is nothing to decide.
	fault atomic.Pointer[linkFault]

	mu       sync.Mutex
	nextFree time.Time
	stats    LinkStats
}

// NewLink returns a link driven by clk. A nil clock panics: links without a
// time base cannot pace anything.
func NewLink(clk clock.Clock, cfg LinkConfig) *Link {
	if clk == nil {
		panic("netsim: NewLink requires a clock")
	}
	if cfg.Bandwidth < 0 {
		panic(fmt.Sprintf("netsim: negative bandwidth %d", cfg.Bandwidth))
	}
	l := &Link{cfg: cfg, clk: clk}
	if cfg.Bandwidth > 0 {
		// Start with full burst credit.
		l.nextFree = clk.Now().Add(-l.burstWindow())
	}
	return l
}

// burstWindow is the idle credit expressed as time: Burst bytes at line
// rate.
func (l *Link) burstWindow() time.Duration {
	return time.Duration(float64(l.cfg.burst()) / float64(l.cfg.Bandwidth) * float64(time.Second))
}

// Config returns the link's configuration (with the current bandwidth).
func (l *Link) Config() LinkConfig {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cfg
}

// SetBandwidth changes the link's capacity at runtime (zero means
// unlimited), modeling a grid whose available bandwidth shifts mid-run —
// the condition live re-deployment reacts to. Traffic already accepted
// into the shaper keeps its committed finish time; only transfers after
// the change pace at the new rate. Latency, Burst, and Quantum are
// immutable.
func (l *Link) SetBandwidth(bw int64) {
	if bw < 0 {
		panic(fmt.Sprintf("netsim: negative bandwidth %d", bw))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if bw == l.cfg.Bandwidth {
		return
	}
	wasUnlimited := l.cfg.Bandwidth == 0
	l.cfg.Bandwidth = bw
	if bw > 0 {
		// Grant at most the burst credit of the new rate; a previously
		// unlimited link starts with a full (not infinite) bucket.
		earliest := l.clk.Now().Add(-l.burstWindow())
		if wasUnlimited || l.nextFree.Before(earliest) {
			l.nextFree = earliest
		}
	}
}

// Transfer blocks for the virtual time needed to carry n payload bytes and
// returns the pacing delay owed (plus latency). When a Quantum is
// configured, small owed delays are not slept immediately — they remain in
// the shaper and a later transfer sleeps the accumulated backlog — so the
// long-run rate is exact while the number of real timer operations stays
// bounded. n <= 0 incurs only the propagation latency.
func (l *Link) Transfer(n int) time.Duration {
	return l.TransferBatch(n, 1)
}

// TransferBatch carries msgs coalesced messages totaling n payload bytes in
// one shaper reservation: a single token-bucket charge for the summed bytes
// and a single propagation-latency charge for the whole batch. Because the
// virtual-finish-time shaper is linear in bytes, reserving the sum is
// byte-exact — the batch clears the link at the same virtual instant the
// messages would have individually — so the paper's B/b transfer law holds
// unchanged while the per-message locking and timer traffic collapses to
// one round-trip per batch. LinkStats stays message- and byte-accurate:
// Messages advances by msgs, Bytes by n.
func (l *Link) TransferBatch(n, msgs int) time.Duration {
	if msgs < 1 {
		msgs = 1
	}
	// Co-located fast path: an unlimited, zero-latency link (the lazy
	// loopback edges between stages sharing a node) imposes no pacing, so
	// the shaper reservation is skipped and accounting takes one lock
	// round-trip instead of two.
	l.mu.Lock()
	if l.cfg.Bandwidth == 0 && l.cfg.Latency == 0 {
		l.stats.Messages += int64(msgs)
		l.stats.Bytes += int64(n)
		l.mu.Unlock()
		if h := l.transferSec.Load(); h != nil {
			h.Observe(0)
		}
		return 0
	}
	l.mu.Unlock()
	wait := l.reserve(n)
	total := wait + l.cfg.Latency
	if total > 0 && (wait >= l.cfg.Quantum || l.cfg.Latency > 0) {
		l.clk.Sleep(total)
	}
	l.mu.Lock()
	l.stats.Messages += int64(msgs)
	l.stats.Bytes += int64(n)
	l.stats.Waited += wait
	l.mu.Unlock()
	if h := l.transferSec.Load(); h != nil {
		h.Observe(total.Seconds())
	}
	return total
}

// reserve accepts n bytes into the shaper and returns how long the caller
// must wait before its payload has cleared the link.
func (l *Link) reserve(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cfg.Bandwidth == 0 {
		return 0
	}
	now := l.clk.Now()
	if earliest := now.Add(-l.burstWindow()); l.nextFree.Before(earliest) {
		l.nextFree = earliest
	}
	l.nextFree = l.nextFree.Add(time.Duration(float64(n) / float64(l.cfg.Bandwidth) * float64(time.Second)))
	wait := l.nextFree.Sub(now)
	if wait < 0 {
		return 0
	}
	return wait
}

// Stats returns a snapshot of the link's accounting.
func (l *Link) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Network is a named collection of nodes and the directed links between
// them. The Deployer queries it to wire stage containers with the bandwidth
// the application's placement implies.
type Network struct {
	clk clock.Clock

	mu      sync.Mutex
	nodes   map[string]bool
	links   map[string]*Link     // key: "from->to"
	ends    map[string][2]string // link key -> {from, to}, for fault topology
	dead    map[string]bool      // killed nodes (see Kill/Heal in faults.go)
	parts   map[string]bool      // severed directed pairs, key "a->b"
	onLive  []func(node string, alive bool)
	defCfg  LinkConfig
	hasDef  bool
	created int
}

// NewNetwork returns an empty topology on clk.
func NewNetwork(clk clock.Clock) *Network {
	if clk == nil {
		panic("netsim: NewNetwork requires a clock")
	}
	return &Network{
		clk:   clk,
		nodes: make(map[string]bool),
		links: make(map[string]*Link),
		ends:  make(map[string][2]string),
		dead:  make(map[string]bool),
		parts: make(map[string]bool),
	}
}

// AddNode registers a node name. Adding an existing node is a no-op.
func (n *Network) AddNode(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[name] = true
}

// Nodes returns the number of registered nodes.
func (n *Network) Nodes() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.nodes)
}

// SetDefaultLink configures the link used between any pair of nodes that has
// no explicit link.
func (n *Network) SetDefaultLink(cfg LinkConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defCfg = cfg
	n.hasDef = true
}

// Connect installs a directed link from one node to another, registering the
// nodes if needed, and returns it.
func (n *Network) Connect(from, to string, cfg LinkConfig) *Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[from] = true
	n.nodes[to] = true
	l := NewLink(n.clk, cfg)
	n.registerLocked(from, to, l)
	return l
}

// InstallLink routes from->to over an existing link, so several node pairs
// can share one physical bottleneck (a site's WAN uplink, say): traffic from
// every pair then competes for the same bandwidth.
func (n *Network) InstallLink(from, to string, l *Link) {
	if l == nil {
		panic("netsim: InstallLink requires a link")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[from] = true
	n.nodes[to] = true
	n.registerLocked(from, to, l)
}

// registerLocked records the link under its directed key and applies any
// standing fault topology (a link created toward a dead node black-holes
// from birth).
func (n *Network) registerLocked(from, to string, l *Link) {
	n.links[from+"->"+to] = l
	n.ends[from+"->"+to] = [2]string{from, to}
	if n.severedLocked(from, to) {
		l.SetBlackhole(true)
	}
}

// ConnectBidirectional installs links in both directions with the same
// configuration and returns them (from->to, to->from).
func (n *Network) ConnectBidirectional(from, to string, cfg LinkConfig) (*Link, *Link) {
	return n.Connect(from, to, cfg), n.Connect(to, from, cfg)
}

// Link returns the link from one node to another. Traffic between a node and
// itself, or between nodes with no explicit link when no default is set,
// travels on an unlimited loopback link (allocated lazily, one per pair).
func (n *Network) Link(from, to string) *Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.linkLocked(from, to)
}

func (n *Network) linkLocked(from, to string) *Link {
	key := from + "->" + to
	if l, ok := n.links[key]; ok {
		return l
	}
	cfg := LinkConfig{} // unlimited loopback
	if from != to && n.hasDef {
		cfg = n.defCfg
	}
	l := NewLink(n.clk, cfg)
	n.registerLocked(from, to, l)
	n.created++
	return l
}

// TotalBytes returns the payload volume carried across all links. A link
// installed on several node pairs is counted once.
func (n *Network) TotalBytes() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	seen := make(map[*Link]bool, len(n.links))
	var sum int64
	for _, l := range n.links {
		if seen[l] {
			continue
		}
		seen[l] = true
		sum += l.Stats().Bytes
	}
	return sum
}
