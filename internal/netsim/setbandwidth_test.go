package netsim

import (
	"sync"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

// TestSetBandwidthChangesPacing checks a live bandwidth change takes
// effect for subsequent transfers: the same payload owes 10x the pacing
// delay after a 10x bandwidth drop. A huge Quantum keeps the owed delay
// inside the shaper (Transfer reports it without sleeping), so the test is
// exact on a manual clock.
func TestSetBandwidthChangesPacing(t *testing.T) {
	clk := clock.NewManual()
	l := NewLink(clk, LinkConfig{Bandwidth: 10_000, Quantum: time.Hour})
	if d := l.Transfer(10_000); d != 0 { // consumes the initial burst credit
		t.Fatalf("burst-credit transfer owed %v, want 0", d)
	}
	full := l.Transfer(10_000)
	if full != time.Second {
		t.Fatalf("full-bandwidth transfer owed %v, want 1s", full)
	}

	clk.Advance(full) // let the backlog clear before collapsing
	l.SetBandwidth(1_000)
	if got := l.Config().Bandwidth; got != 1_000 {
		t.Fatalf("Config().Bandwidth = %d after SetBandwidth(1000)", got)
	}
	collapsed := l.Transfer(10_000)
	if collapsed != 10*time.Second {
		t.Fatalf("collapsed transfer owed %v, want 10s (full was %v)", collapsed, full)
	}
}

// TestSetBandwidthFromUnlimited checks capping a previously unlimited link
// starts a fresh pacing window rather than back-charging old traffic.
func TestSetBandwidthFromUnlimited(t *testing.T) {
	clk := clock.NewManual()
	l := NewLink(clk, LinkConfig{Quantum: time.Hour})
	l.Transfer(1 << 30) // free while unlimited
	l.SetBandwidth(1_000)
	if d := l.Transfer(1_000); d > time.Second {
		t.Fatalf("first capped transfer owed %v; old unlimited traffic was back-charged", d)
	}
}

// TestSetBandwidthToUnlimited lifts the cap and checks transfers stop
// owing pacing delay. On a manual clock a Transfer that slept would hang,
// so merely returning proves nothing was paced.
func TestSetBandwidthToUnlimited(t *testing.T) {
	clk := clock.NewManual()
	l := NewLink(clk, LinkConfig{Bandwidth: 100, Quantum: time.Millisecond})
	l.SetBandwidth(0)
	// At 100 B/s this transfer would take hours.
	if d := l.Transfer(1 << 20); d != 0 {
		t.Fatalf("unlimited transfer owed %v", d)
	}
}

// TestSetBandwidthConcurrent exercises SetBandwidth racing Transfer (run
// with -race).
func TestSetBandwidthConcurrent(t *testing.T) {
	clk := clock.NewScaled(1_000_000)
	l := NewLink(clk, LinkConfig{Bandwidth: 1 << 20, Quantum: time.Millisecond})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Transfer(100)
				l.TransferBatch(200, 2)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			l.SetBandwidth(int64(1<<20 + i))
		}
	}()
	wg.Wait()
}

// TestSetBandwidthRejectsNegative documents the contract.
func TestSetBandwidthRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative bandwidth accepted")
		}
	}()
	l := NewLink(clock.NewManual(), LinkConfig{})
	l.SetBandwidth(-1)
}
