package netsim

import (
	"sort"

	"github.com/gates-middleware/gates/internal/obs"
)

// Instrument publishes the link's counters into reg under the given route
// name (e.g. "n1->n2") as scrape-time callbacks — the hot transfer path is
// untouched. A nil registry is a no-op.
func (l *Link) Instrument(reg *obs.Registry, name string) {
	if reg == nil {
		return
	}
	lb := map[string]string{"link": name}
	reg.CounterFunc("gates_link_bytes_total",
		"Payload bytes carried by the emulated link.", lb,
		func() float64 { return float64(l.Stats().Bytes) })
	reg.CounterFunc("gates_link_messages_total",
		"Messages carried by the emulated link.", lb,
		func() float64 { return float64(l.Stats().Messages) })
	reg.CounterFunc("gates_link_waited_seconds_total",
		"Cumulative virtual time senders were paced by the link shaper.", lb,
		func() float64 { return l.Stats().Waited.Seconds() })
	l.transferSec.Store(reg.Histogram("gates_link_transfer_seconds",
		"Virtual time one coalesced batch spent on the link (pacing wait + propagation latency).",
		obs.LatencyBuckets, lb))
}

// Instrument publishes every installed link into reg, labeled by route. A
// link shared by several routes (InstallLink) is registered once, under its
// lexicographically first route, so aggregations over gates_link_bytes_total
// match TotalBytes instead of multiply counting the shared bottleneck.
func (n *Network) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	n.mu.Lock()
	keys := make([]string, 0, len(n.links))
	for k := range n.links {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	seen := make(map[*Link]bool, len(keys))
	routes := make([]struct {
		key  string
		link *Link
	}, 0, len(keys))
	for _, k := range keys {
		l := n.links[k]
		if seen[l] {
			continue
		}
		seen[l] = true
		routes = append(routes, struct {
			key  string
			link *Link
		}{k, l})
	}
	n.mu.Unlock()
	for _, r := range routes {
		r.link.Instrument(reg, r.key)
	}
}
