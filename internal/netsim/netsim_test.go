package netsim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

func TestNewLinkPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewLink(nil, ...) did not panic")
			}
		}()
		NewLink(nil, LinkConfig{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative bandwidth did not panic")
			}
		}()
		NewLink(clock.NewManual(), LinkConfig{Bandwidth: -1})
	}()
}

func TestUnlimitedLinkNoDelay(t *testing.T) {
	clk := clock.NewManual()
	l := NewLink(clk, LinkConfig{}) // unlimited
	if d := l.Transfer(1 << 20); d != 0 {
		t.Fatalf("unlimited link imposed %v delay", d)
	}
}

func TestLatencyOnly(t *testing.T) {
	clk := clock.NewScaled(100000)
	l := NewLink(clk, LinkConfig{Latency: 3 * time.Second})
	if d := l.Transfer(10); d != 3*time.Second {
		t.Fatalf("latency-only delay = %v, want 3s", d)
	}
}

func TestTransferPacesAtBandwidth(t *testing.T) {
	// 10 KB/s link, burst 1 KB. Sending 101 KB total must take
	// (101KB - 1KB burst)/10KBps = 10 virtual seconds. A Manual clock
	// advanced by each owed wait makes the check deterministic (wall
	// timers would add scheduler overshoot to the measurement).
	clk := clock.NewManual()
	l := NewLink(clk, LinkConfig{Bandwidth: 10 * KBps, Burst: 1000})
	var total time.Duration
	for i := 0; i < 101; i++ {
		w := l.reserve(1000)
		total += w
		clk.Advance(w)
	}
	if total < 9999*time.Millisecond || total > 10001*time.Millisecond {
		t.Fatalf("101KB over 10KB/s owed %v of pacing, want 10s", total)
	}
}

func TestBurstAbsorbsInitialPayload(t *testing.T) {
	clk := clock.NewScaled(100000)
	l := NewLink(clk, LinkConfig{Bandwidth: 1 * KBps, Burst: 5000})
	if d := l.Transfer(5000); d != 0 {
		t.Fatalf("burst-sized first transfer delayed %v, want 0", d)
	}
	if d := l.Transfer(1000); d <= 0 {
		t.Fatal("post-burst transfer was not paced")
	}
}

func TestTokensRefillWhileIdle(t *testing.T) {
	clk := clock.NewManual()
	l := NewLink(clk, LinkConfig{Bandwidth: 1000, Burst: 1000})
	// Drain the bucket without blocking (burst covers it).
	if w := l.reserve(1000); w != 0 {
		t.Fatalf("first reserve waited %v", w)
	}
	// Immediately, another 500B should require 0.5s of pacing.
	if w := l.reserve(500); w != 500*time.Millisecond {
		t.Fatalf("backlogged reserve = %v, want 500ms", w)
	}
	// After 2s idle the bucket refills (capped at burst), so a fresh 500B
	// is free again.
	clk.Advance(2 * time.Second)
	if w := l.reserve(500); w != 0 {
		t.Fatalf("post-idle reserve = %v, want 0", w)
	}
}

func TestBurstCapsRefill(t *testing.T) {
	clk := clock.NewManual()
	l := NewLink(clk, LinkConfig{Bandwidth: 1000, Burst: 1000})
	clk.Advance(time.Hour) // would accumulate 3.6MB without the cap
	if w := l.reserve(2000); w != time.Second {
		t.Fatalf("reserve after long idle = %v, want 1s (only burst available)", w)
	}
}

func TestQuantumBatchesSleeps(t *testing.T) {
	// With a Manual clock that nobody advances, any Transfer that sleeps
	// would block forever — so completing Transfers proves the quantum
	// suppressed the sleep, while the owed backlog still accumulates.
	clk := clock.NewManual()
	l := NewLink(clk, LinkConfig{Bandwidth: 1000, Burst: 1000, Quantum: 10 * time.Second})
	for i := 0; i < 5; i++ {
		l.Transfer(1000) // 1s owed each after the burst
	}
	if w := l.Stats().Waited; w < 3*time.Second {
		t.Fatalf("owed pacing = %v, want >= 3s of backlog", w)
	}
	// The sixth transfer would owe >= 5s, still under the 10s quantum.
	done := make(chan struct{})
	go func() {
		l.Transfer(1000)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("transfer under quantum slept")
	}
}

func TestStatsAccounting(t *testing.T) {
	clk := clock.NewScaled(100000)
	l := NewLink(clk, LinkConfig{Bandwidth: 100 * KBps})
	l.Transfer(500)
	l.Transfer(1500)
	st := l.Stats()
	if st.Bytes != 2000 || st.Messages != 2 {
		t.Fatalf("stats = %+v, want Bytes=2000 Messages=2", st)
	}
}

func TestConcurrentSendersShareBandwidth(t *testing.T) {
	// Two senders each pushing 50KB through a shared 10KB/s link: total
	// 100KB minus burst must take >= ~9 virtual seconds.
	clk := clock.NewScaled(100000)
	l := NewLink(clk, LinkConfig{Bandwidth: 10 * KBps, Burst: 10000})
	sw := clock.NewStopwatch(clk)
	var wg sync.WaitGroup
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Transfer(1000)
			}
		}()
	}
	wg.Wait()
	if elapsed := sw.Elapsed(); elapsed < 8*time.Second {
		t.Fatalf("100KB shared over 10KB/s took %v, want >= ~9s", elapsed)
	}
}

func TestNetworkDefaultAndExplicitLinks(t *testing.T) {
	clk := clock.NewManual()
	n := NewNetwork(clk)
	n.SetDefaultLink(LinkConfig{Bandwidth: BW1K})
	n.Connect("a", "b", LinkConfig{Bandwidth: BW1M})
	if got := n.Link("a", "b").Config().Bandwidth; got != BW1M {
		t.Fatalf("explicit link bandwidth = %d, want %d", got, BW1M)
	}
	if got := n.Link("a", "c").Config().Bandwidth; got != BW1K {
		t.Fatalf("default link bandwidth = %d, want %d", got, BW1K)
	}
	if got := n.Link("a", "a").Config().Bandwidth; got != 0 {
		t.Fatalf("loopback bandwidth = %d, want unlimited", got)
	}
}

func TestNetworkLinkIsStable(t *testing.T) {
	n := NewNetwork(clock.NewManual())
	l1 := n.Link("x", "y")
	l2 := n.Link("x", "y")
	if l1 != l2 {
		t.Fatal("Link returned different instances for the same pair")
	}
}

func TestNetworkNodesAndTotalBytes(t *testing.T) {
	clk := clock.NewScaled(100000)
	n := NewNetwork(clk)
	n.AddNode("a")
	n.AddNode("a")
	n.Connect("a", "b", LinkConfig{})
	if n.Nodes() != 2 {
		t.Fatalf("Nodes = %d, want 2", n.Nodes())
	}
	n.Link("a", "b").Transfer(123)
	n.Link("b", "a").Transfer(77) // lazily created loopback-default link
	if got := n.TotalBytes(); got != 200 {
		t.Fatalf("TotalBytes = %d, want 200", got)
	}
}

func TestConnectBidirectional(t *testing.T) {
	n := NewNetwork(clock.NewManual())
	fw, bw := n.ConnectBidirectional("a", "b", LinkConfig{Bandwidth: BW10K})
	if fw == bw {
		t.Fatal("bidirectional links must be distinct")
	}
	if n.Link("a", "b") != fw || n.Link("b", "a") != bw {
		t.Fatal("bidirectional links not registered")
	}
}

// Property: cumulative pacing delay for any sequence of transfers is at
// least (totalBytes - burst) / bandwidth and never negative.
func TestPacingLowerBoundProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		clk := clock.NewManual()
		const bw, burst = 1000, 2000
		l := NewLink(clk, LinkConfig{Bandwidth: bw, Burst: burst})
		var total int64
		var waited time.Duration
		for _, s := range sizes {
			n := int(s % 3000)
			w := l.reserve(n)
			if w < 0 {
				return false
			}
			waited += w
			total += int64(n)
			clk.Advance(w) // sender blocks for the pacing time
		}
		minWait := time.Duration(float64(total-burst) / bw * float64(time.Second))
		// Each reserve truncates to whole nanoseconds; allow that slack.
		slack := time.Duration(len(sizes)+1) * time.Nanosecond
		return waited+slack >= minWait
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInstallLinkShares(t *testing.T) {
	clk := clock.NewManual()
	n := NewNetwork(clk)
	shared := NewLink(clk, LinkConfig{Bandwidth: 1000, Burst: 1000, Quantum: time.Hour})
	n.InstallLink("a1", "b", shared)
	n.InstallLink("a2", "b", shared)
	if n.Link("a1", "b") != shared || n.Link("a2", "b") != shared {
		t.Fatal("installed link not returned for both pairs")
	}
	// Traffic from both pairs lands on the same shaper...
	n.Link("a1", "b").Transfer(600)
	n.Link("a2", "b").Transfer(600)
	if got := shared.Stats().Bytes; got != 1200 {
		t.Fatalf("shared link carried %d bytes, want 1200", got)
	}
	// ...and TotalBytes counts the shared link once.
	if got := n.TotalBytes(); got != 1200 {
		t.Fatalf("TotalBytes = %d, want 1200", got)
	}
}

func TestInstallLinkNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("InstallLink(nil) did not panic")
		}
	}()
	NewNetwork(clock.NewManual()).InstallLink("a", "b", nil)
}

// TestTransferBatchBytesExact: reserving a batch's summed bytes must owe
// exactly the pacing that the same bytes sent one message at a time would
// owe — the shaper is linear in bytes, so virtual-time pacing is byte-exact
// either way.
func TestTransferBatchBytesExact(t *testing.T) {
	mk := func() (*clock.Manual, *Link) {
		clk := clock.NewManual()
		return clk, NewLink(clk, LinkConfig{Bandwidth: 10 * KBps, Burst: 1000})
	}

	clkA, perItem := mk()
	var totalA time.Duration
	for i := 0; i < 40; i++ {
		w := perItem.reserve(500)
		totalA += w
		clkA.Advance(w)
	}

	clkB, batched := mk()
	var totalB time.Duration
	for i := 0; i < 5; i++ { // same 20 KB in batches of 8 messages
		w := batched.reserve(8 * 500)
		totalB += w
		clkB.Advance(w)
	}

	if totalA != totalB {
		t.Fatalf("pacing differs: per-item %v vs batched %v", totalA, totalB)
	}
}

// TestTransferBatchStatsAccurate: Messages counts logical messages, Bytes
// the summed payload.
func TestTransferBatchStatsAccurate(t *testing.T) {
	clk := clock.NewManual()
	l := NewLink(clk, LinkConfig{}) // unlimited: no sleeps on a manual clock
	l.TransferBatch(4096, 16)
	l.TransferBatch(100, 1)
	l.Transfer(50)
	st := l.Stats()
	if st.Messages != 18 {
		t.Fatalf("Messages = %d, want 18", st.Messages)
	}
	if st.Bytes != 4096+100+50 {
		t.Fatalf("Bytes = %d, want %d", st.Bytes, 4096+100+50)
	}
}

// TestTransferBatchSingleLatencyCharge: one propagation delay per batch,
// not per message.
func TestTransferBatchSingleLatencyCharge(t *testing.T) {
	clk := clock.NewScaled(100000)
	l := NewLink(clk, LinkConfig{Latency: 2 * time.Second})
	if d := l.TransferBatch(100, 10); d != 2*time.Second {
		t.Fatalf("batched latency charge = %v, want one 2s charge", d)
	}
}

func TestTransferBatchZeroMsgsCountsOne(t *testing.T) {
	clk := clock.NewManual()
	l := NewLink(clk, LinkConfig{})
	l.TransferBatch(10, 0)
	if st := l.Stats(); st.Messages != 1 {
		t.Fatalf("Messages = %d, want 1", st.Messages)
	}
}
