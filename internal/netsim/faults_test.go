package netsim

import (
	"strings"
	"testing"

	"github.com/gates-middleware/gates/internal/clock"
)

// verdictTrace renders n verdicts of a link as one character each:
// D drop, H hold, . deliver.
func verdictTrace(l *Link, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		switch act, _ := l.FaultVerdict(); act {
		case FaultDrop:
			b.WriteByte('D')
		case FaultHold:
			b.WriteByte('H')
		default:
			b.WriteByte('.')
		}
	}
	return b.String()
}

// The seeded schedule is frozen: the same seed must produce this exact
// drop/hold pattern on every run, on every machine. If this test ever
// fails without an intentional RNG change, chaos runs stopped being
// reproducible.
func TestFaultScheduleGoldenTrace(t *testing.T) {
	const golden = "HD.DDH.HH..DHD......DHHD.D.D.DH...D...D...HD...."
	clk := clock.NewManual()
	l := NewLink(clk, LinkConfig{})
	l.InjectFaults(FaultConfig{Seed: 42, Loss: 0.25, Reorder: 0.15, Depth: 2})
	got := verdictTrace(l, len(golden))
	if got != golden {
		t.Fatalf("fault schedule diverged from golden trace:\n got  %s\n want %s", got, golden)
	}
	if st := l.Stats(); st.Dropped != int64(strings.Count(golden, "D")) {
		t.Fatalf("Dropped = %d, want %d", st.Dropped, strings.Count(golden, "D"))
	}
}

func TestFaultScheduleSameSeedIdentical(t *testing.T) {
	clk := clock.NewManual()
	cfg := FaultConfig{Seed: 7, Loss: 0.3, Reorder: 0.2, Depth: 3}
	a := NewLink(clk, LinkConfig{})
	b := NewLink(clk, LinkConfig{})
	a.InjectFaults(cfg)
	b.InjectFaults(cfg)
	ta, tb := verdictTrace(a, 256), verdictTrace(b, 256)
	if ta != tb {
		t.Fatalf("same seed produced different schedules:\n a %s\n b %s", ta, tb)
	}
	c := NewLink(clk, LinkConfig{})
	c.InjectFaults(FaultConfig{Seed: 8, Loss: 0.3, Reorder: 0.2, Depth: 3})
	if verdictTrace(c, 256) == ta {
		t.Fatal("different seeds produced the identical 256-draw schedule")
	}
}

func TestFaultHoldDepthAndDefaults(t *testing.T) {
	clk := clock.NewManual()
	l := NewLink(clk, LinkConfig{})
	l.InjectFaults(FaultConfig{Seed: 1, Reorder: 1}) // always hold, default depth
	act, depth := l.FaultVerdict()
	if act != FaultHold || depth != 1 {
		t.Fatalf("verdict = %v depth %d, want hold depth 1", act, depth)
	}
	l.InjectFaults(FaultConfig{Seed: 1, Reorder: 1, Depth: 4})
	if _, depth = l.FaultVerdict(); depth != 4 {
		t.Fatalf("depth = %d, want 4", depth)
	}
}

func TestClearFaultsRestoresFastPath(t *testing.T) {
	clk := clock.NewManual()
	l := NewLink(clk, LinkConfig{})
	if l.Faulty() {
		t.Fatal("new link should not be faulty")
	}
	l.InjectFaults(FaultConfig{Loss: 1})
	if !l.Faulty() {
		t.Fatal("link with loss installed should be faulty")
	}
	l.ClearFaults()
	if l.Faulty() {
		t.Fatal("ClearFaults should drop the fault state entirely")
	}
	if act, _ := l.FaultVerdict(); act != FaultDeliver {
		t.Fatalf("cleared link verdict = %v, want deliver", act)
	}
}

func TestBlackholeComposesWithLoss(t *testing.T) {
	clk := clock.NewManual()
	l := NewLink(clk, LinkConfig{})
	l.InjectFaults(FaultConfig{Seed: 42, Loss: 0.25, Reorder: 0.15})

	// Burn 10 draws, black-hole, verify everything drops, heal, and check
	// the schedule resumes exactly where it left off (the black-hole
	// window consumed no RNG draws).
	ref := NewLink(clk, LinkConfig{})
	ref.InjectFaults(FaultConfig{Seed: 42, Loss: 0.25, Reorder: 0.15})
	refTrace := verdictTrace(ref, 40)

	got := verdictTrace(l, 10)
	l.SetBlackhole(true)
	if !l.Faulty() {
		t.Fatal("black-holed link must be faulty")
	}
	for i := 0; i < 5; i++ {
		if act, _ := l.FaultVerdict(); act != FaultDrop {
			t.Fatalf("black-holed verdict = %v, want drop", act)
		}
	}
	l.SetBlackhole(false)
	if !l.Faulty() {
		t.Fatal("healing the black-hole must keep the loss schedule installed")
	}
	got += verdictTrace(l, 30)
	if got != refTrace {
		t.Fatalf("black-hole window perturbed the loss schedule:\n got  %s\n want %s", got, refTrace)
	}

	// Black-hole alone, then heal: fault state fully clears.
	p := NewLink(clk, LinkConfig{})
	p.SetBlackhole(true)
	if act, _ := p.FaultVerdict(); act != FaultDrop {
		t.Fatal("pure black-hole must drop")
	}
	p.SetBlackhole(false)
	if p.Faulty() {
		t.Fatal("healed pure black-hole should clear the fault state")
	}
}

func TestNetworkKillHealBlackholesLinks(t *testing.T) {
	clk := clock.NewManual()
	n := NewNetwork(clk)
	ab := n.Connect("a", "b", LinkConfig{})
	ba := n.Connect("b", "a", LinkConfig{})
	bc := n.Connect("b", "c", LinkConfig{})

	if !n.Alive("b") {
		t.Fatal("fresh node must be alive")
	}
	n.Kill("b")
	if n.Alive("b") {
		t.Fatal("killed node must not be alive")
	}
	for name, l := range map[string]*Link{"a->b": ab, "b->a": ba, "b->c": bc} {
		if act, _ := l.FaultVerdict(); act != FaultDrop {
			t.Fatalf("link %s should black-hole after Kill(b)", name)
		}
	}
	// A link created lazily toward the dead node black-holes from birth.
	cb := n.Link("c", "b")
	if act, _ := cb.FaultVerdict(); act != FaultDrop {
		t.Fatal("lazily created link toward a dead node should black-hole")
	}
	// Links not touching b are unaffected.
	if act, _ := n.Link("a", "c").FaultVerdict(); act != FaultDeliver {
		t.Fatal("a->c should be unaffected by Kill(b)")
	}

	n.Heal("b")
	if !n.Alive("b") {
		t.Fatal("healed node must be alive")
	}
	for name, l := range map[string]*Link{"a->b": ab, "b->a": ba, "b->c": bc, "c->b": cb} {
		if act, _ := l.FaultVerdict(); act != FaultDeliver {
			t.Fatalf("link %s should deliver after Heal(b)", name)
		}
	}
}

func TestNetworkPartition(t *testing.T) {
	clk := clock.NewManual()
	n := NewNetwork(clk)
	n.AddNode("a")
	n.AddNode("b")
	n.Partition("a", "b")
	if !n.Partitioned("a", "b") || !n.Partitioned("b", "a") {
		t.Fatal("partition must sever both directions")
	}
	if act, _ := n.Link("a", "b").FaultVerdict(); act != FaultDrop {
		t.Fatal("partitioned a->b should drop")
	}
	if act, _ := n.Link("b", "a").FaultVerdict(); act != FaultDrop {
		t.Fatal("partitioned b->a should drop")
	}
	if !n.Alive("a") || !n.Alive("b") {
		t.Fatal("partition must not kill the nodes")
	}
	n.HealPartition("a", "b")
	if n.Partitioned("a", "b") {
		t.Fatal("healed partition still reported")
	}
	if act, _ := n.Link("a", "b").FaultVerdict(); act != FaultDeliver {
		t.Fatal("healed a->b should deliver")
	}
}

func TestNetworkLivenessListeners(t *testing.T) {
	clk := clock.NewManual()
	n := NewNetwork(clk)
	type ev struct {
		node  string
		alive bool
	}
	var got []ev
	n.OnLiveness(func(node string, alive bool) { got = append(got, ev{node, alive}) })
	n.Kill("x")
	n.Kill("x") // idempotent: no second event
	n.Heal("x")
	n.Heal("x")
	want := []ev{{"x", false}, {"x", true}}
	if len(got) != len(want) {
		t.Fatalf("liveness events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("liveness events = %v, want %v", got, want)
		}
	}
}
