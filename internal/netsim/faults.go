// Fault injection: the failure surface of the emulated grid. The paper's
// evaluation assumed every node stayed up for the life of a stream; a
// production grid does not, so the network emulation grows the failure
// primitives the recovery path is tested against — node kill (every link
// touching the node black-holes), directed partitions, and per-link packet
// loss and reordering behind a seeded deterministic RNG, so a chaos run
// with the same seed produces the identical drop/reorder schedule every
// time.
//
// Faults act at delivery points: the pipeline's emit paths ask the link for
// a verdict before each transfer and drop or delay the packet accordingly.
// A link with no fault state configured costs exactly one atomic pointer
// load on that path.
package netsim

import (
	"fmt"
	"math/rand"
	"sync"
)

// FaultAction is a link's verdict for one prospective packet delivery.
type FaultAction int

const (
	// FaultDeliver lets the packet through unharmed.
	FaultDeliver FaultAction = iota
	// FaultDrop discards the packet silently (loss, or a black-holed
	// link after a node kill or partition).
	FaultDrop
	// FaultHold delays the packet behind deliveries that follow it — the
	// reorder primitive. The holder (the emitting stage) parks the packet
	// and releases it after the configured depth of later deliveries.
	FaultHold
)

// String renders the action name.
func (a FaultAction) String() string {
	switch a {
	case FaultDeliver:
		return "deliver"
	case FaultDrop:
		return "drop"
	case FaultHold:
		return "hold"
	default:
		return fmt.Sprintf("faultaction(%d)", int(a))
	}
}

// FaultConfig describes the probabilistic fault behavior of one link.
type FaultConfig struct {
	// Seed seeds the link's private RNG; the same seed always yields the
	// same verdict schedule. Zero selects seed 1 (a deterministic
	// default, never wall-clock entropy).
	Seed int64
	// Loss is the probability in [0,1] that a delivery is dropped.
	Loss float64
	// Reorder is the probability in [0,1] that a delivery is held back
	// behind later traffic.
	Reorder float64
	// Depth is how many subsequent delivery rounds a held packet waits
	// before release (default 1).
	Depth int
}

// linkFault is a link's installed fault state. The RNG draw is serialized
// under mu so concurrent senders consume the schedule in a consistent
// total order; black-holing shares the struct so a kill composes with an
// active loss schedule without resetting it.
type linkFault struct {
	mu        sync.Mutex
	rng       *rand.Rand
	loss      float64
	reorder   float64
	depth     int
	blackhole bool
}

func (f *linkFault) clear() bool {
	return f.loss == 0 && f.reorder == 0 && !f.blackhole
}

// InjectFaults installs (or replaces) the link's loss/reorder schedule,
// preserving any black-hole state a node kill or partition already set.
// Loss and Reorder of zero with no black-hole removes the fault state
// entirely, restoring the zero-cost delivery path.
func (l *Link) InjectFaults(cfg FaultConfig) {
	if cfg.Loss < 0 || cfg.Loss > 1 || cfg.Reorder < 0 || cfg.Reorder > 1 {
		panic(fmt.Sprintf("netsim: fault probabilities out of [0,1]: loss=%g reorder=%g", cfg.Loss, cfg.Reorder))
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	depth := cfg.Depth
	if depth < 1 {
		depth = 1
	}
	nf := &linkFault{
		rng:     rand.New(rand.NewSource(seed)),
		loss:    cfg.Loss,
		reorder: cfg.Reorder,
		depth:   depth,
	}
	if old := l.fault.Load(); old != nil {
		old.mu.Lock()
		nf.blackhole = old.blackhole
		old.mu.Unlock()
	}
	if nf.clear() {
		l.fault.Store(nil)
		return
	}
	l.fault.Store(nf)
}

// ClearFaults removes the link's loss/reorder schedule, keeping any
// black-hole state (a killed endpoint stays killed until healed).
func (l *Link) ClearFaults() {
	l.InjectFaults(FaultConfig{})
}

// SetBlackhole makes the link silently discard every delivery (true) or
// stop doing so (false), preserving an installed loss/reorder schedule.
// The Network's Kill/Heal/Partition primitives drive it; it is exported
// for direct use in tests.
func (l *Link) SetBlackhole(on bool) {
	for {
		old := l.fault.Load()
		if old == nil {
			if !on {
				return
			}
			nf := &linkFault{blackhole: true, depth: 1}
			if l.fault.CompareAndSwap(nil, nf) {
				return
			}
			continue
		}
		old.mu.Lock()
		old.blackhole = on
		cleared := old.clear()
		old.mu.Unlock()
		if cleared {
			// Nothing left to decide: drop the state so deliveries go
			// back to the single-nil-check fast path.
			l.fault.CompareAndSwap(old, nil)
		}
		return
	}
}

// Faulty reports whether the link currently has fault state installed —
// the cheap pre-check emit paths use before asking for a verdict.
func (l *Link) Faulty() bool { return l.fault.Load() != nil }

// FaultVerdict decides the fate of one prospective delivery and returns
// the action plus, for FaultHold, the hold depth. Drops (loss or
// black-hole) are counted in the link's Dropped statistic here, so every
// discard is accounted exactly once however the caller reacts. With no
// fault state installed the cost is one atomic load.
func (l *Link) FaultVerdict() (FaultAction, int) {
	f := l.fault.Load()
	if f == nil {
		return FaultDeliver, 0
	}
	f.mu.Lock()
	if f.blackhole {
		f.mu.Unlock()
		l.countDrop()
		return FaultDrop, 0
	}
	// One draw decides both faults so the schedule is a single
	// reproducible stream: [0,loss) drops, [loss,loss+reorder) holds.
	v := f.rng.Float64()
	loss, reorder, depth := f.loss, f.reorder, f.depth
	f.mu.Unlock()
	switch {
	case v < loss:
		l.countDrop()
		return FaultDrop, 0
	case v < loss+reorder:
		return FaultHold, depth
	default:
		return FaultDeliver, 0
	}
}

func (l *Link) countDrop() {
	l.mu.Lock()
	l.stats.Dropped++
	l.mu.Unlock()
}

// --- Network-level fault topology -----------------------------------------

// Kill marks a node dead: every link touching it (existing and created
// later) black-holes, modeling a fail-stop crash as seen from the rest of
// the grid — in-flight and future traffic to or from the node vanishes on
// the wire. Liveness listeners are notified. Killing a dead node is a
// no-op. A link shared between several node pairs (InstallLink) black-holes
// for all of them; model per-pair failures with per-pair links.
func (n *Network) Kill(name string) {
	n.mu.Lock()
	if n.dead[name] {
		n.mu.Unlock()
		return
	}
	n.dead[name] = true
	n.nodes[name] = true
	n.refreshBlackholesLocked()
	listeners := append([]func(string, bool){}, n.onLive...)
	n.mu.Unlock()
	for _, fn := range listeners {
		fn(name, false)
	}
}

// Heal revives a killed node: links touching it stop black-holing unless
// their other endpoint is still dead or the pair is partitioned. Liveness
// listeners are notified. Healing a live node is a no-op.
func (n *Network) Heal(name string) {
	n.mu.Lock()
	if !n.dead[name] {
		n.mu.Unlock()
		return
	}
	delete(n.dead, name)
	n.refreshBlackholesLocked()
	listeners := append([]func(string, bool){}, n.onLive...)
	n.mu.Unlock()
	for _, fn := range listeners {
		fn(name, true)
	}
}

// Alive reports whether the node is not currently killed. Unregistered
// nodes are considered alive (they have simply never carried traffic).
func (n *Network) Alive(name string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.dead[name]
}

// Partition severs the pair in both directions: traffic between a and b
// black-holes until HealPartition, independent of node liveness.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.parts[a+"->"+b] = true
	n.parts[b+"->"+a] = true
	// Materialize the pair's links so the black-hole has something to
	// bite on even before first traffic.
	n.linkLocked(a, b)
	n.linkLocked(b, a)
	n.refreshBlackholesLocked()
}

// HealPartition restores the pair severed by Partition.
func (n *Network) HealPartition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.parts, a+"->"+b)
	delete(n.parts, b+"->"+a)
	n.refreshBlackholesLocked()
}

// Partitioned reports whether traffic from a to b is currently severed by
// an explicit partition (node death is reported by Alive, not here).
func (n *Network) Partitioned(a, b string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.parts[a+"->"+b]
}

// OnLiveness registers a listener called (outside the network's lock) on
// every Kill and Heal with the node name and its new liveness. The health
// monitor of the recovery controller subscribes here.
func (n *Network) OnLiveness(fn func(node string, alive bool)) {
	if fn == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onLive = append(n.onLive, fn)
}

// InjectFaults installs a loss/reorder schedule on the from->to link,
// creating the link (loopback/default rules as in Link) if needed.
func (n *Network) InjectFaults(from, to string, cfg FaultConfig) {
	n.mu.Lock()
	l := n.linkLocked(from, to)
	n.mu.Unlock()
	l.InjectFaults(cfg)
}

// severedLocked reports whether the directed pair must black-hole.
func (n *Network) severedLocked(from, to string) bool {
	return n.dead[from] || n.dead[to] || n.parts[from+"->"+to]
}

// refreshBlackholesLocked re-derives every link's black-hole state from
// the dead-node set and the partition set. A link installed on several
// pairs black-holes if any of its pairs is severed.
func (n *Network) refreshBlackholesLocked() {
	severed := make(map[*Link]bool, len(n.links))
	for key, l := range n.links {
		ends := n.ends[key]
		if n.severedLocked(ends[0], ends[1]) {
			severed[l] = true
		}
	}
	for _, l := range n.links {
		l.SetBlackhole(severed[l])
	}
}
