package grid

import (
	"fmt"
)

// InstanceEdge declares that two requested instances communicate: From and
// To index into the request slice handed to PlanTopology. Volume weights
// the edge's relative traffic (zero means 1).
type InstanceEdge struct {
	From, To int
	Volume   float64
}

// BandwidthFunc reports the available bandwidth in bytes per second between
// two nodes. Zero means the pair communicates for free (same node or an
// unconstrained link).
type BandwidthFunc func(from, to string) int64

// commPenaltyScale converts traffic-per-bandwidth into score units. It is
// chosen so a unit-volume edge over a 1 KB/s link (penalty 1e5) outweighs
// slot/CPU tie-breakers (~100s) but never a near-source hard hint (1e6):
// the paper's locality rule stays authoritative, bandwidth breaks the
// remaining freedom.
const commPenaltyScale = 1e8

// PlanTopology assigns every requested instance to a node like Plan, but
// additionally charges each candidate node for the traffic the instance
// would exchange with already-placed peers over constrained links. It
// extends the §3.2 "consults with a grid resource manager to find the
// nodes where the resources ... are available" step with the §3.1 goal of
// keeping early stages near the data: communicating instances gravitate to
// the same site when the wide-area links are slow.
//
// Placement remains greedy in request order (list source-side stages
// first); failures roll back reservations like Plan.
func (d *Directory) PlanTopology(reqs []InstanceRequest, edges []InstanceEdge, bw BandwidthFunc) ([]Placement, error) {
	if bw == nil {
		return d.Plan(reqs)
	}
	for _, e := range edges {
		if e.From < 0 || e.From >= len(reqs) || e.To < 0 || e.To >= len(reqs) {
			return nil, fmt.Errorf("grid: edge %d->%d outside the %d requests", e.From, e.To, len(reqs))
		}
	}
	// peers[i] lists (other request index, volume) for every edge at i.
	type peer struct {
		idx    int
		volume float64
	}
	peers := make([][]peer, len(reqs))
	for _, e := range edges {
		v := e.Volume
		if v <= 0 {
			v = 1
		}
		peers[e.From] = append(peers[e.From], peer{e.To, v})
		peers[e.To] = append(peers[e.To], peer{e.From, v})
	}

	placements := make([]Placement, 0, len(reqs))
	nodeOf := make(map[int]string, len(reqs))
	rollback := func() {
		for i, p := range placements {
			d.Release(p.Node, reqs[i].Req)
		}
	}
	for i, r := range reqs {
		cands := d.Query(r.Req)
		if len(cands) == 0 {
			rollback()
			return nil, fmt.Errorf("%w: stage %s instance %d", ErrNoMatch, r.StageID, r.Instance)
		}
		best := ""
		bestScore := 0.0
		for _, cand := range cands {
			score := d.scoreOf(cand.Name, r.Req)
			for _, p := range peers[i] {
				peerNode, placed := nodeOf[p.idx]
				if !placed {
					continue
				}
				score -= commPenalty(cand.Name, peerNode, p.volume, bw)
			}
			if best == "" || score > bestScore {
				best, bestScore = cand.Name, score
			}
		}
		if err := d.Allocate(best, r.Req); err != nil {
			rollback()
			return nil, err
		}
		placements = append(placements, Placement{StageID: r.StageID, Instance: r.Instance, Node: best})
		nodeOf[i] = best
	}
	return placements, nil
}

// scoreOf computes the base placement score for a node under the current
// allocation state.
func (d *Directory) scoreOf(name string, req Requirement) float64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	st, ok := d.nodes[name]
	if !ok {
		return 0
	}
	return st.score(req)
}

func commPenalty(a, b string, volume float64, bw BandwidthFunc) float64 {
	if a == b {
		return 0
	}
	width := bw(a, b)
	if width <= 0 {
		return 0
	}
	return volume * commPenaltyScale / float64(width)
}
