package grid

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func newTestDirectory(t *testing.T) *Directory {
	t.Helper()
	d := NewDirectory()
	nodes := []Node{
		{Name: "src-1", Site: "osu", CPUPower: 1.0, MemoryMB: 512, Sources: []string{"stream-1"}},
		{Name: "src-2", Site: "osu", CPUPower: 1.0, MemoryMB: 512, Sources: []string{"stream-2"}},
		{Name: "src-3", Site: "cern", CPUPower: 1.0, MemoryMB: 512, Sources: []string{"stream-3"}},
		{Name: "src-4", Site: "cern", CPUPower: 1.0, MemoryMB: 512, Sources: []string{"stream-4"}},
		{Name: "central", Site: "osu", CPUPower: 4.0, MemoryMB: 4096, Slots: 4},
	}
	for _, n := range nodes {
		if err := d.Register(n); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestRegisterValidation(t *testing.T) {
	d := NewDirectory()
	if err := d.Register(Node{Name: "", CPUPower: 1}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := d.Register(Node{Name: "x", CPUPower: 0}); err == nil {
		t.Fatal("zero CPU power accepted")
	}
	if err := d.Register(Node{Name: "x", CPUPower: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(Node{Name: "x", CPUPower: 1}); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("duplicate register = %v, want ErrDuplicateNode", err)
	}
}

func TestDeregister(t *testing.T) {
	d := newTestDirectory(t)
	if err := d.Deregister("src-1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Lookup("src-1"); ok {
		t.Fatal("deregistered node still visible")
	}
	if err := d.Deregister("src-1"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("double deregister = %v, want ErrUnknownNode", err)
	}
}

func TestListSorted(t *testing.T) {
	d := newTestDirectory(t)
	list := d.List()
	if len(list) != 5 {
		t.Fatalf("List returned %d nodes, want 5", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].Name >= list[i].Name {
			t.Fatalf("List not sorted: %q before %q", list[i-1].Name, list[i].Name)
		}
	}
}

func TestQueryFiltersRequirements(t *testing.T) {
	d := newTestDirectory(t)
	if got := d.Query(Requirement{MinCPUPower: 2}); len(got) != 1 || got[0].Name != "central" {
		t.Fatalf("MinCPUPower=2 query = %v, want only central", got)
	}
	if got := d.Query(Requirement{Site: "cern"}); len(got) != 2 {
		t.Fatalf("site query returned %d nodes, want 2", len(got))
	}
	if got := d.Query(Requirement{MinMemoryMB: 100000}); len(got) != 0 {
		t.Fatalf("impossible memory query returned %v", got)
	}
}

func TestQueryNearSourcePreference(t *testing.T) {
	d := newTestDirectory(t)
	got := d.Query(Requirement{NearSource: "stream-3"})
	if len(got) == 0 || got[0].Name != "src-3" {
		t.Fatalf("near-source query ranked %v first, want src-3", got)
	}
}

func TestAllocateConsumesCapacity(t *testing.T) {
	d := newTestDirectory(t)
	req := Requirement{}
	if err := d.Allocate("src-1", req); err != nil {
		t.Fatal(err)
	}
	if d.Allocated("src-1") != 1 {
		t.Fatalf("Allocated = %d, want 1", d.Allocated("src-1"))
	}
	// src-1 has one slot; second allocation must fail.
	if err := d.Allocate("src-1", req); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("over-allocation = %v, want ErrNoMatch", err)
	}
	d.Release("src-1", req)
	if err := d.Allocate("src-1", req); err != nil {
		t.Fatalf("allocate after release: %v", err)
	}
}

func TestAllocateMemoryAccounting(t *testing.T) {
	d := NewDirectory()
	d.Register(Node{Name: "n", CPUPower: 1, MemoryMB: 1000, Slots: 4})
	req := Requirement{MinMemoryMB: 600}
	if err := d.Allocate("n", req); err != nil {
		t.Fatal(err)
	}
	if err := d.Allocate("n", req); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("memory over-allocation = %v, want ErrNoMatch", err)
	}
	if err := d.Allocate("n", Requirement{MinMemoryMB: 400}); err != nil {
		t.Fatalf("fitting allocation rejected: %v", err)
	}
}

func TestAllocateUnknownNode(t *testing.T) {
	d := NewDirectory()
	if err := d.Allocate("ghost", Requirement{}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Allocate(ghost) = %v, want ErrUnknownNode", err)
	}
	d.Release("ghost", Requirement{}) // must not panic
}

func TestPlanPlacesFirstStageNearSources(t *testing.T) {
	d := newTestDirectory(t)
	var reqs []InstanceRequest
	for i := 1; i <= 4; i++ {
		reqs = append(reqs, InstanceRequest{
			StageID:  "sampler",
			Instance: i - 1,
			Req:      Requirement{NearSource: fmt.Sprintf("stream-%d", i)},
		})
	}
	reqs = append(reqs, InstanceRequest{StageID: "merge", Instance: 0, Req: Requirement{MinCPUPower: 2}})
	placements, err := d.Plan(reqs)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"src-1", "src-2", "src-3", "src-4", "central"}
	for i, p := range placements {
		if p.Node != want[i] {
			t.Fatalf("placement[%d] = %s, want %s (all: %v)", i, p.Node, want[i], placements)
		}
	}
}

func TestPlanRollsBackOnFailure(t *testing.T) {
	d := newTestDirectory(t)
	reqs := []InstanceRequest{
		{StageID: "a", Instance: 0, Req: Requirement{NearSource: "stream-1"}},
		{StageID: "b", Instance: 0, Req: Requirement{MinCPUPower: 99}}, // impossible
	}
	if _, err := d.Plan(reqs); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("Plan = %v, want ErrNoMatch", err)
	}
	if d.Allocated("src-1") != 0 {
		t.Fatal("failed Plan leaked an allocation")
	}
}

func TestPlanSpreadsAcrossSlots(t *testing.T) {
	d := NewDirectory()
	d.Register(Node{Name: "big", CPUPower: 2, MemoryMB: 8192, Slots: 3})
	d.Register(Node{Name: "small", CPUPower: 1, MemoryMB: 512})
	reqs := make([]InstanceRequest, 4)
	for i := range reqs {
		reqs[i] = InstanceRequest{StageID: "s", Instance: i}
	}
	placements, err := d.Plan(reqs)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, p := range placements {
		counts[p.Node]++
	}
	if counts["big"] != 3 || counts["small"] != 1 {
		t.Fatalf("placement spread = %v, want big:3 small:1", counts)
	}
}

func TestPlanDeterministic(t *testing.T) {
	reqs := []InstanceRequest{
		{StageID: "s", Instance: 0},
		{StageID: "s", Instance: 1},
	}
	var first []Placement
	for trial := 0; trial < 5; trial++ {
		d := newTestDirectory(t)
		got, err := d.Plan(reqs)
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = got
			continue
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("trial %d differs: %v vs %v", trial, got, first)
			}
		}
	}
}

// Property: allocations never exceed a node's slot count, no matter the
// allocate/release script.
func TestAllocationBoundProperty(t *testing.T) {
	f := func(script []bool, slotsRaw uint8) bool {
		slots := int(slotsRaw%4) + 1
		d := NewDirectory()
		d.Register(Node{Name: "n", CPUPower: 1, MemoryMB: 1024, Slots: slots})
		for _, alloc := range script {
			if alloc {
				d.Allocate("n", Requirement{})
			} else {
				d.Release("n", Requirement{})
			}
			got := d.Allocated("n")
			if got < 0 || got > slots {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanTopologyPrefersFastLinks(t *testing.T) {
	d := NewDirectory()
	// Two sites; the consumer can fit anywhere.
	d.Register(Node{Name: "a-1", Site: "a", CPUPower: 1, MemoryMB: 512})
	d.Register(Node{Name: "a-hub", Site: "a", CPUPower: 2, MemoryMB: 2048, Slots: 2})
	d.Register(Node{Name: "b-1", Site: "b", CPUPower: 1, MemoryMB: 512})
	d.Register(Node{Name: "b-hub", Site: "b", CPUPower: 2, MemoryMB: 2048, Slots: 2})
	bw := func(from, to string) int64 {
		if from[0] == to[0] {
			return 0 // same site: free
		}
		return 1000 // slow WAN
	}
	// Producer pinned to site b by requirement; consumer unpinned.
	reqs := []InstanceRequest{
		{StageID: "produce", Instance: 0, Req: Requirement{Site: "b"}},
		{StageID: "consume", Instance: 0},
	}
	edges := []InstanceEdge{{From: 0, To: 1}}
	placements, err := d.PlanTopology(reqs, edges, bw)
	if err != nil {
		t.Fatal(err)
	}
	if placements[1].Node[0] != 'b' {
		t.Fatalf("consumer placed on %s, want site b near its producer", placements[1].Node)
	}
}

func TestPlanTopologyNearSourceStillWins(t *testing.T) {
	// A hard near-source hint must beat the bandwidth pull.
	d := NewDirectory()
	d.Register(Node{Name: "a-1", Site: "a", CPUPower: 1, MemoryMB: 512, Sources: []string{"feed"}})
	d.Register(Node{Name: "b-1", Site: "b", CPUPower: 4, MemoryMB: 4096, Slots: 2})
	bw := func(from, to string) int64 { return 1000 }
	reqs := []InstanceRequest{
		{StageID: "peer", Instance: 0, Req: Requirement{Site: "b"}},
		{StageID: "src", Instance: 0, Req: Requirement{NearSource: "feed"}},
	}
	edges := []InstanceEdge{{From: 0, To: 1, Volume: 5}}
	placements, err := d.PlanTopology(reqs, edges, bw)
	if err != nil {
		t.Fatal(err)
	}
	if placements[1].Node != "a-1" {
		t.Fatalf("near-source stage placed on %s, want a-1", placements[1].Node)
	}
}

func TestPlanTopologyValidation(t *testing.T) {
	d := NewDirectory()
	d.Register(Node{Name: "n", CPUPower: 1, MemoryMB: 512})
	reqs := []InstanceRequest{{StageID: "s", Instance: 0}}
	if _, err := d.PlanTopology(reqs, []InstanceEdge{{From: 0, To: 5}}, func(_, _ string) int64 { return 0 }); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	// nil bandwidth falls back to plain Plan.
	placements, err := d.PlanTopology(reqs, nil, nil)
	if err != nil || len(placements) != 1 {
		t.Fatalf("nil-bw fallback = %v, %v", placements, err)
	}
}

func TestPlanTopologyRollsBack(t *testing.T) {
	d := NewDirectory()
	d.Register(Node{Name: "n", CPUPower: 1, MemoryMB: 512})
	reqs := []InstanceRequest{
		{StageID: "a", Instance: 0},
		{StageID: "b", Instance: 0, Req: Requirement{MinCPUPower: 99}},
	}
	if _, err := d.PlanTopology(reqs, nil, func(_, _ string) int64 { return 0 }); err == nil {
		t.Fatal("impossible request accepted")
	}
	if d.Allocated("n") != 0 {
		t.Fatal("failed topology plan leaked an allocation")
	}
}
