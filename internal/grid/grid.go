// Package grid simulates the grid fabric GATES was built on.
//
// The paper relies on Globus 3.0 / OGSA for exactly two things: discovering
// compute resources and matching them against the requirements of each
// application stage ("the Deployer ... consults with a grid resource manager
// to find the nodes where the resources required by the individual stages
// are available"). This package reproduces that behavior with an in-process
// resource directory (the index-service analog): nodes register with their
// attributes (site, CPU power, memory, hosted data sources, instance slots),
// and a planner assigns stage instances to nodes honoring requirements and
// the paper's locality rule — "the first stage is applied near sources of
// individual streams".
package grid

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Node describes one compute resource registered with the directory.
type Node struct {
	// Name uniquely identifies the node.
	Name string
	// Site is the administrative domain the node belongs to.
	Site string
	// CPUPower is the node's relative compute speed; 1.0 is the baseline
	// machine of the paper's cluster.
	CPUPower float64
	// MemoryMB is the memory available to stage instances.
	MemoryMB int
	// Slots is how many stage instances the node can host concurrently.
	// Zero means one.
	Slots int
	// Sources lists the names of data sources that arrive at (or adjacent
	// to) this node; the planner uses it for the near-source rule.
	Sources []string
}

func (n Node) slots() int {
	if n.Slots <= 0 {
		return 1
	}
	return n.Slots
}

func (n Node) hostsSource(src string) bool {
	for _, s := range n.Sources {
		if s == src {
			return true
		}
	}
	return false
}

// Requirement constrains which nodes may host a stage instance.
type Requirement struct {
	// MinCPUPower is the minimum relative CPU power.
	MinCPUPower float64
	// MinMemoryMB is the minimum free memory.
	MinMemoryMB int
	// Site, when non-empty, restricts candidates to one administrative
	// domain.
	Site string
	// NearSource, when non-empty, expresses a strong preference (not a
	// hard constraint) for the node hosting the named data source.
	NearSource string
}

// Errors returned by the directory and planner.
var (
	ErrDuplicateNode = errors.New("grid: node already registered")
	ErrUnknownNode   = errors.New("grid: unknown node")
	ErrNoMatch       = errors.New("grid: no node satisfies the requirement")
)

// Directory is the resource index: the OGSA index-service analog that the
// Deployer consults. It is safe for concurrent use.
type Directory struct {
	mu    sync.RWMutex
	nodes map[string]*nodeState
}

type nodeState struct {
	node  Node
	used  int // allocated instance slots
	memMB int // allocated memory
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{nodes: make(map[string]*nodeState)}
}

// Register adds a node. Node names must be unique and non-empty.
func (d *Directory) Register(n Node) error {
	if n.Name == "" {
		return errors.New("grid: node name must be non-empty")
	}
	if n.CPUPower <= 0 {
		return fmt.Errorf("grid: node %q must have positive CPU power", n.Name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.nodes[n.Name]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateNode, n.Name)
	}
	d.nodes[n.Name] = &nodeState{node: n}
	return nil
}

// Deregister removes a node from the directory.
func (d *Directory) Deregister(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.nodes[name]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	delete(d.nodes, name)
	return nil
}

// Lookup returns the node with the given name.
func (d *Directory) Lookup(name string) (Node, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	st, ok := d.nodes[name]
	if !ok {
		return Node{}, false
	}
	return st.node, true
}

// List returns all registered nodes sorted by name.
func (d *Directory) List() []Node {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Node, 0, len(d.nodes))
	for _, st := range d.nodes {
		out = append(out, st.node)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// satisfiesLocked reports whether node st can host one more instance under
// req, considering current allocations.
func (st *nodeState) satisfies(req Requirement) bool {
	n := st.node
	if n.CPUPower < req.MinCPUPower {
		return false
	}
	if n.MemoryMB-st.memMB < req.MinMemoryMB {
		return false
	}
	if req.Site != "" && n.Site != req.Site {
		return false
	}
	return st.used < n.slots()
}

// score ranks candidate nodes; higher is better. The near-source bonus
// dominates, then free capacity, then raw CPU power.
func (st *nodeState) score(req Requirement) float64 {
	s := 0.0
	if req.NearSource != "" && st.node.hostsSource(req.NearSource) {
		s += 1e6
	}
	s += float64(st.node.slots()-st.used) * 100
	s += st.node.CPUPower
	return s
}

// Query returns the nodes currently able to host an instance with the given
// requirement, best candidate first. Ties break by node name so planning is
// deterministic.
func (d *Directory) Query(req Requirement) []Node {
	d.mu.RLock()
	defer d.mu.RUnlock()
	type cand struct {
		node  Node
		score float64
	}
	var cands []cand
	for _, st := range d.nodes {
		if st.satisfies(req) {
			cands = append(cands, cand{st.node, st.score(req)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].node.Name < cands[j].node.Name
	})
	out := make([]Node, len(cands))
	for i, c := range cands {
		out[i] = c.node
	}
	return out
}

// Allocate reserves one instance slot (and the requirement's memory) on the
// named node. It fails if the node no longer satisfies the requirement.
func (d *Directory) Allocate(name string, req Requirement) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	if !st.satisfies(req) {
		return fmt.Errorf("%w: %s cannot host the instance", ErrNoMatch, name)
	}
	st.used++
	st.memMB += req.MinMemoryMB
	return nil
}

// Release returns one instance slot (and the requirement's memory) to the
// named node. Releasing an unknown node is a no-op.
func (d *Directory) Release(name string, req Requirement) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.nodes[name]
	if !ok {
		return
	}
	if st.used > 0 {
		st.used--
	}
	if st.memMB >= req.MinMemoryMB {
		st.memMB -= req.MinMemoryMB
	} else {
		st.memMB = 0
	}
}

// Allocated reports the number of instance slots in use on the named node.
func (d *Directory) Allocated(name string) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if st, ok := d.nodes[name]; ok {
		return st.used
	}
	return 0
}

// InstanceRequest asks the planner for one stage instance.
type InstanceRequest struct {
	// StageID identifies the pipeline stage.
	StageID string
	// Instance is the ordinal of this instance within the stage.
	Instance int
	// Req constrains the placement, including the near-source preference.
	Req Requirement
}

// Placement is the planner's decision for one instance.
type Placement struct {
	StageID  string
	Instance int
	Node     string
}

// Plan assigns every requested instance to a node, reserving capacity as it
// goes, and returns the placements in request order. On failure it releases
// everything it reserved and returns ErrNoMatch wrapped with the failing
// request.
//
// Requests are matched greedily in order; the caller should list
// source-side (first-stage) instances first so that the near-source rule is
// honored before general capacity fills up, mirroring the paper's
// deployment order.
func (d *Directory) Plan(reqs []InstanceRequest) ([]Placement, error) {
	placements := make([]Placement, 0, len(reqs))
	rollback := func() {
		for i, p := range placements {
			d.Release(p.Node, reqs[i].Req)
		}
	}
	for _, r := range reqs {
		cands := d.Query(r.Req)
		if len(cands) == 0 {
			rollback()
			return nil, fmt.Errorf("%w: stage %s instance %d", ErrNoMatch, r.StageID, r.Instance)
		}
		node := cands[0]
		if err := d.Allocate(node.Name, r.Req); err != nil {
			rollback()
			return nil, err
		}
		placements = append(placements, Placement{StageID: r.StageID, Instance: r.Instance, Node: node.Name})
	}
	return placements, nil
}
