package clock

import "time"

// Pacer batches many small virtual-time charges into fewer real sleeps.
//
// Real timers have roughly 0.1 ms granularity. When an experiment compresses
// time (a Scaled clock), a per-item compute cost of a few virtual
// milliseconds maps to a real sleep far below that granularity, and naive
// per-item sleeping destroys every rate ratio the experiment depends on. A
// Pacer instead accrues owed virtual time and sleeps only once the debt
// reaches its quantum, so the long-run rate is exact and the number of timer
// operations is bounded.
//
// A Pacer is owned by a single goroutine (one per stage instance); it is not
// safe for concurrent use.
type Pacer struct {
	clk     Clock
	quantum time.Duration
	owed    time.Duration
	charged time.Duration
}

// NewPacer returns a pacer that sleeps each time the accumulated charge
// reaches quantum. A non-positive quantum disables batching (every charge
// sleeps immediately).
func NewPacer(clk Clock, quantum time.Duration) *Pacer {
	if clk == nil {
		panic("clock: NewPacer requires a clock")
	}
	return &Pacer{clk: clk, quantum: quantum}
}

// Charge records d of virtual work and sleeps if the accumulated debt has
// reached the quantum. Non-positive d is a no-op.
//
// Sleeps are overshoot-compensating: the pacer measures how much virtual
// time the sleep actually took and credits any excess against future
// charges. Real timers overshoot by scheduler granularity; under an
// aggressively compressed clock that overshoot is magnified into many
// virtual seconds and would otherwise silently throttle the goroutine far
// below its configured rate.
func (p *Pacer) Charge(d time.Duration) {
	if d <= 0 {
		return
	}
	p.charged += d
	p.owed += d
	if p.quantum <= 0 || p.owed >= p.quantum {
		p.pay()
	}
}

// Flush sleeps any outstanding debt. Call at end-of-stream so the final
// partial quantum is still paid.
func (p *Pacer) Flush() {
	if p.owed > 0 {
		p.pay()
	}
}

func (p *Pacer) pay() {
	start := p.clk.Now()
	p.clk.Sleep(p.owed)
	p.owed -= p.clk.Now().Sub(start)
	if p.owed > 0 {
		// Undersleep (coarse manual advances): drop the remainder
		// rather than carrying debt the caller already waited for.
		p.owed = 0
	}
}

// Charged returns the total virtual time charged through the pacer.
func (p *Pacer) Charged() time.Duration { return p.charged }
