package clock

import (
	"testing"
	"time"
)

func TestPacerRequiresClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPacer(nil) did not panic")
		}
	}()
	NewPacer(nil, time.Second)
}

func TestPacerBatchesBelowQuantum(t *testing.T) {
	clk := NewManual()
	p := NewPacer(clk, 10*time.Second)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 9; i++ {
			p.Charge(time.Second) // 9s accumulated, under the quantum
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("sub-quantum charges slept on a frozen clock")
	}
	if p.Charged() != 9*time.Second {
		t.Fatalf("Charged = %v, want 9s", p.Charged())
	}
}

func TestPacerSleepsAtQuantum(t *testing.T) {
	clk := NewManual()
	p := NewPacer(clk, 3*time.Second)
	done := make(chan struct{})
	go func() {
		p.Charge(time.Second)
		p.Charge(time.Second)
		p.Charge(time.Second) // reaches quantum: sleeps 3s
		close(done)
	}()
	for clk.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("quantum-reaching charge did not sleep")
	default:
	}
	clk.Advance(3 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("pacer sleep never woke")
	}
}

func TestPacerFlushPaysRemainder(t *testing.T) {
	clk := NewManual()
	p := NewPacer(clk, time.Hour)
	p.Charge(5 * time.Second)
	done := make(chan struct{})
	go func() {
		p.Flush()
		close(done)
	}()
	for clk.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	clk.Advance(5 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Flush never completed")
	}
	// A second Flush with nothing owed must not block.
	p.Flush()
}

func TestPacerZeroQuantumSleepsImmediately(t *testing.T) {
	clk := NewManual()
	p := NewPacer(clk, 0)
	done := make(chan struct{})
	go func() {
		p.Charge(time.Second)
		close(done)
	}()
	for clk.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	clk.Advance(time.Second)
	<-done
}

func TestPacerIgnoresNonPositive(t *testing.T) {
	clk := NewManual()
	p := NewPacer(clk, 0)
	p.Charge(0)
	p.Charge(-time.Second)
	if p.Charged() != 0 {
		t.Fatalf("Charged = %v, want 0", p.Charged())
	}
}
