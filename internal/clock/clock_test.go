package clock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRealNowAdvances(t *testing.T) {
	c := NewReal()
	a := c.Now()
	time.Sleep(2 * time.Millisecond)
	b := c.Now()
	if !b.After(a) {
		t.Fatalf("real clock did not advance: %v then %v", a, b)
	}
}

func TestRealSleepNonPositive(t *testing.T) {
	c := NewReal()
	start := time.Now()
	c.Sleep(-time.Second)
	c.Sleep(0)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("non-positive Sleep blocked")
	}
}

func TestRealAfterImmediate(t *testing.T) {
	c := NewReal()
	select {
	case <-c.After(0):
	case <-time.After(time.Second):
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestScaledPanicsOnBadScale(t *testing.T) {
	for _, s := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewScaled(%v) did not panic", s)
				}
			}()
			NewScaled(s)
		}()
	}
}

func TestScaledSleepCompressesTime(t *testing.T) {
	c := NewScaled(1000) // 1000 virtual seconds per real second
	start := time.Now()
	c.Sleep(500 * time.Millisecond) // 0.5 virtual ms -> 0.5 real us... no: 0.5ms/1000
	if real := time.Since(start); real > 100*time.Millisecond {
		t.Fatalf("scaled sleep took %v real time, want well under 100ms", real)
	}
}

func TestScaledNowTracksScale(t *testing.T) {
	c := NewScaled(100)
	a := c.Now()
	time.Sleep(10 * time.Millisecond)
	b := c.Now()
	virt := b.Sub(a)
	// 10 real ms at 100x should be ~1 virtual second; allow generous slack
	// for scheduler jitter.
	if virt < 500*time.Millisecond || virt > 10*time.Second {
		t.Fatalf("virtual elapsed %v, want about 1s", virt)
	}
}

func TestScaledAfterFires(t *testing.T) {
	c := NewScaled(1000)
	select {
	case <-c.After(time.Second): // 1ms real
	case <-time.After(2 * time.Second):
		t.Fatal("scaled After never fired")
	}
}

func TestManualNowFrozen(t *testing.T) {
	c := NewManual()
	if !c.Now().Equal(Epoch) {
		t.Fatalf("manual clock starts at %v, want Epoch %v", c.Now(), Epoch)
	}
	time.Sleep(5 * time.Millisecond)
	if !c.Now().Equal(Epoch) {
		t.Fatal("manual clock advanced without Advance")
	}
}

func TestManualSleepWakesOnAdvance(t *testing.T) {
	c := NewManual()
	done := make(chan struct{})
	go func() {
		c.Sleep(10 * time.Second)
		close(done)
	}()
	// Wait until the sleeper is registered.
	for c.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("sleeper woke before Advance")
	default:
	}
	c.Advance(9 * time.Second)
	select {
	case <-done:
		t.Fatal("sleeper woke too early")
	case <-time.After(10 * time.Millisecond):
	}
	c.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("sleeper never woke")
	}
}

func TestManualAdvanceWakesInOrder(t *testing.T) {
	c := NewManual()
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i, d := range []time.Duration{3 * time.Second, time.Second, 2 * time.Second} {
		wg.Add(1)
		go func(i int, d time.Duration) {
			defer wg.Done()
			c.Sleep(d)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i, d)
	}
	for c.Waiters() != 3 {
		time.Sleep(time.Millisecond)
	}
	// Advance step by step so wake order is observable.
	for i := 0; i < 3; i++ {
		dl, ok := c.NextDeadline()
		if !ok {
			break
		}
		c.AdvanceTo(dl)
		time.Sleep(5 * time.Millisecond) // let the woken goroutine record itself
	}
	wg.Wait()
	want := []int{1, 2, 0} // 1s, 2s, 3s sleepers
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order %v, want %v", order, want)
		}
	}
}

func TestManualAdvanceToPastIsNoop(t *testing.T) {
	c := NewManual()
	c.Advance(time.Hour)
	now := c.Now()
	c.AdvanceTo(now.Add(-time.Minute))
	if !c.Now().Equal(now) {
		t.Fatal("AdvanceTo moved time backwards")
	}
}

func TestManualAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewManual().Advance(-time.Second)
}

func TestManualAfterZero(t *testing.T) {
	c := NewManual()
	select {
	case ts := <-c.After(0):
		if !ts.Equal(Epoch) {
			t.Fatalf("After(0) delivered %v, want Epoch", ts)
		}
	default:
		t.Fatal("After(0) did not fire synchronously")
	}
}

func TestManualNextDeadlineEmpty(t *testing.T) {
	c := NewManual()
	if _, ok := c.NextDeadline(); ok {
		t.Fatal("NextDeadline reported a deadline on an idle clock")
	}
}

func TestStopwatchManual(t *testing.T) {
	c := NewManual()
	sw := NewStopwatch(c)
	c.Advance(42 * time.Second)
	if got := sw.Elapsed(); got != 42*time.Second {
		t.Fatalf("Elapsed = %v, want 42s", got)
	}
}

// Property: advancing a Manual clock by any sequence of non-negative steps
// yields a monotonically non-decreasing Now.
func TestManualMonotonicProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		c := NewManual()
		prev := c.Now()
		for _, s := range steps {
			c.Advance(time.Duration(s) * time.Millisecond)
			now := c.Now()
			if now.Before(prev) {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a Scaled clock's virtual elapsed time is never negative.
func TestScaledNonNegativeProperty(t *testing.T) {
	f := func(scaleRaw uint8) bool {
		scale := float64(scaleRaw%100) + 1
		c := NewScaled(scale)
		a := c.Now()
		b := c.Now()
		return !b.Before(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
