// Package clock provides the time base used by every GATES component.
//
// The paper's experiments ran in wall-clock time on a physical cluster with
// injected network delay. To make the reproduction fast and repeatable, all
// time-dependent code in this repository (link emulation, per-item compute
// cost, adaptation intervals) is written against the Clock interface rather
// than the time package directly. Three implementations are provided:
//
//   - Real: wall-clock time, for running examples "at paper speed".
//   - Scaled: virtual time that advances k times faster than wall time, so a
//     250-virtual-second experiment completes in 250/k real seconds while
//     preserving every rate ratio (bandwidth vs. compute vs. arrival).
//   - Manual: a fully deterministic clock for unit tests; time only moves
//     when the test calls Advance.
package clock

import (
	"sync"
	"sync/atomic"
	"time"
)

// Clock is the minimal time base the middleware needs. Durations passed to a
// Clock are in virtual time; how long they take in wall time depends on the
// implementation.
type Clock interface {
	// Now returns the current virtual time.
	Now() time.Time
	// Sleep blocks the calling goroutine for d of virtual time.
	// Non-positive durations return immediately.
	Sleep(d time.Duration)
	// After returns a channel that receives the virtual time once d of
	// virtual time has elapsed.
	After(d time.Duration) <-chan time.Time
}

// Epoch is the virtual-time origin used by the Scaled and Manual clocks.
// A fixed origin keeps experiment traces comparable across runs.
var Epoch = time.Date(2004, time.June, 7, 0, 0, 0, 0, time.UTC) // HPDC 2004 week

// Real is a Clock backed directly by the time package.
type Real struct{}

// NewReal returns a wall-clock Clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time {
	if d <= 0 {
		ch := make(chan time.Time, 1)
		ch <- time.Now()
		return ch
	}
	return time.After(d)
}

// Scaled is a Clock whose virtual time advances Scale times faster than wall
// time. Scale = 1000 runs a 1000-virtual-second experiment in one real
// second. The zero value is not usable; construct with NewScaled.
type Scaled struct {
	scale float64
	start time.Time // wall-time anchor
}

// NewScaled returns a Clock that advances scale virtual seconds per real
// second. scale must be positive; NewScaled panics otherwise, because a
// silent fallback would corrupt every measurement built on top of it.
func NewScaled(scale float64) *Scaled {
	if scale <= 0 {
		panic("clock: NewScaled requires a positive scale")
	}
	return &Scaled{scale: scale, start: time.Now()}
}

// Scale returns the virtual-seconds-per-real-second factor.
func (s *Scaled) Scale() float64 { return s.scale }

// Now implements Clock.
func (s *Scaled) Now() time.Time {
	elapsed := time.Since(s.start)
	return Epoch.Add(time.Duration(float64(elapsed) * s.scale))
}

// Sleep implements Clock. It sleeps d/scale of wall time.
func (s *Scaled) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) / s.scale))
}

// After implements Clock.
func (s *Scaled) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- s.Now()
		return ch
	}
	go func() {
		s.Sleep(d)
		ch <- s.Now()
	}()
	return ch
}

// Manual is a deterministic Clock for tests. Virtual time stands still until
// Advance or AdvanceTo is called; sleepers whose deadlines are reached are
// woken in deadline order. The zero value is not usable; construct with
// NewManual.
//
// The current time is an atomic offset from Epoch so the hot-path Now()
// (every packet stamp reads it) never contends with sleepers; the mutex
// serializes only the waiter list and advances. The materialized time.Time
// for the current offset is cached behind an atomic pointer: between
// advances — the overwhelmingly common case on the packet path — Now() is
// two atomic loads, with Epoch.Add's wall/monotonic arithmetic paid once
// per advance instead of once per read.
type Manual struct {
	nowNS   atomic.Int64              // nanoseconds since Epoch
	cached  atomic.Pointer[manualNow] // memoized Epoch.Add for the current offset
	mu      sync.Mutex
	waiters []*manualWaiter
}

type manualNow struct {
	ns int64
	t  time.Time
}

type manualWaiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewManual returns a Manual clock positioned at Epoch.
func NewManual() *Manual {
	return &Manual{}
}

// Now implements Clock. It is lock-free. Concurrent first reads after an
// advance may each materialize and store the cache entry; every entry for
// the same offset is identical, so last-writer-wins is harmless.
func (m *Manual) Now() time.Time {
	ns := m.nowNS.Load()
	if c := m.cached.Load(); c != nil && c.ns == ns {
		return c.t
	}
	t := Epoch.Add(time.Duration(ns))
	m.cached.Store(&manualNow{ns: ns, t: t})
	return t
}

// Sleep implements Clock. It blocks until the clock has been advanced past
// the deadline by another goroutine.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-m.After(d)
}

// After implements Clock.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.Now()
	if d <= 0 {
		ch <- now
		return ch
	}
	m.waiters = append(m.waiters, &manualWaiter{deadline: now.Add(d), ch: ch})
	return ch
}

// Advance moves virtual time forward by d, waking every sleeper whose
// deadline falls within the advance. It panics on negative d: time cannot
// run backwards.
func (m *Manual) Advance(d time.Duration) {
	if d < 0 {
		panic("clock: Manual.Advance with negative duration")
	}
	m.mu.Lock()
	m.advanceToLocked(m.Now().Add(d))
	m.mu.Unlock()
}

// AdvanceTo moves virtual time forward to t. Moving to a time at or before
// the current time is a no-op.
func (m *Manual) AdvanceTo(t time.Time) {
	m.mu.Lock()
	m.advanceToLocked(t)
	m.mu.Unlock()
}

func (m *Manual) advanceToLocked(t time.Time) {
	if !t.After(m.Now()) {
		return
	}
	m.nowNS.Store(int64(t.Sub(Epoch)))
	kept := m.waiters[:0]
	for _, w := range m.waiters {
		if !w.deadline.After(t) {
			w.ch <- t
		} else {
			kept = append(kept, w)
		}
	}
	// Zero the tail so released waiters can be collected.
	for i := len(kept); i < len(m.waiters); i++ {
		m.waiters[i] = nil
	}
	m.waiters = kept
}

// Waiters reports how many goroutines are currently blocked in Sleep/After.
// Tests use it to synchronize before advancing.
func (m *Manual) Waiters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiters)
}

// NextDeadline returns the earliest pending sleeper deadline and true, or the
// zero time and false when no goroutine is waiting. A test event loop can
// repeatedly AdvanceTo(NextDeadline()) to drain all timed work
// deterministically.
func (m *Manual) NextDeadline() (time.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.waiters) == 0 {
		return time.Time{}, false
	}
	min := m.waiters[0].deadline
	for _, w := range m.waiters[1:] {
		if w.deadline.Before(min) {
			min = w.deadline
		}
	}
	return min, true
}

// Stopwatch measures elapsed virtual time on any Clock.
type Stopwatch struct {
	clk   Clock
	start time.Time
}

// NewStopwatch starts a stopwatch on clk.
func NewStopwatch(clk Clock) Stopwatch {
	return Stopwatch{clk: clk, start: clk.Now()}
}

// Elapsed returns the virtual time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return s.clk.Now().Sub(s.start) }
