// Package adapt implements the GATES self-adaptation algorithm (Section 4
// of the paper).
//
// Every pipeline stage is modeled as a server whose input buffer is a queue.
// The algorithm watches the queue's occupancy d, summarizes its short- and
// long-term behavior into the "long-term average queue size factor" d̃
// (Equation for d̃: an EWMA over three load factors φ1, φ2, φ3), reports
// over-/under-load exceptions to the upstream server when d̃ leaves the band
// [LT1, LT2], and periodically adjusts the stage's adjustment parameters with
// the ΔP law (Equation 4):
//
//	ΔP_B = d̃_B·σ1(d̃_B) ∓ φ1(T1,T2)·σ2(φ1(T1,T2))
//
// where T1/T2 count the overload/underload exceptions the downstream server
// reported during the current adjustment epoch, and σ1/σ2 grow with the
// volatility of their inputs so that an unsteady system adapts in large steps
// and a settling system converges.
//
// Two points in the paper are ambiguous and are resolved by options (the
// defaults reproduce the published behavior; see DESIGN.md):
//
//   - the printed φ2 formula does not have the stated [-1,1] range for
//     negative w; Phi2Exponential (default) uses sign(w)·e^(|w|−W), and
//     Phi2Linear uses w/W.
//   - Equation 4's sign for the downstream term: SignReinforcing (default)
//     makes downstream congestion push the canonical knob the same way as
//     local congestion (toward faster/less-accurate processing), which is
//     what Figures 8–9 show; SignLiteral implements the subtraction as
//     printed.
package adapt

import (
	"errors"
	"fmt"
)

// Phi2Kind selects the implementation of the windowed load factor φ2.
type Phi2Kind int

const (
	// Phi2Exponential is sign(w)·e^(|w|−W): near zero until the window is
	// dominated by one kind of event, saturating at ±1 when it is.
	Phi2Exponential Phi2Kind = iota
	// Phi2Linear is w/W.
	Phi2Linear
)

// String returns the kind's name.
func (k Phi2Kind) String() string {
	switch k {
	case Phi2Exponential:
		return "exponential"
	case Phi2Linear:
		return "linear"
	default:
		return fmt.Sprintf("Phi2Kind(%d)", int(k))
	}
}

// SignConvention selects the sign of the downstream-exception term in the
// ΔP law.
type SignConvention int

const (
	// SignReinforcing adds the downstream term: congestion anywhere pushes
	// the canonical knob toward faster processing / less data downstream.
	// This orientation reproduces the convergence plots in Figures 8–9.
	SignReinforcing SignConvention = iota
	// SignLiteral subtracts the downstream term exactly as Equation 4 is
	// printed.
	SignLiteral
)

// String returns the convention's name.
func (s SignConvention) String() string {
	switch s {
	case SignReinforcing:
		return "reinforcing"
	case SignLiteral:
		return "literal"
	default:
		return fmt.Sprintf("SignConvention(%d)", int(s))
	}
}

// Options carries the constants of Figure 2 plus the knobs this
// implementation adds. The zero value is not valid; call Defaults or fill
// every field and Validate.
type Options struct {
	// Capacity is C, the maximum capacity of the queue. Required.
	Capacity int
	// ExpectedLen is D, the user-defined expected queue length.
	// Defaults to Capacity/4.
	ExpectedLen int
	// Alpha is the learning rate α in (0,1) for the d̃ EWMA; larger keeps
	// more history. Default 0.7.
	Alpha float64
	// Window is W, the sliding window (in observations) for φ2 and the
	// recent average d̄. Default 16.
	Window int
	// P1, P2, P3 weight φ1, φ2, φ3 and must sum to 1.
	// Defaults 0.2, 0.3, 0.5.
	P1, P2, P3 float64
	// LowThreshold (LT1) and HighThreshold (LT2) bound the no-exception
	// band for d̃, expressed as fractions of Capacity in [-1,1].
	// Defaults -0.25 and +0.25.
	LowThreshold, HighThreshold float64
	// OverFrac and UnderFrac classify a single observation d as
	// over-loaded (d > OverFrac·C) or under-loaded (d < UnderFrac·C).
	// Defaults: OverFrac = D/C, UnderFrac = D/(4C).
	OverFrac, UnderFrac float64
	// LongTermDecay exponentially ages the lifetime counters t1/t2 each
	// observation so that an early transient cannot bias φ1 forever.
	// 1.0 disables aging (the paper's literal cumulative counts).
	// Default 0.995.
	LongTermDecay float64
	// Phi2 selects the φ2 implementation. Default Phi2Exponential.
	Phi2 Phi2Kind
	// DisableCongestionPriority turns off the gating that makes
	// congestion signals dominate slack signals in the ΔP law. With
	// gating on (the default), a downstream underload report is ignored
	// while the local queue is congested — the local bottleneck explains
	// the downstream starvation, and obeying the report would create
	// positive feedback (send even more into a full pipe). Symmetrically,
	// local slack is ignored while downstream reports overload. The paper
	// attributes this stabilization to the σ functions without
	// specifying it; the ablation bench compares both settings.
	DisableCongestionPriority bool
	// DownstreamSign selects the Equation 4 sign convention.
	// Default SignReinforcing.
	DownstreamSign SignConvention
	// Gain scales ΔP into parameter steps: a fully saturated signal moves
	// a parameter by about Gain × σ × its Step per adjustment. Small
	// values matter: the queue behind a saturating stage is bistable
	// (full just above the sustainable rate, empty just below), so the
	// load signal is inherently bang-bang and the per-adjustment step
	// bounds the oscillation amplitude around the equilibrium. Default 2.
	Gain float64
	// SigmaFloor is the minimum value of the volatility gains σ1/σ2, so
	// adaptation never stalls entirely. Default 0.25.
	SigmaFloor float64
	// SigmaVolatility scales how much recent standard deviation of the
	// input raises σ1/σ2. Default 1.
	SigmaVolatility float64
	// SigmaWindow is how many recent samples the σ functions consider.
	// Default 8.
	SigmaWindow int
}

// Defaults returns the options used throughout the evaluation for a queue of
// the given capacity.
func Defaults(capacity int) Options {
	o := Options{Capacity: capacity}
	o.fill()
	return o
}

func (o *Options) fill() {
	if o.ExpectedLen == 0 {
		o.ExpectedLen = o.Capacity / 4
		if o.ExpectedLen < 1 {
			o.ExpectedLen = 1
		}
	}
	if o.Alpha == 0 {
		o.Alpha = 0.7
	}
	if o.Window == 0 {
		o.Window = 16
	}
	if o.P1 == 0 && o.P2 == 0 && o.P3 == 0 {
		o.P1, o.P2, o.P3 = 0.2, 0.3, 0.5
	}
	if o.LowThreshold == 0 && o.HighThreshold == 0 {
		o.LowThreshold, o.HighThreshold = -0.25, 0.25
	}
	if o.OverFrac == 0 {
		o.OverFrac = float64(o.ExpectedLen) / float64(o.Capacity)
	}
	if o.UnderFrac == 0 {
		o.UnderFrac = float64(o.ExpectedLen) / (4 * float64(o.Capacity))
	}
	if o.LongTermDecay == 0 {
		o.LongTermDecay = 0.995
	}
	if o.Gain == 0 {
		o.Gain = 2
	}
	if o.SigmaFloor == 0 {
		o.SigmaFloor = 0.25
	}
	if o.SigmaVolatility == 0 {
		o.SigmaVolatility = 1
	}
	if o.SigmaWindow == 0 {
		o.SigmaWindow = 8
	}
}

// Validate reports the first violated constraint, or nil.
func (o Options) Validate() error {
	switch {
	case o.Capacity < 1:
		return errors.New("adapt: Capacity must be >= 1")
	case o.ExpectedLen < 1 || o.ExpectedLen >= o.Capacity:
		return fmt.Errorf("adapt: ExpectedLen %d must be in [1, Capacity)", o.ExpectedLen)
	case o.Alpha <= 0 || o.Alpha >= 1:
		return fmt.Errorf("adapt: Alpha %v must be in (0,1)", o.Alpha)
	case o.Window < 1:
		return errors.New("adapt: Window must be >= 1")
	case abs(o.P1+o.P2+o.P3-1) > 1e-9:
		return fmt.Errorf("adapt: P1+P2+P3 = %v, must be 1", o.P1+o.P2+o.P3)
	case o.P1 < 0 || o.P2 < 0 || o.P3 < 0:
		return errors.New("adapt: P1, P2, P3 must be non-negative")
	case o.LowThreshold >= o.HighThreshold:
		return fmt.Errorf("adapt: LowThreshold %v must be < HighThreshold %v", o.LowThreshold, o.HighThreshold)
	case o.LowThreshold < -1 || o.HighThreshold > 1:
		return errors.New("adapt: thresholds must lie in [-1,1] (fractions of C)")
	case o.OverFrac <= o.UnderFrac:
		return fmt.Errorf("adapt: OverFrac %v must exceed UnderFrac %v", o.OverFrac, o.UnderFrac)
	case o.LongTermDecay <= 0 || o.LongTermDecay > 1:
		return fmt.Errorf("adapt: LongTermDecay %v must be in (0,1]", o.LongTermDecay)
	case o.Gain <= 0:
		return errors.New("adapt: Gain must be positive")
	case o.SigmaFloor < 0:
		return errors.New("adapt: SigmaFloor must be non-negative")
	case o.SigmaWindow < 2:
		return errors.New("adapt: SigmaWindow must be >= 2")
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
